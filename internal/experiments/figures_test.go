package experiments

import (
	"testing"
	"time"

	"rtpb/internal/trace"
)

// shapeDuration keeps the figure-shape tests fast; the assertions below
// are chosen to be robust at this measurement length.
const shapeDuration = 2 * time.Second

func series(t *testing.T, f *trace.Figure, label string) []float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s.Y
		}
	}
	t.Fatalf("figure %s has no series %q (have %v)", f.Name, label, f.Series)
	return nil
}

// TestFigure7Shape pins the paper's headline admission-control result:
// without admission control, response time explodes past each window's
// capacity, and the blow-up point moves right as the window grows.
func TestFigure7Shape(t *testing.T) {
	f, err := Figure7(1, shapeDuration)
	if err != nil {
		t.Fatal(err)
	}
	w30 := series(t, f, "window=30ms")
	w70 := series(t, f, "window=70ms")
	// At 4 objects everything is fast; at 64 objects the 30ms window is
	// catastrophically overloaded.
	if w30[0] > 5 {
		t.Fatalf("w30 at 4 objects = %.2fms, want fast", w30[0])
	}
	last := len(w30) - 1
	if w30[last] < 100*w30[0] {
		t.Fatalf("w30 blow-up missing: %.2f → %.2f ms", w30[0], w30[last])
	}
	// The larger window blows up later (compare at 40 offered objects,
	// index 5: w30 overloaded, w70 still fine).
	if w30[5] < 50 {
		t.Fatalf("w30 at 40 objects = %.2fms, expected overloaded", w30[5])
	}
	if w70[5] > 50 {
		t.Fatalf("w70 at 40 objects = %.2fms, expected still fine", w70[5])
	}
}

// TestFigure6Shape pins the with-admission-control contrast: response
// stays within single-digit milliseconds across the whole sweep.
func TestFigure6Shape(t *testing.T) {
	f, err := Figure6(1, shapeDuration)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		for i, y := range s.Y {
			if y > 20 {
				t.Fatalf("%s at x=%v: %.2fms with admission control", s.Label, f.X[i], y)
			}
		}
	}
}

// TestFigure8Shape pins the distance metric's three properties: zero at
// zero loss, growth with loss, and ordering by write rate at high loss.
func TestFigure8Shape(t *testing.T) {
	f, err := Figure8(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fast := series(t, f, "write rate=20.0/s")
	slow := series(t, f, "write rate=5.0/s")
	if fast[0] != 0 || slow[0] != 0 {
		t.Fatalf("distance at zero loss = %.2f/%.2f, want 0", fast[0], slow[0])
	}
	last := len(fast) - 1
	if fast[last] <= fast[0] {
		t.Fatalf("fast-writer distance did not grow with loss: %v", fast)
	}
	if fast[last] < slow[last] {
		t.Fatalf("write-rate ordering inverted at max loss: fast=%.2f slow=%.2f",
			fast[last], slow[last])
	}
}

// TestFigure11And12OppositeWindowTrends pins the paper's most distinctive
// result: the effect of window size on inconsistency duration reverses
// between normal and compressed scheduling.
func TestFigure11And12OppositeWindowTrends(t *testing.T) {
	f11, err := Figure11(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	f12, err := Figure12(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the highest-loss point (most signal).
	last := len(f11.X) - 1
	n40 := series(t, f11, "window=40ms")[last]
	n80 := series(t, f11, "window=80ms")[last]
	c40 := series(t, f12, "window=40ms")[last]
	c80 := series(t, f12, "window=80ms")[last]
	if !(n80 > n40) {
		t.Fatalf("normal scheduling: larger window not worse (40ms=%.2f, 80ms=%.2f)", n40, n80)
	}
	if !(c40 > c80) {
		t.Fatalf("compressed scheduling: larger window not better (40ms=%.2f, 80ms=%.2f)", c40, c80)
	}
	// And compressed is far less inconsistent overall.
	if c40 > n40 {
		t.Fatalf("compressed (%.2f) worse than normal (%.2f) at same window", c40, n40)
	}
}
