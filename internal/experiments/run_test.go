package experiments

import (
	"testing"
	"time"

	"rtpb/internal/core"
)

func baseParams() Params {
	return Params{
		Seed:             1,
		Delay:            2 * time.Millisecond,
		Jitter:           time.Millisecond,
		Ell:              5 * time.Millisecond,
		Objects:          8,
		ObjectSize:       64,
		ClientPeriod:     50 * time.Millisecond,
		DeltaP:           50 * time.Millisecond,
		Window:           50 * time.Millisecond,
		Scheduling:       core.ScheduleNormal,
		AdmissionControl: true,
		Duration:         3 * time.Second,
	}
}

func TestRunBasics(t *testing.T) {
	r, err := Run(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Admitted != 8 {
		t.Fatalf("admitted %d/8", r.Admitted)
	}
	if r.Response.Count() == 0 {
		t.Fatal("no response samples")
	}
	if r.Sends == 0 || r.Applies == 0 {
		t.Fatalf("sends=%d applies=%d", r.Sends, r.Applies)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization = %v", r.Utilization)
	}
	if r.Excursions != 0 {
		t.Fatalf("lossless run had %d inconsistency excursions (total %v)",
			r.Excursions, r.InconsistencyTotal)
	}
}

func TestRunRejectsNonPositiveDuration(t *testing.T) {
	p := baseParams()
	p.Duration = 0
	if _, err := Run(p); err == nil {
		t.Fatal("accepted zero duration")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	p := baseParams()
	p.Loss = 0.1
	a, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sends != b.Sends || a.Applies != b.Applies || a.Gaps != b.Gaps ||
		a.Distance.AvgMax() != b.Distance.AvgMax() ||
		a.Response.Mean() != b.Response.Mean() {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestLossIncreasesDistanceAndGaps(t *testing.T) {
	clean, err := Run(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	p := baseParams()
	p.Loss = 0.2
	lossy, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Gaps == 0 {
		t.Fatal("20% loss produced no gaps")
	}
	if clean.Gaps != 0 {
		t.Fatalf("lossless run produced %d gaps", clean.Gaps)
	}
	if lossy.Distance.AvgMax() <= clean.Distance.AvgMax() {
		t.Fatalf("distance under loss %v not above lossless %v",
			lossy.Distance.AvgMax(), clean.Distance.AvgMax())
	}
}

func TestAdmissionControlCapsAdmitted(t *testing.T) {
	p := baseParams()
	p.Objects = 64
	p.Window = 30 * time.Millisecond
	withAC, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.AdmissionControl = false
	withoutAC, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if withAC.Admitted >= 64 {
		t.Fatalf("admission control admitted all %d", withAC.Admitted)
	}
	if withoutAC.Admitted != 64 {
		t.Fatalf("disabled admission control admitted %d/64", withoutAC.Admitted)
	}
	// The overloaded, uncontrolled run must show much worse response.
	if withoutAC.Response.Mean() < 4*withAC.Response.Mean() {
		t.Fatalf("overload response %v not ≫ controlled %v",
			withoutAC.Response.Mean(), withAC.Response.Mean())
	}
	if withoutAC.Utilization <= 1 {
		t.Fatalf("uncontrolled utilization %v not overloaded", withoutAC.Utilization)
	}
}

func TestLivePhaseVarianceWithinUniversalBound(t *testing.T) {
	p := baseParams()
	p.Objects = 16
	r, err := MeasurePhaseVariance(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Objects != 16 {
		t.Fatalf("objects = %d", r.Objects)
	}
	if r.MaxMeasured > r.UniversalBound {
		t.Fatalf("live phase variance %v exceeds p−e = %v", r.MaxMeasured, r.UniversalBound)
	}
	if r.MeanMeasured > r.MaxMeasured {
		t.Fatalf("mean %v exceeds max %v", r.MeanMeasured, r.MaxMeasured)
	}
	if r.UpdatePeriod <= 0 {
		t.Fatalf("update period = %v", r.UpdatePeriod)
	}
}

func TestActivePassiveComparisonShape(t *testing.T) {
	clean, err := CompareActivePassive(1, 0, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := CompareActivePassive(1, 0.2, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Passive responds locally: faster than active even on a clean link.
	if clean.PassiveResponse.Mean() >= clean.ActiveResponse.Mean() {
		t.Fatalf("passive mean %v not below active %v on clean link",
			clean.PassiveResponse.Mean(), clean.ActiveResponse.Mean())
	}
	// Active pays at least one round trip (2×2ms) for atomic delivery.
	if clean.ActiveResponse.Mean() < 4*time.Millisecond {
		t.Fatalf("active mean %v below one round trip", clean.ActiveResponse.Mean())
	}
	// Loss inflates active response but not passive.
	if lossy.ActiveResponse.Mean() <= clean.ActiveResponse.Mean() {
		t.Fatalf("active response did not grow with loss: %v vs %v",
			lossy.ActiveResponse.Mean(), clean.ActiveResponse.Mean())
	}
	diff := lossy.PassiveResponse.Mean() - clean.PassiveResponse.Mean()
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("passive response moved %v with loss; decoupling broken", diff)
	}
	if clean.ActiveCommits == 0 || lossy.ActiveCommits == 0 {
		t.Fatal("no active commits recorded")
	}
}

func TestCompressedIncreasesSendRate(t *testing.T) {
	p := baseParams()
	normal, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Scheduling = core.ScheduleCompressed
	compressed, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if compressed.Sends <= 2*normal.Sends {
		t.Fatalf("compressed sends %d not ≫ normal %d", compressed.Sends, normal.Sends)
	}
}
