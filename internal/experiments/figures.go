package experiments

import (
	"fmt"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/trace"
)

// Experiment parameter defaults shared by the figures. The link models a
// LAN: 2ms propagation, 1ms jitter, ℓ = 5ms given to admission control.
const (
	linkDelay  = 2 * time.Millisecond
	linkJitter = 1 * time.Millisecond
	ell        = 5 * time.Millisecond
	deltaP     = 50 * time.Millisecond
)

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// objectCounts is the x axis of the object-sweep figures (6, 7, 9, 10).
var objectCounts = []int{4, 8, 16, 24, 32, 40, 48, 56, 64}

// windowSizes is the window-size series of Figures 6, 7, 9, 10.
var windowSizes = []time.Duration{30 * time.Millisecond, 50 * time.Millisecond, 70 * time.Millisecond}

// lossPoints is the x axis of the loss-sweep figures (8, 11, 12).
var lossPoints = []float64{0, 0.02, 0.05, 0.10, 0.15, 0.20}

// responseVsObjects renders Figures 6 and 7: mean client response time as
// a function of the number of objects offered, one series per window
// size, with or without admission control.
func responseVsObjects(seed int64, admission bool, duration time.Duration) (*trace.Figure, error) {
	name, title := "Figure 6", "client response time with admission control"
	if !admission {
		name, title = "Figure 7", "client response time without admission control"
	}
	fig := &trace.Figure{
		Name:   name,
		Title:  title,
		XLabel: "objects offered",
		YLabel: "mean response time (ms)",
	}
	for _, n := range objectCounts {
		fig.X = append(fig.X, float64(n))
	}
	for wi, w := range windowSizes {
		s := trace.Series{Label: fmt.Sprintf("window=%dms", w/time.Millisecond)}
		for _, n := range objectCounts {
			r, err := Run(Params{
				Seed:             seed + int64(wi*1000+n),
				Delay:            linkDelay,
				Jitter:           linkJitter,
				Ell:              ell,
				Objects:          n,
				ObjectSize:       64,
				ClientPeriod:     50 * time.Millisecond,
				DeltaP:           deltaP,
				Window:           w,
				Scheduling:       core.ScheduleNormal,
				AdmissionControl: admission,
				Duration:         duration,
			})
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, msf(r.Response.Mean()))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure6 reproduces the paper's Figure 6: with admission control the
// number of objects has little impact on response time, and larger
// windows give better response times.
func Figure6(seed int64, duration time.Duration) (*trace.Figure, error) {
	return responseVsObjects(seed, true, duration)
}

// Figure7 reproduces Figure 7: without admission control, response time
// increases dramatically once the offered objects exceed the window
// size's capacity.
func Figure7(seed int64, duration time.Duration) (*trace.Figure, error) {
	return responseVsObjects(seed, false, duration)
}

// Figure8 reproduces Figure 8: average maximum primary-backup distance as
// a function of message-loss probability, one series per client write
// rate. Distance is near zero without loss and grows with both loss rate
// and write rate.
func Figure8(seed int64, duration time.Duration) (*trace.Figure, error) {
	fig := &trace.Figure{
		Name:   "Figure 8",
		Title:  "average maximum primary/backup distance vs message loss",
		XLabel: "loss probability",
		YLabel: "avg max distance (ms)",
		X:      lossPoints,
	}
	for ci, cp := range []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond} {
		s := trace.Series{Label: fmt.Sprintf("write rate=%.1f/s", 1000/float64(cp/time.Millisecond))}
		for li, loss := range lossPoints {
			r, err := Run(Params{
				Seed:             seed + int64(ci*100+li),
				Delay:            linkDelay,
				Jitter:           linkJitter,
				Loss:             loss,
				Ell:              ell,
				Objects:          16,
				ObjectSize:       64,
				ClientPeriod:     cp,
				DeltaP:           250 * time.Millisecond,
				Window:           300 * time.Millisecond,
				Scheduling:       core.ScheduleNormal,
				AdmissionControl: true,
				Duration:         duration,
			})
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, msf(r.Distance.AvgMax()))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// distanceVsObjects renders Figures 9 and 10: average maximum distance as
// a function of the number of objects, with or without admission control.
func distanceVsObjects(seed int64, admission bool, duration time.Duration) (*trace.Figure, error) {
	name, title := "Figure 9", "avg max primary/backup distance with admission control"
	if !admission {
		name, title = "Figure 10", "avg max primary/backup distance without admission control"
	}
	fig := &trace.Figure{
		Name:   name,
		Title:  title,
		XLabel: "objects offered",
		YLabel: "avg max distance (ms)",
	}
	for _, n := range objectCounts {
		fig.X = append(fig.X, float64(n))
	}
	for wi, w := range windowSizes {
		s := trace.Series{Label: fmt.Sprintf("window=%dms", w/time.Millisecond)}
		for _, n := range objectCounts {
			r, err := Run(Params{
				Seed:             seed + int64(wi*1000+n),
				Delay:            linkDelay,
				Jitter:           linkJitter,
				Loss:             0.02,
				Ell:              ell,
				Objects:          n,
				ObjectSize:       64,
				ClientPeriod:     50 * time.Millisecond,
				DeltaP:           deltaP,
				Window:           w,
				Scheduling:       core.ScheduleNormal,
				AdmissionControl: admission,
				Duration:         duration,
			})
			if err != nil {
				return nil, err
			}
			s.Y = append(s.Y, msf(r.StaleDistance.AvgMax()))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure9 reproduces Figure 9: with admission control the object count
// has little impact on the average maximum distance.
func Figure9(seed int64, duration time.Duration) (*trace.Figure, error) {
	return distanceVsObjects(seed, true, duration)
}

// Figure10 reproduces Figure 10: without admission control the distance
// grows once the object count exceeds the window's capacity.
func Figure10(seed int64, duration time.Duration) (*trace.Figure, error) {
	return distanceVsObjects(seed, false, duration)
}

// inconsistencyVsLoss renders Figures 11 and 12: mean duration of backup
// inconsistency (time beyond δ_i^B per excursion) as a function of loss
// probability, one series per window size, under normal or compressed
// scheduling.
func inconsistencyVsLoss(seed int64, mode core.SchedulingMode, duration time.Duration) (*trace.Figure, error) {
	name, title := "Figure 11", "duration of backup inconsistency (normal scheduling)"
	if mode == core.ScheduleCompressed {
		name, title = "Figure 12", "duration of backup inconsistency (compressed scheduling)"
	}
	fig := &trace.Figure{
		Name:   name,
		Title:  title,
		XLabel: "loss probability",
		YLabel: "inconsistency duration per object (ms over run)",
		X:      lossPoints[1:], // zero loss yields no excursions by design
	}
	for wi, w := range []time.Duration{40 * time.Millisecond, 60 * time.Millisecond, 80 * time.Millisecond} {
		s := trace.Series{Label: fmt.Sprintf("window=%dms", w/time.Millisecond)}
		for li, loss := range lossPoints[1:] {
			r, err := Run(Params{
				Seed:             seed + int64(wi*100+li),
				Delay:            linkDelay,
				Jitter:           linkJitter,
				Loss:             loss,
				Ell:              ell,
				Objects:          24,
				ObjectSize:       64,
				ClientPeriod:     25 * time.Millisecond,
				DeltaP:           30 * time.Millisecond,
				Window:           w,
				Scheduling:       mode,
				AdmissionControl: true,
				Duration:         duration,
			})
			if err != nil {
				return nil, err
			}
			perObject := time.Duration(0)
			if r.Admitted > 0 {
				perObject = r.InconsistencyTotal / time.Duration(r.Admitted)
			}
			s.Y = append(s.Y, msf(perObject))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure11 reproduces Figure 11: under normal scheduling, larger windows
// mean less frequent updates and therefore longer inconsistency
// durations.
func Figure11(seed int64, duration time.Duration) (*trace.Figure, error) {
	return inconsistencyVsLoss(seed, core.ScheduleNormal, duration)
}

// Figure12 reproduces Figure 12: under compressed scheduling the update
// frequency is set by CPU capacity, not window size, so larger windows
// mean *shorter* inconsistency durations — the opposite of Figure 11.
func Figure12(seed int64, duration time.Duration) (*trace.Figure, error) {
	return inconsistencyVsLoss(seed, core.ScheduleCompressed, duration)
}

// Figures runs every figure generator at the given seed/duration, in
// paper order.
func Figures(seed int64, duration time.Duration) ([]*trace.Figure, error) {
	type gen func(int64, time.Duration) (*trace.Figure, error)
	gens := []gen{Figure6, Figure7, Figure8, Figure9, Figure10, Figure11, Figure12}
	out := make([]*trace.Figure, 0, len(gens))
	for _, g := range gens {
		f, err := g(seed, duration)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
