package experiments

import (
	"fmt"
	"time"

	"rtpb/internal/active"
	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/netsim"
	"rtpb/internal/trace"
	"rtpb/internal/xkernel"
)

// CompareResult contrasts passive (RTPB) and active (sequencer-based
// state machine) replication under identical workload and link
// conditions — the quantitative version of the paper's related-work
// argument that active replication "tends to have more overhead in
// responding to client requests".
type CompareResult struct {
	// Loss is the link loss probability of the run.
	Loss float64
	// PassiveResponse and ActiveResponse are the client-visible write
	// response-time distributions.
	PassiveResponse trace.DurationStats
	ActiveResponse  trace.DurationStats
	// ActiveCommits counts fully acknowledged active writes.
	ActiveCommits int
	// PassiveWrites counts completed RTPB writes.
	PassiveWrites int
}

// CompareActivePassive runs the same single-object periodic write
// workload against an RTPB pair and against an active sequencer+member
// pair on identically parameterized (separate) fabrics.
func CompareActivePassive(seed int64, loss float64, duration time.Duration) (*CompareResult, error) {
	out := &CompareResult{Loss: loss}

	// Passive: reuse the standard harness with one object.
	pres, err := Run(Params{
		Seed:             seed,
		Delay:            linkDelay,
		Jitter:           linkJitter,
		Loss:             loss,
		Ell:              ell,
		Objects:          1,
		ObjectSize:       64,
		ClientPeriod:     40 * time.Millisecond,
		DeltaP:           50 * time.Millisecond,
		Window:           100 * time.Millisecond,
		Scheduling:       core.ScheduleNormal,
		AdmissionControl: true,
		Duration:         duration,
	})
	if err != nil {
		return nil, err
	}
	out.PassiveResponse = pres.Response
	out.PassiveWrites = pres.Response.Count()

	// Active: a sequencer with one member on the same link parameters.
	clk := clock.NewSim()
	net := netsim.New(clk, seed)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: linkDelay, Jitter: linkJitter, LossProb: loss}); err != nil {
		return nil, err
	}
	stack := func(host string) (*xkernel.PortProtocol, error) {
		ep, err := net.Endpoint(host)
		if err != nil {
			return nil, err
		}
		g, err := xkernel.BuildGraph([]xkernel.Spec{
			{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
			{Name: "driver", Build: xkernel.DriverFactory(ep)},
		})
		if err != nil {
			return nil, err
		}
		p, _ := g.Protocol("uport")
		return p.(*xkernel.PortProtocol), nil
	}
	seqPort, err := stack("seq")
	if err != nil {
		return nil, err
	}
	memPort, err := stack("member")
	if err != nil {
		return nil, err
	}
	seq, err := active.NewSequencer(active.Config{
		Clock:   clk,
		Port:    seqPort,
		Members: []xkernel.Addr{"member:7100"},
	})
	if err != nil {
		return nil, err
	}
	if _, err := active.NewMember(active.Config{
		Clock:     clk,
		Port:      memPort,
		Sequencer: "seq:7100",
	}); err != nil {
		return nil, err
	}
	if _, err := seq.Register("obj"); err != nil {
		return nil, err
	}
	writer := clock.NewPeriodic(clk, 0, 40*time.Millisecond, func() {
		seq.ClientWrite("obj", []byte("sensor-reading-64-bytes-of-data-padding-padding-padding-pad...."),
			func(lat time.Duration, err error) {
				if err == nil {
					out.ActiveResponse.Add(lat)
					out.ActiveCommits++
				}
			})
	})
	clk.RunFor(duration)
	writer.Stop()
	clk.RunFor(time.Second) // drain in-flight commits
	seq.Stop()
	return out, nil
}

// CompareFigure sweeps loss probability and reports the mean client
// response time of both schemes — the crossover-free separation the
// paper's design argument predicts.
func CompareFigure(seed int64, duration time.Duration) (*trace.Figure, error) {
	fig := &trace.Figure{
		Name:   "Active vs passive",
		Title:  "client response time: RTPB (passive) vs atomic broadcast (active)",
		XLabel: "loss probability",
		YLabel: "mean response time (ms)",
	}
	passive := trace.Series{Label: "RTPB (passive)"}
	act := trace.Series{Label: "active (atomic)"}
	for _, loss := range []float64{0, 0.05, 0.1, 0.2} {
		r, err := CompareActivePassive(seed, loss, duration)
		if err != nil {
			return nil, err
		}
		if r.ActiveCommits == 0 {
			return nil, fmt.Errorf("experiments: no active commits at loss %.2f", loss)
		}
		fig.X = append(fig.X, loss)
		passive.Y = append(passive.Y, msf(r.PassiveResponse.Mean()))
		act.Y = append(act.Y, msf(r.ActiveResponse.Mean()))
	}
	fig.Series = []trace.Series{passive, act}
	return fig, nil
}
