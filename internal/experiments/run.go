// Package experiments regenerates the paper's evaluation (Section 5).
// Each FigureN function reproduces the corresponding figure as a data
// table: the same metric on the same axes with the same series, measured
// on the simulated RTPB deployment. Absolute values depend on the cost
// model and link parameters rather than the authors' 1998 testbed, but
// the qualitative shapes — what grows, what stays flat, where the
// crossovers are — are the reproduction targets (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
	"rtpb/internal/trace"
	"rtpb/internal/workload"
	"rtpb/internal/xkernel"
)

// Params configures one simulated RTPB run.
type Params struct {
	// Seed drives all randomness (loss, jitter).
	Seed int64
	// Delay and Jitter shape the primary↔backup link; Loss is the drop
	// probability applied after registration settles.
	Delay, Jitter time.Duration
	Loss          float64
	// Ell is the delay bound ℓ given to admission control.
	Ell time.Duration
	// Objects, ObjectSize, ClientPeriod, DeltaP, and Window define the
	// offered object set (see workload.SpecParams).
	Objects      int
	ObjectSize   int
	ClientPeriod time.Duration
	DeltaP       time.Duration
	Window       time.Duration
	// Scheduling selects normal or compressed update scheduling.
	Scheduling core.SchedulingMode
	// AdmissionControl enables the Section 4.2 admission tests.
	AdmissionControl bool
	// SlackFactor overrides the update-period slack (0 means the default
	// 0.5); 1.0 schedules at the Theorem 5 boundary with no loss margin.
	SlackFactor float64
	// DisableGapRecovery turns off backup-initiated retransmission (an
	// ablation of the §4.3 design).
	DisableGapRecovery bool
	// Duration is the measured virtual-time interval.
	Duration time.Duration
}

// Result aggregates the metrics of one run.
type Result struct {
	// Offered and Admitted count the object set before and after
	// admission control.
	Offered, Admitted int
	// Response is the distribution of client write response times.
	Response trace.DurationStats
	// Distance tracks the average maximum loss-induced primary-backup
	// distance: how far the backup's version lags a loss-free shadow
	// backup, beyond the client's sampling granularity (Figure 8).
	Distance *trace.DistanceTracker
	// StaleDistance tracks the average maximum absolute staleness of the
	// backup's copy (wall time since the version it holds was current),
	// sampled periodically. Unlike Distance it also grows when an
	// overloaded primary delays transmissions (Figures 9 and 10).
	StaleDistance *trace.DistanceTracker
	// InconsistencyTotal is the total time backup images spent beyond
	// δ_i^B, summed over objects; Excursions counts the maximal
	// violation intervals; InconsistencyMean is their mean duration —
	// the paper's "duration of backup inconsistency".
	InconsistencyTotal time.Duration
	Excursions         int
	InconsistencyMean  time.Duration
	// Sends, Applies, and Gaps count update transmissions, backup
	// applies, and detected sequence gaps.
	Sends, Applies, Gaps int
	// RetransmitRequests and RetransmitSuppressed count the backup's
	// gap-recovery requests actually sent and those absorbed by the
	// retransmission backoff during the measured interval.
	RetransmitRequests, RetransmitSuppressed int
	// Utilization is the primary's planned CPU utilization after
	// admission.
	Utilization float64
	// Net is the fabric's delivery statistics.
	Net netsim.Stats
}

// Run executes one experiment configuration and returns its metrics.
func Run(p Params) (*Result, error) { return runHooked(p, nil) }

// sendHook observes each update transmission with its wall (virtual)
// instant; used by the phase-variance experiment.
type sendHook func(id uint32, name string, seq uint64, version time.Time, at time.Time)

func runHooked(p Params, onSend sendHook) (*Result, error) {
	if p.Duration <= 0 {
		return nil, fmt.Errorf("experiments: non-positive duration %v", p.Duration)
	}
	clk := clock.NewSim()
	net := netsim.New(clk, p.Seed)
	// Registration happens over a clean link; loss starts with the
	// measurement interval.
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: p.Delay, Jitter: p.Jitter}); err != nil {
		return nil, err
	}

	buildStack := func(host string) (*xkernel.PortProtocol, error) {
		ep, err := net.Endpoint(host)
		if err != nil {
			return nil, err
		}
		g, err := xkernel.BuildGraph([]xkernel.Spec{
			{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
			{Name: "driver", Build: xkernel.DriverFactory(ep)},
		})
		if err != nil {
			return nil, err
		}
		pp, _ := g.Protocol("uport")
		return pp.(*xkernel.PortProtocol), nil
	}
	pPort, err := buildStack("primary")
	if err != nil {
		return nil, err
	}
	bPort, err := buildStack("backup")
	if err != nil {
		return nil, err
	}

	primary, err := core.NewPrimary(core.Config{
		Clock:                   clk,
		Port:                    pPort,
		Peer:                    "backup:7000",
		Ell:                     p.Ell,
		Scheduling:              p.Scheduling,
		SlackFactor:             p.SlackFactor,
		DisableAdmissionControl: !p.AdmissionControl,
		// The paper's prototype buffers update transmissions without
		// bound — that unbounded queueing is precisely what produces the
		// Figure 7/10 response-time explosion when admission control is
		// off, so the reproduction keeps it (the resilience layer's
		// bounded send queues are measured separately by the chaos
		// harness and rtpbench -json).
		SendQueueLimit: core.UnboundedSendQueue,
	})
	if err != nil {
		return nil, err
	}
	backup, err := core.NewBackup(core.Config{
		Clock:              clk,
		Port:               bPort,
		Peer:               "primary:7000",
		Ell:                p.Ell,
		DisableGapRecovery: p.DisableGapRecovery,
	})
	if err != nil {
		return nil, err
	}

	specs := workload.Specs(workload.SpecParams{
		N:            p.Objects,
		Size:         p.ObjectSize,
		ClientPeriod: p.ClientPeriod,
		DeltaP:       p.DeltaP,
		Window:       p.Window,
	})
	res := &Result{
		Offered:       p.Objects,
		Distance:      trace.NewDistanceTracker(),
		StaleDistance: trace.NewDistanceTracker(),
	}
	admitted := make([]core.ObjectSpec, 0, len(specs))
	for _, s := range specs {
		if d := primary.Register(s); d.Accepted {
			admitted = append(admitted, s)
		}
	}
	res.Admitted = len(admitted)
	res.Utilization = primary.Utilization()
	clk.RunFor(100 * time.Millisecond) // registrations settle losslessly

	// Metric wiring. Primary-backup distance is measured against a
	// loss-free shadow backup: every transmitted update is also "applied"
	// to a shadow copy after the worst-case delay ℓ̂ = Delay+Jitter, and
	// the distance is how far the real backup's version lags the
	// shadow's. Under perfect delivery the real backup is never behind
	// the shadow (it receives each update at least as early), so the
	// distance is exactly the staleness *caused by message loss* — zero
	// at zero loss, growing with loss bursts, and growing with client
	// write rate because faster writers lose fresher versions.
	mon := temporal.NewMonitor()
	shadow := make(map[uint32]time.Time, len(admitted))
	held := make(map[uint32]time.Time, len(admitted))
	for _, s := range admitted {
		mon.TrackExternal("backup", s.Name, s.Constraint.DeltaB)
	}
	ellHat := p.Delay + p.Jitter
	// One client period of version lag is inherent sampling granularity
	// (the backup can never be fresher than the client's last write), so
	// distance counts only the lag beyond it: the staleness replication
	// itself introduced. Without this correction a slow writer's every
	// loss scores a full client period and the write-rate ordering of
	// Figure 8 inverts.
	observe := func(id uint32) {
		sh, okS := shadow[id]
		h, okH := held[id]
		if !okS || !okH {
			// The lossless warmup seeds both maps before measurement.
			return
		}
		d := sh.Sub(h) - p.ClientPeriod
		if d < 0 {
			d = 0
		}
		res.Distance.Observe(id, d)
	}
	measuring := false
	ids := make(map[string]uint32, len(admitted))
	primary.OnClientDone = func(name string, lat time.Duration) {
		if measuring {
			res.Response.Add(lat)
		}
	}
	primary.OnSend = func(id uint32, name string, seq uint64, version time.Time) {
		ids[name] = id
		if onSend != nil {
			onSend(id, name, seq, version, clk.Now())
		}
		clk.Schedule(ellHat, func() {
			if prev, ok := shadow[id]; !ok || version.After(prev) {
				shadow[id] = version
			}
			if measuring {
				observe(id)
			}
		})
		if measuring {
			res.Sends++
		}
	}
	backup.OnApply = func(id uint32, name string, _ uint32, _ uint64, version, at time.Time) {
		if prev, ok := held[id]; !ok || version.After(prev) {
			held[id] = version
		}
		if !measuring {
			return
		}
		res.Applies++
		mon.RecordUpdate("backup", name, version, at)
		observe(id)
	}
	backup.OnGap = func(uint32, uint64, uint64) {
		if measuring {
			res.Gaps++
		}
	}

	// Start clients with staggered offsets, warm the pipeline, then
	// switch on loss and measure.
	clients := make([]*workload.Client, 0, len(admitted))
	for i, s := range admitted {
		offset := time.Duration(i) * p.ClientPeriod / time.Duration(len(admitted))
		clients = append(clients, workload.NewClient(clk, primary, s.Name, offset, p.ClientPeriod, p.ObjectSize))
	}
	clk.RunFor(2 * p.ClientPeriod)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: p.Delay, Jitter: p.Jitter, LossProb: p.Loss}); err != nil {
		return nil, err
	}
	preReq, preSup := backup.RetransmitStats()
	measuring = true
	// Sample raw backup staleness (primary's current version vs the
	// backup's applied version) on a fixed grid during measurement.
	sampler := clock.NewPeriodic(clk, 0, 100*time.Millisecond, func() {
		if !measuring {
			return
		}
		for _, s := range admitted {
			id, known := ids[s.Name]
			if !known {
				continue
			}
			h, okH := held[id]
			if !okH {
				continue
			}
			res.StaleDistance.Observe(id, clk.Now().Sub(h))
		}
	})
	clk.RunFor(p.Duration)
	sampler.Stop()
	measuring = false
	for _, c := range clients {
		c.Stop()
	}
	mon.FinishAt(clk.Now())

	for _, s := range admitted {
		if r, ok := mon.ExternalReport("backup", s.Name); ok {
			res.InconsistencyTotal += r.ViolationTime
			res.Excursions += r.Excursions
		}
	}
	if res.Excursions > 0 {
		res.InconsistencyMean = res.InconsistencyTotal / time.Duration(res.Excursions)
	}
	req, sup := backup.RetransmitStats()
	res.RetransmitRequests, res.RetransmitSuppressed = req-preReq, sup-preSup
	res.Net = net.Stats()
	primary.Stop()
	backup.Stop()
	return res, nil
}
