package experiments

import (
	"fmt"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/sched"
	"rtpb/internal/trace"
)

// PhaseVarianceResult reports the phase variance observed on the *live*
// protocol: the update-transmission instants of each object at the
// primary are exactly the invocation completions I_k of the paper's
// Definition 1, so their jitter is the phase variance v'_i that
// Theorems 4-6 charge against the backup's consistency budget.
type PhaseVarianceResult struct {
	// Objects is the number of admitted objects measured.
	Objects int
	// UpdatePeriod is the common admitted period r.
	UpdatePeriod time.Duration
	// MaxMeasured is the largest phase variance across objects.
	MaxMeasured time.Duration
	// MeanMeasured is the average across objects.
	MeanMeasured time.Duration
	// UniversalBound is p − e (Inequality 2.1) for the update tasks.
	UniversalBound time.Duration
	// Utilization is the primary's planned utilization, for applying the
	// Theorem 2 bounds.
	Utilization float64
}

// MeasurePhaseVariance runs a cluster and measures the live phase
// variance of every object's update-transmission task.
func MeasurePhaseVariance(p Params) (*PhaseVarianceResult, error) {
	sendTimes := make(map[uint32][]time.Duration)
	base := time.Time{}

	res, err := runHooked(p, func(id uint32, _ string, _ uint64, _ time.Time, at time.Time) {
		if base.IsZero() {
			base = at
		}
		sendTimes[id] = append(sendTimes[id], at.Sub(base))
	})
	if err != nil {
		return nil, err
	}
	if res.Admitted == 0 {
		return nil, fmt.Errorf("experiments: nothing admitted")
	}

	out := &PhaseVarianceResult{
		Objects:     res.Admitted,
		Utilization: res.Utilization,
	}
	// All objects share one spec, so one admitted period.
	window := p.Window
	slack := p.SlackFactor
	if slack == 0 {
		slack = 0.5
	}
	out.UpdatePeriod = time.Duration(slack * float64(window-p.Ell))
	costs := core.DefaultCosts()
	sendCost := costs.UpdateSend + time.Duration(p.ObjectSize)*costs.PerByte
	out.UniversalBound = out.UpdatePeriod - sendCost

	var sum time.Duration
	counted := 0
	for _, times := range sendTimes {
		v, ok := sched.MeasuredPhaseVariance(times, out.UpdatePeriod, 1)
		if !ok {
			continue
		}
		counted++
		sum += v
		if v > out.MaxMeasured {
			out.MaxMeasured = v
		}
	}
	if counted > 0 {
		out.MeanMeasured = sum / time.Duration(counted)
	}
	return out, nil
}

// PhaseVarianceFigure sweeps the offered load and reports the live
// measured phase variance against the universal bound p − e: the system-
// level counterpart of the Theorem 2 simulations.
func PhaseVarianceFigure(seed int64, duration time.Duration) (*trace.Figure, error) {
	fig := &trace.Figure{
		Name:   "Phase variance (live protocol)",
		Title:  "update-task phase variance vs offered load",
		XLabel: "objects admitted",
		YLabel: "phase variance (ms)",
	}
	measured := trace.Series{Label: "max measured v'"}
	bound := trace.Series{Label: "bound p−e"}
	for _, n := range []int{4, 8, 16, 24, 32} {
		r, err := MeasurePhaseVariance(Params{
			Seed:             seed + int64(n),
			Delay:            linkDelay,
			Jitter:           linkJitter,
			Ell:              ell,
			Objects:          n,
			ObjectSize:       64,
			ClientPeriod:     50 * time.Millisecond,
			DeltaP:           deltaP,
			Window:           50 * time.Millisecond,
			Scheduling:       core.ScheduleNormal,
			AdmissionControl: true,
			Duration:         duration,
		})
		if err != nil {
			return nil, err
		}
		fig.X = append(fig.X, float64(r.Objects))
		measured.Y = append(measured.Y, msf(r.MaxMeasured))
		bound.Y = append(bound.Y, msf(r.UniversalBound))
	}
	fig.Series = []trace.Series{measured, bound}
	return fig, nil
}
