package trace

import (
	"strings"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestDurationStatsBasics(t *testing.T) {
	var s DurationStats
	if s.Count() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("zero-value stats not all zero")
	}
	for _, d := range []time.Duration{ms(30), ms(10), ms(20)} {
		s.Add(d)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Mean() != ms(20) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	if s.Min() != ms(10) || s.Max() != ms(30) {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if s.Sum() != ms(60) {
		t.Fatalf("Sum = %v", s.Sum())
	}
}

func TestDurationStatsPercentile(t *testing.T) {
	var s DurationStats
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if p := s.Percentile(50); p != ms(50) {
		t.Fatalf("P50 = %v, want 50ms", p)
	}
	if p := s.Percentile(99); p != ms(99) {
		t.Fatalf("P99 = %v, want 99ms", p)
	}
	if p := s.Percentile(0); p != ms(1) {
		t.Fatalf("P0 = %v, want 1ms", p)
	}
	if p := s.Percentile(100); p != ms(100) {
		t.Fatalf("P100 = %v, want 100ms", p)
	}
}

func TestDurationStatsAddAfterQuery(t *testing.T) {
	var s DurationStats
	s.Add(ms(10))
	_ = s.Max()
	s.Add(ms(5))
	if s.Min() != ms(5) {
		t.Fatalf("Min after re-add = %v, want 5ms", s.Min())
	}
}

func TestDistanceTracker(t *testing.T) {
	d := NewDistanceTracker()
	if d.AvgMax() != 0 || d.Objects() != 0 {
		t.Fatal("empty tracker not zero")
	}
	d.Observe(1, ms(10))
	d.Observe(1, ms(30))
	d.Observe(1, ms(20)) // not a new max
	d.Observe(2, ms(50))
	d.Observe(3, -ms(5)) // clamped to 0
	if d.MaxOf(1) != ms(30) {
		t.Fatalf("MaxOf(1) = %v", d.MaxOf(1))
	}
	if d.Objects() != 3 {
		t.Fatalf("Objects = %d", d.Objects())
	}
	// AvgMax = (30+50+0)/3 ≈ 26.67ms
	want := (ms(30) + ms(50)) / 3
	if d.AvgMax() != want {
		t.Fatalf("AvgMax = %v, want %v", d.AvgMax(), want)
	}
}

func TestFigureRender(t *testing.T) {
	f := Figure{
		Name:   "Figure 8",
		Title:  "avg max distance vs loss",
		XLabel: "loss",
		YLabel: "distance (ms)",
		X:      []float64{0, 0.1},
		Series: []Series{
			{Label: "rate=10/s", Y: []float64{1.5, 700}},
			{Label: "rate=20/s", Y: []float64{2.5}}, // short series
		},
	}
	out := f.Render()
	for _, want := range []string{"Figure 8", "loss", "rate=10/s", "700.0000", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		XLabel: "x",
		X:      []float64{1, 2},
		Series: []Series{{Label: "a", Y: []float64{10, 20}}},
	}
	got := f.CSV()
	want := "x,a\n1,10\n2,20\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
