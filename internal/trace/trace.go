// Package trace collects the performability metrics of the paper's
// evaluation (Section 5): client response time, average maximum
// primary-backup distance, and duration of backup inconsistency. It also
// provides the Series/Figure types the benchmark harness uses to print
// each regenerated figure as a data table.
package trace

import (
	"fmt"
	"sort"
	"time"
)

// DurationStats accumulates duration samples and answers summary queries.
// The zero value is ready to use.
type DurationStats struct {
	samples []time.Duration
	sorted  bool
	total   time.Duration
}

// Add records one sample.
func (s *DurationStats) Add(d time.Duration) {
	s.samples = append(s.samples, d)
	s.total += d
	s.sorted = false
}

// Count reports the number of samples.
func (s *DurationStats) Count() int { return len(s.samples) }

// Sum reports the total of all samples.
func (s *DurationStats) Sum() time.Duration { return s.total }

// Mean reports the average sample, or 0 with no samples.
func (s *DurationStats) Mean() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	return s.total / time.Duration(len(s.samples))
}

// Min reports the smallest sample, or 0 with no samples.
func (s *DurationStats) Min() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[0]
}

// Max reports the largest sample, or 0 with no samples.
func (s *DurationStats) Max() time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	return s.samples[len(s.samples)-1]
}

// Percentile reports the p-th percentile (0 < p ≤ 100) using
// nearest-rank, or 0 with no samples.
func (s *DurationStats) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[len(s.samples)-1]
	}
	rank := int(p/100*float64(len(s.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.samples) {
		rank = len(s.samples) - 1
	}
	return s.samples[rank]
}

func (s *DurationStats) sort() {
	if s.sorted {
		return
	}
	sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
	s.sorted = true
}

// String renders a one-line summary.
func (s *DurationStats) String() string {
	return fmt.Sprintf("n=%d mean=%v p99=%v max=%v",
		s.Count(), s.Mean(), s.Percentile(99), s.Max())
}

// DistanceTracker measures the paper's "average maximum primary-backup
// distance": for each object it tracks the largest observed distance
// (how far the backup's applied version lags the version the primary
// holds), and AvgMax averages those per-object maxima.
type DistanceTracker struct {
	maxByObject map[uint32]time.Duration
}

// NewDistanceTracker returns an empty tracker.
func NewDistanceTracker() *DistanceTracker {
	return &DistanceTracker{maxByObject: make(map[uint32]time.Duration)}
}

// Observe records a distance sample for an object.
func (d *DistanceTracker) Observe(object uint32, dist time.Duration) {
	if dist < 0 {
		dist = 0
	}
	if dist > d.maxByObject[object] {
		d.maxByObject[object] = dist
	} else if _, ok := d.maxByObject[object]; !ok {
		d.maxByObject[object] = dist
	}
}

// MaxOf reports the maximum distance observed for one object.
func (d *DistanceTracker) MaxOf(object uint32) time.Duration {
	return d.maxByObject[object]
}

// Objects reports how many distinct objects have samples.
func (d *DistanceTracker) Objects() int { return len(d.maxByObject) }

// AvgMax reports the average of the per-object maximum distances, the
// metric of Figures 8-10.
func (d *DistanceTracker) AvgMax() time.Duration {
	if len(d.maxByObject) == 0 {
		return 0
	}
	var sum time.Duration
	for _, m := range d.maxByObject {
		sum += m
	}
	return sum / time.Duration(len(d.maxByObject))
}

// Series is one labelled curve of a figure: Y values sampled at the
// figure's shared X points.
type Series struct {
	// Label names the curve (e.g. "window=60ms").
	Label string
	// Y holds one value per figure X point.
	Y []float64
}

// Figure is a regenerated paper figure as a data table.
type Figure struct {
	// Name is the paper's figure identifier (e.g. "Figure 8").
	Name string
	// Title describes the plot.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// X holds the shared sample points.
	X []float64
	// Series holds one curve per parameter setting.
	Series []Series
}

// Render prints the figure as an aligned text table: one row per X point,
// one column per series.
func (f *Figure) Render() string {
	out := fmt.Sprintf("%s: %s\n", f.Name, f.Title)
	header := fmt.Sprintf("%16s", f.XLabel)
	for _, s := range f.Series {
		header += fmt.Sprintf("  %18s", s.Label)
	}
	out += header + "\n"
	for i, x := range f.X {
		row := fmt.Sprintf("%16.4g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				row += fmt.Sprintf("  %18.4f", s.Y[i])
			} else {
				row += fmt.Sprintf("  %18s", "-")
			}
		}
		out += row + "\n"
	}
	out += fmt.Sprintf("(y axis: %s)\n", f.YLabel)
	return out
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	out := f.XLabel
	for _, s := range f.Series {
		out += "," + s.Label
	}
	out += "\n"
	for i, x := range f.X {
		out += fmt.Sprintf("%g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				out += fmt.Sprintf(",%g", s.Y[i])
			} else {
				out += ","
			}
		}
		out += "\n"
	}
	return out
}
