package trace

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Histogram buckets duration samples on a logarithmic grid (powers of two
// of the base bucket). It complements DurationStats when the shape of a
// latency distribution matters — e.g. spotting the bimodal split between
// uncontended client writes and writes stuck behind an update backlog.
type Histogram struct {
	base    time.Duration
	counts  []int
	under   int
	total   int
	maxSeen time.Duration
}

// NewHistogram builds a histogram whose first bucket is [0, base) and
// whose k-th bucket is [base·2^(k−1), base·2^k), with buckets buckets.
func NewHistogram(base time.Duration, buckets int) *Histogram {
	if base <= 0 {
		base = time.Microsecond
	}
	if buckets <= 0 {
		buckets = 24
	}
	return &Histogram{base: base, counts: make([]int, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.total++
	if d > h.maxSeen {
		h.maxSeen = d
	}
	if d < h.base {
		h.under++
		return
	}
	k := int(math.Log2(float64(d)/float64(h.base))) + 1
	if k >= len(h.counts) {
		k = len(h.counts) - 1
	}
	h.counts[k]++
}

// Total reports the number of samples.
func (h *Histogram) Total() int { return h.total }

// Max reports the largest sample seen.
func (h *Histogram) Max() time.Duration { return h.maxSeen }

// bucketBounds reports bucket k's half-open range.
func (h *Histogram) bucketBounds(k int) (lo, hi time.Duration) {
	if k == 0 {
		return 0, h.base
	}
	return h.base << (k - 1), h.base << k
}

// Render prints the non-empty buckets with proportional bars.
func (h *Histogram) Render() string {
	var b strings.Builder
	peak := h.under
	for _, c := range h.counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return "(no samples)\n"
	}
	row := func(lo, hi time.Duration, count int) {
		if count == 0 {
			return
		}
		bar := strings.Repeat("#", 1+count*40/peak)
		fmt.Fprintf(&b, "%12v-%-12v %6d %s\n", lo, hi, count, bar)
	}
	row(0, h.base, h.under)
	for k := 1; k < len(h.counts); k++ {
		lo, hi := h.bucketBounds(k)
		row(lo, hi, h.counts[k])
	}
	return b.String()
}
