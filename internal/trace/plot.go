package trace

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure as an ASCII scatter chart (one letter per
// series), for eyeballing shapes in a terminal without leaving the
// harness. Rows are y values (top = max), columns are x positions.
func (f *Figure) Plot(width, height int) string {
	if width < 16 {
		width = 60
	}
	if height < 4 {
		height = 16
	}
	if len(f.X) == 0 || len(f.Series) == 0 {
		return "(no data)\n"
	}
	xMin, xMax := f.X[0], f.X[0]
	for _, x := range f.X {
		xMin = math.Min(xMin, x)
		xMax = math.Max(xMax, x)
	}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range f.Series {
		for _, y := range s.Y {
			yMin = math.Min(yMin, y)
			yMax = math.Max(yMax, y)
		}
	}
	if math.IsInf(yMin, 1) {
		return "(no data)\n"
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - xMin) / (xMax - xMin) * float64(width-1))
		return min(max(c, 0), width-1)
	}
	rowOf := func(y float64) int {
		r := int((yMax - y) / (yMax - yMin) * float64(height-1))
		return min(max(r, 0), height-1)
	}
	for si, s := range f.Series {
		mark := byte('A' + si%26)
		for i, y := range s.Y {
			if i >= len(f.X) {
				break
			}
			grid[rowOf(y)][col(f.X[i])] = mark
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.Name, f.Title)
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10.4g", yMax)
		case height - 1:
			label = fmt.Sprintf("%10.4g", yMin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*g%*g\n", "", width/2, xMin, width-width/2, xMax)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", 'A'+si%26, s.Label)
	}
	fmt.Fprintf(&b, "  (x: %s, y: %s)\n", f.XLabel, f.YLabel)
	return b.String()
}
