package trace

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(time.Millisecond, 10)
	h.Add(500 * time.Microsecond) // under base
	h.Add(time.Millisecond)       // [1ms,2ms)
	h.Add(3 * time.Millisecond)   // [2ms,4ms)
	h.Add(3500 * time.Microsecond)
	h.Add(time.Hour) // clamps to last bucket
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Max() != time.Hour {
		t.Fatalf("Max = %v", h.Max())
	}
	out := h.Render()
	for _, want := range []string{"0s-1ms", "1ms-2ms", "2ms-4ms", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 0) // defaults applied
	if got := h.Render(); got != "(no samples)\n" {
		t.Fatalf("empty Render = %q", got)
	}
}

func TestHistogramBarsProportional(t *testing.T) {
	h := NewHistogram(time.Millisecond, 8)
	for i := 0; i < 100; i++ {
		h.Add(time.Millisecond) // all in one bucket
	}
	h.Add(5 * time.Millisecond)
	out := h.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	big := strings.Count(lines[0], "#")
	small := strings.Count(lines[1], "#")
	if big <= small {
		t.Fatalf("bars not proportional: %d vs %d", big, small)
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	f := Figure{
		Name:   "T",
		Title:  "test",
		XLabel: "x",
		YLabel: "y",
		X:      []float64{0, 1, 2, 3},
		Series: []Series{
			{Label: "up", Y: []float64{0, 1, 2, 3}},
			{Label: "down", Y: []float64{3, 2, 1, 0}},
		},
	}
	out := f.Plot(40, 10)
	for _, want := range []string{"A = up", "B = down", "A", "B", "(x: x, y: y)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Plot missing %q:\n%s", want, out)
		}
	}
	// The rising series' mark appears on the top row at the right edge.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "A") {
		t.Fatalf("top row lacks rising series:\n%s", out)
	}
}

func TestPlotDegenerateInputs(t *testing.T) {
	empty := Figure{}
	if got := empty.Plot(0, 0); got != "(no data)\n" {
		t.Fatalf("empty Plot = %q", got)
	}
	flat := Figure{
		X:      []float64{1, 1},
		Series: []Series{{Label: "s", Y: []float64{5, 5}}},
	}
	out := flat.Plot(20, 5) // constant x and y must not divide by zero
	if !strings.Contains(out, "A") {
		t.Fatalf("flat Plot lacks marks:\n%s", out)
	}
}
