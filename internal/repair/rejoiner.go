package repair

import (
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/failover"
	"rtpb/internal/xkernel"
)

// RejoinerConfig parameterizes a restarted replica's rejoin protocol.
type RejoinerConfig struct {
	// Clock schedules the rejoin loop.
	Clock clock.Clock
	// Service is the replicated service's directory entry.
	Service string
	// Directory is consulted for the current primary and epoch.
	Directory failover.Directory
	// Self is this replica's own replication address. If the directory
	// still records Self as the primary, there is no successor to rejoin
	// and the loop keeps polling — a fenced old primary must never
	// resume service on its own authority.
	Self xkernel.Addr
	// Start constructs and wires the backup replica once the primary is
	// known: the caller opens the protocol stack, points the backup's
	// Peer at primary, and attaches its observers. epoch is the
	// directory-recorded epoch, which the backup adopts from the
	// JoinAccept. Exactly one of Start and Replica must be set.
	Start func(primary xkernel.Addr, epoch uint32) (*core.Backup, error)
	// Replica, when set, is a still-running replica — typically a fenced
	// old primary that lost its machine's network, not its process — to
	// demote in place once the directory records a successor. The rejoin
	// calls Replica.Demote(epoch, primary), which keeps the object table
	// (the anti-entropy digest then transfers only what the replica
	// missed) instead of rebuilding a backup from nothing via Start.
	Replica *core.Replica
	// OnDemoted, when set, fires right after the in-place demotion, before
	// the first JoinRequest — the hook where callers re-attach backup-side
	// observers (monitor taps, failure detector).
	OnDemoted func(b *core.Backup)
	// Restore, when set, runs right after Start constructs the backup
	// and before the first JoinRequest: the disk half of disk-fast
	// rejoin. The hook replays the replica's local durable tail
	// (typically core.Replica.RestoreDurable over internal/durable's
	// Recover) into the fresh table, so the join digest advertises the
	// recovered state and the chunked anti-entropy streams only the gap
	// accumulated while the node was down — catch-up cost proportional
	// to downtime, not state size. It returns how many object values
	// were seeded from disk.
	Restore func(b *core.Backup) (int, error)
	// Interval is the poll/retry period; defaults to 250ms.
	Interval time.Duration
	// Announce registers Self in the directory's candidate list once the
	// join completes, making the replica recruitable after a future
	// failover.
	Announce bool
	// OnJoined, when set, fires once when the join exchange completes.
	OnJoined func(b *core.Backup)
}

// RejoinerStatus is a snapshot of the rejoin protocol's progress.
type RejoinerStatus struct {
	// Lookups counts directory polls.
	Lookups int
	// JoinsSent counts JoinRequest transmissions driven by the loop (the
	// in-protocol digest and chunk retries are not counted here).
	JoinsSent int
	// Primary is the successor being rejoined (empty until discovered).
	Primary xkernel.Addr
	// Joined reports completion.
	Joined bool
	// RestoredObjects is how many object values the Restore hook seeded
	// from the local durable tail before the join; Source names where
	// the replica's image came from: "disk+gap" when a disk restore
	// preceded the anti-entropy exchange, "network" otherwise.
	RestoredObjects int
	Source          string
}

// Rejoiner drives a restarted replica — including a fenced old primary —
// back into the cluster: poll the directory until a successor is
// recorded, start a backup pointed at it (the demotion), and retry
// JoinRequests until the chunked anti-entropy exchange completes. Every
// message past the first JoinRequest is retried by the core protocol
// itself; the rejoiner only has to survive the window where nothing is
// established yet.
type Rejoiner struct {
	cfg  RejoinerConfig
	task *clock.Periodic

	b       *core.Backup
	primary xkernel.Addr
	status  RejoinerStatus
	done    bool
}

// NewRejoiner validates the config.
func NewRejoiner(cfg RejoinerConfig) (*Rejoiner, error) {
	if cfg.Clock == nil || cfg.Directory == nil {
		return nil, fmt.Errorf("repair: rejoiner needs a clock and a directory")
	}
	if (cfg.Start == nil) == (cfg.Replica == nil) {
		return nil, fmt.Errorf("repair: rejoiner needs exactly one of a start hook and a replica")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	return &Rejoiner{cfg: cfg}, nil
}

// Start begins the rejoin loop; the first poll runs immediately.
func (r *Rejoiner) Start() {
	if r.task != nil {
		return
	}
	r.task = clock.NewPeriodic(r.cfg.Clock, 0, r.cfg.Interval, r.tick)
}

// Stop halts the loop; a backup already started keeps running.
func (r *Rejoiner) Stop() {
	if r.task != nil {
		r.task.Stop()
		r.task = nil
	}
}

// Backup returns the backup replica once Start's hook has constructed
// it (nil before the directory names a successor).
func (r *Rejoiner) Backup() *core.Backup { return r.b }

// Status reports the loop's progress.
func (r *Rejoiner) Status() RejoinerStatus { return r.status }

func (r *Rejoiner) tick() {
	if r.done {
		r.Stop()
		return
	}
	if r.b == nil {
		addr, epoch, ok := r.cfg.Directory.Lookup(r.cfg.Service)
		r.status.Lookups++
		if !ok || addr == r.cfg.Self {
			return // no successor recorded yet; keep polling
		}
		if r.cfg.Replica != nil {
			rep := r.cfg.Replica
			if rep.Role() != core.RoleBackup {
				if err := rep.Demote(epoch, addr); err != nil {
					return // e.g. a transient session-open failure; retry
				}
				if r.cfg.OnDemoted != nil {
					r.cfg.OnDemoted(rep)
				}
			}
			r.b = rep
		} else {
			b, err := r.cfg.Start(addr, epoch)
			if err != nil || b == nil {
				return
			}
			r.b = b
			if r.cfg.Restore != nil {
				// Disk-tail replay before the first JoinRequest: whatever
				// the local log preserved never crosses the network again.
				if n, err := r.cfg.Restore(b); err == nil {
					r.status.RestoredObjects = n
				}
			}
		}
		r.primary = addr
		r.status.Primary = addr
		r.status.Source = "network"
		if r.status.RestoredObjects > 0 {
			r.status.Source = "disk+gap"
		}
	}
	if r.b.Joined() {
		r.finish()
		return
	}
	if !r.b.Joining() {
		// The initial JoinRequest (or the whole exchange) was lost; ask
		// again. Once a JoinAccept lands, the digest/chunk retries inside
		// the core protocol take over.
		r.b.Join()
		r.status.JoinsSent++
	}
}

func (r *Rejoiner) finish() {
	r.done = true
	r.status.Joined = true
	if r.cfg.Announce {
		if c, ok := r.cfg.Directory.(failover.Candidates); ok {
			c.AddCandidate(r.cfg.Service, r.cfg.Self)
		}
	}
	if r.cfg.OnJoined != nil {
		r.cfg.OnJoined(r.b)
	}
	r.Stop()
}
