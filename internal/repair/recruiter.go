// Package repair implements the cluster's self-healing loop: automated
// recruitment of replacement backups on the primary side (Recruiter) and
// the rejoin protocol on a restarted replica (Rejoiner). Both sides
// rendezvous through the failover directory — the paper's name file —
// extended with a candidate registry: an idle replica announces itself
// recruitable, a primary that has lost replication degree probes the
// list, and the chunked anti-entropy exchange in internal/core drives
// the recruit to parity.
package repair

import (
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/failover"
	"rtpb/internal/xkernel"
)

// RecruiterConfig parameterizes the primary-side repair loop.
type RecruiterConfig struct {
	// Clock schedules the probe loop (the replica's virtual or real
	// clock).
	Clock clock.Clock
	// Service is the replicated service's directory entry.
	Service string
	// Directory is the failover directory; it must also implement
	// failover.Candidates (both bundled implementations do).
	Directory failover.Directory
	// Self is this primary's own replication address, never recruited.
	Self xkernel.Addr
	// Target is the desired replication degree (number of live backups);
	// defaults to 1.
	Target int
	// Interval is the probe period; defaults to 250ms.
	Interval time.Duration
	// Cooldown quarantines a candidate whose join exchange failed before
	// it is probed again; defaults to 2s.
	Cooldown time.Duration
	// OnRecruit, when set, observes every probe of a candidate.
	OnRecruit func(addr xkernel.Addr)
	// OnRotate, when set, observes a candidate being dropped after its
	// join exchange exhausted its retries.
	OnRotate func(addr xkernel.Addr)
}

// RecruiterStats counts the repair loop's activity.
type RecruiterStats struct {
	// Probes counts candidates attached for a join exchange.
	Probes int
	// Recruited counts peers whose exchange completed (synced).
	Recruited int
	// Rotations counts candidates dropped after a failed exchange.
	Rotations int
}

// Recruiter watches a primary's replication degree and recruits
// directory candidates to restore it: the automated half of the paper's
// Section 4.4 recovery ("the new primary ... recruits a new backup").
// Detection of the degree loss itself is the failure detector's job;
// the recruiter only reacts to what PeerStates reports.
type Recruiter struct {
	p     *core.Primary
	cfg   RecruiterConfig
	cands failover.Candidates
	task  *clock.Periodic

	failedAt map[xkernel.Addr]time.Time
	stats    RecruiterStats
}

// NewRecruiter wires a recruiter to a primary. It chains the primary's
// OnPeerSynced and OnPeerSyncFailed callbacks (previously installed
// observers keep firing), so it must be created after any direct
// callback assignment.
func NewRecruiter(p *core.Primary, cfg RecruiterConfig) (*Recruiter, error) {
	cands, ok := cfg.Directory.(failover.Candidates)
	if !ok {
		return nil, fmt.Errorf("repair: directory %T does not support candidates", cfg.Directory)
	}
	if cfg.Clock == nil {
		return nil, fmt.Errorf("repair: recruiter needs a clock")
	}
	if cfg.Target <= 0 {
		cfg.Target = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	r := &Recruiter{p: p, cfg: cfg, cands: cands, failedAt: make(map[xkernel.Addr]time.Time)}
	prevSynced := p.OnPeerSynced
	p.OnPeerSynced = func(addr xkernel.Addr, entries int) {
		if prevSynced != nil {
			prevSynced(addr, entries)
		}
		r.stats.Recruited++
	}
	prevFailed := p.OnPeerSyncFailed
	p.OnPeerSyncFailed = func(addr xkernel.Addr) {
		if prevFailed != nil {
			prevFailed(addr)
		}
		r.onSyncFailed(addr)
	}
	return r, nil
}

// Start begins the probe loop. The first probe runs after one interval,
// giving a just-promoted primary time to finish its own takeover before
// repair traffic starts.
func (r *Recruiter) Start() {
	if r.task != nil {
		return
	}
	r.task = clock.NewPeriodic(r.cfg.Clock, r.cfg.Interval, r.cfg.Interval, r.tick)
}

// Stop halts the probe loop; attached peers are left as they are.
func (r *Recruiter) Stop() {
	if r.task != nil {
		r.task.Stop()
		r.task = nil
	}
}

// Stats reports the loop's lifetime counters.
func (r *Recruiter) Stats() RecruiterStats { return r.stats }

// tick is one probe round: count the live voting peers (synced or
// mid-join — a syncing peer is on its way, so no second candidate is
// probed for the same slot), and attach candidates until the target
// degree is covered. Observer peers never satisfy the degree: a
// read-only subscriber holds state but cannot take over, so it counts
// for nothing here no matter how healthy its link looks.
func (r *Recruiter) tick() {
	p := r.p
	if !p.Running() {
		return
	}
	have := 0
	attached := make(map[xkernel.Addr]bool)
	for _, st := range p.PeerStates() {
		attached[st.Addr] = true
		if st.Alive && !st.Observer {
			have++
		}
	}
	if have >= r.cfg.Target {
		return
	}
	now := r.cfg.Clock.Now()
	for _, cand := range r.cands.CandidateList(r.cfg.Service) {
		if have >= r.cfg.Target {
			return
		}
		if cand == r.cfg.Self || attached[cand] {
			continue
		}
		if t, ok := r.failedAt[cand]; ok && now.Sub(t) < r.cfg.Cooldown {
			continue
		}
		if err := p.AddPeer(cand); err != nil {
			continue
		}
		r.stats.Probes++
		if r.cfg.OnRecruit != nil {
			r.cfg.OnRecruit(cand)
		}
		have++
	}
}

// onSyncFailed rotates away from a candidate whose join exchange
// exhausted its retry budget: the peer is detached and quarantined, so
// the next tick probes the next candidate instead of hammering a dead
// one.
func (r *Recruiter) onSyncFailed(addr xkernel.Addr) {
	r.p.RemovePeer(addr)
	r.failedAt[addr] = r.cfg.Clock.Now()
	r.stats.Rotations++
	if r.cfg.OnRotate != nil {
		r.cfg.OnRotate(addr)
	}
}
