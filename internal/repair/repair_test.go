package repair

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/failover"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
	"rtpb/internal/xkernel"
)

// fixture is a simulated fabric with one primary host and a set of
// candidate hosts, each with its own protocol stack.
type fixture struct {
	clk     *clock.SimClock
	net     *netsim.Network
	ns      *failover.NameService
	primary *core.Primary
	ports   map[string]*xkernel.PortProtocol
	eps     map[string]*netsim.Endpoint
}

func addrOf(host string) xkernel.Addr {
	return xkernel.Addr(host + ":7000")
}

func stackOn(t *testing.T, net *netsim.Network, host string) (*xkernel.PortProtocol, *netsim.Endpoint) {
	t.Helper()
	ep, err := net.Endpoint(host)
	if err != nil {
		t.Fatal(err)
	}
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(ep)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Protocol("uport")
	return p.(*xkernel.PortProtocol), ep
}

func newFixture(t *testing.T, hosts ...string) *fixture {
	t.Helper()
	f := &fixture{
		clk:   clock.NewSim(),
		ns:    failover.NewNameService(),
		ports: make(map[string]*xkernel.PortProtocol),
		eps:   make(map[string]*netsim.Endpoint),
	}
	f.net = netsim.New(f.clk, 7)
	for _, h := range append([]string{"primary"}, hosts...) {
		port, ep := stackOn(t, f.net, h)
		f.ports[h] = port
		f.eps[h] = ep
	}
	p, err := core.NewPrimary(core.Config{
		Clock: f.clk,
		Port:  f.ports["primary"],
		Ell:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.primary = p
	if err := f.ns.Set("svc", addrOf("primary"), 1); err != nil {
		t.Fatal(err)
	}
	return f
}

// startBackup runs a backup replica on the named candidate host, pointed
// at the primary.
func (f *fixture) startBackup(t *testing.T, host string) *core.Backup {
	t.Helper()
	b, err := core.NewBackup(core.Config{
		Clock: f.clk,
		Port:  f.ports[host],
		Peer:  addrOf("primary"),
		Ell:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func (f *fixture) register(t *testing.T, name string, period time.Duration) {
	t.Helper()
	d := f.primary.Register(core.ObjectSpec{
		Name:         name,
		Size:         64,
		UpdatePeriod: period,
		Constraint: temporal.ExternalConstraint{
			DeltaP: period,
			DeltaB: 4 * period,
		},
	})
	if !d.Accepted {
		t.Fatalf("register %q: %s", name, d.Reason)
	}
}

func TestRecruiterRestoresDegree(t *testing.T) {
	f := newFixture(t, "cand1")
	f.register(t, "alpha", 20*time.Millisecond)
	f.primary.ClientWrite("alpha", []byte("v1"), nil)
	f.clk.RunFor(5 * time.Millisecond)

	b := f.startBackup(t, "cand1")
	f.ns.AddCandidate("svc", addrOf("cand1"))

	r, err := NewRecruiter(f.primary, RecruiterConfig{
		Clock:     f.clk,
		Service:   "svc",
		Directory: f.ns,
		Self:      addrOf("primary"),
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()

	if got := f.primary.SyncedPeers(); got != 0 {
		t.Fatalf("synced peers before recruitment = %d, want 0", got)
	}
	f.clk.RunFor(2 * time.Second)

	if got := f.primary.SyncedPeers(); got != 1 {
		t.Fatalf("synced peers after recruitment = %d, want 1", got)
	}
	if st := r.Stats(); st.Probes != 1 || st.Recruited != 1 || st.Rotations != 0 {
		t.Fatalf("stats = %+v, want one probe, one recruit, no rotation", st)
	}
	if _, _, ok := b.Value("alpha"); !ok {
		t.Fatal("recruited backup never received alpha's state")
	}
	// The loop is quiescent at target degree: no further probes.
	probes := r.Stats().Probes
	f.clk.RunFor(2 * time.Second)
	if r.Stats().Probes != probes {
		t.Fatalf("recruiter kept probing at full degree: %d -> %d", probes, r.Stats().Probes)
	}
}

func TestRecruiterRotatesPastDeadCandidate(t *testing.T) {
	f := newFixture(t, "cand1", "cand2")
	f.register(t, "alpha", 20*time.Millisecond)

	// cand1 sorts first but is down; cand2 is live.
	f.eps["cand1"].SetDown(true)
	b2 := f.startBackup(t, "cand2")
	_ = b2
	f.ns.AddCandidate("svc", addrOf("cand1"))
	f.ns.AddCandidate("svc", addrOf("cand2"))

	var rotated []xkernel.Addr
	r, err := NewRecruiter(f.primary, RecruiterConfig{
		Clock:     f.clk,
		Service:   "svc",
		Directory: f.ns,
		Self:      addrOf("primary"),
		OnRotate:  func(a xkernel.Addr) { rotated = append(rotated, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	defer r.Stop()

	f.clk.RunFor(10 * time.Second)

	if got := f.primary.SyncedPeers(); got != 1 {
		t.Fatalf("synced peers = %d, want 1 (cand2 recruited)", got)
	}
	if len(rotated) == 0 || rotated[0] != addrOf("cand1") {
		t.Fatalf("rotations = %v, want cand1 dropped first", rotated)
	}
	states := f.primary.PeerStates()
	if len(states) != 1 || states[0].Addr != addrOf("cand2") {
		t.Fatalf("peer states = %+v, want only cand2 attached", states)
	}
}

func TestRejoinerWaitsForSuccessorThenJoins(t *testing.T) {
	f := newFixture(t, "cand1")
	f.register(t, "alpha", 20*time.Millisecond)
	f.primary.ClientWrite("alpha", []byte("seed"), nil)

	// The directory initially still names the rejoiner itself — the
	// fenced-old-primary case: it must wait for a successor.
	ns := failover.NewNameService()
	if err := ns.Set("svc", addrOf("cand1"), 1); err != nil {
		t.Fatal(err)
	}

	started := 0
	rj, err := NewRejoiner(RejoinerConfig{
		Clock:     f.clk,
		Service:   "svc",
		Directory: ns,
		Self:      addrOf("cand1"),
		Announce:  true,
		Start: func(primary xkernel.Addr, epoch uint32) (*core.Backup, error) {
			started++
			if primary != addrOf("primary") {
				t.Fatalf("start hook got primary %v", primary)
			}
			if epoch != 2 {
				t.Fatalf("start hook got epoch %d, want 2", epoch)
			}
			return f.startBackup(t, "cand1"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rj.Start()
	defer rj.Stop()

	f.clk.RunFor(time.Second)
	if started != 0 {
		t.Fatal("rejoiner started a backup while the directory still named itself")
	}
	if rj.Status().Lookups == 0 {
		t.Fatal("rejoiner never polled the directory")
	}

	// A successor claims the service; the rejoiner must demote and join.
	if err := ns.Set("svc", addrOf("primary"), 2); err != nil {
		t.Fatal(err)
	}
	f.clk.RunFor(3 * time.Second)

	if started != 1 {
		t.Fatalf("start hook ran %d times, want 1", started)
	}
	st := rj.Status()
	if !st.Joined || st.Primary != addrOf("primary") {
		t.Fatalf("status = %+v, want joined to primary", st)
	}
	if b := rj.Backup(); b == nil || !b.Joined() {
		t.Fatal("backup never completed its join exchange")
	}
	if _, _, ok := rj.Backup().Value("alpha"); !ok {
		t.Fatal("rejoined backup missing alpha's state")
	}
	cands := ns.CandidateList("svc")
	if len(cands) != 1 || cands[0] != addrOf("cand1") {
		t.Fatalf("candidates after join = %v, want self announced", cands)
	}
	if got := f.primary.SyncedPeers(); got != 1 {
		t.Fatalf("primary synced peers = %d, want 1", got)
	}
}

func TestRejoinerJoinSurvivesLossyLink(t *testing.T) {
	f := newFixture(t, "cand1")
	if err := f.net.SetDefaultLink(netsim.LinkParams{
		Delay:    500 * time.Microsecond,
		Jitter:   200 * time.Microsecond,
		LossProb: 0.25,
	}); err != nil {
		t.Fatal(err)
	}
	f.register(t, "alpha", 20*time.Millisecond)
	f.register(t, "beta", 20*time.Millisecond)
	f.primary.ClientWrite("alpha", []byte("a"), nil)
	f.primary.ClientWrite("beta", []byte("b"), nil)
	f.clk.RunFor(10 * time.Millisecond)

	rj, err := NewRejoiner(RejoinerConfig{
		Clock:     f.clk,
		Service:   "svc",
		Directory: f.ns,
		Self:      addrOf("cand1"),
		Start: func(primary xkernel.Addr, epoch uint32) (*core.Backup, error) {
			return f.startBackup(t, "cand1"), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rj.Start()
	defer rj.Stop()

	f.clk.RunFor(20 * time.Second)
	if !rj.Status().Joined {
		t.Fatalf("rejoin never completed over a 25%%-loss link; status %+v", rj.Status())
	}
	if _, _, ok := rj.Backup().Value("beta"); !ok {
		t.Fatal("rejoined backup missing beta's state")
	}
}

// TestRejoinerDemotesFencedPrimaryInPlace covers the repaired-machine
// path where the old primary's process survived its partition: instead of
// rebuilding a backup from nothing, the rejoiner demotes the running
// replica in place. The object table carries over, so the anti-entropy
// digest transfers only what the replica missed, and the role flip is
// observable through Role and Transitions.
func TestRejoinerDemotesFencedPrimaryInPlace(t *testing.T) {
	f := newFixture(t, "succ")
	f.register(t, "alpha", 20*time.Millisecond)
	if err := f.primary.SetPeer(addrOf("succ")); err != nil {
		t.Fatal(err)
	}
	b := f.startBackup(t, "succ")
	f.primary.ClientWrite("alpha", []byte("old"), nil)
	f.clk.RunFor(500 * time.Millisecond)
	if _, _, ok := b.Value("alpha"); !ok {
		t.Fatal("backup never replicated alpha before the partition")
	}

	// The old primary's machine drops off the fabric; the backup promotes
	// in place and serves a newer value under the bumped epoch.
	f.eps["primary"].SetDown(true)
	succ, err := failover.Promote(b, failover.PromoteOptions{
		Service: "svc", SelfAddr: addrOf("succ"), Names: f.ns,
	})
	if err != nil {
		t.Fatalf("promotion: %v", err)
	}
	succ.ClientWrite("alpha", []byte("new"), nil)
	f.clk.RunFor(100 * time.Millisecond)

	// The link heals. The fenced old primary is still running; the
	// rejoiner demotes it in place and drives the join exchange.
	f.eps["primary"].SetDown(false)
	demoted := 0
	rj, err := NewRejoiner(RejoinerConfig{
		Clock:     f.clk,
		Service:   "svc",
		Directory: f.ns,
		Self:      addrOf("primary"),
		Replica:   f.primary,
		OnDemoted: func(b *core.Backup) {
			demoted++
			if b != f.primary {
				t.Fatal("demotion handed back a different replica")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rj.Start()
	defer rj.Stop()
	f.clk.RunFor(3 * time.Second)

	if demoted != 1 {
		t.Fatalf("OnDemoted fired %d times, want 1", demoted)
	}
	if f.primary.Role() != core.RoleBackup || f.primary.Transitions() != 1 {
		t.Fatalf("role=%v transitions=%d, want backup/1",
			f.primary.Role(), f.primary.Transitions())
	}
	st := rj.Status()
	if !st.Joined || st.Primary != addrOf("succ") {
		t.Fatalf("status = %+v, want joined to succ", st)
	}
	if f.primary.Epoch() < 2 {
		t.Fatalf("demoted replica still at epoch %d, want the successor's", f.primary.Epoch())
	}
	if v, _, ok := f.primary.Value("alpha"); !ok || string(v) != "new" {
		t.Fatalf("demoted replica holds alpha=%q ok=%v, want the successor's value", v, ok)
	}
	// Live replication resumed: a fresh write reaches the demoted replica.
	succ.ClientWrite("alpha", []byte("newer"), nil)
	f.clk.RunFor(200 * time.Millisecond)
	if v, _, _ := f.primary.Value("alpha"); string(v) != "newer" {
		t.Fatalf("demoted replica not tracking live writes: %q", v)
	}
	if got := succ.SyncedPeers(); got != 1 {
		t.Fatalf("successor synced peers = %d, want the demoted replica attached", got)
	}
}

// TestRejoinerConfigRequiresExactlyOneStartPath pins the Start/Replica
// exclusivity rule.
func TestRejoinerConfigRequiresExactlyOneStartPath(t *testing.T) {
	clk := clock.NewSim()
	ns := failover.NewNameService()
	base := RejoinerConfig{Clock: clk, Service: "svc", Directory: ns, Self: addrOf("x")}
	if _, err := NewRejoiner(base); err == nil {
		t.Fatal("rejoiner accepted a config with neither Start nor Replica")
	}
	both := base
	both.Start = func(xkernel.Addr, uint32) (*core.Backup, error) { return nil, nil }
	both.Replica = &core.Replica{}
	if _, err := NewRejoiner(both); err == nil {
		t.Fatal("rejoiner accepted a config with both Start and Replica")
	}
}
