// Package xkernel is a from-scratch reimplementation of the x-kernel
// protocol-development architecture (Hutchinson & Peterson) that the paper
// uses as its implementation substrate. It provides the uniform protocol
// interface (open/push/demux/control), messages with efficient header
// push/pop, and a declaratively configured protocol graph. The RTPB
// protocol in internal/core is written as an anchor protocol in this
// framework, mirroring Figure 5 of the paper: RTPB sits on a UDP-like port
// protocol, which sits on a network driver.
package xkernel

import "errors"

// ErrShortMessage is returned by Pop when the message holds fewer bytes
// than the requested header length.
var ErrShortMessage = errors.New("xkernel: message shorter than header")

// Message is a network message moving through the protocol graph. As in
// the x-kernel, protocols prepend headers on the way down (Push) and strip
// them on the way up (Pop). The implementation keeps the payload at the
// tail of one buffer with headroom at the front, so a Push by each layer
// is a copy of only that layer's header.
type Message struct {
	buf []byte
	off int
}

// defaultHeadroom leaves room for a typical stack of small headers
// without reallocating.
const defaultHeadroom = 64

// NewMessage builds a message whose current contents are payload.
func NewMessage(payload []byte) *Message {
	buf := make([]byte, defaultHeadroom+len(payload))
	copy(buf[defaultHeadroom:], payload)
	return &Message{buf: buf, off: defaultHeadroom}
}

// FromWire wraps bytes received from a driver as a message with no
// headroom (nothing will be pushed onto an inbound message).
func FromWire(b []byte) *Message {
	return &Message{buf: b, off: 0}
}

// Len reports the current message length (headers pushed so far plus
// payload).
func (m *Message) Len() int { return len(m.buf) - m.off }

// Bytes returns the current message contents. The slice aliases the
// message's internal buffer; drivers must copy it if they retain it.
func (m *Message) Bytes() []byte { return m.buf[m.off:] }

// Push prepends a header to the message.
func (m *Message) Push(header []byte) {
	if len(header) > m.off {
		grown := make([]byte, len(header)+defaultHeadroom+m.Len())
		n := copy(grown[len(header)+defaultHeadroom:], m.Bytes())
		m.buf = grown[:len(header)+defaultHeadroom+n]
		m.off = len(header) + defaultHeadroom
	}
	m.off -= len(header)
	copy(m.buf[m.off:], header)
}

// Pop strips an n-byte header from the front of the message and returns
// it. The returned slice is valid until the next Push.
func (m *Message) Pop(n int) ([]byte, error) {
	if n < 0 || m.Len() < n {
		return nil, ErrShortMessage
	}
	h := m.buf[m.off : m.off+n]
	m.off += n
	return h, nil
}

// Clone returns an independent copy of the message with fresh headroom.
func (m *Message) Clone() *Message {
	return NewMessage(m.Bytes())
}
