package xkernel

import (
	"errors"
	"fmt"
)

// Addr is a protocol participant address. Its syntax is interpreted by
// each protocol layer: the network driver uses a host name, the port
// protocol uses "host:port", and so on — mirroring the x-kernel's
// participant lists.
type Addr string

// Upper receives messages demultiplexed upward by the protocol below it
// (the x-kernel xDemux up-call).
type Upper interface {
	// Demux delivers an inbound message whose headers below this layer
	// have already been stripped. from is the sender's address at the
	// lower protocol's level.
	Demux(m *Message, from Addr) error
}

// UpperFunc adapts a function to the Upper interface.
type UpperFunc func(m *Message, from Addr) error

// Demux implements Upper.
func (f UpperFunc) Demux(m *Message, from Addr) error { return f(m, from) }

// Session is an open communication channel through one protocol layer to
// a remote participant (the x-kernel session object).
type Session interface {
	// Push sends a message down through this session (the x-kernel xPush).
	Push(m *Message) error
	// Remote reports the participant address the session is open to.
	Remote() Addr
	// Close releases the session.
	Close() error
}

// Protocol is the x-kernel uniform protocol interface. Protocols are
// composed into a graph; each protocol talks to the one below it through
// Open/Push and to the one above through the Upper registered with
// OpenEnable.
type Protocol interface {
	// Name identifies the protocol in the graph configuration.
	Name() string
	// OpenEnable registers the upper protocol that passively accepts
	// inbound messages demuxed by this protocol (the x-kernel
	// xOpenEnable). At most one upper protocol may be enabled per
	// demux key; protocols with richer demultiplexing (e.g. ports)
	// provide their own enable calls and may reject this one.
	OpenEnable(u Upper) error
	// Open actively opens a session to the remote participant.
	Open(remote Addr) (Session, error)
	// Demux accepts a message arriving from the protocol below.
	Demux(m *Message, from Addr) error
	// Control performs a protocol-specific control operation (the
	// x-kernel xControl): opcode with an opaque argument, returning an
	// opaque result.
	Control(op string, arg any) (any, error)
}

// Errors shared by protocol implementations.
var (
	// ErrNoUpper is returned by Demux when no upper protocol is enabled
	// for the message.
	ErrNoUpper = errors.New("xkernel: no upper protocol enabled")
	// ErrBadAddress is returned by Open for a malformed participant
	// address.
	ErrBadAddress = errors.New("xkernel: bad participant address")
	// ErrUnknownControl is returned by Control for an unrecognized opcode.
	ErrUnknownControl = errors.New("xkernel: unknown control op")
	// ErrClosed is returned when using a closed session.
	ErrClosed = errors.New("xkernel: session closed")
)

// Graph is a configured instance of the x-kernel: a set of named
// protocols and their layering, built from a declarative configuration in
// the spirit of the x-kernel's graph.comp file.
type Graph struct {
	protocols map[string]Protocol
	below     map[string]string
}

// Factory instantiates a protocol given the protocol configured below it
// (nil for the graph's bottom) and free-form options.
type Factory func(below Protocol, opts map[string]string) (Protocol, error)

// Spec declares one node of the protocol graph.
type Spec struct {
	// Name is the protocol instance name.
	Name string
	// Below is the name of the protocol this one sits on; empty for the
	// bottom of the graph.
	Below string
	// Build instantiates the protocol.
	Build Factory
	// Options is passed to Build.
	Options map[string]string
}

// BuildGraph instantiates a protocol graph bottom-up from specs. Specs
// may appear in any order; BuildGraph resolves dependencies and rejects
// cycles, duplicate names, and references to missing protocols.
func BuildGraph(specs []Spec) (*Graph, error) {
	byName := make(map[string]Spec, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			return nil, errors.New("xkernel: protocol spec with empty name")
		}
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("xkernel: duplicate protocol %q", s.Name)
		}
		byName[s.Name] = s
	}
	g := &Graph{
		protocols: make(map[string]Protocol, len(specs)),
		below:     make(map[string]string, len(specs)),
	}
	var build func(name string, visiting map[string]bool) (Protocol, error)
	build = func(name string, visiting map[string]bool) (Protocol, error) {
		if p, ok := g.protocols[name]; ok {
			return p, nil
		}
		if visiting[name] {
			return nil, fmt.Errorf("xkernel: cycle through protocol %q", name)
		}
		s, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("xkernel: protocol %q not declared", name)
		}
		visiting[name] = true
		defer delete(visiting, name)
		var below Protocol
		if s.Below != "" {
			var err error
			below, err = build(s.Below, visiting)
			if err != nil {
				return nil, err
			}
		}
		p, err := s.Build(below, s.Options)
		if err != nil {
			return nil, fmt.Errorf("xkernel: build %q: %w", name, err)
		}
		if p.Name() != s.Name {
			return nil, fmt.Errorf("xkernel: factory for %q built protocol named %q", s.Name, p.Name())
		}
		g.protocols[name] = p
		g.below[name] = s.Below
		return p, nil
	}
	for _, s := range specs {
		if _, err := build(s.Name, map[string]bool{}); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Protocol looks up a protocol instance by name.
func (g *Graph) Protocol(name string) (Protocol, bool) {
	p, ok := g.protocols[name]
	return p, ok
}

// Below reports the name of the protocol configured below name.
func (g *Graph) Below(name string) string { return g.below[name] }

// Names returns the protocol names in the graph (unordered).
func (g *Graph) Names() []string {
	out := make([]string, 0, len(g.protocols))
	for n := range g.protocols {
		out = append(out, n)
	}
	return out
}
