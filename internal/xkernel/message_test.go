package xkernel

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMessagePushPop(t *testing.T) {
	m := NewMessage([]byte("payload"))
	m.Push([]byte("hdr2"))
	m.Push([]byte("h1"))
	if got := string(m.Bytes()); got != "h1hdr2payload" {
		t.Fatalf("Bytes() = %q", got)
	}
	h, err := m.Pop(2)
	if err != nil || string(h) != "h1" {
		t.Fatalf("Pop(2) = %q, %v", h, err)
	}
	h, err = m.Pop(4)
	if err != nil || string(h) != "hdr2" {
		t.Fatalf("Pop(4) = %q, %v", h, err)
	}
	if got := string(m.Bytes()); got != "payload" {
		t.Fatalf("after pops Bytes() = %q", got)
	}
}

func TestMessagePopTooLong(t *testing.T) {
	m := NewMessage([]byte("abc"))
	if _, err := m.Pop(4); err != ErrShortMessage {
		t.Fatalf("Pop(4) err = %v, want ErrShortMessage", err)
	}
	if _, err := m.Pop(-1); err != ErrShortMessage {
		t.Fatalf("Pop(-1) err = %v, want ErrShortMessage", err)
	}
}

func TestMessagePushGrowsBeyondHeadroom(t *testing.T) {
	m := NewMessage([]byte("p"))
	big := bytes.Repeat([]byte{0xAA}, 500)
	m.Push(big)
	if m.Len() != 501 {
		t.Fatalf("Len() = %d, want 501", m.Len())
	}
	h, err := m.Pop(500)
	if err != nil || !bytes.Equal(h, big) {
		t.Fatalf("big header did not survive push: %v", err)
	}
	if string(m.Bytes()) != "p" {
		t.Fatalf("payload corrupted: %q", m.Bytes())
	}
}

func TestMessageCloneIsIndependent(t *testing.T) {
	m := NewMessage([]byte("data"))
	c := m.Clone()
	c.Push([]byte("x"))
	if m.Len() != 4 {
		t.Fatalf("clone mutation affected original: len=%d", m.Len())
	}
}

func TestMessagePushPopRoundTripProperty(t *testing.T) {
	f := func(payload []byte, headers [][]byte) bool {
		m := NewMessage(payload)
		for _, h := range headers {
			m.Push(h)
		}
		for i := len(headers) - 1; i >= 0; i-- {
			got, err := m.Pop(len(headers[i]))
			if err != nil || !bytes.Equal(got, headers[i]) {
				return false
			}
		}
		return bytes.Equal(m.Bytes(), payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromWire(t *testing.T) {
	m := FromWire([]byte("raw"))
	if string(m.Bytes()) != "raw" || m.Len() != 3 {
		t.Fatalf("FromWire contents = %q", m.Bytes())
	}
}
