package xkernel

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// PortProtocol is a minimal UDP-like protocol: it multiplexes a host-level
// datagram service into numbered ports with a four-byte header
// (source port, destination port). In the paper's stack this is the role
// UDP plays beneath the RTPB anchor protocol.
type PortProtocol struct {
	name      string
	below     Protocol
	down      Session // session to the protocol below, per remote host
	sessions  map[Addr]Session
	bindings  map[uint16]Upper
	nextEphem uint16
}

var _ Protocol = (*PortProtocol)(nil)

// portHeaderLen is srcPort(2) + dstPort(2).
const portHeaderLen = 4

// NewPortProtocol layers port multiplexing over the protocol below.
func NewPortProtocol(name string, below Protocol) (*PortProtocol, error) {
	if below == nil {
		return nil, fmt.Errorf("xkernel: port protocol %q needs a protocol below", name)
	}
	p := &PortProtocol{
		name:      name,
		below:     below,
		sessions:  make(map[Addr]Session),
		bindings:  make(map[uint16]Upper),
		nextEphem: 49152,
	}
	if err := below.OpenEnable(p); err != nil {
		return nil, err
	}
	return p, nil
}

// PortFactory returns a Factory producing a PortProtocol.
func PortFactory() Factory {
	return func(below Protocol, opts map[string]string) (Protocol, error) {
		name := opts["name"]
		if name == "" {
			name = "uport"
		}
		return NewPortProtocol(name, below)
	}
}

// Name implements Protocol.
func (p *PortProtocol) Name() string { return p.name }

// OpenEnable implements Protocol. A port protocol demuxes by port number,
// so passive opens must name a port; use EnablePort instead.
func (p *PortProtocol) OpenEnable(Upper) error {
	return fmt.Errorf("xkernel: %s: OpenEnable without a port; use EnablePort", p.name)
}

// EnablePort registers u to receive messages addressed to port.
func (p *PortProtocol) EnablePort(port uint16, u Upper) error {
	if _, taken := p.bindings[port]; taken {
		return fmt.Errorf("xkernel: %s: port %d already enabled", p.name, port)
	}
	p.bindings[port] = u
	return nil
}

// DisablePort removes a port binding.
func (p *PortProtocol) DisablePort(port uint16) {
	delete(p.bindings, port)
}

// Open implements Protocol: remote must be "host:port". The local port is
// ephemeral; use OpenFrom to pin it.
func (p *PortProtocol) Open(remote Addr) (Session, error) {
	port := p.nextEphem
	p.nextEphem++
	if p.nextEphem == 0 {
		p.nextEphem = 49152
	}
	return p.OpenFrom(port, remote)
}

// OpenFrom opens a session to remote ("host:port") with the given local
// port, which is how a well-known-port protocol like RTPB opens its peer.
func (p *PortProtocol) OpenFrom(local uint16, remote Addr) (Session, error) {
	host, rport, err := SplitHostPort(remote)
	if err != nil {
		return nil, err
	}
	down, ok := p.sessions[Addr(host)]
	if !ok {
		down, err = p.below.Open(Addr(host))
		if err != nil {
			return nil, err
		}
		p.sessions[Addr(host)] = down
	}
	return &portSession{p: p, down: down, remote: remote, local: local, rport: rport}, nil
}

// Demux implements Protocol: strip the port header and deliver to the
// upper protocol bound to the destination port.
func (p *PortProtocol) Demux(m *Message, from Addr) error {
	h, err := m.Pop(portHeaderLen)
	if err != nil {
		return err
	}
	src := binary.BigEndian.Uint16(h[0:2])
	dst := binary.BigEndian.Uint16(h[2:4])
	u, ok := p.bindings[dst]
	if !ok {
		return ErrNoUpper // no listener: drop, as UDP would
	}
	return u.Demux(m, JoinHostPort(string(from), src))
}

// Control implements Protocol. Supported ops:
// "local-addr" → string (delegated to the protocol below).
func (p *PortProtocol) Control(op string, arg any) (any, error) {
	switch op {
	case "local-addr":
		return p.below.Control(op, arg)
	default:
		return nil, ErrUnknownControl
	}
}

type portSession struct {
	p      *PortProtocol
	down   Session
	remote Addr
	local  uint16
	rport  uint16
	closed bool
}

func (s *portSession) Push(m *Message) error {
	if s.closed {
		return ErrClosed
	}
	var h [portHeaderLen]byte
	binary.BigEndian.PutUint16(h[0:2], s.local)
	binary.BigEndian.PutUint16(h[2:4], s.rport)
	m.Push(h[:])
	return s.down.Push(m)
}

func (s *portSession) Remote() Addr { return s.remote }

func (s *portSession) Close() error {
	s.closed = true
	return nil
}

// SplitHostPort parses "host:port" (the last colon separates the port).
func SplitHostPort(a Addr) (host string, port uint16, err error) {
	s := string(a)
	i := strings.LastIndexByte(s, ':')
	if i < 0 || i == len(s)-1 || i == 0 {
		return "", 0, fmt.Errorf("%w: %q", ErrBadAddress, s)
	}
	n, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return "", 0, fmt.Errorf("%w: %q: %v", ErrBadAddress, s, err)
	}
	return s[:i], uint16(n), nil
}

// JoinHostPort formats a host and port as an Addr.
func JoinHostPort(host string, port uint16) Addr {
	return Addr(host + ":" + strconv.FormatUint(uint64(port), 10))
}
