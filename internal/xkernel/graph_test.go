package xkernel

import (
	"errors"
	"strings"
	"testing"
)

// fakeTransport is an in-memory loopback fabric shared by several
// endpoints, delivering synchronously.
type fakeFabric struct {
	endpoints map[string]*fakeEndpoint
}

func newFakeFabric() *fakeFabric {
	return &fakeFabric{endpoints: make(map[string]*fakeEndpoint)}
}

func (f *fakeFabric) endpoint(host string) *fakeEndpoint {
	ep := &fakeEndpoint{fabric: f, host: host}
	f.endpoints[host] = ep
	return ep
}

type fakeEndpoint struct {
	fabric *fakeFabric
	host   string
	recv   func(from string, payload []byte)
	sent   int
}

func (e *fakeEndpoint) Send(to string, payload []byte) error {
	e.sent++
	dst, ok := e.fabric.endpoints[to]
	if !ok || dst.recv == nil {
		return nil // dropped, like UDP
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	dst.recv(e.host, cp)
	return nil
}

func (e *fakeEndpoint) SetReceiver(fn func(from string, payload []byte)) { e.recv = fn }
func (e *fakeEndpoint) LocalAddr() string                                { return e.host }
func (e *fakeEndpoint) Close() error                                     { return nil }

func buildStack(t *testing.T, fabric *fakeFabric, host string) *Graph {
	t.Helper()
	g, err := BuildGraph([]Spec{
		{Name: "uport", Below: "driver", Build: PortFactory()},
		{Name: "driver", Build: DriverFactory(fabric.endpoint(host))},
	})
	if err != nil {
		t.Fatalf("BuildGraph(%s): %v", host, err)
	}
	return g
}

func portOf(t *testing.T, g *Graph) *PortProtocol {
	t.Helper()
	p, ok := g.Protocol("uport")
	if !ok {
		t.Fatal("uport missing from graph")
	}
	pp, ok := p.(*PortProtocol)
	if !ok {
		t.Fatalf("uport has type %T", p)
	}
	return pp
}

func TestGraphEndToEndPortDelivery(t *testing.T) {
	fabric := newFakeFabric()
	ga := buildStack(t, fabric, "alpha")
	gb := buildStack(t, fabric, "beta")

	var got []string
	var gotFrom Addr
	portOf(t, gb).EnablePort(7000, UpperFunc(func(m *Message, from Addr) error {
		got = append(got, string(m.Bytes()))
		gotFrom = from
		return nil
	}))

	sess, err := portOf(t, ga).OpenFrom(7000, "beta:7000")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(NewMessage([]byte("hello"))); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("delivered = %v, want [hello]", got)
	}
	if gotFrom != "alpha:7000" {
		t.Fatalf("from = %q, want alpha:7000", gotFrom)
	}
}

func TestPortDemuxDropsUnboundPort(t *testing.T) {
	fabric := newFakeFabric()
	ga := buildStack(t, fabric, "alpha")
	buildStack(t, fabric, "beta") // no binding on beta

	sess, err := portOf(t, ga).Open("beta:9999")
	if err != nil {
		t.Fatal(err)
	}
	// Push succeeds (fire and forget); beta drops it for lack of listener.
	if err := sess.Push(NewMessage([]byte("x"))); err != nil {
		t.Fatal(err)
	}
}

func TestPortEnableConflicts(t *testing.T) {
	fabric := newFakeFabric()
	g := buildStack(t, fabric, "alpha")
	p := portOf(t, g)
	u := UpperFunc(func(*Message, Addr) error { return nil })
	if err := p.EnablePort(7000, u); err != nil {
		t.Fatal(err)
	}
	if err := p.EnablePort(7000, u); err == nil {
		t.Fatal("duplicate EnablePort succeeded")
	}
	p.DisablePort(7000)
	if err := p.EnablePort(7000, u); err != nil {
		t.Fatalf("EnablePort after DisablePort: %v", err)
	}
	if err := p.OpenEnable(u); err == nil {
		t.Fatal("portless OpenEnable succeeded on a port protocol")
	}
}

func TestSessionCloseRejectsPush(t *testing.T) {
	fabric := newFakeFabric()
	g := buildStack(t, fabric, "alpha")
	sess, err := portOf(t, g).Open("beta:7000")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(NewMessage(nil)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Push after Close = %v, want ErrClosed", err)
	}
}

func TestControlLocalAddrDelegates(t *testing.T) {
	fabric := newFakeFabric()
	g := buildStack(t, fabric, "alpha")
	v, err := portOf(t, g).Control("local-addr", nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != "alpha" {
		t.Fatalf("local-addr = %v, want alpha", v)
	}
	if _, err := portOf(t, g).Control("bogus", nil); !errors.Is(err, ErrUnknownControl) {
		t.Fatalf("bogus control err = %v, want ErrUnknownControl", err)
	}
}

func TestBuildGraphErrors(t *testing.T) {
	fabric := newFakeFabric()
	drv := DriverFactory(fabric.endpoint("x"))
	cases := []struct {
		name  string
		specs []Spec
		want  string
	}{
		{
			"duplicate",
			[]Spec{{Name: "a", Build: drv}, {Name: "a", Build: drv}},
			"duplicate",
		},
		{
			"missing below",
			[]Spec{{Name: "p", Below: "ghost", Build: PortFactory()}},
			"not declared",
		},
		{
			"cycle",
			[]Spec{
				{Name: "a", Below: "b", Build: PortFactory()},
				{Name: "b", Below: "a", Build: PortFactory()},
			},
			"cycle",
		},
		{
			"empty name",
			[]Spec{{Build: drv}},
			"empty name",
		},
		{
			"driver not at bottom",
			[]Spec{
				{Name: "bottom", Build: drv},
				{Name: "driver2", Below: "bottom", Build: DriverFactory(fabric.endpoint("y"))},
			},
			"bottom",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildGraph(tc.specs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestSplitJoinHostPort(t *testing.T) {
	host, port, err := SplitHostPort("node-a:7000")
	if err != nil || host != "node-a" || port != 7000 {
		t.Fatalf("SplitHostPort = %q, %d, %v", host, port, err)
	}
	for _, bad := range []Addr{"nocolon", ":7000", "host:", "host:notanum", "host:70000"} {
		if _, _, err := SplitHostPort(bad); err == nil {
			t.Fatalf("SplitHostPort(%q) accepted", bad)
		}
	}
	if JoinHostPort("h", 9) != "h:9" {
		t.Fatal("JoinHostPort mismatch")
	}
}

func TestPortEphemeralPortsDistinct(t *testing.T) {
	fabric := newFakeFabric()
	g := buildStack(t, fabric, "alpha")
	p := portOf(t, g)
	s1, err := p.Open("beta:7000")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Open("beta:7000")
	if err != nil {
		t.Fatal(err)
	}
	a := s1.(*portSession).local
	b := s2.(*portSession).local
	if a == b {
		t.Fatalf("ephemeral ports collide: %d", a)
	}
}

func TestDriverDropsWithoutUpper(t *testing.T) {
	fabric := newFakeFabric()
	ep := fabric.endpoint("solo")
	d := NewDriver("driver", ep)
	if err := d.Demux(NewMessage(nil), "x"); !errors.Is(err, ErrNoUpper) {
		t.Fatalf("Demux without upper = %v, want ErrNoUpper", err)
	}
	// Inbound datagrams before OpenEnable must not panic.
	ep.recv("ghost", []byte("boo"))
}
