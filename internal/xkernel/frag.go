package xkernel

import (
	"encoding/binary"
	"fmt"
	"time"

	"rtpb/internal/clock"
)

// FragClock is the scheduling capability FragProtocol needs from its
// host's clock.
type FragClock interface {
	Schedule(d time.Duration, fn func()) *clock.Event
	Now() time.Time
}

// FragProtocol fragments messages larger than the transport MTU and
// reassembles them on receipt — the role the x-kernel's BLAST protocol
// plays in classic configurations. It demonstrates the protocol graph's
// composability: insert it between the port protocol and the driver
// (rtpb → uport → frag → driver) and large object updates transparently
// survive a datagram transport.
//
// Header (8 bytes, big-endian): message id (4), fragment index (2),
// fragment count (2). Reassembly is per (source, message id); partial
// messages are discarded after a timeout, since any fragment can be lost.
type FragProtocol struct {
	name       string
	below      Protocol
	upper      Upper
	mtu        int
	timeout    time.Duration
	clk        FragClock
	nextID     uint32
	reassembly map[fragKey]*fragBuffer
}

type fragKey struct {
	from Addr
	id   uint32
}

type fragBuffer struct {
	parts    [][]byte
	received int
	expires  *clock.Event
}

const fragHeaderLen = 8

// FragOptions configures a FragProtocol.
type FragOptions struct {
	// Name is the protocol instance name; defaults to "frag".
	Name string
	// MTU is the maximum payload per fragment (including upper-layer
	// headers, excluding the fragment header); defaults to 1400.
	MTU int
	// Timeout discards incomplete reassemblies; defaults to 1s.
	Timeout time.Duration
	// Clock schedules reassembly timeouts; required.
	Clock FragClock
}

// NewFragProtocol layers fragmentation over the protocol below.
func NewFragProtocol(opts FragOptions, below Protocol) (*FragProtocol, error) {
	if below == nil {
		return nil, fmt.Errorf("xkernel: frag protocol needs a protocol below")
	}
	if opts.Clock == nil {
		return nil, fmt.Errorf("xkernel: frag protocol needs a clock")
	}
	f := &FragProtocol{
		name:       opts.Name,
		below:      below,
		mtu:        opts.MTU,
		timeout:    opts.Timeout,
		clk:        opts.Clock,
		reassembly: make(map[fragKey]*fragBuffer),
	}
	if f.name == "" {
		f.name = "frag"
	}
	if f.mtu <= 0 {
		f.mtu = 1400
	}
	if f.timeout <= 0 {
		f.timeout = time.Second
	}
	if err := below.OpenEnable(f); err != nil {
		return nil, err
	}
	return f, nil
}

// FragFactory returns a Factory producing a FragProtocol.
func FragFactory(opts FragOptions) Factory {
	return func(below Protocol, cfg map[string]string) (Protocol, error) {
		if n := cfg["name"]; n != "" {
			opts.Name = n
		}
		return NewFragProtocol(opts, below)
	}
}

var _ Protocol = (*FragProtocol)(nil)

// Name implements Protocol.
func (f *FragProtocol) Name() string { return f.name }

// OpenEnable implements Protocol.
func (f *FragProtocol) OpenEnable(u Upper) error {
	f.upper = u
	return nil
}

// Open implements Protocol.
func (f *FragProtocol) Open(remote Addr) (Session, error) {
	down, err := f.below.Open(remote)
	if err != nil {
		return nil, err
	}
	return &fragSession{f: f, down: down, remote: remote}, nil
}

// Demux implements Protocol: strip the fragment header, reassemble, and
// deliver complete messages upward.
func (f *FragProtocol) Demux(m *Message, from Addr) error {
	h, err := m.Pop(fragHeaderLen)
	if err != nil {
		return err
	}
	id := binary.BigEndian.Uint32(h[0:4])
	idx := int(binary.BigEndian.Uint16(h[4:6]))
	count := int(binary.BigEndian.Uint16(h[6:8]))
	if count == 0 || idx >= count {
		return fmt.Errorf("xkernel: %s: bad fragment %d/%d", f.name, idx, count)
	}
	if count == 1 {
		return f.deliver(m, from)
	}
	key := fragKey{from: from, id: id}
	buf, ok := f.reassembly[key]
	if !ok {
		buf = &fragBuffer{parts: make([][]byte, count)}
		buf.expires = f.clk.Schedule(f.timeout, func() {
			delete(f.reassembly, key)
		})
		f.reassembly[key] = buf
	}
	if len(buf.parts) != count {
		// Conflicting fragment count: drop the whole reassembly.
		buf.expires.Cancel()
		delete(f.reassembly, key)
		return fmt.Errorf("xkernel: %s: fragment count changed mid-message", f.name)
	}
	if buf.parts[idx] == nil {
		part := make([]byte, m.Len())
		copy(part, m.Bytes())
		buf.parts[idx] = part
		buf.received++
	}
	if buf.received < count {
		return nil
	}
	buf.expires.Cancel()
	delete(f.reassembly, key)
	total := 0
	for _, p := range buf.parts {
		total += len(p)
	}
	whole := make([]byte, 0, total)
	for _, p := range buf.parts {
		whole = append(whole, p...)
	}
	return f.deliver(FromWire(whole), from)
}

func (f *FragProtocol) deliver(m *Message, from Addr) error {
	if f.upper == nil {
		return ErrNoUpper
	}
	return f.upper.Demux(m, from)
}

// Control implements Protocol. Supported ops: "mtu" → int,
// "pending-reassemblies" → int, otherwise delegated below.
func (f *FragProtocol) Control(op string, arg any) (any, error) {
	switch op {
	case "mtu":
		return f.mtu, nil
	case "pending-reassemblies":
		return len(f.reassembly), nil
	default:
		return f.below.Control(op, arg)
	}
}

type fragSession struct {
	f      *FragProtocol
	down   Session
	remote Addr
	closed bool
}

func (s *fragSession) Push(m *Message) error {
	if s.closed {
		return ErrClosed
	}
	payload := m.Bytes()
	count := (len(payload) + s.f.mtu - 1) / s.f.mtu
	if count == 0 {
		count = 1
	}
	if count > 0xFFFF {
		return fmt.Errorf("xkernel: %s: message needs %d fragments (max 65535)", s.f.name, count)
	}
	s.f.nextID++
	id := s.f.nextID
	for idx := 0; idx < count; idx++ {
		lo := idx * s.f.mtu
		hi := min(lo+s.f.mtu, len(payload))
		frag := NewMessage(payload[lo:hi])
		var h [fragHeaderLen]byte
		binary.BigEndian.PutUint32(h[0:4], id)
		binary.BigEndian.PutUint16(h[4:6], uint16(idx))
		binary.BigEndian.PutUint16(h[6:8], uint16(count))
		frag.Push(h[:])
		if err := s.down.Push(frag); err != nil {
			return err
		}
	}
	return nil
}

func (s *fragSession) Remote() Addr { return s.remote }

func (s *fragSession) Close() error {
	s.closed = true
	return s.down.Close()
}
