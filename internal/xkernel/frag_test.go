package xkernel

import (
	"bytes"
	"testing"
	"time"

	"rtpb/internal/clock"
)

// buildFragStack assembles uport → frag → driver on a fake fabric host.
func buildFragStack(t *testing.T, clk *clock.SimClock, fabric *fakeFabric, host string, mtu int) *Graph {
	t.Helper()
	g, err := BuildGraph([]Spec{
		{Name: "uport", Below: "frag", Build: PortFactory()},
		{Name: "frag", Below: "driver", Build: FragFactory(FragOptions{MTU: mtu, Clock: clk, Timeout: 100 * time.Millisecond})},
		{Name: "driver", Build: DriverFactory(fabric.endpoint(host))},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFragSmallMessagePassesThrough(t *testing.T) {
	clk := clock.NewSim()
	fabric := newFakeFabric()
	ga := buildFragStack(t, clk, fabric, "a", 100)
	gb := buildFragStack(t, clk, fabric, "b", 100)
	var got []byte
	portOf(t, gb).EnablePort(9, UpperFunc(func(m *Message, from Addr) error {
		got = append([]byte(nil), m.Bytes()...)
		return nil
	}))
	sess, err := portOf(t, ga).OpenFrom(9, "b:9")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Push(NewMessage([]byte("tiny"))); err != nil {
		t.Fatal(err)
	}
	if string(got) != "tiny" {
		t.Fatalf("got %q", got)
	}
}

func TestFragLargeMessageReassembles(t *testing.T) {
	clk := clock.NewSim()
	fabric := newFakeFabric()
	ga := buildFragStack(t, clk, fabric, "a", 64)
	gb := buildFragStack(t, clk, fabric, "b", 64)
	var got []byte
	deliveries := 0
	portOf(t, gb).EnablePort(9, UpperFunc(func(m *Message, from Addr) error {
		deliveries++
		got = append([]byte(nil), m.Bytes()...)
		return nil
	}))
	sess, err := portOf(t, ga).OpenFrom(9, "b:9")
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 100) // 1600 B ≫ 64 B MTU
	if err := sess.Push(NewMessage(payload)); err != nil {
		t.Fatal(err)
	}
	if deliveries != 1 {
		t.Fatalf("deliveries = %d, want 1 reassembled message", deliveries)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: got %d bytes, want %d", len(got), len(payload))
	}
	// Each wire datagram stayed within MTU + headers.
	// (The fake fabric delivers synchronously; reaching here means the
	// driver accepted every fragment.)
}

func TestFragInterleavedMessagesFromSameSender(t *testing.T) {
	clk := clock.NewSim()
	fabric := newFakeFabric()
	ga := buildFragStack(t, clk, fabric, "a", 32)
	gb := buildFragStack(t, clk, fabric, "b", 32)
	var got []string
	portOf(t, gb).EnablePort(9, UpperFunc(func(m *Message, from Addr) error {
		got = append(got, string(m.Bytes()))
		return nil
	}))
	sess, _ := portOf(t, ga).OpenFrom(9, "b:9")
	m1 := bytes.Repeat([]byte("A"), 100)
	m2 := bytes.Repeat([]byte("B"), 100)
	sess.Push(NewMessage(m1))
	sess.Push(NewMessage(m2))
	if len(got) != 2 || got[0] != string(m1) || got[1] != string(m2) {
		t.Fatalf("messages corrupted: %d delivered", len(got))
	}
}

func TestFragIncompleteReassemblyTimesOut(t *testing.T) {
	clk := clock.NewSim()
	fabric := newFakeFabric()
	gb := buildFragStack(t, clk, fabric, "b", 32)
	frag, _ := gb.Protocol("frag")
	deliveries := 0
	portOf(t, gb).EnablePort(9, UpperFunc(func(m *Message, from Addr) error {
		deliveries++
		return nil
	}))
	// Hand-craft fragment 0 of 3 and never send the rest.
	m := NewMessage([]byte("partial"))
	var h [fragHeaderLen]byte
	h[3] = 1 // id 1
	h[7] = 3 // count 3
	m.Push(h[:])
	if err := frag.Demux(m, "ghost"); err != nil {
		t.Fatal(err)
	}
	if v, _ := frag.Control("pending-reassemblies", nil); v != 1 {
		t.Fatalf("pending = %v, want 1", v)
	}
	clk.RunFor(200 * time.Millisecond)
	if v, _ := frag.Control("pending-reassemblies", nil); v != 0 {
		t.Fatalf("pending after timeout = %v, want 0", v)
	}
	if deliveries != 0 {
		t.Fatal("partial message delivered")
	}
}

func TestFragDuplicateFragmentIgnored(t *testing.T) {
	clk := clock.NewSim()
	fabric := newFakeFabric()
	gb := buildFragStack(t, clk, fabric, "b", 32)
	frag, _ := gb.Protocol("frag")
	deliveries := 0
	portOf(t, gb).EnablePort(9, UpperFunc(func(m *Message, from Addr) error {
		deliveries++
		return nil
	}))
	// The reassembled message must form a valid port header (src=0,
	// dst=9) so the port protocol above delivers it.
	halves := [2][]byte{{0, 0}, {0, 9}}
	mk := func(idx byte) *Message {
		m := NewMessage(halves[idx])
		var h [fragHeaderLen]byte
		h[3] = 7
		h[5] = idx
		h[7] = 2
		m.Push(h[:])
		return m
	}
	frag.Demux(mk(0), "x")
	frag.Demux(mk(0), "x") // duplicate
	if deliveries != 0 {
		t.Fatal("incomplete message delivered after duplicate")
	}
	frag.Demux(mk(1), "x")
	if deliveries != 1 {
		t.Fatalf("deliveries = %d, want 1", deliveries)
	}
}

func TestFragRejectsMalformedHeader(t *testing.T) {
	clk := clock.NewSim()
	fabric := newFakeFabric()
	gb := buildFragStack(t, clk, fabric, "b", 32)
	frag, _ := gb.Protocol("frag")
	if err := frag.Demux(NewMessage([]byte{1, 2}), "x"); err == nil {
		t.Fatal("short fragment accepted")
	}
	m := NewMessage(nil)
	var h [fragHeaderLen]byte // count 0
	m.Push(h[:])
	if err := frag.Demux(m, "x"); err == nil {
		t.Fatal("zero-count fragment accepted")
	}
}

func TestFragControlMTU(t *testing.T) {
	clk := clock.NewSim()
	fabric := newFakeFabric()
	gb := buildFragStack(t, clk, fabric, "b", 99)
	frag, _ := gb.Protocol("frag")
	if v, err := frag.Control("mtu", nil); err != nil || v != 99 {
		t.Fatalf("mtu = %v err=%v", v, err)
	}
	// Unknown ops delegate to the driver below.
	if v, err := frag.Control("local-addr", nil); err != nil || v != "b" {
		t.Fatalf("local-addr = %v err=%v", v, err)
	}
}

func TestFragRequiresClockAndBelow(t *testing.T) {
	if _, err := NewFragProtocol(FragOptions{Clock: clock.NewSim()}, nil); err == nil {
		t.Fatal("nil below accepted")
	}
	fabric := newFakeFabric()
	d := NewDriver("driver", fabric.endpoint("z"))
	if _, err := NewFragProtocol(FragOptions{}, d); err == nil {
		t.Fatal("nil clock accepted")
	}
}
