package xkernel

import "fmt"

// Transport is the datagram service a Driver bridges to: the simulated
// network (internal/netsim) and the real-UDP transport both implement it.
// Receive callbacks must be delivered serially on the protocol graph's
// executor (the clock event loop).
type Transport interface {
	// Send transmits payload to the named host. Delivery is unreliable
	// and unordered, like UDP.
	Send(to string, payload []byte) error
	// SetReceiver registers the inbound datagram callback.
	SetReceiver(fn func(from string, payload []byte))
	// LocalAddr reports this endpoint's host name.
	LocalAddr() string
	// Close releases the endpoint.
	Close() error
}

// Driver is the bottom protocol of a graph: it moves whole messages
// between the graph and a datagram Transport. It adds no header.
type Driver struct {
	name  string
	tr    Transport
	upper Upper
}

var _ Protocol = (*Driver)(nil)

// NewDriver wraps a transport as a graph-bottom protocol.
func NewDriver(name string, tr Transport) *Driver {
	d := &Driver{name: name, tr: tr}
	tr.SetReceiver(func(from string, payload []byte) {
		if d.upper == nil {
			return // no protocol enabled yet: drop, as a NIC would
		}
		// Inbound bytes become a message; drivers own the payload copy.
		_ = d.upper.Demux(FromWire(payload), Addr(from))
	})
	return d
}

// DriverFactory returns a Factory producing a Driver over tr.
func DriverFactory(tr Transport) Factory {
	return func(below Protocol, opts map[string]string) (Protocol, error) {
		if below != nil {
			return nil, fmt.Errorf("driver must be at the bottom of the graph, got %q below", below.Name())
		}
		name := opts["name"]
		if name == "" {
			name = "driver"
		}
		return NewDriver(name, tr), nil
	}
}

// Name implements Protocol.
func (d *Driver) Name() string { return d.name }

// OpenEnable implements Protocol.
func (d *Driver) OpenEnable(u Upper) error {
	d.upper = u
	return nil
}

// Open implements Protocol.
func (d *Driver) Open(remote Addr) (Session, error) {
	if remote == "" {
		return nil, ErrBadAddress
	}
	return &driverSession{d: d, remote: remote}, nil
}

// Demux implements Protocol; a driver has nothing below it.
func (d *Driver) Demux(m *Message, from Addr) error {
	if d.upper == nil {
		return ErrNoUpper
	}
	return d.upper.Demux(m, from)
}

// Control implements Protocol. Supported ops: "local-addr" → string.
func (d *Driver) Control(op string, arg any) (any, error) {
	switch op {
	case "local-addr":
		return d.tr.LocalAddr(), nil
	default:
		return nil, ErrUnknownControl
	}
}

type driverSession struct {
	d      *Driver
	remote Addr
	closed bool
}

func (s *driverSession) Push(m *Message) error {
	if s.closed {
		return ErrClosed
	}
	return s.d.tr.Send(string(s.remote), m.Bytes())
}

func (s *driverSession) Remote() Addr { return s.remote }

func (s *driverSession) Close() error {
	s.closed = true
	return nil
}
