package chaos

import (
	"flag"
	"strings"
	"testing"
)

var (
	seedFlag = flag.Int64("seed", 0, "override every scenario's seed (0 keeps catalogue defaults)")
	quick    = flag.Bool("quick", false, "skip scenarios marked Full even outside -short")
	verbose  = flag.Bool("chaos.log", false, "print every scenario's event log")
)

// runScenario executes one catalogue scenario, applying the -seed
// override, and fails the test on any violation with the full event log
// and the replay seed.
func runScenario(t *testing.T, sc Scenario) *Result {
	t.Helper()
	if *seedFlag != 0 {
		sc.Seed = *seedFlag
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("scenario %q: %v", sc.Name, err)
	}
	if *verbose {
		t.Logf("event log:\n%s", strings.Join(res.Log, "\n"))
	}
	if res.Failed() {
		t.Errorf("scenario %q seed %d: %d violation(s):\n  %s\nreplay: go test -run Chaos ./internal/chaos -seed=%d\nevent log:\n%s",
			res.Scenario, res.Seed, len(res.Violations),
			strings.Join(res.Violations, "\n  "), res.Seed,
			strings.Join(res.Log, "\n"))
	}
	return res
}

// TestChaosCatalogue runs every canned scenario. Scenarios marked Full
// are skipped under -short or -quick; the nightly CI job runs them all.
func TestChaosCatalogue(t *testing.T) {
	for _, sc := range Catalogue() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if sc.Full && (testing.Short() || *quick) {
				t.Skipf("scenario %q is full-mode only (drop -short/-quick to run)", sc.Name)
			}
			runScenario(t, sc)
		})
	}
}

// TestChaosDeterminism replays a failover-heavy scenario, a loss-heavy
// scenario, and the governor's overload scenario twice and requires
// byte-identical event logs: the whole harness — including the
// degradation ladder and the CPU model — must be a pure function of
// (scenario, seed).
func TestChaosDeterminism(t *testing.T) {
	for _, name := range []string{"loss-burst", "split-brain-fencing", "overload-degrade-recover", "crash-failover-rejoin", "power-cycle-recover", "clock-step-false-failover", "drift-erodes-bounds", "gateway-shed-recover", "observer-chain-partition"} {
		run := func() (*Result, error) {
			if gsc, ok := FindGateway(name); ok {
				if *seedFlag != 0 {
					gsc.Seed = *seedFlag
				}
				return RunGateway(gsc)
			}
			sc, ok := Find(name)
			if !ok {
				t.Fatalf("scenario %q missing from catalogue", name)
			}
			if *seedFlag != 0 {
				sc.Seed = *seedFlag
			}
			return Run(sc)
		}
		first, err := run()
		if err != nil {
			t.Fatalf("first run: %v", err)
		}
		second, err := run()
		if err != nil {
			t.Fatalf("second run: %v", err)
		}
		a, b := strings.Join(first.Log, "\n"), strings.Join(second.Log, "\n")
		if a != b {
			t.Errorf("scenario %q seed %d: two runs diverged\n--- first ---\n%s\n--- second ---\n%s",
				name, first.Seed, a, b)
		}
	}
}

// TestChaosSeedChangesSchedule is the other half of the replay contract:
// a different seed must actually change the fabric's draws (otherwise
// -seed replays would be meaningless).
func TestChaosSeedChangesSchedule(t *testing.T) {
	sc, _ := Find("loss-burst")
	sc.Seed = 1
	first, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 2
	second, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(first.Log, "\n") == strings.Join(second.Log, "\n") {
		t.Error("seeds 1 and 2 produced identical logs; the seed is not reaching the fabric")
	}
}

// TestChaosCatchesFencingRegression demonstrates the harness catches a
// seeded protocol regression: the split-brain scenario re-run with epoch
// fencing disabled (core's ablation knob) must produce a split-brain
// violation — the zombie primary's fenced-epoch writes leak into
// replicated state — where the fenced run stays clean.
func TestChaosCatchesFencingRegression(t *testing.T) {
	sc, ok := Find("split-brain-fencing")
	if !ok {
		t.Fatal("split-brain-fencing missing from catalogue")
	}
	if *seedFlag != 0 {
		sc.Seed = *seedFlag
	}
	sc.DisableFencing = true
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatalf("fencing disabled but no invariant fired; the harness is blind to split-brain\nevent log:\n%s",
			strings.Join(res.Log, "\n"))
	}
	for _, v := range res.Violations {
		if strings.HasPrefix(v, "split-brain:") {
			return
		}
	}
	t.Errorf("fencing disabled: violations fired but none is the split-brain check:\n  %s",
		strings.Join(res.Violations, "\n  "))
}

// TestChaosClockStepAblationFalseFailover pins the hazard the hardened
// detector exists for: the identical outage-plus-step scenario re-run
// with the WallClockElapsed ablation must manufacture exactly one false
// failover (the control arm's own invariants assert the promotion and
// epoch bump). If this starts failing, the catalogue's
// clock-step-false-failover pass no longer demonstrates anything.
func TestChaosClockStepAblationFalseFailover(t *testing.T) {
	res := runScenario(t, ClockStepScenario(true))
	if res.Promotions != 1 {
		t.Fatalf("ablation arm promoted %d times, want exactly 1 false failover\nevent log:\n%s",
			res.Promotions, strings.Join(res.Log, "\n"))
	}
}

// TestFindUnknown pins Find's miss behavior.
func TestFindUnknown(t *testing.T) {
	if _, ok := Find("no-such-scenario"); ok {
		t.Error("Find returned ok for an unknown scenario")
	}
}
