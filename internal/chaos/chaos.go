// Package chaos is a deterministic fault-injection harness for the RTPB
// stack. A Scenario scripts a fault schedule — timed link degradation,
// symmetric and asymmetric partitions, replica crash and restart,
// heartbeat suppression, duplication storms — against a harnessed cluster
// of core.Primary/core.Backup replicas wired with the failover machinery
// (detectors, name service, promotion), all driven by clock.SimClock and
// netsim.Network so a run is a pure function of (scenario, seed).
//
// While the scenario plays out, the harness continuously checks the
// protocol's safety properties: external temporal-consistency bounds via
// temporal.Monitor, per-object version monotonicity, epoch monotonicity
// across failover, and no-split-brain fencing (once a backup has heard
// from epoch E, state from any epoch < E must never be applied). Each
// scenario additionally declares end-state invariants (Checker values)
// such as convergence, expected promotion counts, or bound reports.
//
// Every run produces an event log of virtual-timestamped lines; two runs
// of the same scenario with the same seed produce byte-identical logs,
// so any failure is replayed exactly with
//
//	go test -race -run Chaos ./internal/chaos -seed=N
//
// The canned scenario catalogue (Catalogue) is the regression backbone:
// table-driven tests run every scenario, and cmd/rtpbench's "chaos"
// subcommand runs them standalone.
package chaos

import (
	"time"

	"rtpb/internal/core"
	"rtpb/internal/failover"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
)

// Scenario is one scripted chaos experiment: a cluster shape, a workload,
// a fault schedule, and the invariants that must hold at the end.
type Scenario struct {
	// Name identifies the scenario in the catalogue and in test names.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Seed drives the network fabric's loss/jitter/duplication draws.
	Seed int64
	// Duration is the fault-and-workload phase in virtual time.
	Duration time.Duration
	// Settle is the drain interval after Duration (writers stopped) that
	// lets in-flight updates land before invariants are evaluated.
	// Defaults to 400ms.
	Settle time.Duration
	// Link is the default link quality; zero value means 2ms delay + 1ms
	// jitter, the EXPERIMENTS.md baseline.
	Link netsim.LinkParams
	// Ell is ℓ, the admission controller's delay bound; defaults to 5ms.
	Ell time.Duration
	// Detector tunes the backup-side failure detectors; zero value means
	// failover.DefaultDetectorConfig.
	Detector failover.DetectorConfig
	// Objects are the replicated objects; empty means one standard
	// 64-byte object ("pressure", p=40ms, δP=50ms, δB=250ms).
	Objects []core.ObjectSpec
	// InterObjects are inter-object constraints registered after the
	// objects and tracked by the monitor at every backup site.
	InterObjects []temporal.InterObjectConstraint
	// WritePeriod is the client write period per object; defaults to each
	// object's UpdatePeriod.
	WritePeriod time.Duration
	// Scheduling selects the primary's update scheduling mode; zero
	// value means core.ScheduleNormal.
	Scheduling core.SchedulingMode
	// Costs overrides the primary's CPU cost model; zero value keeps
	// core.DefaultCosts. Overload scenarios inflate it so the governor
	// has real contention to govern.
	Costs core.CostModel
	// FrameBatch overrides the primary's per-slot frame batch bound; zero
	// keeps the core default. Overload-ladder scenarios pin it to 1: frame
	// coalescing amortizes the fixed per-datagram send cost, which absorbs
	// the very contention those scenarios exist to create.
	FrameBatch int
	// Governor configures the primary's overload governor; the zero
	// value leaves it off. When a backup learns of a mode change, the
	// harness retargets the monitor: shed objects have their bound
	// waived (and re-armed on promotion), compressed objects are judged
	// against the announced effective bound.
	Governor core.GovernorConfig
	// Standby adds a third node hosting a second backup with its own
	// detector, the promotion site for split-brain scenarios.
	Standby bool
	// Durable equips every node with an epoch-pruned durable store
	// (internal/durable) in deterministic synchronous mode, rooted in a
	// run-private temporary directory that is removed when the run ends.
	// Crash faults close the store but keep its files on disk, so
	// DiskFault and RestartFromDisk act on exactly what a real power
	// cycle would find.
	Durable bool
	// HotObjects limits the periodic client workload to the first N
	// objects; the rest ("cold") receive exactly one staggered write
	// each early in the run, modelling a large mostly-quiescent state —
	// the shape where disk-fast rejoin's advantage over a full
	// anti-entropy transfer shows. Zero means every object is hot.
	HotObjects int
	// DisableFencing runs every backup with core's epoch-fencing
	// ablation, the knob used to demonstrate that the split-brain
	// invariant actually catches the regression it exists for.
	DisableFencing bool
	// ClockSync enables clock-sync estimation on every backup (probes
	// piggybacked on heartbeats) and wires the harness's skew-aware
	// monitoring: applied stamps are mapped onto the upstream timeline
	// through each node's offset estimate, and the estimator's error
	// bound θ is streamed into the monitor, which tightens every external
	// bound by θ and marks it unverifiable — suspended, never silently
	// violated — when θ exceeds the slack.
	ClockSync bool
	// ClockSyncMaxDriftPPM is the worst-case relative clock drift the
	// estimators assume when aging their error bounds between probes
	// (parts per million; zero means the clocksync default, 200).
	ClockSyncMaxDriftPPM float64
	// Observers attaches read-only observer nodes, each subscribed to the
	// primary or to another observer (chained fan-out). Observer nodes
	// live outside the failover lattice: no detector, no quorum weight,
	// no recruitment — they drive their own join and heartbeat loops and
	// serve certificate reads whose honesty the observer invariants
	// sample against ground truth.
	Observers []ObserverSpec
	// Events is the fault schedule, applied at their At offsets.
	Events []FaultEvent
	// Invariants are evaluated after the settle phase; streaming
	// violations (epoch/version monotonicity, fenced-epoch leaks) are
	// always collected regardless.
	Invariants []Checker
	// Full marks long-running scenarios skipped in -quick mode.
	Full bool
}

// ObserverSpec attaches one read-only observer node to the harnessed
// cluster. Chains are declared by naming another observer as the
// upstream; specs are attached in order, so an upstream must appear
// before its subscribers.
type ObserverSpec struct {
	// Name is the observer node's host name on the fabric.
	Name string
	// Upstream names the node the observer subscribes to: PrimaryNode,
	// or an earlier observer's Name for a chained hop.
	Upstream string
}

// FaultEvent is one scheduled fault injection.
type FaultEvent struct {
	// At is the virtual-time offset from scenario start.
	At time.Duration
	// Fault is the injection to apply.
	Fault Fault
}

// Fault is a single injectable fault. Implementations mutate the harness
// deterministically and describe themselves for the event log.
type Fault interface {
	// String renders the fault for the event log.
	String() string
	// apply injects the fault.
	apply(h *Harness)
}

// Checker is an end-of-run invariant.
type Checker interface {
	// Name identifies the invariant in logs and failures.
	Name() string
	// Check returns an error describing the violation, or nil.
	Check(h *Harness) error
}

// normalize fills scenario defaults in place.
func (s *Scenario) normalize() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Duration == 0 {
		s.Duration = 2 * time.Second
	}
	if s.Settle == 0 {
		s.Settle = 400 * time.Millisecond
	}
	if s.Link == (netsim.LinkParams{}) {
		s.Link = netsim.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond}
	}
	if s.Ell == 0 {
		s.Ell = 5 * time.Millisecond
	}
	if s.Detector == (failover.DetectorConfig{}) {
		s.Detector = failover.DefaultDetectorConfig()
	}
	if len(s.Objects) == 0 {
		s.Objects = []core.ObjectSpec{StandardObject()}
	}
	if s.Scheduling == 0 {
		s.Scheduling = core.ScheduleNormal
	}
}

// StandardObject is the catalogue's default replicated object: the
// EXPERIMENTS.md baseline parameters.
func StandardObject() core.ObjectSpec {
	return core.ObjectSpec{
		Name:         "pressure",
		Size:         64,
		UpdatePeriod: 40 * time.Millisecond,
		Constraint: temporal.ExternalConstraint{
			DeltaP: 50 * time.Millisecond,
			DeltaB: 250 * time.Millisecond,
		},
	}
}
