package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/durable"
	"rtpb/internal/failover"
	"rtpb/internal/netsim"
	"rtpb/internal/repair"
	"rtpb/internal/temporal"
	"rtpb/internal/xkernel"
)

// Node names used by every scenario.
const (
	// PrimaryNode hosts the initial primary.
	PrimaryNode = "primary"
	// BackupNode hosts the initial backup.
	BackupNode = "backup"
	// StandbyNode hosts the optional second backup (Scenario.Standby).
	StandbyNode = "standby"
	// ObserverANode and ObserverBNode are the conventional names for the
	// first two observer nodes (Scenario.Observers); scenarios may name
	// observers freely, these just keep the catalogue consistent.
	ObserverANode = "observer-a"
	ObserverBNode = "observer-b"
	// ServiceName is the replicated service's name-service entry.
	ServiceName = "chaos"
)

// Node is one machine in the harnessed cluster. A node hosts at most one
// replica role at a time; promotion and restart swap the role in place,
// exactly like the paper's deployment.
type Node struct {
	// Name is the node's host name on the fabric.
	Name string
	// Clk is the node's own timebase: a clock.SkewedClock over the
	// harness clock, transparent until a clock fault (ClockSkew,
	// ClockDrift, ClockStep) perturbs it. Every component the node runs —
	// replica, detector, rejoiner — reads this clock, never the fabric's,
	// so per-node clock faults reach exactly the code a faulty oscillator
	// would reach on a real machine. It survives crashes and restarts:
	// the machine's clock fault outlives the process.
	Clk *clock.SkewedClock
	// EP is the node's network attachment (SetDown models crashes).
	EP *netsim.Endpoint
	// Port is the node's x-kernel port protocol.
	Port *xkernel.PortProtocol
	// Primary is the node's primary replica, if it currently runs one.
	Primary *core.Primary
	// Backup is the node's backup replica, if it currently runs one.
	Backup *core.Backup
	// Observer is the node's read-only observer replica, if it runs one
	// (Scenario.Observers). Observer nodes never host a detector: they
	// have no failover verdict to reach.
	Observer *core.Observer
	// Det is the backup-side failure detector, when Backup is set.
	Det *failover.Detector
	// Dur is the node's durable store (Scenario.Durable); crash closes
	// it but leaves its files under DurDir for a later restart.
	Dur *durable.Log
	// DurDir is the node's durable directory (empty without Durable).
	DurDir string

	peer    xkernel.Addr // primary this node's backup replicates from
	applies int
}

// Addr is the node's RTPB address on the fabric.
func (n *Node) Addr() xkernel.Addr { return xkernel.Addr(n.Name + ":" + fmt.Sprint(core.RTPBPort)) }

// shadow returns the node's stream-applying replica view — its backup or
// its observer — or nil when the node currently runs neither. The apply
// instrumentation is role-agnostic: both roles run the same upstream
// handlers.
func (n *Node) shadow() *core.Replica {
	if n.Backup != nil {
		return n.Backup
	}
	return n.Observer
}

// Harness is a running chaos cluster: the simulated fabric, the nodes,
// the monitor, and the accumulated event log and violations.
type Harness struct {
	sc    Scenario
	clk   *clock.SimClock
	net   *netsim.Network
	ns    *failover.NameService
	mon   *temporal.Monitor
	nodes map[string]*Node
	order []string
	// obsOrder names the observer nodes in attach order. They live
	// outside order on purpose: the primary's peer bootstrap, the
	// failover machinery, CrashCluster, and the cluster-wide end-state
	// aggregations all iterate order — exactly the circles the observer
	// role is excluded from.
	obsOrder []string
	obsTasks []*clock.Periodic

	active     *core.Primary
	activeNode string

	start       time.Time
	log         []string
	violations  []string
	checkpoints map[string]checkpoint
	writers     []*clock.Periodic
	writeCounts map[string]int
	maxEpoch    map[string]uint32
	lastVersion map[string]time.Time
	promotions  int
	promotedAt  []time.Time

	govCheckpoints map[string]govCheckpoint
	hogs           []*clock.Periodic

	uncertaintyFeeds []*clock.Periodic
	honestChecks     map[string]*honestBoundsEvidence
	obsChecks        map[string]*observerCertEvidence

	rejoiners  map[string]*repair.Rejoiner
	rejoinAt   map[string]time.Time
	caughtUpAt map[string]time.Time

	durRoot      string
	recovered    map[string]diskRecovery
	joinAcceptAt map[string]time.Time
	joinedAt     map[string]time.Time
}

// diskRecovery records one node's restart-from-disk outcome for the
// DiskRecovered invariant and the event log.
type diskRecovery struct {
	stats   durable.RecoveryStats
	objects int    // object values recovered from disk
	source  string // "disk" (resumed primary) or "disk+gap" (rejoined backup)
}

// govCheckpoint is a mid-run capture of the overload governor's ladder
// state, taken by GovernorDegradedAt's armer.
type govCheckpoint struct {
	stats core.GovernorStats
	modes map[string]core.ObjectMode
	ok    bool
}

// Clock exposes the harness clock (rtpbench's standalone runner reports
// virtual elapsed time).
func (h *Harness) Clock() clock.Clock { return h.clk }

// ActivePrimary returns the primary currently serving clients and the
// node hosting it.
func (h *Harness) ActivePrimary() (*core.Primary, string) { return h.active, h.activeNode }

// Monitor exposes the temporal-consistency monitor.
func (h *Harness) Monitor() *temporal.Monitor { return h.mon }

// Network exposes the simulated fabric.
func (h *Harness) Network() *netsim.Network { return h.net }

func (h *Harness) logf(format string, args ...any) {
	offset := h.clk.Now().Sub(h.start).Round(100 * time.Microsecond)
	h.log = append(h.log, fmt.Sprintf("+%-9v %s", offset, fmt.Sprintf(format, args...)))
}

// plural picks the singular or plural suffix for a count.
func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func (h *Harness) violationf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	h.violations = append(h.violations, msg)
	h.logf("VIOLATION: %s", msg)
}

// newHarness builds and wires the cluster for a normalized scenario.
func newHarness(sc Scenario) (*Harness, error) {
	h := &Harness{
		sc:          sc,
		clk:         clock.NewSim(),
		ns:          failover.NewNameService(),
		mon:         temporal.NewMonitor(),
		nodes:       make(map[string]*Node),
		checkpoints: make(map[string]checkpoint),
		writeCounts: make(map[string]int),
		maxEpoch:    make(map[string]uint32),
		lastVersion: make(map[string]time.Time),

		govCheckpoints: make(map[string]govCheckpoint),
		rejoiners:      make(map[string]*repair.Rejoiner),
		rejoinAt:       make(map[string]time.Time),
		caughtUpAt:     make(map[string]time.Time),

		recovered:    make(map[string]diskRecovery),
		joinAcceptAt: make(map[string]time.Time),
		joinedAt:     make(map[string]time.Time),

		honestChecks: make(map[string]*honestBoundsEvidence),
		obsChecks:    make(map[string]*observerCertEvidence),
	}
	h.start = h.clk.Now()
	h.net = netsim.New(h.clk, sc.Seed)
	if err := h.net.SetDefaultLink(sc.Link); err != nil {
		return nil, err
	}

	names := []string{PrimaryNode, BackupNode}
	if sc.Standby {
		names = append(names, StandbyNode)
	}
	for _, name := range names {
		if _, err := h.buildNode(name); err != nil {
			return nil, err
		}
		h.order = append(h.order, name)
	}

	if sc.Durable {
		// One run-private root, one subdirectory per node. Synchronous
		// mode keeps the run a pure function of (scenario, seed): every
		// record is written inline on the executor, no background
		// goroutine interleaves with the simulation. NoFsync trades
		// real-disk durability (meaningless for a temp dir) for speed.
		root, err := os.MkdirTemp("", "rtpb-chaos-durable-")
		if err != nil {
			return nil, fmt.Errorf("chaos: durable root: %w", err)
		}
		h.durRoot = root
		for _, name := range h.order {
			if err := h.openDurable(h.nodes[name]); err != nil {
				h.cleanupDurable()
				return nil, err
			}
		}
	}

	// The primary replicates to every other node.
	var peers []xkernel.Addr
	for _, name := range h.order[1:] {
		peers = append(peers, h.nodes[name].Addr())
	}
	primary, err := core.NewPrimary(core.Config{
		Clock:      h.nodes[PrimaryNode].Clk,
		Port:       h.nodes[PrimaryNode].Port,
		Peers:      peers,
		Ell:        sc.Ell,
		Scheduling: sc.Scheduling,
		Costs:      sc.Costs,
		Governor:   sc.Governor,
		FrameBatch: sc.FrameBatch,
		Durable:    h.nodes[PrimaryNode].Dur,
	})
	if err != nil {
		return nil, err
	}
	h.wireGovernor(primary)
	h.nodes[PrimaryNode].Primary = primary
	h.active = primary
	h.activeNode = PrimaryNode
	if err := h.ns.Set(ServiceName, h.nodes[PrimaryNode].Addr(), 1); err != nil {
		return nil, err
	}

	for _, name := range h.order[1:] {
		n := h.nodes[name]
		b, err := core.NewBackup(h.backupConfig(n, h.nodes[PrimaryNode].Addr()))
		if err != nil {
			return nil, err
		}
		n.Backup = b
		n.peer = h.nodes[PrimaryNode].Addr()
		if err := h.wireBackup(n); err != nil {
			return nil, err
		}
		for _, spec := range sc.Objects {
			h.mon.TrackExternal(name, spec.Name, spec.Constraint.DeltaB)
		}
		for _, c := range sc.InterObjects {
			h.mon.TrackInterObject(name, c)
		}
	}

	for _, spec := range sc.Objects {
		if d := primary.Register(spec); !d.Accepted {
			return nil, fmt.Errorf("chaos: object %q rejected: %s", spec.Name, d.Reason)
		}
	}
	for _, c := range sc.InterObjects {
		if _, err := primary.RegisterInterObject(c); err != nil {
			return nil, fmt.Errorf("chaos: inter-object %s/%s rejected: %w", c.I, c.J, err)
		}
	}

	for _, ospec := range sc.Observers {
		if err := h.attachObserver(ospec); err != nil {
			h.cleanupDurable()
			return nil, err
		}
	}

	h.startWriters()
	return h, nil
}

// buildNode attaches one named machine to the fabric: an endpoint, its
// x-kernel protocol graph, and its own skewed clock.
func (h *Harness) buildNode(name string) (*Node, error) {
	ep, err := h.net.Endpoint(name)
	if err != nil {
		return nil, err
	}
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(ep)},
	})
	if err != nil {
		return nil, err
	}
	proto, _ := g.Protocol("uport")
	n := &Node{
		Name: name,
		Clk:  clock.NewSkewed(h.clk),
		EP:   ep,
		Port: proto.(*xkernel.PortProtocol),
	}
	h.nodes[name] = n
	return n, nil
}

// attachObserver builds one observer node and subscribes it to its
// upstream. The observer drives its own attach exactly like a real
// deployment (rtpbd -observe): periodic JoinRequests until the chunked
// exchange completes, then heartbeats that carry the clock-sync probes
// and solicit the upstream's ChainStatus. No detector, no peer-table
// surgery on the primary — the JoinRequest's Observer flag is the whole
// contract.
func (h *Harness) attachObserver(spec ObserverSpec) error {
	up := h.nodes[spec.Upstream]
	if up == nil {
		return fmt.Errorf("chaos: observer %q: unknown upstream %q", spec.Name, spec.Upstream)
	}
	if h.nodes[spec.Name] != nil {
		return fmt.Errorf("chaos: observer %q: node name already in use", spec.Name)
	}
	n, err := h.buildNode(spec.Name)
	if err != nil {
		return err
	}
	h.obsOrder = append(h.obsOrder, spec.Name)
	obs, err := core.NewObserver(h.backupConfig(n, up.Addr()))
	if err != nil {
		return err
	}
	n.Observer = obs
	n.peer = up.Addr()
	h.wireObserver(n)
	for _, os := range h.sc.Objects {
		h.mon.TrackExternal(spec.Name, os.Name, os.Constraint.DeltaB)
	}
	join := clock.NewPeriodic(h.clk, 0, 100*time.Millisecond, func() {
		if n.Observer == obs && obs.Running() && !obs.Joined() {
			obs.Join()
		}
	})
	ping := clock.NewPeriodic(h.clk, 50*time.Millisecond, 100*time.Millisecond, func() {
		if n.Observer == obs && obs.Running() {
			obs.SendPing()
		}
	})
	h.obsTasks = append(h.obsTasks, join, ping)
	h.logf("%s observes %s", spec.Name, spec.Upstream)
	return nil
}

// wireObserver attaches the monitor hooks to an observer node: the same
// streaming apply/mode/catch-up instrumentation a backup gets, minus the
// failure detector and the rejoin bookkeeping — an observer has no
// failover verdict to reach and no degree to restore.
func (h *Harness) wireObserver(n *Node) {
	obs := n.Observer
	obs.OnApply = func(_ uint32, name string, epoch uint32, _ uint64, version, at time.Time) {
		h.observeApply(n, name, epoch, version, at)
	}
	obs.OnModeChange = h.modeChangeHook(n)
	obs.OnJoinAccept = func(epoch uint32, specs int) {
		h.logf("%s: observer subscription accepted at epoch %d (%d specs); catch-up begins",
			n.Name, epoch, specs)
		for _, spec := range h.sc.Objects {
			h.mon.BeginCatchUp(n.Name, spec.Name, n.Clk.Now())
		}
	}
	obs.OnCatchUp = func(_ uint32, object string, staleness time.Duration) {
		h.mon.EndCatchUp(n.Name, object)
		h.logf("%s: %q caught up (staleness %v)", n.Name, object,
			staleness.Round(100*time.Microsecond))
	}
	if h.sc.ClockSync {
		h.startUncertaintyFeed(n, obs)
	}
}

// backupConfig builds a backup replica's configuration. It carries the
// scenario's full scheduling, cost, and governor configuration even
// though the backup role ignores them: promotion is in-place, so the
// config a replica is built with is the config it will serve with after
// takeover.
func (h *Harness) backupConfig(n *Node, primary xkernel.Addr) core.Config {
	return core.Config{
		Clock:                n.Clk,
		Port:                 n.Port,
		Peer:                 primary,
		Durable:              n.Dur,
		Ell:                  h.sc.Ell,
		Scheduling:           h.sc.Scheduling,
		Costs:                h.sc.Costs,
		Governor:             h.sc.Governor,
		FrameBatch:           h.sc.FrameBatch,
		DisableEpochFencing:  h.sc.DisableFencing,
		ClockSync:            h.sc.ClockSync,
		ClockSyncMaxDriftPPM: h.sc.ClockSyncMaxDriftPPM,
	}
}

// openDurable opens (or reopens, across a restart) the node's durable
// store in deterministic synchronous mode.
func (h *Harness) openDurable(n *Node) error {
	if n.DurDir == "" {
		n.DurDir = filepath.Join(h.durRoot, n.Name)
	}
	lg, err := durable.Open(durable.Config{Dir: n.DurDir, Sync: true, NoFsync: true})
	if err != nil {
		return fmt.Errorf("chaos: durable store for %s: %w", n.Name, err)
	}
	n.Dur = lg
	return nil
}

// cleanupDurable closes every live store and removes the run's durable
// root. Paths never reach the event log, so cleanup cannot perturb the
// byte-identical replay contract.
func (h *Harness) cleanupDurable() {
	if h.durRoot == "" {
		return
	}
	for _, name := range h.order {
		n := h.nodes[name]
		if n.Dur != nil {
			n.Dur.Close()
			n.Dur = nil
		}
	}
	os.RemoveAll(h.durRoot)
	h.durRoot = ""
}

// wireGovernor logs the primary-side overload governor's rung
// transitions (the authoritative record of ladder activity).
func (h *Harness) wireGovernor(p *core.Primary) {
	p.OnModeChange = func(_ uint32, name string, mode core.ObjectMode, bound time.Duration) {
		h.logf("governor: %q -> %s (effective bound %v)", name, mode, bound)
	}
}

// wireBackup attaches the monitor hooks and a fresh failure detector to
// the node's backup replica.
func (h *Harness) wireBackup(n *Node) error {
	b := n.Backup
	h.wireCatchUp(n, b)
	b.OnApply = func(_ uint32, name string, epoch uint32, _ uint64, version, at time.Time) {
		h.observeApply(n, name, epoch, version, at)
	}
	b.OnModeChange = h.modeChangeHook(n)
	det, err := failover.NewDetector(n.Clk, h.sc.Detector, b.SendPing, func() {
		h.onPrimaryDead(n)
	})
	if err != nil {
		return err
	}
	b.OnPingAck = det.OnAck
	n.Det = det
	det.Start()
	if h.sc.ClockSync {
		h.startUncertaintyFeed(n, b)
	}
	return nil
}

// modeChangeHook retargets the monitor at the instant a shadowing
// replica (backup or observer) learns of a governor mode change: a shed
// object's image carries no temporal guarantee; a compressed (or
// restored) object is judged against the announced effective bound.
// Observers receive ModeChange through the relay, so downstream bounds
// track the governor exactly like a backup's.
func (h *Harness) modeChangeHook(n *Node) func(uint32, string, core.ObjectMode, time.Duration) {
	return func(_ uint32, name string, mode core.ObjectMode, bound time.Duration) {
		h.logf("%s: %q now %s (effective bound %v)", n.Name, name, mode, bound)
		if mode == core.ModeShed {
			h.mon.Suspend(n.Name, name, n.Clk.Now())
			return
		}
		h.mon.Resume(n.Name, name)
		h.mon.SetBound(n.Name, name, n.Clk.Now(), bound)
	}
}

// unknownTheta is the uncertainty published before the first sync probe
// completes: the upstream offset is unknown, not zero, so every bound
// starts unverifiable instead of being judged against stamps that may
// carry the node's whole boot-time clock offset.
const unknownTheta = time.Hour

// startUncertaintyFeed streams the backup's clock-sync error bound into
// the temporal monitor: every tick, the current θ is attached to every
// tracked object at the node's site, so the monitor tightens its bounds
// by exactly the uncertainty the node itself admits to — and suspends
// (rather than lies) when θ exceeds the slack. The feed instant is mapped
// onto the upstream timeline through the estimated offset, the same
// correction observeApply applies to update stamps.
func (h *Harness) startUncertaintyFeed(n *Node, b *core.Replica) {
	feed := clock.NewPeriodic(h.clk, 0, 10*time.Millisecond, func() {
		if n.shadow() != b || !b.Running() {
			return
		}
		rep, ok := b.ClockSyncReport()
		if !ok {
			return
		}
		at, theta := n.Clk.Now(), time.Duration(unknownTheta)
		if rep.Valid {
			at, theta = at.Add(rep.Offset), rep.Theta
		}
		for _, spec := range h.sc.Objects {
			wasUnv := h.mon.Unverifiable(n.Name, spec.Name)
			h.mon.SetUncertainty(n.Name, spec.Name, at, theta)
			if nowUnv := h.mon.Unverifiable(n.Name, spec.Name); nowUnv != wasUnv {
				if nowUnv {
					h.logf("%s: θ=%v exceeds %q's slack; bound unverifiable",
						n.Name, theta.Round(100*time.Microsecond), spec.Name)
				} else {
					h.logf("%s: θ=%v back under %q's slack; bound verifiable again",
						n.Name, theta.Round(100*time.Microsecond), spec.Name)
				}
			}
		}
	})
	h.uncertaintyFeeds = append(h.uncertaintyFeeds, feed)
}

// observeApply is the streaming invariant hook: every applied update is
// fed to the monitor and checked for epoch and version monotonicity.
func (h *Harness) observeApply(n *Node, object string, epoch uint32, version, at time.Time) {
	n.applies++
	if sh := n.shadow(); h.sc.ClockSync && sh != nil {
		// The applied stamp comes from the node's own (possibly faulty)
		// clock while the version stamp comes from the primary's; naively
		// differencing them would charge the clock offset to the protocol.
		// Map the applied instant onto the upstream timeline through the
		// node's own offset estimate — its residual error is bounded by θ,
		// which the uncertainty feed subtracts from the bound.
		if rep, ok := sh.ClockSyncReport(); ok && rep.Valid {
			at = at.Add(rep.Offset)
		}
	}
	h.mon.RecordUpdate(n.Name, object, version, at)

	if max := h.maxEpoch[n.Name]; epoch != 0 && epoch < max {
		h.violationf("split-brain: %s applied %q state from fenced epoch %d after hearing epoch %d",
			n.Name, object, epoch, max)
	} else if epoch > max {
		h.maxEpoch[n.Name] = epoch
		h.logf("%s adopts epoch %d", n.Name, epoch)
	}

	key := n.Name + "/" + object
	if last, ok := h.lastVersion[key]; ok && version.Before(last) {
		h.violationf("version regression: %s applied %q version %v after %v",
			n.Name, object, version.Format("15:04:05.000"), last.Format("15:04:05.000"))
	}
	h.lastVersion[key] = version

	// The repair cycle's streaming invariant: while the backup still marks
	// an object catching up, the monitor must have its bound suspended —
	// an image with no temporal guarantee yet must never be reported
	// consistent.
	if sh := n.shadow(); sh != nil && sh.CatchingUp(object) && !h.mon.Suspended(n.Name, object) {
		h.violationf("catch-up: %s applied %q while catching up but the monitor counted it consistent",
			n.Name, object)
	}
}

// onPrimaryDead is a backup detector's death verdict. If the name
// service already records a successor for the service (another backup's
// detector fired first), this node yields and rejoins the new primary as
// a backup; otherwise it promotes itself (Section 4.4), keeping any
// other live backup as its peer. The name-service arbitration is what
// keeps concurrent detector verdicts from electing two primaries.
func (h *Harness) onPrimaryDead(n *Node) {
	h.logf("%s: detector declares primary dead after %d misses", n.Name, h.sc.Detector.MaxMisses)
	if addr, epoch, ok := h.ns.Lookup(ServiceName); ok && addr != n.peer {
		h.logf("%s: %v already superseded by %v (epoch %d); yielding", n.Name, n.peer, addr, epoch)
		n.Backup.Stop()
		n.Backup = nil
		n.Det = nil
		if err := h.attachBackup(n); err != nil {
			h.violationf("yield on %s: %v", n.Name, err)
		}
		return
	}
	var peers []xkernel.Addr
	for _, name := range h.order {
		o := h.nodes[name]
		if o != n && o.Backup != nil && o.Backup.Running() {
			peers = append(peers, o.Addr())
		}
	}
	p, err := failover.Promote(n.Backup, failover.PromoteOptions{
		Service:  ServiceName,
		SelfAddr: n.Addr(),
		Names:    h.ns,
		OnPlaceholderDrop: func(ids []uint32) {
			h.logf("%s: promotion dropped %d spec-less placeholder object(s) %v",
				n.Name, len(ids), ids)
		},
		ActivateClient: func(p *core.Primary) {
			h.active = p
			h.activeNode = n.Name
		},
	})
	if err != nil {
		h.violationf("promotion on %s failed: %v", n.Name, err)
		return
	}
	h.wireGovernor(p)
	n.Backup = nil
	n.Det = nil
	n.Primary = p
	h.promotions++
	h.promotedAt = append(h.promotedAt, h.clk.Now())
	// The in-place promotion starts with an empty peer set; re-attach the
	// surviving backups, which drives each through the anti-entropy join
	// exchange to parity under the new epoch.
	for _, addr := range peers {
		if err := p.AddPeer(addr); err != nil {
			h.violationf("promotion on %s: attach survivor %s: %v", n.Name, addr, err)
		}
	}
	h.logf("%s: promoted to primary, epoch %d, peers %v", n.Name, p.Epoch(), peers)
}

// crash kills the named node.
func (h *Harness) crash(name string) {
	n := h.nodes[name]
	if n == nil {
		h.violationf("crash: unknown node %q", name)
		return
	}
	n.EP.SetDown(true)
	if n.Det != nil {
		n.Det.Stop()
		n.Det = nil
	}
	if n.Primary != nil {
		n.Primary.Stop()
		n.Primary = nil
	}
	if n.Backup != nil {
		n.Backup.Stop()
		n.Backup = nil
		// The live primary's failure detector notices a dead backup; the
		// harness delivers the verdict instantly for determinism.
		if h.active != nil && h.active.Running() && h.activeNode != name {
			h.active.SetPeerAlive(n.Addr(), false)
		}
	}
	if n.Observer != nil {
		// An observer's death costs the cluster nothing it must react to:
		// no degree to restore, no detector verdict to deliver. Downstream
		// subscribers simply go stale — which their certificates must say.
		n.Observer.Stop()
		n.Observer = nil
	}
	if n.Dur != nil {
		// Power goes out: the store's handle dies with the process, but
		// whatever reached the files survives for a restart-from-disk.
		n.Dur.Close()
		n.Dur = nil
	}
	h.logf("%s is down", name)
}

// restartAsBackup revives a crashed node as a backup of the current
// primary and re-integrates it (registration replay + state transfer).
func (h *Harness) restartAsBackup(name string) {
	n := h.nodes[name]
	if n == nil {
		h.violationf("restart: unknown node %q", name)
		return
	}
	if n.Primary != nil || n.Backup != nil {
		h.logf("restart %s: already up, no-op", name)
		return
	}
	n.EP.SetDown(false)
	if err := h.attachBackup(n); err != nil {
		h.violationf("restart %s: %v", name, err)
	}
}

// attachBackup starts a fresh backup on the node, pointed at whatever
// primary the name service currently records, and re-integrates it with
// the serving primary: the stale peer entry (with its session and
// registration marks) is dropped and the node re-attached, which replays
// every registration and pushes a full state transfer (Section 4.4's
// recruitment path).
func (h *Harness) attachBackup(n *Node) error {
	primaryAddr, _, ok := h.ns.Lookup(ServiceName)
	if !ok {
		return fmt.Errorf("no primary in name service")
	}
	b, err := core.NewBackup(h.backupConfig(n, primaryAddr))
	if err != nil {
		return err
	}
	n.Backup = b
	n.peer = primaryAddr
	if err := h.wireBackup(n); err != nil {
		return err
	}
	h.logf("%s is up as backup of %s", n.Name, primaryAddr)
	if h.active == nil || !h.active.Running() {
		return nil
	}
	addr := n.Addr()
	h.active.RemovePeer(addr)
	if err := h.active.AddPeer(addr); err != nil {
		return fmt.Errorf("attach to primary: %w", err)
	}
	return nil
}

// rejoin revives a crashed node through the repair subsystem: the
// endpoint comes back up and a repair.Rejoiner drives the over-the-wire
// protocol — poll the directory, wait out the node's own stale claim if
// it was the fenced old primary, demote to a backup of the recorded
// successor, and run the chunked join exchange. Unlike restartAsBackup,
// the harness never touches the primary's peer table: the JoinRequest
// itself attaches the replica, exactly as a real redeployment would.
func (h *Harness) rejoin(name string) {
	n := h.nodes[name]
	if n == nil {
		h.violationf("rejoin: unknown node %q", name)
		return
	}
	if n.Primary != nil || n.Backup != nil {
		h.logf("rejoin %s: already up, no-op", name)
		return
	}
	n.EP.SetDown(false)
	h.startRejoiner(n, nil)
}

// startRejoiner builds and starts the node's directory-driven rejoin
// loop. When st is non-nil (restart-from-disk), the recovered image is
// replayed into the fresh backup before its first JoinRequest, so the
// join digest advertises the disk state and anti-entropy streams only
// the gap.
func (h *Harness) startRejoiner(n *Node, st *durable.State) {
	name := n.Name
	h.rejoinAt[name] = h.clk.Now()
	// A node that started as the primary was never tracked as a backup
	// site; register its objects before catch-up marks reference them.
	for _, spec := range h.sc.Objects {
		if _, ok := h.mon.ExternalReport(name, spec.Name); !ok {
			h.mon.TrackExternal(name, spec.Name, spec.Constraint.DeltaB)
		}
	}
	cfg := repair.RejoinerConfig{
		Clock:     n.Clk,
		Service:   ServiceName,
		Directory: h.ns,
		Self:      n.Addr(),
		Announce:  true,
		Start: func(primary xkernel.Addr, epoch uint32) (*core.Backup, error) {
			b, err := core.NewBackup(h.backupConfig(n, primary))
			if err != nil {
				return nil, err
			}
			n.Backup = b
			n.peer = primary
			if err := h.wireBackup(n); err != nil {
				return nil, err
			}
			h.logf("%s is up, rejoining %s at epoch %d", name, primary, epoch)
			return b, nil
		},
		OnJoined: func(b *core.Backup) {
			if _, seen := h.joinedAt[name]; !seen {
				// Fallback only: OnStateTransfer records the exact
				// final-chunk instant; this path is poll-quantized.
				h.joinedAt[name] = h.clk.Now()
			}
			h.logf("%s: join exchange complete at epoch %d (source %s)",
				name, b.Epoch(), b.RecoverySource())
		},
	}
	if st != nil {
		cfg.Restore = func(b *core.Backup) (int, error) {
			restored := b.RestoreDurable(st)
			h.logf("%s: seeded %d object value(s) from the local durable tail", name, restored)
			return restored, nil
		}
	}
	rj, err := repair.NewRejoiner(cfg)
	if err != nil {
		h.violationf("rejoin %s: %v", name, err)
		return
	}
	h.rejoiners[name] = rj
	rj.Start()
	h.logf("%s polls the directory to rejoin", name)
}

// restartFromDisk revives a crashed node from its durable store: recover
// the on-disk image (tolerating whatever faults were injected while the
// node was down), reopen the store, and resume. If the directory still
// names this node — or names nobody — the node resumes as the primary
// under a fenced epoch bump; otherwise it rejoins the recorded successor
// as a backup, replaying its local tail before the join so anti-entropy
// covers only the gap.
func (h *Harness) restartFromDisk(name string) {
	n := h.nodes[name]
	if n == nil {
		h.violationf("restart-from-disk: unknown node %q", name)
		return
	}
	if n.Primary != nil || n.Backup != nil {
		h.logf("restart-from-disk %s: already up, no-op", name)
		return
	}
	if n.DurDir == "" {
		h.violationf("restart-from-disk %s: scenario has no durable stores", name)
		return
	}
	st, rs, err := durable.Recover(n.DurDir)
	if err != nil {
		h.violationf("restart-from-disk %s: %v", name, err)
		return
	}
	rec := diskRecovery{stats: *rs, objects: len(st.Objects), source: "disk+gap"}
	h.logf("%s: disk recovery: epoch %d, %d object(s); snapshot used=%v (epoch %d, %d tried); "+
		"replayed %d record(s) across %d segment(s); stopped=%q",
		name, st.Epoch, len(st.Objects), rs.SnapshotUsed, rs.SnapshotEpoch, rs.SnapshotsTried,
		rs.RecordsReplayed, rs.SegmentsReplayed, rs.Stopped)
	if err := h.openDurable(n); err != nil {
		h.violationf("restart-from-disk %s: %v", name, err)
		return
	}
	n.EP.SetDown(false)
	if addr, _, ok := h.ns.Lookup(ServiceName); !ok || addr == n.Addr() {
		rec.source = "disk"
		h.recovered[name] = rec
		h.resumePrimaryFromDisk(n, st)
		return
	}
	h.recovered[name] = rec
	h.startRejoiner(n, st)
}

// resumePrimaryFromDisk rebuilds a serving primary from a recovered
// image: every recovered spec is re-admitted in its original ID order
// (so object IDs survive the power cycle and backups' tables line up),
// recovered values are seeded, and the epoch is bumped past the
// recovered one — the fencing move that invalidates any stale in-flight
// state from the pre-crash incarnation.
func (h *Harness) resumePrimaryFromDisk(n *Node, st *durable.State) {
	p, err := core.NewPrimary(core.Config{
		Clock:      n.Clk,
		Port:       n.Port,
		Ell:        h.sc.Ell,
		Scheduling: h.sc.Scheduling,
		Costs:      h.sc.Costs,
		Governor:   h.sc.Governor,
		FrameBatch: h.sc.FrameBatch,
		Durable:    n.Dur,
	})
	if err != nil {
		h.violationf("restart-from-disk %s: %v", n.Name, err)
		return
	}
	seeded := 0
	for i := range st.Objects {
		d := &st.Objects[i]
		spec := core.ObjectSpec{
			Name:         d.Name,
			Size:         int(d.Size),
			UpdatePeriod: time.Duration(d.Period),
			Constraint: temporal.ExternalConstraint{
				DeltaP: time.Duration(d.DeltaP),
				DeltaB: time.Duration(d.DeltaB),
			},
			Critical: d.Critical,
		}
		if dec := p.Register(spec); !dec.Accepted {
			h.violationf("restart-from-disk %s: recovered object %q rejected: %s",
				n.Name, d.Name, dec.Reason)
			continue
		}
		if d.HasData {
			if err := p.SeedObject(d.Name, d.Value, time.Unix(0, d.Version)); err != nil {
				h.violationf("restart-from-disk %s: seed %q: %v", n.Name, d.Name, err)
				continue
			}
			seeded++
		}
	}
	epoch := st.Epoch + 1
	p.SetEpoch(epoch)
	p.NoteDiskRestore(seeded)
	h.wireGovernor(p)
	n.Primary = p
	h.active = p
	h.activeNode = n.Name
	if err := h.ns.Set(ServiceName, n.Addr(), epoch); err != nil {
		h.violationf("restart-from-disk %s: directory update: %v", n.Name, err)
	}
	h.logf("%s resumes as primary from disk: epoch %d, %d object(s), %d value(s) seeded",
		n.Name, epoch, len(st.Objects), seeded)
}

// wireCatchUp mirrors the backup's catch-up lifecycle into the monitor:
// when a JoinAccept lands, every object's bound is suspended (the
// transferred image carries no temporal guarantee); each object resumes
// only once the backup declares it inside δ_i^B again.
func (h *Harness) wireCatchUp(n *Node, b *core.Backup) {
	b.OnJoinAccept = func(epoch uint32, specs int) {
		h.logf("%s: join accepted at epoch %d (%d specs); catch-up begins", n.Name, epoch, specs)
		if _, rejoining := h.rejoinAt[n.Name]; rejoining {
			if _, seen := h.joinAcceptAt[n.Name]; !seen {
				// First accept after a rejoin: the anti-entropy transfer
				// starts here. Its completion (OnJoined) closes the
				// window the disk-vs-network sweep measures.
				h.joinAcceptAt[n.Name] = h.clk.Now()
			}
		}
		for _, spec := range h.sc.Objects {
			h.mon.BeginCatchUp(n.Name, spec.Name, n.Clk.Now())
		}
	}
	b.OnStateTransfer = func(epoch uint32, objects int) {
		if _, rejoining := h.rejoinAt[n.Name]; !rejoining || !b.Joined() {
			return
		}
		if _, seen := h.joinedAt[n.Name]; seen {
			return
		}
		// The final chunk just landed: this instant — not the rejoiner's
		// next poll — closes the transfer window the disk-vs-network
		// sweep measures.
		h.joinedAt[n.Name] = h.clk.Now()
		h.logf("%s: anti-entropy streamed %d entr%s at epoch %d, %v after the join was accepted",
			n.Name, objects, plural(objects, "y", "ies"), epoch,
			h.clk.Now().Sub(h.joinAcceptAt[n.Name]).Round(100*time.Microsecond))
	}
	b.OnCatchUp = func(_ uint32, object string, staleness time.Duration) {
		h.mon.EndCatchUp(n.Name, object)
		h.logf("%s: %q caught up (staleness %v)", n.Name, object,
			staleness.Round(100*time.Microsecond))
		if b.CatchUpRemaining() == 0 {
			h.caughtUpAt[n.Name] = h.clk.Now()
			h.logf("%s: catch-up complete, %v after rejoin", n.Name,
				h.clk.Now().Sub(h.rejoinAt[n.Name]).Round(100*time.Microsecond))
		}
	}
}

// startWriters begins the client workload against the active primary:
// one periodic writer per hot object, one staggered early write per
// cold object (Scenario.HotObjects; zero means everything is hot).
func (h *Harness) startWriters() {
	hot := h.sc.HotObjects
	if hot <= 0 || hot > len(h.sc.Objects) {
		hot = len(h.sc.Objects)
	}
	write := func(spec core.ObjectSpec) {
		p := h.active
		if p == nil || !p.Running() {
			return
		}
		h.writeCounts[spec.Name]++
		val := fmt.Sprintf("%s#%d@%v", spec.Name, h.writeCounts[spec.Name],
			h.clk.Now().Sub(h.start).Round(time.Millisecond))
		p.ClientWrite(spec.Name, []byte(val), nil)
	}
	for i, spec := range h.sc.Objects {
		spec := spec
		if i >= hot {
			// Cold object: written once, early, then quiescent — its
			// value still has to reach every replica, but a disk-fast
			// rejoin should never stream it over the wire again.
			h.clk.Schedule(time.Duration(i-hot)*5*time.Millisecond+20*time.Millisecond,
				func() { write(spec) })
			continue
		}
		period := h.sc.WritePeriod
		if period == 0 {
			period = spec.UpdatePeriod
		}
		w := clock.NewPeriodic(h.clk, 0, period, func() { write(spec) })
		h.writers = append(h.writers, w)
	}
}

func (h *Harness) stopWriters() {
	for _, w := range h.writers {
		w.Stop()
	}
	h.writers = nil
}

// Result is the outcome of one scenario run.
type Result struct {
	// Scenario and Seed identify the run for replay.
	Scenario string
	Seed     int64
	// Log is the virtual-timestamped event log; identical across runs of
	// the same (scenario, seed).
	Log []string
	// Violations are streaming safety violations plus failed end-state
	// invariants; empty means the run passed.
	Violations []string
	// Promotions counts backup-to-primary takeovers.
	Promotions int
	// FinalEpoch is the serving primary's epoch at the end (0 if none).
	FinalEpoch uint32
	// Elapsed is the total virtual time simulated.
	Elapsed time.Duration
	// RejoinCatchUp is the time from the last Rejoin fault's injection to
	// the instant the rejoined replica's final object passed catch-up
	// (0 when the scenario injects no rejoin, or it never completed).
	RejoinCatchUp time.Duration
	// RejoinTransfer is the time from the rejoined replica's JoinAccept
	// to the completion of its anti-entropy exchange — the pure transfer
	// window the disk-vs-network sweep compares (0 if no rejoin
	// completed). Unlike RejoinCatchUp it excludes directory polling and
	// detector/promotion latency, which are identical across modes.
	RejoinTransfer time.Duration
	// RejoinSource names where the last rejoined replica's image came
	// from: "disk+gap" after a restart-from-disk, "network" after a
	// plain rejoin, empty when no rejoin ran.
	RejoinSource string
	// RestoredObjects is how many object values restarted replicas
	// seeded from their local durable tails.
	RestoredObjects int
	// BoundViolation, UnverifiableTime, and EndTheta aggregate the
	// external-consistency accounting across every tracked
	// (site, object) pair at the end of the run: the worst per-object
	// violation time, the worst per-object unverifiable (gray-band)
	// time, and the largest clock-uncertainty bound θ still in force —
	// the quantities the clocksync bench sweep reports.
	BoundViolation   time.Duration
	UnverifiableTime time.Duration
	EndTheta         time.Duration
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// Run executes a scenario to completion and evaluates its invariants.
// The run is deterministic: the same scenario and seed produce an
// identical Result, and every failure message embeds the seed so a
// replay reproduces it byte-for-byte.
func Run(sc Scenario) (*Result, error) {
	sc.normalize()
	h, err := newHarness(sc)
	if err != nil {
		return nil, err
	}
	h.logf("scenario %q seed %d: %s", sc.Name, sc.Seed, sc.Description)
	for _, inv := range sc.Invariants {
		// Checkpoint invariants capture their evidence mid-run.
		if a, ok := inv.(armer); ok {
			a.arm(h)
		}
	}
	for _, ev := range sc.Events {
		ev := ev
		h.clk.Schedule(ev.At, func() {
			h.logf("inject: %s", ev.Fault)
			ev.Fault.apply(h)
		})
	}
	h.clk.RunFor(sc.Duration)
	// The workload ends here, and so does the measured run: once the
	// source stops changing, growing wall-clock staleness is an artifact
	// of the harness, not a protocol violation. The settle phase only
	// drains in-flight traffic so end-state invariants see a quiet
	// cluster.
	h.stopWriters()
	h.mon.FinishAt(h.clk.Now())
	h.clk.RunFor(sc.Settle)

	for _, inv := range sc.Invariants {
		if err := inv.Check(h); err != nil {
			h.violationf("invariant %s: %v", inv.Name(), err)
		} else {
			h.logf("invariant %s: ok", inv.Name())
		}
	}

	res := &Result{
		Scenario:   sc.Name,
		Seed:       sc.Seed,
		Log:        h.log,
		Violations: h.violations,
		Promotions: h.promotions,
		Elapsed:    h.clk.Now().Sub(h.start),
	}
	if h.active != nil && h.active.Running() {
		res.FinalEpoch = h.active.Epoch()
	}
	for _, name := range h.order {
		for _, spec := range sc.Objects {
			r, ok := h.mon.ExternalReport(name, spec.Name)
			if !ok {
				continue
			}
			if r.ViolationTime > res.BoundViolation {
				res.BoundViolation = r.ViolationTime
			}
			if r.UnverifiableTime > res.UnverifiableTime {
				res.UnverifiableTime = r.UnverifiableTime
			}
			if r.Theta > res.EndTheta {
				res.EndTheta = r.Theta
			}
		}
	}
	for name, done := range h.caughtUpAt {
		if started, ok := h.rejoinAt[name]; ok {
			if d := done.Sub(started); d > res.RejoinCatchUp {
				res.RejoinCatchUp = d
			}
		}
	}
	for name, done := range h.joinedAt {
		if accepted, ok := h.joinAcceptAt[name]; ok {
			if d := done.Sub(accepted); d > res.RejoinTransfer {
				res.RejoinTransfer = d
			}
		}
	}
	for _, rj := range h.rejoiners {
		if st := rj.Status(); st.Joined {
			res.RejoinSource = st.Source
		}
	}
	for _, rec := range h.recovered {
		res.RestoredObjects += rec.objects
	}
	h.cleanupDurable()
	return res, nil
}
