package chaos

import (
	"bytes"
	"fmt"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/netsim"
	"rtpb/internal/shard"
	"rtpb/internal/temporal"
)

// ShardScenario is a deterministic fault-injection run against a
// sharded cluster (internal/shard): K primary-backup groups on one
// lossy fabric, one group's primary killed mid-run. It checks the
// blast-radius property the sharding layer promises — a failover in one
// group is invisible to every other group's temporal accounting — plus
// the capacity claim that motivates sharding in the first place: the
// run opens with a single-pair probe that provably rejects the object
// set the sharded cluster then admits in full.
type ShardScenario struct {
	// Name and Description identify the scenario in listings.
	Name        string
	Description string
	// Seed drives the fabric's loss/jitter draws; defaults to 1.
	Seed int64
	// Shards is K; defaults to 4.
	Shards int
	// Loss is the fabric-wide datagram loss probability; defaults to 0.1.
	Loss float64
	// Duration is the fault-and-workload phase; defaults to 2s.
	Duration time.Duration
	// Settle is the post-workload drain; defaults to 400ms.
	Settle time.Duration
	// CrashShard is the group whose primary dies; defaults to 0.
	CrashShard int
	// CrashAt is the injection instant; defaults to 500ms.
	CrashAt time.Duration
	// Objects is the workload set; empty means a generated set of eight
	// identical objects sized so a single pair cannot schedule them all.
	Objects []core.ObjectSpec
	// WritePeriod is the client write period per object; defaults to
	// each object's UpdatePeriod.
	WritePeriod time.Duration
	// Headroom is the placer's reserve, tuned so the default set spreads
	// across all four groups; defaults to 0.55.
	Headroom float64
}

func (s *ShardScenario) normalize() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards <= 0 {
		s.Shards = 4
	}
	if s.Loss == 0 {
		s.Loss = 0.1
	}
	if s.Duration == 0 {
		s.Duration = 2 * time.Second
	}
	if s.Settle == 0 {
		s.Settle = 400 * time.Millisecond
	}
	if s.CrashAt == 0 {
		s.CrashAt = 500 * time.Millisecond
	}
	if s.Headroom == 0 {
		s.Headroom = 0.55
	}
	if len(s.Objects) == 0 {
		for i := 0; i < 8; i++ {
			s.Objects = append(s.Objects, core.ObjectSpec{
				Name:         fmt.Sprintf("obj%d", i),
				Size:         64,
				UpdatePeriod: 5 * time.Millisecond,
				Constraint: temporal.ExternalConstraint{
					DeltaP: 10 * time.Millisecond,
					DeltaB: 20 * time.Millisecond,
				},
			})
		}
	}
}

// ShardCatalogue returns the canned sharded-cluster scenarios.
func ShardCatalogue() []ShardScenario {
	return []ShardScenario{
		{
			Name: "shard-primary-crash",
			Description: "kill one of four shard primaries under 10% loss; " +
				"the other shards' bounds never waver and routed writes converge",
		},
	}
}

// FindShard looks a sharded scenario up by name.
func FindShard(name string) (ShardScenario, bool) {
	for _, sc := range ShardCatalogue() {
		if sc.Name == name {
			return sc, true
		}
	}
	return ShardScenario{}, false
}

// RunShard executes a sharded scenario and evaluates its invariants.
// Deterministic like Run: the same scenario and seed reproduce the
// Result — including the event log — byte for byte.
func RunShard(sc ShardScenario) (*Result, error) {
	sc.normalize()
	res := &Result{Scenario: sc.Name, Seed: sc.Seed}
	violationf := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		res.Violations = append(res.Violations, msg)
		res.Log = append(res.Log, "VIOLATION: "+msg)
	}
	link := netsim.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond, LossProb: sc.Loss}

	// Phase 1: the single-pair probe. One primary-backup group, no
	// placer reserve, a loss-free fabric — the most favourable terms a
	// pair could ask for — must still reject the object set, or sharding
	// has nothing to prove on it.
	probe, err := shard.NewCluster(shard.Config{Shards: 1, Seed: sc.Seed, Headroom: -1})
	if err != nil {
		return nil, err
	}
	admitted, rejected := 0, false
	for _, spec := range sc.Objects {
		if _, d, err := probe.Place(spec); err != nil {
			res.Log = append(res.Log, fmt.Sprintf(
				"probe: single pair rejects %q after %d admits: %s", spec.Name, admitted, d.Reason))
			rejected = true
			break
		}
		admitted++
	}
	probe.Stop()
	res.Log = append(res.Log, fmt.Sprintf(
		"probe: single pair schedules %d of %d objects", admitted, len(sc.Objects)))
	if !rejected {
		violationf("single pair admitted the whole set; the scenario's capacity claim is vacuous")
	}

	// Phase 2: the sharded cluster admits the same set in full, spread
	// across the groups, under the lossy fabric.
	c, err := shard.NewCluster(shard.Config{
		Shards:   sc.Shards,
		Seed:     sc.Seed,
		Link:     link,
		Headroom: sc.Headroom,
	})
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	start := c.Clock().Now()
	shardOf := make(map[string]int, len(sc.Objects))
	used := map[int]bool{}
	for _, spec := range sc.Objects {
		idx, _, err := c.Place(spec)
		if err != nil {
			violationf("sharded cluster rejected %q: %v", spec.Name, err)
			continue
		}
		shardOf[spec.Name] = idx
		used[idx] = true
	}
	if len(used) < 2 {
		violationf("placement used only %d shard(s)", len(used))
	}

	for _, spec := range sc.Objects {
		period := sc.WritePeriod
		if period == 0 {
			period = spec.UpdatePeriod
		}
		c.WriteEvery(spec.Name, period)
	}
	c.Schedule(sc.CrashAt, func() { c.CrashPrimary(sc.CrashShard) })
	c.RunFor(sc.Duration)
	c.StopWriters()
	c.Monitor().FinishAt(c.Clock().Now())
	c.RunFor(sc.Settle)
	res.Log = append(res.Log, c.Log()...)
	res.Elapsed = c.Clock().Now().Sub(start)

	// Invariants. The crashed group must have failed over exactly once
	// and fenced the dead primary's epoch; every object — including the
	// crashed group's — must converge through the re-resolved route.
	st := c.Statuses()[sc.CrashShard]
	res.Promotions = st.Promotions
	res.FinalEpoch = st.Epoch
	if st.Promotions != 1 {
		violationf("crashed shard saw %d promotions, want exactly 1", st.Promotions)
	}
	if st.Epoch < 2 {
		violationf("crashed shard's serving epoch is %d, want >= 2", st.Epoch)
	}
	for name, idx := range shardOf {
		got, _, ok := c.Read(name)
		want := c.LastWritten(name)
		if !ok || !bytes.Equal(got, want) {
			violationf("%q (shard %d) did not converge: primary holds %q, last write %q",
				name, idx, got, want)
		}
	}
	// The blast-radius property: no surviving group's backup image ever
	// violated its external bound or had its accounting suspended — the
	// crash next door was invisible to them.
	for name, idx := range shardOf {
		if idx == sc.CrashShard {
			continue
		}
		site := c.BackupSite(idx)
		rep, ok := c.Monitor().ExternalReport(site, name)
		if !ok {
			violationf("no external report for %s/%s", site, name)
			continue
		}
		if !rep.Consistent() {
			violationf("surviving shard %d's %q violated δB at %v (max staleness %v)",
				idx, name, rep.ViolationTime, rep.MaxStaleness)
		}
		if c.Monitor().Suspended(site, name) {
			violationf("surviving shard %d's %q had its bound suspended", idx, name)
		}
	}
	return res, nil
}
