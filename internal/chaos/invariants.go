package chaos

import (
	"bytes"
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/temporal"
)

// Converged asserts that, after the settle phase, every running backup
// holds exactly the active primary's current value for every object.
type Converged struct{}

// Name implements Checker.
func (Converged) Name() string { return "converged" }

// Check implements Checker.
func (Converged) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary to converge to")
	}
	backups := 0
	for _, name := range h.order {
		n := h.nodes[name]
		if n.Backup == nil || !n.Backup.Running() {
			continue
		}
		backups++
		for _, spec := range h.sc.Objects {
			want, _, ok := h.active.Value(spec.Name)
			if !ok {
				return fmt.Errorf("primary has no value for %q", spec.Name)
			}
			got, _, ok := n.Backup.Value(spec.Name)
			if !ok {
				return fmt.Errorf("%s has no value for %q", name, spec.Name)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("%s diverged on %q: %q != primary's %q", name, spec.Name, got, want)
			}
		}
	}
	if backups == 0 {
		return fmt.Errorf("no running backup to check")
	}
	return nil
}

// BoundHeld asserts the external temporal-consistency bound δ^B held for
// the whole run at one backup site, for every object.
type BoundHeld struct {
	// Site is the backup node name; empty means BackupNode.
	Site string
}

// Name implements Checker.
func (BoundHeld) Name() string { return "external-bound" }

// Check implements Checker.
func (c BoundHeld) Check(h *Harness) error {
	site := c.Site
	if site == "" {
		site = BackupNode
	}
	for _, spec := range h.sc.Objects {
		r, ok := h.mon.ExternalReport(site, spec.Name)
		if !ok {
			return fmt.Errorf("no report for %s/%s", site, spec.Name)
		}
		if r.Updates == 0 {
			return fmt.Errorf("%s/%s never applied an update", site, spec.Name)
		}
		if !r.Consistent() {
			return fmt.Errorf("%s/%s: %v beyond δB=%v in %d excursions (max staleness %v)",
				site, spec.Name, r.ViolationTime, r.Delta, r.Excursions, r.MaxStaleness)
		}
	}
	return nil
}

// armer is the optional mid-run side of a Checker: arm is called before
// the scenario starts so the invariant can schedule evidence capture at
// virtual instants of its choosing.
type armer interface {
	arm(h *Harness)
}

// checkpoint is a mid-run external-consistency capture.
type checkpoint struct {
	report temporal.ExternalReport
	ok     bool
}

// BoundHeldUntil asserts the external bound held at one backup site up
// to an offset from scenario start — the checkpoint form used when a
// later fault legitimately breaks the bound (e.g. a crash window). The
// evidence is captured at that instant during the run through the
// monitor's non-destructive snapshot hook, so the full-run statistics
// are untouched.
type BoundHeldUntil struct {
	// Site is the backup node name; empty means BackupNode.
	Site string
	// Until is the offset from scenario start up to which the bound must
	// have held.
	Until time.Duration
}

func (c BoundHeldUntil) site() string {
	if c.Site == "" {
		return BackupNode
	}
	return c.Site
}

func (c BoundHeldUntil) key(object string) string {
	return fmt.Sprintf("%s/%s@%v", c.site(), object, c.Until)
}

// arm schedules the snapshot capture at the checkpoint instant.
func (c BoundHeldUntil) arm(h *Harness) {
	h.clk.Schedule(c.Until, func() {
		for _, spec := range h.sc.Objects {
			r, ok := h.mon.SnapshotExternal(c.site(), spec.Name, h.clk.Now())
			h.checkpoints[c.key(spec.Name)] = checkpoint{report: r, ok: ok}
		}
	})
}

// Name implements Checker.
func (c BoundHeldUntil) Name() string { return fmt.Sprintf("external-bound-until-%v", c.Until) }

// Check implements Checker.
func (c BoundHeldUntil) Check(h *Harness) error {
	for _, spec := range h.sc.Objects {
		ck, captured := h.checkpoints[c.key(spec.Name)]
		if !captured {
			return fmt.Errorf("checkpoint at +%v was never captured", c.Until)
		}
		if !ck.ok {
			return fmt.Errorf("no report for %s/%s", c.site(), spec.Name)
		}
		r := ck.report
		if r.Updates == 0 {
			return fmt.Errorf("%s/%s never applied an update", c.site(), spec.Name)
		}
		if !r.Consistent() {
			return fmt.Errorf("%s/%s: %v beyond δB=%v before +%v",
				c.site(), spec.Name, r.ViolationTime, r.Delta, c.Until)
		}
	}
	return nil
}

// InterBoundHeld asserts every registered inter-object constraint held
// at one backup site.
type InterBoundHeld struct {
	// Site is the backup node name; empty means BackupNode.
	Site string
}

// Name implements Checker.
func (InterBoundHeld) Name() string { return "inter-object-bound" }

// Check implements Checker.
func (c InterBoundHeld) Check(h *Harness) error {
	site := c.Site
	if site == "" {
		site = BackupNode
	}
	for _, ioc := range h.sc.InterObjects {
		r, ok := h.mon.InterObjectReport(site, ioc.I, ioc.J)
		if !ok {
			return fmt.Errorf("no report for %s/(%s,%s)", site, ioc.I, ioc.J)
		}
		if r.Checks == 0 {
			return fmt.Errorf("%s/(%s,%s) never evaluated", site, ioc.I, ioc.J)
		}
		if !r.Consistent() {
			return fmt.Errorf("%s/(%s,%s): %d violations, max distance %v > δ_ij=%v",
				site, ioc.I, ioc.J, r.Violations, r.MaxDistance, r.Delta)
		}
	}
	return nil
}

// GovernorDegradedAt asserts the overload governor had demoted at least
// MinDegraded objects (MinShed of them to shed) at an instant mid-run —
// the checkpoint form proving the ladder actually engaged during the
// overload window, not merely that the end state looks healthy. The
// evidence is captured during the run by the armer hook.
type GovernorDegradedAt struct {
	// At is the offset from scenario start at which to capture the
	// ladder state.
	At time.Duration
	// MinDegraded is the minimum number of objects below normal mode.
	MinDegraded int
	// MinShed is the minimum number of objects at shed.
	MinShed int
}

func (c GovernorDegradedAt) key() string { return fmt.Sprintf("governor@%v", c.At) }

// arm schedules the ladder-state capture.
func (c GovernorDegradedAt) arm(h *Harness) {
	h.clk.Schedule(c.At, func() {
		p := h.active
		if p == nil || !p.Running() {
			return
		}
		h.govCheckpoints[c.key()] = govCheckpoint{
			stats: p.GovernorStats(),
			modes: p.Modes(),
			ok:    true,
		}
	})
}

// Name implements Checker.
func (c GovernorDegradedAt) Name() string { return fmt.Sprintf("governor-degraded-at-%v", c.At) }

// Check implements Checker.
func (c GovernorDegradedAt) Check(h *Harness) error {
	ck, captured := h.govCheckpoints[c.key()]
	if !captured || !ck.ok {
		return fmt.Errorf("ladder checkpoint at +%v was never captured", c.At)
	}
	if ck.stats.Degraded < c.MinDegraded {
		return fmt.Errorf("at +%v only %d objects degraded (modes %v), want at least %d",
			c.At, ck.stats.Degraded, ck.modes, c.MinDegraded)
	}
	if ck.stats.Shed < c.MinShed {
		return fmt.Errorf("at +%v only %d objects shed (modes %v), want at least %d",
			c.At, ck.stats.Shed, ck.modes, c.MinShed)
	}
	return nil
}

// GovernorRecovered asserts the degradation ladder was exercised and
// fully unwound: the governor demoted at least MinDemotions rungs during
// the run, promoted exactly as many back, and every object ended at
// normal mode.
type GovernorRecovered struct {
	// MinDemotions is the minimum rung transitions down; 0 means 1.
	MinDemotions int
}

// Name implements Checker.
func (GovernorRecovered) Name() string { return "governor-recovered" }

// Check implements Checker.
func (c GovernorRecovered) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	min := c.MinDemotions
	if min == 0 {
		min = 1
	}
	s := h.active.GovernorStats()
	if s.Demotions < min {
		return fmt.Errorf("governor demoted %d rungs, want at least %d (overload never engaged it)",
			s.Demotions, min)
	}
	if s.Promotions != s.Demotions {
		return fmt.Errorf("governor promoted %d of %d demoted rungs back", s.Promotions, s.Demotions)
	}
	for name, m := range h.active.Modes() {
		if m != core.ModeNormal {
			return fmt.Errorf("object %q ended at %s, want normal", name, m)
		}
	}
	return nil
}

// RetransmitDamped asserts the backup's gap-recovery throttle engaged:
// at most MaxRequests retransmission requests left the site while at
// least MinSuppressed were absorbed by the backoff window.
type RetransmitDamped struct {
	// Site is the backup node name; empty means BackupNode.
	Site string
	// MaxRequests caps the requests actually sent.
	MaxRequests int
	// MinSuppressed floors the requests absorbed by the throttle.
	MinSuppressed int
}

// Name implements Checker.
func (RetransmitDamped) Name() string { return "retransmit-damped" }

// Check implements Checker.
func (c RetransmitDamped) Check(h *Harness) error {
	site := c.Site
	if site == "" {
		site = BackupNode
	}
	n := h.nodes[site]
	if n == nil || n.Backup == nil || !n.Backup.Running() {
		return fmt.Errorf("no running backup on %s", site)
	}
	req, sup := n.Backup.RetransmitStats()
	if req > c.MaxRequests {
		return fmt.Errorf("%d retransmission requests sent, want at most %d (%d suppressed)",
			req, c.MaxRequests, sup)
	}
	if sup < c.MinSuppressed {
		return fmt.Errorf("only %d requests suppressed (%d sent), want at least %d — throttle never engaged",
			sup, req, c.MinSuppressed)
	}
	return nil
}

// Promotions asserts the exact number of backup-to-primary takeovers.
type Promotions struct {
	// Want is the expected count.
	Want int
}

// Name implements Checker.
func (c Promotions) Name() string { return fmt.Sprintf("promotions=%d", c.Want) }

// Check implements Checker.
func (c Promotions) Check(h *Harness) error {
	if h.promotions != c.Want {
		return fmt.Errorf("saw %d promotions, want %d", h.promotions, c.Want)
	}
	return nil
}

// EpochIs asserts the serving primary's final epoch — the epoch
// monotonicity capstone (streaming checks catch any intermediate
// regression; this pins the end state).
type EpochIs struct {
	// Want is the expected epoch.
	Want uint32
}

// Name implements Checker.
func (c EpochIs) Name() string { return fmt.Sprintf("epoch=%d", c.Want) }

// Check implements Checker.
func (c EpochIs) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	if e := h.active.Epoch(); e != c.Want {
		return fmt.Errorf("final epoch %d, want %d", e, c.Want)
	}
	return nil
}

// PromotedAfter asserts the first promotion happened at or after an
// offset from scenario start (e.g. not before a suppressed detector was
// resumed).
type PromotedAfter struct {
	// Offset is the earliest admissible promotion instant.
	Offset time.Duration
}

// Name implements Checker.
func (c PromotedAfter) Name() string { return fmt.Sprintf("promoted-after-%v", c.Offset) }

// Check implements Checker.
func (c PromotedAfter) Check(h *Harness) error {
	if len(h.promotedAt) == 0 {
		return fmt.Errorf("no promotion happened")
	}
	earliest := h.start.Add(c.Offset)
	if h.promotedAt[0].Before(earliest) {
		return fmt.Errorf("promoted at +%v, before +%v",
			h.promotedAt[0].Sub(h.start), c.Offset)
	}
	return nil
}

// ActiveServes asserts the serving primary is running and holds a value
// for every object — the liveness floor for post-failover scenarios
// where no backup remains to compare against.
type ActiveServes struct{}

// Name implements Checker.
func (ActiveServes) Name() string { return "active-serves" }

// Check implements Checker.
func (ActiveServes) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	for _, spec := range h.sc.Objects {
		if _, _, ok := h.active.Value(spec.Name); !ok {
			return fmt.Errorf("active primary on %s has no value for %q", h.activeNode, spec.Name)
		}
	}
	return nil
}

// NoSplitBrain asserts every running backup ended at the active
// primary's epoch. Together with the always-on streaming check (a backup
// must never apply state from a fenced epoch), it is the no-split-brain
// property of the epoch mechanism.
type NoSplitBrain struct{}

// Name implements Checker.
func (NoSplitBrain) Name() string { return "no-split-brain" }

// Check implements Checker.
func (NoSplitBrain) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	want := h.active.Epoch()
	for _, name := range h.order {
		n := h.nodes[name]
		if n.Backup == nil || !n.Backup.Running() {
			continue
		}
		if e := n.Backup.Epoch(); e != want {
			return fmt.Errorf("%s at epoch %d, active primary at %d", name, e, want)
		}
	}
	return nil
}

// RejoinCaughtUp asserts a rejoined node completed the full repair
// cycle: its backup finished the chunked join exchange, every object
// went through a monitor catch-up cycle (suspended until an update
// landed inside δ_i^B — nothing was reported consistent early), and the
// serving primary counts the replica synced, restoring the replication
// degree.
type RejoinCaughtUp struct {
	// Node names the rejoined node.
	Node string
}

// Name implements Checker.
func (c RejoinCaughtUp) Name() string { return fmt.Sprintf("rejoin-caught-up-%s", c.Node) }

// Check implements Checker.
func (c RejoinCaughtUp) Check(h *Harness) error {
	n := h.nodes[c.Node]
	if n == nil || n.Backup == nil || !n.Backup.Running() {
		return fmt.Errorf("no running backup on %s", c.Node)
	}
	if !n.Backup.Joined() {
		return fmt.Errorf("%s never completed its join exchange", c.Node)
	}
	if rem := n.Backup.CatchUpRemaining(); rem != 0 {
		return fmt.Errorf("%s still has %d objects catching up", c.Node, rem)
	}
	for _, spec := range h.sc.Objects {
		if h.mon.CatchingUp(c.Node, spec.Name) {
			return fmt.Errorf("monitor still marks %s/%s catching up", c.Node, spec.Name)
		}
		if h.mon.CatchUps(c.Node, spec.Name) == 0 {
			return fmt.Errorf("%s/%s never went through a catch-up cycle — the join was never marked stale", c.Node, spec.Name)
		}
	}
	if _, ok := h.caughtUpAt[c.Node]; !ok {
		return fmt.Errorf("%s's catch-up completion instant was never recorded", c.Node)
	}
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	if got := h.active.SyncedPeers(); got < 1 {
		return fmt.Errorf("primary counts %d synced peers; the rejoined replica never reached parity", got)
	}
	return nil
}

// DiskRecovered asserts a node actually restarted from its durable
// store: recovery ran, survived whatever disk faults were injected, and
// produced a non-trivial image.
type DiskRecovered struct {
	// Node names the restarted node.
	Node string
	// MinObjects floors the recovered object count; 0 means 1.
	MinObjects int
	// Source, when non-empty, pins the restart path: "disk" for a
	// resumed primary, "disk+gap" for a backup that replayed its tail
	// before rejoining.
	Source string
	// Stopped, when non-empty, pins why replay stopped ("torn-tail",
	// "corrupt-record", "missing-segment") — the proof that an injected
	// disk fault was actually hit and tolerated rather than silently
	// absent.
	Stopped string
}

// Name implements Checker.
func (c DiskRecovered) Name() string { return fmt.Sprintf("disk-recovered-%s", c.Node) }

// Check implements Checker.
func (c DiskRecovered) Check(h *Harness) error {
	rec, ok := h.recovered[c.Node]
	if !ok {
		return fmt.Errorf("%s never recovered from disk", c.Node)
	}
	min := c.MinObjects
	if min == 0 {
		min = 1
	}
	if rec.objects < min {
		return fmt.Errorf("%s recovered %d object(s), want at least %d", c.Node, rec.objects, min)
	}
	if c.Source != "" && rec.source != c.Source {
		return fmt.Errorf("%s recovered via %q, want %q", c.Node, rec.source, c.Source)
	}
	if c.Stopped != "" && rec.stats.Stopped != c.Stopped {
		return fmt.Errorf("%s's replay stopped with %q, want %q — the injected fault was never encountered",
			c.Node, rec.stats.Stopped, c.Stopped)
	}
	return nil
}

// RejoinSynced asserts a rejoined node completed its join exchange and
// the serving primary counts it synced — the transfer-level half of
// RejoinCaughtUp, for workloads whose cold objects legitimately never
// complete a temporal catch-up cycle (no fresh write lands within δ_B
// of the join, so the monitor keeps their bounds suspended).
type RejoinSynced struct {
	// Node names the rejoined node.
	Node string
}

// Name implements Checker.
func (c RejoinSynced) Name() string { return fmt.Sprintf("rejoin-synced-%s", c.Node) }

// Check implements Checker.
func (c RejoinSynced) Check(h *Harness) error {
	n := h.nodes[c.Node]
	if n == nil || n.Backup == nil || !n.Backup.Running() {
		return fmt.Errorf("no running backup on %s", c.Node)
	}
	if !n.Backup.Joined() {
		return fmt.Errorf("%s never completed its join exchange", c.Node)
	}
	if _, ok := h.joinedAt[c.Node]; !ok {
		return fmt.Errorf("%s's join completion instant was never recorded", c.Node)
	}
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	if got := h.active.SyncedPeers(); got < 1 {
		return fmt.Errorf("primary counts %d synced peers; the rejoined replica never reached parity", got)
	}
	return nil
}

// honestBoundsEvidence accumulates one HonestBounds armer's mid-run
// observations.
type honestBoundsEvidence struct {
	checks   int
	worstErr time.Duration
	failures []string
}

// HonestBounds is the clock-sync honesty invariant: at a fixed cadence
// during the run, the backup's estimated offset is compared against the
// injected ground truth (the difference of the two nodes' SkewedClock
// true offsets, which no protocol participant can see), and the true
// error must never exceed the θ the estimator reports. An estimator that
// under-reports θ — claims a tighter bound than it has — fails here even
// if every scenario assertion happens to pass.
type HonestBounds struct {
	// Site is the probing backup's node; empty means BackupNode.
	Site string
	// Every is the check cadence; zero means 25ms.
	Every time.Duration
	// MinChecks floors the number of checks that must have run with a
	// valid estimate (guarding against vacuous passes); zero means 10.
	MinChecks int
}

func (c HonestBounds) site() string {
	if c.Site == "" {
		return BackupNode
	}
	return c.Site
}

// arm schedules the periodic ground-truth comparison.
func (c HonestBounds) arm(h *Harness) {
	every := c.Every
	if every == 0 {
		every = 25 * time.Millisecond
	}
	ev := &honestBoundsEvidence{}
	h.honestChecks[c.site()] = ev
	clock.NewPeriodic(h.clk, every, every, func() {
		n := h.nodes[c.site()]
		if n == nil || n.Backup == nil || !n.Backup.Running() {
			return
		}
		rep, ok := n.Backup.ClockSyncReport()
		if !ok || !rep.Valid {
			return
		}
		p := h.nodes[h.activeNode]
		if p == nil {
			return
		}
		// Ground truth: estimated offset targets (primary clock − backup
		// clock), which by construction is the difference of the injected
		// true offsets.
		truth := p.Clk.TrueOffset() - n.Clk.TrueOffset()
		err := rep.Offset - truth
		if err < 0 {
			err = -err
		}
		ev.checks++
		if err > ev.worstErr {
			ev.worstErr = err
		}
		if err > rep.Theta {
			ev.failures = append(ev.failures, fmt.Sprintf(
				"+%v: |estimate−truth| = %v exceeds reported θ=%v",
				h.clk.Now().Sub(h.start).Round(100*time.Microsecond), err, rep.Theta))
		}
	})
}

// Name implements Checker.
func (c HonestBounds) Name() string { return fmt.Sprintf("honest-bounds-%s", c.site()) }

// Check implements Checker.
func (c HonestBounds) Check(h *Harness) error {
	ev := h.honestChecks[c.site()]
	if ev == nil {
		return fmt.Errorf("never armed")
	}
	if len(ev.failures) > 0 {
		return fmt.Errorf("θ dishonest in %d of %d checks, first: %s",
			len(ev.failures), ev.checks, ev.failures[0])
	}
	min := c.MinChecks
	if min == 0 {
		min = 10
	}
	if ev.checks < min {
		return fmt.Errorf("only %d checks ran with a valid estimate, want at least %d", ev.checks, min)
	}
	return nil
}

// UnverifiableWindow asserts the monitor's suspend-not-lie behaviour was
// actually exercised: every object at the site spent at least MinTime
// unverifiable (θ exceeded the slack), accrued zero violations of the
// verifiable bound, and — unless EndsUnverifiable — recovered to a
// verifiable state by the end of the run.
type UnverifiableWindow struct {
	// Site is the backup node name; empty means BackupNode.
	Site string
	// MinTime floors each object's total unverifiable time.
	MinTime time.Duration
	// EndsUnverifiable, when set, expects the run to end with θ still
	// beyond the slack.
	EndsUnverifiable bool
}

// Name implements Checker.
func (UnverifiableWindow) Name() string { return "unverifiable-window" }

// Check implements Checker.
func (c UnverifiableWindow) Check(h *Harness) error {
	site := c.Site
	if site == "" {
		site = BackupNode
	}
	for _, spec := range h.sc.Objects {
		r, ok := h.mon.ExternalReport(site, spec.Name)
		if !ok {
			return fmt.Errorf("no report for %s/%s", site, spec.Name)
		}
		if r.UnverifiableTime < c.MinTime {
			return fmt.Errorf("%s/%s unverifiable for %v, want at least %v — θ never ate the slack",
				site, spec.Name, r.UnverifiableTime, c.MinTime)
		}
		if r.UnverifiableSpells == 0 {
			return fmt.Errorf("%s/%s recorded unverifiable time but no spell", site, spec.Name)
		}
		if !r.Consistent() {
			return fmt.Errorf("%s/%s: %v charged beyond the verifiable bound — the monitor lied instead of suspending",
				site, spec.Name, r.ViolationTime)
		}
		if r.Unverifiable != c.EndsUnverifiable {
			return fmt.Errorf("%s/%s ended unverifiable=%v, want %v",
				site, spec.Name, r.Unverifiable, c.EndsUnverifiable)
		}
		if r.Verified() {
			return fmt.Errorf("%s/%s claims Verified() despite %v unverifiable — the honesty flag is broken",
				site, spec.Name, r.UnverifiableTime)
		}
	}
	return nil
}

// observerCertEvidence accumulates one ObserverHonestCerts armer's
// samples.
type observerCertEvidence struct {
	samples  int
	stale    int
	fresh    int
	failures []string
}

// ObserverHonestCerts is the certificate-honesty invariant for an
// observer under fault: at a fixed cadence inside a window — typically a
// partition — every certificate the observer serves is compared against
// ground truth. Version stamps ride the relay stream unchanged, so the
// true staleness of the observer's image is exactly the fabric-clock age
// of its version stamp; the certificate must never understate it
// (Age+Theta < truth would mean a relay restamped or renumbered the
// stream — staleness laundering), and once the truth exceeds the
// object's δ_B the certificate must have stopped claiming Fresh: stale
// is served as provably stale, never silently fresh. MinStale and
// MinFresh floor the samples that actually landed on each side of the
// bound, so a pass can't be vacuous.
type ObserverHonestCerts struct {
	// Node names the observer to sample.
	Node string
	// From and To bound the sampling window (offsets from start).
	From, To time.Duration
	// Every is the sampling cadence; zero means 20ms.
	Every time.Duration
	// MinStale floors the provably-stale (non-Fresh) samples; zero means
	// no staleness is required of the window.
	MinStale int
	// MinFresh floors the Fresh samples; zero means none required.
	MinFresh int
}

func (c ObserverHonestCerts) key() string {
	return fmt.Sprintf("%s@%v-%v", c.Node, c.From, c.To)
}

// arm schedules the periodic ground-truth comparison across the window.
func (c ObserverHonestCerts) arm(h *Harness) {
	every := c.Every
	if every == 0 {
		every = 20 * time.Millisecond
	}
	ev := &observerCertEvidence{}
	h.obsChecks[c.key()] = ev
	task := clock.NewPeriodic(h.clk, c.From, every, func() {
		n := h.nodes[c.Node]
		if n == nil || n.Observer == nil || !n.Observer.Running() {
			return
		}
		now := h.clk.Now()
		for _, spec := range h.sc.Objects {
			cert, ok := n.Observer.Certificate(spec.Name)
			if !ok {
				continue
			}
			// Ground truth: the version stamp was written by the primary's
			// unskewed clock, so its fabric-clock age is the image's true
			// staleness — a quantity no chain participant can see directly.
			truth := now.Sub(cert.Version)
			if truth < 0 {
				truth = 0
			}
			ev.samples++
			if cert.Age+cert.Theta < truth {
				ev.failures = append(ev.failures, fmt.Sprintf(
					"+%v: %q age=%v θ=%v understates true staleness %v",
					now.Sub(h.start).Round(100*time.Microsecond),
					spec.Name, cert.Age, cert.Theta, truth))
			}
			if truth > spec.Constraint.DeltaB && cert.Fresh() {
				ev.failures = append(ev.failures, fmt.Sprintf(
					"+%v: %q claims fresh (age=%v θ=%v within δB=%v) while truly %v stale",
					now.Sub(h.start).Round(100*time.Microsecond),
					spec.Name, cert.Age, cert.Theta, cert.Bound, truth))
			}
			if cert.Fresh() {
				ev.fresh++
			} else {
				ev.stale++
			}
		}
	})
	h.clk.Schedule(c.To, task.Stop)
}

// Name implements Checker.
func (c ObserverHonestCerts) Name() string {
	return fmt.Sprintf("observer-honest-certs-%s@%v", c.Node, c.From)
}

// Check implements Checker.
func (c ObserverHonestCerts) Check(h *Harness) error {
	ev := h.obsChecks[c.key()]
	if ev == nil {
		return fmt.Errorf("never armed")
	}
	if len(ev.failures) > 0 {
		return fmt.Errorf("%d of %d samples dishonest, first: %s",
			len(ev.failures), ev.samples, ev.failures[0])
	}
	if ev.samples == 0 {
		return fmt.Errorf("no certificate was ever sampled in the window — the observer never served")
	}
	if ev.stale < c.MinStale {
		return fmt.Errorf("only %d of %d samples were provably stale, want at least %d — the fault never bit",
			ev.stale, ev.samples, c.MinStale)
	}
	if ev.fresh < c.MinFresh {
		return fmt.Errorf("only %d of %d samples were fresh, want at least %d — the chain never recovered",
			ev.fresh, ev.samples, c.MinFresh)
	}
	return nil
}

// ObserverExcluded asserts the role lattice's exclusion held to the end:
// every observer is still an observer (no promotion or recruitment ever
// flipped one into the failover lattice), every observer completed its
// subscription join, the serving primary counts exactly the voting
// backups as synced, and its peer table marks every directly-attached
// observer as such.
type ObserverExcluded struct {
	// SyncedPeers is the expected voting peer count at the primary.
	SyncedPeers int
}

// Name implements Checker.
func (ObserverExcluded) Name() string { return "observer-excluded" }

// Check implements Checker.
func (c ObserverExcluded) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	if len(h.obsOrder) == 0 {
		return fmt.Errorf("scenario attaches no observers")
	}
	for _, name := range h.obsOrder {
		n := h.nodes[name]
		if n.Observer == nil || !n.Observer.Running() {
			return fmt.Errorf("%s is not running an observer", name)
		}
		if role := n.Observer.Role(); role != core.RoleObserver {
			return fmt.Errorf("%s ended as %v — an observer entered the failover lattice", name, role)
		}
		if !n.Observer.Joined() {
			return fmt.Errorf("%s never completed its subscription join", name)
		}
	}
	if got := h.active.SyncedPeers(); got != c.SyncedPeers {
		return fmt.Errorf("primary counts %d synced peers, want %d — an observer leaked into the quorum",
			got, c.SyncedPeers)
	}
	direct := 0
	for _, spec := range h.sc.Observers {
		if spec.Upstream == h.activeNode {
			direct++
		}
	}
	if got := h.active.ObserverPeers(); got != direct {
		return fmt.Errorf("primary marks %d observer peer(s), want %d", got, direct)
	}
	return nil
}

// ObserverConverged asserts every observer ended holding the active
// primary's exact value for every object, at its correct hop depth —
// the chain healed, the relayed stream (plus downstream gap recovery)
// drained the divergence, and the depth accounting survived the fault
// schedule. Freshness at the end is NOT asserted here: the settle phase
// stops the writers, so every certificate legitimately ages out; a
// post-heal ObserverHonestCerts window asserts recovery while the
// workload still runs.
type ObserverConverged struct{}

// Name implements Checker.
func (ObserverConverged) Name() string { return "observer-converged" }

// Check implements Checker.
func (ObserverConverged) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	if len(h.obsOrder) == 0 {
		return fmt.Errorf("scenario attaches no observers")
	}
	depth := map[string]int{}
	for _, spec := range h.sc.Observers {
		if spec.Upstream == PrimaryNode {
			depth[spec.Name] = 1
		} else {
			depth[spec.Name] = depth[spec.Upstream] + 1
		}
	}
	for _, name := range h.obsOrder {
		n := h.nodes[name]
		if n.Observer == nil || !n.Observer.Running() {
			return fmt.Errorf("%s is not running an observer", name)
		}
		for _, spec := range h.sc.Objects {
			want, _, ok := h.active.Value(spec.Name)
			if !ok {
				return fmt.Errorf("primary has no value for %q", spec.Name)
			}
			cert, ok := n.Observer.Certificate(spec.Name)
			if !ok {
				return fmt.Errorf("%s has no certificate for %q", name, spec.Name)
			}
			if !bytes.Equal(cert.Value, want) {
				return fmt.Errorf("%s diverged on %q: %q != primary's %q",
					name, spec.Name, cert.Value, want)
			}
			if cert.Depth != depth[name] {
				return fmt.Errorf("%s serves %q at depth %d, want %d",
					name, spec.Name, cert.Depth, depth[name])
			}
		}
	}
	return nil
}

// Progress asserts every running backup applied at least a minimum
// number of updates, guarding scenarios against passing vacuously.
type Progress struct {
	// MinApplies is the floor per backup node; 0 means 1.
	MinApplies int
}

// Name implements Checker.
func (Progress) Name() string { return "progress" }

// Check implements Checker.
func (c Progress) Check(h *Harness) error {
	min := c.MinApplies
	if min == 0 {
		min = 1
	}
	for _, name := range h.order {
		n := h.nodes[name]
		if n.Backup == nil && n.Primary == nil {
			continue // crashed and never restarted
		}
		if name == h.activeNode {
			continue
		}
		if n.applies < min {
			return fmt.Errorf("%s applied %d updates, want at least %d", name, n.applies, min)
		}
	}
	return nil
}
