package chaos

import (
	"bytes"
	"fmt"
	"time"

	"rtpb/internal/temporal"
)

// Converged asserts that, after the settle phase, every running backup
// holds exactly the active primary's current value for every object.
type Converged struct{}

// Name implements Checker.
func (Converged) Name() string { return "converged" }

// Check implements Checker.
func (Converged) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary to converge to")
	}
	backups := 0
	for _, name := range h.order {
		n := h.nodes[name]
		if n.Backup == nil || !n.Backup.Running() {
			continue
		}
		backups++
		for _, spec := range h.sc.Objects {
			want, _, ok := h.active.Value(spec.Name)
			if !ok {
				return fmt.Errorf("primary has no value for %q", spec.Name)
			}
			got, _, ok := n.Backup.Value(spec.Name)
			if !ok {
				return fmt.Errorf("%s has no value for %q", name, spec.Name)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("%s diverged on %q: %q != primary's %q", name, spec.Name, got, want)
			}
		}
	}
	if backups == 0 {
		return fmt.Errorf("no running backup to check")
	}
	return nil
}

// BoundHeld asserts the external temporal-consistency bound δ^B held for
// the whole run at one backup site, for every object.
type BoundHeld struct {
	// Site is the backup node name; empty means BackupNode.
	Site string
}

// Name implements Checker.
func (BoundHeld) Name() string { return "external-bound" }

// Check implements Checker.
func (c BoundHeld) Check(h *Harness) error {
	site := c.Site
	if site == "" {
		site = BackupNode
	}
	for _, spec := range h.sc.Objects {
		r, ok := h.mon.ExternalReport(site, spec.Name)
		if !ok {
			return fmt.Errorf("no report for %s/%s", site, spec.Name)
		}
		if r.Updates == 0 {
			return fmt.Errorf("%s/%s never applied an update", site, spec.Name)
		}
		if !r.Consistent() {
			return fmt.Errorf("%s/%s: %v beyond δB=%v in %d excursions (max staleness %v)",
				site, spec.Name, r.ViolationTime, r.Delta, r.Excursions, r.MaxStaleness)
		}
	}
	return nil
}

// armer is the optional mid-run side of a Checker: arm is called before
// the scenario starts so the invariant can schedule evidence capture at
// virtual instants of its choosing.
type armer interface {
	arm(h *Harness)
}

// checkpoint is a mid-run external-consistency capture.
type checkpoint struct {
	report temporal.ExternalReport
	ok     bool
}

// BoundHeldUntil asserts the external bound held at one backup site up
// to an offset from scenario start — the checkpoint form used when a
// later fault legitimately breaks the bound (e.g. a crash window). The
// evidence is captured at that instant during the run through the
// monitor's non-destructive snapshot hook, so the full-run statistics
// are untouched.
type BoundHeldUntil struct {
	// Site is the backup node name; empty means BackupNode.
	Site string
	// Until is the offset from scenario start up to which the bound must
	// have held.
	Until time.Duration
}

func (c BoundHeldUntil) site() string {
	if c.Site == "" {
		return BackupNode
	}
	return c.Site
}

func (c BoundHeldUntil) key(object string) string {
	return fmt.Sprintf("%s/%s@%v", c.site(), object, c.Until)
}

// arm schedules the snapshot capture at the checkpoint instant.
func (c BoundHeldUntil) arm(h *Harness) {
	h.clk.Schedule(c.Until, func() {
		for _, spec := range h.sc.Objects {
			r, ok := h.mon.SnapshotExternal(c.site(), spec.Name, h.clk.Now())
			h.checkpoints[c.key(spec.Name)] = checkpoint{report: r, ok: ok}
		}
	})
}

// Name implements Checker.
func (c BoundHeldUntil) Name() string { return fmt.Sprintf("external-bound-until-%v", c.Until) }

// Check implements Checker.
func (c BoundHeldUntil) Check(h *Harness) error {
	for _, spec := range h.sc.Objects {
		ck, captured := h.checkpoints[c.key(spec.Name)]
		if !captured {
			return fmt.Errorf("checkpoint at +%v was never captured", c.Until)
		}
		if !ck.ok {
			return fmt.Errorf("no report for %s/%s", c.site(), spec.Name)
		}
		r := ck.report
		if r.Updates == 0 {
			return fmt.Errorf("%s/%s never applied an update", c.site(), spec.Name)
		}
		if !r.Consistent() {
			return fmt.Errorf("%s/%s: %v beyond δB=%v before +%v",
				c.site(), spec.Name, r.ViolationTime, r.Delta, c.Until)
		}
	}
	return nil
}

// InterBoundHeld asserts every registered inter-object constraint held
// at one backup site.
type InterBoundHeld struct {
	// Site is the backup node name; empty means BackupNode.
	Site string
}

// Name implements Checker.
func (InterBoundHeld) Name() string { return "inter-object-bound" }

// Check implements Checker.
func (c InterBoundHeld) Check(h *Harness) error {
	site := c.Site
	if site == "" {
		site = BackupNode
	}
	for _, ioc := range h.sc.InterObjects {
		r, ok := h.mon.InterObjectReport(site, ioc.I, ioc.J)
		if !ok {
			return fmt.Errorf("no report for %s/(%s,%s)", site, ioc.I, ioc.J)
		}
		if r.Checks == 0 {
			return fmt.Errorf("%s/(%s,%s) never evaluated", site, ioc.I, ioc.J)
		}
		if !r.Consistent() {
			return fmt.Errorf("%s/(%s,%s): %d violations, max distance %v > δ_ij=%v",
				site, ioc.I, ioc.J, r.Violations, r.MaxDistance, r.Delta)
		}
	}
	return nil
}

// Promotions asserts the exact number of backup-to-primary takeovers.
type Promotions struct {
	// Want is the expected count.
	Want int
}

// Name implements Checker.
func (c Promotions) Name() string { return fmt.Sprintf("promotions=%d", c.Want) }

// Check implements Checker.
func (c Promotions) Check(h *Harness) error {
	if h.promotions != c.Want {
		return fmt.Errorf("saw %d promotions, want %d", h.promotions, c.Want)
	}
	return nil
}

// EpochIs asserts the serving primary's final epoch — the epoch
// monotonicity capstone (streaming checks catch any intermediate
// regression; this pins the end state).
type EpochIs struct {
	// Want is the expected epoch.
	Want uint32
}

// Name implements Checker.
func (c EpochIs) Name() string { return fmt.Sprintf("epoch=%d", c.Want) }

// Check implements Checker.
func (c EpochIs) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	if e := h.active.Epoch(); e != c.Want {
		return fmt.Errorf("final epoch %d, want %d", e, c.Want)
	}
	return nil
}

// PromotedAfter asserts the first promotion happened at or after an
// offset from scenario start (e.g. not before a suppressed detector was
// resumed).
type PromotedAfter struct {
	// Offset is the earliest admissible promotion instant.
	Offset time.Duration
}

// Name implements Checker.
func (c PromotedAfter) Name() string { return fmt.Sprintf("promoted-after-%v", c.Offset) }

// Check implements Checker.
func (c PromotedAfter) Check(h *Harness) error {
	if len(h.promotedAt) == 0 {
		return fmt.Errorf("no promotion happened")
	}
	earliest := h.start.Add(c.Offset)
	if h.promotedAt[0].Before(earliest) {
		return fmt.Errorf("promoted at +%v, before +%v",
			h.promotedAt[0].Sub(h.start), c.Offset)
	}
	return nil
}

// ActiveServes asserts the serving primary is running and holds a value
// for every object — the liveness floor for post-failover scenarios
// where no backup remains to compare against.
type ActiveServes struct{}

// Name implements Checker.
func (ActiveServes) Name() string { return "active-serves" }

// Check implements Checker.
func (ActiveServes) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	for _, spec := range h.sc.Objects {
		if _, _, ok := h.active.Value(spec.Name); !ok {
			return fmt.Errorf("active primary on %s has no value for %q", h.activeNode, spec.Name)
		}
	}
	return nil
}

// NoSplitBrain asserts every running backup ended at the active
// primary's epoch. Together with the always-on streaming check (a backup
// must never apply state from a fenced epoch), it is the no-split-brain
// property of the epoch mechanism.
type NoSplitBrain struct{}

// Name implements Checker.
func (NoSplitBrain) Name() string { return "no-split-brain" }

// Check implements Checker.
func (NoSplitBrain) Check(h *Harness) error {
	if h.active == nil || !h.active.Running() {
		return fmt.Errorf("no running primary")
	}
	want := h.active.Epoch()
	for _, name := range h.order {
		n := h.nodes[name]
		if n.Backup == nil || !n.Backup.Running() {
			continue
		}
		if e := n.Backup.Epoch(); e != want {
			return fmt.Errorf("%s at epoch %d, active primary at %d", name, e, want)
		}
	}
	return nil
}

// Progress asserts every running backup applied at least a minimum
// number of updates, guarding scenarios against passing vacuously.
type Progress struct {
	// MinApplies is the floor per backup node; 0 means 1.
	MinApplies int
}

// Name implements Checker.
func (Progress) Name() string { return "progress" }

// Check implements Checker.
func (c Progress) Check(h *Harness) error {
	min := c.MinApplies
	if min == 0 {
		min = 1
	}
	for _, name := range h.order {
		n := h.nodes[name]
		if n.Backup == nil && n.Primary == nil {
			continue // crashed and never restarted
		}
		if name == h.activeNode {
			continue
		}
		if n.applies < min {
			return fmt.Errorf("%s applied %d updates, want at least %d", name, n.applies, min)
		}
	}
	return nil
}
