package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/failover"
	"rtpb/internal/gateway"
	"rtpb/internal/shard"
	"rtpb/internal/temporal"
)

// GatewayScenario is a deterministic fault-injection run against the
// full front-to-back stack: a sharded cluster fronted by a session/group
// gateway, with hundreds of churning sessions and a hotspot write burst
// that drives one shard's overload governor to shed. It checks the
// admission-aware backpressure contract end to end — the gateway must
// refuse new sessions and stop the shed shard's broadcast fan-in while
// never dropping a client write — and the blast-radius property: the
// quiet shard's subscribers keep their temporal bounds throughout.
type GatewayScenario struct {
	// Name and Description identify the scenario in listings.
	Name        string
	Description string
	// Seed drives the fabric's loss/jitter draws; defaults to 1.
	Seed int64
	// Sessions is the target concurrent session population; defaults
	// to 500.
	Sessions int
	// Groups is the subscription-group count; defaults to 2 (the hot
	// and quiet shards' groups).
	Groups int
	// Duration is the workload phase; defaults to 4s.
	Duration time.Duration
	// Settle is the post-workload drain; defaults to 400ms.
	Settle time.Duration
	// BroadcastPeriod is the gateway fan-out tick; defaults to 50ms.
	BroadcastPeriod time.Duration
	// SessionTTL is each session's lifetime before it disconnects (the
	// churn that lets the population decay under shed); defaults to 1s.
	SessionTTL time.Duration
	// BurstAt/BurstFor bound the hotspot write storm on shard 0;
	// defaults 800ms / 700ms.
	BurstAt  time.Duration
	BurstFor time.Duration
}

func (s *GatewayScenario) normalize() {
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Sessions <= 0 {
		s.Sessions = 500
	}
	if s.Groups <= 0 {
		s.Groups = 2
	}
	if s.Duration == 0 {
		s.Duration = 4 * time.Second
	}
	if s.Settle == 0 {
		s.Settle = 400 * time.Millisecond
	}
	if s.BroadcastPeriod == 0 {
		s.BroadcastPeriod = 50 * time.Millisecond
	}
	if s.SessionTTL == 0 {
		s.SessionTTL = time.Second
	}
	if s.BurstAt == 0 {
		s.BurstAt = 800 * time.Millisecond
	}
	if s.BurstFor == 0 {
		s.BurstFor = 700 * time.Millisecond
	}
}

// GatewayCatalogue returns the canned gateway scenarios.
func GatewayCatalogue() []GatewayScenario {
	return []GatewayScenario{
		{
			Name: "gateway-shed-recover",
			Description: "a hotspot write burst sheds one shard; the gateway refuses new sessions and " +
				"freezes that shard's broadcast fan-in, the quiet shard's bounds never waver, " +
				"and the session population degrades and recovers",
		},
	}
}

// FindGateway looks a gateway scenario up by name.
func FindGateway(name string) (GatewayScenario, bool) {
	for _, sc := range GatewayCatalogue() {
		if sc.Name == name {
			return sc, true
		}
	}
	return GatewayScenario{}, false
}

// chaosSink records per-session delivery for the scenario's streaming
// invariants: sequence monotonicity per object (coalescing must never
// deliver stale-after-fresh), with an injected backlog window on every
// tenth session during the burst so the slow path is actually exercised
// under chaos, deterministically.
type chaosSink struct {
	id        uint64
	clk       *clock.SimClock
	slowFrom  time.Time
	slowUntil time.Time
	lastSeq   map[string]uint64
	delivered int
	violation func(format string, args ...any)
}

func (k *chaosSink) Deliver(f gateway.Frame) error {
	now := k.clk.Now()
	if k.id%10 == 0 && now.After(k.slowFrom) && now.Before(k.slowUntil) {
		return errors.New("injected backlog")
	}
	if last, ok := k.lastSeq[f.Object]; ok && f.Seq <= last {
		k.violation("session %d: %q frame seq %d after %d (stale-after-fresh)",
			k.id, f.Object, f.Seq, last)
	}
	k.lastSeq[f.Object] = f.Seq
	k.delivered++
	return nil
}

func (k *chaosSink) Close() {}

// RunGateway executes a gateway scenario and evaluates its invariants.
// Deterministic like Run and RunShard: the same scenario and seed
// reproduce the Result — including the event log — byte for byte.
func RunGateway(sc GatewayScenario) (*Result, error) {
	sc.normalize()
	res := &Result{Scenario: sc.Name, Seed: sc.Seed}
	violationf := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		res.Violations = append(res.Violations, msg)
		res.Log = append(res.Log, "VIOLATION: "+msg)
	}

	// Two shards under an aggressive governor; client writes are costly
	// so the hotspot's burst is real CPU contention, and admission
	// control is off so the storm is admissible in the first place.
	c, err := shard.NewCluster(shard.Config{
		Shards: 2,
		Seed:   sc.Seed,
		Costs: core.CostModel{
			ClientOp:   2 * time.Millisecond,
			UpdateSend: 400 * time.Microsecond,
			PerByte:    2 * time.Nanosecond,
		},
		// Generous miss budget: heartbeat acks queue behind the burst's
		// CPU backlog, and overload must degrade service, not trigger a
		// failover (the Promotions invariant below).
		Detector: failover.DetectorConfig{
			Interval:  50 * time.Millisecond,
			Timeout:   30 * time.Millisecond,
			MaxMisses: 20,
		},
		Governor: core.GovernorConfig{
			Enable:           true,
			Interval:         10 * time.Millisecond,
			DemoteStaleness:  0.15,
			PromoteStaleness: 0.05,
			PromoteHold:      15,
		},
		DisableAdmissionControl: true,
	})
	if err != nil {
		return nil, err
	}
	defer c.Stop()
	clk := c.Clock()
	start := clk.Now()

	gw, err := gateway.New(gateway.Config{
		Clock:           clk,
		Backend:         gateway.ClusterBackend{Cluster: c},
		BroadcastPeriod: sc.BroadcastPeriod,
		OnEvent:         func(format string, args ...any) { c.Logf(format, args...) },
	})
	if err != nil {
		return nil, err
	}
	defer gw.Close()

	// Objects: a hot pair pinned to shard 0, a quiet pair on shard 1;
	// one group per shard so the blast radius is visible per group.
	spec := func(name string) core.ObjectSpec {
		return core.ObjectSpec{
			Name:         name,
			Size:         64,
			UpdatePeriod: 20 * time.Millisecond,
			Constraint: temporal.ExternalConstraint{
				DeltaP: 20 * time.Millisecond,
				DeltaB: 120 * time.Millisecond,
			},
		}
	}
	pin := func(name string, want int) error {
		idx, _, err := c.Place(spec(name))
		if err != nil {
			return fmt.Errorf("place %q: %w", name, err)
		}
		if idx != want {
			if err := c.Migrate(name, want); err != nil {
				return fmt.Errorf("migrate %q: %w", name, err)
			}
		}
		return nil
	}
	groupOf := map[string][]string{
		"hot":   {"hot0", "hot1"},
		"quiet": {"quiet0", "quiet1"},
	}
	for _, name := range groupOf["hot"] {
		if err := pin(name, 0); err != nil {
			return nil, err
		}
	}
	for _, name := range groupOf["quiet"] {
		if err := pin(name, 1); err != nil {
			return nil, err
		}
	}
	gw.Bind("hot", groupOf["hot"]...)
	gw.Bind("quiet", groupOf["quiet"]...)
	for _, names := range groupOf {
		for _, name := range names {
			c.WriteEvery(name, 20*time.Millisecond)
		}
	}

	// Session churn toward the target population: one connect attempt
	// per 2ms whenever below target, groups assigned round-robin, each
	// session living one TTL. Under shed the attempts are refused while
	// TTL expiries continue, so the population decays; after recovery
	// the same churn refills it.
	burstStart := start.Add(sc.BurstAt)
	burstEnd := burstStart.Add(sc.BurstFor)
	groups := []string{"hot", "quiet"}
	var connectAttempts, connectRejected int
	nextGroup := 0
	churn := clock.NewPeriodic(clk, 0, 2*time.Millisecond, func() {
		if gw.Stats().Sessions >= sc.Sessions {
			return
		}
		connectAttempts++
		sink := &chaosSink{
			clk:       clk,
			slowFrom:  burstStart,
			slowUntil: burstEnd,
			lastSeq:   make(map[string]uint64),
			violation: violationf,
		}
		s, err := gw.Connect(sink)
		if err != nil {
			connectRejected++
			return
		}
		sink.id = s.ID()
		if err := gw.Subscribe(s, groups[nextGroup%len(groups)]); err != nil {
			violationf("subscribe failed: %v", err)
		}
		nextGroup++
		clk.Schedule(sc.SessionTTL, s.Close)
	})
	defer churn.Stop()

	// The hotspot: an extra write storm on the hot objects, 2ms of CPU
	// each at a 2ms period per object — a sustained 2x overload on
	// shard 0 that shedding update transmissions cannot relieve, so the
	// governor must bottom out at shed and only the burst's end lets it
	// climb back.
	var burst []*clock.Periodic
	clk.Schedule(sc.BurstAt, func() {
		c.Logf("gateway-chaos: hotspot burst begins")
		for i, name := range groupOf["hot"] {
			name := name
			seq := i
			burst = append(burst, clock.NewPeriodic(clk, 0, 2*time.Millisecond, func() {
				seq += len(groupOf["hot"])
				_ = c.Write(name, []byte(fmt.Sprintf("burst-%d", seq)), nil)
			}))
		}
	})
	clk.Schedule(sc.BurstAt+sc.BurstFor, func() {
		for _, b := range burst {
			b.Stop()
		}
		c.Logf("gateway-chaos: hotspot burst ends")
	})

	// A write probe through the gateway itself: one write every 20ms to
	// a dedicated shard-0 object, proving the shed ladder never touches
	// the write path. The object stays out of the groups and the
	// convergence bookkeeping — it exists only to be written through the
	// front door while the shard sheds.
	if err := pin("gwprobe", 0); err != nil {
		return nil, err
	}
	var gwWrites, gwWritesDuringShed, gwWriteErrs, gwWriteDone int
	gwWriter := clock.NewPeriodic(clk, 0, 20*time.Millisecond, func() {
		gwWrites++
		if c.Health(0).Shedding() {
			gwWritesDuringShed++
		}
		if err := gw.Write("gwprobe", []byte(fmt.Sprintf("probe-%d", gwWrites)), func(_ time.Duration, err error) {
			gwWriteDone++
			if err != nil {
				gwWriteErrs++
			}
		}); err != nil {
			gwWriteErrs++
		}
	})
	defer gwWriter.Stop()

	// Probes: sample the session population and the shed shard's
	// broadcast fan-in at fixed virtual instants.
	type sample struct {
		at        time.Duration
		sessions  int
		mode      gateway.Mode
		shed      bool
		certReads uint64
		rejected  uint64
	}
	var samples []sample
	probe := clock.NewPeriodic(clk, 100*time.Millisecond, 100*time.Millisecond, func() {
		st := gw.Stats()
		s := sample{
			at:        clk.Now().Sub(start),
			sessions:  st.Sessions,
			mode:      gw.Mode(),
			shed:      c.Health(0).Shedding(),
			certReads: gw.CertReads(0),
			rejected:  st.Rejected,
		}
		samples = append(samples, s)
		if s.at%(500*time.Millisecond) == 0 {
			c.Logf("gateway-chaos: sessions=%d mode=%s shard0(shed=%v certReads=%d) rejected=%d",
				s.sessions, s.mode, s.shed, s.certReads, s.rejected)
		}
	})
	defer probe.Stop()

	c.RunFor(sc.Duration)
	c.StopWriters()
	c.Monitor().FinishAt(clk.Now())
	c.RunFor(sc.Settle)
	res.Log = append(res.Log, c.Log()...)
	res.Elapsed = clk.Now().Sub(start)

	// --- Invariants ---

	// The governor must actually have shed, the gateway must have
	// mirrored it (mode, refused sessions), and the shed shard's
	// broadcast fan-in must freeze across consecutive shed samples.
	shedSeen, rejectedDuringShed := false, false
	var minDuringShed, maxAfter int
	minDuringShed = sc.Sessions
	for i, s := range samples {
		if !s.shed {
			if s.at > sc.BurstAt+sc.BurstFor && s.sessions > maxAfter {
				maxAfter = s.sessions
			}
			continue
		}
		shedSeen = true
		if s.sessions < minDuringShed {
			minDuringShed = s.sessions
		}
		if s.mode != gateway.Shed {
			violationf("at +%v: shard 0 shedding but gateway mode %s", s.at, s.mode)
		}
		if i > 0 && samples[i-1].shed {
			if s.rejected > samples[i-1].rejected {
				rejectedDuringShed = true
			}
			if s.certReads != samples[i-1].certReads {
				violationf("at +%v: shed shard's broadcast fan-in grew (%d -> %d)",
					s.at, samples[i-1].certReads, s.certReads)
			}
		}
	}
	if !shedSeen {
		violationf("shard 0 never shed under the hotspot burst")
	}
	if shedSeen && !rejectedDuringShed {
		violationf("no session was refused while shedding")
	}

	// The population must have degraded under shed and recovered after:
	// churn refills at 500/s once admissions resume.
	if shedSeen && minDuringShed > sc.Sessions*8/10 {
		violationf("session population never degraded under shed (min %d of %d)",
			minDuringShed, sc.Sessions)
	}
	if maxAfter < sc.Sessions*9/10 {
		violationf("session population did not recover after the burst (max %d of %d)",
			maxAfter, sc.Sessions)
	}
	if got := gw.Mode(); got != gateway.Normal {
		violationf("gateway mode at end = %s, want normal", got)
	}

	// Writes are never shed: every gateway write — including those
	// issued while shard 0 was shedding — was forwarded and completed
	// without error (the settle window drains the CPU backlog).
	gwWriter.Stop()
	if gwWriteErrs > 0 {
		violationf("%d gateway write(s) failed; the shed ladder must never touch writes", gwWriteErrs)
	}
	if shedSeen && gwWritesDuringShed == 0 {
		violationf("no gateway write was issued during the shed window (probe too sparse)")
	}
	if gwWriteDone < gwWrites*9/10 {
		violationf("only %d of %d gateway writes completed", gwWriteDone, gwWrites)
	}

	// Blast radius: the quiet shard's backup images kept their external
	// bounds the whole run, and were never suspended.
	quietSite := c.BackupSite(1)
	for _, name := range groupOf["quiet"] {
		rep, ok := c.Monitor().ExternalReport(quietSite, name)
		if !ok {
			violationf("no external report for %s/%s", quietSite, name)
			continue
		}
		if !rep.Consistent() {
			violationf("quiet shard's %q violated δB at %v (max staleness %v)",
				name, rep.ViolationTime, rep.MaxStaleness)
		}
		if c.Monitor().Suspended(quietSite, name) {
			violationf("quiet shard's %q had its bound suspended", name)
		}
	}

	// Convergence: every object — including the shed shard's — drains
	// to its last steady write once the storm ends.
	for _, names := range groupOf {
		for _, name := range names {
			got, _, ok := c.Read(name)
			want := c.LastWritten(name)
			if !ok || !bytes.Equal(got, want) {
				violationf("%q did not converge: primary holds %q, last write %q", name, got, want)
			}
		}
	}

	st := c.Statuses()[0]
	res.Promotions = st.Promotions
	res.FinalEpoch = st.Epoch
	if st.Promotions != 0 {
		violationf("overload must not trigger failover: shard 0 saw %d promotions", st.Promotions)
	}
	return res, nil
}
