package chaos

import (
	"strings"
	"testing"
)

// TestShardPrimaryCrash runs the sharded-cluster scenario and requires
// a clean pass: the single-pair probe rejects the set, the four-shard
// cluster admits it, the crashed group fails over, and no surviving
// group's bound wavers.
func TestShardPrimaryCrash(t *testing.T) {
	sc, ok := FindShard("shard-primary-crash")
	if !ok {
		t.Fatal("scenario missing from catalogue")
	}
	res, err := RunShard(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("violations:\n  %s\nlog:\n  %s",
			strings.Join(res.Violations, "\n  "), strings.Join(res.Log, "\n  "))
	}
	if res.Promotions != 1 || res.FinalEpoch < 2 {
		t.Fatalf("promotions=%d epoch=%d", res.Promotions, res.FinalEpoch)
	}
	// The admission log must show the single-pair rejection that makes
	// the capacity claim non-vacuous.
	found := false
	for _, line := range res.Log {
		if strings.Contains(line, "single pair rejects") {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("log does not record the single-pair rejection")
	}
}

// TestShardScenarioReplaysByteIdentical runs the scenario twice from
// its committed seed and requires identical logs.
func TestShardScenarioReplaysByteIdentical(t *testing.T) {
	sc, _ := FindShard("shard-primary-crash")
	a, err := RunShard(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShard(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Log) != len(b.Log) {
		t.Fatalf("log lengths differ: %d vs %d", len(a.Log), len(b.Log))
	}
	for i := range a.Log {
		if a.Log[i] != b.Log[i] {
			t.Fatalf("log line %d differs:\n%s\n%s", i, a.Log[i], b.Log[i])
		}
	}
	if a.Elapsed != b.Elapsed || a.Promotions != b.Promotions || a.FinalEpoch != b.FinalEpoch {
		t.Fatalf("results differ: %+v vs %+v", a, b)
	}
}
