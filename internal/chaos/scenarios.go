package chaos

import (
	"fmt"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/durable"
	"rtpb/internal/failover"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
)

// Catalogue returns the canned chaos scenarios. Every scenario is fully
// deterministic for its seed; the test suite runs each one and asserts
// zero violations, and cmd/rtpbench's "chaos" subcommand runs them
// standalone. Seeds are left at the default (normalize fills 1) so
// `-seed` can override them uniformly.
func Catalogue() []Scenario {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	return []Scenario{
		{
			Name:        "steady-state",
			Description: "no faults: the bounds, convergence, and epoch stability baseline",
			Invariants: []Checker{
				Converged{}, BoundHeld{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1}, Progress{MinApplies: 20},
			},
		},
		{
			Name:        "loss-burst",
			Description: "25% update loss for 500ms; gap recovery keeps the image inside δB",
			Detector:    failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 10},
			Events: []FaultEvent{
				{At: ms(400), Fault: Degrade{A: PrimaryNode, B: BackupNode,
					Link: netsim.LinkParams{Delay: ms(2), Jitter: ms(1), LossProb: 0.25}}},
				{At: ms(900), Fault: Heal{A: PrimaryNode, B: BackupNode}},
			},
			Invariants: []Checker{
				Converged{}, BoundHeld{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1},
			},
		},
		{
			Name:        "jitter-reorder",
			Description: "25ms jitter burst reorders updates; sequence fencing keeps versions monotone",
			Detector:    failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 12},
			Events: []FaultEvent{
				{At: ms(400), Fault: Degrade{A: PrimaryNode, B: BackupNode,
					Link: netsim.LinkParams{Delay: ms(2), Jitter: ms(25)}}},
				{At: ms(1200), Fault: Heal{A: PrimaryNode, B: BackupNode}},
			},
			Invariants: []Checker{
				Converged{}, BoundHeld{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1}, Progress{MinApplies: 20},
			},
		},
		{
			Name:        "duplication-storm",
			Description: "60% duplication for 1.2s; duplicate suppression keeps state exactly-once",
			Events: []FaultEvent{
				{At: ms(300), Fault: Degrade{A: PrimaryNode, B: BackupNode,
					Link: netsim.LinkParams{Delay: ms(2), Jitter: ms(1), DuplicateProb: 0.6}}},
				{At: ms(1500), Fault: Heal{A: PrimaryNode, B: BackupNode}},
			},
			Invariants: []Checker{
				Converged{}, BoundHeld{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1}, Progress{MinApplies: 20},
			},
		},
		{
			Name:        "primary-crash-failover",
			Description: "primary crashes at 800ms; the backup detects, promotes, and serves as epoch 2",
			Events: []FaultEvent{
				{At: ms(800), Fault: Crash{Node: PrimaryNode}},
			},
			Invariants: []Checker{
				Promotions{Want: 1}, EpochIs{Want: 2}, ActiveServes{},
				PromotedAfter{Offset: ms(800)}, BoundHeldUntil{Until: ms(800)},
			},
		},
		{
			Name:        "backup-crash-reintegrate",
			Description: "backup crashes at 500ms, restarts at 900ms; recruitment re-registers and state-transfers",
			Events: []FaultEvent{
				{At: ms(500), Fault: Crash{Node: BackupNode}},
				{At: ms(900), Fault: Restart{Node: BackupNode}},
			},
			Invariants: []Checker{
				Converged{}, NoSplitBrain{}, Promotions{Want: 0},
				EpochIs{Want: 1}, BoundHeldUntil{Until: ms(500)}, Progress{MinApplies: 20},
			},
		},
		{
			Name:        "crash-failover-rejoin",
			Description: "primary crashes under 10% loss; the backup promotes, and the fenced old primary rejoins via the directory and catches up over the lossy link",
			Duration:    4 * time.Second,
			Full:        true,
			Link:        netsim.LinkParams{Delay: ms(2), Jitter: ms(1), LossProb: 0.10},
			// The loss stays on through the drain, so the final write needs
			// several periodic-resend opportunities to land; the default
			// 400 ms settle is only two ~200 ms update periods, which leaves
			// Converged hostage to a couple of unlucky tail drops.
			Settle: ms(1200),
			Objects: []core.ObjectSpec{
				wideObject("pressure"), wideObject("flow"),
			},
			// Generous miss budget: at 10% loss per direction a heartbeat
			// round fails ~19% of the time, and a premature promotion is not
			// what this scenario measures.
			Detector: failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 8},
			Events: []FaultEvent{
				{At: ms(800), Fault: Crash{Node: PrimaryNode}},
				// Revive the old primary well after the takeover: it finds
				// itself fenced (the directory names its successor), demotes,
				// and joins as a backup through the chunked exchange.
				{At: ms(1600), Fault: Rejoin{Node: PrimaryNode}},
			},
			Invariants: []Checker{
				Promotions{Want: 1}, EpochIs{Want: 2}, NoSplitBrain{},
				RejoinCaughtUp{Node: PrimaryNode},
				Converged{}, ActiveServes{}, PromotedAfter{Offset: ms(800)},
			},
		},
		{
			Name:        "power-cycle-recover",
			Description: "full-cluster power failure mid-write under 10% loss; the disks are damaged while down (torn tail, bit flip), yet both nodes restart from their stores: the primary resumes fenced, the backup replays its tail and rejoins over only the gap",
			Durable:     true,
			Duration:    4 * time.Second,
			Link:        netsim.LinkParams{Delay: ms(2), Jitter: ms(1), LossProb: 0.10},
			// The loss stays on through the drain; give the final writes
			// room to land (same reasoning as crash-failover-rejoin).
			Settle: ms(1200),
			Objects: []core.ObjectSpec{
				wideObject("pressure"), wideObject("flow"),
			},
			// Generous miss budget for the restarted backup's detector
			// under 10% loss; detection is not what this scenario measures.
			Detector: failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 8},
			Events: []FaultEvent{
				// Power fails mid-write: both stores stop at whatever their
				// last synchronous append was.
				{At: ms(900), Fault: CrashCluster{}},
				// The outage is not clean: the primary's store loses the
				// tail of a write, the backup's store takes a bit flip.
				{At: ms(950), Fault: DiskFault{Node: PrimaryNode, Kind: durable.FaultTornTail}},
				{At: ms(1000), Fault: DiskFault{Node: BackupNode, Kind: durable.FaultCorruptRecord}},
				// The primary restarts first: the directory still names it,
				// so it resumes serving under a fenced epoch bump.
				{At: ms(1200), Fault: RestartFromDisk{Node: PrimaryNode}},
				// The backup restarts into a recorded successor: it replays
				// its local tail, then anti-entropy covers only the gap.
				{At: ms(1500), Fault: RestartFromDisk{Node: BackupNode}},
			},
			Invariants: []Checker{
				DiskRecovered{Node: PrimaryNode, MinObjects: 2, Source: "disk", Stopped: "torn-tail"},
				DiskRecovered{Node: BackupNode, MinObjects: 2, Source: "disk+gap"},
				RejoinCaughtUp{Node: BackupNode},
				Converged{}, ActiveServes{}, NoSplitBrain{},
				EpochIs{Want: 2}, Promotions{Want: 0},
			},
		},
		{
			Name:        "split-brain-fencing",
			Description: "asymmetric partition promotes the standby; the fenced zombie primary's writes must not reach replicated state",
			Standby:     true,
			Duration:    ms(2500),
			Events: []FaultEvent{
				// The standby stops hearing heartbeat acks, but the zombie
				// primary's updates still flow everywhere: the classic
				// asymmetric failure that elects a second primary while the
				// first is alive.
				{At: ms(600), Fault: PartitionOneWay{From: StandbyNode, To: PrimaryNode}},
				// After the takeover, only scripted writes hit the zombie so
				// the last word on each object is unambiguous.
				{At: ms(1400), Fault: StopWriters{}},
				{At: ms(1500), Fault: Write{Node: PrimaryNode, Object: "pressure", Value: "zombie-1"}},
				{At: ms(1600), Fault: Write{Node: PrimaryNode, Object: "pressure", Value: "zombie-2"}},
				{At: ms(1700), Fault: Write{Node: StandbyNode, Object: "pressure", Value: "epoch2-final"}},
			},
			Invariants: []Checker{
				Promotions{Want: 1}, EpochIs{Want: 2}, NoSplitBrain{},
				Converged{}, ActiveServes{}, PromotedAfter{Offset: ms(600)},
			},
		},
		{
			Name:        "heartbeat-suppression",
			Description: "a wedged detector misses a real crash; detection resumes with suppression lifted",
			Duration:    ms(2500),
			Events: []FaultEvent{
				{At: ms(400), Fault: Suppress{Node: BackupNode, On: true}},
				{At: ms(600), Fault: Crash{Node: PrimaryNode}},
				{At: ms(1500), Fault: Suppress{Node: BackupNode, On: false}},
			},
			Invariants: []Checker{
				Promotions{Want: 1}, EpochIs{Want: 2}, ActiveServes{},
				PromotedAfter{Offset: ms(1500)}, BoundHeldUntil{Until: ms(600)},
			},
		},
		{
			Name:        "partition-flap",
			Description: "three 65ms partition flaps: too short to kill the primary, long enough to lose updates",
			Duration:    ms(2400),
			Events: []FaultEvent{
				{At: ms(510), Fault: Partition{A: PrimaryNode, B: BackupNode}},
				{At: ms(575), Fault: Heal{A: PrimaryNode, B: BackupNode}},
				{At: ms(1010), Fault: Partition{A: PrimaryNode, B: BackupNode}},
				{At: ms(1075), Fault: Heal{A: PrimaryNode, B: BackupNode}},
				{At: ms(1510), Fault: Partition{A: PrimaryNode, B: BackupNode}},
				{At: ms(1575), Fault: Heal{A: PrimaryNode, B: BackupNode}},
			},
			Invariants: []Checker{
				Converged{}, BoundHeld{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1}, Progress{MinApplies: 20},
			},
		},
		{
			Name: "inter-object-skew",
			// "Skew" here is temporal distance between two object images at
			// the same site (|T_i − T_j| under Section 3's inter-object
			// constraint), not clock skew between nodes — the clock-fault
			// scenarios are clock-step-false-failover and
			// drift-erodes-bounds.
			Description: "related objects under jitter: the inter-object temporal-distance bound |T_i−T_j| ≤ δij holds at the backup (no clock faults here)",
			Objects: []core.ObjectSpec{
				standardNamed("pressure"),
				standardNamed("temperature"),
			},
			InterObjects: []temporal.InterObjectConstraint{
				{I: "pressure", J: "temperature", Delta: ms(200)},
			},
			Detector: failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 12},
			Events: []FaultEvent{
				{At: ms(500), Fault: Degrade{A: PrimaryNode, B: BackupNode,
					Link: netsim.LinkParams{Delay: ms(2), Jitter: ms(15)}}},
				{At: ms(1300), Fault: Heal{A: PrimaryNode, B: BackupNode}},
			},
			Invariants: []Checker{
				Converged{}, BoundHeld{}, InterBoundHeld{}, NoSplitBrain{},
				Promotions{Want: 0}, Progress{MinApplies: 20},
			},
		},
		{
			Name:        "multi-fault-storm",
			Description: "loss burst, standby crash/restart, primary crash with racing detectors, duplication aftershock",
			Standby:     true,
			Duration:    6 * time.Second,
			Detector:    failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 6},
			Full:        true,
			Events: []FaultEvent{
				{At: ms(400), Fault: Degrade{A: PrimaryNode, B: BackupNode,
					Link: netsim.LinkParams{Delay: ms(2), Jitter: ms(1), LossProb: 0.15}}},
				{At: ms(1000), Fault: Heal{A: PrimaryNode, B: BackupNode}},
				{At: ms(1500), Fault: Crash{Node: StandbyNode}},
				{At: ms(2200), Fault: Restart{Node: StandbyNode}},
				// Both surviving detectors race; name-service arbitration
				// must elect exactly one successor.
				{At: ms(3000), Fault: Crash{Node: PrimaryNode}},
				{At: ms(3800), Fault: Degrade{A: BackupNode, B: StandbyNode,
					Link: netsim.LinkParams{Delay: ms(2), Jitter: ms(1), DuplicateProb: 0.4}}},
				{At: ms(4500), Fault: Heal{A: BackupNode, B: StandbyNode}},
			},
			Invariants: []Checker{
				Promotions{Want: 1}, EpochIs{Want: 2}, NoSplitBrain{},
				Converged{}, ActiveServes{},
			},
		},
		{
			Name:        "overload-degrade-recover",
			Description: "a CPU hog starves update sends; the governor sheds load down the ladder and restores every object after the heal",
			Duration:    4 * time.Second,
			Full:        true,
			Objects: []core.ObjectSpec{
				wideObject("altitude"), wideObject("airspeed"), wideObject("heading"),
				wideObject("pressure"), wideObject("fuel"), wideObject("temperature"),
			},
			// Generous miss budget: heartbeat acks queue behind the hog's
			// bursts, and detection is not what this scenario measures.
			Detector: failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 20},
			// Expensive update transmissions give the hog something real to
			// contend with: the six objects' full-rate send demand (~15% of
			// the CPU) overwhelms the 10% the hog leaves, while the demand
			// that survives a full shed (~3%: client writes plus one
			// compressed object) fits with room to drain the backlog.
			Costs: core.CostModel{
				ClientOp:   200 * time.Microsecond,
				UpdateSend: 5 * time.Millisecond,
				PerByte:    2 * time.Nanosecond,
			},
			// This scenario exercises the per-update overload ladder, so
			// frame coalescing is pinned off: batching amortizes the fixed
			// send cost ~6x here, which would absorb the hog before the
			// governor ever saw contention (the batched path's win is
			// measured by `rtpbench wire`, not re-litigated here).
			FrameBatch:  1,
			WritePeriod: ms(80),
			Governor: core.GovernorConfig{
				Enable:           true,
				Interval:         ms(10),
				DemoteStaleness:  0.15,
				PromoteStaleness: 0.05,
				PromoteHold:      15,
			},
			Events: []FaultEvent{
				// 90% CPU theft for 1.5s, starting after a clean warmup.
				{At: ms(800), Fault: CPUHog{Node: PrimaryNode,
					Period: ms(10), Burn: ms(9), For: ms(1500)}},
			},
			Invariants: []Checker{
				// Mid-storm checkpoint: the ladder must actually have
				// engaged while the hog ran...
				GovernorDegradedAt{At: ms(2200), MinDegraded: 2, MinShed: 1},
				// ...and fully unwound by the end, with the temporal
				// bounds (suspended while shed, effective while
				// compressed) intact throughout.
				GovernorRecovered{MinDemotions: 3},
				Converged{}, BoundHeld{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1}, Progress{MinApplies: 20},
			},
		},
		{
			Name:        "loss-storm-backoff",
			Description: "35% loss for 1.2s; the backup's gap-recovery backoff keeps the request storm damped while full-state updates repair the image",
			Duration:    ms(2600),
			Full:        true,
			Objects: []core.ObjectSpec{
				// The fast object's transmission period sits under the
				// retransmit backoff window, so gap-flagged arrivals keep
				// landing inside it: the shape that made unthrottled builds
				// storm. The wide objects ride along at the baseline rate.
				fastObject("gyro"),
				wideObject("pressure"), wideObject("temperature"),
			},
			Detector: failover.DetectorConfig{
				Interval: ms(50), Timeout: ms(30), MaxMisses: 10, Adaptive: true,
			},
			Events: []FaultEvent{
				{At: ms(600), Fault: Degrade{A: PrimaryNode, B: BackupNode,
					Link: netsim.LinkParams{Delay: ms(2), Jitter: ms(1), LossProb: 0.35}}},
				{At: ms(1800), Fault: Heal{A: PrimaryNode, B: BackupNode}},
			},
			Invariants: []Checker{
				RetransmitDamped{MaxRequests: 40, MinSuppressed: 5},
				// The gyro's δB is too tight to survive a 35% loss storm by
				// design; the bound is checkpointed before the storm and the
				// image must converge after the heal.
				BoundHeldUntil{Until: ms(600)},
				Converged{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1}, Progress{MinApplies: 20},
			},
		},
		ClockStepScenario(false),
		{
			Name:        "drift-erodes-bounds",
			Description: "backup oscillator drifts with sync probes suppressed: the clock-sync error bound θ ages past the fast object's slack, the monitor suspends judgement (unverifiable, never a silent verdict), and verification resumes when probes return",
			Duration:    5 * time.Second,
			ClockSync:   true,
			// The estimators assume a 2% worst-case relative drift when aging
			// θ between probes; the injected fault drifts at 0.2%, so the
			// aged bound honestly dominates the real error (HonestBounds
			// checks this against ground truth throughout) while eroding
			// fast enough for the spell to fit the run.
			ClockSyncMaxDriftPPM: 20000,
			// One fast object (δB=60ms): θ starts near the 2ms one-way delay
			// and grows 20ms per suppressed second, entering the gray band
			// around t≈2.4s and consuming the whole bound around t≈3.4s.
			Objects: []core.ObjectSpec{fastObject("gyro")},
			// Heartbeats carry the sync probes, so suppressing the detector
			// is exactly what starves the estimator; the miss budget only
			// matters for the healthy phases.
			Detector: failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 10},
			Events: []FaultEvent{
				{At: ms(200), Fault: ClockDrift{Node: BackupNode, PPM: 2000}},
				{At: ms(500), Fault: Suppress{Node: BackupNode, On: true}},
				{At: ms(4500), Fault: Suppress{Node: BackupNode, On: false}},
			},
			Invariants: []Checker{
				// Never a provable violation: staleness stays ~20ms, far from
				// δB+θ, and the offset-corrected stamps keep it honest.
				BoundHeld{},
				// The erosion must actually surface as suspended judgement...
				UnverifiableWindow{Site: BackupNode, MinTime: ms(800)},
				// ...and the estimator's claimed θ must dominate its true
				// error the whole way.
				HonestBounds{Site: BackupNode},
				Converged{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1}, Progress{MinApplies: 20},
			},
		},
		{
			Name:        "observer-chain-partition",
			Description: "a two-hop observer chain loses its inner link: the cut observer's certificates age honestly (age ≥ true staleness, never silently fresh beyond δB), the chain re-converges after the heal, and no observer ever enters a quorum or gets promoted",
			Duration:    3 * time.Second,
			ClockSync:   true,
			Detector:    failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 10},
			Observers: []ObserverSpec{
				{Name: ObserverANode, Upstream: PrimaryNode},
				{Name: ObserverBNode, Upstream: ObserverANode},
			},
			Events: []FaultEvent{
				// Cut the chain's inner hop: observer-b keeps serving reads
				// but its stream source is gone. The primary, backup, and
				// observer-a never notice — exactly the failure the
				// certificate must surface on its own.
				{At: ms(800), Fault: Partition{A: ObserverANode, B: ObserverBNode}},
				{At: ms(2000), Fault: Heal{A: ObserverANode, B: ObserverBNode}},
			},
			Invariants: []Checker{
				// During the cut, every certificate observer-b serves must
				// carry the truth: age+θ dominates the real staleness, and
				// once the image is truly past δB the certificate must have
				// stopped claiming Fresh (at 40ms writes and δB=250ms the
				// window yields dozens of provably-stale samples).
				ObserverHonestCerts{Node: ObserverBNode, From: ms(900), To: ms(2000), MinStale: 10},
				// After the heal — while the writers still run — the relayed
				// stream plus downstream gap recovery must bring observer-b
				// back under its bound: certificates go Fresh again.
				ObserverHonestCerts{Node: ObserverBNode, From: ms(2400), To: ms(3000), MinFresh: 5},
				ObserverExcluded{SyncedPeers: 1},
				ObserverConverged{},
				Converged{}, BoundHeld{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1}, Progress{MinApplies: 20},
			},
		},
		{
			Name:        "endurance-soak",
			Description: "20s of persistent mild loss, duplication, and jitter: bounds hold the whole way",
			Duration:    20 * time.Second,
			Detector:    failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 10},
			Full:        true,
			Events: []FaultEvent{
				{At: ms(200), Fault: Degrade{A: PrimaryNode, B: BackupNode,
					Link: netsim.LinkParams{Delay: ms(2), Jitter: ms(5), LossProb: 0.05, DuplicateProb: 0.05}}},
			},
			Invariants: []Checker{
				Converged{}, BoundHeld{}, NoSplitBrain{},
				Promotions{Want: 0}, EpochIs{Want: 1}, Progress{MinApplies: 150},
			},
		},
	}
}

// ClockStepScenario returns the clock-step false-failover scenario: a
// tolerable 300ms ack outage during which the backup's wall clock steps
// forward one second — an NTP step landing at the worst moment. The
// hardened detector (wallClockElapsed=false, the catalogue arm) measures
// silence on the monotonic timebase and rides the outage out; the
// ablation arm (wallClockElapsed=true, pinned by a regression test)
// differences wall-clock readings, conflates the step with silence, and
// kills a live primary. Clock sync stays off: the scenario isolates the
// detector's timebase, and the stepped backup's applied stamps are
// knowingly wrong afterwards (hence the bound checkpoint at the
// partition rather than a full-run bound).
func ClockStepScenario(wallClockElapsed bool) Scenario {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	sc := Scenario{
		Name:        "clock-step-false-failover",
		Description: "a +1s wall-clock step on the backup during a tolerable 300ms ack outage: the monotonic-timebase detector must not manufacture a failover",
		Duration:    ms(2500),
		Detector: failover.DetectorConfig{
			Interval:           ms(50),
			Timeout:            ms(30),
			MaxMisses:          3,
			Adaptive:           true,
			SuspicionThreshold: 50,
			MaxSilence:         ms(500),
			WallClockElapsed:   wallClockElapsed,
		},
		Events: []FaultEvent{
			// Acks vanish (updates keep flowing out of the primary and
			// dying on the cut direction): a 300ms outage, well inside
			// MaxSilence and below the suspicion threshold.
			{At: ms(1000), Fault: PartitionOneWay{From: PrimaryNode, To: BackupNode}},
			// Mid-outage, the backup's clock steps forward one second.
			{At: ms(1100), Fault: ClockStep{Node: BackupNode, Delta: time.Second}},
			{At: ms(1300), Fault: Heal{A: PrimaryNode, B: BackupNode}},
		},
		Invariants: []Checker{
			Promotions{Want: 0}, EpochIs{Want: 1}, NoSplitBrain{},
			Converged{}, BoundHeldUntil{Until: ms(1000)}, Progress{MinApplies: 20},
		},
	}
	if wallClockElapsed {
		sc.Name = "clock-step-false-failover-ablation"
		sc.Description = "control arm: the wall-clock-elapsed detector conflates the +1s step with silence and kills the live primary"
		sc.Invariants = []Checker{
			Promotions{Want: 1}, EpochIs{Want: 2}, NoSplitBrain{},
			ActiveServes{}, PromotedAfter{Offset: ms(1100)},
		}
	}
	return sc
}

// Find returns the catalogue scenario with the given name.
func Find(name string) (Scenario, bool) {
	for _, sc := range Catalogue() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// RejoinBench returns the crash-failover-rejoin scenario with the link
// loss overridden — the configuration rtpbench sweeps to measure the
// rejoined replica's catch-up time versus loss.
func RejoinBench(loss float64) Scenario {
	sc, _ := Find("crash-failover-rejoin")
	sc.Link.LossProb = loss
	return sc
}

// RejoinSweep returns the disk-vs-network rejoin measurement scenario:
// a mostly-quiescent wide state (4 hot objects under continuous writes,
// 96 cold objects written exactly once) whose primary crashes and later
// rejoins the promoted successor. In network mode the rejoin is a plain
// directory-driven join, so the anti-entropy exchange streams all ~100
// objects chunk by chunk over the lossy link; in disk mode the node
// restarts from its durable store first, the join digest advertises the
// recovered values, and the exchange covers only the handful of hot
// objects written during the downtime — catch-up cost proportional to
// downtime, not state size. Result.RejoinTransfer is the compared
// quantity (JoinAccept to exchange completion; directory polling and
// failover latency are identical across modes and excluded).
func RejoinSweep(loss float64, disk bool) Scenario {
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	const hot, cold = 4, 96
	objects := make([]core.ObjectSpec, 0, hot+cold)
	for i := 0; i < hot; i++ {
		objects = append(objects, wideObject(fmt.Sprintf("hot-%02d", i)))
	}
	for i := 0; i < cold; i++ {
		objects = append(objects, coldObject(fmt.Sprintf("cold-%02d", i)))
	}
	mode := "network"
	revive := Fault(Rejoin{Node: PrimaryNode})
	if disk {
		mode = "disk"
		revive = RestartFromDisk{Node: PrimaryNode}
	}
	return Scenario{
		Name: fmt.Sprintf("rejoin-sweep-%s-loss-%d", mode, int(loss*100+0.5)),
		Description: fmt.Sprintf(
			"wide quiescent state, %s-mode rejoin at %.0f%% loss: transfer cost of the crashed primary's return",
			mode, loss*100),
		Durable:    disk,
		HotObjects: hot,
		Duration:   8 * time.Second,
		Settle:     ms(1200),
		Link:       netsim.LinkParams{Delay: ms(2), Jitter: ms(1), LossProb: loss},
		Objects:    objects,
		// Generous miss budget: the crash itself stops every ack, so
		// detection stays prompt; the budget only suppresses false
		// positives under loss.
		Detector: failover.DetectorConfig{Interval: ms(50), Timeout: ms(30), MaxMisses: 8},
		Events: []FaultEvent{
			// Crash well after the cold writes have replicated; the backup
			// promotes on detection (~400ms later) and keeps serving the
			// hot set.
			{At: ms(1500), Fault: Crash{Node: PrimaryNode}},
			// Revive well after the promotion has landed in the directory,
			// so both modes find the successor on their first poll.
			{At: ms(2500), Fault: revive},
		},
		Invariants: []Checker{
			Promotions{Want: 1}, EpochIs{Want: 2}, NoSplitBrain{},
			RejoinSynced{Node: PrimaryNode}, ActiveServes{},
		},
	}
}

// standardNamed is StandardObject with a different name, for multi-object
// scenarios.
func standardNamed(name string) core.ObjectSpec {
	spec := StandardObject()
	spec.Name = name
	return spec
}

// wideObject is standardNamed with a roomier backup bound (δB=450ms),
// the shape used by overload and loss-storm scenarios where staleness is
// expected to grow legitimately before the resilience layer reacts.
func wideObject(name string) core.ObjectSpec {
	spec := standardNamed(name)
	spec.Constraint.DeltaB = 450 * time.Millisecond
	return spec
}

// coldObject is a quiescent wide-state object: written once early in
// the run and never again, with a long period and loose bounds so ~a
// hundred of them stay admissible beside the hot set. Cold objects are
// what make state size diverge from downtime — the axis the disk-fast
// rejoin sweep measures.
func coldObject(name string) core.ObjectSpec {
	return core.ObjectSpec{
		Name:         name,
		Size:         64,
		UpdatePeriod: 200 * time.Millisecond,
		Constraint: temporal.ExternalConstraint{
			DeltaP: 250 * time.Millisecond,
			DeltaB: 650 * time.Millisecond,
		},
	}
}

// fastObject is a high-rate object with tight bounds: its admitted
// transmission period (~17.5ms) is shorter than the retransmit backoff
// base window, so under burst loss successive gap-flagged arrivals land
// inside the throttle — the storm shape the backoff exists to damp.
func fastObject(name string) core.ObjectSpec {
	spec := standardNamed(name)
	spec.UpdatePeriod = 10 * time.Millisecond
	spec.Constraint.DeltaP = 20 * time.Millisecond
	spec.Constraint.DeltaB = 60 * time.Millisecond
	return spec
}
