package chaos

import (
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/cpu"
	"rtpb/internal/durable"
	"rtpb/internal/netsim"
)

// Degrade sets both directions between two nodes to the given link
// parameters — loss bursts, jitter spikes, duplication storms.
type Degrade struct {
	// A and B name the nodes.
	A, B string
	// Link is the degraded quality applied in both directions.
	Link netsim.LinkParams
}

// String implements Fault.
func (f Degrade) String() string {
	return fmt.Sprintf("degrade %s<->%s loss=%.2f dup=%.2f delay=%v jitter=%v",
		f.A, f.B, f.Link.LossProb, f.Link.DuplicateProb, f.Link.Delay, f.Link.Jitter)
}

func (f Degrade) apply(h *Harness) {
	if err := h.net.SetLinkBoth(f.A, f.B, f.Link); err != nil {
		h.violationf("degrade %s<->%s: %v", f.A, f.B, err)
	}
}

// Partition cuts both directions between two nodes.
type Partition struct {
	// A and B name the nodes.
	A, B string
}

// String implements Fault.
func (f Partition) String() string { return fmt.Sprintf("partition %s<->%s", f.A, f.B) }

func (f Partition) apply(h *Harness) { h.net.Partition(f.A, f.B) }

// PartitionOneWay cuts only the From→To direction, the asymmetric
// failure mode (data flows, acknowledgements vanish).
type PartitionOneWay struct {
	// From and To name the cut direction.
	From, To string
}

// String implements Fault.
func (f PartitionOneWay) String() string { return fmt.Sprintf("partition %s->%s", f.From, f.To) }

func (f PartitionOneWay) apply(h *Harness) { h.net.PartitionOneWay(f.From, f.To) }

// Heal removes cuts and explicit link degradation between two nodes,
// restoring the scenario's default link.
type Heal struct {
	// A and B name the nodes.
	A, B string
}

// String implements Fault.
func (f Heal) String() string { return fmt.Sprintf("heal %s<->%s", f.A, f.B) }

func (f Heal) apply(h *Harness) { h.net.Heal(f.A, f.B) }

// Crash kills a node: its endpoint goes down, its replica stops, its
// detector stops. A live primary elsewhere is informed (the harness
// stands in for the primary-side failure detector so crash scenarios
// stay deterministic).
type Crash struct {
	// Node names the victim.
	Node string
}

// String implements Fault.
func (f Crash) String() string { return fmt.Sprintf("crash %s", f.Node) }

func (f Crash) apply(h *Harness) { h.crash(f.Node) }

// Restart revives a crashed node as a backup of the current primary: the
// endpoint comes back up, a fresh core.Backup binds the node's port, a
// new detector starts, and the primary re-integrates it with a state
// transfer (Section 4.4's recruitment path).
type Restart struct {
	// Node names the node to revive.
	Node string
}

// String implements Fault.
func (f Restart) String() string { return fmt.Sprintf("restart %s as backup", f.Node) }

func (f Restart) apply(h *Harness) { h.restartAsBackup(f.Node) }

// Rejoin revives a crashed node through the repair subsystem's rejoin
// protocol: the endpoint comes back up and a repair.Rejoiner polls the
// directory, waits out the node's own stale claim if it was the fenced
// old primary, and joins the recorded successor entirely over the wire
// (JoinRequest, digest, chunk exchange). No harness-side recruitment —
// the difference from Restart, which re-attaches the peer directly.
type Rejoin struct {
	// Node names the node to revive.
	Node string
}

// String implements Fault.
func (f Rejoin) String() string { return fmt.Sprintf("rejoin %s via the directory", f.Node) }

func (f Rejoin) apply(h *Harness) { h.rejoin(f.Node) }

// Suppress pauses (On=true) or resumes (On=false) a backup node's
// failure detector, modelling a wedged monitoring task that misses a
// real crash.
type Suppress struct {
	// Node names the backup whose detector is paused.
	Node string
	// On selects suppression (true) or resumption (false).
	On bool
}

// String implements Fault.
func (f Suppress) String() string {
	if f.On {
		return fmt.Sprintf("suppress detector on %s", f.Node)
	}
	return fmt.Sprintf("resume detector on %s", f.Node)
}

func (f Suppress) apply(h *Harness) {
	n := h.nodes[f.Node]
	if n == nil || n.Det == nil {
		h.violationf("suppress: node %q has no detector", f.Node)
		return
	}
	n.Det.Suppress(f.On)
}

// Write performs one scripted client write on a specific node's primary
// (scenarios use it to drive a zombie primary that the automatic workload
// has abandoned).
type Write struct {
	// Node names the node whose primary services the write.
	Node string
	// Object and Value are the write.
	Object, Value string
}

// String implements Fault.
func (f Write) String() string { return fmt.Sprintf("write %s=%q at %s", f.Object, f.Value, f.Node) }

func (f Write) apply(h *Harness) {
	n := h.nodes[f.Node]
	if n == nil || n.Primary == nil || !n.Primary.Running() {
		h.logf("write to %s dropped: no running primary", f.Node)
		return
	}
	n.Primary.ClientWrite(f.Object, []byte(f.Value), nil)
}

// CPUHog steals a node's processor with periodic high-priority bursts
// for a fixed window: every Period, a burst of Burn CPU time is submitted
// at the priority class above update transmissions, starving the
// decoupled send path exactly like a runaway co-located task. The hog is
// the overload stimulus for governor scenarios — Burn/Period is the
// stolen CPU fraction.
type CPUHog struct {
	// Node names the victim (it must currently run a primary).
	Node string
	// Period is the burst cadence.
	Period time.Duration
	// Burn is the high-priority CPU time consumed per burst.
	Burn time.Duration
	// For is the hog window; the hog stops itself after this much
	// virtual time.
	For time.Duration
}

// String implements Fault.
func (f CPUHog) String() string {
	return fmt.Sprintf("cpu-hog on %s: %v per %v for %v (%.0f%% steal)",
		f.Node, f.Burn, f.Period, f.For, 100*float64(f.Burn)/float64(f.Period))
}

func (f CPUHog) apply(h *Harness) {
	n := h.nodes[f.Node]
	if n == nil || n.Primary == nil || !n.Primary.Running() {
		h.violationf("cpu-hog: node %q runs no primary", f.Node)
		return
	}
	proc := n.Primary.CPU()
	task := clock.NewPeriodic(h.clk, 0, f.Period, func() {
		proc.Submit(cpu.High, f.Burn, func() {})
	})
	h.hogs = append(h.hogs, task)
	h.clk.Schedule(f.For, task.Stop)
}

// nodeClock resolves a clock fault's victim, reporting a violation for
// an unknown node.
func (h *Harness) nodeClock(name, fault string) *clock.SkewedClock {
	n := h.nodes[name]
	if n == nil {
		h.violationf("%s: unknown node %q", fault, name)
		return nil
	}
	return n.Clk
}

// ClockSkew sets a node's wall-clock offset from true time — the standing
// miscalibration a machine boots with. Timers keep their true firing
// points; only the clock's readings (and every timestamp derived from
// them) move.
type ClockSkew struct {
	// Node names the victim.
	Node string
	// Offset is the reading displacement (positive = fast clock).
	Offset time.Duration
}

// String implements Fault.
func (f ClockSkew) String() string { return fmt.Sprintf("clock on %s skewed %v", f.Node, f.Offset) }

func (f ClockSkew) apply(h *Harness) {
	if c := h.nodeClock(f.Node, "clock-skew"); c != nil {
		c.SetOffset(f.Offset)
	}
}

// ClockDrift sets a node's oscillator error in parts per million: the
// clock's readings, monotonic reckoning, and timer durations all run fast
// (positive) or slow (negative) by the given rate from injection onward.
type ClockDrift struct {
	// Node names the victim.
	Node string
	// PPM is the rate error in parts per million (10000 = +1%).
	PPM float64
}

// String implements Fault.
func (f ClockDrift) String() string {
	return fmt.Sprintf("clock on %s drifts %+.0fppm", f.Node, f.PPM)
}

func (f ClockDrift) apply(h *Harness) {
	if c := h.nodeClock(f.Node, "clock-drift"); c != nil {
		c.SetDrift(f.PPM)
	}
}

// ClockStep jumps a node's wall clock by a delta — an NTP step, a manual
// reset, a VM migration. Forward steps appear instantly; a backward step
// latches the reading (the clock parks until true time catches up, the
// behaviour of a monotonic-conditioned system clock), so time never runs
// backwards for the node's software either way.
type ClockStep struct {
	// Node names the victim.
	Node string
	// Delta is the jump (negative steps park the clock at its latch).
	Delta time.Duration
}

// String implements Fault.
func (f ClockStep) String() string { return fmt.Sprintf("clock on %s steps %+v", f.Node, f.Delta) }

func (f ClockStep) apply(h *Harness) {
	if c := h.nodeClock(f.Node, "clock-step"); c != nil {
		c.Step(f.Delta)
	}
}

// CrashCluster kills every node still up, in node order — the
// full-cluster power failure. Recovery is then a pure function of what
// reached the durable stores (plus whatever DiskFault corrupts before
// the restart).
type CrashCluster struct{}

// String implements Fault.
func (CrashCluster) String() string { return "crash the whole cluster" }

func (CrashCluster) apply(h *Harness) {
	for _, name := range h.order {
		n := h.nodes[name]
		if n.Primary == nil && n.Backup == nil {
			continue
		}
		h.crash(name)
	}
}

// DiskFault corrupts a crashed node's durable store with one of
// internal/durable's injectable failure modes — torn tail, short fsync,
// bit-flipped record, missing segment, torn snapshot. The node must be
// down (a live store holds the newest segment open); the injected
// damage is deterministic for the store's contents, so runs replay
// byte-identically.
type DiskFault struct {
	// Node names the victim; its store must exist and be closed.
	Node string
	// Kind selects the failure mode.
	Kind durable.FaultKind
}

// String implements Fault.
func (f DiskFault) String() string { return fmt.Sprintf("disk fault %s on %s", f.Kind, f.Node) }

func (f DiskFault) apply(h *Harness) {
	n := h.nodes[f.Node]
	if n == nil || n.DurDir == "" {
		h.violationf("disk-fault: node %q has no durable store", f.Node)
		return
	}
	if n.Dur != nil {
		h.violationf("disk-fault: %s is still up; crash it first", f.Node)
		return
	}
	desc, err := durable.Inject(n.DurDir, f.Kind)
	if err != nil {
		h.violationf("disk-fault %s on %s: %v", f.Kind, f.Node, err)
		return
	}
	h.logf("%s disk: %s", f.Node, desc)
}

// RestartFromDisk revives a crashed node from its durable store: the
// on-disk image is recovered (tolerating injected corruption by falling
// back to the last good snapshot), and the node resumes as a fenced
// primary if the directory still names it, or rejoins the recorded
// successor as a backup after replaying its local tail — the disk-fast
// rejoin path, where anti-entropy covers only the downtime gap.
type RestartFromDisk struct {
	// Node names the node to revive.
	Node string
}

// String implements Fault.
func (f RestartFromDisk) String() string { return fmt.Sprintf("restart %s from disk", f.Node) }

func (f RestartFromDisk) apply(h *Harness) { h.restartFromDisk(f.Node) }

// StopWriters halts the automatic client workload (so a scenario can
// control exactly who writes last).
type StopWriters struct{}

// String implements Fault.
func (StopWriters) String() string { return "stop client writers" }

func (StopWriters) apply(h *Harness) { h.stopWriters() }
