package chaos

import (
	"strings"
	"testing"
)

// TestRejoinSweepDiskBeatsNetwork pins the disk-fast rejoin property the
// rtpbench sweep quantifies: with a wide, mostly-quiescent state and a
// lossy link, a replica that restarts from its durable store and
// anti-entropies only the gap completes its transfer strictly faster
// than one that streams the whole state over the wire. The exact ratio
// is reported (and gated at 10x for >=10% loss) by `rtpbench rejoin`;
// the test only asserts the ordering so it stays robust to protocol
// retiming.
func TestRejoinSweepDiskBeatsNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("rejoin sweep is full-mode only")
	}
	run := func(disk bool) *Result {
		sc := RejoinSweep(0.10, disk)
		if *seedFlag != 0 {
			sc.Seed = *seedFlag
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("scenario %q: %v", sc.Name, err)
		}
		if res.Failed() {
			t.Fatalf("scenario %q seed %d: %d violation(s):\n  %s",
				res.Scenario, res.Seed, len(res.Violations), strings.Join(res.Violations, "\n  "))
		}
		if res.RejoinTransfer == 0 {
			t.Fatalf("scenario %q: no rejoin transfer was measured", res.Scenario)
		}
		return res
	}
	network := run(false)
	disk := run(true)
	if network.RejoinSource != "network" {
		t.Errorf("network-mode rejoin sourced from %q, want %q", network.RejoinSource, "network")
	}
	if disk.RejoinSource != "disk+gap" {
		t.Errorf("disk-mode rejoin sourced from %q, want %q", disk.RejoinSource, "disk+gap")
	}
	if disk.RestoredObjects == 0 {
		t.Error("disk-mode rejoin restored no objects from the durable store")
	}
	if disk.RejoinTransfer >= network.RejoinTransfer {
		t.Errorf("disk-fast rejoin transferred in %v, network rejoin in %v: disk should be strictly faster",
			disk.RejoinTransfer, network.RejoinTransfer)
	}
	t.Logf("rejoin transfer at 10%% loss: network %v, disk %v (%.1fx)",
		network.RejoinTransfer, disk.RejoinTransfer,
		float64(network.RejoinTransfer)/float64(disk.RejoinTransfer))
}
