package chaos

import (
	"strings"
	"testing"
)

// TestGatewayCatalogue runs every canned gateway scenario through the
// full stack: cluster, governor, and front-tier session churn.
func TestGatewayCatalogue(t *testing.T) {
	for _, sc := range GatewayCatalogue() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if *seedFlag != 0 {
				sc.Seed = *seedFlag
			}
			res, err := RunGateway(sc)
			if err != nil {
				t.Fatalf("scenario %q: %v", sc.Name, err)
			}
			if *verbose {
				t.Logf("event log:\n%s", strings.Join(res.Log, "\n"))
			}
			if res.Failed() {
				t.Errorf("scenario %q seed %d: %d violation(s):\n  %s\nevent log:\n%s",
					res.Scenario, res.Seed, len(res.Violations),
					strings.Join(res.Violations, "\n  "),
					strings.Join(res.Log, "\n"))
			}
		})
	}
}
