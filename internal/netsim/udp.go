package netsim

import (
	"fmt"
	"net"

	"rtpb/internal/clock"
)

// UDPTransport adapts a real UDP socket to xkernel.Transport, letting the
// cmd/ daemons run the identical protocol graph over a physical network.
// Inbound datagrams are posted onto the clock's executor so protocol code
// keeps the serial execution model it has under simulation.
type UDPTransport struct {
	clk  clock.Clock
	conn *net.UDPConn
	recv func(from string, payload []byte)
	done chan struct{}
}

// maxDatagram bounds receive buffers.
const maxDatagram = 64 * 1024

// NewUDP opens a UDP socket bound to listenAddr ("ip:port"; an empty or
// ":0" address picks an ephemeral port) and starts its reader goroutine.
func NewUDP(clk clock.Clock, listenAddr string) (*UDPTransport, error) {
	laddr, err := net.ResolveUDPAddr("udp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("netsim: resolve %q: %w", listenAddr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %q: %w", listenAddr, err)
	}
	t := &UDPTransport{clk: clk, conn: conn, done: make(chan struct{})}
	go t.readLoop()
	return t, nil
}

func (t *UDPTransport) readLoop() {
	defer close(t.done)
	buf := make([]byte, maxDatagram)
	for {
		n, addr, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		from := addr.String()
		t.clk.Post(func() {
			if t.recv != nil {
				t.recv(from, payload)
			}
		})
	}
}

// Send implements xkernel.Transport; to is "ip:port".
func (t *UDPTransport) Send(to string, payload []byte) error {
	raddr, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return fmt.Errorf("netsim: resolve %q: %w", to, err)
	}
	_, err = t.conn.WriteToUDP(payload, raddr)
	return err
}

// SetReceiver implements xkernel.Transport. Call before datagrams arrive;
// the receiver runs on the clock executor.
func (t *UDPTransport) SetReceiver(fn func(from string, payload []byte)) {
	t.recv = fn
}

// LocalAddr implements xkernel.Transport.
func (t *UDPTransport) LocalAddr() string { return t.conn.LocalAddr().String() }

// Close implements xkernel.Transport: it closes the socket and waits for
// the reader goroutine to exit.
func (t *UDPTransport) Close() error {
	err := t.conn.Close()
	<-t.done
	return err
}
