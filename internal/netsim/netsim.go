// Package netsim provides the datagram network substrate for RTPB. The
// paper's prototype ran over UDP on a campus LAN and its evaluation sweeps
// message-loss probability; Network reproduces that environment as a
// simulated fabric with a configurable per-link delay bound ℓ, jitter, and
// i.i.d. loss, driven deterministically by a clock.Clock. Endpoint
// implements xkernel.Transport, so the identical protocol graph runs over
// the simulation, and (via UDPTransport in this package) over real
// sockets.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"rtpb/internal/clock"
)

// LinkParams describes one directional link's quality of service.
type LinkParams struct {
	// Delay is the base propagation delay; with Jitter it bounds the
	// one-way latency by Delay+Jitter, the paper's ℓ.
	Delay time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter].
	Jitter time.Duration
	// LossProb is the probability an individual datagram is dropped.
	LossProb float64
	// DuplicateProb is the probability a datagram is delivered twice
	// (UDP permits duplication; the protocol must tolerate it).
	DuplicateProb float64
}

// Bound reports ℓ, the worst-case one-way delay of the link.
func (lp LinkParams) Bound() time.Duration { return lp.Delay + lp.Jitter }

// Validate checks the parameters.
func (lp LinkParams) Validate() error {
	switch {
	case lp.Delay < 0 || lp.Jitter < 0:
		return fmt.Errorf("netsim: negative delay/jitter %v/%v", lp.Delay, lp.Jitter)
	case lp.LossProb < 0 || lp.LossProb > 1:
		return fmt.Errorf("netsim: loss probability %v out of [0,1]", lp.LossProb)
	case lp.DuplicateProb < 0 || lp.DuplicateProb > 1:
		return fmt.Errorf("netsim: duplicate probability %v out of [0,1]", lp.DuplicateProb)
	}
	return nil
}

// Stats counts fabric-level events.
type Stats struct {
	// Sent counts datagrams handed to the fabric.
	Sent int
	// Delivered counts datagrams handed to a receiver (duplicates count).
	Delivered int
	// DroppedLoss counts datagrams dropped by link loss.
	DroppedLoss int
	// DroppedPartition counts datagrams dropped by a partition cut.
	DroppedPartition int
	// DroppedDown counts datagrams dropped because an endpoint was down.
	DroppedDown int
	// DroppedNoReceiver counts datagrams to hosts with no receiver set.
	DroppedNoReceiver int
}

// Network is a simulated datagram fabric.
type Network struct {
	clk         clock.Clock
	rng         *rand.Rand
	endpoints   map[string]*Endpoint
	links       map[[2]string]LinkParams
	cuts        map[[2]string]bool
	defaultLink LinkParams
	stats       Stats
}

// ErrDuplicateHost is returned when a host name is registered twice.
var ErrDuplicateHost = errors.New("netsim: duplicate host")

// New creates a fabric driven by clk. The seed makes loss and jitter
// deterministic for a given experiment configuration.
func New(clk clock.Clock, seed int64) *Network {
	return &Network{
		clk:       clk,
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: make(map[string]*Endpoint),
		links:     make(map[[2]string]LinkParams),
		cuts:      make(map[[2]string]bool),
	}
}

// SetDefaultLink sets the parameters used for host pairs with no explicit
// link configuration.
func (n *Network) SetDefaultLink(lp LinkParams) error {
	if err := lp.Validate(); err != nil {
		return err
	}
	n.defaultLink = lp
	return nil
}

// SetLink configures the directional link from one host to another.
func (n *Network) SetLink(from, to string, lp LinkParams) error {
	if err := lp.Validate(); err != nil {
		return err
	}
	n.links[[2]string{from, to}] = lp
	return nil
}

// SetLinkBoth configures both directions between two hosts at once, the
// common case for fault injection (a degraded cable degrades both ways).
func (n *Network) SetLinkBoth(a, b string, lp LinkParams) error {
	if err := n.SetLink(a, b, lp); err != nil {
		return err
	}
	return n.SetLink(b, a, lp)
}

// Link reports the effective parameters for the directional pair.
func (n *Network) Link(from, to string) LinkParams {
	if lp, ok := n.links[[2]string{from, to}]; ok {
		return lp
	}
	return n.defaultLink
}

// Endpoint registers a host on the fabric.
func (n *Network) Endpoint(host string) (*Endpoint, error) {
	if _, dup := n.endpoints[host]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateHost, host)
	}
	ep := &Endpoint{net: n, host: host}
	n.endpoints[host] = ep
	return ep, nil
}

// Partition makes both directions between two hosts drop every datagram.
// Cuts are tracked separately from link parameters, so faults can be
// injected and healed at runtime without disturbing explicit link
// configuration (loss, jitter, duplication survive the partition).
func (n *Network) Partition(a, b string) {
	n.PartitionOneWay(a, b)
	n.PartitionOneWay(b, a)
}

// PartitionOneWay cuts only the from→to direction, modelling an
// asymmetric failure (e.g. acknowledgements lost while data flows).
func (n *Network) PartitionOneWay(from, to string) {
	n.cuts[[2]string{from, to}] = true
}

// Heal removes the partition cut and any explicit link configuration
// between two hosts, restoring the default link in both directions.
func (n *Network) Heal(a, b string) {
	n.HealOneWay(a, b)
	n.HealOneWay(b, a)
}

// HealOneWay removes the cut and explicit configuration for one
// direction only.
func (n *Network) HealOneWay(from, to string) {
	delete(n.cuts, [2]string{from, to})
	delete(n.links, [2]string{from, to})
}

// Partitioned reports whether the from→to direction is currently cut.
func (n *Network) Partitioned(from, to string) bool {
	return n.cuts[[2]string{from, to}]
}

// Stats returns a snapshot of the fabric counters.
func (n *Network) Stats() Stats { return n.stats }

func (n *Network) send(from, to string, payload []byte) {
	n.stats.Sent++
	src, ok := n.endpoints[from]
	if !ok || src.down {
		n.stats.DroppedDown++
		return
	}
	if n.cuts[[2]string{from, to}] {
		n.stats.DroppedPartition++
		return
	}
	lp := n.Link(from, to)
	copies := 1
	if lp.LossProb > 0 && n.rng.Float64() < lp.LossProb {
		n.stats.DroppedLoss++
		return
	}
	if lp.DuplicateProb > 0 && n.rng.Float64() < lp.DuplicateProb {
		copies = 2
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	for c := 0; c < copies; c++ {
		delay := lp.Delay
		if lp.Jitter > 0 {
			delay += time.Duration(n.rng.Int63n(int64(lp.Jitter) + 1))
		}
		n.clk.Schedule(delay, func() {
			dst, ok := n.endpoints[to]
			if !ok || dst.recv == nil {
				n.stats.DroppedNoReceiver++
				return
			}
			if dst.down {
				n.stats.DroppedDown++
				return
			}
			n.stats.Delivered++
			dst.recv(from, buf)
		})
	}
}

// Endpoint is one host's attachment to the fabric; it implements
// xkernel.Transport.
type Endpoint struct {
	net    *Network
	host   string
	recv   func(from string, payload []byte)
	down   bool
	closed bool
}

// Send implements xkernel.Transport.
func (e *Endpoint) Send(to string, payload []byte) error {
	if e.closed {
		return fmt.Errorf("netsim: endpoint %q closed", e.host)
	}
	e.net.send(e.host, to, payload)
	return nil
}

// SetReceiver implements xkernel.Transport.
func (e *Endpoint) SetReceiver(fn func(from string, payload []byte)) {
	e.recv = fn
}

// LocalAddr implements xkernel.Transport.
func (e *Endpoint) LocalAddr() string { return e.host }

// Close implements xkernel.Transport.
func (e *Endpoint) Close() error {
	e.closed = true
	e.down = true
	return nil
}

// SetDown simulates a host crash (true) or recovery (false): a down host
// neither sends nor receives. Used by the failover experiments.
func (e *Endpoint) SetDown(down bool) { e.down = down }

// Down reports whether the endpoint is crashed.
func (e *Endpoint) Down() bool { return e.down }
