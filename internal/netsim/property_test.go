package netsim

import (
	"flag"
	"math/rand"
	"testing"
	"time"

	"rtpb/internal/clock"
)

// seedFlag shifts every property test's fixed RNG seed so alternative
// schedules can be explored on demand (go test ./internal/netsim
// -seed=N); the default 0 keeps runs byte-identical to the committed
// seeds.
var seedFlag = flag.Int64("seed", 0, "offset added to the property tests' fixed RNG seeds")

func propRand(base int64) *rand.Rand { return rand.New(rand.NewSource(base + *seedFlag)) }

// TestStatsConservation checks the fabric's accounting identity for
// arbitrary traffic patterns without duplication: every sent datagram is
// either delivered or counted in exactly one drop category.
func TestStatsConservation(t *testing.T) {
	rng := propRand(13)
	for trial := 0; trial < 40; trial++ {
		clk := clock.NewSim()
		n := New(clk, int64(trial)+*seedFlag)
		if err := n.SetDefaultLink(LinkParams{
			Delay:    time.Duration(rng.Intn(5)) * time.Millisecond,
			Jitter:   time.Duration(rng.Intn(3)) * time.Millisecond,
			LossProb: rng.Float64() * 0.5,
		}); err != nil {
			t.Fatal(err)
		}
		hosts := []string{"a", "b", "c"}
		eps := map[string]*Endpoint{}
		for _, h := range hosts {
			ep, err := n.Endpoint(h)
			if err != nil {
				t.Fatal(err)
			}
			eps[h] = ep
			if h != "c" { // c never sets a receiver
				ep.SetReceiver(func(string, []byte) {})
			}
		}
		sends := 50 + rng.Intn(200)
		for i := 0; i < sends; i++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if rng.Intn(10) == 0 {
				eps[src].SetDown(rng.Intn(2) == 0)
			}
			if rng.Intn(12) == 0 {
				// Flip partition state between a random pair: cut datagrams
				// must land in their own drop category.
				x, y := hosts[rng.Intn(len(hosts))], hosts[rng.Intn(len(hosts))]
				if x != y {
					if n.Partitioned(x, y) {
						n.Heal(x, y)
					} else if rng.Intn(2) == 0 {
						n.Partition(x, y)
					} else {
						n.PartitionOneWay(x, y)
					}
				}
			}
			_ = eps[src].Send(dst, []byte{byte(i)})
		}
		// Bring everyone back so in-flight datagrams can land, and drain.
		for _, ep := range eps {
			ep.SetDown(false)
		}
		clk.RunFor(time.Second)
		st := n.Stats()
		if st.Sent != sends {
			t.Fatalf("trial %d: Sent=%d, want %d", trial, st.Sent, sends)
		}
		accounted := st.Delivered + st.DroppedLoss + st.DroppedDown +
			st.DroppedNoReceiver + st.DroppedPartition
		if accounted != sends {
			t.Fatalf("trial %d: accounting leak: %d sent vs %d accounted (%+v)",
				trial, sends, accounted, st)
		}
	}
}

// TestDeliveryDelayAlwaysWithinBound: with any (delay, jitter) pair, no
// datagram arrives before Delay or after Bound().
func TestDeliveryDelayAlwaysWithinBound(t *testing.T) {
	rng := propRand(17)
	for trial := 0; trial < 40; trial++ {
		clk := clock.NewSim()
		n := New(clk, int64(trial)+*seedFlag)
		lp := LinkParams{
			Delay:  time.Duration(rng.Intn(10)) * time.Millisecond,
			Jitter: time.Duration(rng.Intn(10)) * time.Millisecond,
		}
		if err := n.SetDefaultLink(lp); err != nil {
			t.Fatal(err)
		}
		a, _ := n.Endpoint("a")
		b, _ := n.Endpoint("b")
		var bad int
		var sentAt []time.Time
		i := 0
		b.SetReceiver(func(string, []byte) {
			d := clk.Now().Sub(sentAt[i])
			i++
			if d < lp.Delay || d > lp.Bound() {
				bad++
			}
		})
		for k := 0; k < 100; k++ {
			sentAt = append(sentAt, clk.Now())
			_ = a.Send("b", []byte{byte(k)})
			clk.RunFor(lp.Bound() + time.Millisecond) // serialize deliveries
		}
		if bad != 0 {
			t.Fatalf("trial %d: %d deliveries outside [%v, %v]", trial, bad, lp.Delay, lp.Bound())
		}
	}
}
