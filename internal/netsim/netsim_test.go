package netsim

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/xkernel"
)

var _ xkernel.Transport = (*Endpoint)(nil)
var _ xkernel.Transport = (*UDPTransport)(nil)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

type delivery struct {
	from    string
	payload string
	at      time.Duration
}

func fabric(t *testing.T, seed int64) (*clock.SimClock, *Network) {
	t.Helper()
	clk := clock.NewSim()
	return clk, New(clk, seed)
}

func collect(t *testing.T, clk *clock.SimClock, ep *Endpoint) *[]delivery {
	t.Helper()
	out := &[]delivery{}
	ep.SetReceiver(func(from string, payload []byte) {
		*out = append(*out, delivery{from, string(payload), clk.Now().Sub(clock.SimEpoch)})
	})
	return out
}

func TestDeliveryWithDelay(t *testing.T) {
	clk, n := fabric(t, 1)
	if err := n.SetDefaultLink(LinkParams{Delay: ms(5)}); err != nil {
		t.Fatal(err)
	}
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	got := collect(t, clk, b)
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	clk.RunFor(ms(10))
	if len(*got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(*got))
	}
	d := (*got)[0]
	if d.from != "a" || d.payload != "hi" || d.at != ms(5) {
		t.Fatalf("delivery = %+v", d)
	}
}

func TestJitterStaysWithinBound(t *testing.T) {
	clk, n := fabric(t, 2)
	lp := LinkParams{Delay: ms(2), Jitter: ms(3)}
	if err := n.SetDefaultLink(lp); err != nil {
		t.Fatal(err)
	}
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	got := collect(t, clk, b)
	for i := 0; i < 200; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	clk.RunFor(ms(10))
	if len(*got) != 200 {
		t.Fatalf("deliveries = %d, want 200", len(*got))
	}
	for _, d := range *got {
		if d.at < ms(2) || d.at > lp.Bound() {
			t.Fatalf("delivery at %v outside [2ms, %v]", d.at, lp.Bound())
		}
	}
}

func TestLossRateApproximatelyHonored(t *testing.T) {
	clk, n := fabric(t, 3)
	if err := n.SetDefaultLink(LinkParams{LossProb: 0.3}); err != nil {
		t.Fatal(err)
	}
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	got := collect(t, clk, b)
	const total = 5000
	for i := 0; i < total; i++ {
		a.Send("b", []byte{1})
	}
	clk.RunFor(ms(1))
	rate := 1 - float64(len(*got))/total
	if rate < 0.27 || rate > 0.33 {
		t.Fatalf("observed loss rate %.3f, want ≈0.30", rate)
	}
	st := n.Stats()
	if st.Sent != total || st.DroppedLoss+st.Delivered != total {
		t.Fatalf("stats inconsistent: %+v", st)
	}
}

func TestDeterministicForSameSeed(t *testing.T) {
	run := func() []delivery {
		clk, n := fabric(t, 99)
		n.SetDefaultLink(LinkParams{Delay: ms(1), Jitter: ms(4), LossProb: 0.5})
		a, _ := n.Endpoint("a")
		b, _ := n.Endpoint("b")
		got := collect(t, clk, b)
		for i := 0; i < 50; i++ {
			a.Send("b", []byte{byte(i)})
		}
		clk.RunFor(ms(20))
		return *got
	}
	x, y := run(), run()
	if len(x) != len(y) {
		t.Fatalf("runs differ in length: %d vs %d", len(x), len(y))
	}
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("runs diverge at %d: %+v vs %+v", i, x[i], y[i])
		}
	}
}

func TestPartitionAndHeal(t *testing.T) {
	clk, n := fabric(t, 4)
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	got := collect(t, clk, b)
	n.Partition("a", "b")
	a.Send("b", []byte("lost"))
	clk.RunFor(ms(5))
	if len(*got) != 0 {
		t.Fatalf("partitioned delivery: %+v", *got)
	}
	n.Heal("a", "b")
	a.Send("b", []byte("ok"))
	clk.RunFor(ms(5))
	if len(*got) != 1 || (*got)[0].payload != "ok" {
		t.Fatalf("post-heal deliveries: %+v", *got)
	}
}

func TestDownEndpointDropsTraffic(t *testing.T) {
	clk, n := fabric(t, 5)
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	got := collect(t, clk, b)
	b.SetDown(true)
	a.Send("b", []byte("x"))
	clk.RunFor(ms(5))
	if len(*got) != 0 {
		t.Fatal("down endpoint received datagram")
	}
	b.SetDown(false)
	a.Send("b", []byte("y"))
	clk.RunFor(ms(5))
	if len(*got) != 1 {
		t.Fatal("recovered endpoint did not receive")
	}
	// A down sender cannot transmit either.
	a.SetDown(true)
	a.Send("b", []byte("z"))
	clk.RunFor(ms(5))
	if len(*got) != 1 {
		t.Fatal("down sender transmitted")
	}
}

func TestCrashMidFlight(t *testing.T) {
	// A datagram already in flight is lost if the destination crashes
	// before it lands.
	clk, n := fabric(t, 6)
	n.SetDefaultLink(LinkParams{Delay: ms(10)})
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	got := collect(t, clk, b)
	a.Send("b", []byte("x"))
	clk.RunFor(ms(5))
	b.SetDown(true)
	clk.RunFor(ms(10))
	if len(*got) != 0 {
		t.Fatal("crashed endpoint received in-flight datagram")
	}
}

func TestDuplicateDelivery(t *testing.T) {
	clk, n := fabric(t, 7)
	n.SetDefaultLink(LinkParams{DuplicateProb: 1})
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	got := collect(t, clk, b)
	a.Send("b", []byte("x"))
	clk.RunFor(ms(5))
	if len(*got) != 2 {
		t.Fatalf("deliveries = %d, want 2 (forced duplication)", len(*got))
	}
}

func TestPayloadIsolated(t *testing.T) {
	clk, n := fabric(t, 8)
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	got := collect(t, clk, b)
	buf := []byte("orig")
	a.Send("b", buf)
	buf[0] = 'X' // mutate after send; fabric must have copied
	clk.RunFor(ms(5))
	if (*got)[0].payload != "orig" {
		t.Fatalf("payload = %q, want orig", (*got)[0].payload)
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	_, n := fabric(t, 9)
	if _, err := n.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatal("duplicate host accepted")
	}
}

func TestClosedEndpointRejectsSend(t *testing.T) {
	_, n := fabric(t, 10)
	a, _ := n.Endpoint("a")
	a.Close()
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("send on closed endpoint succeeded")
	}
}

func TestLinkParamsValidate(t *testing.T) {
	bad := []LinkParams{
		{Delay: -1},
		{Jitter: -1},
		{LossProb: -0.1},
		{LossProb: 1.1},
		{DuplicateProb: 2},
	}
	for _, lp := range bad {
		if err := lp.Validate(); err == nil {
			t.Fatalf("Validate(%+v) accepted", lp)
		}
	}
	if err := (LinkParams{Delay: ms(1), Jitter: ms(1), LossProb: 0.5}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestPerLinkOverridesDefault(t *testing.T) {
	clk, n := fabric(t, 11)
	n.SetDefaultLink(LinkParams{Delay: ms(1)})
	n.SetLink("a", "b", LinkParams{Delay: ms(20)})
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	gotB := collect(t, clk, b)
	a.Send("b", []byte("x"))
	clk.RunFor(ms(30))
	if (*gotB)[0].at != ms(20) {
		t.Fatalf("a→b delivered at %v, want 20ms", (*gotB)[0].at)
	}
	// Reverse direction keeps the default.
	gotA := collect(t, clk, a)
	b.Send("a", []byte("y"))
	clk.RunFor(ms(30))
	if (*gotA)[0].at != ms(31) {
		t.Fatalf("b→a delivered at %v, want 31ms (sent at 30ms + default 1ms)", (*gotA)[0].at)
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	clk := clock.NewReal()
	defer clk.Stop()
	a, err := NewUDP(clk, "127.0.0.1:0")
	if err != nil {
		t.Skipf("UDP unavailable: %v", err)
	}
	defer a.Close()
	b, err := NewUDP(clk, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := make(chan string, 1)
	b.SetReceiver(func(from string, payload []byte) {
		got <- string(payload)
	})
	if err := a.Send(b.LocalAddr(), []byte("over-the-wire")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if p != "over-the-wire" {
			t.Fatalf("payload = %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("datagram not delivered")
	}
}
