package core

import (
	"sort"
	"time"

	"rtpb/internal/cpu"
	"rtpb/internal/temporal"
	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// This file implements the repair cycle's anti-entropy exchange: the
// digest-based, chunked, resumable state transfer that brings a recruited
// or rejoining backup to parity with the primary (the successor of the
// monolithic wire.StateTransfer blast, which remains available through
// SendStateTransfer as the legacy path).
//
// The exchange, in both the primary-initiated (AddPeer/SetPeer/
// SetPeerAlive) and joiner-initiated (JoinRequest) directions:
//
//	primary                                backup
//	  | JoinAccept{epoch, specs} ----------> |  admit specs, mark every
//	  |     (retried on adaptive RTO)        |  object catching-up
//	  | <---------- StateDigest{per-object (epoch, seq, version)}
//	  | diff digest against table            |     (retried while joining)
//	  | StateChunk{gen, 0, entries} -------> |  apply + ack
//	  | <-------------- StateChunkAck{gen,0} |
//	  |      ... stop-and-wait ...           |
//	  | StateChunk{gen, n, Final} ---------> |  apply, join complete
//	  | <-------------- StateChunkAck{gen,n} |
//	  | peer synced: counts toward quorums   |
//
// Any interruption — lost accept, lost chunk beyond its retry budget, a
// peer restart mid-stream — is healed by the backup's digest retry: a
// fresh digest enumerates exactly what survived, and the next chunk
// generation streams only the remainder. Transfers resume; they never
// restart from scratch.

// TransferStats counts one peer's anti-entropy exchange activity.
type TransferStats struct {
	// JoinAccepts counts JoinAccept transmissions (including retries).
	JoinAccepts int
	// Digests counts StateDigests received.
	Digests int
	// Chunks counts StateChunk transmissions, including retransmissions.
	Chunks int
	// ChunkRetransmits counts chunks re-sent on the adaptive RTO.
	ChunkRetransmits int
	// EntriesSent counts distinct entries streamed (first transmissions
	// only; a retransmitted chunk does not recount its entries).
	EntriesSent int
	// EntriesSkipped counts entries the peer's digest proved current, so
	// they were never streamed — the resumability win.
	EntriesSkipped int
	// Completions counts completed exchanges (final chunk acknowledged
	// while the peer was syncing).
	Completions int
}

// beginJoin starts (or restarts) the chunked join exchange toward one
// peer. Until it completes the peer is marked syncing: it receives live
// update traffic — fresh updates are exactly what completes its
// per-object catch-up — but is not counted toward critical-write quorums
// or the reported replication degree.
func (p *Primary) beginJoin(pr *replicaPeer) {
	if pr.stRetry != nil {
		pr.stRetry.Cancel()
		pr.stRetry = nil
	}
	pr.stAwaiting = false
	p.cancelTransfer(pr)
	pr.syncing = true
	pr.joinAttempt = 0
	pr.xferTotal = 0
	// A peer entering (re)sync holds stale state; do not let an old
	// critical write's fate ride on it.
	p.dropPeerFromCriticalWaits(pr.addr)
	p.sendJoinAccept(pr)
}

// cancelTransfer stops the peer's join/chunk timers and abandons any
// in-flight generation (the syncing mark is left as-is).
func (p *Primary) cancelTransfer(pr *replicaPeer) {
	if pr.joinRetry != nil {
		pr.joinRetry.Cancel()
		pr.joinRetry = nil
	}
	if pr.xferRetry != nil {
		pr.xferRetry.Cancel()
		pr.xferRetry = nil
	}
	pr.xferActive = false
	pr.xferPending = nil
	pr.xferIDs = nil
}

// sendJoinAccept pushes the admission table to the joiner and retries on
// the adaptive RTO until the joiner's StateDigest arrives (the digest is
// the accept's acknowledgement) or the retry budget runs out.
func (p *Primary) sendJoinAccept(pr *replicaPeer) {
	if !p.running || p.peerByAddr(pr.addr) != pr || !pr.syncing || pr.xferActive {
		return
	}
	if pr.joinAttempt >= p.cfg.RegisterRetries {
		// The joiner never answered. Leave it marked syncing (it must not
		// count toward quorums holding arbitrarily stale state) and let
		// the repair layer rotate to another candidate or the joiner's own
		// JoinRequest retry restart the exchange.
		if p.OnPeerSyncFailed != nil {
			p.OnPeerSyncFailed(pr.addr)
		}
		return
	}
	acc := &wire.JoinAccept{Epoch: p.epoch}
	for _, o := range p.adm.ordered() {
		acc.Specs = append(acc.Specs, wire.SpecEntry{
			ObjectID: o.id,
			Name:     o.spec.Name,
			Size:     uint32(o.spec.Size),
			Period:   o.spec.UpdatePeriod,
			DeltaP:   o.spec.Constraint.DeltaP,
			DeltaB:   o.spec.Constraint.DeltaB,
		})
		// Spec delivery rides the accept (and every chunk); the digest
		// acknowledges it, so the per-object registration handshake is
		// not replayed.
		pr.registered[o.id] = true
	}
	pr.xfer.JoinAccepts++
	p.sendTo(pr, acc)
	attempt := pr.joinAttempt
	pr.joinAttempt++
	pr.joinRetry = p.clk.Schedule(p.retryDelay(pr, attempt), func() {
		pr.joinRetry = nil
		if !p.running || p.peerByAddr(pr.addr) != pr || !pr.syncing || pr.xferActive {
			return
		}
		pr.est.SampleLoss()
		p.sendJoinAccept(pr)
	})
}

// handleJoinRequest admits a restarted replica asking to rejoin as a
// backup. The datagram's source address is authoritative; an unknown
// sender is attached as a new peer.
func (p *Primary) handleJoinRequest(from xkernel.Addr, t *wire.JoinRequest) {
	if !p.running {
		return
	}
	if p.role == RoleObserver && !p.joined {
		// A chained subscriber is asking to join through us before our own
		// upstream join has landed: we have no spec table to accept it
		// against, and a 0-spec accept would strand it (a completed join is
		// never retried). Stay silent — the subscriber's join loop retries
		// until the chain upstream of us is ready.
		return
	}
	if t.Epoch > p.epoch {
		// The joiner has observed a newer primary than us: we are the
		// stale one. Never accept — our own demotion is the failure
		// detector's business.
		return
	}
	if p.OnJoinRequest != nil {
		p.OnJoinRequest(from, t.Epoch, t.Addr)
	}
	pr := p.peerByAddr(from)
	if pr == nil {
		if p.addPeerLocked(from) != nil {
			return
		}
		pr = p.peers[len(p.peers)-1]
	} else {
		if pr.syncing && (pr.xferActive || pr.joinRetry != nil) {
			return // duplicate request; the exchange is already running
		}
		pr.alive = true
	}
	// The joiner declares its role: an observer peer receives the same
	// stream and the same exchange but never counts toward quorums, the
	// replication degree, or critical-write waits.
	pr.observer = t.Observer
	p.beginJoin(pr)
	p.maybeStartPump()
}

// handleStateDigest diffs the joiner's digest against the object table
// and starts a fresh chunk generation streaming only missing or stale
// entries. Freshness is judged by version timestamp, which survives
// epoch changes: the joiner may legitimately hold state from an older
// epoch that is still the newest value in existence.
func (p *Primary) handleStateDigest(from xkernel.Addr, t *wire.StateDigest) {
	pr := p.peerByAddr(from)
	if pr == nil {
		return
	}
	if pr.joinRetry != nil {
		pr.joinRetry.Cancel()
		pr.joinRetry = nil
	}
	if pr.xferRetry != nil {
		pr.xferRetry.Cancel()
		pr.xferRetry = nil
	}
	pr.xfer.Digests++
	have := make(map[uint32]int64, len(t.Entries))
	for _, e := range t.Entries {
		have[e.ObjectID] = e.Version
	}
	pr.xferPending = pr.xferPending[:0]
	for _, o := range p.adm.ordered() {
		if !o.hasData {
			continue // spec-only objects already rode the JoinAccept
		}
		if v, ok := have[o.id]; ok && v >= o.version.UnixNano() {
			pr.xfer.EntriesSkipped++
			continue
		}
		pr.xferPending = append(pr.xferPending, o.id)
	}
	pr.xferGen++
	pr.xferChunk = 0
	pr.xferActive = true
	p.sendNextChunk(pr)
}

// sendNextChunk slices the next chunk off the pending list and pushes
// it. Catch-up traffic yields to congestion: while the peer's send queue
// is backlogged or the governor reports overload, the next chunk is
// deferred — live replication outranks repair.
func (p *Primary) sendNextChunk(pr *replicaPeer) {
	if !p.running || p.peerByAddr(pr.addr) != pr || !pr.xferActive {
		return
	}
	if pr.queue.congested() || (p.gov != nil && p.gov.overloaded()) {
		pr.xferRetry = p.clk.Schedule(p.retryDelay(pr, 0), func() {
			pr.xferRetry = nil
			p.sendNextChunk(pr)
		})
		return
	}
	n, bytes := 0, 0
	for _, id := range pr.xferPending {
		if n >= p.cfg.ChunkEntries {
			break
		}
		if o, ok := p.adm.objects[id]; ok {
			if n > 0 && bytes+len(o.value) > p.cfg.ChunkBytes {
				break
			}
			bytes += len(o.value)
		}
		n++
	}
	pr.xferIDs = append(pr.xferIDs[:0], pr.xferPending[:n]...)
	pr.xferPending = pr.xferPending[n:]
	pr.xferAttempt = 0
	p.pushChunk(pr, pr.xferGen, len(pr.xferPending) == 0, false)
}

// pushChunk pays the CPU send cost, emits one chunk (entries rebuilt
// fresh at transmission — application is idempotent under supersedes),
// and arms the retransmission timer. A chunk that exhausts its retry
// budget abandons the generation; the joiner's digest retry resumes the
// transfer from whatever landed.
func (p *Primary) pushChunk(pr *replicaPeer, gen uint32, final, retrans bool) {
	if !p.running || p.peerByAddr(pr.addr) != pr || !pr.xferActive || pr.xferGen != gen {
		return
	}
	bytes := 0
	for _, id := range pr.xferIDs {
		if o, ok := p.adm.objects[id]; ok && o.hasData {
			bytes += len(o.value)
		}
	}
	p.proc.Submit(cpu.Low, p.cfg.Costs.sendCost(bytes), func() {
		if !p.running || p.peerByAddr(pr.addr) != pr || !pr.xferActive || pr.xferGen != gen {
			return
		}
		ck := &wire.StateChunk{Epoch: p.epoch, Xfer: gen, Chunk: pr.xferChunk, Final: final}
		for _, id := range pr.xferIDs {
			if o, ok := p.adm.objects[id]; ok && o.hasData {
				ck.Entries = append(ck.Entries, p.stateEntryFor(o))
			}
		}
		pr.xferSentAt = p.clk.Now()
		pr.xferRetrans = retrans
		pr.xfer.Chunks++
		if retrans {
			pr.xfer.ChunkRetransmits++
		} else {
			pr.xfer.EntriesSent += len(ck.Entries)
			pr.xferEntries = len(ck.Entries)
		}
		p.sendTo(pr, ck)
		attempt := pr.xferAttempt
		pr.xferAttempt++
		pr.xferRetry = p.clk.Schedule(p.retryDelay(pr, attempt), func() {
			pr.xferRetry = nil
			if !pr.xferActive || pr.xferGen != gen {
				return
			}
			pr.est.SampleLoss()
			if pr.xferAttempt >= p.cfg.StateTransferRetries {
				// The chunk outlived its retry budget. A joiner still
				// mid-join resumes the transfer with its own digest retry —
				// but a joiner that already applied the final chunk (whose
				// ack was lost) will never send another digest, so restart
				// the exchange from the JoinAccept: its fresh digest either
				// resumes from what landed or confirms parity with an empty
				// final chunk. If even the accept goes unanswered, the
				// retry exhaustion there declares the peer sync-failed.
				p.beginJoin(pr)
				return
			}
			p.pushChunk(pr, gen, final, true)
		})
	})
}

// stateEntryFor snapshots one object — spec and value — as a wire entry.
func (p *Primary) stateEntryFor(o *object) wire.StateEntry {
	return wire.StateEntry{
		ObjectID: o.id,
		Seq:      o.seq,
		Version:  o.version.UnixNano(),
		Name:     o.spec.Name,
		Size:     uint32(o.spec.Size),
		Period:   o.spec.UpdatePeriod,
		DeltaP:   o.spec.Constraint.DeltaP,
		DeltaB:   o.spec.Constraint.DeltaB,
		Payload:  append([]byte(nil), o.value...),
	}
}

// handleStateChunkAck advances the stop-and-wait stream: RTT sample
// (Karn's rule: retransmitted chunks yield only a delivery sample), next
// chunk, or — on the final chunk's ack — join completion.
func (p *Primary) handleStateChunkAck(from xkernel.Addr, t *wire.StateChunkAck) {
	pr := p.peerByAddr(from)
	if pr == nil || t.Epoch != p.epoch {
		return
	}
	if !pr.xferActive || t.Xfer != pr.xferGen || t.Chunk != pr.xferChunk {
		return // abandoned generation or an already-advanced chunk
	}
	if pr.xferRetry != nil {
		pr.xferRetry.Cancel()
		pr.xferRetry = nil
	}
	if pr.xferRetrans {
		pr.est.SampleAck()
	} else {
		p.sampleRTT(pr, pr.xferSentAt)
	}
	pr.xferTotal += pr.xferEntries
	pr.xferEntries = 0
	pr.xferChunk++
	pr.xferIDs = pr.xferIDs[:0]
	if len(pr.xferPending) > 0 {
		p.sendNextChunk(pr)
		return
	}
	pr.xferActive = false
	if !pr.syncing {
		return // idempotent re-sync of an already-counted peer
	}
	pr.syncing = false
	pr.xfer.Completions++
	if p.OnStateTransferAck != nil {
		p.OnStateTransferAck(p.epoch, pr.xferTotal)
	}
	if p.OnPeerSynced != nil {
		p.OnPeerSynced(pr.addr, pr.xferTotal)
	}
}

// PeerStatus describes one attached peer's repair-cycle state.
type PeerStatus struct {
	// Addr is the peer's replication address.
	Addr xkernel.Addr
	// Alive is the failure detector's current belief.
	Alive bool
	// Syncing reports an anti-entropy exchange still in flight; a syncing
	// peer does not count toward quorums or the replication degree.
	Syncing bool
	// Observer reports a read-only subscriber: it never counts toward
	// quorums or the replication degree, and the repair layer must not
	// mistake it for a recruited backup.
	Observer bool
	// Transfer holds the peer's lifetime anti-entropy counters.
	Transfer TransferStats
}

// PeerStates reports every attached peer's repair-cycle state, sorted by
// address for deterministic output.
func (p *Primary) PeerStates() []PeerStatus {
	out := make([]PeerStatus, 0, len(p.peers))
	for _, pr := range p.peers {
		out = append(out, PeerStatus{Addr: pr.addr, Alive: pr.alive, Syncing: pr.syncing,
			Observer: pr.observer, Transfer: pr.xfer})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SyncedPeers reports how many live voting peers have completed their
// anti-entropy exchange — the cluster's effective replication degree
// (excluding the primary itself). Observer peers receive the same
// stream but are read-only bystanders: they never count here, in
// critical-write quorums, or anywhere else the cluster's fate is
// decided.
func (p *Primary) SyncedPeers() int {
	n := 0
	for _, pr := range p.peers {
		if pr.alive && !pr.syncing && !pr.observer {
			n++
		}
	}
	return n
}

// TransferStatsFor reports the anti-entropy counters toward one peer.
func (p *Primary) TransferStatsFor(addr xkernel.Addr) (TransferStats, bool) {
	if pr := p.peerByAddr(addr); pr != nil {
		return pr.xfer, true
	}
	return TransferStats{}, false
}

// --- backup side ---

// Join asks the upstream to take this replica as a subscriber: a backup
// rejoining the cluster, or an observer attaching to its fan-out
// upstream — both ride the same chunked anti-entropy exchange with
// catch-up temporal semantics. The request announces the highest epoch
// this replica has observed (so a fenced old primary rejoins already
// demoted) and whether it subscribes read-only; it is answered by a
// JoinAccept. Join is fire-and-forget; callers (repair.Rejoiner, the
// observer wiring) retry it until Joining or catch-up reports progress.
func (b *Backup) Join() {
	if !b.running || !b.role.Shadows() {
		return
	}
	b.send(&wire.JoinRequest{Epoch: b.epoch, Addr: string(b.cfg.SelfAddr),
		Observer: b.role == RoleObserver})
}

// Joining reports whether a join exchange is in flight (accepted but not
// yet completed by a final chunk).
func (b *Backup) Joining() bool { return b.joining }

// Joined reports whether a join exchange has ever completed on this
// backup.
func (b *Backup) Joined() bool { return b.joined }

// CatchingUp reports whether the named object is still catching up: it
// was marked stale when a join began and no update or chunk within
// δ_i^B has landed yet. An unknown name reports false.
func (b *Backup) CatchingUp(name string) bool {
	if id, ok := b.adm.byName[name]; ok {
		return b.adm.objects[id].catchingUp
	}
	return false
}

// CatchUpRemaining reports how many objects are still catching up.
func (b *Backup) CatchUpRemaining() int { return b.catchingUp }

// handleJoinAccept adopts the primary's epoch, admits every spec in the
// accept, marks every listed object catching-up (its image must not be
// reported consistent until an update lands within δ_i^B), and answers
// with a state digest.
func (b *Backup) handleJoinAccept(t *wire.JoinAccept) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	fresh := !b.joining
	b.joining = true
	if fresh {
		// A new exchange: forget the previous exchange's chunk dedup set
		// (generation numbers from a re-attached peer slot may repeat).
		b.seenChunks = make(map[uint64]bool)
		b.xferApplied = 0
	}
	for _, s := range t.Specs {
		o := b.adm.placeholder(s.ObjectID)
		if o.spec.Name == "" && s.Name != "" {
			b.adm.installSpec(o, ObjectSpec{
				Name:         s.Name,
				Size:         int(s.Size),
				UpdatePeriod: s.Period,
				Constraint: temporal.ExternalConstraint{
					DeltaP: s.DeltaP,
					DeltaB: s.DeltaB,
				},
			})
			b.logSpec(o)
			if b.OnRegister != nil {
				b.OnRegister(o.spec)
			}
		}
		if !o.catchingUp {
			o.catchingUp = true
			b.catchingUp++
		}
	}
	if b.OnJoinAccept != nil {
		b.OnJoinAccept(t.Epoch, len(t.Specs))
	}
	b.digestAttempt = 0
	b.sendDigest()
}

// sendDigest reports what this backup already holds and arms its own
// retry: the digest is re-sent on a capped backoff for as long as the
// join is incomplete, which is what makes the transfer resumable — a
// fresh digest after any interruption enumerates exactly the entries
// that survived.
func (b *Backup) sendDigest() {
	if !b.running || !b.joining {
		return
	}
	if b.digestRetry != nil {
		b.digestRetry.Cancel()
		b.digestRetry = nil
	}
	d := &wire.StateDigest{Epoch: b.epoch}
	for _, id := range b.adm.orderedIDs() {
		o := b.adm.objects[id]
		if !o.hasData {
			continue
		}
		d.Entries = append(d.Entries, wire.DigestEntry{
			ObjectID: id,
			Epoch:    o.recvEpoch,
			Seq:      o.seq,
			Version:  o.version.UnixNano(),
		})
	}
	b.send(d)
	attempt := b.digestAttempt
	b.digestAttempt++
	base := max(4*b.cfg.Ell, 20*time.Millisecond)
	b.digestRetry = b.cfg.Clock.Schedule(b.joinBackoff.DelayFrom(base, attempt), func() {
		b.digestRetry = nil
		b.sendDigest()
	})
}

// handleStateChunk applies one chunk (dedup by generation and chunk
// number; duplicates are re-acknowledged but not re-applied) and, on the
// final chunk, completes the join.
func (b *Backup) handleStateChunk(t *wire.StateChunk) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	if b.seenChunks == nil {
		b.seenChunks = make(map[uint64]bool)
	}
	key := uint64(t.Xfer)<<32 | uint64(t.Chunk)
	applied := 0
	dup := b.seenChunks[key]
	if !dup {
		b.seenChunks[key] = true
		for _, e := range t.Entries {
			applied += b.applyStateEntry(t.Epoch, e)
		}
		b.xferApplied += applied
	}
	b.send(&wire.StateChunkAck{Epoch: t.Epoch, Xfer: t.Xfer, Chunk: t.Chunk, Applied: uint32(applied)})
	if dup || !b.joining {
		return
	}
	if t.Final {
		b.joining = false
		b.joined = true
		if b.digestRetry != nil {
			b.digestRetry.Cancel()
			b.digestRetry = nil
		}
		n := b.xferApplied
		b.xferApplied = 0
		if b.OnStateTransfer != nil {
			b.OnStateTransfer(t.Epoch, n)
		}
		return
	}
	// Progress: push the digest retry out instead of letting it fire
	// mid-stream and needlessly restart the generation.
	b.digestAttempt = 0
	if b.digestRetry != nil {
		b.digestRetry.Cancel()
	}
	base := max(4*b.cfg.Ell, 20*time.Millisecond)
	b.digestRetry = b.cfg.Clock.Schedule(b.joinBackoff.DelayFrom(base, 0), func() {
		b.digestRetry = nil
		b.sendDigest()
	})
}

// applyStateEntry installs one transferred entry: the spec first (an
// entry may describe an object whose registration this replica never
// saw — without the spec a later promotion would silently drop the
// state), then the value under the usual supersedes ordering. It reports
// 1 if the value was applied, 0 if local state was already newer.
func (b *Backup) applyStateEntry(epoch uint32, e wire.StateEntry) int {
	o := b.adm.placeholder(e.ObjectID)
	if o.spec.Name == "" && e.Name != "" {
		b.adm.installSpec(o, ObjectSpec{
			Name:         e.Name,
			Size:         int(e.Size),
			UpdatePeriod: e.Period,
			Constraint: temporal.ExternalConstraint{
				DeltaP: e.DeltaP,
				DeltaB: e.DeltaB,
			},
		})
		b.logSpec(o)
		if b.OnRegister != nil {
			b.OnRegister(o.spec)
		}
	}
	if !o.supersedes(epoch, e.Seq) && !b.cfg.DisableEpochFencing {
		return 0
	}
	b.apply(o, epoch, e.Seq, time.Unix(0, e.Version), e.Payload)
	return 1
}
