package core

import (
	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// This file implements the observer role of the Replica state machine: a
// read-only replica subscribed to an upstream (a primary or another
// observer) that applies the replicated update stream through the
// backup-role handlers, serves certificate reads with chain-accumulated
// uncertainty (cert.go), and re-broadcasts the stream to downstream
// subscribers of its own — the chained fan-out tree. Observers are
// excluded from everything that decides the cluster's fate: quorums,
// critical-write waits, the replication degree, failover candidacy, and
// repair recruitment. Promote rejects them (ErrNotBackup), so no
// detector wiring can accidentally elect one.

// demuxObserver handles inbound RTPB datagrams while observing. Traffic
// from the upstream flows through the backup-role handlers — the same
// fence/supersede/apply/catch-up path a backup runs — and is then
// relayed downstream verbatim; traffic from downstream subscribers flows
// through the primary-side join/anti-entropy handlers. The two role
// halves compose: an observer is a shadow toward its upstream and a
// fan-out node toward its own subscribers.
func (r *Replica) demuxObserver(msg wire.Message, from xkernel.Addr) {
	switch t := msg.(type) {
	// --- upstream stream: apply locally, then re-broadcast downstream ---
	case *wire.Register:
		relay := r.wouldAcceptEpoch(t.Epoch)
		r.handleRegister(t)
		if relay {
			r.relayDownstream(t)
		}
	case *wire.Update:
		relay := r.wouldAcceptEpoch(t.Epoch)
		r.handleUpdate(t)
		if relay {
			if t.AckRequested {
				// Acks answer the primary's critical-write quorum; a
				// relay must not solicit downstream acks toward us.
				fwd := *t
				fwd.AckRequested = false
				r.relayDownstream(&fwd)
			} else {
				r.relayDownstream(t)
			}
		}
	case *wire.Unregister:
		relay := r.wouldAcceptEpoch(t.Epoch)
		r.handleUnregister(t)
		if relay {
			r.relayDownstream(t)
		}
	case *wire.ModeChange:
		relay := r.wouldAcceptEpoch(t.Epoch)
		r.handleModeChange(t)
		if relay {
			// Downstream bounds must track the governor too: a shed
			// object's certificate may promise nothing anywhere in the
			// tree.
			r.relayDownstream(t)
		}
	case *wire.StateTransfer:
		r.handleStateTransfer(t)
	case *wire.JoinAccept:
		relay := r.wouldAcceptEpoch(t.Epoch)
		r.handleJoinAccept(t)
		if relay {
			// Specs adopted through our own join never rode a live Register
			// broadcast, so subscribers already attached below us have not
			// heard of them: replay each downstream as a registration.
			// handleRegister is idempotent, so duplicates are harmless.
			for _, s := range t.Specs {
				r.relayDownstream(&wire.Register{Epoch: t.Epoch, ObjectID: s.ObjectID,
					Name: s.Name, Size: s.Size, Period: s.Period,
					DeltaP: s.DeltaP, DeltaB: s.DeltaB})
			}
		}
	case *wire.StateChunk:
		r.handleStateChunk(t)
	case *wire.ChainStatus:
		if r.observeEpoch(t.Epoch) {
			r.upstreamDepth = t.Depth
			r.upstreamTheta = t.Theta
		}
	case *wire.PingAck:
		if r.OnPingAck != nil {
			r.OnPingAck(t.Seq)
		}
		if r.OnPingAckFrom != nil {
			r.OnPingAckFrom(from, t.Seq)
		}
	case *wire.TimeSync:
		if t.Receive == 0 && t.Transmit == 0 {
			// A downstream observer's clock-sync probe: echo it with our
			// stamps (receive == transmit under the serial executor; the
			// estimator's rtt formula nets hold time out regardless).
			now := r.clk.Now().UnixNano()
			r.replyTo(from, &wire.TimeSync{Seq: t.Seq, From: wire.RoleObserver,
				Originate: t.Originate, Receive: now, Transmit: now})
		} else {
			// The echo to a probe we sent upstream.
			r.observeTimeSync(t)
		}
	case *wire.Ping:
		if r.OnPing != nil {
			r.OnPing(t.Seq)
		}
		r.replyTo(from, &wire.PingAck{Seq: t.Seq, From: wire.RoleObserver})
		if t.From == wire.RoleObserver {
			// A downstream observer heartbeat: advertise our chain
			// position so its certificates compound ours — depth plus
			// one hop, θ plus its own link's estimate.
			r.replyTo(from, &wire.ChainStatus{Epoch: r.epoch,
				Depth: uint32(r.chainDepth()), Theta: r.chainTheta()})
		}

	// --- downstream subscribers: the primary-side join exchange ---
	case *wire.JoinRequest:
		r.handleJoinRequest(from, t)
	case *wire.StateDigest:
		r.handleStateDigest(from, t)
	case *wire.StateChunkAck:
		r.handleStateChunkAck(from, t)
	case *wire.RegisterReply:
		if pr := r.peerByAddr(from); pr != nil && t.Accepted {
			pr.registered[t.ObjectID] = true
		}
	case *wire.RetransmitRequest:
		// Downstream gap recovery: re-send the current image as-is. The
		// observer never renumbers the stream — the relayed (epoch, seq)
		// keep the downstream supersedes order aligned with the
		// primary's.
		if r.OnRetransmitRequest != nil {
			r.OnRetransmitRequest(t.ObjectID)
		}
		if o, ok := r.adm.objects[t.ObjectID]; ok && o.hasData {
			if pr := r.peerByAddr(from); pr != nil {
				r.sendTo(pr, &wire.Update{Epoch: o.recvEpoch, ObjectID: o.id,
					Seq: o.seq, Version: o.version.UnixNano(), Payload: o.value})
			}
		}
	}
}

// wouldAcceptEpoch mirrors observeEpoch's fencing verdict without
// adopting anything: the relay decision must match what the backup-role
// handler it precedes is about to do with the message.
func (r *Replica) wouldAcceptEpoch(epoch uint32) bool {
	return r.cfg.DisableEpochFencing || epoch == 0 || epoch >= r.epoch
}

// relayDownstream re-broadcasts one upstream message to every live
// downstream subscriber verbatim: epoch, sequence, and version stamps
// ride unchanged. An observer never renumbers the stream — relabeling
// would reset the supersedes order and launder the staleness the
// version stamp honestly carries — and never bumps the shared object
// table's sequence counters; that is the serving primary's sole
// privilege.
func (r *Replica) relayDownstream(msg wire.Message) {
	if len(r.peers) == 0 {
		return
	}
	// Append-encode into the reused buffer; NewMessage copies, so the
	// buffer is free again as soon as the pushes return.
	r.encBuf = wire.AppendEncode(r.encBuf[:0], msg)
	for _, pr := range r.peers {
		if pr.alive {
			_ = pr.sess.Push(xkernel.NewMessage(r.encBuf))
		}
	}
}

// ObserverPeers reports how many attached peers subscribed as read-only
// observers. They receive the update stream but never count toward
// SyncedPeers, critical-write quorums, or the replication degree.
func (r *Replica) ObserverPeers() int {
	n := 0
	for _, pr := range r.peers {
		if pr.observer {
			n++
		}
	}
	return n
}
