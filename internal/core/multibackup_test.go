package core

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/netsim"
	"rtpb/internal/xkernel"
)

// multiCluster is a primary with several backups on one simulated fabric.
type multiCluster struct {
	clk     *clock.SimClock
	net     *netsim.Network
	primary *Primary
	backups []*Backup
	eps     []*netsim.Endpoint
}

func newMultiCluster(t *testing.T, nBackups int, mutateP func(*Config)) *multiCluster {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, 91)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: ms(2)}); err != nil {
		t.Fatal(err)
	}
	pPort, _ := stackOn(t, net, "primary")
	peers := make([]xkernel.Addr, nBackups)
	bPorts := make([]*xkernel.PortProtocol, nBackups)
	eps := make([]*netsim.Endpoint, nBackups)
	for i := 0; i < nBackups; i++ {
		host := "backup" + string(rune('A'+i))
		bPorts[i], eps[i] = stackOn(t, net, host)
		peers[i] = xkernel.Addr(host + ":7000")
	}
	pCfg := Config{Clock: clk, Port: pPort, Peers: peers, Ell: ms(5)}
	if mutateP != nil {
		mutateP(&pCfg)
	}
	primary, err := NewPrimary(pCfg)
	if err != nil {
		t.Fatal(err)
	}
	mc := &multiCluster{clk: clk, net: net, primary: primary, eps: eps}
	for i := 0; i < nBackups; i++ {
		b, err := NewBackup(Config{
			Clock: clk, Port: bPorts[i], Peer: "primary:7000", Ell: ms(5),
		})
		if err != nil {
			t.Fatal(err)
		}
		mc.backups = append(mc.backups, b)
	}
	return mc
}

func TestMultiBackupBroadcastReplication(t *testing.T) {
	mc := newMultiCluster(t, 3, nil)
	if d := mc.primary.Register(spec("x", ms(40), ms(50), ms(250))); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	mc.clk.RunFor(ms(50))
	w := clock.NewPeriodic(mc.clk, 0, ms(40), func() {
		mc.primary.ClientWrite("x", []byte("v"), nil)
	})
	mc.clk.RunFor(time.Second)
	w.Stop()
	for i, b := range mc.backups {
		if v, _, ok := b.Value("x"); !ok || string(v) != "v" {
			t.Fatalf("backup %d missing value: %q ok=%v", i, v, ok)
		}
	}
	if got := len(mc.primary.Peers()); got != 3 {
		t.Fatalf("Peers() = %d, want 3", got)
	}
}

func TestMultiBackupSurvivesOnePeerDeath(t *testing.T) {
	mc := newMultiCluster(t, 2, nil)
	if d := mc.primary.Register(spec("x", ms(40), ms(50), ms(250))); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	mc.clk.RunFor(ms(50))
	w := clock.NewPeriodic(mc.clk, 0, ms(40), func() {
		mc.primary.ClientWrite("x", []byte("v"), nil)
	})
	defer w.Stop()
	mc.clk.RunFor(500 * time.Millisecond)

	// Backup A dies; the primary is told and keeps replicating to B.
	mc.backups[0].Stop()
	mc.eps[0].SetDown(true)
	mc.primary.SetPeerAlive("backupA:7000", false)
	if mc.primary.PeerAlive("backupA:7000") {
		t.Fatal("peer A still marked alive")
	}
	if !mc.primary.BackupAlive() {
		t.Fatal("primary believes all backups dead with B alive")
	}
	_, verBefore, _ := mc.backups[1].Value("x")
	mc.clk.RunFor(500 * time.Millisecond)
	_, verAfter, _ := mc.backups[1].Value("x")
	if !verAfter.After(verBefore) {
		t.Fatal("surviving backup stopped receiving updates")
	}
}

func TestMultiBackupPeerRecoveryGetsStateTransfer(t *testing.T) {
	mc := newMultiCluster(t, 2, nil)
	if d := mc.primary.Register(spec("x", ms(40), ms(50), ms(250))); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	mc.clk.RunFor(ms(50))
	mc.primary.SetPeerAlive("backupA:7000", false)
	mc.primary.ClientWrite("x", []byte("while-A-dead"), nil)
	mc.clk.RunFor(200 * time.Millisecond)
	if _, _, ok := mc.backups[0].Value("x"); ok {
		t.Fatal("dead-marked peer received updates")
	}
	transfers := 0
	mc.backups[0].OnStateTransfer = func(uint32, int) { transfers++ }
	mc.primary.SetPeerAlive("backupA:7000", true)
	mc.clk.RunFor(100 * time.Millisecond)
	if transfers != 1 {
		t.Fatalf("state transfers to recovered peer = %d, want 1", transfers)
	}
	if v, _, ok := mc.backups[0].Value("x"); !ok || string(v) != "while-A-dead" {
		t.Fatalf("recovered peer state = %q ok=%v", v, ok)
	}
}

func TestAddPeerMidRun(t *testing.T) {
	mc := newMultiCluster(t, 1, nil)
	if d := mc.primary.Register(spec("x", ms(40), ms(50), ms(250))); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	mc.primary.ClientWrite("x", []byte("pre-join"), nil)
	mc.clk.RunFor(200 * time.Millisecond)

	// A third host joins as an extra backup.
	cPort, _ := stackOn(t, mc.net, "backupC")
	extra, err := NewBackup(Config{Clock: mc.clk, Port: cPort, Peer: "primary:7000", Ell: ms(5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := mc.primary.AddPeer("backupC:7000"); err != nil {
		t.Fatal(err)
	}
	mc.clk.RunFor(100 * time.Millisecond)
	if v, _, ok := extra.Value("x"); !ok || string(v) != "pre-join" {
		t.Fatalf("joined peer missing state transfer: %q ok=%v", v, ok)
	}
	if len(extra.Specs()) != 1 {
		t.Fatalf("joined peer has %d specs, want 1", len(extra.Specs()))
	}
	// Future updates reach it too.
	mc.primary.ClientWrite("x", []byte("post-join"), nil)
	mc.clk.RunFor(300 * time.Millisecond)
	if v, _, _ := extra.Value("x"); string(v) != "post-join" {
		t.Fatalf("joined peer not receiving updates: %q", v)
	}
	// Duplicate joins are rejected.
	if err := mc.primary.AddPeer("backupC:7000"); err == nil {
		t.Fatal("duplicate AddPeer succeeded")
	}
}

func TestRemovePeerStopsTraffic(t *testing.T) {
	mc := newMultiCluster(t, 2, nil)
	if d := mc.primary.Register(spec("x", ms(40), ms(50), ms(250))); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	mc.clk.RunFor(ms(50))
	mc.primary.RemovePeer("backupA:7000")
	if got := len(mc.primary.Peers()); got != 1 {
		t.Fatalf("Peers() = %d after removal, want 1", got)
	}
	mc.primary.ClientWrite("x", []byte("v"), nil)
	mc.clk.RunFor(300 * time.Millisecond)
	if _, _, ok := mc.backups[0].Value("x"); ok {
		t.Fatal("removed peer received updates")
	}
	if v, _, ok := mc.backups[1].Value("x"); !ok || string(v) != "v" {
		t.Fatalf("remaining peer missing updates: %q ok=%v", v, ok)
	}
}

func TestMultiBackupAdmissionChargesPerReplica(t *testing.T) {
	count := func(nBackups int) int {
		mc := newMultiCluster(t, nBackups, nil)
		admitted := 0
		for i := 0; i < 100; i++ {
			name := "o" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			if d := mc.primary.Register(spec(name, ms(20), ms(25), ms(60))); d.Accepted {
				admitted++
			}
		}
		return admitted
	}
	one := count(1)
	three := count(3)
	if three >= one {
		t.Fatalf("3-backup capacity (%d) not below 1-backup capacity (%d)", three, one)
	}
}

func TestPerPeerHeartbeats(t *testing.T) {
	mc := newMultiCluster(t, 2, nil)
	type ack struct {
		from xkernel.Addr
		seq  uint64
	}
	var acks []ack
	mc.primary.OnPingAckFrom = func(from xkernel.Addr, seq uint64) {
		acks = append(acks, ack{from, seq})
	}
	seqA, err := mc.primary.SendPingTo("backupA:7000")
	if err != nil {
		t.Fatal(err)
	}
	seqB, err := mc.primary.SendPingTo("backupB:7000")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.primary.SendPingTo("ghost:7000"); err == nil {
		t.Fatal("ping to unknown peer succeeded")
	}
	mc.clk.RunFor(ms(20))
	if len(acks) != 2 {
		t.Fatalf("acks = %+v, want 2", acks)
	}
	seen := map[xkernel.Addr]uint64{}
	for _, a := range acks {
		seen[a.from] = a.seq
	}
	if seen["backupA:7000"] != seqA || seen["backupB:7000"] != seqB {
		t.Fatalf("per-peer ack mismatch: %+v (sent %d/%d)", acks, seqA, seqB)
	}
}
