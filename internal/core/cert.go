package core

import (
	"fmt"
	"time"
)

// This file is the single home of staleness-certificate semantics: the
// Certificate type, the one constructor every serving path goes through
// (Replica.Certificate for all three roles, and through it the gateway
// broadcast frames and the ctl READ verbs), the freshness predicate, and
// the canonical wire-visible field rendering. Concentrating the
// age/δ_B/θ/mode arithmetic here is what keeps observer, gateway, and
// ctl reads from drifting apart.

// UnknownTheta is the clock-uncertainty sentinel a replica admits to
// when clock sync is enabled but no probe has completed yet: with no
// estimate there is no bound, and an honest certificate must report the
// offset as unknown — a gray zone far outside any admissible δ_B —
// rather than as zero.
const UnknownTheta = time.Hour

// Certificate is an object image together with its staleness contract:
// what a reader was handed, how old it was at hand-off, the temporal
// bound the replica currently maintains for backup images of the
// object, and the clock uncertainty accumulated along the path the
// image travelled. It is the unit the gateway tier broadcasts to
// subscribed sessions and the ctl READ verb reports alongside the bare
// value.
type Certificate struct {
	// Value and Version are the image and its last-write instant.
	Value   []byte
	Version time.Time
	// Age is the image's staleness at certificate time: how long ago the
	// value last changed, on the issuing replica's clock. Version stamps
	// ride the update stream unchanged, so along an observer chain the
	// age a downstream node reports already includes every upstream
	// link's delay — a partitioned observer's certificates go stale,
	// they never lie fresh.
	Age time.Duration
	// Bound is the mode-effective external bound δ_B the replica
	// maintains for backup images of the object: the admitted δ_B while
	// normal, loosened by the period stretch while compressed, and zero —
	// no guarantee — while shed.
	Bound time.Duration
	// Mode is the governor rung behind Bound.
	Mode ObjectMode
	// Theta is the clock uncertainty accumulated from the serving
	// primary to this replica: each hop adds its own clocksync θ to what
	// its upstream advertised (ChainStatus), so Age ± Theta brackets the
	// true staleness even under per-node clock faults. Zero on the
	// primary, and on unsynced deployments that share a fault-free
	// clock.
	Theta time.Duration
	// Depth is the issuing replica's hop count from the serving primary:
	// 0 on the primary itself, 1 on a backup or a directly attached
	// observer, one more per chained observer hop.
	Depth int
}

// newCertificate is the shared certificate constructor: every read path
// funnels through it so the clamping and field semantics exist exactly
// once. value must already be the caller's private copy.
func newCertificate(value []byte, version, now time.Time, bound time.Duration, mode ObjectMode, theta time.Duration, depth int) Certificate {
	age := now.Sub(version)
	if age < 0 {
		age = 0
	}
	if theta < 0 {
		theta = 0
	}
	return Certificate{
		Value:   value,
		Version: version,
		Age:     age,
		Bound:   bound,
		Mode:    mode,
		Theta:   theta,
		Depth:   depth,
	}
}

// Fresh reports whether the certificate proves its bound: the image's
// age plus the admitted clock uncertainty still fits inside the
// mode-effective bound. A certificate with no bound — a shed object, or
// one registered without δ_B — proves nothing and is never fresh;
// neither is one whose chain uncertainty is unknown (UnknownTheta).
func (c Certificate) Fresh() bool {
	return c.Bound > 0 && c.Age+c.Theta <= c.Bound
}

// Fields renders the certificate's wire-visible staleness fields in the
// canonical form the ctl READ verbs and the gateway EVENT stream share:
// `age=… delta=… mode=… theta=… depth=…`.
func (c Certificate) Fields() string {
	return fmt.Sprintf("age=%v delta=%v mode=%s theta=%v depth=%d",
		c.Age, c.Bound, c.Mode, c.Theta, c.Depth)
}

// chainTheta is the clock uncertainty this replica must admit to on
// every certificate it serves: nothing on a primary (readers get the
// writer's own clock), the local estimator's θ on a shadowing replica,
// plus — on an observer — everything its upstream chain admitted to.
// Clock sync enabled but not yet converged reports UnknownTheta: honest
// suspension, never a silent zero.
func (r *Replica) chainTheta() time.Duration {
	if r.role == RolePrimary {
		return 0
	}
	var theta time.Duration
	if r.csync != nil {
		if th, ok := r.csync.Theta(r.clk.Now()); ok {
			theta = th
		} else {
			theta = UnknownTheta
		}
	}
	if r.role == RoleObserver {
		theta += r.upstreamTheta
	}
	return theta
}

// chainDepth is this replica's hop count from the serving primary: 0
// serving, 1 shadowing, upstream's advertised depth plus one observing
// (the upstream is presumed to be the primary until its first
// ChainStatus says otherwise).
func (r *Replica) chainDepth() int {
	switch r.role {
	case RolePrimary:
		return 0
	case RoleObserver:
		return int(r.upstreamDepth) + 1
	default:
		return 1
	}
}

// ChainDepth reports the replica's current hop distance from the
// serving primary (see chainDepth) — status surfaces render it.
func (r *Replica) ChainDepth() int { return r.chainDepth() }

// ChainTheta reports the accumulated clock uncertainty the replica
// stamps on certificates (see chainTheta).
func (r *Replica) ChainTheta() time.Duration { return r.chainTheta() }
