package core

import (
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/cpu"
	"rtpb/internal/temporal"
	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// replicaPeer is the primary's bookkeeping for one backup replica. The
// paper's prototype uses a single backup; supporting several is listed as
// future work and implemented here: updates and state transfers are
// broadcast to every live peer, registrations and heartbeats are tracked
// per peer.
type replicaPeer struct {
	addr       xkernel.Addr
	sess       xkernel.Session
	alive      bool
	pingSeq    uint64
	registered map[uint32]bool
}

// Primary is the RTPB primary replica: it services client writes,
// enforces admission control, and schedules decoupled update
// transmissions to its backups. All methods must be called on the clock
// executor (callbacks, or Post for external goroutines), matching the
// serial execution model of the protocol graph.
type Primary struct {
	cfg  Config
	clk  clock.Clock
	proc *cpu.Resource
	adm  *admission
	port *xkernel.PortProtocol

	peers   []*replicaPeer
	running bool
	epoch   uint32

	pumpActive bool
	pumpOrder  []uint32
	pumpNext   int

	// OnSend, when set, observes every update transmission (after the
	// CPU cost, at the instant the datagram enters the network). With
	// multiple backups it fires once per transmission, not per peer.
	OnSend func(objectID uint32, name string, seq uint64, version time.Time)
	// OnClientDone, when set, observes every completed client write with
	// its response time.
	OnClientDone func(name string, latency time.Duration)
	// OnRetransmitRequest, when set, observes backup retransmission
	// requests.
	OnRetransmitRequest func(objectID uint32)
	// OnPingAck, when set, receives heartbeat acknowledgements from any
	// peer (single-backup deployments).
	OnPingAck func(seq uint64)
	// OnPingAckFrom, when set, receives heartbeat acknowledgements with
	// the responding peer's address (multi-backup deployments).
	OnPingAckFrom func(from xkernel.Addr, seq uint64)
	// OnPing, when set, observes inbound pings (an ack is always sent).
	OnPing func(seq uint64)
	// OnStateTransferAck, when set, observes a backup's state-transfer
	// acknowledgement.
	OnStateTransferAck func(epoch uint32, objects int)
}

var _ xkernel.Upper = (*Primary)(nil)

// NewPrimary builds a primary replica and enables it on the port
// protocol's RTPB port.
func NewPrimary(cfg Config) (*Primary, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	p := &Primary{
		cfg:     cfg,
		clk:     cfg.Clock,
		proc:    cpu.New(cfg.Clock),
		port:    cfg.Port,
		running: true,
		epoch:   1,
	}
	p.adm = newAdmission(&p.cfg)
	if err := cfg.Port.EnablePort(cfg.LocalPort, p); err != nil {
		return nil, err
	}
	for _, addr := range cfg.Peers {
		if err := p.addPeerLocked(addr); err != nil {
			p.Stop()
			return nil, err
		}
	}
	return p, nil
}

func (p *Primary) addPeerLocked(addr xkernel.Addr) error {
	for _, pr := range p.peers {
		if pr.addr == addr {
			return fmt.Errorf("core: peer %s already attached", addr)
		}
	}
	sess, err := p.port.OpenFrom(p.cfg.LocalPort, addr)
	if err != nil {
		return fmt.Errorf("core: open backup session to %s: %w", addr, err)
	}
	p.peers = append(p.peers, &replicaPeer{
		addr:       addr,
		sess:       sess,
		alive:      true,
		registered: make(map[uint32]bool),
	})
	return nil
}

// Stop cancels every periodic task and releases the port binding.
func (p *Primary) Stop() {
	if !p.running {
		return
	}
	p.running = false
	for _, o := range p.adm.objects {
		if o.task != nil {
			o.task.Stop()
		}
	}
	p.port.DisablePort(p.cfg.LocalPort)
	for _, pr := range p.peers {
		pr.sess.Close()
	}
}

// Running reports whether the primary is serving.
func (p *Primary) Running() bool { return p.running }

// Epoch reports the primary's current epoch (incremented by failovers).
func (p *Primary) Epoch() uint32 { return p.epoch }

// SetEpoch installs the epoch a promoted replica inherited.
func (p *Primary) SetEpoch(e uint32) { p.epoch = e }

// Utilization reports the admitted task set's planned CPU utilization.
func (p *Primary) Utilization() float64 { return p.adm.utilization() }

// Objects reports the number of admitted objects.
func (p *Primary) Objects() int { return len(p.adm.objects) }

// Peers reports the attached backup addresses.
func (p *Primary) Peers() []xkernel.Addr {
	out := make([]xkernel.Addr, len(p.peers))
	for i, pr := range p.peers {
		out[i] = pr.addr
	}
	return out
}

// CPU exposes the primary's processor model (for experiment probes).
func (p *Primary) CPU() *cpu.Resource { return p.proc }

// Register runs admission control for spec (Section 4.2). On acceptance
// the object's update task is scheduled and the registration is forwarded
// to every backup (with bounded retries) so they can reserve space.
func (p *Primary) Register(spec ObjectSpec) Decision {
	if !p.running {
		return Decision{Accepted: false, Reason: ErrStopped.Error()}
	}
	o, d := p.adm.admit(spec)
	if !d.Accepted {
		return d
	}
	p.startUpdateTask(o)
	if p.cfg.SchedTest == SchedTestDCS {
		// S_r specialization may have re-assigned other objects' periods.
		for _, other := range p.adm.objects {
			p.retimeUpdateTask(other)
		}
	}
	for _, pr := range p.peers {
		p.forwardRegistration(pr, o, p.cfg.RegisterRetries)
	}
	return d
}

// RegisterInterObject admits an inter-object temporal constraint between
// two registered objects, tightening their update tasks as needed
// (Section 3 / Section 4.2).
func (p *Primary) RegisterInterObject(c temporal.InterObjectConstraint) (Decision, error) {
	if !p.running {
		return Decision{Accepted: false, Reason: ErrStopped.Error()}, ErrStopped
	}
	d, err := p.adm.admitInterObject(c)
	if err != nil {
		return d, err
	}
	// Tightened (and possibly re-specialized) periods take effect on the
	// running tasks.
	if p.cfg.SchedTest == SchedTestDCS {
		for _, o := range p.adm.objects {
			p.retimeUpdateTask(o)
		}
	} else {
		for _, name := range []string{c.I, c.J} {
			if o, err := p.adm.byNameOrErr(name); err == nil {
				p.retimeUpdateTask(o)
			}
		}
	}
	return d, nil
}

func (p *Primary) startUpdateTask(o *object) {
	switch p.cfg.Scheduling {
	case ScheduleCompressed:
		p.pumpOrder = append(p.pumpOrder, o.id)
		return
	case ScheduleWriteThrough:
		return // transmissions ride on client writes
	}
	// Spread initial offsets implicitly: the task starts one period out.
	o.task = clock.NewPeriodic(p.clk, o.updatePeriod, o.updatePeriod, func() {
		p.transmit(o, cpu.Low)
	})
}

func (p *Primary) retimeUpdateTask(o *object) {
	if o.task != nil {
		o.task.SetPeriod(o.updatePeriod)
	}
}

// forwardRegistration sends the object's registration to one backup and
// retries until that backup's RegisterReply arrives or retries are
// exhausted.
func (p *Primary) forwardRegistration(pr *replicaPeer, o *object, retriesLeft int) {
	if pr.registered[o.id] || retriesLeft <= 0 || !p.running {
		return
	}
	p.sendTo(pr, &wire.Register{
		Epoch:    p.epoch,
		ObjectID: o.id,
		Name:     o.spec.Name,
		Size:     uint32(o.spec.Size),
		Period:   o.spec.UpdatePeriod,
		DeltaP:   o.spec.Constraint.DeltaP,
		DeltaB:   o.spec.Constraint.DeltaB,
	})
	p.clk.Schedule(p.cfg.RegisterTimeout, func() {
		p.forwardRegistration(pr, o, retriesLeft-1)
	})
}

// ClientWrite services one client write: the value is installed after the
// CPU cost of the operation, and done (optional) observes the response
// time. The version timestamp is the write's arrival instant — the moment
// the client sampled the external world.
func (p *Primary) ClientWrite(name string, data []byte, done func(latency time.Duration, err error)) {
	finish := func(lat time.Duration, err error) {
		if done != nil {
			done(lat, err)
		}
	}
	if !p.running {
		finish(0, ErrStopped)
		return
	}
	o, err := p.adm.byNameOrErr(name)
	if err != nil {
		finish(0, err)
		return
	}
	arrival := p.clk.Now()
	value := make([]byte, len(data))
	copy(value, data)
	// Client writes share the FIFO low-priority class with update
	// transmissions: on an overloaded, admission-control-disabled primary
	// the growing update backlog is exactly what degrades client response
	// time (the Figure 7 effect). The high-priority class is reserved for
	// loss recovery.
	p.proc.Submit(cpu.Low, p.cfg.Costs.clientCost(len(data)), func() {
		o.value = value
		o.version = arrival
		o.hasData = true
		if o.spec.Critical {
			// Hybrid path: the response waits for backup acknowledgement
			// (startCriticalWrite completes the callback).
			p.startCriticalWrite(o, arrival, func(lat time.Duration, err error) {
				if err == nil && p.OnClientDone != nil {
					p.OnClientDone(name, lat)
				}
				finish(lat, err)
			})
			p.maybeStartPump()
			return
		}
		lat := p.clk.Now().Sub(arrival)
		if p.OnClientDone != nil {
			p.OnClientDone(name, lat)
		}
		finish(lat, nil)
		if p.cfg.Scheduling == ScheduleWriteThrough {
			p.transmit(o, cpu.Low)
		}
		p.maybeStartPump()
	})
}

// anyPeerAlive reports whether at least one backup is believed alive.
func (p *Primary) anyPeerAlive() bool {
	for _, pr := range p.peers {
		if pr.alive {
			return true
		}
	}
	return false
}

// transmit queues one update transmission for the object on the CPU and
// sends it when the CPU grants the time. Retransmissions requested by a
// backup run in the high-priority class so loss recovery is not delayed
// by the regular update backlog.
func (p *Primary) transmit(o *object, prio cpu.Priority) {
	if !p.running || !o.hasData || !p.anyPeerAlive() {
		return
	}
	p.proc.Submit(prio, p.cfg.Costs.sendCost(len(o.value)), func() {
		p.sendUpdateNow(o)
	})
}

// sendUpdateNow emits the update datagram carrying the object's current
// state to every live backup; it must run after the CPU cost has been
// paid.
func (p *Primary) sendUpdateNow(o *object) {
	if !p.running || !o.hasData || !p.anyPeerAlive() {
		return
	}
	o.seq++
	o.lastSentSeq = o.seq
	o.lastSentVersion = o.version
	p.broadcast(&wire.Update{
		Epoch:    p.epoch,
		ObjectID: o.id,
		Seq:      o.seq,
		Version:  o.version.UnixNano(),
		Payload:  o.value,
	})
	if p.OnSend != nil {
		p.OnSend(o.id, o.spec.Name, o.seq, o.version)
	}
}

// maybeStartPump starts the compressed-scheduling pump if it should run:
// compressed mode, data available, a backup alive.
func (p *Primary) maybeStartPump() {
	if p.cfg.Scheduling != ScheduleCompressed || p.pumpActive || !p.running || !p.anyPeerAlive() {
		return
	}
	p.pumpActive = true
	p.pumpStep()
}

// pumpStep transmits the next object in round-robin order and chains the
// following transmission — the "schedule as many updates as the resources
// allow" discipline of compressed scheduling.
func (p *Primary) pumpStep() {
	if !p.running || !p.anyPeerAlive() || p.cfg.Scheduling != ScheduleCompressed {
		p.pumpActive = false
		return
	}
	o := p.nextPumpObject()
	if o == nil {
		p.pumpActive = false
		return
	}
	p.proc.Submit(cpu.Low, p.cfg.Costs.sendCost(len(o.value)), func() {
		p.sendUpdateNow(o)
		p.pumpStep()
	})
}

func (p *Primary) nextPumpObject() *object {
	for tries := 0; tries < len(p.pumpOrder); tries++ {
		id := p.pumpOrder[p.pumpNext%len(p.pumpOrder)]
		p.pumpNext++
		if o, ok := p.adm.objects[id]; ok && o.hasData {
			return o
		}
	}
	return nil
}

// SetPeerAlive informs the primary of one backup's liveness (driven by a
// failure detector). Declaring a peer dead stops transmissions to it; a
// peer coming (back) alive receives a full state transfer (Section 4.4).
func (p *Primary) SetPeerAlive(addr xkernel.Addr, alive bool) {
	pr := p.peerByAddr(addr)
	if pr == nil || pr.alive == alive {
		return
	}
	pr.alive = alive
	if alive {
		p.sendStateTransferTo(pr)
		p.maybeStartPump()
	} else {
		// Do not hold critical writes hostage to a dead backup.
		p.dropPeerFromCriticalWaits(addr)
	}
}

// SetBackupAlive applies SetPeerAlive to every attached backup — the
// single-backup deployments of the paper use this form.
func (p *Primary) SetBackupAlive(alive bool) {
	for _, pr := range p.peers {
		p.SetPeerAlive(pr.addr, alive)
	}
}

// BackupAlive reports whether any backup is believed alive.
func (p *Primary) BackupAlive() bool { return p.anyPeerAlive() }

// PeerAlive reports the liveness of one attached backup.
func (p *Primary) PeerAlive(addr xkernel.Addr) bool {
	if pr := p.peerByAddr(addr); pr != nil {
		return pr.alive
	}
	return false
}

func (p *Primary) peerByAddr(addr xkernel.Addr) *replicaPeer {
	for _, pr := range p.peers {
		if pr.addr == addr {
			return pr
		}
	}
	return nil
}

// AddPeer attaches an additional backup replica: its session opens, all
// registrations are replayed to it, and a state transfer brings it
// current.
func (p *Primary) AddPeer(addr xkernel.Addr) error {
	if !p.running {
		return ErrStopped
	}
	if err := p.addPeerLocked(addr); err != nil {
		return err
	}
	pr := p.peers[len(p.peers)-1]
	for _, o := range p.adm.objects {
		p.forwardRegistration(pr, o, p.cfg.RegisterRetries)
	}
	p.sendStateTransferTo(pr)
	p.maybeStartPump()
	return nil
}

// RemovePeer detaches a backup replica (e.g. one that failed
// permanently).
func (p *Primary) RemovePeer(addr xkernel.Addr) {
	for i, pr := range p.peers {
		if pr.addr == addr {
			pr.sess.Close()
			p.peers = append(p.peers[:i], p.peers[i+1:]...)
			return
		}
	}
}

// SetPeer replaces the entire peer set with one new backup (used by the
// single-backup failover path when recruiting a replacement).
func (p *Primary) SetPeer(peer xkernel.Addr) error {
	if !p.running {
		return ErrStopped
	}
	old := p.peers
	p.peers = nil
	if err := p.addPeerLocked(peer); err != nil {
		p.peers = old
		return err
	}
	for _, pr := range old {
		pr.sess.Close()
	}
	pr := p.peers[0]
	for _, o := range p.adm.objects {
		p.forwardRegistration(pr, o, p.cfg.RegisterRetries)
	}
	p.sendStateTransferTo(pr)
	p.maybeStartPump()
	return nil
}

// SendStateTransfer pushes the full object table to every live backup.
func (p *Primary) SendStateTransfer() {
	for _, pr := range p.peers {
		if pr.alive {
			p.sendStateTransferTo(pr)
		}
	}
}

func (p *Primary) sendStateTransferTo(pr *replicaPeer) {
	st := &wire.StateTransfer{Epoch: p.epoch}
	for _, o := range p.adm.objects {
		if !o.hasData {
			continue
		}
		st.Entries = append(st.Entries, wire.StateEntry{
			ObjectID: o.id,
			Seq:      o.seq,
			Version:  o.version.UnixNano(),
			Payload:  o.value,
		})
	}
	p.sendTo(pr, st)
}

// SendPing emits one heartbeat to the first attached backup and returns
// its sequence number (the single-backup form used by the paper's
// deployment; multi-backup deployments use SendPingTo per peer).
func (p *Primary) SendPing() uint64 {
	if len(p.peers) == 0 {
		return 0
	}
	seq, _ := p.SendPingTo(p.peers[0].addr)
	return seq
}

// SendPingTo emits one heartbeat to the named backup and returns its
// per-peer sequence number.
func (p *Primary) SendPingTo(addr xkernel.Addr) (uint64, error) {
	pr := p.peerByAddr(addr)
	if pr == nil {
		return 0, fmt.Errorf("core: no peer %s", addr)
	}
	pr.pingSeq++
	p.sendTo(pr, &wire.Ping{Seq: pr.pingSeq, From: wire.RolePrimary})
	return pr.pingSeq, nil
}

// Demux implements xkernel.Upper: inbound RTPB datagrams from the port
// protocol.
func (p *Primary) Demux(m *xkernel.Message, from xkernel.Addr) error {
	msg, err := wire.Decode(m.Bytes())
	if err != nil {
		return err // malformed datagram: drop
	}
	switch t := msg.(type) {
	case *wire.RetransmitRequest:
		if p.OnRetransmitRequest != nil {
			p.OnRetransmitRequest(t.ObjectID)
		}
		if o, ok := p.adm.objects[t.ObjectID]; ok {
			p.transmit(o, cpu.High)
		}
	case *wire.RegisterReply:
		if pr := p.peerByAddr(from); pr != nil && t.Accepted {
			pr.registered[t.ObjectID] = true
		}
	case *wire.Ping:
		if p.OnPing != nil {
			p.OnPing(t.Seq)
		}
		p.replyTo(from, &wire.PingAck{Seq: t.Seq, From: wire.RolePrimary})
	case *wire.PingAck:
		if p.OnPingAck != nil {
			p.OnPingAck(t.Seq)
		}
		if p.OnPingAckFrom != nil {
			p.OnPingAckFrom(from, t.Seq)
		}
	case *wire.StateTransferAck:
		if p.OnStateTransferAck != nil {
			p.OnStateTransferAck(t.Epoch, int(t.Objects))
		}
	case *wire.UpdateAck:
		p.handleUpdateAck(from, t)
	}
	return nil
}

// broadcast sends a message to every live peer.
func (p *Primary) broadcast(msg wire.Message) {
	encoded := wire.Encode(msg)
	for _, pr := range p.peers {
		if pr.alive {
			_ = pr.sess.Push(xkernel.NewMessage(encoded))
		}
	}
}

// sendTo sends a message to one peer regardless of its liveness mark
// (registration retries and recruitment probes must reach a peer we have
// not heard from yet).
func (p *Primary) sendTo(pr *replicaPeer, msg wire.Message) {
	_ = pr.sess.Push(xkernel.NewMessage(wire.Encode(msg)))
}

// replyTo answers a sender that may not be an attached peer (e.g. a ping
// from a replica probing us).
func (p *Primary) replyTo(addr xkernel.Addr, msg wire.Message) {
	if pr := p.peerByAddr(addr); pr != nil {
		p.sendTo(pr, msg)
		return
	}
	sess, err := p.port.OpenFrom(p.cfg.LocalPort, addr)
	if err != nil {
		return
	}
	defer sess.Close()
	_ = sess.Push(xkernel.NewMessage(wire.Encode(msg)))
}

// Value returns the primary's current copy of an object.
func (p *Primary) Value(name string) (data []byte, version time.Time, ok bool) {
	o, err := p.adm.byNameOrErr(name)
	if err != nil || !o.hasData {
		return nil, time.Time{}, false
	}
	cp := make([]byte, len(o.value))
	copy(cp, o.value)
	return cp, o.version, true
}

// Spec returns the registered spec for an object name.
func (p *Primary) Spec(name string) (ObjectSpec, bool) {
	o, err := p.adm.byNameOrErr(name)
	if err != nil {
		return ObjectSpec{}, false
	}
	return o.spec, true
}

// UpdatePeriod reports the admitted backup-update period r_i of an
// object.
func (p *Primary) UpdatePeriod(name string) (time.Duration, bool) {
	o, err := p.adm.byNameOrErr(name)
	if err != nil {
		return 0, false
	}
	return o.updatePeriod, true
}
