package core

import (
	"fmt"
	"hash/fnv"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/cpu"
	"rtpb/internal/resilience"
	"rtpb/internal/temporal"
	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// replicaPeer is the primary's bookkeeping for one backup replica. The
// paper's prototype uses a single backup; supporting several is listed as
// future work and implemented here: updates and state transfers are
// broadcast to every live peer, registrations and heartbeats are tracked
// per peer.
type replicaPeer struct {
	addr       xkernel.Addr
	sess       xkernel.Session
	alive      bool
	pingSeq    uint64
	registered map[uint32]bool
	// observer marks a read-only subscriber: it receives the full update
	// stream and the anti-entropy exchange but never counts toward
	// quorums, critical-write waits, or the replication degree.
	observer bool

	// est tracks the link's RTT and loss rate from heartbeat and update
	// acks; every retry path toward this peer derives its timeout from it.
	est *resilience.Estimator
	// backoff spaces this peer's retransmissions with deterministic
	// jitter (seeded from the peer address, never the wall clock).
	backoff *resilience.Backoff
	// pingSent maps outstanding heartbeat sequence numbers to their send
	// instants for RTT sampling; pings overtaken by a newer ack count as
	// losses.
	pingSent map[uint64]time.Time
	// queue is the peer's bounded pending-update queue (normal
	// scheduling).
	queue *sendQueue
	// frame is the peer's reusable datagram builder: each transmission
	// slot's batch of updates for this peer is framed into it and flushed
	// as one datagram. Long-lived per peer so steady-state flushes do not
	// allocate.
	frame *wire.FrameBuilder

	// State-transfer reliability: the last transfer pushed to this peer
	// is retried on the adaptive timer until its ack arrives.
	stAwaiting bool
	stAttempt  int
	stRetry    *clock.Event

	// Chunked join/anti-entropy exchange state (transfer.go). A syncing
	// peer receives live updates but does not count toward critical-write
	// quorums or the reported replication degree until its exchange
	// completes.
	syncing     bool
	joinRetry   *clock.Event
	joinAttempt int
	xferGen     uint32
	xferChunk   uint32
	xferPending []uint32
	xferIDs     []uint32
	xferEntries int
	xferTotal   int
	xferRetry   *clock.Event
	xferAttempt int
	xferSentAt  time.Time
	xferRetrans bool
	xferActive  bool
	xfer        TransferStats
}

// linkSeed derives a stable jitter seed for a peer from its address, so
// simulation replays are byte-identical while distinct peers still draw
// distinct jitter streams.
func linkSeed(local uint16, addr xkernel.Addr) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", local, addr)
	return h.Sum64()
}

func (p *Primary) addPeerLocked(addr xkernel.Addr) error {
	for _, pr := range p.peers {
		if pr.addr == addr {
			return fmt.Errorf("core: peer %s already attached", addr)
		}
	}
	sess, err := p.port.OpenFrom(p.cfg.LocalPort, addr)
	if err != nil {
		return fmt.Errorf("core: open backup session to %s: %w", addr, err)
	}
	seed := linkSeed(p.cfg.LocalPort, addr)
	backoff := resilience.NewBackoff(seed)
	backoff.Cap = p.cfg.RetryCeiling
	p.peers = append(p.peers, &replicaPeer{
		addr:       addr,
		sess:       sess,
		alive:      true,
		registered: make(map[uint32]bool),
		est: resilience.NewEstimator(resilience.EstimatorConfig{
			InitialRTO: max(p.cfg.RegisterTimeout, p.cfg.CriticalAckTimeout),
			MinRTO:     max(2*p.cfg.Ell, 2*time.Millisecond),
			MaxRTO:     p.cfg.RetryCeiling,
		}),
		backoff:  backoff,
		pingSent: make(map[uint64]time.Time),
		queue:    newSendQueue(p.cfg.SendQueueLimit),
		frame:    wire.NewFrameBuilder(),
	})
	return nil
}

// retryDelay is the adaptive retransmission delay toward one peer for the
// given zero-based attempt: the link estimator's RTO under capped
// exponential backoff with deterministic jitter. Before any RTT sample
// the RTO equals the protocol's static timeout, so adaptivity only
// changes behaviour once evidence exists.
func (p *Primary) retryDelay(pr *replicaPeer, attempt int) time.Duration {
	return pr.backoff.DelayFrom(pr.est.RTO(), attempt)
}

// Utilization reports the admitted task set's planned CPU utilization.
func (p *Primary) Utilization() float64 { return p.adm.utilization() }

// UtilizationWith reports the planned CPU utilization were spec admitted
// on top of the current table, without admitting it. The shard placement
// layer uses it as its bin-packing estimate; ok is false when no
// positive update period can be derived for the spec.
func (p *Primary) UtilizationWith(spec ObjectSpec) (float64, bool) {
	return p.adm.utilizationWith(spec)
}

// Peers reports the attached backup addresses.
func (p *Primary) Peers() []xkernel.Addr {
	out := make([]xkernel.Addr, len(p.peers))
	for i, pr := range p.peers {
		out[i] = pr.addr
	}
	return out
}

// CPU exposes the primary's processor model (for experiment probes).
func (p *Primary) CPU() *cpu.Resource { return p.proc }

// Register runs admission control for spec (Section 4.2). On acceptance
// the object's update task is scheduled and the registration is forwarded
// to every backup (with bounded retries) so they can reserve space.
func (p *Primary) Register(spec ObjectSpec) Decision {
	if !p.running {
		return Decision{Accepted: false, Reason: ErrStopped.Error()}
	}
	if p.role != RolePrimary {
		return Decision{Accepted: false, Reason: ErrNotPrimary.Error()}
	}
	o, d := p.adm.admit(spec)
	if !d.Accepted {
		return d
	}
	p.logSpec(o)
	p.startUpdateTask(o)
	if p.cfg.SchedTest == SchedTestDCS {
		// S_r specialization may have re-assigned other objects' periods.
		for _, other := range p.adm.objects {
			p.retimeUpdateTask(other)
		}
	}
	for _, pr := range p.peers {
		p.forwardRegistration(pr, o, p.cfg.RegisterRetries)
	}
	return d
}

// RegisterInterObject admits an inter-object temporal constraint between
// two registered objects, tightening their update tasks as needed
// (Section 3 / Section 4.2).
func (p *Primary) RegisterInterObject(c temporal.InterObjectConstraint) (Decision, error) {
	if !p.running {
		return Decision{Accepted: false, Reason: ErrStopped.Error()}, ErrStopped
	}
	if p.role != RolePrimary {
		return Decision{Accepted: false, Reason: ErrNotPrimary.Error()}, ErrNotPrimary
	}
	d, err := p.adm.admitInterObject(c)
	if err != nil {
		return d, err
	}
	// Tightened (and possibly re-specialized) periods take effect on the
	// running tasks.
	if p.cfg.SchedTest == SchedTestDCS {
		for _, o := range p.adm.objects {
			p.retimeUpdateTask(o)
		}
	} else {
		for _, name := range []string{c.I, c.J} {
			if o, err := p.adm.byNameOrErr(name); err == nil {
				p.retimeUpdateTask(o)
			}
		}
	}
	return d, nil
}

func (p *Primary) startUpdateTask(o *object) {
	switch p.cfg.Scheduling {
	case ScheduleCompressed:
		p.pumpOrder = append(p.pumpOrder, o.id)
		return
	case ScheduleWriteThrough:
		return // transmissions ride on client writes
	}
	// Spread initial offsets implicitly: the task starts one period out.
	o.task = clock.NewPeriodic(p.clk, o.updatePeriod, o.updatePeriod, func() {
		p.transmit(o, cpu.Low)
	})
}

func (p *Primary) retimeUpdateTask(o *object) {
	if o.task == nil {
		return
	}
	period := o.updatePeriod
	if p.gov != nil {
		period = p.gov.periodFor(o, p.gov.mode(o.id))
	}
	o.task.SetPeriod(period)
}

// forwardRegistration sends the object's registration to one backup and
// retries until that backup's RegisterReply arrives or retries are
// exhausted.
func (p *Primary) forwardRegistration(pr *replicaPeer, o *object, retriesLeft int) {
	if pr.registered[o.id] || retriesLeft <= 0 || !p.running {
		return
	}
	p.sendTo(pr, &wire.Register{
		Epoch:    p.epoch,
		ObjectID: o.id,
		Name:     o.spec.Name,
		Size:     uint32(o.spec.Size),
		Period:   o.spec.UpdatePeriod,
		DeltaP:   o.spec.Constraint.DeltaP,
		DeltaB:   o.spec.Constraint.DeltaB,
	})
	attempt := p.cfg.RegisterRetries - retriesLeft
	p.clk.Schedule(p.retryDelay(pr, attempt), func() {
		if p.peerByAddr(pr.addr) != pr {
			return // peer set replaced while the retry was pending
		}
		p.forwardRegistration(pr, o, retriesLeft-1)
	})
}

// ClientWrite services one client write: the value is installed after the
// CPU cost of the operation, and done (optional) observes the response
// time. The version timestamp is the write's arrival instant — the moment
// the client sampled the external world.
func (p *Primary) ClientWrite(name string, data []byte, done func(latency time.Duration, err error)) {
	finish := func(lat time.Duration, err error) {
		if done != nil {
			done(lat, err)
		}
	}
	if !p.running {
		finish(0, ErrStopped)
		return
	}
	if p.role != RolePrimary {
		finish(0, ErrNotPrimary)
		return
	}
	o, err := p.adm.byNameOrErr(name)
	if err != nil {
		finish(0, err)
		return
	}
	arrival := p.clk.Now()
	value := make([]byte, len(data))
	copy(value, data)
	// Client writes share the FIFO low-priority class with update
	// transmissions: on an overloaded, admission-control-disabled primary
	// the growing update backlog is exactly what degrades client response
	// time (the Figure 7 effect). The high-priority class is reserved for
	// loss recovery.
	p.proc.Submit(cpu.Low, p.cfg.Costs.clientCost(len(data)), func() {
		o.value = value
		o.version = arrival
		o.hasData = true
		// The write-ahead append is enqueue-only: the client response
		// never waits on disk (durability is off the paper-critical
		// path; the temporal bounds are about staleness, not loss).
		p.logApply(o, p.epoch, o.lastSentSeq, arrival, value)
		if o.spec.Critical {
			// Hybrid path: the response waits for backup acknowledgement
			// (startCriticalWrite completes the callback).
			p.startCriticalWrite(o, arrival, func(lat time.Duration, err error) {
				if err == nil && p.OnClientDone != nil {
					p.OnClientDone(name, lat)
				}
				finish(lat, err)
			})
			p.maybeStartPump()
			return
		}
		lat := p.clk.Now().Sub(arrival)
		if p.OnClientDone != nil {
			p.OnClientDone(name, lat)
		}
		finish(lat, nil)
		if p.cfg.Scheduling == ScheduleWriteThrough {
			p.transmit(o, cpu.Low)
		}
		p.maybeStartPump()
	})
}

// anyPeerAlive reports whether at least one backup is believed alive.
func (p *Primary) anyPeerAlive() bool {
	for _, pr := range p.peers {
		if pr.alive {
			return true
		}
	}
	return false
}

// transmit queues one update transmission for the object and sends it
// when the CPU grants the time. Retransmissions requested by a backup run
// in the high-priority class (single-flight per object) so loss recovery
// is not delayed by the regular update backlog; regular transmissions go
// through the bounded per-peer send queues unless the queue bound is
// disabled.
func (p *Primary) transmit(o *object, prio cpu.Priority) {
	if !p.running || p.role != RolePrimary || !o.hasData || !p.anyPeerAlive() {
		return
	}
	if p.gov != nil && p.gov.shed(o.id) {
		return // the governor suspended this object's replication
	}
	if prio == cpu.High {
		if o.highPending {
			return // one recovery retransmission in flight is enough
		}
		o.highPending = true
		p.proc.Submit(cpu.High, p.cfg.Costs.sendCost(len(o.value)), func() {
			o.highPending = false
			p.sendUpdateNow(o)
		})
		return
	}
	if p.cfg.SendQueueLimit == UnboundedSendQueue {
		// Legacy unbounded buffering: every release queues its own CPU
		// work (the paper's prototype, and the Figure 7 overload mode).
		p.proc.Submit(cpu.Low, p.cfg.Costs.sendCost(len(o.value)), func() {
			p.sendUpdateNow(o)
		})
		return
	}
	queuedNew, attempted := false, false
	for _, pr := range p.peers {
		if !pr.alive {
			continue
		}
		attempted = true
		if !pr.queue.enqueue(o.id) {
			queuedNew = true
		}
	}
	if !attempted {
		return
	}
	if !queuedNew {
		// The previous release never reached the wire: a transmission
		// deadline miss, one of the governor's overload signals.
		p.deadlineMisses++
	}
	p.startDrain()
}

// startDrain kicks the send-queue drain pump if it is not already holding
// a CPU submission.
func (p *Primary) startDrain() {
	if p.drainActive || !p.running {
		return
	}
	p.drainActive = true
	p.drainStep()
}

// batchEntry is one object's coalesced transmission within a slot: the
// object and the peers whose queues held it.
type batchEntry struct {
	o       *object
	targets []*replicaPeer
}

// drainStep collects one transmission slot's batch — up to FrameBatch
// pending objects across the live peers' queues, in FIFO order — pays the
// batch's combined CPU send cost once, flushes one framed datagram per
// peer carrying every update bound for it, and chains the next step. One
// submission is outstanding at a time, so client writes arriving
// meanwhile interleave fairly in the low-priority FIFO instead of waiting
// behind a pre-queued backlog.
func (p *Primary) drainStep() {
	if !p.running || p.role != RolePrimary {
		p.drainActive = false
		return
	}
	entries, cost := p.collectBatch()
	if len(entries) == 0 {
		p.drainActive = false
		return
	}
	p.proc.Submit(cpu.Low, cost, func() {
		p.flushBatch(entries)
		p.drainStep()
	})
}

// collectBatch drains up to cfg.FrameBatch distinct objects (and at most
// ~cfg.FrameBytes of payload) from the live peers' queues. An object is
// removed from every queue that held it, so each slot transmits at most
// one update per object — the frame-level mirror of the send queue's
// coalescing invariant.
func (p *Primary) collectBatch() (entries []batchEntry, cost time.Duration) {
	frameBytes := 0
	for len(entries) < p.cfg.FrameBatch {
		var id uint32
		found := false
		for _, pr := range p.peers {
			if !pr.alive {
				continue
			}
			if h, ok := pr.queue.head(); ok {
				id, found = h, true
				break
			}
		}
		if !found {
			break
		}
		if o, ok := p.adm.objects[id]; ok && len(entries) > 0 && frameBytes+len(o.value) > p.cfg.FrameBytes {
			break // over the frame byte budget: the next slot takes it
		}
		var targets []*replicaPeer
		for _, pr := range p.peers {
			if pr.queue.remove(id) && pr.alive {
				targets = append(targets, pr)
			}
		}
		o, ok := p.adm.objects[id]
		if !ok || !o.hasData || len(targets) == 0 {
			continue
		}
		if len(entries) == 0 {
			cost = p.cfg.Costs.sendCost(len(o.value))
		} else {
			cost += p.cfg.Costs.marginalSendCost(len(o.value))
		}
		entries = append(entries, batchEntry{o: o, targets: targets})
		frameBytes += len(o.value)
	}
	return entries, cost
}

// flushBatch emits one transmission slot: each entry's current state is
// encoded once (append-style, into the replica's reused buffer — zero
// allocations in steady state) and framed into every target peer's
// builder, then each peer receives a single datagram carrying its whole
// batch. A builder holding exactly one message emits the bare unframed
// encoding, so single-update slots stay byte-identical to the pre-framing
// wire format. Must run after the batch's CPU cost has been paid.
func (p *Primary) flushBatch(entries []batchEntry) {
	if !p.running || p.role != RolePrimary {
		// A queued slot whose replica demoted while it waited must not
		// fire: bumping seq here would corrupt the backup-role fence.
		return
	}
	for _, pr := range p.peers {
		pr.frame.Reset()
	}
	p.encBuf = p.encBuf[:0]
	fired := entries[:0]
	for _, e := range entries {
		o := e.o
		if !o.hasData {
			continue
		}
		live := e.targets[:0]
		for _, pr := range e.targets {
			if pr.alive {
				live = append(live, pr)
			}
		}
		if len(live) == 0 {
			continue
		}
		o.seq++
		o.lastSentSeq = o.seq
		o.lastSentVersion = o.version
		o.lastSentAt = p.clk.Now()
		p.updMsg = wire.Update{
			Epoch:    p.epoch,
			ObjectID: o.id,
			Seq:      o.seq,
			Version:  o.version.UnixNano(),
			Payload:  o.value,
		}
		start := len(p.encBuf)
		p.encBuf = wire.AppendEncode(p.encBuf, &p.updMsg)
		for _, pr := range live {
			// AppendEncoded copies immediately, so a later growth of
			// encBuf cannot invalidate what the builders hold.
			pr.frame.AppendEncoded(p.encBuf[start:])
		}
		fired = append(fired, e)
	}
	for _, pr := range p.peers {
		if dg := pr.frame.Datagram(); dg != nil {
			_ = pr.sess.Push(xkernel.NewMessage(dg))
		}
	}
	if p.OnSend != nil {
		for _, e := range fired {
			p.OnSend(e.o.id, e.o.spec.Name, e.o.lastSentSeq, e.o.lastSentVersion)
		}
	}
}

// sendUpdateNow emits the update datagram carrying the object's current
// state to every live backup; it must run after the CPU cost has been
// paid.
func (p *Primary) sendUpdateNow(o *object) {
	p.sendUpdateTo(o, p.peers)
}

// sendUpdateTo emits the update to the given peers (skipping any that
// died since queuing); it must run after the CPU cost has been paid.
func (p *Primary) sendUpdateTo(o *object, targets []*replicaPeer) {
	if !p.running || p.role != RolePrimary || !o.hasData {
		// A queued send whose replica demoted while it waited must not
		// fire: bumping o.seq here would corrupt the backup-role fence.
		return
	}
	live := targets[:0:0]
	for _, pr := range targets {
		if pr.alive {
			live = append(live, pr)
		}
	}
	if len(live) == 0 {
		return
	}
	o.seq++
	o.lastSentSeq = o.seq
	o.lastSentVersion = o.version
	o.lastSentAt = p.clk.Now()
	p.updMsg = wire.Update{
		Epoch:    p.epoch,
		ObjectID: o.id,
		Seq:      o.seq,
		Version:  o.version.UnixNano(),
		Payload:  o.value,
	}
	// Append-encode into the reused buffer; NewMessage copies, so the
	// buffer is free again as soon as the pushes return.
	p.encBuf = wire.AppendEncode(p.encBuf[:0], &p.updMsg)
	for _, pr := range live {
		_ = pr.sess.Push(xkernel.NewMessage(p.encBuf))
	}
	if p.OnSend != nil {
		p.OnSend(o.id, o.spec.Name, o.seq, o.version)
	}
}

// maybeStartPump starts the compressed-scheduling pump if it should run:
// compressed mode, data available, a backup alive.
func (p *Primary) maybeStartPump() {
	if p.cfg.Scheduling != ScheduleCompressed || p.pumpActive || !p.running || p.role != RolePrimary || !p.anyPeerAlive() {
		return
	}
	p.pumpActive = true
	p.pumpStep()
}

// pumpStep transmits the next object in round-robin order and chains the
// following transmission — the "schedule as many updates as the resources
// allow" discipline of compressed scheduling.
func (p *Primary) pumpStep() {
	if !p.running || p.role != RolePrimary || !p.anyPeerAlive() || p.cfg.Scheduling != ScheduleCompressed {
		p.pumpActive = false
		return
	}
	o := p.nextPumpObject()
	if o == nil {
		p.pumpActive = false
		return
	}
	p.proc.Submit(cpu.Low, p.cfg.Costs.sendCost(len(o.value)), func() {
		p.sendUpdateNow(o)
		p.pumpStep()
	})
}

func (p *Primary) nextPumpObject() *object {
	for tries := 0; tries < len(p.pumpOrder); tries++ {
		id := p.pumpOrder[p.pumpNext%len(p.pumpOrder)]
		p.pumpNext++
		if p.gov != nil && p.gov.shed(id) {
			continue
		}
		if o, ok := p.adm.objects[id]; ok && o.hasData {
			return o
		}
	}
	return nil
}

// SetPeerAlive informs the primary of one backup's liveness (driven by a
// failure detector). Declaring a peer dead stops transmissions to it; a
// peer coming (back) alive is reintegrated through the chunked
// anti-entropy exchange (Section 4.4's recruitment, made resumable) and
// only counts toward quorums again once it completes.
func (p *Primary) SetPeerAlive(addr xkernel.Addr, alive bool) {
	pr := p.peerByAddr(addr)
	if pr == nil || pr.alive == alive {
		return
	}
	pr.alive = alive
	if alive {
		p.beginJoin(pr)
		p.maybeStartPump()
	} else {
		// Do not hold critical writes hostage to a dead backup, and drop
		// its queued transmissions and any in-flight exchange — the
		// reintegration transfer on revival supersedes them.
		p.dropPeerFromCriticalWaits(addr)
		pr.queue.clear()
		if pr.stRetry != nil {
			pr.stRetry.Cancel()
			pr.stRetry = nil
		}
		pr.stAwaiting = false
		p.cancelTransfer(pr)
	}
}

// SetBackupAlive applies SetPeerAlive to every attached backup — the
// single-backup deployments of the paper use this form.
func (p *Primary) SetBackupAlive(alive bool) {
	for _, pr := range p.peers {
		p.SetPeerAlive(pr.addr, alive)
	}
}

// BackupAlive reports whether any backup is believed alive and has
// completed its anti-entropy exchange — a peer still catching up holds
// arbitrarily stale state and is not counted as effective redundancy.
func (p *Primary) BackupAlive() bool { return p.SyncedPeers() > 0 }

// PeerAlive reports the liveness of one attached backup.
func (p *Primary) PeerAlive(addr xkernel.Addr) bool {
	if pr := p.peerByAddr(addr); pr != nil {
		return pr.alive
	}
	return false
}

func (p *Primary) peerByAddr(addr xkernel.Addr) *replicaPeer {
	for _, pr := range p.peers {
		if pr.addr == addr {
			return pr
		}
	}
	return nil
}

// AddPeer attaches an additional backup replica and drives it to parity
// through the chunked join exchange: the JoinAccept carries every
// object's spec, the peer's digest reports what it already holds, and
// chunks stream the rest. Until the exchange completes the peer is
// syncing and does not count toward quorums.
func (p *Primary) AddPeer(addr xkernel.Addr) error {
	if !p.running {
		return ErrStopped
	}
	if p.role != RolePrimary {
		return ErrNotPrimary
	}
	if err := p.addPeerLocked(addr); err != nil {
		return err
	}
	p.beginJoin(p.peers[len(p.peers)-1])
	p.maybeStartPump()
	return nil
}

// RemovePeer detaches a backup replica (e.g. one that failed
// permanently).
func (p *Primary) RemovePeer(addr xkernel.Addr) {
	for i, pr := range p.peers {
		if pr.addr == addr {
			if pr.stRetry != nil {
				pr.stRetry.Cancel()
				pr.stRetry = nil
			}
			p.cancelTransfer(pr)
			pr.sess.Close()
			p.peers = append(p.peers[:i], p.peers[i+1:]...)
			return
		}
	}
}

// SetPeer replaces the entire peer set with one new backup (used by the
// single-backup failover path when recruiting a replacement).
func (p *Primary) SetPeer(peer xkernel.Addr) error {
	if !p.running {
		return ErrStopped
	}
	if p.role != RolePrimary {
		return ErrNotPrimary
	}
	old := p.peers
	p.peers = nil
	if err := p.addPeerLocked(peer); err != nil {
		p.peers = old
		return err
	}
	for _, pr := range old {
		if pr.stRetry != nil {
			pr.stRetry.Cancel()
			pr.stRetry = nil
		}
		p.cancelTransfer(pr)
		pr.sess.Close()
	}
	p.beginJoin(p.peers[0])
	p.maybeStartPump()
	return nil
}

// SendStateTransfer pushes the full object table to every live backup.
func (p *Primary) SendStateTransfer() {
	for _, pr := range p.peers {
		if pr.alive {
			p.sendStateTransferTo(pr)
		}
	}
}

// sendStateTransferTo starts (or restarts) a reliable state transfer to
// one peer: the snapshot is pushed and retried on the adaptive timer until
// the peer's StateTransferAck arrives or retries run out. Retried
// snapshots are rebuilt fresh, and application is idempotent on the
// backup (supersedes() drops entries an interleaved update already beat).
func (p *Primary) sendStateTransferTo(pr *replicaPeer) {
	if pr.stRetry != nil {
		pr.stRetry.Cancel()
		pr.stRetry = nil
	}
	pr.stAttempt = 0
	p.pushStateTransfer(pr)
}

func (p *Primary) pushStateTransfer(pr *replicaPeer) {
	if !p.running || p.peerByAddr(pr.addr) != pr {
		return
	}
	st := &wire.StateTransfer{Epoch: p.epoch}
	for _, o := range p.adm.ordered() {
		if !o.hasData {
			continue
		}
		st.Entries = append(st.Entries, p.stateEntryFor(o))
	}
	pr.stAwaiting = true
	p.sendTo(pr, st)
	attempt := pr.stAttempt
	pr.stAttempt++
	if pr.stAttempt >= p.cfg.StateTransferRetries {
		return
	}
	pr.stRetry = p.clk.Schedule(p.retryDelay(pr, attempt), func() {
		pr.stRetry = nil
		if pr.stAwaiting && pr.alive {
			pr.est.SampleLoss()
			p.pushStateTransfer(pr)
		}
	})
}

// SendPingTo emits one heartbeat to the named backup and returns its
// per-peer sequence number.
func (p *Primary) SendPingTo(addr xkernel.Addr) (uint64, error) {
	pr := p.peerByAddr(addr)
	if pr == nil {
		return 0, fmt.Errorf("core: no peer %s", addr)
	}
	pr.pingSeq++
	pr.pingSent[pr.pingSeq] = p.clk.Now()
	if len(pr.pingSent) > 64 {
		for s := range pr.pingSent {
			if s+64 <= pr.pingSeq {
				delete(pr.pingSent, s)
			}
		}
	}
	p.sendTo(pr, &wire.Ping{Seq: pr.pingSeq, From: wire.RolePrimary})
	return pr.pingSeq, nil
}

// observePingAck feeds one heartbeat ack into the peer's link estimator:
// the answered ping yields an RTT sample, and any older pings still
// outstanding are counted as losses (either they or their acks vanished).
func (p *Primary) observePingAck(pr *replicaPeer, seq uint64) {
	sentAt, ok := pr.pingSent[seq]
	if !ok {
		return
	}
	delete(pr.pingSent, seq)
	p.sampleRTT(pr, sentAt)
	for s := range pr.pingSent {
		if s < seq {
			delete(pr.pingSent, s)
			pr.est.SampleLoss()
		}
	}
}

// sampleRTT feeds one measured round trip (now minus sentAt) into the
// peer's link estimator, guarding against hostile clocks: a backward
// step between send and ack makes the apparent RTT negative, and folding
// it in — even clamped to zero — would drag the smoothed RTT and every
// adaptive timeout derived from it toward a value this link never
// exhibited. Such an exchange counts as delivered with no usable RTT,
// Karn's rule extended to clock faults.
func (p *Primary) sampleRTT(pr *replicaPeer, sentAt time.Time) {
	if rtt := p.clk.Now().Sub(sentAt); rtt >= 0 {
		pr.est.SampleRTT(rtt)
	} else {
		pr.est.SampleAck()
	}
}

// demuxPrimary handles inbound RTPB datagrams while serving as primary.
func (p *Primary) demuxPrimary(msg wire.Message, from xkernel.Addr) {
	switch t := msg.(type) {
	case *wire.RetransmitRequest:
		if p.OnRetransmitRequest != nil {
			p.OnRetransmitRequest(t.ObjectID)
		}
		if o, ok := p.adm.objects[t.ObjectID]; ok {
			p.transmit(o, cpu.High)
		}
	case *wire.ModeChange:
		// Primaries govern, they are not governed; a ModeChange landing
		// here is a stale datagram from a previous role. Drop it.
	case *wire.RegisterReply:
		if pr := p.peerByAddr(from); pr != nil && t.Accepted {
			pr.registered[t.ObjectID] = true
		}
	case *wire.Ping:
		if p.OnPing != nil {
			p.OnPing(t.Seq)
		}
		p.replyTo(from, &wire.PingAck{Seq: t.Seq, From: wire.RolePrimary})
		if t.From == wire.RoleObserver {
			// An observer heartbeat doubles as a chain-position probe:
			// the primary is the root of every fan-out tree, so it
			// advertises depth 0 and no accumulated uncertainty.
			p.replyTo(from, &wire.ChainStatus{Epoch: p.epoch, Depth: 0, Theta: 0})
		}
	case *wire.TimeSync:
		if t.Receive == 0 && t.Transmit == 0 {
			// A backup's clock-sync probe: echo it with this node's
			// stamps (receive == transmit under the serial executor; the
			// estimator's rtt formula nets hold time out regardless).
			now := p.clk.Now().UnixNano()
			p.replyTo(from, &wire.TimeSync{Seq: t.Seq, From: wire.RolePrimary,
				Originate: t.Originate, Receive: now, Transmit: now})
		} else {
			// A late echo to a probe we sent while still shadowing.
			p.observeTimeSync(t)
		}
	case *wire.PingAck:
		if pr := p.peerByAddr(from); pr != nil {
			p.observePingAck(pr, t.Seq)
		}
		if p.OnPingAck != nil {
			p.OnPingAck(t.Seq)
		}
		if p.OnPingAckFrom != nil {
			p.OnPingAckFrom(from, t.Seq)
		}
	case *wire.StateTransferAck:
		if pr := p.peerByAddr(from); pr != nil && t.Epoch == p.epoch {
			pr.stAwaiting = false
			if pr.stRetry != nil {
				pr.stRetry.Cancel()
				pr.stRetry = nil
			}
		}
		if p.OnStateTransferAck != nil {
			p.OnStateTransferAck(t.Epoch, int(t.Objects))
		}
	case *wire.UpdateAck:
		p.handleUpdateAck(from, t)
	case *wire.JoinRequest:
		p.handleJoinRequest(from, t)
	case *wire.StateDigest:
		p.handleStateDigest(from, t)
	case *wire.StateChunkAck:
		p.handleStateChunkAck(from, t)
	}
}

// broadcast sends a message to every live peer.
func (p *Primary) broadcast(msg wire.Message) {
	encoded := wire.Encode(msg)
	for _, pr := range p.peers {
		if pr.alive {
			_ = pr.sess.Push(xkernel.NewMessage(encoded))
		}
	}
}

// sendTo sends a message to one peer regardless of its liveness mark
// (registration retries and recruitment probes must reach a peer we have
// not heard from yet).
func (p *Primary) sendTo(pr *replicaPeer, msg wire.Message) {
	_ = pr.sess.Push(xkernel.NewMessage(wire.Encode(msg)))
}

// replyTo answers a sender that may not be an attached peer (e.g. a ping
// from a replica probing us).
func (p *Primary) replyTo(addr xkernel.Addr, msg wire.Message) {
	if pr := p.peerByAddr(addr); pr != nil {
		p.sendTo(pr, msg)
		return
	}
	sess, err := p.port.OpenFrom(p.cfg.LocalPort, addr)
	if err != nil {
		return
	}
	defer sess.Close()
	_ = sess.Push(xkernel.NewMessage(wire.Encode(msg)))
}

// Spec returns the registered spec for an object name.
func (p *Primary) Spec(name string) (ObjectSpec, bool) {
	o, err := p.adm.byNameOrErr(name)
	if err != nil {
		return ObjectSpec{}, false
	}
	return o.spec, true
}

// UpdatePeriod reports the admitted backup-update period r_i of an
// object.
func (p *Primary) UpdatePeriod(name string) (time.Duration, bool) {
	o, err := p.adm.byNameOrErr(name)
	if err != nil {
		return 0, false
	}
	return o.updatePeriod, true
}

// Modes returns every admitted object's current degradation rung keyed by
// name.
func (p *Primary) Modes() map[string]ObjectMode {
	out := make(map[string]ObjectMode, len(p.adm.objects))
	for name, id := range p.adm.byName {
		if p.gov == nil {
			out[name] = ModeNormal
		} else {
			out[name] = p.gov.mode(id)
		}
	}
	return out
}

// GovernorStats reports the overload governor's ladder activity (zero on
// an ungoverned primary).
func (p *Primary) GovernorStats() GovernorStats {
	if p.gov == nil {
		return GovernorStats{}
	}
	return p.gov.stats
}

// PeerLinkStats describes the adaptive link state toward one backup.
type PeerLinkStats struct {
	// SRTT and RTO are the link estimator's smoothed round-trip time and
	// current retransmission timeout.
	SRTT time.Duration
	RTO  time.Duration
	// LossRate is the EWMA loss estimate in [0, 1].
	LossRate float64
	// Acks and Losses are the raw delivered/lost observation counts.
	Acks   uint64
	Losses uint64
	// QueueDepth is the peer's current pending-update queue depth.
	QueueDepth int
	// Queue holds the queue's lifetime counters.
	Queue SendQueueStats
}

// PeerLink reports the link estimator and send-queue state toward one
// attached backup.
func (p *Primary) PeerLink(addr xkernel.Addr) (PeerLinkStats, bool) {
	pr := p.peerByAddr(addr)
	if pr == nil {
		return PeerLinkStats{}, false
	}
	acks, losses := pr.est.Samples()
	return PeerLinkStats{
		SRTT:       pr.est.SRTT(),
		RTO:        pr.est.RTO(),
		LossRate:   pr.est.LossRate(),
		Acks:       acks,
		Losses:     losses,
		QueueDepth: pr.queue.depth(),
		Queue:      pr.queue.stats,
	}, true
}
