// Package core implements the paper's contribution: the Real-Time
// Primary-Backup (RTPB) replication protocol. A Primary accepts client
// writes, performs admission control on each object's temporal-consistency
// constraints (Section 4.2), and schedules decoupled update transmissions
// to a Backup (Section 4.3) so that external and inter-object temporal
// consistency hold at both replicas; a Backup applies updates, detects
// gaps, requests retransmissions, and can be promoted on primary failure
// (Section 4.4). Both are written as x-kernel anchor protocols over the
// port protocol, exactly like the paper's stack (Figure 5): RTPB → UDP →
// driver.
package core

import (
	"errors"
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/durable"
	"rtpb/internal/sched"
	"rtpb/internal/temporal"
	"rtpb/internal/xkernel"
)

// SchedulingMode selects how the primary schedules update transmissions.
type SchedulingMode int

const (
	// ScheduleNormal sends each object's update every
	// SlackFactor·(δ_i − ℓ), the paper's default with built-in slack for
	// message loss.
	ScheduleNormal SchedulingMode = iota + 1
	// ScheduleCompressed sends "as many updates to backup as the
	// resources allow" [Mehra et al.], cycling round-robin through the
	// admitted objects on the CPU's spare capacity.
	ScheduleCompressed
	// ScheduleWriteThrough transmits an update to the backup for every
	// client write, abandoning the paper's decoupling of client updates
	// from backup updates. It exists as an ablation baseline: it couples
	// the transmission load to the client write rate, which is exactly
	// what RTPB's decoupled scheduler avoids.
	ScheduleWriteThrough
)

// String returns the mode name.
func (m SchedulingMode) String() string {
	switch m {
	case ScheduleNormal:
		return "normal"
	case ScheduleCompressed:
		return "compressed"
	case ScheduleWriteThrough:
		return "write-through"
	default:
		return fmt.Sprintf("SchedulingMode(%d)", int(m))
	}
}

// RTPBPort is the well-known port the RTPB protocol is enabled on, the
// analogue of the paper's anchor-protocol demux key.
const RTPBPort uint16 = 7000

// CostModel maps protocol operations to processor time on the replica's
// CPU. The defaults approximate the paper's prototype scale: sub-
// millisecond client operations and update transmissions that grow with
// object size.
type CostModel struct {
	// ClientOp is the CPU cost of servicing one client write, excluding
	// the per-byte copy cost.
	ClientOp time.Duration
	// UpdateSend is the fixed CPU cost of transmitting one update.
	UpdateSend time.Duration
	// PerByte is the additional CPU cost per payload byte for both
	// client writes and update transmissions.
	PerByte time.Duration
}

// DefaultCosts returns the cost model used by the evaluation harness.
func DefaultCosts() CostModel {
	return CostModel{
		ClientOp:   200 * time.Microsecond,
		UpdateSend: 400 * time.Microsecond,
		PerByte:    2 * time.Nanosecond,
	}
}

// clientCost reports the CPU cost of a client write of size bytes.
func (c CostModel) clientCost(size int) time.Duration {
	return c.ClientOp + time.Duration(size)*c.PerByte
}

// sendCost reports the CPU cost of one update transmission of size bytes.
func (c CostModel) sendCost(size int) time.Duration {
	return c.UpdateSend + time.Duration(size)*c.PerByte
}

// marginalSendCost reports the CPU cost a framed batch pays for one
// message beyond its first: the per-byte copy only. The fixed UpdateSend
// component models per-datagram work (syscall, header, scheduling) that a
// frame pays once per slot, so batching amortizes it — the simulator's
// counterpart of the real stack's fewer-syscalls win. A one-message slot
// therefore costs exactly sendCost, identical to the unbatched path.
func (c CostModel) marginalSendCost(size int) time.Duration {
	return time.Duration(size) * c.PerByte
}

// Config configures a Primary or Backup replica.
type Config struct {
	// Clock drives all timers; required.
	Clock clock.Clock
	// Port is the port protocol the RTPB anchor protocol is enabled on;
	// required.
	Port *xkernel.PortProtocol
	// LocalPort is the port RTPB listens on; defaults to RTPBPort.
	LocalPort uint16
	// Peer is the other replica's address ("host:port"). For a primary
	// with multiple backups (the paper's future-work extension), list
	// them all in Peers instead (Peer, when set, is merged in).
	Peer xkernel.Addr
	// Peers are the backup replicas' addresses (primary only). Update
	// transmissions are broadcast to every live peer, and the admission
	// controller charges one transmission cost per peer.
	Peers []xkernel.Addr
	// Ell is ℓ, the upper bound on one-way communication delay between
	// the replicas; required for admission control.
	Ell time.Duration
	// SlackFactor scales the update period below the Theorem 5 maximum:
	// r_i = SlackFactor·(δ_i − ℓ). The paper uses 1/2 "so that the
	// primary can retransmit updates to compensate for message loss".
	// Defaults to 0.5; must be in (0, 1].
	SlackFactor float64
	// Scheduling selects normal or compressed update scheduling;
	// defaults to ScheduleNormal.
	Scheduling SchedulingMode
	// DisableAdmissionControl admits every object regardless of the
	// schedulability tests, reproducing the paper's "without admission
	// control" experiments (Figures 7 and 10).
	DisableAdmissionControl bool
	// Costs is the CPU cost model; zero value means DefaultCosts.
	Costs CostModel
	// SchedTest selects the schedulability test used at admission;
	// defaults to rate-monotonic response-time analysis, matching the
	// paper's use of the rate-monotonic algorithm.
	SchedTest SchedTest
	// RegisterRetries is how many times a registration forwarded to the
	// backup is retried without a reply before giving up; defaults to 5.
	RegisterRetries int
	// RegisterTimeout is the per-try reply timeout; defaults to 4·Ell or
	// 20ms, whichever is larger.
	RegisterTimeout time.Duration
	// DisableGapRecovery stops the backup from requesting retransmission
	// when it detects a sequence gap. It exists as an ablation baseline
	// for the paper's backup-initiated retransmission design (§4.3).
	DisableGapRecovery bool
	// DisableEpochFencing makes the backup apply updates without the
	// epoch checks of Section 4.4: stale-epoch messages are accepted and
	// ordering degrades to last-arrival-wins. It exists as an ablation
	// baseline so the chaos harness can demonstrate the split-brain
	// hazard the fencing prevents; never enable it in a deployment.
	DisableEpochFencing bool
	// CriticalAckTimeout is how long a critical write waits for backup
	// acknowledgements before retransmitting; defaults to 4·Ell or 20ms.
	// Once the per-peer link estimator has RTT samples, the adaptive
	// timeout (RTO with backoff) takes over, floored at the estimator's
	// minimum and capped at RetryCeiling.
	CriticalAckTimeout time.Duration
	// CriticalMaxRetries bounds retransmissions of a critical write
	// before it fails with ErrAckTimeout; defaults to 5.
	CriticalMaxRetries int
	// SendQueueLimit bounds each peer's pending-update queue under normal
	// scheduling. The queue holds object identifiers, one slot per object
	// (a newer write for a queued object coalesces into its slot: newest
	// state wins, which is correct for state — not operation — transfer);
	// when full, the oldest entry is dropped. Defaults to 64. Set
	// UnboundedSendQueue to restore the seed's unbounded CPU-queue
	// buffering, which the paper-faithful experiment harness uses to
	// reproduce the Figure 7 overload explosion.
	SendQueueLimit int
	// FrameBatch bounds how many pending object updates one transmission
	// slot drains into each peer's framed datagram (wire.Frame). The
	// decoupled transmission window makes coalescing semantically free —
	// only the freshest image per object matters per slot — so batching
	// trades nothing: the slot pays the same total CPU send cost but emits
	// one datagram per peer instead of one per object. Defaults to 16; 1
	// disables batching (every update rides its own datagram, the seed's
	// wire behaviour). Ignored under UnboundedSendQueue, which keeps the
	// legacy per-update CPU queueing for Figure 7/10 fidelity.
	FrameBatch int
	// FrameBytes soft-bounds the payload bytes one framed datagram
	// carries: a slot stops collecting once the next object would push the
	// frame past the budget (a single oversized object still goes alone).
	// Defaults to 48 KiB, comfortably under the 64 KiB UDP datagram limit
	// after frame and header overhead.
	FrameBytes int
	// RetryCeiling caps every adaptive retransmission backoff delay
	// (registration, state transfer, critical acks, gap recovery);
	// defaults to 1s.
	RetryCeiling time.Duration
	// StateTransferRetries bounds how often a state transfer to a peer is
	// retried without a StateTransferAck; defaults to 5. The same bound
	// applies per chunk of the chunked anti-entropy exchange: when one
	// chunk exhausts its retries the generation is abandoned and the
	// joiner's next digest resumes the transfer from whatever landed.
	StateTransferRetries int
	// ChunkEntries bounds how many objects one anti-entropy StateChunk
	// carries; defaults to 8. Together with ChunkBytes it keeps each
	// chunk's CPU cost and datagram size comparable to regular update
	// traffic, so a joining backup's catch-up cannot starve live
	// replication.
	ChunkEntries int
	// ChunkBytes bounds one StateChunk's total payload bytes (at least
	// one entry is always sent); defaults to 32 KiB.
	ChunkBytes int
	// SelfAddr is this replica's own replication address as peers should
	// dial it. It is advisory: a backup stamps it into JoinRequests so
	// logs and tooling can name the joiner, but the primary always trusts
	// the datagram's source address.
	SelfAddr xkernel.Addr
	// DisableRetransmitThrottle restores the seed's behaviour of sending
	// a RetransmitRequest on every gap-detected arrival (the request
	// storm). It exists as an ablation baseline for the rate-limited
	// single-outstanding-request recovery path.
	DisableRetransmitThrottle bool
	// Governor configures the primary's overload governor; the zero value
	// leaves it disabled.
	Governor GovernorConfig
	// Durable, when set, receives an asynchronous write-ahead record of
	// every spec install, applied value, unregister, and epoch advance,
	// plus a snapshot on every epoch advance and every SnapshotEvery
	// applies. The replica never waits on it: appends are enqueue-only
	// (internal/durable's bounded channel), so the paper-critical update
	// path stays free of disk I/O. The replica does not own the Log;
	// whoever opened it closes it after Stop.
	Durable *durable.Log
	// SnapshotEvery is how many logged applies trigger a periodic
	// durable snapshot (defaults to 256). Snapshots bound both recovery
	// replay length and log growth: each one advances the stable mark
	// and prunes whole epoch segments below it.
	SnapshotEvery int
	// ClockSync enables the Cristian-style clock-offset estimator
	// (internal/clocksync): each heartbeat this replica sends as backup
	// carries a wire.TimeSync probe, the peer echoes it with its own
	// stamps, and the completed exchange yields a per-peer offset
	// estimate with an explicit error bound θ. Both roles always answer
	// inbound probes; this flag only controls originating them.
	ClockSync bool
	// ClockSyncMaxDriftPPM bounds the assumed relative oscillator drift
	// used to age θ between probes; zero means the clocksync package
	// default (200 ppm).
	ClockSyncMaxDriftPPM float64
	// SkewMargin reserves clock-uncertainty headroom in admission
	// control: the schedulability test treats every object's
	// replication window as δ_i − ℓ − SkewMargin, and an object whose
	// whole window is inside the margin is rejected. A deployment that
	// cannot synchronize clocks tighter than θ should admit only what
	// it can still guarantee under that error. Zero (the default)
	// reproduces the paper's single-timebase admission exactly.
	SkewMargin time.Duration
}

// UnboundedSendQueue disables the per-peer send-queue bound.
const UnboundedSendQueue = -1

// ErrAckTimeout is returned to a critical write's callback when the
// backups did not acknowledge within CriticalMaxRetries retransmissions.
var ErrAckTimeout = errors.New("core: critical write not acknowledged")

// SchedTest selects the admission-time schedulability test.
type SchedTest int

const (
	// SchedTestRMBound uses the Liu & Layland rate-monotonic utilization
	// bound, the test the paper names ("a schedulability test based on
	// the rate-monotonic scheduling algorithm"). It is the default: by
	// capping utilization at n(2^{1/n}−1) it also keeps queueing at the
	// primary low, which is what makes Figure 6 flat.
	SchedTestRMBound SchedTest = iota
	// SchedTestRMExact uses rate-monotonic response-time analysis; it
	// admits up to ~100% utilization at the cost of higher queueing.
	SchedTestRMExact
	// SchedTestEDF uses the EDF density test.
	SchedTestEDF
	// SchedTestDCS uses the pinwheel S_r specialization test (Theorem 3),
	// under which update-task phase variance is zero.
	SchedTestDCS
)

// feasible applies the configured test to the task set.
func (t SchedTest) feasible(ts sched.TaskSet) bool {
	switch t {
	case SchedTestRMExact:
		return sched.FeasibleRMExact(ts)
	case SchedTestEDF:
		return sched.FeasibleEDF(ts)
	case SchedTestDCS:
		return sched.FeasibleDCSExact(ts)
	default:
		return sched.FeasibleRM(ts)
	}
}

// Errors returned by replica construction and registration.
var (
	ErrNoClock     = errors.New("core: config needs a Clock")
	ErrNoPort      = errors.New("core: config needs a Port protocol")
	ErrBadSlack    = errors.New("core: SlackFactor must be in (0, 1]")
	ErrUnknownName = errors.New("core: unknown object")
	ErrRejected    = errors.New("core: object rejected by admission control")
	ErrStopped     = errors.New("core: replica stopped")
)

func (c *Config) normalize() error {
	if c.Clock == nil {
		return ErrNoClock
	}
	if c.Port == nil {
		return ErrNoPort
	}
	if c.LocalPort == 0 {
		c.LocalPort = RTPBPort
	}
	if c.SlackFactor == 0 {
		c.SlackFactor = 0.5
	}
	if c.SlackFactor < 0 || c.SlackFactor > 1 {
		return ErrBadSlack
	}
	if c.Scheduling == 0 {
		c.Scheduling = ScheduleNormal
	}
	if c.Costs == (CostModel{}) {
		c.Costs = DefaultCosts()
	}
	if c.Ell < 0 {
		return fmt.Errorf("core: negative ℓ %v", c.Ell)
	}
	if c.RegisterRetries == 0 {
		c.RegisterRetries = 5
	}
	if c.RegisterTimeout == 0 {
		c.RegisterTimeout = max(4*c.Ell, 20*time.Millisecond)
	}
	if c.CriticalAckTimeout == 0 {
		c.CriticalAckTimeout = max(4*c.Ell, 20*time.Millisecond)
	}
	if c.CriticalMaxRetries == 0 {
		c.CriticalMaxRetries = 5
	}
	if c.SendQueueLimit == 0 {
		c.SendQueueLimit = 64
	}
	if c.FrameBatch == 0 {
		c.FrameBatch = 16
	}
	if c.FrameBatch < 1 {
		c.FrameBatch = 16
	}
	if c.FrameBytes <= 0 {
		c.FrameBytes = 48 << 10
	}
	if c.RetryCeiling == 0 {
		c.RetryCeiling = time.Second
	}
	if c.StateTransferRetries == 0 {
		c.StateTransferRetries = 5
	}
	if c.ChunkEntries == 0 {
		c.ChunkEntries = 8
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 32 << 10
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	if c.SkewMargin < 0 {
		return fmt.Errorf("core: negative SkewMargin %v", c.SkewMargin)
	}
	c.Governor.normalize(c)
	if c.Peer != "" {
		merged := make([]xkernel.Addr, 0, len(c.Peers)+1)
		merged = append(merged, c.Peer)
		for _, a := range c.Peers {
			if a != c.Peer {
				merged = append(merged, a)
			}
		}
		c.Peers = merged
	}
	return nil
}

// replicaCount reports how many backups the primary transmits to (at
// least 1 so cost accounting stays meaningful for a primary awaiting its
// first recruit).
func (c *Config) replicaCount() int {
	if len(c.Peers) > 1 {
		return len(c.Peers)
	}
	return 1
}

// ObjectSpec is a client's declaration of an object at registration time
// (Section 4.2): its size, the period the client promises to update it
// with, and its external temporal-consistency constraint.
type ObjectSpec struct {
	// Name identifies the object to clients.
	Name string
	// Size is the reserved size in bytes.
	Size int
	// UpdatePeriod is p_i, the period of the client's update task.
	UpdatePeriod time.Duration
	// Constraint holds δ_i^P and δ_i^B.
	Constraint temporal.ExternalConstraint
	// Critical selects the hybrid active/passive path (the paper's §7
	// future work): every client write to a critical object is
	// synchronously transmitted with an acknowledgement request, and the
	// client's response waits until every live backup has confirmed —
	// active-replication semantics for this object, passive for the
	// rest. Admission charges the extra per-write transmission.
	Critical bool
}

// Validate checks the spec.
func (s ObjectSpec) Validate() error {
	if s.Name == "" {
		return errors.New("core: object needs a name")
	}
	if s.Size < 0 {
		return fmt.Errorf("core: object %q has negative size", s.Name)
	}
	if s.UpdatePeriod <= 0 {
		return fmt.Errorf("core: object %q has non-positive update period", s.Name)
	}
	return s.Constraint.Validate()
}
