package core

import (
	"testing"
	"time"

	"rtpb/internal/netsim"
)

// runLossStorm drives one primary/backup pair through a burst-loss
// window and reports the backup's gap-recovery request activity. The
// netsim seed and the write schedule are identical across calls, so the
// only variable is the backup's retransmission throttle.
func runLossStorm(t *testing.T, throttle bool) (requested, suppressed, gaps int) {
	t.Helper()
	c := newTestCluster(t, clusterOpts{
		seed: 99,
		link: netsim.LinkParams{Delay: ms(2)},
		mutateB: func(cfg *Config) {
			cfg.DisableRetransmitThrottle = !throttle
		},
	})
	// A fast object: δB=50ms admits an update period of a couple dozen
	// milliseconds, so a multi-second loss window covers many scheduled
	// transmissions and every loss-created gap is observed promptly.
	c.registerOK(t, spec("x", ms(10), ms(20), ms(50)))
	c.backup.OnGap = func(uint32, uint64, uint64) { gaps++ }
	stop := c.writeEvery("x", ms(10), func(i int) []byte { return []byte{byte(i)} })
	defer stop.Stop()
	c.clk.RunFor(200 * time.Millisecond) // clean warmup

	// Burst loss: drop roughly two of three datagrams each way for 3s.
	// Every surviving update arrives gap-flagged, and each unthrottled
	// request provokes a fresh high-priority retransmission whose own
	// loss creates the next gap — the storm the throttle exists to damp.
	if err := c.net.SetDefaultLink(netsim.LinkParams{Delay: ms(2), LossProb: 0.65}); err != nil {
		t.Fatal(err)
	}
	c.clk.RunFor(3 * time.Second)
	if err := c.net.SetDefaultLink(netsim.LinkParams{Delay: ms(2)}); err != nil {
		t.Fatal(err)
	}
	c.clk.RunFor(200 * time.Millisecond) // heal and converge

	pv, pver, _ := c.primary.Value("x")
	bv, bver, ok := c.backup.Value("x")
	if !ok || string(pv) != string(bv) || !pver.Equal(bver) {
		t.Fatalf("backup did not converge after heal (throttle=%v): primary %q@%v backup %q@%v",
			throttle, pv, pver, bv, bver)
	}
	requested, suppressed = c.backup.RetransmitStats()
	return requested, suppressed, gaps
}

// TestRetransmitThrottleDampsRequestStorm is the regression test for the
// gap-recovery request storm: because RTPB updates carry full state, the
// gap-flagged arrival itself already made the backup current, so
// retransmission requests are prophylactic and may be spaced with
// backoff at no cost to staleness. The throttled backup must issue at
// least 5× fewer requests than the unthrottled baseline over the same
// burst-loss schedule, while still converging after the link heals.
func TestRetransmitThrottleDampsRequestStorm(t *testing.T) {
	unReq, unSup, unGaps := runLossStorm(t, false)
	thReq, thSup, thGaps := runLossStorm(t, true)

	if unSup != 0 {
		t.Fatalf("unthrottled run suppressed %d requests", unSup)
	}
	if unReq == 0 || unGaps == 0 {
		t.Fatalf("loss storm produced no baseline activity (requests=%d gaps=%d)", unReq, unGaps)
	}
	if thReq*5 > unReq {
		t.Fatalf("throttle reduction under 5×: %d requests vs %d unthrottled (gaps %d vs %d)",
			thReq, unReq, thGaps, unGaps)
	}
	if thSup == 0 {
		t.Fatal("throttled run suppressed nothing — throttle inactive?")
	}
	if thReq == 0 {
		t.Fatal("throttle suppressed every request — gap recovery disabled, not damped")
	}
}
