package core

import (
	"testing"
	"time"

	"rtpb/internal/netsim"
)

func TestWriteThroughTransmitsPerClientWrite(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed: 31,
		link: netsim.LinkParams{Delay: ms(2)},
		mutateP: func(cfg *Config) {
			cfg.Scheduling = ScheduleWriteThrough
		},
	})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(400)))
	sends := 0
	c.primary.OnSend = func(uint32, string, uint64, time.Time) { sends++ }
	writes := 0
	stop := c.writeEvery("x", ms(40), func(i int) []byte { writes++; return []byte{byte(i)} })
	c.clk.RunFor(time.Second)
	stop.Stop()
	c.clk.RunFor(ms(50)) // let the final write's transmission drain
	if sends != writes {
		t.Fatalf("write-through sent %d updates for %d writes", sends, writes)
	}
}

func TestWriteThroughAdmissionUsesClientPeriod(t *testing.T) {
	cfg := testConfig()
	cfg.Scheduling = ScheduleWriteThrough
	a := newAdmission(cfg)
	// Loose external window (would give r = 172.5ms) but fast client
	// writes: the schedulability test must see the client period.
	_, d := a.admit(spec("x", ms(10), ms(50), ms(400)))
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	if d.UpdatePeriod != ms(10) {
		t.Fatalf("write-through update period = %v, want client period 10ms", d.UpdatePeriod)
	}
}

func TestDisableGapRecoverySuppressesRetransmitRequests(t *testing.T) {
	run := func(disable bool) (gaps, retransmits int) {
		c := newTestCluster(t, clusterOpts{
			seed: 33,
			link: netsim.LinkParams{Delay: ms(2), LossProb: 0.3},
			mutateB: func(cfg *Config) {
				cfg.DisableGapRecovery = disable
			},
		})
		c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))
		c.backup.OnGap = func(uint32, uint64, uint64) { gaps++ }
		c.primary.OnRetransmitRequest = func(uint32) { retransmits++ }
		stop := c.writeEvery("x", ms(20), func(i int) []byte { return []byte{byte(i)} })
		defer stop.Stop()
		c.clk.RunFor(3 * time.Second)
		return gaps, retransmits
	}
	gaps, retransmits := run(false)
	if gaps == 0 || retransmits == 0 {
		t.Fatalf("baseline run: gaps=%d retransmits=%d, want both > 0", gaps, retransmits)
	}
	gaps, retransmits = run(true)
	if gaps == 0 {
		t.Fatal("ablated run detected no gaps at 30% loss")
	}
	if retransmits != 0 {
		t.Fatalf("ablated run still sent %d retransmit requests", retransmits)
	}
}

func TestSchedulingModeStrings(t *testing.T) {
	if ScheduleNormal.String() != "normal" ||
		ScheduleCompressed.String() != "compressed" ||
		ScheduleWriteThrough.String() != "write-through" {
		t.Fatal("SchedulingMode.String mismatch")
	}
	if SchedulingMode(77).String() != "SchedulingMode(77)" {
		t.Fatalf("unknown mode String() = %q", SchedulingMode(77).String())
	}
}
