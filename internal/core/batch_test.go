package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rtpb/internal/netsim"
)

// TestBatchedDrainConvergesToFreshest is the end-to-end mirror of the
// wire-level coalescing property: a random burst of writes to a handful
// of objects, pushed through the real batched drain (frames on a
// simulated link), must leave the backup holding exactly the freshest
// value per object — and must do it in fewer datagrams than one per
// transmission, proving the frames actually coalesce on the wire.
func TestBatchedDrainConvergesToFreshest(t *testing.T) {
	for _, seed := range []int64{1, 7, 99} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newTestCluster(t, clusterOpts{
				seed: seed,
				link: netsim.LinkParams{Delay: ms(2)},
				// Write-through makes every burst visible to the drain at
				// once: the first transmission's CPU cost holds the slot
				// while the rest of the burst queues behind it, so the next
				// flush must carry a multi-update frame.
				mutateP: func(cfg *Config) { cfg.Scheduling = ScheduleWriteThrough },
			})
			const objects = 6
			for i := 0; i < objects; i++ {
				c.registerOK(t, spec(fmt.Sprintf("obj%d", i), ms(40), ms(50), ms(400)))
			}
			sends := 0
			c.primary.OnSend = func(uint32, string, uint64, time.Time) { sends++ }
			base := c.net.Stats().Sent

			// A write burst inside one tight window: many writes per object
			// land while transmissions are still queued, so the send queues
			// coalesce and the drain flushes multi-update frames.
			rng := rand.New(rand.NewSource(seed))
			latest := map[string]string{}
			for round := 0; round < 30; round++ {
				for w := 0; w < 4; w++ {
					name := fmt.Sprintf("obj%d", rng.Intn(objects))
					val := fmt.Sprintf("%s=r%d w%d", name, round, w)
					latest[name] = val
					c.primary.ClientWrite(name, []byte(val), nil)
				}
				c.clk.RunFor(200 * time.Microsecond)
			}
			c.clk.RunFor(400 * time.Millisecond)

			for name, want := range latest {
				got, _, ok := c.backup.Value(name)
				if !ok {
					t.Fatalf("backup has no value for %s", name)
				}
				if string(got) != want {
					t.Fatalf("backup %s = %q, want freshest write %q", name, got, want)
				}
			}
			datagrams := c.net.Stats().Sent - base
			if sends == 0 {
				t.Fatal("no update transmissions observed")
			}
			if datagrams >= sends {
				t.Fatalf("batching never engaged: %d datagrams for %d update transmissions", datagrams, sends)
			}
			t.Logf("%d update transmissions in %d datagrams", sends, datagrams)
		})
	}
}

// TestFrameBatchOneMatchesUnbatchedWire pins the compatibility story:
// with FrameBatch=1 every datagram is the bare single-message encoding,
// so a batching-disabled deployment speaks the pre-framing wire format.
func TestFrameBatchOneMatchesUnbatchedWire(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed:    4,
		link:    netsim.LinkParams{Delay: ms(2)},
		mutateP: func(cfg *Config) { cfg.FrameBatch = 1 },
	})
	c.registerOK(t, spec("alt", ms(40), ms(50), ms(200)))
	sends := 0
	c.primary.OnSend = func(uint32, string, uint64, time.Time) { sends++ }
	c.primary.ClientWrite("alt", []byte("9000ft"), nil)
	c.clk.RunFor(100 * time.Millisecond)
	if got, _, ok := c.backup.Value("alt"); !ok || string(got) != "9000ft" {
		t.Fatalf("backup value = %q, ok=%v", got, ok)
	}
	if sends == 0 {
		t.Fatal("no transmissions observed")
	}
}

// TestBatchedDrainKeepsDropOldest pins the queue-overflow discipline
// under batching: a queue bound smaller than the backlog still drops the
// oldest pending objects, and what survives is the freshest state.
func TestBatchedDrainKeepsDropOldest(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed: 11,
		link: netsim.LinkParams{Delay: ms(2)},
		mutateP: func(cfg *Config) {
			cfg.SendQueueLimit = 2
			cfg.FrameBatch = 8
			// Slow sends: the queue backs up faster than it drains.
			cfg.Costs = CostModel{ClientOp: 100 * time.Microsecond,
				UpdateSend: 20 * time.Millisecond, PerByte: time.Nanosecond}
		},
	})
	for i := 0; i < 4; i++ {
		c.registerOK(t, spec(fmt.Sprintf("o%d", i), ms(200), ms(250), ms(900)))
	}
	for i := 0; i < 4; i++ {
		c.primary.ClientWrite(fmt.Sprintf("o%d", i), []byte{byte('a' + i)}, nil)
	}
	c.clk.RunFor(900 * time.Millisecond)
	// With the queue bounded at 2, the burst overflowed; the protocol
	// still converges every object eventually via later transmissions —
	// the invariant under test is no panic, no stall, no stale final
	// state for objects that did transmit.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("o%d", i)
		if got, _, ok := c.backup.Value(name); ok && len(got) == 1 && got[0] != byte('a'+i) {
			t.Fatalf("backup %s holds %q, not the freshest write", name, got)
		}
	}
}
