package core

import (
	"strings"
	"testing"
	"time"

	"rtpb/internal/temporal"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func testConfig() *Config {
	cfg := &Config{
		Ell:         ms(5),
		SlackFactor: 0.5,
		Costs:       DefaultCosts(),
	}
	return cfg
}

func spec(name string, period, deltaP, deltaB time.Duration) ObjectSpec {
	return ObjectSpec{
		Name:         name,
		Size:         64,
		UpdatePeriod: period,
		Constraint:   temporal.ExternalConstraint{DeltaP: deltaP, DeltaB: deltaB},
	}
}

func TestAdmitAcceptsFeasibleObject(t *testing.T) {
	a := newAdmission(testConfig())
	o, d := a.admit(spec("x", ms(40), ms(50), ms(150)))
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	if o.id != d.ObjectID || d.ObjectID == 0 {
		t.Fatalf("object id %d vs decision %d", o.id, d.ObjectID)
	}
	// r = 0.5·(δB−δP−ℓ) = 0.5·(100−5)ms = 47.5ms
	if want := time.Duration(0.5 * float64(ms(95))); d.UpdatePeriod != want {
		t.Fatalf("UpdatePeriod = %v, want %v", d.UpdatePeriod, want)
	}
}

func TestAdmitRejectsPeriodBeyondDeltaP(t *testing.T) {
	a := newAdmission(testConfig())
	_, d := a.admit(spec("x", ms(60), ms(50), ms(150)))
	if d.Accepted {
		t.Fatal("accepted object with p > δP")
	}
	if !strings.Contains(d.Reason, "exceeds δP") {
		t.Fatalf("reason = %q", d.Reason)
	}
}

func TestAdmitRejectsWindowBelowEll(t *testing.T) {
	cfg := testConfig()
	cfg.Ell = ms(20)
	a := newAdmission(cfg)
	_, d := a.admit(spec("x", ms(40), ms(50), ms(65))) // δ = 15ms < ℓ
	if d.Accepted {
		t.Fatal("accepted object with δ ≤ ℓ")
	}
	if d.SuggestedDeltaB == 0 {
		t.Fatal("no QoS suggestion on window rejection")
	}
	if d.SuggestedDeltaB <= ms(65) {
		t.Fatalf("suggestion %v not larger than requested δB", d.SuggestedDeltaB)
	}
}

func TestAdmitSkewMarginTightensWindow(t *testing.T) {
	// A skew margin shrinks the usable replication window to δ−ℓ−margin
	// and the derived transmission period with it; zero margin reproduces
	// the paper's single-timebase admission exactly (pinned by
	// TestAdmitAcceptsFeasibleObject above).
	cfg := testConfig()
	cfg.SkewMargin = ms(45)
	a := newAdmission(cfg)
	_, d := a.admit(spec("x", ms(40), ms(50), ms(150)))
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	// r = 0.5·(δB−δP−ℓ−margin) = 0.5·(100−5−45)ms = 25ms
	if want := ms(25); d.UpdatePeriod != want {
		t.Fatalf("UpdatePeriod = %v, want %v", d.UpdatePeriod, want)
	}
}

func TestAdmitSkewMarginConsumesWholeWindow(t *testing.T) {
	// A margin at or above δ−ℓ leaves no window: the object is honestly
	// unschedulable under that much clock uncertainty, and the QoS
	// suggestion must account for the margin when proposing a feasible δB.
	cfg := testConfig()
	cfg.SkewMargin = ms(95)
	a := newAdmission(cfg)
	_, d := a.admit(spec("x", ms(40), ms(50), ms(150)))
	if d.Accepted {
		t.Fatal("accepted object whose window is consumed by the skew margin")
	}
	if d.SuggestedDeltaB <= ms(150) {
		t.Fatalf("suggestion %v not larger than requested δB", d.SuggestedDeltaB)
	}
}

func TestAdmitRejectsDuplicateName(t *testing.T) {
	a := newAdmission(testConfig())
	if _, d := a.admit(spec("x", ms(40), ms(50), ms(150))); !d.Accepted {
		t.Fatalf("first admit rejected: %s", d.Reason)
	}
	if _, d := a.admit(spec("x", ms(40), ms(50), ms(150))); d.Accepted {
		t.Fatal("duplicate name accepted")
	}
}

func TestAdmitRejectsInvalidSpec(t *testing.T) {
	a := newAdmission(testConfig())
	bad := []ObjectSpec{
		{},
		spec("", ms(40), ms(50), ms(150)),
		{Name: "x", UpdatePeriod: ms(10), Size: -1,
			Constraint: temporal.ExternalConstraint{DeltaP: ms(50), DeltaB: ms(150)}},
		spec("x", 0, ms(50), ms(150)),
		spec("x", ms(40), ms(50), ms(40)), // δB < δP
	}
	for i, s := range bad {
		if _, d := a.admit(s); d.Accepted {
			t.Fatalf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestAdmissionCapacityGateKeeping(t *testing.T) {
	// With admission control, the accepted count stops at the CPU's
	// schedulable capacity; without it, everything is admitted.
	mk := func(disable bool) int {
		cfg := testConfig()
		cfg.DisableAdmissionControl = disable
		a := newAdmission(cfg)
		accepted := 0
		for i := 0; i < 200; i++ {
			name := "obj" + string(rune('a'+i%26)) + string(rune('0'+i/26))
			_, d := a.admit(spec(name, ms(20), ms(25), ms(60)))
			if d.Accepted {
				accepted++
			}
		}
		return accepted
	}
	withAC := mk(false)
	withoutAC := mk(true)
	if withAC >= 200 {
		t.Fatalf("admission control accepted all %d objects", withAC)
	}
	if withoutAC != 200 {
		t.Fatalf("disabled admission control still rejected: %d/200", withoutAC)
	}
	if withAC < 5 {
		t.Fatalf("admission control admitted only %d objects; capacity model too tight", withAC)
	}
}

func TestAdmissionSchedulabilityRejectionSuggestsLargerWindow(t *testing.T) {
	cfg := testConfig()
	a := newAdmission(cfg)
	// Fill most of the capacity with tight-window objects.
	admitted := 0
	var lastReject Decision
	for i := 0; i < 200; i++ {
		name := "o" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		_, d := a.admit(spec(name, ms(10), ms(12), ms(20)))
		if d.Accepted {
			admitted++
		} else {
			lastReject = d
			break
		}
	}
	if lastReject.Accepted || lastReject.Reason == "" {
		t.Fatalf("never hit a schedulability rejection (admitted %d)", admitted)
	}
	if !strings.Contains(lastReject.Reason, "unschedulable") {
		t.Fatalf("reason = %q", lastReject.Reason)
	}
	if lastReject.SuggestedDeltaB == 0 {
		t.Fatal("no suggested δB for schedulability rejection")
	}
}

func TestUtilizationGrowsWithObjects(t *testing.T) {
	a := newAdmission(testConfig())
	u0 := a.utilization()
	a.admit(spec("x", ms(40), ms(50), ms(150)))
	u1 := a.utilization()
	a.admit(spec("y", ms(40), ms(50), ms(150)))
	u2 := a.utilization()
	if !(u0 == 0 && u1 > u0 && u2 > u1) {
		t.Fatalf("utilizations not increasing: %v %v %v", u0, u1, u2)
	}
}

func TestInterObjectAdmissionTightensPeriods(t *testing.T) {
	a := newAdmission(testConfig())
	// External windows allow r = 147.5ms; δ_ij = 30ms must tighten both.
	a.admit(spec("i", ms(20), ms(50), ms(350)))
	a.admit(spec("j", ms(20), ms(50), ms(350)))
	d, err := a.admitInterObject(temporal.InterObjectConstraint{I: "i", J: "j", Delta: ms(30)})
	if err != nil || !d.Accepted {
		t.Fatalf("inter-object admission failed: %v %s", err, d.Reason)
	}
	oi, _ := a.byNameOrErr("i")
	oj, _ := a.byNameOrErr("j")
	// SlackFactor 0.5 applies to the inter-object bound: r = δ_ij/2.
	if oi.updatePeriod != ms(15) || oj.updatePeriod != ms(15) {
		t.Fatalf("periods = %v/%v, want 15ms/15ms", oi.updatePeriod, oj.updatePeriod)
	}
}

func TestInterObjectAdmissionKeepsTighterExternalPeriod(t *testing.T) {
	a := newAdmission(testConfig())
	// External window gives r = 0.5·(100−5) = 47.5ms, tighter than δ_ij.
	a.admit(spec("i", ms(20), ms(50), ms(150)))
	a.admit(spec("j", ms(20), ms(50), ms(150)))
	d, err := a.admitInterObject(temporal.InterObjectConstraint{I: "i", J: "j", Delta: ms(200)})
	if err != nil || !d.Accepted {
		t.Fatalf("inter-object admission failed: %v %s", err, d.Reason)
	}
	oi, _ := a.byNameOrErr("i")
	if want := time.Duration(0.5 * float64(ms(95))); oi.updatePeriod != want {
		t.Fatalf("period loosened to %v, want %v", oi.updatePeriod, want)
	}
}

func TestInterObjectAdmissionRejectsClientPeriodOverDelta(t *testing.T) {
	a := newAdmission(testConfig())
	a.admit(spec("i", ms(40), ms(50), ms(150)))
	a.admit(spec("j", ms(40), ms(50), ms(150)))
	_, err := a.admitInterObject(temporal.InterObjectConstraint{I: "i", J: "j", Delta: ms(30)})
	if err == nil {
		t.Fatal("accepted δ_ij below client periods")
	}
}

func TestInterObjectAdmissionUnknownObject(t *testing.T) {
	a := newAdmission(testConfig())
	a.admit(spec("i", ms(40), ms(50), ms(150)))
	if _, err := a.admitInterObject(temporal.InterObjectConstraint{I: "i", J: "ghost", Delta: ms(100)}); err == nil {
		t.Fatal("accepted constraint naming unknown object")
	}
}

func TestInterObjectAdmissionRollsBackOnUnschedulable(t *testing.T) {
	cfg := testConfig()
	// Exact response-time analysis admits the two heavy objects below;
	// the utilization-bound default would reject them at registration
	// before the inter-object path under test is reached.
	cfg.SchedTest = SchedTestRMExact
	a := newAdmission(cfg)
	// Large objects make update transmissions expensive (size drives
	// cost); loose external windows keep them schedulable.
	big := func(name string) ObjectSpec {
		s := spec(name, ms(20), ms(40), ms(2000))
		s.Size = 4 << 20 // illegal? size*2ns = 16.8ms per op
		s.Size = 4 << 20
		return s
	}
	if _, d := a.admit(big("i")); !d.Accepted {
		t.Fatalf("i rejected: %s", d.Reason)
	}
	if _, d := a.admit(big("j")); !d.Accepted {
		t.Fatalf("j rejected: %s", d.Reason)
	}
	oi, _ := a.byNameOrErr("i")
	before := oi.updatePeriod
	// δ_ij = 25ms cannot fit two ~8.6ms transmissions plus client work.
	_, err := a.admitInterObject(temporal.InterObjectConstraint{I: "i", J: "j", Delta: ms(25)})
	if err == nil {
		t.Fatal("accepted unschedulable inter-object constraint")
	}
	if oi.updatePeriod != before {
		t.Fatalf("period not rolled back: %v vs %v", oi.updatePeriod, before)
	}
	if len(oi.interBounds) != 0 {
		t.Fatal("rejected constraint left bounds behind")
	}
}

func TestSchedTestVariants(t *testing.T) {
	for _, st := range []SchedTest{SchedTestRMExact, SchedTestRMBound, SchedTestEDF, SchedTestDCS} {
		cfg := testConfig()
		cfg.SchedTest = st
		a := newAdmission(cfg)
		if _, d := a.admit(spec("x", ms(40), ms(50), ms(150))); !d.Accepted {
			t.Fatalf("test %d rejected trivially feasible object: %s", st, d.Reason)
		}
	}
}
