package core

// sendQueue is one peer's bounded queue of pending update transmissions
// under normal scheduling. It holds object identifiers, not payloads: an
// entry means "this object's current state still has to go out", so a
// newer client write for an already-queued object coalesces into the
// existing slot and the eventual transmission carries the newest state.
// That makes drop-oldest the right overflow policy for state replication —
// the evicted object's next periodic release re-queues it, and nothing
// ever transmits stale state.
type sendQueue struct {
	limit  int // <= 0 means unbounded
	ids    []uint32
	member map[uint32]bool
	stats  SendQueueStats
}

// SendQueueStats counts one peer send queue's traffic for observability.
type SendQueueStats struct {
	// Enqueued counts accepted new entries.
	Enqueued int
	// Coalesced counts transmissions absorbed into an already-queued
	// entry — each one is a missed transmission deadline (the previous
	// release never reached the wire before the next).
	Coalesced int
	// DroppedOldest counts entries evicted by the bound.
	DroppedOldest int
	// MaxDepth is the high-water queue depth.
	MaxDepth int
}

func newSendQueue(limit int) *sendQueue {
	return &sendQueue{limit: limit, member: make(map[uint32]bool)}
}

// enqueue adds the object to the queue; coalesced reports that the object
// was already pending (its slot now represents the newer state).
func (q *sendQueue) enqueue(id uint32) (coalesced bool) {
	if q.member[id] {
		q.stats.Coalesced++
		return true
	}
	if q.limit > 0 && len(q.ids) >= q.limit {
		evicted := q.ids[0]
		q.ids = q.ids[1:]
		delete(q.member, evicted)
		q.stats.DroppedOldest++
	}
	q.ids = append(q.ids, id)
	q.member[id] = true
	q.stats.Enqueued++
	if len(q.ids) > q.stats.MaxDepth {
		q.stats.MaxDepth = len(q.ids)
	}
	return false
}

// remove deletes the object from the queue if present.
func (q *sendQueue) remove(id uint32) bool {
	if !q.member[id] {
		return false
	}
	delete(q.member, id)
	for i, v := range q.ids {
		if v == id {
			q.ids = append(q.ids[:i], q.ids[i+1:]...)
			break
		}
	}
	return true
}

// head returns the oldest queued object id.
func (q *sendQueue) head() (uint32, bool) {
	if len(q.ids) == 0 {
		return 0, false
	}
	return q.ids[0], true
}

func (q *sendQueue) depth() int { return len(q.ids) }

// congested reports whether the queue is at least half full — the
// backpressure signal the chunked anti-entropy sender yields to, so a
// catch-up stream defers to a backlog of live update traffic instead of
// competing with it.
func (q *sendQueue) congested() bool {
	return q.limit > 0 && len(q.ids)*2 >= q.limit
}

// clear empties the queue, keeping the lifetime stats.
func (q *sendQueue) clear() {
	q.ids = q.ids[:0]
	for id := range q.member {
		delete(q.member, id)
	}
}
