package core

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/netsim"
)

// TestZombiePrimaryIsFenced reproduces the split-brain hazard the epoch
// mechanism exists for: the original primary is only *partitioned*, not
// crashed; the backup is promoted (epoch 2) elsewhere; when the partition
// heals, the zombie's epoch-1 updates must not overwrite state on a
// backup that has already heard from epoch 2.
func TestZombiePrimaryIsFenced(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 77)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: ms(2)}); err != nil {
		t.Fatal(err)
	}
	zPort, _ := stackOn(t, net, "zombie")
	nPort, _ := stackOn(t, net, "newprimary")
	bPort, _ := stackOn(t, net, "backup")

	zombie, err := NewPrimary(Config{Clock: clk, Port: zPort, Peer: "backup:7000", Ell: ms(5)})
	if err != nil {
		t.Fatal(err)
	}
	backup, err := NewBackup(Config{Clock: clk, Port: bPort, Peer: "zombie:7000", Ell: ms(5)})
	if err != nil {
		t.Fatal(err)
	}
	if d := zombie.Register(spec("x", ms(40), ms(50), ms(250))); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	zombie.ClientWrite("x", []byte("old-world"), nil)
	clk.RunFor(300 * time.Millisecond)
	if v, _, _ := backup.Value("x"); string(v) != "old-world" {
		t.Fatalf("warmup failed: %q", v)
	}

	// The zombie is partitioned away; a new primary at epoch 2 takes
	// over serving the backup.
	net.Partition("zombie", "backup")
	newPrimary, err := NewPrimary(Config{Clock: clk, Port: nPort, Peer: "backup:7000", Ell: ms(5)})
	if err != nil {
		t.Fatal(err)
	}
	newPrimary.SetEpoch(2)
	if d := newPrimary.Register(spec("x", ms(40), ms(50), ms(250))); !d.Accepted {
		t.Fatalf("new primary rejected: %s", d.Reason)
	}
	newPrimary.ClientWrite("x", []byte("new-world"), nil)
	clk.RunFor(300 * time.Millisecond)
	if v, _, _ := backup.Value("x"); string(v) != "new-world" {
		t.Fatalf("backup not following new primary: %q", v)
	}
	if backup.Epoch() != 2 {
		t.Fatalf("backup epoch = %d, want 2", backup.Epoch())
	}

	// The partition heals and the zombie keeps writing and transmitting
	// at epoch 1: the backup must ignore all of it.
	net.Heal("zombie", "backup")
	zombie.ClientWrite("x", []byte("stale-overwrite"), nil)
	clk.RunFor(500 * time.Millisecond)
	if v, _, _ := backup.Value("x"); string(v) != "new-world" {
		t.Fatalf("zombie primary overwrote promoted state: %q", v)
	}

	// A zombie state transfer is fenced too.
	zombie.SendStateTransfer()
	clk.RunFor(100 * time.Millisecond)
	if v, _, _ := backup.Value("x"); string(v) != "new-world" {
		t.Fatalf("zombie state transfer overwrote promoted state: %q", v)
	}
}

// TestUnstampedEpochZeroAccepted documents the compatibility rule: epoch
// 0 means "unstamped" and is always accepted.
func TestUnstampedEpochZeroAccepted(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 41, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))
	c.primary.SetEpoch(0) // pre-epoch wire peers stamp 0
	c.primary.ClientWrite("x", []byte("v"), nil)
	c.clk.RunFor(300 * time.Millisecond)
	if v, _, ok := c.backup.Value("x"); !ok || string(v) != "v" {
		t.Fatalf("unstamped update rejected: %q ok=%v", v, ok)
	}
}
