package core

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/cpu"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
)

func governedSpec(name string) ObjectSpec {
	return ObjectSpec{
		Name:         name,
		Size:         64,
		UpdatePeriod: 40 * time.Millisecond,
		Constraint: temporal.ExternalConstraint{
			DeltaP: 50 * time.Millisecond,
			DeltaB: 250 * time.Millisecond,
		},
	}
}

func newGovernedCluster(t *testing.T) *testCluster {
	t.Helper()
	return newTestCluster(t, clusterOpts{
		seed: 7,
		link: netsim.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond},
		ell:  5 * time.Millisecond,
		mutateP: func(cfg *Config) {
			cfg.Costs = CostModel{
				ClientOp:   200 * time.Microsecond,
				UpdateSend: 5 * time.Millisecond,
				PerByte:    2 * time.Nanosecond,
			}
			cfg.Governor = GovernorConfig{
				Enable:           true,
				Interval:         10 * time.Millisecond,
				DemoteStaleness:  0.15,
				PromoteStaleness: 0.05,
				PromoteHold:      10,
			}
		},
	})
}

// TestGovernorLadderDemotesAndRecovers drives the primary through a CPU
// overload window and asserts the ladder engages (with the transitions
// announced to the backup) and fully unwinds after the load clears.
func TestGovernorLadderDemotesAndRecovers(t *testing.T) {
	c := newGovernedCluster(t)
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		c.registerOK(t, governedSpec(n))
	}
	for _, n := range names {
		n := n
		stop := c.writeEvery(n, 80*time.Millisecond, func(i int) []byte {
			return []byte{byte(i), n[0]}
		})
		defer stop.Stop()
	}
	announced := 0
	c.backup.OnModeChange = func(_ uint32, _ string, _ ObjectMode, _ time.Duration) {
		announced++
	}
	c.clk.RunFor(500 * time.Millisecond)
	if s := c.primary.GovernorStats(); s.Demotions != 0 {
		t.Fatalf("governor demoted %d rungs on an unloaded primary", s.Demotions)
	}

	// Steal 90% of the CPU at high priority for 1.5s.
	hog := clock.NewPeriodic(c.clk, 0, 10*time.Millisecond, func() {
		c.primary.CPU().Submit(cpu.High, 9*time.Millisecond, func() {})
	})
	c.clk.RunFor(1500 * time.Millisecond)
	hog.Stop()

	mid := c.primary.GovernorStats()
	if mid.Demotions == 0 || mid.Degraded == 0 {
		t.Fatalf("overload never engaged the ladder: %+v", mid)
	}
	if announced == 0 {
		t.Fatal("no mode change reached the backup during the overload")
	}

	c.clk.RunFor(2 * time.Second)
	end := c.primary.GovernorStats()
	if end.Promotions != end.Demotions {
		t.Fatalf("governor promoted %d of %d demoted rungs back", end.Promotions, end.Demotions)
	}
	for name, m := range c.primary.Modes() {
		if m != ModeNormal {
			t.Errorf("object %q ended at %s, want normal", name, m)
		}
	}
}

// TestGovernorSteadyStateStable is the flapping regression: a governed
// but unloaded primary must never demote, even though in steady state a
// new version is pending for most of every update period.
func TestGovernorSteadyStateStable(t *testing.T) {
	c := newGovernedCluster(t)
	for _, n := range []string{"a", "b", "c", "d"} {
		c.registerOK(t, governedSpec(n))
		n := n
		stop := c.writeEvery(n, 80*time.Millisecond, func(i int) []byte {
			return []byte{byte(i), n[0]}
		})
		defer stop.Stop()
	}
	c.clk.RunFor(4 * time.Second)
	if s := c.primary.GovernorStats(); s.Demotions != 0 {
		t.Fatalf("steady state produced %d demotions (%+v)", s.Demotions, s)
	}
}

// TestGovernorDemoteOrder pins the ladder's walk: every non-critical
// normal object compresses (latest-admitted first) before anything is
// shed, Critical objects never leave normal, and the first-admitted
// object is compressed at worst.
func TestGovernorDemoteOrder(t *testing.T) {
	c := newGovernedCluster(t)
	crit := governedSpec("crit")
	crit.Critical = true
	c.registerOK(t, governedSpec("first"))
	c.registerOK(t, crit)
	c.registerOK(t, governedSpec("late"))
	for _, n := range []string{"first", "crit", "late"} {
		c.primary.ClientWrite(n, []byte(n), nil)
	}
	c.clk.RunFor(20 * time.Millisecond)

	g := c.primary.gov
	objs := c.primary.adm.ordered()
	step := func() map[string]ObjectMode {
		g.demoteOne(objs)
		return c.primary.Modes()
	}

	if m := step(); m["late"] != ModeCompressed || m["first"] != ModeNormal || m["crit"] != ModeNormal {
		t.Fatalf("first demotion should compress the latest non-critical object: %v", m)
	}
	if m := step(); m["first"] != ModeCompressed || m["crit"] != ModeNormal {
		t.Fatalf("second demotion should compress the first-admitted object: %v", m)
	}
	if m := step(); m["late"] != ModeShed {
		t.Fatalf("third demotion should shed the latest object: %v", m)
	}
	// The ladder is exhausted: "first" is never shed, "crit" never moves.
	if m := step(); m["first"] != ModeCompressed || m["crit"] != ModeNormal {
		t.Fatalf("exhausted ladder moved a protected object: %v", m)
	}

	// Promotion climbs back in criticality order: shed resumes first.
	g.promoteOne(objs)
	if m := c.primary.Modes(); m["late"] != ModeCompressed {
		t.Fatalf("promotion should resume the shed object first: %v", m)
	}
}

// TestGovernorEffectiveBounds pins the announced bounds: compressed
// loosens δB by exactly the period stretch (capped at δB−ℓ), shed waives
// the bound entirely.
func TestGovernorEffectiveBounds(t *testing.T) {
	c := newGovernedCluster(t)
	c.registerOK(t, governedSpec("x"))
	g := c.primary.gov
	o := c.primary.adm.ordered()[0]

	if got := g.effectiveBound(o, ModeNormal); got != o.spec.Constraint.DeltaB {
		t.Fatalf("normal bound %v, want δB=%v", got, o.spec.Constraint.DeltaB)
	}
	stretched := g.periodFor(o, ModeCompressed)
	if ceil := o.spec.Constraint.DeltaB - c.primary.cfg.Ell; stretched > ceil {
		t.Fatalf("compressed period %v exceeds the Theorem 5 ceiling %v", stretched, ceil)
	}
	if stretched <= o.updatePeriod {
		t.Fatalf("compressed period %v did not stretch past %v", stretched, o.updatePeriod)
	}
	want := o.spec.Constraint.DeltaB + (stretched - o.updatePeriod)
	if got := g.effectiveBound(o, ModeCompressed); got != want {
		t.Fatalf("compressed bound %v, want %v", got, want)
	}
	if got := g.effectiveBound(o, ModeShed); got != 0 {
		t.Fatalf("shed bound %v, want waived (0)", got)
	}
}
