package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/netsim"
	"rtpb/internal/xkernel"
)

// This file tests the observer role end to end on the simulated fabric:
// the chained-certificate monotonicity property (age, θ, and depth
// compound per hop; versions never regress), the join gating that keeps
// a chain from accepting subscribers it cannot feed, and the quorum
// exclusions that keep observers out of the cluster's fate.

// chain is the N-hop fan-out fixture: a primary on hosts[0] and hops
// chained observers, obs[k] subscribed to hosts[k] (so obs[0] observes
// the primary directly and each later hop observes the previous one).
// Each observer runs the same self-driven join and heartbeat loops the
// rtpbd -observe daemon runs.
type chain struct {
	clk     *clock.SimClock
	net     *netsim.Network
	primary *Primary
	obs     []*Observer
	hosts   []string // hosts[0] = "primary", hosts[k] = "obs<k>"
}

type chainOpts struct {
	seed      int64
	hops      int
	clockSync bool
	// linkFor, when set, picks the link parameters for the hop between
	// hosts[i] and hosts[i+1]; the default 2ms+1ms link covers the rest.
	linkFor func(i int) netsim.LinkParams
	// drive, when set and false for observer k, suppresses that
	// observer's self-driven join loop so a test can sequence joins by
	// hand. Heartbeats always run.
	drive func(k int) bool
}

func newChain(t *testing.T, opts chainOpts) *chain {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, opts.seed)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	hosts := []string{"primary"}
	for k := 1; k <= opts.hops; k++ {
		hosts = append(hosts, fmt.Sprintf("obs%d", k))
	}
	if opts.linkFor != nil {
		for i := 0; i+1 < len(hosts); i++ {
			if err := net.SetLinkBoth(hosts[i], hosts[i+1], opts.linkFor(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	const ell = 8 * time.Millisecond // covers the widest randomized link
	pPort, _ := stackOn(t, net, hosts[0])
	primary, err := NewPrimary(Config{Clock: clk, Port: pPort, Ell: ell})
	if err != nil {
		t.Fatal(err)
	}
	c := &chain{clk: clk, net: net, primary: primary, hosts: hosts}
	for k := 1; k <= opts.hops; k++ {
		port, _ := stackOn(t, net, hosts[k])
		o, err := NewObserver(Config{
			Clock:                clk,
			Port:                 port,
			Peer:                 xkernel.Addr(hosts[k-1] + ":7000"),
			Ell:                  ell,
			SelfAddr:             xkernel.Addr(hosts[k] + ":7000"),
			ClockSync:            opts.clockSync,
			ClockSyncMaxDriftPPM: 200,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.obs = append(c.obs, o)
		obs := o
		if opts.drive == nil || opts.drive(k-1) {
			clock.NewPeriodic(clk, 0, 100*time.Millisecond, func() {
				if obs.Running() && !obs.Joined() {
					obs.Join()
				}
			})
		}
		clock.NewPeriodic(clk, 50*time.Millisecond, 100*time.Millisecond, func() {
			if obs.Running() {
				obs.SendPing()
			}
		})
	}
	return c
}

// writeEvery drives periodic client writes on the chain's primary.
func (c *chain) writeEvery(name string, period time.Duration) *clock.Periodic {
	i := 0
	return clock.NewPeriodic(c.clk, 0, period, func() {
		i++
		c.primary.ClientWrite(name, []byte(fmt.Sprintf("v%06d", i)), nil)
	})
}

// requireJoined fails the test unless every observer completed its join.
func (c *chain) requireJoined(t *testing.T) {
	t.Helper()
	for k, o := range c.obs {
		if !o.Joined() {
			t.Fatalf("observer %s (hop %d) never joined", c.hosts[k+1], k+1)
		}
	}
}

// TestChainedCertificateMonotonicity is the chained-certificate property
// test: on a primary → obs1 → obs2 → obs3 chain with seeded random
// per-link delays and a seeded partition/heal fault schedule, every
// sample instant must show, hop by hop down the chain:
//
//   - the version never ahead of the upstream hop's (an observer can
//     only know what its upstream already knew),
//   - age non-decreasing (version stamps ride the relay unchanged, so
//     staleness accumulates, never launders),
//   - θ non-decreasing (each hop adds its own link's clock uncertainty
//     to what its upstream advertised),
//   - depth equal to the hop count from the primary,
//
// and, per node across time, the served version never regresses. The
// schedule is deterministic per seed; -seed explores alternatives.
func TestChainedCertificateMonotonicity(t *testing.T) {
	const hops = 3
	rng := propRand(0x0b5ee7)
	trials := 4
	if testing.Short() {
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		sub := rand.New(rand.NewSource(rng.Int63()))
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			c := newChain(t, chainOpts{
				seed:      sub.Int63(),
				hops:      hops,
				clockSync: true,
				linkFor: func(i int) netsim.LinkParams {
					return netsim.LinkParams{
						Delay:  time.Duration(1+sub.Intn(3)) * time.Millisecond,
						Jitter: time.Duration(sub.Intn(3)) * time.Millisecond,
					}
				},
			})
			d := c.primary.Register(spec("pressure", ms(40), ms(50), ms(250)))
			if !d.Accepted {
				t.Fatalf("registration rejected: %s", d.Reason)
			}
			c.writeEvery("pressure", ms(10))

			// Settle: joins gate on the upstream hop's own join, so the
			// chain completes over ~hops retry rounds of the 100ms loop.
			c.clk.RunFor(700 * time.Millisecond)
			c.requireJoined(t)

			// Seeded fault schedule: non-overlapping partition episodes on
			// random links of the chain, healed after 100–300ms.
			type event struct {
				at time.Duration
				fn func()
			}
			var events []event
			at := 200*time.Millisecond + time.Duration(sub.Intn(200))*time.Millisecond
			for e := 0; e < 3; e++ {
				link := sub.Intn(hops)
				a, b := c.hosts[link], c.hosts[link+1]
				dur := time.Duration(100+sub.Intn(200)) * time.Millisecond
				events = append(events,
					event{at, func() { c.net.Partition(a, b) }},
					event{at + dur, func() { c.net.Heal(a, b) }})
				at += dur + 150*time.Millisecond + time.Duration(sub.Intn(200))*time.Millisecond
			}

			lastVer := make([]time.Time, hops+1)
			for elapsed := time.Duration(0); elapsed < 2*time.Second; {
				step := time.Duration(5+sub.Intn(35)) * time.Millisecond
				c.clk.RunFor(step)
				elapsed += step
				for len(events) > 0 && events[0].at <= elapsed {
					events[0].fn()
					events = events[1:]
				}

				prev, ok := c.primary.Certificate("pressure")
				if !ok {
					t.Fatal("primary lost its own object")
				}
				if prev.Depth != 0 || prev.Theta != 0 {
					t.Fatalf("primary certificate claims depth=%d theta=%v; the serving clock admits nothing", prev.Depth, prev.Theta)
				}
				if prev.Version.Before(lastVer[0]) {
					t.Fatalf("primary version regressed: %v -> %v", lastVer[0], prev.Version)
				}
				lastVer[0] = prev.Version
				for k, o := range c.obs {
					cert, ok := o.Certificate("pressure")
					if !ok {
						t.Fatalf("+%v: hop %d has no certificate", elapsed, k+1)
					}
					if cert.Version.After(prev.Version) {
						t.Fatalf("+%v: hop %d version %v ahead of upstream's %v", elapsed, k+1, cert.Version, prev.Version)
					}
					if cert.Age < prev.Age {
						t.Fatalf("+%v: hop %d age %v below upstream's %v — staleness laundered", elapsed, k+1, cert.Age, prev.Age)
					}
					if cert.Theta < prev.Theta {
						t.Fatalf("+%v: hop %d theta %v below upstream's %v — uncertainty laundered", elapsed, k+1, cert.Theta, prev.Theta)
					}
					if cert.Theta <= 0 || cert.Theta >= UnknownTheta {
						t.Fatalf("+%v: hop %d theta %v outside (0, UnknownTheta) with clock sync on", elapsed, k+1, cert.Theta)
					}
					if cert.Depth != k+1 {
						t.Fatalf("+%v: hop %d certificate claims depth %d", elapsed, k+1, cert.Depth)
					}
					if cert.Version.Before(lastVer[k+1]) {
						t.Fatalf("+%v: hop %d version regressed: %v -> %v", elapsed, k+1, lastVer[k+1], cert.Version)
					}
					lastVer[k+1] = cert.Version
					prev = cert
				}
			}
		})
	}
}

// TestObserverJoinGatedOnUnjoinedUpstream pins the chain-bootstrap rule:
// an observer that has not completed its own upstream join silently
// refuses downstream JoinRequests (a 0-spec accept would strand the
// subscriber forever, since a completed join is never retried), and the
// subscriber's retry loop lands the join once the upstream is ready.
func TestObserverJoinGatedOnUnjoinedUpstream(t *testing.T) {
	c := newChain(t, chainOpts{
		seed: 0x90a7e,
		hops: 2,
		// obs1 joins only by hand; obs2's loop is self-driven.
		drive: func(k int) bool { return k == 1 },
	})
	d := c.primary.Register(spec("pressure", ms(40), ms(50), ms(250)))
	if !d.Accepted {
		t.Fatalf("registration rejected: %s", d.Reason)
	}
	c.writeEvery("pressure", ms(10))

	// obs2 retries against a never-joined obs1 for 400ms: every request
	// must be refused, not answered with an empty accept.
	c.clk.RunFor(400 * time.Millisecond)
	if c.obs[1].Joined() {
		t.Fatal("obs2 joined through an upstream that never joined itself")
	}

	c.obs[0].Join()
	c.clk.RunFor(400 * time.Millisecond)
	c.requireJoined(t)
	cert, ok := c.obs[1].Certificate("pressure")
	if !ok {
		t.Fatal("obs2 joined but serves no certificate — the relayed spec never landed")
	}
	if cert.Depth != 2 {
		t.Fatalf("obs2 certificate depth = %d, want 2", cert.Depth)
	}
	if len(cert.Value) == 0 {
		t.Fatal("obs2 certificate carries no value")
	}
}

// TestObserverExcludedFromQuorumAndPromotion checks the role fences on a
// mixed cluster (primary + voting backup + observer): the observer never
// counts toward the replication degree, its peer entry is flagged, and
// promoting it is a hard error that leaves the role untouched.
func TestObserverExcludedFromQuorumAndPromotion(t *testing.T) {
	clk := clock.NewSim()
	net := netsim.New(clk, 0xc4a1)
	if err := net.SetDefaultLink(netsim.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	pPort, _ := stackOn(t, net, "primary")
	bPort, _ := stackOn(t, net, "backup")
	oPort, _ := stackOn(t, net, "obs1")
	primary, err := NewPrimary(Config{Clock: clk, Port: pPort, Peer: "backup:7000", Ell: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBackup(Config{Clock: clk, Port: bPort, Peer: "primary:7000", Ell: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	obs, err := NewObserver(Config{Clock: clk, Port: oPort, Peer: "primary:7000", Ell: 5 * time.Millisecond, SelfAddr: "obs1:7000"})
	if err != nil {
		t.Fatal(err)
	}
	clock.NewPeriodic(clk, 0, 100*time.Millisecond, func() {
		if obs.Running() && !obs.Joined() {
			obs.Join()
		}
	})
	d := primary.Register(spec("gauge", ms(40), ms(50), ms(250)))
	if !d.Accepted {
		t.Fatalf("registration rejected: %s", d.Reason)
	}
	clk.RunFor(300 * time.Millisecond)

	if !obs.Joined() {
		t.Fatal("observer never joined")
	}
	if got := primary.SyncedPeers(); got != 1 {
		t.Fatalf("SyncedPeers() = %d, want 1 (the backup alone)", got)
	}
	if got := primary.ObserverPeers(); got != 1 {
		t.Fatalf("ObserverPeers() = %d, want 1", got)
	}
	for _, ps := range primary.PeerStates() {
		wantObserver := ps.Addr == "obs1:7000"
		if ps.Observer != wantObserver {
			t.Errorf("peer %s: Observer = %v, want %v", ps.Addr, ps.Observer, wantObserver)
		}
	}

	if err := obs.Promote(9); err != ErrNotBackup {
		t.Fatalf("Promote on an observer returned %v, want ErrNotBackup", err)
	}
	if obs.Role() != RoleObserver {
		t.Fatalf("failed promotion changed the role to %v", obs.Role())
	}
}

// TestCriticalWriteCompletesWithoutObserverQuorum pins the hybrid path's
// observer exclusion end to end: with only an observer attached, a
// critical write has no voting quorum to await — it degrades to local
// completion instead of soliciting (or timing out on) observer acks.
func TestCriticalWriteCompletesWithoutObserverQuorum(t *testing.T) {
	c := newChain(t, chainOpts{seed: 0xac3, hops: 1})
	d := c.primary.Register(ObjectSpec{
		Name:         "alarm",
		Size:         64,
		UpdatePeriod: ms(40),
		Constraint:   spec("alarm", ms(40), ms(50), ms(250)).Constraint,
		Critical:     true,
	})
	if !d.Accepted {
		t.Fatalf("registration rejected: %s", d.Reason)
	}
	c.clk.RunFor(300 * time.Millisecond)
	c.requireJoined(t)
	if got := c.primary.SyncedPeers(); got != 0 {
		t.Fatalf("SyncedPeers() = %d, want 0 — the observer leaked into the degree", got)
	}

	var calls int
	var gotErr error
	c.primary.ClientWrite("alarm", []byte("fire"), func(_ time.Duration, err error) {
		calls++
		gotErr = err
	})
	c.clk.RunFor(50 * time.Millisecond)
	if calls != 1 {
		t.Fatalf("critical write completed %d times, want 1", calls)
	}
	if gotErr != nil {
		t.Fatalf("critical write failed: %v (observer acks must not be awaited)", gotErr)
	}
}

// TestRoleLattice pins the role predicates the N-role refactor hangs
// every guard on. A new role must make a deliberate choice on each axis.
func TestRoleLattice(t *testing.T) {
	cases := []struct {
		role                                     Role
		writable, votes, reads, shadows, fansOut bool
	}{
		{RolePrimary, true, true, true, false, true},
		{RoleBackup, false, true, true, true, false},
		{RoleObserver, false, false, true, true, true},
	}
	for _, tc := range cases {
		if got := tc.role.IsWritable(); got != tc.writable {
			t.Errorf("%v.IsWritable() = %v, want %v", tc.role, got, tc.writable)
		}
		if got := tc.role.CanVote(); got != tc.votes {
			t.Errorf("%v.CanVote() = %v, want %v", tc.role, got, tc.votes)
		}
		if got := tc.role.ServesReads(); got != tc.reads {
			t.Errorf("%v.ServesReads() = %v, want %v", tc.role, got, tc.reads)
		}
		if got := tc.role.Shadows(); got != tc.shadows {
			t.Errorf("%v.Shadows() = %v, want %v", tc.role, got, tc.shadows)
		}
		if got := tc.role.FansOut(); got != tc.fansOut {
			t.Errorf("%v.FansOut() = %v, want %v", tc.role, got, tc.fansOut)
		}
	}
}
