package core

import (
	"time"

	"rtpb/internal/durable"
	"rtpb/internal/temporal"
)

// This file is the replica side of the durable persistence seam: append
// on apply, snapshot on epoch advance (and every SnapshotEvery applies,
// and whenever the async log reports drop-to-snapshot), restore on
// restart. Every hook is a no-op when Config.Durable is nil, and none
// of them ever blocks on disk — internal/durable's appends are
// enqueue-only and snapshots hand off a private copy.

// logSpec records an admitted or installed object spec.
func (r *Replica) logSpec(o *object) {
	if r.cfg.Durable == nil || r.durRestoring || o.spec.Name == "" {
		return
	}
	r.cfg.Durable.AppendSpec(r.durSpec(o))
}

// logApply records an applied value and drives the periodic snapshot
// cadence. Backup applies pass their wire coordinates; primary-authored
// writes pass the serving epoch.
func (r *Replica) logApply(o *object, epoch uint32, seq uint64, version time.Time, value []byte) {
	if r.cfg.Durable == nil || r.durRestoring {
		return
	}
	r.cfg.Durable.AppendApply(o.id, epoch, seq, version.UnixNano(), value)
	r.durApplies++
	if r.durApplies >= r.cfg.SnapshotEvery || r.cfg.Durable.NeedsSnapshot() {
		r.durableSnapshot()
	}
}

// logUnregister records an object removal so recovery cannot resurrect
// it.
func (r *Replica) logUnregister(id uint32) {
	if r.cfg.Durable == nil || r.durRestoring {
		return
	}
	r.cfg.Durable.AppendUnregister(id)
}

// noteEpochDurable records an epoch advance (promotion, demotion, or
// fencing adoption) and snapshots: the epoch record rolls the log to a
// fresh segment, so segments never span epochs and pruning drops whole
// epochs below the stable mark.
func (r *Replica) noteEpochDurable() {
	if r.cfg.Durable == nil || r.durRestoring {
		return
	}
	r.cfg.Durable.AppendEpoch(r.epoch)
	r.durableSnapshot()
}

// durableSnapshot hands the full object image to the log. Values are
// copied here, on the executor, so the background writer never races
// the table.
func (r *Replica) durableSnapshot() {
	if r.cfg.Durable == nil {
		return
	}
	objs := make([]durable.ObjectState, 0, len(r.adm.objects))
	for _, o := range r.adm.ordered() {
		if o.spec.Name == "" {
			continue // spec-less placeholder: nothing recoverable
		}
		st := r.durSpec(o)
		st.Epoch = o.recvEpoch
		if r.role == RolePrimary {
			st.Epoch = r.epoch
		}
		st.Seq = o.seq
		st.Version = o.version.UnixNano()
		st.HasData = o.hasData
		if o.hasData {
			st.Value = append([]byte(nil), o.value...)
		}
		objs = append(objs, st)
	}
	r.cfg.Durable.Snapshot(r.epoch, objs)
	r.durApplies = 0
}

// durSpec converts an object's spec to its durable image.
func (r *Replica) durSpec(o *object) durable.ObjectState {
	return durable.ObjectState{
		ID:       o.id,
		Name:     o.spec.Name,
		Size:     uint32(o.spec.Size),
		Period:   int64(o.spec.UpdatePeriod),
		DeltaP:   int64(o.spec.Constraint.DeltaP),
		DeltaB:   int64(o.spec.Constraint.DeltaB),
		Critical: o.spec.Critical,
	}
}

// RestoreDurable installs a recovered durable image into the table
// without re-logging it: specs are installed with the same derived
// update periods a wire registration would get, and values keep their
// recovered (epoch, seq, version) coordinates so the join digest
// advertises them and anti-entropy streams only what is genuinely
// newer elsewhere. Existing newer local state is never overwritten. It
// returns how many object values were seeded.
//
// This is the disk half of disk-fast rejoin: call it on a fresh
// replica before Join, and catch-up cost becomes proportional to
// downtime (the gap) rather than state size. The restored objects
// still re-enter through catch-up temporal semantics — bounds stay
// suspended until a live update lands within δ_B — because a disk
// image, like a transferred one, can be arbitrarily stale.
func (r *Replica) RestoreDurable(st *durable.State) int {
	if st == nil || len(st.Objects) == 0 {
		return 0
	}
	r.durRestoring = true
	defer func() { r.durRestoring = false }()
	restored := 0
	for i := range st.Objects {
		d := &st.Objects[i]
		if d.Name == "" {
			continue
		}
		o := r.adm.placeholder(d.ID)
		if o.spec.Name == "" {
			r.adm.installSpec(o, ObjectSpec{
				Name:         d.Name,
				Size:         int(d.Size),
				UpdatePeriod: time.Duration(d.Period),
				Constraint: temporal.ExternalConstraint{
					DeltaP: time.Duration(d.DeltaP),
					DeltaB: time.Duration(d.DeltaB),
				},
				Critical: d.Critical,
			})
		}
		if d.HasData && !o.hasData {
			o.recvEpoch = d.Epoch
			o.seq = d.Seq
			o.version = time.Unix(0, d.Version)
			o.value = append(o.value[:0], d.Value...)
			o.hasData = true
			restored++
		}
	}
	if st.Epoch > r.epoch {
		r.epoch = st.Epoch
	}
	r.durRestored += restored
	return restored
}

// NoteDiskRestore records values seeded from a recovered durable image
// outside RestoreDurable — a resumed primary re-enters its specs
// through Register (rebuilding admission accounting) and seeds values
// with SeedObject, and this keeps RecoverySource and RestoredObjects
// truthful about where that state came from.
func (r *Replica) NoteDiskRestore(n int) {
	if n > 0 {
		r.durRestored += n
	}
}

// DurableStats reports the durable store's state; ok is false when
// persistence is not enabled.
func (r *Replica) DurableStats() (st durable.Stats, ok bool) {
	if r.cfg.Durable == nil {
		return durable.Stats{}, false
	}
	return r.cfg.Durable.Stats(), true
}

// ForceDurableSnapshot captures a snapshot now (the ctl SNAPSHOT verb),
// waits for the writer to commit it, and reports the resulting stats.
func (r *Replica) ForceDurableSnapshot() (durable.Stats, bool) {
	if r.cfg.Durable == nil {
		return durable.Stats{}, false
	}
	r.durableSnapshot()
	r.cfg.Durable.Sync()
	return r.cfg.Durable.Stats(), true
}

// RecoverySource names where this replica's state came from: "none"
// (no durable store), "disk" (a recovered image seeded the table — the
// join digest then limited anti-entropy to the gap), or "network"
// (durable store present but nothing restored; a fresh replica fills
// entirely over the wire).
func (r *Replica) RecoverySource() string {
	switch {
	case r.cfg.Durable == nil:
		return "none"
	case r.durRestored > 0:
		return "disk"
	default:
		return "network"
	}
}

// RestoredObjects reports how many object values RestoreDurable seeded.
func (r *Replica) RestoredObjects() int { return r.durRestored }
