package core

import (
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/cpu"
	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// This file implements the hybrid active/passive path the paper lists as
// future work (Section 7): objects registered with Critical=true get
// active-replication write semantics — the client's response waits until
// every live backup acknowledges the update — while the rest of the
// object table keeps RTPB's decoupled passive scheduling. The two styles
// coexist in one primary, sharing the CPU, the wire format, and the
// failure detector.

// pendingAck tracks one critical write awaiting acknowledgement.
type pendingAck struct {
	seq     uint64
	version time.Time
	payload []byte
	waiting map[xkernel.Addr]bool
	arrival time.Time
	done    func(latency time.Duration, err error)
	retry   *clock.Event
	retries int
	// sentAt is the instant the most recent transmission entered the
	// network; retransmitted marks the exchange tainted for RTT sampling
	// (Karn's rule: an ack that may answer either transmission carries no
	// usable round-trip measurement).
	sentAt        time.Time
	retransmitted bool
}

// startCriticalWrite transmits the just-installed value with an
// acknowledgement request and registers the pending completion. It runs
// on the clock executor after the client op's CPU cost.
func (p *Primary) startCriticalWrite(o *object, arrival time.Time, done func(time.Duration, error)) {
	finish := func(lat time.Duration, err error) {
		if done != nil {
			done(lat, err)
		}
	}
	waiting := make(map[xkernel.Addr]bool)
	for _, pr := range p.peers {
		// A syncing peer is excluded from the quorum: it may hold
		// arbitrarily stale state, so its ack proves nothing about
		// redundancy (it still receives the update through the regular
		// broadcast, which is what completes its catch-up). Observer
		// peers are read-only bystanders: their acks are never
		// solicited and never count.
		if pr.alive && !pr.syncing && !pr.observer {
			waiting[pr.addr] = true
		}
	}
	if len(waiting) == 0 {
		// No live backup: degrade to local completion, like the paper's
		// primary continuing service while recruiting.
		finish(p.clk.Now().Sub(arrival), nil)
		return
	}
	o.seq++
	pa := &pendingAck{
		seq:     o.seq,
		version: o.version,
		payload: append([]byte(nil), o.value...),
		waiting: waiting,
		arrival: arrival,
		done:    done,
	}
	if o.pendingAcks == nil {
		o.pendingAcks = make(map[uint64]*pendingAck)
	}
	o.pendingAcks[pa.seq] = pa
	p.transmitCritical(o, pa)
}

// transmitCritical pays the CPU cost and emits the acked update to every
// peer still waited on, then arms the retransmission timer. Critical
// transmissions use the high-priority CPU class: the client is blocked on
// them.
func (p *Primary) transmitCritical(o *object, pa *pendingAck) {
	if !p.running {
		return
	}
	cost := time.Duration(len(pa.waiting)) * p.cfg.Costs.sendCost(len(pa.payload))
	p.proc.Submit(cpu.High, cost, func() {
		if !p.running || o.pendingAcks[pa.seq] != pa {
			return // completed or abandoned while queued
		}
		o.lastSentSeq = pa.seq
		o.lastSentVersion = pa.version
		o.lastSentAt = p.clk.Now()
		pa.sentAt = o.lastSentAt
		if pa.retries > 0 {
			pa.retransmitted = true
		}
		msg := &wire.Update{
			Epoch:        p.epoch,
			ObjectID:     o.id,
			Seq:          pa.seq,
			Version:      pa.version.UnixNano(),
			AckRequested: true,
			Payload:      pa.payload,
		}
		encoded := wire.Encode(msg)
		for addr := range pa.waiting {
			if pr := p.peerByAddr(addr); pr != nil {
				_ = pr.sess.Push(xkernel.NewMessage(encoded))
			}
		}
		if p.OnSend != nil {
			p.OnSend(o.id, o.spec.Name, pa.seq, pa.version)
		}
		pa.retry = p.clk.Schedule(p.criticalRetryDelay(pa), func() {
			p.criticalTimeout(o, pa)
		})
	})
}

// criticalRetryDelay is the adaptive ack timeout for one critical write:
// the slowest waited-on peer's RTO under that peer's backoff, falling
// back to the static CriticalAckTimeout when no link is attributable.
func (p *Primary) criticalRetryDelay(pa *pendingAck) time.Duration {
	var d time.Duration
	for _, pr := range p.peers {
		if !pa.waiting[pr.addr] {
			continue
		}
		if v := p.retryDelay(pr, pa.retries); v > d {
			d = v
		}
	}
	if d == 0 {
		d = p.cfg.CriticalAckTimeout
	}
	return d
}

func (p *Primary) criticalTimeout(o *object, pa *pendingAck) {
	if o.pendingAcks[pa.seq] != pa {
		return
	}
	// Every peer still waited on failed to ack inside the timeout: loss
	// evidence for those links.
	for _, pr := range p.peers {
		if pa.waiting[pr.addr] {
			pr.est.SampleLoss()
		}
	}
	pa.retries++
	if pa.retries >= p.cfg.CriticalMaxRetries {
		delete(o.pendingAcks, pa.seq)
		if pa.done != nil {
			pa.done(p.clk.Now().Sub(pa.arrival), ErrAckTimeout)
		}
		return
	}
	p.transmitCritical(o, pa)
}

// handleUpdateAck feeds a backup's acknowledgement into the pending
// critical write it answers.
func (p *Primary) handleUpdateAck(from xkernel.Addr, t *wire.UpdateAck) {
	o, ok := p.adm.objects[t.ObjectID]
	if !ok || o.pendingAcks == nil {
		return
	}
	pa, ok := o.pendingAcks[t.Seq]
	if !ok {
		return // late ack after completion
	}
	if pr := p.peerByAddr(from); pr != nil && pa.waiting[from] {
		if pa.retransmitted {
			pr.est.SampleAck() // Karn: delivered, but the RTT is ambiguous
		} else {
			p.sampleRTT(pr, pa.sentAt)
		}
	}
	delete(pa.waiting, from)
	if len(pa.waiting) > 0 {
		return
	}
	p.completeCritical(o, pa, nil)
}

func (p *Primary) completeCritical(o *object, pa *pendingAck, err error) {
	delete(o.pendingAcks, pa.seq)
	if pa.retry != nil {
		pa.retry.Cancel()
	}
	if pa.done != nil {
		pa.done(p.clk.Now().Sub(pa.arrival), err)
	}
}

// dropPeerFromCriticalWaits removes a dead peer from every pending
// critical write so the client is not held hostage by a failed backup.
func (p *Primary) dropPeerFromCriticalWaits(addr xkernel.Addr) {
	for _, o := range p.adm.objects {
		for _, pa := range o.pendingAcks {
			if !pa.waiting[addr] {
				continue
			}
			delete(pa.waiting, addr)
			if len(pa.waiting) == 0 {
				p.completeCritical(o, pa, nil)
			}
		}
	}
}
