package core

import (
	"errors"
	"fmt"

	"rtpb/internal/wire"
)

// This file implements object removal, the primitive underneath the shard
// layer's rebalancing: a migration admits the object on the destination
// group first and only then removes it here, so the object is never
// without a schedulable home. Removal revokes the admission reservation
// (freeing schedulability headroom for future registrations), stops the
// update task, and broadcasts an epoch-fenced Unregister so backups
// release their reservations too.

// ErrConstrained rejects removal of an object bound by an inter-object
// constraint: deleting one endpoint would silently void the surviving
// object's δ_ij guarantee.
var ErrConstrained = errors.New("core: object bound by an inter-object constraint")

// remove deletes one admitted object from the table and returns it.
func (a *admission) remove(name string) (*object, error) {
	o, err := a.byNameOrErr(name)
	if err != nil {
		return nil, err
	}
	for _, c := range a.inter {
		if c.I == name || c.J == name {
			return nil, fmt.Errorf("%w: %q", ErrConstrained, name)
		}
	}
	delete(a.objects, o.id)
	delete(a.byName, name)
	if a.cfg.SchedTest == SchedTestDCS && !a.cfg.DisableAdmissionControl && len(a.objects) > 0 {
		// Re-specialize the survivors: with the departed object's task
		// gone, S_r may grant the rest longer harmonic periods.
		_ = a.applyDCS()
	}
	return o, nil
}

// feasible reports whether the resident task set passes the configured
// schedulability test.
func (a *admission) feasible() bool {
	return a.cfg.SchedTest.feasible(a.taskSet())
}

// RemoveObject revokes one object's registration: the update task stops,
// pending critical writes for it complete with ErrUnknownName, queued
// transmissions are dropped, and an Unregister is broadcast so every
// backup releases the object. Objects bound by an inter-object
// constraint cannot be removed (ErrConstrained).
func (p *Primary) RemoveObject(name string) error {
	if !p.running {
		return ErrStopped
	}
	if p.role != RolePrimary {
		return ErrNotPrimary
	}
	o, err := p.adm.remove(name)
	if err != nil {
		return err
	}
	p.logUnregister(o.id)
	if o.task != nil {
		o.task.Stop()
		o.task = nil
	}
	for _, pa := range o.pendingAcks {
		p.completeCritical(o, pa, fmt.Errorf("%w: %q", ErrUnknownName, name))
	}
	for i, id := range p.pumpOrder {
		if id == o.id {
			p.pumpOrder = append(p.pumpOrder[:i], p.pumpOrder[i+1:]...)
			break
		}
	}
	for _, pr := range p.peers {
		pr.queue.remove(o.id)
		delete(pr.registered, o.id)
	}
	if p.gov != nil {
		p.gov.forget(o.id)
	}
	if p.cfg.SchedTest == SchedTestDCS {
		// The survivors' periods may have been re-specialized.
		for _, other := range p.adm.objects {
			p.retimeUpdateTask(other)
		}
	}
	p.broadcast(&wire.Unregister{Epoch: p.epoch, ObjectID: o.id})
	return nil
}

// Feasible reports whether the primary's resident task set still passes
// its configured schedulability test. The placement layer's property —
// no accepted placement sequence may overcommit a shard — is stated in
// terms of this predicate.
func (p *Primary) Feasible() bool { return p.adm.feasible() }

// ResyncPeers restarts the chunked anti-entropy exchange toward every
// live peer. The digest diff ensures only missing or stale entries are
// streamed, so resyncing after a migration carries exactly the migrated
// object's spec and state to the backups; everything already current is
// skipped. Peers are marked syncing (excluded from quorums) until their
// exchange completes.
func (p *Primary) ResyncPeers() {
	if !p.running || p.role != RolePrimary {
		return
	}
	for _, pr := range p.peers {
		if pr.alive {
			p.beginJoin(pr)
		}
	}
}

// handleUnregister releases one object at the backup. It is epoch-fenced
// like every other mutation from the primary.
func (b *Backup) handleUnregister(t *wire.Unregister) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	o, ok := b.adm.objects[t.ObjectID]
	if !ok {
		return
	}
	if o.catchingUp {
		b.catchingUp--
	}
	if o.spec.Name != "" {
		delete(b.adm.byName, o.spec.Name)
	}
	delete(b.adm.objects, t.ObjectID)
	b.logUnregister(t.ObjectID)
}
