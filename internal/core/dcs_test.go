package core

import (
	"testing"
	"time"

	"rtpb/internal/netsim"
	"rtpb/internal/sched"
)

// TestDCSAdmissionAssignsHarmonicPeriods verifies that SchedTestDCS does
// not merely check Theorem 3's condition but installs the S_r-specialized
// (harmonic) update periods.
func TestDCSAdmissionAssignsHarmonicPeriods(t *testing.T) {
	cfg := testConfig()
	cfg.SchedTest = SchedTestDCS
	a := newAdmission(cfg)
	// Three objects with deliberately non-harmonic nominal periods
	// (windows chosen so SlackFactor·(δ−ℓ) differ awkwardly).
	windows := []time.Duration{ms(45), ms(77), ms(133)}
	for i, w := range windows {
		s := spec("o"+string(rune('a'+i)), ms(20), ms(25), ms(25)+w)
		if _, d := a.admit(s); !d.Accepted {
			t.Fatalf("object %d rejected: %s", i, d.Reason)
		}
	}
	var periods []time.Duration
	for _, o := range a.objects {
		if o.updatePeriod > o.nominalPeriod {
			t.Fatalf("specialized period %v exceeds nominal %v (constraint would break)",
				o.updatePeriod, o.nominalPeriod)
		}
		periods = append(periods, o.updatePeriod)
	}
	for i := range periods {
		for j := range periods {
			a, b := periods[i], periods[j]
			if a > b {
				a, b = b, a
			}
			if b%a != 0 {
				t.Fatalf("periods %v not harmonic", periods)
			}
		}
	}
}

// TestDCSAdmissionLiveSendsExactlyPeriodic verifies the point of the
// exercise: under DCS admission, a lightly loaded primary's update
// transmissions show (near-)zero phase variance against the specialized
// period.
func TestDCSAdmissionLiveSendsExactlyPeriodic(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed: 71,
		link: netsim.LinkParams{Delay: ms(2)},
		mutateP: func(cfg *Config) {
			cfg.SchedTest = SchedTestDCS
		},
	})
	d := c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))
	rX, ok := c.primary.UpdatePeriod("x")
	if !ok {
		t.Fatal("no update period")
	}
	if rX != d.UpdatePeriod {
		// The decision reports the pre-specialization period of the
		// single object (with one object, specialization is identity).
		t.Fatalf("period %v vs decision %v", rX, d.UpdatePeriod)
	}
	var sends []time.Duration
	base := c.clk.Now()
	c.primary.OnSend = func(_ uint32, _ string, _ uint64, _ time.Time) {
		sends = append(sends, c.clk.Now().Sub(base))
	}
	stop := c.writeEvery("x", ms(40), func(i int) []byte { return []byte{byte(i)} })
	defer stop.Stop()
	c.clk.RunFor(2 * time.Second)
	v, okV := sched.MeasuredPhaseVariance(sends, rX, 1)
	if !okV {
		t.Fatalf("too few sends: %d", len(sends))
	}
	// The only jitter source is a client op occupying the FIFO CPU.
	if v > DefaultCosts().ClientOp+ms(1) {
		t.Fatalf("live phase variance %v under DCS admission", v)
	}
}

// TestDCSAdmissionRejectsWhenSpecializationInfeasible drives density past
// 1 after specialization.
func TestDCSAdmissionRejectsWhenSpecializationInfeasible(t *testing.T) {
	cfg := testConfig()
	cfg.SchedTest = SchedTestDCS
	a := newAdmission(cfg)
	admitted, rejected := 0, 0
	for i := 0; i < 300; i++ {
		name := "o" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		s := spec(name, ms(10), ms(12), ms(20)) // tight windows, heavy set
		if _, d := a.admit(s); d.Accepted {
			admitted++
		} else {
			rejected++
		}
	}
	if rejected == 0 {
		t.Fatalf("DCS admission never rejected (admitted %d)", admitted)
	}
	if admitted == 0 {
		t.Fatal("DCS admission rejected everything")
	}
	// The surviving assignment must still be harmonic and feasible.
	ts := make(sched.TaskSet, 0, admitted)
	for _, o := range a.objects {
		ts = append(ts, sched.Task{Name: o.spec.Name, Period: o.updatePeriod,
			WCET: cfg.Costs.sendCost(o.spec.Size)})
	}
	density := 0.0
	for _, task := range ts {
		density += float64(task.WCET) / float64(task.Period)
	}
	if density > 1.0001 {
		t.Fatalf("post-rejection density %.4f exceeds 1", density)
	}
}
