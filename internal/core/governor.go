package core

import (
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/cpu"
	"rtpb/internal/wire"
)

// ObjectMode is an object's rung on the overload governor's degradation
// ladder.
type ObjectMode uint8

const (
	// ModeNormal is full-rate decoupled update scheduling (the admitted
	// contract).
	ModeNormal ObjectMode = iota + 1
	// ModeCompressed stretches the object's update period, trading bound
	// tightness for CPU and network headroom. The effective external
	// bound loosens by the period stretch and is announced to the backup.
	ModeCompressed
	// ModeShed suspends the object's update transmissions entirely; the
	// backup is told its image carries no temporal guarantee until the
	// object is promoted again.
	ModeShed
)

// String returns the mode name.
func (m ObjectMode) String() string {
	switch m {
	case ModeNormal:
		return "normal"
	case ModeCompressed:
		return "compressed"
	case ModeShed:
		return "shed"
	default:
		return fmt.Sprintf("ObjectMode(%d)", uint8(m))
	}
}

// GovernorConfig tunes the primary's overload governor. The governor
// samples staleness headroom, send-queue depth, and transmission deadline
// misses on the virtual clock every Interval; when the replica is
// overloaded it walks objects down the degradation ladder (normal →
// compressed → shed), least-critical first per admission ordering, and
// climbs back up with hysteresis once the overload clears.
type GovernorConfig struct {
	// Enable turns the governor on; the zero value leaves the primary
	// ungoverned (the seed's behaviour).
	Enable bool
	// Interval is the sampling period; defaults to 25ms.
	Interval time.Duration
	// DemoteStaleness is the transmission-slip fraction of an object's
	// δ_B past which the governor counts overload pressure: how far past
	// its expected update period an object's pending state has waited,
	// relative to its staleness budget. Defaults to 0.5.
	DemoteStaleness float64
	// PromoteStaleness is the slip fraction every object must be under
	// for a tick to count as healthy; defaults to 0.3. Keeping it below
	// DemoteStaleness is the ladder's hysteresis band.
	PromoteStaleness float64
	// QueuePressure is the send-queue occupancy (depth over admitted
	// objects) that counts as overload pressure; defaults to 0.75.
	QueuePressure float64
	// MissPressure is how many transmission deadline misses (coalesced
	// sends) per tick count as overload pressure; defaults to 2.
	MissPressure int
	// PromoteHold is how many consecutive healthy ticks must pass before
	// one object is promoted a rung; defaults to 6.
	PromoteHold int
	// CompressedStretch multiplies a compressed object's update period;
	// defaults to 1.5, capped so the stretched period stays within the
	// Theorem 5 maximum (δ_B − ℓ).
	CompressedStretch float64
}

func (g *GovernorConfig) normalize(c *Config) {
	if !g.Enable {
		return
	}
	if g.Interval <= 0 {
		g.Interval = 25 * time.Millisecond
	}
	if g.DemoteStaleness <= 0 {
		g.DemoteStaleness = 0.5
	}
	if g.PromoteStaleness <= 0 {
		g.PromoteStaleness = 0.3
	}
	if g.QueuePressure <= 0 {
		g.QueuePressure = 0.75
	}
	if g.MissPressure <= 0 {
		g.MissPressure = 2
	}
	if g.PromoteHold <= 0 {
		g.PromoteHold = 6
	}
	if g.CompressedStretch <= 1 {
		g.CompressedStretch = 1.5
	}
}

// GovernorStats summarizes the governor's activity for observers.
type GovernorStats struct {
	// Demotions and Promotions count rung transitions.
	Demotions  int
	Promotions int
	// Degraded is the number of objects currently below ModeNormal.
	Degraded int
	// Shed is the number of objects currently at ModeShed.
	Shed int
}

// governor implements the degradation ladder on the primary.
type governor struct {
	p         *Primary
	cfg       GovernorConfig
	task      *clock.Periodic
	modes     map[uint32]ObjectMode
	healthy   int
	occStreak int
	seq       uint64
	stats     GovernorStats
}

func newGovernor(p *Primary) *governor {
	g := &governor{p: p, cfg: p.cfg.Governor, modes: make(map[uint32]ObjectMode)}
	g.task = clock.NewPeriodic(p.clk, g.cfg.Interval, g.cfg.Interval, g.tick)
	return g
}

func (g *governor) stop() {
	if g.task != nil {
		g.task.Stop()
	}
}

// mode returns the object's current rung (normal when never demoted).
func (g *governor) mode(id uint32) ObjectMode {
	if m, ok := g.modes[id]; ok {
		return m
	}
	return ModeNormal
}

// shed reports whether the object's transmissions are suspended.
func (g *governor) shed(id uint32) bool { return g.mode(id) == ModeShed }

// periodFor returns the object's effective update period in mode m: the
// admitted r_i, or the compressed stretch capped at the Theorem 5 maximum
// δ_B − ℓ.
func (g *governor) periodFor(o *object, m ObjectMode) time.Duration {
	if m != ModeCompressed {
		return o.updatePeriod
	}
	stretched := time.Duration(float64(o.updatePeriod) * g.cfg.CompressedStretch)
	if ceil := o.spec.Constraint.DeltaB - g.p.cfg.Ell; ceil > 0 && stretched > ceil {
		stretched = ceil
	}
	if stretched < o.updatePeriod {
		stretched = o.updatePeriod
	}
	return stretched
}

// effectiveBound is the external bound the primary still maintains for
// the object in mode m: the admitted δ_B, loosened by the period stretch
// when compressed, or zero (no guarantee) when shed.
func (g *governor) effectiveBound(o *object, m ObjectMode) time.Duration {
	switch m {
	case ModeCompressed:
		return o.spec.Constraint.DeltaB + (g.periodFor(o, ModeCompressed) - o.updatePeriod)
	case ModeShed:
		return 0
	default:
		return o.spec.Constraint.DeltaB
	}
}

// tick samples the overload signals and moves at most one object one rung.
func (g *governor) tick() {
	p := g.p
	if !p.running {
		return
	}
	misses := p.deadlineMisses
	p.deadlineMisses = 0

	objs := p.adm.ordered()
	if len(objs) == 0 {
		return
	}
	now := p.clk.Now()
	worstLag := 0.0
	for _, o := range objs {
		if g.mode(o.id) == ModeShed {
			continue
		}
		worstLag = max(worstLag, g.lagFraction(o, now))
	}
	maxOcc := 0.0
	for _, pr := range p.peers {
		if pr.alive && pr.queue != nil {
			maxOcc = max(maxOcc, float64(pr.queue.depth())/float64(len(objs)))
		}
	}

	// Synchronized update tasks legitimately spike the queue for a
	// drain's worth of time each period; occupancy only counts as
	// overload pressure when it persists across consecutive ticks.
	if maxOcc >= g.cfg.QueuePressure {
		g.occStreak++
	} else {
		g.occStreak = 0
	}
	pressured := worstLag >= g.cfg.DemoteStaleness ||
		g.occStreak >= 2 ||
		misses >= g.cfg.MissPressure
	healthy := worstLag < g.cfg.PromoteStaleness && misses == 0 &&
		maxOcc < g.cfg.QueuePressure/2

	switch {
	case pressured:
		g.healthy = 0
		g.demoteOne(objs)
	case healthy:
		g.healthy++
		if g.healthy >= g.cfg.PromoteHold {
			g.healthy = 0
			g.promoteOne(objs)
		}
	default:
		g.healthy = 0
	}
}

// lagFraction estimates how much of the object's staleness budget the
// transmission backlog has consumed: the slip past the object's expected
// update period — time since the last update left for the backup while
// newer state waits, minus the period itself — as a fraction of δ_B. In
// steady state a new version is always pending for most of the period,
// so the raw waiting time is subtracted down to the part the schedule
// does not already account for; an unloaded primary reads ~0 here
// regardless of how r_i compares to δ_B.
func (g *governor) lagFraction(o *object, now time.Time) float64 {
	if !o.hasData || o.spec.Constraint.DeltaB <= 0 {
		return 0
	}
	var lag time.Duration
	switch {
	case o.lastSentAt.IsZero():
		lag = now.Sub(o.version)
	case o.version.After(o.lastSentVersion):
		lag = now.Sub(o.lastSentAt)
	default:
		return 0 // everything sent: the backup is as current as we are
	}
	lag -= g.periodFor(o, g.mode(o.id))
	if lag <= 0 {
		return 0
	}
	return float64(lag) / float64(o.spec.Constraint.DeltaB)
}

// demoteOne walks the least-critical demotable object one rung down:
// every normal object compresses before anything is shed, and within a
// rung the latest-admitted object goes first. Critical objects and the
// most-critical admitted object are never shed.
func (g *governor) demoteOne(objs []*object) {
	for i := len(objs) - 1; i >= 0; i-- {
		o := objs[i]
		if !o.spec.Critical && g.mode(o.id) == ModeNormal {
			g.setMode(o, ModeCompressed)
			return
		}
	}
	for i := len(objs) - 1; i >= 1; i-- { // objs[0] is never shed
		o := objs[i]
		if !o.spec.Critical && g.mode(o.id) == ModeCompressed {
			g.setMode(o, ModeShed)
			return
		}
	}
}

// promoteOne climbs the most-critical demoted object one rung up: shed
// objects resume (compressed) before any compressed object returns to
// normal rate.
func (g *governor) promoteOne(objs []*object) {
	for _, o := range objs {
		if g.mode(o.id) == ModeShed {
			g.setMode(o, ModeCompressed)
			return
		}
	}
	for _, o := range objs {
		if g.mode(o.id) == ModeCompressed {
			g.setMode(o, ModeNormal)
			return
		}
	}
}

// setMode applies one rung transition: retime or gate the update task,
// announce the change to the backups (re-sent for loss tolerance), and
// fire the observer hook.
func (g *governor) setMode(o *object, m ObjectMode) {
	old := g.mode(o.id)
	if old == m {
		return
	}
	g.modes[o.id] = m
	if m.less(old) {
		g.stats.Promotions++
	} else {
		g.stats.Demotions++
	}
	g.recount()
	g.p.retimeUpdateTask(o)
	if m.less(old) && m != ModeShed {
		// Climbing out of shed or compressed: refresh the backup's image
		// immediately rather than waiting out a full (possibly stretched)
		// period.
		g.p.transmit(o, cpu.Low)
	}
	g.announce(o, m)
	if g.p.OnModeChange != nil {
		g.p.OnModeChange(o.id, o.spec.Name, m, g.effectiveBound(o, m))
	}
}

// less reports whether m is a higher (healthier) rung than other.
func (m ObjectMode) less(other ObjectMode) bool { return m < other }

// announce broadcasts the ModeChange and schedules two spaced re-sends so
// a lossy link still learns the ladder position; stale re-sends are
// suppressed by the per-object sequence number on the receiver and by the
// latest-wins check here.
func (g *governor) announce(o *object, m ObjectMode) {
	g.seq++
	msg := &wire.ModeChange{
		Epoch:          g.p.epoch,
		ObjectID:       o.id,
		Mode:           uint8(m),
		Seq:            g.seq,
		EffectiveBound: g.effectiveBound(o, m),
	}
	g.p.broadcast(msg)
	spacing := max(4*g.p.cfg.Ell, 20*time.Millisecond)
	for i := 1; i <= 2; i++ {
		g.p.clk.Schedule(time.Duration(i)*spacing, func() {
			if g.p.running && g.mode(o.id) == m {
				g.p.broadcast(msg)
			}
		})
	}
}

// overloaded reports whether any object currently sits below ModeNormal —
// the signal the anti-entropy chunk sender yields to, so catch-up traffic
// never competes with a primary already shedding load.
func (g *governor) overloaded() bool {
	return g.stats.Degraded > 0 || g.stats.Shed > 0
}

// forget drops a removed object's ladder position.
func (g *governor) forget(id uint32) {
	if _, ok := g.modes[id]; ok {
		delete(g.modes, id)
		g.recount()
	}
}

func (g *governor) recount() {
	g.stats.Degraded, g.stats.Shed = 0, 0
	for _, m := range g.modes {
		if m != ModeNormal {
			g.stats.Degraded++
		}
		if m == ModeShed {
			g.stats.Shed++
		}
	}
}
