package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/clocksync"
	"rtpb/internal/cpu"
	"rtpb/internal/resilience"
	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// Role is the replica state machine's current state: every replica is one
// automaton serving (primary), shadowing (backup), or observing
// (read-only). Failover flips primary ⇄ backup in place — the object
// table, admission ledger, and epoch fence all carry across the
// transition untouched. Observers sit outside the failover lattice: they
// apply the same update stream but can never be promoted.
type Role uint8

const (
	// RoleBackup shadows a primary: applies updates, detects gaps,
	// answers heartbeats, and runs the join/catch-up exchange.
	RoleBackup Role = iota
	// RolePrimary serves clients: admission control, client writes, and
	// the decoupled update transmission schedule toward its peers.
	RolePrimary
	// RoleObserver is a read-only replica subscribed to an upstream — a
	// primary or another observer (chained fan-out). It applies the same
	// update/frame stream through the backup handlers, serves
	// certificate reads with chain-accumulated uncertainty, and
	// re-broadcasts the stream to its own downstream subscribers; it is
	// excluded from quorums, admission, failover candidacy, and repair
	// recruitment.
	RoleObserver
)

func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleBackup:
		return "backup"
	case RoleObserver:
		return "observer"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// IsWritable reports whether the role accepts client writes and runs
// admission control. Only the primary writes.
func (r Role) IsWritable() bool { return r == RolePrimary }

// CanVote reports whether the role participates in quorums and counts
// toward the replication degree: primaries and backups do, observers
// are read-only bystanders.
func (r Role) CanVote() bool { return r == RolePrimary || r == RoleBackup }

// ServesReads reports whether the role serves certificate reads. Every
// role does — honesty lives in the certificate (age, θ, mode), not in
// refusing the read.
func (r Role) ServesReads() bool { return true }

// Shadows reports whether the role maintains an upstream session and
// applies a replicated update stream (backup and observer).
func (r Role) Shadows() bool { return r == RoleBackup || r == RoleObserver }

// FansOut reports whether the role serves downstream subscribers
// through the join/update fan-out path: the primary toward its peers,
// and observers re-broadcasting along a chain.
func (r Role) FansOut() bool { return r == RolePrimary || r == RoleObserver }

// wireRole maps the replica role onto its wire representation.
func (r Role) wireRole() wire.Role {
	switch r {
	case RolePrimary:
		return wire.RolePrimary
	case RoleObserver:
		return wire.RoleObserver
	default:
		return wire.RoleBackup
	}
}

// Role-transition errors: primary-only operations (admission, client
// writes, peer management) and backup-only operations (joining) report
// these when invoked in the wrong state.
var (
	ErrNotPrimary = errors.New("core: replica is not serving as primary")
	ErrNotBackup  = errors.New("core: replica is not serving as backup")
)

// Replica is the RTPB replica state machine. One kernel owns the object
// table (the admission ledger doubles as the backup's replica table), the
// epoch ledger, the wire demux, the send path with its bounded queues and
// link estimators, the overload governor, and the anti-entropy transfer
// engine; the Primary and Backup names are thin role views over it.
//
// The role decides the active task set:
//
//	RolePrimary: per-object periodic update tasks (or the compressed
//	  pump), registration forwarding, join/chunk streaming, heartbeat
//	  probing of peers, the overload governor.
//	RoleBackup: gap detection + retransmit requests, digest retries of
//	  an in-flight join, heartbeat answering toward the upstream session.
//
// Promote and Demote flip between the two in place: no object is copied,
// no admission test re-runs (the specs were admitted once and the derived
// update periods ride in the ledger), and the temporal monitor keeps
// observing the same object identities across the transition.
//
// All methods must be called on the clock executor (callbacks, or Post
// for external goroutines), matching the serial execution model of the
// protocol graph.
type Replica struct {
	cfg  Config
	clk  clock.Clock
	proc *cpu.Resource
	adm  *admission
	port *xkernel.PortProtocol

	role        Role
	transitions int

	running bool
	epoch   uint32

	// --- durable persistence bookkeeping (see durable.go) ---

	// durApplies counts applies logged since the last snapshot;
	// durRestoring suppresses re-logging while RestoreDurable installs a
	// recovered image; durRestored counts disk-seeded values (the
	// "recovery source" the ctl LOGSTAT verb reports).
	durApplies   int
	durRestoring bool
	durRestored  int

	// --- primary-role state ---

	peers []*replicaPeer

	pumpActive bool
	pumpOrder  []uint32
	pumpNext   int

	// gov is the overload governor (nil when disabled or demoted).
	gov *governor
	// drainActive reports whether the bounded-queue drain pump holds a
	// pending CPU submission.
	drainActive bool
	// deadlineMisses counts update transmissions that found their object
	// still queued from the previous release (coalesced sends) since the
	// governor's last sample.
	deadlineMisses int
	// encBuf is the batched flush path's reused encode buffer; updMsg the
	// reused Update value. Together with the per-peer frame builders they
	// keep the steady-state update path allocation-free.
	encBuf []byte
	updMsg wire.Update

	// --- backup-role state ---

	// sess is the session toward the upstream primary (nil when none).
	sess    xkernel.Session
	pingSeq uint64

	// csync estimates the upstream peer's clock offset from TimeSync
	// probes piggybacked on outbound heartbeats (nil unless
	// Config.ClockSync). It survives role flips: a promoted replica
	// keeps its last estimate (honestly aged) until it shadows again.
	csync *clocksync.Estimator

	// gapBackoff spaces gap-recovery retransmission requests with
	// deterministic jitter.
	gapBackoff        *resilience.Backoff
	retransRequested  int
	retransSuppressed int

	// Join-exchange state (transfer.go): joining marks an accepted join
	// whose final chunk has not landed; joined latches once any join
	// completes; catchingUp counts objects still outside δ_i^B;
	// seenChunks dedups applied chunks by (generation, chunk).
	joining       bool
	joined        bool
	catchingUp    int
	xferApplied   int
	seenChunks    map[uint64]bool
	digestRetry   *clock.Event
	digestAttempt int
	joinBackoff   *resilience.Backoff

	// --- observer-role state ---

	// upstreamDepth and upstreamTheta hold the upstream's advertised
	// chain position from its latest ChainStatus: hops from the serving
	// primary and the clock uncertainty accumulated up to the upstream.
	// Until the first status arrives the upstream is assumed to be the
	// primary (depth 0, nothing inherited) — age still compounds
	// through the version timestamp regardless.
	upstreamDepth uint32
	upstreamTheta time.Duration

	// --- callbacks (role-relevant subsets fire; the rest stay silent) ---

	// OnSend, when set, observes every update transmission (after the
	// CPU cost, at the instant the datagram enters the network). With
	// multiple backups it fires once per transmission, not per peer.
	OnSend func(objectID uint32, name string, seq uint64, version time.Time)
	// OnClientDone, when set, observes every completed client write with
	// its response time.
	OnClientDone func(name string, latency time.Duration)
	// OnRetransmitRequest, when set, observes backup retransmission
	// requests.
	OnRetransmitRequest func(objectID uint32)
	// OnPingAck, when set, receives heartbeat acknowledgements from any
	// peer.
	OnPingAck func(seq uint64)
	// OnPingAckFrom, when set, receives heartbeat acknowledgements with
	// the responding peer's address (multi-backup deployments).
	OnPingAckFrom func(from xkernel.Addr, seq uint64)
	// OnPing, when set, observes inbound pings (an ack is always sent).
	OnPing func(seq uint64)
	// OnStateTransferAck, when set, observes a backup's state-transfer
	// acknowledgement: the legacy monolithic ack, or — for the chunked
	// exchange — the final chunk's ack, with the total entries streamed.
	OnStateTransferAck func(epoch uint32, objects int)
	// OnPeerSynced, when set, observes a peer completing its anti-entropy
	// exchange: from this instant it counts toward quorums again.
	OnPeerSynced func(addr xkernel.Addr, entries int)
	// OnPeerSyncFailed, when set, observes a join exchange giving up on
	// an unresponsive peer (the repair layer rotates to another
	// candidate).
	OnPeerSyncFailed func(addr xkernel.Addr)
	// OnJoinRequest, when set, observes inbound rejoin requests with the
	// joiner's last-observed epoch and self-reported address.
	OnJoinRequest func(from xkernel.Addr, epoch uint32, addr string)
	// OnModeChange, when set, observes overload-governor rung transitions
	// — announced ones while serving, the primary's announcements while
	// backing up — with the external bound still maintained in the new
	// mode (zero when the object is shed).
	OnModeChange func(objectID uint32, name string, mode ObjectMode, effectiveBound time.Duration)
	// OnApply, when set, observes every applied update with the epoch it
	// was stamped with (invariant checkers use the epoch to detect
	// fenced-epoch state leaking through).
	OnApply func(objectID uint32, name string, epoch uint32, seq uint64, version, appliedAt time.Time)
	// OnGap, when set, observes detected sequence gaps (lost updates).
	OnGap func(objectID uint32, haveSeq, gotSeq uint64)
	// OnRegister, when set, observes object registrations replicated from
	// the primary.
	OnRegister func(spec ObjectSpec)
	// OnStateTransfer, when set, observes applied state transfers: the
	// legacy monolithic form, or a completed chunked join exchange with
	// the total entries it applied.
	OnStateTransfer func(epoch uint32, objects int)
	// OnJoinAccept, when set, observes an accepted join with the
	// primary's epoch and spec count — the instant every listed object
	// enters catch-up (temporal monitors suspend their bounds here).
	OnJoinAccept func(epoch uint32, specs int)
	// OnCatchUp, when set, observes one object completing catch-up: an
	// update or chunk landed within δ_i^B, so the object may be reported
	// temporally consistent again.
	OnCatchUp func(objectID uint32, name string, staleness time.Duration)
	// OnPlaceholderDrop, when set, observes promotion discarding
	// spec-less placeholder objects (orphan updates whose registration
	// never arrived): their replicated bytes cannot be served without an
	// identity, and this is the only record of the loss.
	OnPlaceholderDrop func(ids []uint32)
	// OnTimeSample, when set, observes every accepted clock-sync probe
	// with the estimator's error bound θ as of the sample — the hook the
	// temporal monitor's skew-aware accounting hangs off.
	OnTimeSample func(s clocksync.Sample, theta time.Duration)
}

// Primary is the serving-role view of a Replica (see Replica); Backup is
// the shadowing-role view; Observer is the read-only fan-out view. They
// are the same state machine.
type (
	Primary  = Replica
	Backup   = Replica
	Observer = Replica
)

var _ xkernel.Upper = (*Replica)(nil)

// NewReplica builds a replica in the given role and enables it on the
// port protocol's RTPB port. A primary starts at epoch 1 and attaches
// cfg.Peers; a backup starts at epoch 0 (unstamped) and opens its
// upstream session toward cfg.Peer when set.
func NewReplica(cfg Config, role Role) (*Replica, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:     cfg,
		clk:     cfg.Clock,
		proc:    cpu.New(cfg.Clock),
		port:    cfg.Port,
		role:    role,
		running: true,
	}
	r.adm = newAdmission(&r.cfg)
	if cfg.ClockSync {
		r.csync = clocksync.New(clocksync.Config{
			MaxDriftPPM: cfg.ClockSyncMaxDriftPPM,
			Link:        resilience.NewEstimator(resilience.EstimatorConfig{}),
		})
	}
	switch role {
	case RolePrimary:
		r.epoch = 1
		if r.cfg.Governor.Enable {
			r.gov = newGovernor(r)
		}
		if err := cfg.Port.EnablePort(cfg.LocalPort, r); err != nil {
			return nil, err
		}
		for _, addr := range cfg.Peers {
			if err := r.addPeerLocked(addr); err != nil {
				r.Stop()
				return nil, err
			}
		}
	case RoleBackup, RoleObserver:
		r.seedBackupLink(cfg.Peer)
		if err := cfg.Port.EnablePort(cfg.LocalPort, r); err != nil {
			return nil, err
		}
		if cfg.Peer != "" {
			sess, err := cfg.Port.OpenFrom(cfg.LocalPort, cfg.Peer)
			if err != nil {
				cfg.Port.DisablePort(cfg.LocalPort)
				return nil, fmt.Errorf("core: open primary session: %w", err)
			}
			r.sess = sess
		}
	default:
		return nil, fmt.Errorf("core: unknown role %v", role)
	}
	return r, nil
}

// NewPrimary builds a replica serving as primary.
func NewPrimary(cfg Config) (*Primary, error) { return NewReplica(cfg, RolePrimary) }

// NewBackup builds a replica shadowing as backup.
func NewBackup(cfg Config) (*Backup, error) { return NewReplica(cfg, RoleBackup) }

// NewObserver builds a read-only replica observing cfg.Peer — a primary
// or another observer. The caller drives Join() to subscribe through
// the chunked anti-entropy exchange, and SendPing for heartbeat,
// clock-sync, and chain-status traffic toward the upstream.
func NewObserver(cfg Config) (*Observer, error) { return NewReplica(cfg, RoleObserver) }

// seedBackupLink derives the backup-role jitter streams for the upstream
// link toward addr.
func (r *Replica) seedBackupLink(addr xkernel.Addr) {
	seed := linkSeed(r.cfg.LocalPort, addr)
	r.gapBackoff = resilience.NewBackoff(seed)
	r.gapBackoff.Cap = r.cfg.RetryCeiling
	// A distinct jitter stream for digest retries so join traffic does
	// not perturb the gap-recovery schedule of replays.
	r.joinBackoff = resilience.NewBackoff(seed ^ 0x9e3779b97f4a7c15)
	r.joinBackoff.Cap = r.cfg.RetryCeiling
}

// Stop cancels every periodic task in either role and releases the port
// binding.
func (r *Replica) Stop() {
	if !r.running {
		return
	}
	r.running = false
	if r.gov != nil {
		r.gov.stop()
	}
	for _, o := range r.adm.objects {
		if o.task != nil {
			o.task.Stop()
		}
	}
	for _, pr := range r.peers {
		if pr.stRetry != nil {
			pr.stRetry.Cancel()
			pr.stRetry = nil
		}
		r.cancelTransfer(pr)
	}
	if r.digestRetry != nil {
		r.digestRetry.Cancel()
		r.digestRetry = nil
	}
	r.port.DisablePort(r.cfg.LocalPort)
	for _, pr := range r.peers {
		pr.sess.Close()
	}
	if r.sess != nil {
		r.sess.Close()
	}
}

// Running reports whether the replica is serving.
func (r *Replica) Running() bool { return r.running }

// Role reports the replica's current role.
func (r *Replica) Role() Role { return r.role }

// Transitions reports how many in-place role transitions (promotions and
// demotions) this replica has performed.
func (r *Replica) Transitions() int { return r.transitions }

// Epoch reports the replica's current epoch: the serving epoch as
// primary, the highest observed epoch as backup (zero if none).
func (r *Replica) Epoch() uint32 { return r.epoch }

// SetEpoch installs the epoch a promoted replica claimed (the failover
// orchestrator adjusts it after winning the directory race), or the
// fencing bump a disk-restarted primary resumes under.
func (r *Replica) SetEpoch(e uint32) {
	if e == r.epoch {
		return
	}
	r.epoch = e
	r.noteEpochDurable()
}

// Objects reports the number of known objects (admitted while serving,
// replicated while backing up).
func (r *Replica) Objects() int { return len(r.adm.objects) }

// Value returns the replica's current copy of an object by name.
func (r *Replica) Value(name string) (data []byte, version time.Time, ok bool) {
	o, err := r.adm.byNameOrErr(name)
	if err != nil || !o.hasData {
		return nil, time.Time{}, false
	}
	cp := make([]byte, len(o.value))
	copy(cp, o.value)
	return cp, o.version, true
}

// Certificate reports an object's current image with its staleness
// certificate, built through the one shared constructor in cert.go so
// primary, backup, observer, gateway, and ctl READ paths cannot drift
// on age/δ_B/θ/mode semantics. ok is false for unknown or
// not-yet-written objects.
func (r *Replica) Certificate(name string) (Certificate, bool) {
	o, err := r.adm.byNameOrErr(name)
	if err != nil || !o.hasData {
		return Certificate{}, false
	}
	mode, _ := r.Mode(name)
	bound := o.spec.Constraint.DeltaB
	switch {
	case r.role == RolePrimary && r.gov != nil:
		bound = r.gov.effectiveBound(o, mode)
	case r.role.Shadows() && mode != ModeNormal:
		bound = o.modeBound
	}
	cp := make([]byte, len(o.value))
	copy(cp, o.value)
	return newCertificate(cp, o.version, r.clk.Now(), bound, mode, r.chainTheta(), r.chainDepth()), true
}

// Mode reports the object's current overload-degradation rung: the
// governor's while serving (ModeNormal when ungoverned), the primary's
// last announcement while backing up.
func (r *Replica) Mode(name string) (ObjectMode, bool) {
	o, err := r.adm.byNameOrErr(name)
	if err != nil {
		return 0, false
	}
	if r.role == RolePrimary {
		if r.gov == nil {
			return ModeNormal, true
		}
		return r.gov.mode(o.id), true
	}
	if o.mode != 0 {
		return o.mode, true
	}
	return ModeNormal, true
}

// SendPing emits one heartbeat: toward the upstream when shadowing
// (backup or observer), toward the first attached backup when serving
// (the single-backup form used by the paper's deployment; multi-backup
// deployments use SendPingTo per peer). An observer's ping additionally
// solicits the upstream's ChainStatus so chained certificates compound
// staleness honestly. It returns the heartbeat's sequence number.
func (r *Replica) SendPing() uint64 {
	if r.role.Shadows() {
		r.pingSeq++
		r.send(&wire.Ping{Seq: r.pingSeq, From: r.role.wireRole()})
		if r.csync != nil {
			// Clock-sync probe rides the heartbeat: same cadence, same
			// link, no extra timers. t1 is stamped from this node's own
			// (possibly faulty) clock — that is the clock whose offset we
			// are estimating.
			r.send(&wire.TimeSync{Seq: r.pingSeq, From: r.role.wireRole(),
				Originate: r.clk.Now().UnixNano()})
		}
		return r.pingSeq
	}
	if len(r.peers) == 0 {
		return 0
	}
	seq, _ := r.SendPingTo(r.peers[0].addr)
	return seq
}

// observeTimeSync feeds one completed clock-sync echo into the offset
// estimator. t4 (the reply's arrival) is stamped here from the local
// clock; the other three instants ride in the echo.
func (r *Replica) observeTimeSync(t *wire.TimeSync) {
	if r.csync == nil {
		return
	}
	t4 := r.clk.Now()
	s, ok := r.csync.AddSample(
		time.Unix(0, t.Originate), time.Unix(0, t.Receive), time.Unix(0, t.Transmit), t4)
	if !ok {
		return
	}
	if r.OnTimeSample != nil {
		theta, _ := r.csync.Theta(t4)
		r.OnTimeSample(s, theta)
	}
}

// ClockSyncReport summarizes the upstream clock-offset estimator as of
// now. ok is false when Config.ClockSync is disabled.
func (r *Replica) ClockSyncReport() (clocksync.Report, bool) {
	if r.csync == nil {
		return clocksync.Report{}, false
	}
	return r.csync.Report(r.clk.Now()), true
}

// Demux implements xkernel.Upper: inbound RTPB datagrams are decoded once
// and dispatched by the current role. A framed datagram fans out to one
// dispatch per carried message, in transmission order, so every handler
// sees the same per-message stream it would under one-datagram-per-update.
func (r *Replica) Demux(m *xkernel.Message, from xkernel.Addr) error {
	if !r.running {
		return nil
	}
	msg, err := wire.Decode(m.Bytes())
	if err != nil {
		return err // malformed datagram: drop
	}
	if f, ok := msg.(*wire.Frame); ok {
		for _, sub := range f.Messages {
			if !r.running {
				// A framed message may stop the replica (epoch fence,
				// demote); the rest of the batch must not leak through.
				return nil
			}
			r.dispatch(sub, from)
		}
		return nil
	}
	r.dispatch(msg, from)
	return nil
}

// dispatch routes one decoded message to the current role's handler.
func (r *Replica) dispatch(msg wire.Message, from xkernel.Addr) {
	switch r.role {
	case RolePrimary:
		r.demuxPrimary(msg, from)
	case RoleObserver:
		r.demuxObserver(msg, from)
	default:
		r.demuxBackup(msg)
	}
}

// Promote flips a backup to primary in place under the given epoch: the
// object table and admission ledger carry over untouched (no snapshot
// copy, no re-admission — every spec was admitted when it was replicated,
// and its derived update period rides in the ledger), backup-role timers
// stop, and the primary-role update tasks start. Spec-less placeholder
// objects are dropped (reported through OnPlaceholderDrop): bytes without
// an identity cannot be served.
//
// The promoted replica starts with no peers; the failover orchestrator
// re-attaches surviving backups with AddPeer, which drives them through
// the anti-entropy exchange under the new epoch.
//
// Only a backup may be promoted. An observer holds the same replicated
// state but sits outside the fault-tolerance contract — it was never
// counted in any quorum, its staleness is only bounded best-effort
// through its chain — so promoting one would seat an authority nobody
// admitted. The role guard makes that a hard error, not a policy.
func (r *Replica) Promote(epoch uint32) error {
	if !r.running {
		return ErrStopped
	}
	if r.role != RoleBackup {
		return ErrNotBackup
	}

	// Backup-role machinery goes quiet: the digest retry stops, any
	// half-finished join is abandoned (we are the authority now), and the
	// upstream session closes.
	if r.digestRetry != nil {
		r.digestRetry.Cancel()
		r.digestRetry = nil
	}
	r.joining = false
	r.digestAttempt = 0
	r.seenChunks = nil
	r.xferApplied = 0
	if r.sess != nil {
		r.sess.Close()
		r.sess = nil
	}

	// Drop spec-less placeholders: objects created by an orphan update
	// whose registration never arrived. Their replicated bytes have no
	// name, no constraint, and no admitted schedule — they cannot be
	// served, and silently losing them is the one thing we must not do.
	var dropped []uint32
	for id, o := range r.adm.objects {
		if o.spec.Name == "" {
			dropped = append(dropped, id)
			delete(r.adm.objects, id)
		}
	}
	if len(dropped) > 0 {
		sort.Slice(dropped, func(i, j int) bool { return dropped[i] < dropped[j] })
		if r.OnPlaceholderDrop != nil {
			r.OnPlaceholderDrop(dropped)
		}
	}

	// Flip the role. Everything below is per-object bookkeeping reset —
	// O(1) work per object, no copies, no admission tests, no wire
	// traffic.
	r.role = RolePrimary
	r.transitions++
	if epoch > r.epoch {
		r.epoch = epoch
	}
	for _, o := range r.adm.objects {
		// Sequence numbering restarts under the new epoch; surviving
		// backups order updates by (epoch, seq), so the epoch bump alone
		// keeps supersedes correct.
		o.seq = 0
		o.highPending = false
		o.lastSentSeq = 0
		o.lastSentVersion = time.Time{}
		o.lastSentAt = time.Time{}
		o.pendingAcks = nil
		o.retransAttempt = 0
		o.retransNext = time.Time{}
		o.mode, o.modeSeq, o.modeEpoch = 0, 0, 0
		o.catchingUp = false
		if o.updatePeriod <= 0 && o.spec.Name != "" {
			// Defensive: a spec that somehow arrived without a derived
			// period (older wire peers) gets one now, from the same
			// Section 4.3 math admission used.
			r.adm.installSpec(o, o.spec)
		}
	}
	r.catchingUp = 0
	r.pumpActive, r.pumpOrder, r.pumpNext = false, nil, 0
	r.drainActive = false
	r.deadlineMisses = 0

	if r.cfg.SchedTest == SchedTestDCS && !r.cfg.DisableAdmissionControl {
		// Re-specialize the inherited periods into a harmonic set; the
		// specialized periods never exceed the nominals, so every
		// temporal constraint keeps holding even if this fails.
		_ = r.adm.applyDCS()
	}
	if r.cfg.Governor.Enable && r.gov == nil {
		r.gov = newGovernor(r)
	}
	for _, o := range r.adm.ordered() {
		r.startUpdateTask(o)
	}
	// Snapshot on epoch advance: the durable log rolls to a fresh
	// segment under the new epoch and the pre-promotion image becomes
	// prunable history.
	r.noteEpochDurable()
	return nil
}

// Demote flips a primary to backup in place, shadowing the named
// successor under the given epoch (a fenced ex-primary rejoining the
// cluster). Update tasks and the governor stop, pending critical writes
// fail with ErrStopped, peers detach — and the object table stays: the
// subsequent Join digest advertises everything this replica already
// holds, so the anti-entropy exchange streams only what the successor
// wrote since.
func (r *Replica) Demote(epoch uint32, primary xkernel.Addr) error {
	if !r.running {
		return ErrStopped
	}
	if r.role != RolePrimary {
		return ErrNotPrimary
	}
	sess, err := r.port.OpenFrom(r.cfg.LocalPort, primary)
	if err != nil {
		// Fail before mutating anything: the caller may retry or keep
		// serving.
		return fmt.Errorf("core: open primary session: %w", err)
	}

	servingEpoch := r.epoch
	if r.gov != nil {
		r.gov.stop()
		r.gov = nil
	}
	for _, o := range r.adm.objects {
		if o.task != nil {
			o.task.Stop()
			o.task = nil
		}
		for _, pa := range o.pendingAcks {
			r.completeCritical(o, pa, ErrStopped)
		}
		o.highPending = false
		o.catchingUp = false
		o.retransAttempt = 0
		o.retransNext = time.Time{}
		if o.hasData && o.recvEpoch < servingEpoch {
			// Self-authored state gets an honest digest stamp: it was
			// written under this replica's serving epoch.
			o.recvEpoch = servingEpoch
		}
	}
	for _, pr := range r.peers {
		if pr.stRetry != nil {
			pr.stRetry.Cancel()
			pr.stRetry = nil
		}
		r.cancelTransfer(pr)
		pr.queue.clear()
		pr.sess.Close()
	}
	r.peers = nil
	r.pumpActive, r.pumpOrder, r.pumpNext = false, nil, 0
	r.drainActive = false
	r.deadlineMisses = 0

	// Become a backup of the successor.
	r.sess = sess
	r.cfg.Peer = primary
	r.seedBackupLink(primary)
	r.role = RoleBackup
	r.transitions++
	if epoch > r.epoch {
		r.epoch = epoch
	}
	r.joining = false
	r.joined = false
	r.digestAttempt = 0
	r.seenChunks = nil
	r.xferApplied = 0
	r.catchingUp = 0
	r.noteEpochDurable()
	return nil
}
