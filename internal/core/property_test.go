package core

import (
	"flag"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rtpb/internal/temporal"
)

// seedFlag shifts every property test's fixed RNG seed so alternative
// schedules can be explored on demand (go test ./internal/core -seed=N);
// the default 0 keeps runs byte-identical to the committed seeds.
var seedFlag = flag.Int64("seed", 0, "offset added to the property tests' fixed RNG seeds")

func propRand(base int64) *rand.Rand { return rand.New(rand.NewSource(base + *seedFlag)) }

// TestSupersedesIsLexicographic checks the backup's update-ordering
// relation: (epoch, seq) pairs are compared lexicographically, which is
// what makes a new primary's fresh sequence numbers supersede the old
// primary's high ones.
func TestSupersedesIsLexicographic(t *testing.T) {
	f := func(e1, e2 uint32, s1, s2 uint64) bool {
		o := &object{recvEpoch: e1, seq: s1, hasData: true}
		got := o.supersedes(e2, s2)
		want := e2 > e1 || (e2 == e1 && s2 > s1)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSupersedesIrreflexiveAndAsymmetric checks the relation is a strict
// order on distinct states: nothing supersedes itself, and if a
// supersedes b then b does not supersede a.
func TestSupersedesIrreflexiveAndAsymmetric(t *testing.T) {
	f := func(e1, e2 uint32, s1, s2 uint64) bool {
		a := &object{recvEpoch: e1, seq: s1, hasData: true}
		b := &object{recvEpoch: e2, seq: s2, hasData: true}
		if a.supersedes(e1, s1) {
			return false // reflexive
		}
		ab := a.supersedes(e2, s2)
		ba := b.supersedes(e1, s1)
		if e1 == e2 && s1 == s2 {
			return !ab && !ba
		}
		return ab != ba // exactly one direction wins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSupersedesAlwaysTrueWithoutData pins the bootstrap rule: an object
// that never applied anything accepts any stamped state.
func TestSupersedesAlwaysTrueWithoutData(t *testing.T) {
	f := func(e uint32, s uint64) bool {
		o := &object{}
		return o.supersedes(e, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCompressedAdmissionRespectsTheorem6 fuzzes compressed-mode
// admission over random (ℓ, SlackFactor, schedulability test) service
// configurations, random object populations, and random inter-object
// constraints, and asserts Theorem 6's period bounds on everything the
// service admits: every admitted object's backup-update period satisfies
// r_i ≤ (δ_i^B − δ_i^P) − ℓ, and once an inter-object constraint δ_ij is
// accepted, r_i ≤ δ_ij for both parties. The check runs against the live
// object table, so it also covers the DCS pinwheel specialization (which
// rewrites every period on each admission) and the rollback paths.
func TestCompressedAdmissionRespectsTheorem6(t *testing.T) {
	rng := propRand(6)
	tests := []SchedTest{SchedTestRMBound, SchedTestRMExact, SchedTestEDF, SchedTestDCS}
	checkTable := func(trial int, a *admission, cfg *Config) {
		for _, o := range a.objects {
			bound := o.spec.Constraint.Delta() - cfg.Ell
			if o.updatePeriod <= 0 || o.updatePeriod > bound {
				t.Fatalf("trial %d: %q admitted with r=%v outside (0, δB−δP−ℓ=%v] (test=%d)",
					trial, o.spec.Name, o.updatePeriod, bound, cfg.SchedTest)
			}
			for _, ib := range o.interBounds {
				if o.updatePeriod > ib {
					t.Fatalf("trial %d: %q has r=%v above inter-object bound δ_ij=%v",
						trial, o.spec.Name, o.updatePeriod, ib)
				}
			}
		}
	}
	for trial := 0; trial < 150; trial++ {
		cfg := &Config{
			Scheduling:  ScheduleCompressed,
			Ell:         time.Duration(rng.Intn(20)) * time.Millisecond,
			SlackFactor: 0.05 + 0.95*rng.Float64(),
			SchedTest:   tests[rng.Intn(len(tests))],
			Costs:       DefaultCosts(),
		}
		a := newAdmission(cfg)
		var admitted []string
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			deltaP := time.Duration(1+rng.Intn(200)) * time.Millisecond
			s := ObjectSpec{
				Name:         fmt.Sprintf("obj%d", i),
				Size:         1 << uint(rng.Intn(12)),
				UpdatePeriod: time.Duration(1+rng.Intn(250)) * time.Millisecond,
				Constraint: temporal.ExternalConstraint{
					DeltaP: deltaP,
					DeltaB: deltaP + time.Duration(rng.Intn(500))*time.Millisecond,
				},
			}
			if _, d := a.admit(s); d.Accepted {
				admitted = append(admitted, s.Name)
			}
			checkTable(trial, a, cfg) // rejections must not corrupt the table
		}
		// Layer random inter-object constraints over the admitted set; both
		// acceptance (tightening) and rejection (rollback) must leave every
		// period within its Theorem 6 bounds.
		for k := 0; k < 4 && len(admitted) >= 2; k++ {
			i, j := rng.Intn(len(admitted)), rng.Intn(len(admitted))
			if i == j {
				continue
			}
			c := temporal.InterObjectConstraint{
				I:     admitted[i],
				J:     admitted[j],
				Delta: time.Duration(1+rng.Intn(400)) * time.Millisecond,
			}
			_, _ = a.admitInterObject(c)
			checkTable(trial, a, cfg)
		}
	}
}

// TestAdmissionDecisionConsistency: for arbitrary (period, δP, δB)
// triples, an accepted object always satisfies the paper's admission
// inequalities, and the derived update period always satisfies Theorem 5.
func TestAdmissionDecisionConsistency(t *testing.T) {
	cfg := testConfig()
	f := func(p16, dp16, db16 uint16) bool {
		a := newAdmission(cfg)
		period := time.Duration(p16%200+1) * time.Millisecond
		deltaP := time.Duration(dp16%200+1) * time.Millisecond
		deltaB := deltaP + time.Duration(db16%400)*time.Millisecond
		s := ObjectSpec{
			Name:         "x",
			Size:         64,
			UpdatePeriod: period,
			Constraint:   temporal.ExternalConstraint{DeltaP: deltaP, DeltaB: deltaB},
		}
		_, d := a.admit(s)
		if !d.Accepted {
			return true // rejections are allowed to be conservative
		}
		window := deltaB - deltaP
		return period <= deltaP && // Test 1
			window > cfg.Ell && // Test 2
			d.UpdatePeriod > 0 &&
			d.UpdatePeriod <= window-cfg.Ell // Theorem 5 with slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
