package core

import (
	"testing"
	"testing/quick"
	"time"

	"rtpb/internal/temporal"
)

// TestSupersedesIsLexicographic checks the backup's update-ordering
// relation: (epoch, seq) pairs are compared lexicographically, which is
// what makes a new primary's fresh sequence numbers supersede the old
// primary's high ones.
func TestSupersedesIsLexicographic(t *testing.T) {
	f := func(e1, e2 uint32, s1, s2 uint64) bool {
		o := &backupObject{epoch: e1, seq: s1, hasData: true}
		got := o.supersedes(e2, s2)
		want := e2 > e1 || (e2 == e1 && s2 > s1)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSupersedesIrreflexiveAndAsymmetric checks the relation is a strict
// order on distinct states: nothing supersedes itself, and if a
// supersedes b then b does not supersede a.
func TestSupersedesIrreflexiveAndAsymmetric(t *testing.T) {
	f := func(e1, e2 uint32, s1, s2 uint64) bool {
		a := &backupObject{epoch: e1, seq: s1, hasData: true}
		b := &backupObject{epoch: e2, seq: s2, hasData: true}
		if a.supersedes(e1, s1) {
			return false // reflexive
		}
		ab := a.supersedes(e2, s2)
		ba := b.supersedes(e1, s1)
		if e1 == e2 && s1 == s2 {
			return !ab && !ba
		}
		return ab != ba // exactly one direction wins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSupersedesAlwaysTrueWithoutData pins the bootstrap rule: an object
// that never applied anything accepts any stamped state.
func TestSupersedesAlwaysTrueWithoutData(t *testing.T) {
	f := func(e uint32, s uint64) bool {
		o := &backupObject{}
		return o.supersedes(e, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionDecisionConsistency: for arbitrary (period, δP, δB)
// triples, an accepted object always satisfies the paper's admission
// inequalities, and the derived update period always satisfies Theorem 5.
func TestAdmissionDecisionConsistency(t *testing.T) {
	cfg := testConfig()
	f := func(p16, dp16, db16 uint16) bool {
		a := newAdmission(cfg)
		period := time.Duration(p16%200+1) * time.Millisecond
		deltaP := time.Duration(dp16%200+1) * time.Millisecond
		deltaB := deltaP + time.Duration(db16%400)*time.Millisecond
		s := ObjectSpec{
			Name:         "x",
			Size:         64,
			UpdatePeriod: period,
			Constraint:   temporal.ExternalConstraint{DeltaP: deltaP, DeltaB: deltaB},
		}
		_, d := a.admit(s)
		if !d.Accepted {
			return true // rejections are allowed to be conservative
		}
		window := deltaB - deltaP
		return period <= deltaP && // Test 1
			window > cfg.Ell && // Test 2
			d.UpdatePeriod > 0 &&
			d.UpdatePeriod <= window-cfg.Ell // Theorem 5 with slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
