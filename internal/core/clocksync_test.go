package core

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/clocksync"
	"rtpb/internal/netsim"
)

// TestClockSyncEstimatesUpstreamOffset runs a backup on a skewed clock
// (+30ms against the primary) with ClockSync enabled and drives the
// heartbeat cadence. The piggybacked probes must recover the offset
// exactly on the symmetric link (primary minus backup = -30ms) with a
// theta that honestly contains it.
func TestClockSyncEstimatesUpstreamOffset(t *testing.T) {
	var skewed *clock.SkewedClock
	c := newTestCluster(t, clusterOpts{
		seed: 71,
		link: netsim.LinkParams{Delay: ms(2)},
		mutateB: func(cfg *Config) {
			skewed = clock.NewSkewed(cfg.Clock)
			skewed.SetOffset(30 * time.Millisecond)
			cfg.Clock = skewed
			cfg.ClockSync = true
		},
	})
	samples := 0
	c.backup.OnTimeSample = func(s clocksync.Sample, theta time.Duration) {
		samples++
		if s.RTT != 4*time.Millisecond {
			t.Fatalf("sample RTT = %v on a 2ms symmetric link, want 4ms", s.RTT)
		}
	}
	for i := 0; i < 5; i++ {
		c.backup.SendPing()
		c.clk.RunFor(50 * time.Millisecond)
	}
	if samples != 5 {
		t.Fatalf("observed %d clock-sync samples, want 5", samples)
	}
	rep, ok := c.backup.ClockSyncReport()
	if !ok || !rep.Valid {
		t.Fatalf("ClockSyncReport() = %+v, %v; want a valid report", rep, ok)
	}
	want := -30 * time.Millisecond
	if rep.Offset != want {
		t.Fatalf("estimated offset = %v, want exactly %v on a symmetric link", rep.Offset, want)
	}
	// Honest bound: the true offset lies within theta of the estimate.
	if diff := rep.Offset - want; diff > rep.Theta || -diff > rep.Theta {
		t.Fatalf("|estimate-truth| = %v exceeds theta %v", diff, rep.Theta)
	}
	if rep.Theta < 2*time.Millisecond || rep.Theta > 3*time.Millisecond {
		t.Fatalf("theta = %v, want rtt/2 = 2ms plus a sliver of drift aging", rep.Theta)
	}
	if rep.Accepted != 5 || rep.Rejected != 0 {
		t.Fatalf("accepted/rejected = %d/%d, want 5/0", rep.Accepted, rep.Rejected)
	}
	// The primary side has no estimator: it answers probes, it does not
	// send them, and ClockSync was not enabled there.
	if _, ok := c.primary.ClockSyncReport(); ok {
		t.Fatal("primary reported a clock-sync estimate with ClockSync disabled")
	}
}

// TestClockSyncDisabledByDefault pins that the zero-config path carries
// no clock-sync machinery: no estimator, no probe traffic.
func TestClockSyncDisabledByDefault(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 72, link: netsim.LinkParams{Delay: ms(2)}})
	fired := false
	c.backup.OnTimeSample = func(clocksync.Sample, time.Duration) { fired = true }
	c.backup.SendPing()
	c.clk.RunFor(50 * time.Millisecond)
	if _, ok := c.backup.ClockSyncReport(); ok {
		t.Fatal("ClockSyncReport() ok with ClockSync disabled")
	}
	if fired {
		t.Fatal("clock-sync sample observed with ClockSync disabled")
	}
}

// rawOffsetClock shifts Now() by a mutable offset with no monotonicity
// latch — unlike SkewedClock it can hand out readings that go backwards,
// modelling an unconditioned wall clock (or instants compared across two
// different clocks). Timers delegate to the base clock unchanged.
type rawOffsetClock struct {
	clock.Clock
	offset time.Duration
}

func (c *rawOffsetClock) Now() time.Time { return c.Clock.Now().Add(c.offset) }

func (c *rawOffsetClock) ScheduleAt(at time.Time, fn func()) *clock.Event {
	return c.Clock.Schedule(at.Sub(c.Now()), fn)
}

// TestRTTSamplingSurvivesBackwardStep pins the sampleRTT guard: a
// backward wall-clock step between a ping's send and its ack makes the
// measured round trip negative. The guard must discard the measurement
// (keeping the delivery evidence) rather than clamp it to zero — a zero
// sample would seed SRTT at 0 and drag the estimate far below the real
// 4ms link for many exchanges afterwards.
func TestRTTSamplingSurvivesBackwardStep(t *testing.T) {
	var raw *rawOffsetClock
	c := newTestCluster(t, clusterOpts{
		seed: 73,
		link: netsim.LinkParams{Delay: ms(2)},
		mutateP: func(cfg *Config) {
			raw = &rawOffsetClock{Clock: cfg.Clock}
			cfg.Clock = raw
		},
	})
	// Ping 1: the clock steps back one second while the ack is in flight.
	c.primary.SendPing()
	c.clk.RunFor(ms(1))
	raw.offset = -time.Second
	c.clk.RunFor(ms(10))
	raw.offset = 0
	// Ping 2: a clean exchange.
	c.primary.SendPing()
	c.clk.RunFor(ms(10))

	st, ok := c.primary.PeerLink("backup:7000")
	if !ok {
		t.Fatal("no link stats for backup")
	}
	if st.Acks != 2 {
		t.Fatalf("acks = %d, want 2 (the stepped exchange still counts as delivered)", st.Acks)
	}
	// SRTT seeded by the clean exchange alone: exactly the 4ms round trip.
	// A zero-clamped first sample would leave SRTT at 0.5ms here.
	if st.SRTT != 4*time.Millisecond {
		t.Fatalf("SRTT = %v, want exactly 4ms (negative sample must be discarded, not clamped)", st.SRTT)
	}
}
