package core

import (
	"errors"
	"testing"
	"time"

	"rtpb/internal/netsim"
)

func criticalSpec(name string) ObjectSpec {
	s := spec(name, ms(40), ms(50), ms(250))
	s.Critical = true
	return s
}

func TestCriticalWriteWaitsForBackupAck(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 51, link: netsim.LinkParams{Delay: ms(3)}})
	c.registerOK(t, criticalSpec("x"))

	var lat time.Duration
	done := false
	c.primary.ClientWrite("x", []byte("v"), func(l time.Duration, err error) {
		if err != nil {
			t.Fatalf("critical write failed: %v", err)
		}
		lat, done = l, true
	})
	c.clk.RunFor(ms(50))
	if !done {
		t.Fatal("critical write never completed")
	}
	// The response includes a full round trip: ≥ 2×3ms link delay.
	if lat < 6*time.Millisecond {
		t.Fatalf("critical latency %v below one round trip", lat)
	}
	if v, _, ok := c.backup.Value("x"); !ok || string(v) != "v" {
		t.Fatalf("backup value = %q ok=%v", v, ok)
	}
}

func TestNonCriticalWriteDoesNotWait(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 52, link: netsim.LinkParams{Delay: ms(3)}})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(250)))
	var lat time.Duration
	c.primary.ClientWrite("x", []byte("v"), func(l time.Duration, err error) { lat = l })
	c.clk.RunFor(ms(50))
	if lat >= 6*time.Millisecond {
		t.Fatalf("passive write latency %v includes a round trip", lat)
	}
}

func TestCriticalWriteSurvivesLossViaRetransmission(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed: 53,
		link: netsim.LinkParams{Delay: ms(2), LossProb: 0.3},
	})
	c.registerOK(t, criticalSpec("x"))
	completed, failed := 0, 0
	for i := 0; i < 20; i++ {
		c.primary.ClientWrite("x", []byte{byte(i)}, func(_ time.Duration, err error) {
			if err != nil {
				failed++
			} else {
				completed++
			}
		})
		c.clk.RunFor(200 * time.Millisecond)
	}
	// At 30% loss per leg an attempt commits with p≈0.49; five attempts
	// leave ≈3% failure per write — the bulk must succeed.
	if completed < 17 {
		t.Fatalf("completed=%d failed=%d; retransmission ineffective", completed, failed)
	}
}

func TestCriticalWriteFailsAfterMaxRetries(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 54, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, criticalSpec("x"))
	c.net.Partition("primary", "backup")
	var gotErr error
	done := false
	c.primary.ClientWrite("x", []byte("v"), func(_ time.Duration, err error) {
		gotErr, done = err, true
	})
	c.clk.RunFor(2 * time.Second)
	if !done {
		t.Fatal("critical write never resolved under partition")
	}
	if !errors.Is(gotErr, ErrAckTimeout) {
		t.Fatalf("err = %v, want ErrAckTimeout", gotErr)
	}
}

func TestCriticalWriteDegradesWhenBackupDeclaredDead(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 55, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, criticalSpec("x"))
	c.primary.SetBackupAlive(false)
	var lat time.Duration
	var gotErr error
	done := false
	c.primary.ClientWrite("x", []byte("v"), func(l time.Duration, err error) {
		lat, gotErr, done = l, err, true
	})
	c.clk.RunFor(ms(50))
	if !done || gotErr != nil {
		t.Fatalf("degraded write done=%v err=%v", done, gotErr)
	}
	if lat >= 6*time.Millisecond {
		t.Fatalf("degraded write latency %v should be local-only", lat)
	}
}

func TestPeerDeathReleasesInFlightCriticalWrite(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 56, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, criticalSpec("x"))
	c.net.Partition("primary", "backup")
	done := false
	c.primary.ClientWrite("x", []byte("v"), func(_ time.Duration, err error) { done = true })
	c.clk.RunFor(ms(30)) // in flight, unacked
	if done {
		t.Fatal("write completed while partitioned")
	}
	// The failure detector declares the backup dead: the write must be
	// released rather than burning through all retries.
	c.primary.SetBackupAlive(false)
	c.clk.RunFor(ms(10))
	if !done {
		t.Fatal("peer death did not release the pending critical write")
	}
}

func TestHybridMixedObjectTable(t *testing.T) {
	// Critical and passive objects coexist; each keeps its semantics.
	c := newTestCluster(t, clusterOpts{seed: 57, link: netsim.LinkParams{Delay: ms(3)}})
	c.registerOK(t, criticalSpec("crit"))
	c.registerOK(t, spec("plain", ms(40), ms(50), ms(250)))
	var critLat, plainLat time.Duration
	c.primary.ClientWrite("crit", []byte("c"), func(l time.Duration, err error) { critLat = l })
	c.primary.ClientWrite("plain", []byte("p"), func(l time.Duration, err error) { plainLat = l })
	c.clk.RunFor(500 * time.Millisecond)
	if critLat < 6*time.Millisecond {
		t.Fatalf("critical latency %v lacks round trip", critLat)
	}
	if plainLat >= 6*time.Millisecond {
		t.Fatalf("plain latency %v includes round trip", plainLat)
	}
	for _, name := range []string{"crit", "plain"} {
		if _, _, ok := c.backup.Value(name); !ok {
			t.Fatalf("backup missing %q", name)
		}
	}
}

func TestCriticalAdmissionChargesExtraTask(t *testing.T) {
	count := func(critical bool) int {
		cfg := testConfig()
		a := newAdmission(cfg)
		admitted := 0
		for i := 0; i < 100; i++ {
			s := spec("o"+string(rune('a'+i%26))+string(rune('0'+i/26)), ms(20), ms(25), ms(60))
			s.Critical = critical
			if _, d := a.admit(s); d.Accepted {
				admitted++
			}
		}
		return admitted
	}
	passive := count(false)
	critical := count(true)
	if critical >= passive {
		t.Fatalf("critical capacity (%d) not below passive capacity (%d)", critical, passive)
	}
}
