package core

import (
	"fmt"
	"sort"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/resilience"
	"rtpb/internal/temporal"
	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// backupObject is the backup's replica of one object. Updates are ordered
// by (epoch, seq): a new primary starts its sequence numbers afresh, so
// its first update must supersede any sequence number from the previous
// epoch.
type backupObject struct {
	id      uint32
	spec    ObjectSpec
	value   []byte
	version time.Time
	epoch   uint32
	seq     uint64
	hasData bool

	// Gap-recovery throttle: retransNext is the earliest instant another
	// RetransmitRequest may be sent for this object; retransAttempt is
	// the backoff rung, reset once in-order traffic outlives the window.
	retransNext    time.Time
	retransAttempt int

	// Overload-governor tracking: the primary's announced degradation
	// rung for this object, deduplicated by (epoch, seq).
	mode      ObjectMode
	modeSeq   uint64
	modeEpoch uint32

	// catchingUp marks an object whose image was stale when a join
	// exchange began; it clears only once an applied update or chunk
	// lands within δ_i^B, and until then the object must not be reported
	// temporally consistent.
	catchingUp bool
}

// supersedes reports whether an inbound (epoch, seq) pair is newer than
// the object's current state.
func (o *backupObject) supersedes(epoch uint32, seq uint64) bool {
	if !o.hasData {
		return true
	}
	if epoch != o.epoch {
		return epoch > o.epoch
	}
	return seq > o.seq
}

// Backup is the RTPB backup replica: it reserves space for registered
// objects, applies update messages, detects sequence gaps and requests
// retransmission, answers heartbeats, and can surrender its state for
// promotion to primary after a failover.
type Backup struct {
	cfg     Config
	port    *xkernel.PortProtocol
	sess    xkernel.Session
	objects map[uint32]*backupObject
	byName  map[string]uint32
	running bool
	pingSeq uint64
	epoch   uint32

	// gapBackoff spaces gap-recovery retransmission requests with
	// deterministic jitter.
	gapBackoff        *resilience.Backoff
	retransRequested  int
	retransSuppressed int

	// Join-exchange state (transfer.go): joining marks an accepted join
	// whose final chunk has not landed; joined latches once any join
	// completes; catchingUp counts objects still outside δ_i^B;
	// seenChunks dedups applied chunks by (generation, chunk).
	joining       bool
	joined        bool
	catchingUp    int
	xferApplied   int
	seenChunks    map[uint64]bool
	digestRetry   *clock.Event
	digestAttempt int
	joinBackoff   *resilience.Backoff

	// OnApply, when set, observes every applied update with the epoch it
	// was stamped with (invariant checkers use the epoch to detect
	// fenced-epoch state leaking through).
	OnApply func(objectID uint32, name string, epoch uint32, seq uint64, version, appliedAt time.Time)
	// OnGap, when set, observes detected sequence gaps (lost updates).
	OnGap func(objectID uint32, haveSeq, gotSeq uint64)
	// OnRegister, when set, observes object registrations from the
	// primary.
	OnRegister func(spec ObjectSpec)
	// OnPingAck, when set, receives heartbeat acknowledgements.
	OnPingAck func(seq uint64)
	// OnPing, when set, observes inbound pings (an ack is always sent).
	OnPing func(seq uint64)
	// OnStateTransfer, when set, observes applied state transfers: the
	// legacy monolithic form, or a completed chunked join exchange with
	// the total entries it applied.
	OnStateTransfer func(epoch uint32, objects int)
	// OnJoinAccept, when set, observes an accepted join with the
	// primary's epoch and spec count — the instant every listed object
	// enters catch-up (temporal monitors suspend their bounds here).
	OnJoinAccept func(epoch uint32, specs int)
	// OnCatchUp, when set, observes one object completing catch-up: an
	// update or chunk landed within δ_i^B, so the object may be reported
	// temporally consistent again.
	OnCatchUp func(objectID uint32, name string, staleness time.Duration)
	// OnModeChange, when set, observes the primary overload governor's
	// announced degradation rung for an object, with the external bound
	// the primary still maintains (zero while the object is shed).
	OnModeChange func(objectID uint32, name string, mode ObjectMode, effectiveBound time.Duration)
}

var _ xkernel.Upper = (*Backup)(nil)

// NewBackup builds a backup replica listening on the RTPB port.
func NewBackup(cfg Config) (*Backup, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	b := &Backup{
		cfg:        cfg,
		port:       cfg.Port,
		objects:    make(map[uint32]*backupObject),
		byName:     make(map[string]uint32),
		running:    true,
		gapBackoff: resilience.NewBackoff(linkSeed(cfg.LocalPort, cfg.Peer)),
		// A distinct jitter stream for digest retries so join traffic
		// does not perturb the gap-recovery schedule of replays.
		joinBackoff: resilience.NewBackoff(linkSeed(cfg.LocalPort, cfg.Peer) ^ 0x9e3779b97f4a7c15),
	}
	b.gapBackoff.Cap = cfg.RetryCeiling
	b.joinBackoff.Cap = cfg.RetryCeiling
	if err := cfg.Port.EnablePort(cfg.LocalPort, b); err != nil {
		return nil, err
	}
	if cfg.Peer != "" {
		sess, err := cfg.Port.OpenFrom(cfg.LocalPort, cfg.Peer)
		if err != nil {
			cfg.Port.DisablePort(cfg.LocalPort)
			return nil, fmt.Errorf("core: open primary session: %w", err)
		}
		b.sess = sess
	}
	return b, nil
}

// Stop releases the port binding.
func (b *Backup) Stop() {
	if !b.running {
		return
	}
	b.running = false
	if b.digestRetry != nil {
		b.digestRetry.Cancel()
		b.digestRetry = nil
	}
	b.port.DisablePort(b.cfg.LocalPort)
	if b.sess != nil {
		b.sess.Close()
	}
}

// Running reports whether the backup is serving.
func (b *Backup) Running() bool { return b.running }

// SendPing emits one heartbeat to the primary and returns its sequence
// number (driven by the failure detector).
func (b *Backup) SendPing() uint64 {
	b.pingSeq++
	b.send(&wire.Ping{Seq: b.pingSeq, From: wire.RoleBackup})
	return b.pingSeq
}

// Demux implements xkernel.Upper: inbound RTPB datagrams.
func (b *Backup) Demux(m *xkernel.Message, from xkernel.Addr) error {
	if !b.running {
		return nil
	}
	msg, err := wire.Decode(m.Bytes())
	if err != nil {
		return err // malformed: drop
	}
	switch t := msg.(type) {
	case *wire.Register:
		b.handleRegister(t)
	case *wire.Update:
		b.handleUpdate(t)
	case *wire.Ping:
		if b.OnPing != nil {
			b.OnPing(t.Seq)
		}
		b.send(&wire.PingAck{Seq: t.Seq, From: wire.RoleBackup})
	case *wire.PingAck:
		if b.OnPingAck != nil {
			b.OnPingAck(t.Seq)
		}
	case *wire.StateTransfer:
		b.handleStateTransfer(t)
	case *wire.ModeChange:
		b.handleModeChange(t)
	case *wire.JoinAccept:
		b.handleJoinAccept(t)
	case *wire.StateChunk:
		b.handleStateChunk(t)
	case *wire.Unregister:
		b.handleUnregister(t)
	}
	return nil
}

// observeEpoch applies the fencing rule: messages from an epoch older
// than one this backup has heard from are stale (a zombie primary after a
// takeover) and must be ignored; a newer epoch is adopted. Epoch 0 is
// "unstamped" and always accepted, so pre-takeover traffic flows.
func (b *Backup) observeEpoch(epoch uint32) bool {
	if b.cfg.DisableEpochFencing {
		// Ablation: adopt newer epochs but never reject older ones.
		if epoch > b.epoch {
			b.epoch = epoch
		}
		return true
	}
	if epoch == 0 {
		return true
	}
	if epoch < b.epoch {
		return false
	}
	b.epoch = epoch
	return true
}

func (b *Backup) handleRegister(t *wire.Register) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	o, exists := b.objects[t.ObjectID]
	if !exists || o.spec.Name == "" {
		// New object, or a placeholder created by an update/state
		// transfer that outran the registration: install the spec.
		spec := ObjectSpec{
			Name:         t.Name,
			Size:         int(t.Size),
			UpdatePeriod: t.Period,
			Constraint: temporal.ExternalConstraint{
				DeltaP: t.DeltaP,
				DeltaB: t.DeltaB,
			},
		}
		if !exists {
			o = &backupObject{
				id:    t.ObjectID,
				value: make([]byte, 0, t.Size),
			}
			b.objects[t.ObjectID] = o
		}
		o.spec = spec
		b.byName[t.Name] = t.ObjectID
		if b.OnRegister != nil {
			b.OnRegister(spec)
		}
	}
	// Registration replies are idempotent; re-ack duplicates so a lost
	// reply does not strand the primary's retry loop.
	b.send(&wire.RegisterReply{ObjectID: t.ObjectID, Accepted: true})
}

func (b *Backup) handleUpdate(t *wire.Update) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	if t.AckRequested {
		// Acknowledge even duplicates: a retransmission means our
		// previous ack was lost in transit.
		b.send(&wire.UpdateAck{ObjectID: t.ObjectID, Seq: t.Seq})
	}
	o, ok := b.objects[t.ObjectID]
	if !ok {
		// Update for an object whose registration was lost: recover by
		// creating a placeholder entry; the spec arrives with the
		// primary's registration retry.
		o = &backupObject{id: t.ObjectID}
		b.objects[t.ObjectID] = o
	}
	if !o.supersedes(t.Epoch, t.Seq) && !b.cfg.DisableEpochFencing {
		return // duplicate or reordered-stale transmission
	}
	if o.hasData && t.Epoch == o.epoch && t.Seq > o.seq+1 {
		// Sequence gap within the epoch: at least one update was lost.
		if b.OnGap != nil {
			b.OnGap(o.id, o.seq, t.Seq)
		}
		if !b.cfg.DisableGapRecovery {
			b.maybeRequestRetransmit(o)
		}
	} else if o.retransAttempt > 0 && !b.cfg.Clock.Now().Before(o.retransNext) {
		// In-order traffic outlived the suppression window: the loss
		// episode is over, relax the gap-recovery backoff.
		o.retransAttempt = 0
	}
	b.apply(o, t.Epoch, t.Seq, time.Unix(0, t.Version), t.Payload)
}

// maybeRequestRetransmit sends a gap-recovery RetransmitRequest unless
// the per-object throttle still holds one outstanding. Updates carry full
// state, so the arrival that exposed the gap already made the image
// current — the request only accelerates the next refresh — which makes
// rate-limiting safe: under sustained loss the seed's one-request-per-gap
// behaviour amplified every gap into extra retransmissions whose own loss
// created further gaps (the request storm), without tightening staleness.
func (b *Backup) maybeRequestRetransmit(o *backupObject) {
	now := b.cfg.Clock.Now()
	if !b.cfg.DisableRetransmitThrottle && now.Before(o.retransNext) {
		b.retransSuppressed++
		return
	}
	b.send(&wire.RetransmitRequest{ObjectID: o.id, LastSeq: o.seq})
	b.retransRequested++
	if b.cfg.DisableRetransmitThrottle {
		return
	}
	base := max(4*b.cfg.Ell, 20*time.Millisecond)
	o.retransNext = now.Add(b.gapBackoff.DelayFrom(base, o.retransAttempt))
	o.retransAttempt++
}

// RetransmitStats reports gap-recovery request activity: requests sent
// and requests suppressed by the per-object throttle.
func (b *Backup) RetransmitStats() (requested, suppressed int) {
	return b.retransRequested, b.retransSuppressed
}

// handleModeChange records the primary overload governor's announced
// degradation rung for one object, deduplicating the loss-tolerant
// re-sends by (epoch, seq).
func (b *Backup) handleModeChange(t *wire.ModeChange) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	mode := ObjectMode(t.Mode)
	if mode < ModeNormal || mode > ModeShed {
		return // unknown rung from a newer revision: ignore
	}
	o, ok := b.objects[t.ObjectID]
	if !ok {
		o = &backupObject{id: t.ObjectID}
		b.objects[t.ObjectID] = o
	}
	if t.Epoch == o.modeEpoch && t.Seq <= o.modeSeq {
		return // duplicate or stale reordering
	}
	o.modeEpoch = t.Epoch
	o.modeSeq = t.Seq
	if o.mode == mode {
		return
	}
	o.mode = mode
	if b.OnModeChange != nil {
		b.OnModeChange(o.id, o.spec.Name, mode, t.EffectiveBound)
	}
}

// Mode reports the primary-announced degradation rung for an object
// (ModeNormal when never announced).
func (b *Backup) Mode(name string) (ObjectMode, bool) {
	id, found := b.byName[name]
	if !found {
		return 0, false
	}
	if m := b.objects[id].mode; m != 0 {
		return m, true
	}
	return ModeNormal, true
}

func (b *Backup) apply(o *backupObject, epoch uint32, seq uint64, version time.Time, payload []byte) {
	o.epoch = epoch
	o.seq = seq
	o.version = version
	o.value = append(o.value[:0], payload...)
	o.hasData = true
	now := b.cfg.Clock.Now()
	if o.catchingUp {
		// Catch-up semantics: the object is declared consistent again
		// only once an applied image lands within its backup bound — a
		// transferred value can itself be stale (the writer may have been
		// quiet), and serving it as consistent is exactly the hazard the
		// catch-up mark exists to prevent. Objects without a declared
		// bound catch up on any apply.
		staleness := now.Sub(version)
		if d := o.spec.Constraint.DeltaB; d <= 0 || staleness <= d {
			o.catchingUp = false
			b.catchingUp--
			if b.OnCatchUp != nil {
				b.OnCatchUp(o.id, o.spec.Name, staleness)
			}
		}
	}
	if b.OnApply != nil {
		b.OnApply(o.id, o.spec.Name, epoch, seq, version, now)
	}
}

// handleStateTransfer applies the legacy monolithic transfer. Entries
// carry their specs, so an object whose registration never reached this
// replica is admitted here rather than left as a spec-less placeholder
// that a later promotion would silently drop.
func (b *Backup) handleStateTransfer(t *wire.StateTransfer) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	applied := 0
	for _, e := range t.Entries {
		applied += b.applyStateEntry(t.Epoch, e)
	}
	b.send(&wire.StateTransferAck{Epoch: t.Epoch, Objects: uint32(applied)})
	if b.OnStateTransfer != nil {
		b.OnStateTransfer(t.Epoch, applied)
	}
}

func (b *Backup) send(msg wire.Message) {
	if b.sess == nil {
		return
	}
	_ = b.sess.Push(xkernel.NewMessage(wire.Encode(msg)))
}

// Value returns the backup's current copy of an object by name.
func (b *Backup) Value(name string) (data []byte, version time.Time, ok bool) {
	id, found := b.byName[name]
	if !found {
		return nil, time.Time{}, false
	}
	o := b.objects[id]
	if !o.hasData {
		return nil, time.Time{}, false
	}
	cp := make([]byte, len(o.value))
	copy(cp, o.value)
	return cp, o.version, true
}

// Objects reports the number of known objects.
func (b *Backup) Objects() int { return len(b.objects) }

// Specs returns the registered object specs in object-id (admission)
// order. A promoted replica re-registers these with its own admission
// controller, and the order must be deterministic — it fixes the new
// primary's id assignment and task creation order.
func (b *Backup) Specs() []ObjectSpec {
	out := make([]ObjectSpec, 0, len(b.byName))
	for _, id := range b.orderedIDs() {
		if o := b.objects[id]; o.spec.Name != "" {
			out = append(out, o.spec)
		}
	}
	return out
}

// orderedIDs returns every known object id in ascending order — the
// deterministic iteration all promotion-visible snapshots use.
func (b *Backup) orderedIDs() []uint32 {
	ids := make([]uint32, 0, len(b.objects))
	for id := range b.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// State snapshots the backup's replicated values for promotion: the new
// primary seeds its object table from this.
func (b *Backup) State() []wire.StateEntry {
	out := make([]wire.StateEntry, 0, len(b.objects))
	for _, id := range b.orderedIDs() {
		o := b.objects[id]
		if !o.hasData {
			continue
		}
		payload := make([]byte, len(o.value))
		copy(payload, o.value)
		out = append(out, wire.StateEntry{
			ObjectID: o.id,
			Seq:      o.seq,
			Version:  o.version.UnixNano(),
			Name:     o.spec.Name,
			Size:     uint32(o.spec.Size),
			Period:   o.spec.UpdatePeriod,
			DeltaP:   o.spec.Constraint.DeltaP,
			DeltaB:   o.spec.Constraint.DeltaB,
			Payload:  payload,
		})
	}
	return out
}

// SnapshotEntry is one object's full state for promotion: the registered
// spec plus the last replicated value.
type SnapshotEntry struct {
	// Spec is the object's registration.
	Spec ObjectSpec
	// Value is the last applied payload (nil if none arrived).
	Value []byte
	// Version is the value's timestamp.
	Version time.Time
	// HasData reports whether any update was ever applied.
	HasData bool
}

// Snapshot captures every registered object's spec and replicated value,
// the input to failover promotion.
func (b *Backup) Snapshot() []SnapshotEntry {
	out := make([]SnapshotEntry, 0, len(b.byName))
	for _, id := range b.orderedIDs() {
		o := b.objects[id]
		if o.spec.Name == "" {
			continue
		}
		e := SnapshotEntry{Spec: o.spec, Version: o.version, HasData: o.hasData}
		if o.hasData {
			e.Value = append([]byte(nil), o.value...)
		}
		out = append(out, e)
	}
	return out
}

// Epoch reports the epoch of the last state transfer seen (zero if none).
func (b *Backup) Epoch() uint32 { return b.epoch }

// SeedObject installs replicated state into a promoted primary's table.
// It is the bridge used by the failover orchestrator: after the backup's
// specs are re-registered on the new primary, each object's last known
// value is seeded so clients resume from the most recent replicated
// state.
func (p *Primary) SeedObject(name string, value []byte, version time.Time) error {
	o, err := p.adm.byNameOrErr(name)
	if err != nil {
		return err
	}
	o.value = append([]byte(nil), value...)
	o.version = version
	o.hasData = true
	return nil
}
