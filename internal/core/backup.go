package core

import (
	"time"

	"rtpb/internal/temporal"
	"rtpb/internal/wire"
	"rtpb/internal/xkernel"
)

// This file implements the backup role of the Replica state machine:
// applying replicated registrations and updates into the shared object
// table, detecting sequence gaps and requesting retransmission, answering
// heartbeats, and tracking the primary's overload announcements. The
// table it writes into is the same admission ledger a promotion serves
// from — nothing here is copied at takeover.

// demuxBackup handles inbound RTPB datagrams while shadowing as backup.
func (b *Backup) demuxBackup(msg wire.Message) {
	switch t := msg.(type) {
	case *wire.Register:
		b.handleRegister(t)
	case *wire.Update:
		b.handleUpdate(t)
	case *wire.Ping:
		if b.OnPing != nil {
			b.OnPing(t.Seq)
		}
		b.send(&wire.PingAck{Seq: t.Seq, From: wire.RoleBackup})
	case *wire.PingAck:
		if b.OnPingAck != nil {
			b.OnPingAck(t.Seq)
		}
	case *wire.TimeSync:
		if t.Receive == 0 && t.Transmit == 0 {
			// A probe from the peer: echo it with our stamps. Receive and
			// transmit coincide under the serial executor (zero hold
			// time), which the estimator's rtt formula nets out anyway.
			now := b.cfg.Clock.Now().UnixNano()
			b.send(&wire.TimeSync{Seq: t.Seq, From: wire.RoleBackup,
				Originate: t.Originate, Receive: now, Transmit: now})
		} else {
			b.observeTimeSync(t)
		}
	case *wire.StateTransfer:
		b.handleStateTransfer(t)
	case *wire.ModeChange:
		b.handleModeChange(t)
	case *wire.JoinAccept:
		b.handleJoinAccept(t)
	case *wire.StateChunk:
		b.handleStateChunk(t)
	case *wire.Unregister:
		b.handleUnregister(t)
	}
}

// observeEpoch applies the fencing rule: messages from an epoch older
// than one this backup has heard from are stale (a zombie primary after a
// takeover) and must be ignored; a newer epoch is adopted. Epoch 0 is
// "unstamped" and always accepted, so pre-takeover traffic flows.
func (b *Backup) observeEpoch(epoch uint32) bool {
	if b.cfg.DisableEpochFencing {
		// Ablation: adopt newer epochs but never reject older ones.
		if epoch > b.epoch {
			b.epoch = epoch
			b.noteEpochDurable()
		}
		return true
	}
	if epoch == 0 {
		return true
	}
	if epoch < b.epoch {
		return false
	}
	if epoch > b.epoch {
		b.epoch = epoch
		b.noteEpochDurable()
	}
	return true
}

func (b *Backup) handleRegister(t *wire.Register) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	o := b.adm.placeholder(t.ObjectID)
	if o.spec.Name == "" {
		// New object, or a placeholder created by an update/state
		// transfer that outran the registration: install the spec (and
		// derive the update period it would serve with after promotion).
		spec := ObjectSpec{
			Name:         t.Name,
			Size:         int(t.Size),
			UpdatePeriod: t.Period,
			Constraint: temporal.ExternalConstraint{
				DeltaP: t.DeltaP,
				DeltaB: t.DeltaB,
			},
		}
		b.adm.installSpec(o, spec)
		b.logSpec(o)
		if b.OnRegister != nil {
			b.OnRegister(spec)
		}
	}
	// Registration replies are idempotent; re-ack duplicates so a lost
	// reply does not strand the primary's retry loop.
	b.send(&wire.RegisterReply{ObjectID: t.ObjectID, Accepted: true})
}

func (b *Backup) handleUpdate(t *wire.Update) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	if t.AckRequested {
		// Acknowledge even duplicates: a retransmission means our
		// previous ack was lost in transit.
		b.send(&wire.UpdateAck{ObjectID: t.ObjectID, Seq: t.Seq})
	}
	// An update for an object whose registration was lost creates a
	// placeholder entry; the spec arrives with the primary's registration
	// retry.
	o := b.adm.placeholder(t.ObjectID)
	if !o.supersedes(t.Epoch, t.Seq) && !b.cfg.DisableEpochFencing {
		return // duplicate or reordered-stale transmission
	}
	if o.hasData && t.Epoch == o.recvEpoch && t.Seq > o.seq+1 {
		// Sequence gap within the epoch: at least one update was lost.
		if b.OnGap != nil {
			b.OnGap(o.id, o.seq, t.Seq)
		}
		if !b.cfg.DisableGapRecovery {
			b.maybeRequestRetransmit(o)
		}
	} else if o.retransAttempt > 0 && !b.cfg.Clock.Now().Before(o.retransNext) {
		// In-order traffic outlived the suppression window: the loss
		// episode is over, relax the gap-recovery backoff.
		o.retransAttempt = 0
	}
	b.apply(o, t.Epoch, t.Seq, time.Unix(0, t.Version), t.Payload)
}

// maybeRequestRetransmit sends a gap-recovery RetransmitRequest unless
// the per-object throttle still holds one outstanding. Updates carry full
// state, so the arrival that exposed the gap already made the image
// current — the request only accelerates the next refresh — which makes
// rate-limiting safe: under sustained loss the seed's one-request-per-gap
// behaviour amplified every gap into extra retransmissions whose own loss
// created further gaps (the request storm), without tightening staleness.
//
// The throttle window is measured on the wall clock, so a backward step
// (or a parked clock) stretches suppression until the clock catches up:
// gap recovery slows, nothing else — the state that arrived with the gap
// is already applied, and staleness accounting never reads this window.
func (b *Backup) maybeRequestRetransmit(o *object) {
	now := b.cfg.Clock.Now()
	if !b.cfg.DisableRetransmitThrottle && now.Before(o.retransNext) {
		b.retransSuppressed++
		return
	}
	b.send(&wire.RetransmitRequest{ObjectID: o.id, LastSeq: o.seq})
	b.retransRequested++
	if b.cfg.DisableRetransmitThrottle {
		return
	}
	base := max(4*b.cfg.Ell, 20*time.Millisecond)
	o.retransNext = now.Add(b.gapBackoff.DelayFrom(base, o.retransAttempt))
	o.retransAttempt++
}

// RetransmitStats reports gap-recovery request activity: requests sent
// and requests suppressed by the per-object throttle.
func (b *Backup) RetransmitStats() (requested, suppressed int) {
	return b.retransRequested, b.retransSuppressed
}

// handleModeChange records the primary overload governor's announced
// degradation rung for one object, deduplicating the loss-tolerant
// re-sends by (epoch, seq).
func (b *Backup) handleModeChange(t *wire.ModeChange) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	mode := ObjectMode(t.Mode)
	if mode < ModeNormal || mode > ModeShed {
		return // unknown rung from a newer revision: ignore
	}
	o := b.adm.placeholder(t.ObjectID)
	if t.Epoch == o.modeEpoch && t.Seq <= o.modeSeq {
		return // duplicate or stale reordering
	}
	o.modeEpoch = t.Epoch
	o.modeSeq = t.Seq
	if o.mode == mode {
		return
	}
	o.mode = mode
	o.modeBound = t.EffectiveBound
	if b.OnModeChange != nil {
		b.OnModeChange(o.id, o.spec.Name, mode, t.EffectiveBound)
	}
}

func (b *Backup) apply(o *object, epoch uint32, seq uint64, version time.Time, payload []byte) {
	o.recvEpoch = epoch
	o.seq = seq
	o.version = version
	o.value = append(o.value[:0], payload...)
	o.hasData = true
	now := b.cfg.Clock.Now()
	if o.catchingUp {
		// Catch-up semantics: the object is declared consistent again
		// only once an applied image lands within its backup bound — a
		// transferred value can itself be stale (the writer may have been
		// quiet), and serving it as consistent is exactly the hazard the
		// catch-up mark exists to prevent. Objects without a declared
		// bound catch up on any apply.
		staleness := now.Sub(version)
		if d := o.spec.Constraint.DeltaB; d <= 0 || staleness <= d {
			o.catchingUp = false
			b.catchingUp--
			if b.OnCatchUp != nil {
				b.OnCatchUp(o.id, o.spec.Name, staleness)
			}
		}
	}
	if b.OnApply != nil {
		b.OnApply(o.id, o.spec.Name, epoch, seq, version, now)
	}
	b.logApply(o, epoch, seq, version, payload)
}

// handleStateTransfer applies the legacy monolithic transfer. Entries
// carry their specs, so an object whose registration never reached this
// replica is admitted here rather than left as a spec-less placeholder
// that a later promotion would drop.
func (b *Backup) handleStateTransfer(t *wire.StateTransfer) {
	if !b.observeEpoch(t.Epoch) {
		return
	}
	applied := 0
	for _, e := range t.Entries {
		applied += b.applyStateEntry(t.Epoch, e)
	}
	b.send(&wire.StateTransferAck{Epoch: t.Epoch, Objects: uint32(applied)})
	if b.OnStateTransfer != nil {
		b.OnStateTransfer(t.Epoch, applied)
	}
}

func (b *Backup) send(msg wire.Message) {
	if b.sess == nil {
		return
	}
	_ = b.sess.Push(xkernel.NewMessage(wire.Encode(msg)))
}

// Specs returns the registered object specs in object-id (admission)
// order — the deterministic enumeration promotion-visible surfaces use.
func (b *Backup) Specs() []ObjectSpec {
	out := make([]ObjectSpec, 0, len(b.adm.byName))
	for _, id := range b.adm.orderedIDs() {
		if o := b.adm.objects[id]; o.spec.Name != "" {
			out = append(out, o.spec)
		}
	}
	return out
}

// State snapshots the replicated values (spec-carrying wire entries) in
// admission order.
func (b *Backup) State() []wire.StateEntry {
	out := make([]wire.StateEntry, 0, len(b.adm.objects))
	for _, id := range b.adm.orderedIDs() {
		o := b.adm.objects[id]
		if !o.hasData {
			continue
		}
		payload := make([]byte, len(o.value))
		copy(payload, o.value)
		out = append(out, wire.StateEntry{
			ObjectID: o.id,
			Seq:      o.seq,
			Version:  o.version.UnixNano(),
			Name:     o.spec.Name,
			Size:     uint32(o.spec.Size),
			Period:   o.spec.UpdatePeriod,
			DeltaP:   o.spec.Constraint.DeltaP,
			DeltaB:   o.spec.Constraint.DeltaB,
			Payload:  payload,
		})
	}
	return out
}

// SnapshotEntry is one object's full state: the registered spec plus the
// last replicated value. In-place promotion does not consume snapshots —
// this remains for observers and external checkpointing.
type SnapshotEntry struct {
	// Spec is the object's registration.
	Spec ObjectSpec
	// Value is the last applied payload (nil if none arrived).
	Value []byte
	// Version is the value's timestamp.
	Version time.Time
	// HasData reports whether any update was ever applied.
	HasData bool
}

// Snapshot captures every registered object's spec and replicated value.
func (b *Backup) Snapshot() []SnapshotEntry {
	out := make([]SnapshotEntry, 0, len(b.adm.byName))
	for _, id := range b.adm.orderedIDs() {
		o := b.adm.objects[id]
		if o.spec.Name == "" {
			continue
		}
		e := SnapshotEntry{Spec: o.spec, Version: o.version, HasData: o.hasData}
		if o.hasData {
			e.Value = append([]byte(nil), o.value...)
		}
		out = append(out, e)
	}
	return out
}

// SeedObject installs replicated state into a primary's table directly —
// an external checkpoint restore path (in-place promotion no longer needs
// it; the table carries over).
func (p *Primary) SeedObject(name string, value []byte, version time.Time) error {
	o, err := p.adm.byNameOrErr(name)
	if err != nil {
		return err
	}
	o.value = append([]byte(nil), value...)
	o.version = version
	o.hasData = true
	return nil
}
