package core

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/netsim"
	"rtpb/internal/xkernel"
)

// testCluster is a two-replica RTPB deployment on a simulated network,
// the standard fixture for end-to-end protocol tests.
type testCluster struct {
	clk     *clock.SimClock
	net     *netsim.Network
	primary *Primary
	backup  *Backup
	pEP     *netsim.Endpoint
	bEP     *netsim.Endpoint
}

type clusterOpts struct {
	seed    int64
	link    netsim.LinkParams
	ell     time.Duration
	mutateP func(*Config)
	mutateB func(*Config)
}

func stackOn(t *testing.T, net *netsim.Network, host string) (*xkernel.PortProtocol, *netsim.Endpoint) {
	t.Helper()
	ep, err := net.Endpoint(host)
	if err != nil {
		t.Fatal(err)
	}
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(ep)},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := g.Protocol("uport")
	return p.(*xkernel.PortProtocol), ep
}

func newTestCluster(t *testing.T, opts clusterOpts) *testCluster {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, opts.seed)
	if err := net.SetDefaultLink(opts.link); err != nil {
		t.Fatal(err)
	}
	pPort, pEP := stackOn(t, net, "primary")
	bPort, bEP := stackOn(t, net, "backup")

	ell := opts.ell
	if ell == 0 {
		ell = opts.link.Bound()
		if ell == 0 {
			ell = time.Millisecond
		}
	}
	pCfg := Config{
		Clock: clk,
		Port:  pPort,
		Peer:  "backup:7000",
		Ell:   ell,
	}
	bCfg := Config{
		Clock: clk,
		Port:  bPort,
		Peer:  "primary:7000",
		Ell:   ell,
	}
	if opts.mutateP != nil {
		opts.mutateP(&pCfg)
	}
	if opts.mutateB != nil {
		opts.mutateB(&bCfg)
	}
	primary, err := NewPrimary(pCfg)
	if err != nil {
		t.Fatal(err)
	}
	backup, err := NewBackup(bCfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testCluster{clk: clk, net: net, primary: primary, backup: backup, pEP: pEP, bEP: bEP}
}

// registerOK registers a spec on the primary and fails the test on
// rejection, then runs the clock briefly so the backup learns about it.
func (c *testCluster) registerOK(t *testing.T, s ObjectSpec) Decision {
	t.Helper()
	d := c.primary.Register(s)
	if !d.Accepted {
		t.Fatalf("registration of %q rejected: %s", s.Name, d.Reason)
	}
	c.clk.RunFor(5 * time.Millisecond)
	return d
}

// writeEvery drives periodic client writes for an object until the
// returned stop function is called.
func (c *testCluster) writeEvery(name string, period time.Duration, payload func(i int) []byte) *clock.Periodic {
	i := 0
	return clock.NewPeriodic(c.clk, 0, period, func() {
		i++
		c.primary.ClientWrite(name, payload(i), nil)
	})
}
