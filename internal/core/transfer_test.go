package core

import (
	"fmt"
	"testing"
	"time"

	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
)

// TestChunkedTransferResumesFromDigest is the repair cycle's resumability
// acceptance test: a join exchange is cut by a partition mid-stream, the
// primary abandons the in-flight chunk generation, and — once the link
// heals — the joiner's digest retry resumes the transfer from exactly
// what survived. Entries that landed before the cut must never be
// streamed again.
func TestChunkedTransferResumesFromDigest(t *testing.T) {
	const objects = 12
	c := newTestCluster(t, clusterOpts{
		seed: 11,
		link: netsim.LinkParams{Delay: time.Millisecond},
		mutateP: func(cfg *Config) {
			cfg.Peer = "" // the backup is attached later, via AddPeer
			cfg.ChunkEntries = 2
		},
	})
	defer c.primary.Stop()
	defer c.backup.Stop()

	names := make([]string, objects)
	for i := range names {
		names[i] = fmt.Sprintf("obj%02d", i)
		d := c.primary.Register(ObjectSpec{
			Name:         names[i],
			Size:         64,
			UpdatePeriod: 500 * time.Millisecond,
			Constraint: temporal.ExternalConstraint{
				DeltaP: 500 * time.Millisecond,
				DeltaB: 2 * time.Second,
			},
		})
		if !d.Accepted {
			t.Fatalf("register %q: %s", names[i], d.Reason)
		}
		c.primary.ClientWrite(names[i], []byte("val-"+names[i]), nil)
	}
	c.clk.RunFor(5 * time.Millisecond)

	applied := func() int {
		n := 0
		for _, name := range names {
			if _, _, ok := c.backup.Value(name); ok {
				n++
			}
		}
		return n
	}

	if err := c.primary.AddPeer("backup:7000"); err != nil {
		t.Fatal(err)
	}
	// Let the exchange run until a few chunks have landed, then cut the
	// link mid-generation.
	for i := 0; i < 200 && applied() < 4; i++ {
		c.clk.RunFor(time.Millisecond)
	}
	survived := applied()
	if survived < 4 || survived == objects {
		t.Fatalf("partition point missed: %d/%d entries landed", survived, objects)
	}
	c.bEP.SetDown(true)
	c.clk.RunFor(1500 * time.Millisecond)
	if c.backup.Joined() {
		t.Fatal("backup reported joined across a partition")
	}

	c.bEP.SetDown(false)
	c.clk.RunFor(3 * time.Second)

	if !c.backup.Joined() {
		t.Fatal("join never completed after the partition healed")
	}
	if got := applied(); got != objects {
		t.Fatalf("backup holds %d/%d entries after resume", got, objects)
	}
	if got := c.primary.SyncedPeers(); got != 1 {
		t.Fatalf("synced peers = %d, want 1", got)
	}

	st, ok := c.primary.TransferStatsFor("backup:7000")
	if !ok {
		t.Fatal("no transfer stats for the backup peer")
	}
	if st.Completions != 1 {
		t.Fatalf("completions = %d, want 1", st.Completions)
	}
	if st.Digests < 2 {
		t.Fatalf("digests = %d, want at least 2 (initial + resume)", st.Digests)
	}
	if st.ChunkRetransmits == 0 {
		t.Fatal("no chunk retransmissions despite a mid-stream partition")
	}
	// The resumability contract: what landed before the cut is skipped by
	// the resume digest, and the total streamed stays well under a
	// restart-from-scratch (2× the table).
	if st.EntriesSkipped < survived {
		t.Fatalf("entries skipped = %d, want at least the %d that survived the cut",
			st.EntriesSkipped, survived)
	}
	if st.EntriesSent >= 2*objects {
		t.Fatalf("entries sent = %d — the transfer restarted from scratch (table is %d)",
			st.EntriesSent, objects)
	}
}

// TestJoinExchangeCompletesOnCleanLink sanity-checks the happy path: one
// digest, no retransmissions, every entry streamed exactly once.
func TestJoinExchangeCompletesOnCleanLink(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed: 3,
		link: netsim.LinkParams{Delay: time.Millisecond},
		mutateP: func(cfg *Config) {
			cfg.Peer = ""
			cfg.ChunkEntries = 2
		},
	})
	defer c.primary.Stop()
	defer c.backup.Stop()

	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("clean%d", i)
		d := c.primary.Register(ObjectSpec{
			Name:         name,
			Size:         32,
			UpdatePeriod: 500 * time.Millisecond,
			Constraint: temporal.ExternalConstraint{
				DeltaP: 500 * time.Millisecond,
				DeltaB: 2 * time.Second,
			},
		})
		if !d.Accepted {
			t.Fatalf("register %q: %s", name, d.Reason)
		}
		c.primary.ClientWrite(name, []byte{byte(i)}, nil)
	}
	c.clk.RunFor(5 * time.Millisecond)

	if err := c.primary.AddPeer("backup:7000"); err != nil {
		t.Fatal(err)
	}
	c.clk.RunFor(500 * time.Millisecond)

	if !c.backup.Joined() {
		t.Fatal("join never completed on a clean link")
	}
	st, _ := c.primary.TransferStatsFor("backup:7000")
	if st.Digests != 1 || st.ChunkRetransmits != 0 || st.Completions != 1 {
		t.Fatalf("stats = %+v, want one digest, no retransmits, one completion", st)
	}
	if st.EntriesSent != 5 {
		t.Fatalf("entries sent = %d, want 5", st.EntriesSent)
	}
}

// TestJoinRecoversFromLostFinalAck covers the one interruption the
// joiner's digest retry cannot repair: the final chunk lands (the backup
// flips to joined and stops sending digests) but every acknowledgement
// toward the primary is lost. Once the chunk's retry budget is spent the
// primary must restart the exchange from the JoinAccept rather than wait
// for a digest that will never come — the fresh digest then proves
// parity and an empty final chunk closes the sync.
func TestJoinRecoversFromLostFinalAck(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed: 17,
		link: netsim.LinkParams{Delay: time.Millisecond},
		mutateP: func(cfg *Config) {
			cfg.Peer = "" // the backup is attached later, via AddPeer
			cfg.ChunkEntries = 4
		},
	})
	defer c.primary.Stop()
	defer c.backup.Stop()

	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("ack%d", i)
		d := c.primary.Register(ObjectSpec{
			Name:         name,
			Size:         32,
			UpdatePeriod: 500 * time.Millisecond,
			Constraint: temporal.ExternalConstraint{
				DeltaP: 500 * time.Millisecond,
				DeltaB: 2 * time.Second,
			},
		})
		if !d.Accepted {
			t.Fatalf("register %q: %s", name, d.Reason)
		}
		c.primary.ClientWrite(name, []byte{byte(i)}, nil)
	}
	c.clk.RunFor(5 * time.Millisecond)

	if err := c.primary.AddPeer("backup:7000"); err != nil {
		t.Fatal(err)
	}
	// Let the exchange run until the primary has streamed the (single,
	// final) chunk, then cut only the backup→primary direction: the chunk
	// and its retransmissions still arrive, but no ack ever returns.
	stats := func() TransferStats {
		st, _ := c.primary.TransferStatsFor("backup:7000")
		return st
	}
	for i := 0; i < 100 && stats().EntriesSent == 0; i++ {
		c.clk.RunFor(100 * time.Microsecond)
	}
	if stats().EntriesSent == 0 {
		t.Fatal("chunk was never streamed")
	}
	c.net.PartitionOneWay("backup", "primary")

	// The backup receives the final chunk and considers itself joined;
	// the primary keeps retransmitting into the void.
	c.clk.RunFor(10 * time.Millisecond)
	if !c.backup.Joined() {
		t.Fatal("backup never received the final chunk")
	}
	if got := c.primary.SyncedPeers(); got != 0 {
		t.Fatalf("synced peers = %d with every ack cut, want 0", got)
	}

	// Run until the retry budget is spent and the primary re-opens the
	// exchange (a second JoinAccept). Without the restart this polls out:
	// the joined backup sends no digests, so nothing ever resumes.
	for i := 0; i < 4000 && stats().JoinAccepts < 2; i++ {
		c.clk.RunFor(5 * time.Millisecond)
	}
	if stats().JoinAccepts < 2 {
		t.Fatal("exchange was never restarted after the chunk retry budget ran out")
	}

	c.net.HealOneWay("backup", "primary")
	c.clk.RunFor(2 * time.Second)

	if got := c.primary.SyncedPeers(); got != 1 {
		t.Fatalf("synced peers = %d after heal, want 1", got)
	}
	st := stats()
	if st.Completions != 1 {
		t.Fatalf("completions = %d, want 1", st.Completions)
	}
	// The restarted exchange must skip what already landed, not
	// re-stream the table.
	if st.EntriesSent != 2 {
		t.Fatalf("entries sent = %d, want 2 (no re-streaming on restart)", st.EntriesSent)
	}
	if st.EntriesSkipped < 2 {
		t.Fatalf("entries skipped = %d, want at least 2 from the parity digest", st.EntriesSkipped)
	}
}
