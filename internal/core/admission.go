package core

import (
	"fmt"
	"sort"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/sched"
	"rtpb/internal/temporal"
)

// Decision is the outcome of admission control for one registration,
// including the QoS-negotiation feedback of Section 4.2.
type Decision struct {
	// Accepted reports whether the object was admitted.
	Accepted bool
	// ObjectID is the assigned identifier when accepted.
	ObjectID uint32
	// Reason explains a rejection.
	Reason string
	// SuggestedDeltaB, when non-zero, is a δ_i^B the service estimates it
	// could accept instead, for the client to renegotiate with.
	SuggestedDeltaB time.Duration
	// UpdatePeriod is the admitted backup-update period r_i.
	UpdatePeriod time.Duration
}

// object is a replica's bookkeeping for one object: the admission ledger
// entry while serving as primary, the replicated image while serving as
// backup. One struct for both roles is what makes promotion an in-place
// transition — the table never has to be copied or re-admitted.
type object struct {
	id   uint32
	spec ObjectSpec

	// updatePeriod is r_i, the period of the backup-update task actually
	// scheduled (under SchedTestDCS this is the S_r-specialized period).
	// Backups derive it at spec installation so a later promotion can
	// start update tasks without re-running admission; zero on a spec-less
	// placeholder.
	updatePeriod time.Duration
	// nominalPeriod is the constraint-derived period before pinwheel
	// specialization: SlackFactor·(δ−ℓ) capped by inter-object bounds.
	nominalPeriod time.Duration
	// interBounds are δ_ij bounds from inter-object constraints naming
	// this object; they cap both p_i (checked at admission) and r_i.
	interBounds []time.Duration

	// Replicated state. seq is the primary's send sequence while serving,
	// and the last applied sequence while backing up — the roles never
	// overlap in time, and promotion resets it with the epoch bump.
	value   []byte
	version time.Time
	hasData bool
	seq     uint64

	// recvEpoch is the epoch the current value was applied under (backup
	// role; supersedes orders inbound updates by (recvEpoch, seq)).
	recvEpoch uint32

	// lastSentVersion is the version carried by the most recent update
	// transmission; lastSentAt is the instant it entered the network (the
	// governor's staleness-headroom signal).
	lastSentVersion time.Time
	lastSentSeq     uint64
	lastSentAt      time.Time

	// highPending marks a recovery retransmission already queued in the
	// high-priority CPU class (single-flight per object).
	highPending bool

	// task is the periodic update task under normal scheduling.
	task *clock.Periodic

	// pendingAcks holds critical writes awaiting backup acknowledgement,
	// keyed by the update's sequence number.
	pendingAcks map[uint64]*pendingAck

	// Gap-recovery throttle (backup role): retransNext is the earliest
	// instant another RetransmitRequest may be sent for this object;
	// retransAttempt is the backoff rung, reset once in-order traffic
	// outlives the window.
	retransNext    time.Time
	retransAttempt int

	// Overload-governor tracking (backup role): the primary's announced
	// degradation rung for this object, deduplicated by (epoch, seq).
	mode      ObjectMode
	modeSeq   uint64
	modeEpoch uint32
	// modeBound is the announced mode-effective external bound (backup
	// role): the δ_B a Certificate served from this replica advertises
	// while the primary has the object off the normal rung.
	modeBound time.Duration

	// catchingUp marks an object whose image was stale when a join
	// exchange began; it clears only once an applied update or chunk
	// lands within δ_i^B, and until then the object must not be reported
	// temporally consistent.
	catchingUp bool
}

// supersedes reports whether an inbound (epoch, seq) pair is newer than
// the object's current state. Updates are ordered by (epoch, seq): a new
// primary starts its sequence numbers afresh, so its first update must
// supersede any sequence number from the previous epoch.
func (o *object) supersedes(epoch uint32, seq uint64) bool {
	if !o.hasData {
		return true
	}
	if epoch != o.recvEpoch {
		return epoch > o.recvEpoch
	}
	return seq > o.seq
}

// admission owns the primary's object table and implements the admission
// tests of Section 4.2.
type admission struct {
	cfg     *Config
	objects map[uint32]*object
	byName  map[string]uint32
	inter   []temporal.InterObjectConstraint
	nextID  uint32
}

func newAdmission(cfg *Config) *admission {
	return &admission{
		cfg:     cfg,
		objects: make(map[uint32]*object),
		byName:  make(map[string]uint32),
		nextID:  1,
	}
}

// ordered returns the admitted objects in id (admission) order — the
// deterministic iteration every wire-visible path must use, and the
// criticality order the overload governor's ladder walks.
func (a *admission) ordered() []*object {
	ids := make([]uint32, 0, len(a.objects))
	for id := range a.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*object, len(ids))
	for i, id := range ids {
		out[i] = a.objects[id]
	}
	return out
}

// orderedIDs returns the object ids in ascending order — the deterministic
// iteration for paths that only need identifiers.
func (a *admission) orderedIDs() []uint32 {
	ids := make([]uint32, 0, len(a.objects))
	for id := range a.objects {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// placeholder returns the object with the given wire-assigned id, creating
// a spec-less entry if none exists. Backups use it for every inbound id:
// updates can outrun the registration that names them. The id counter is
// kept ahead of every wire-installed id so that a later promotion can
// admit new objects without colliding.
func (a *admission) placeholder(id uint32) *object {
	o, ok := a.objects[id]
	if !ok {
		o = &object{id: id}
		a.objects[id] = o
	}
	if id >= a.nextID {
		a.nextID = id + 1
	}
	return o
}

// installSpec attaches a replicated spec to a backup-side object and
// derives its update period with the same Section 4.3 math the primary's
// admission ran — the period rides along in the ledger so an in-place
// promotion can start update tasks without re-admitting anything.
func (a *admission) installSpec(o *object, spec ObjectSpec) {
	o.spec = spec
	a.byName[spec.Name] = o.id
	if o.value == nil && spec.Size > 0 {
		o.value = make([]byte, 0, spec.Size)
	}
	o.updatePeriod = a.effectivePeriod(a.externalPeriod(spec.Constraint), o.interBounds)
	if a.cfg.Scheduling == ScheduleWriteThrough && spec.UpdatePeriod < o.updatePeriod {
		o.updatePeriod = spec.UpdatePeriod
	}
	o.nominalPeriod = o.updatePeriod
}

// externalPeriod derives r_i from the external constraint:
// SlackFactor·(δ_i − ℓ − SkewMargin), the paper's choice of half the
// Theorem 5 maximum to leave room for loss compensation. SkewMargin
// (zero by default) additionally reserves clock-uncertainty headroom:
// with replica clocks disagreeing by up to θ, a backup image that looks
// δ-fresh on the primary's clock may be δ+θ stale on the backup's, so a
// deployment that wants its bounds to hold on every clock must schedule
// against the margin-tightened window.
func (a *admission) externalPeriod(c temporal.ExternalConstraint) time.Duration {
	window := c.Delta() - a.cfg.Ell - a.cfg.SkewMargin
	return time.Duration(a.cfg.SlackFactor * float64(window))
}

// effectivePeriod caps an object's external-constraint period with its
// inter-object bounds (Theorem 6 at the backup: r ≤ δ_ij with v' = 0).
// The SlackFactor applies to the inter-object bounds too, for the same
// reason it applies to the external window (Section 4.3): updates ride an
// unreliable transport, and halving the period leaves room to absorb a
// lost message without breaking the bound.
func (a *admission) effectivePeriod(ext time.Duration, interBounds []time.Duration) time.Duration {
	r := ext
	for _, b := range interBounds {
		sb := time.Duration(a.cfg.SlackFactor * float64(b))
		if sb < r {
			r = sb
		}
	}
	return r
}

// taskSet builds the schedulability-test task set for the current table
// plus any extra candidate objects: per object, the backup-update task
// (period r_i, cost of one transmission) and the client-service task
// (period p_i, cost of one client write).
func (a *admission) taskSet(extra ...*object) sched.TaskSet {
	ts := make(sched.TaskSet, 0, 2*(len(a.objects)+len(extra)))
	replicas := time.Duration(a.cfg.replicaCount())
	add := func(o *object) {
		if o.spec.Name == "" || o.updatePeriod <= 0 {
			// A spec-less placeholder (orphan update at a backup) has no
			// admitted tasks; it must not divide the utilization math by a
			// zero period.
			return
		}
		ts = append(ts,
			sched.Task{
				Name:   o.spec.Name + "/update",
				Period: o.updatePeriod,
				WCET:   replicas * a.cfg.Costs.sendCost(o.spec.Size),
			},
			sched.Task{
				Name:   o.spec.Name + "/client",
				Period: o.spec.UpdatePeriod,
				WCET:   a.cfg.Costs.clientCost(o.spec.Size),
			})
		if o.spec.Critical {
			// The hybrid path transmits synchronously on every client
			// write, on top of the periodic update task.
			ts = append(ts, sched.Task{
				Name:   o.spec.Name + "/sync",
				Period: o.spec.UpdatePeriod,
				WCET:   replicas * a.cfg.Costs.sendCost(o.spec.Size),
			})
		}
	}
	for _, o := range a.objects {
		add(o)
	}
	for _, o := range extra {
		add(o)
	}
	return ts
}

// admit runs the Section 4.2 admission pipeline for a registration. On
// acceptance the object is inserted into the table.
func (a *admission) admit(spec ObjectSpec) (*object, Decision) {
	reject := func(reason string, suggest time.Duration) (*object, Decision) {
		return nil, Decision{Accepted: false, Reason: reason, SuggestedDeltaB: suggest}
	}
	if err := spec.Validate(); err != nil {
		return reject(err.Error(), 0)
	}
	if _, dup := a.byName[spec.Name]; dup {
		return reject(fmt.Sprintf("object %q already registered", spec.Name), 0)
	}

	// Test 1: the client's update period must keep the primary's copy
	// within δ_i^P (p_i ≤ δ_i^P).
	if spec.UpdatePeriod > spec.Constraint.DeltaP {
		return reject(fmt.Sprintf("client period %v exceeds δP %v",
			spec.UpdatePeriod, spec.Constraint.DeltaP), 0)
	}

	// Test 2: the primary-backup window must exceed the communication
	// delay bound plus the reserved clock-uncertainty margin
	// (δ_i = δB − δP > ℓ + SkewMargin), or no transmission schedule can
	// keep the backup consistent on every replica's clock.
	if spec.Constraint.Delta() <= a.cfg.Ell+a.cfg.SkewMargin {
		suggest := spec.Constraint.DeltaP + 2*(a.cfg.Ell+a.cfg.SkewMargin) + spec.UpdatePeriod
		return reject(fmt.Sprintf("window δ=%v does not exceed ℓ=%v + skew margin %v",
			spec.Constraint.Delta(), a.cfg.Ell, a.cfg.SkewMargin), suggest)
	}

	cand := &object{
		id:   a.nextID,
		spec: spec,
	}
	cand.updatePeriod = a.effectivePeriod(a.externalPeriod(spec.Constraint), nil)
	cand.nominalPeriod = cand.updatePeriod
	if a.cfg.Scheduling == ScheduleWriteThrough {
		// Write-through couples transmissions to client writes, so the
		// schedulability test must account for one transmission per
		// client period (capped by the external bound).
		if spec.UpdatePeriod < cand.updatePeriod {
			cand.updatePeriod = spec.UpdatePeriod
		}
	}
	if cand.updatePeriod <= 0 {
		suggest := spec.Constraint.DeltaP + 2*(a.cfg.Ell+a.cfg.SkewMargin) + spec.UpdatePeriod
		return reject("derived update period is not positive", suggest)
	}
	// The update task's cost must fit its period at all.
	if a.cfg.Costs.sendCost(spec.Size) > cand.updatePeriod {
		return reject(fmt.Sprintf("update transmission cost %v exceeds period %v",
			a.cfg.Costs.sendCost(spec.Size), cand.updatePeriod), 0)
	}

	// Test 3: schedulability of all update and client-service tasks with
	// the candidate added (the paper's rate-monotonic test).
	if !a.cfg.DisableAdmissionControl && !a.cfg.SchedTest.feasible(a.taskSet(cand)) {
		return reject(
			fmt.Sprintf("update task set unschedulable with %d objects", len(a.objects)+1),
			a.suggestDeltaB(spec))
	}

	a.objects[cand.id] = cand
	a.byName[spec.Name] = cand.id
	a.nextID++

	// Under the DCS test, admission does not merely check Theorem 3's
	// condition — it applies the S_r pinwheel specialization, replacing
	// every object's update period with a harmonic one ≤ its nominal
	// period, so the transmission schedule itself achieves (near-)zero
	// phase variance.
	if a.cfg.SchedTest == SchedTestDCS && !a.cfg.DisableAdmissionControl {
		if err := a.applyDCS(); err != nil {
			delete(a.objects, cand.id)
			delete(a.byName, spec.Name)
			_ = a.applyDCS() // restore the previous assignment
			return reject(err.Error(), a.suggestDeltaB(spec))
		}
	}
	return cand, Decision{
		Accepted:     true,
		ObjectID:     cand.id,
		UpdatePeriod: cand.updatePeriod,
	}
}

// applyDCS specializes every object's update period with Han & Lin's S_r
// (SpecializeSr) starting from the nominal, constraint-derived periods.
// Specialized periods never exceed the nominals, so every temporal
// constraint keeps holding.
func (a *admission) applyDCS() error {
	if len(a.objects) == 0 {
		return nil
	}
	ids := make([]uint32, 0, len(a.objects))
	ts := make(sched.TaskSet, 0, len(a.objects))
	for id, o := range a.objects {
		if o.spec.Name == "" || o.nominalPeriod <= 0 {
			continue // spec-less placeholder: nothing to specialize
		}
		ids = append(ids, id)
		ts = append(ts, sched.Task{
			Name:   o.spec.Name + "/update",
			Period: o.nominalPeriod,
			WCET:   time.Duration(a.cfg.replicaCount()) * a.cfg.Costs.sendCost(o.spec.Size),
		})
	}
	spec, ok := sched.SpecializeSr(ts)
	if !ok {
		return fmt.Errorf("S_r specialization infeasible with %d objects", len(a.objects))
	}
	for i, id := range ids {
		a.objects[id].updatePeriod = spec[i].Period
	}
	return nil
}

// suggestDeltaB searches for a larger δ_i^B that would pass the
// schedulability test, doubling the window up to a cap; zero means none
// found.
func (a *admission) suggestDeltaB(spec ObjectSpec) time.Duration {
	for scale := 2; scale <= 64; scale *= 2 {
		try := spec
		try.Constraint.DeltaB = spec.Constraint.DeltaP +
			time.Duration(scale)*spec.Constraint.Delta()
		cand := &object{spec: try}
		cand.updatePeriod = a.externalPeriod(try.Constraint)
		if cand.updatePeriod <= 0 {
			continue
		}
		if a.cfg.SchedTest.feasible(a.taskSet(cand)) {
			return try.Constraint.DeltaB
		}
	}
	return 0
}

// admitInterObject applies an inter-object constraint to two admitted
// objects (Section 4.2, last paragraph): each constraint is converted
// into per-object period bounds — p ≤ δ_ij at the primary, r ≤ δ_ij at
// the backup — and the tightened update tasks must remain schedulable.
// On success the constraint is recorded and both objects' update periods
// are tightened in place.
func (a *admission) admitInterObject(c temporal.InterObjectConstraint) (Decision, error) {
	if err := c.Validate(); err != nil {
		return Decision{Accepted: false, Reason: err.Error()}, err
	}
	oi, err := a.byNameOrErr(c.I)
	if err != nil {
		return Decision{Accepted: false, Reason: err.Error()}, err
	}
	oj, err := a.byNameOrErr(c.J)
	if err != nil {
		return Decision{Accepted: false, Reason: err.Error()}, err
	}

	boundI, boundJ := temporal.ConvertInterObject(c)
	// Primary-side check: the client update periods must fit within δ_ij.
	if oi.spec.UpdatePeriod > boundI || oj.spec.UpdatePeriod > boundJ {
		reason := fmt.Sprintf("client periods %v/%v exceed δ_ij %v",
			oi.spec.UpdatePeriod, oj.spec.UpdatePeriod, c.Delta)
		return Decision{Accepted: false, Reason: reason}, fmt.Errorf("%w: %s", ErrRejected, reason)
	}

	// Backup-side check: tighten r_i, r_j to δ_ij and retest
	// schedulability with the tightened set.
	tightI := a.effectivePeriod(a.externalPeriod(oi.spec.Constraint), append(oi.interBounds, boundI))
	tightJ := a.effectivePeriod(a.externalPeriod(oj.spec.Constraint), append(oj.interBounds, boundJ))
	savedI, savedJ := oi.updatePeriod, oj.updatePeriod
	savedNomI, savedNomJ := oi.nominalPeriod, oj.nominalPeriod
	oi.updatePeriod, oj.updatePeriod = tightI, tightJ
	oi.nominalPeriod, oj.nominalPeriod = tightI, tightJ
	rollback := func() {
		oi.updatePeriod, oj.updatePeriod = savedI, savedJ
		oi.nominalPeriod, oj.nominalPeriod = savedNomI, savedNomJ
		if a.cfg.SchedTest == SchedTestDCS && !a.cfg.DisableAdmissionControl {
			_ = a.applyDCS()
		}
	}
	if !a.cfg.DisableAdmissionControl && !a.cfg.SchedTest.feasible(a.taskSet()) {
		rollback()
		reason := fmt.Sprintf("update tasks unschedulable with δ_ij=%v", c.Delta)
		return Decision{Accepted: false, Reason: reason}, fmt.Errorf("%w: %s", ErrRejected, reason)
	}
	if a.cfg.SchedTest == SchedTestDCS && !a.cfg.DisableAdmissionControl {
		if err := a.applyDCS(); err != nil {
			rollback()
			return Decision{Accepted: false, Reason: err.Error()}, fmt.Errorf("%w: %s", ErrRejected, err.Error())
		}
	}
	oi.interBounds = append(oi.interBounds, boundI)
	oj.interBounds = append(oj.interBounds, boundJ)
	a.inter = append(a.inter, c)
	return Decision{Accepted: true}, nil
}

func (a *admission) byNameOrErr(name string) (*object, error) {
	id, ok := a.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownName, name)
	}
	return a.objects[id], nil
}

// utilization reports the admitted task set's total CPU utilization.
func (a *admission) utilization() float64 {
	return a.taskSet().Utilization()
}

// utilizationWith reports what the task set's utilization would be were
// spec admitted, without admitting it — the placement layer's
// bin-packing estimate. ok is false when no positive update period can
// be derived for the spec (the admission pipeline would reject it
// outright).
func (a *admission) utilizationWith(spec ObjectSpec) (float64, bool) {
	cand := &object{spec: spec}
	cand.updatePeriod = a.effectivePeriod(a.externalPeriod(spec.Constraint), nil)
	if a.cfg.Scheduling == ScheduleWriteThrough && spec.UpdatePeriod < cand.updatePeriod {
		cand.updatePeriod = spec.UpdatePeriod
	}
	if cand.updatePeriod <= 0 {
		return 0, false
	}
	return a.taskSet(cand).Utilization(), true
}

// PlanAdmission dry-runs the admission pipeline over a sequence of
// object specs without standing up a replica: the specs are evaluated in
// order against a fresh controller — so capacity interactions between
// them (the schedulability test sees every earlier acceptance) are
// included — and one Decision per spec is returned. Only the
// admission-relevant config fields matter (Ell, SkewMargin, SlackFactor,
// Costs, Scheduling, SchedTest); zero values take the same defaults a
// replica applies. cmd/rtpbench's clocksync sweep uses it to chart
// admitted capacity against the reserved skew margin.
func PlanAdmission(cfg Config, specs []ObjectSpec) []Decision {
	if cfg.SlackFactor == 0 {
		cfg.SlackFactor = 0.5
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts()
	}
	if cfg.Scheduling == 0 {
		cfg.Scheduling = ScheduleNormal
	}
	a := newAdmission(&cfg)
	out := make([]Decision, 0, len(specs))
	for _, spec := range specs {
		_, d := a.admit(spec)
		out = append(out, d)
	}
	return out
}
