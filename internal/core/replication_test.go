package core

import (
	"fmt"
	"testing"
	"time"

	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
)

func TestEndToEndReplication(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed: 1,
		link: netsim.LinkParams{Delay: ms(2)},
	})
	c.registerOK(t, spec("alt", ms(40), ms(50), ms(200)))

	c.primary.ClientWrite("alt", []byte("9000ft"), nil)
	c.clk.RunFor(200 * time.Millisecond)

	got, version, ok := c.backup.Value("alt")
	if !ok {
		t.Fatal("backup has no value for alt")
	}
	if string(got) != "9000ft" {
		t.Fatalf("backup value = %q", got)
	}
	pv, pver, _ := c.primary.Value("alt")
	if string(pv) != "9000ft" || !pver.Equal(version) {
		t.Fatalf("primary/backup versions differ: %v vs %v", pver, version)
	}
}

func TestClientWriteResponseTime(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 2, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))
	var lat time.Duration
	done := false
	c.primary.ClientWrite("x", []byte("v"), func(l time.Duration, err error) {
		if err != nil {
			t.Fatalf("write error: %v", err)
		}
		lat, done = l, true
	})
	c.clk.RunFor(ms(10))
	if !done {
		t.Fatal("write never completed")
	}
	// Response time = CPU cost of the client op on an idle server.
	want := DefaultCosts().clientCost(1)
	if lat != want {
		t.Fatalf("latency = %v, want %v", lat, want)
	}
}

func TestClientWriteUnknownObject(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 3, link: netsim.LinkParams{Delay: ms(2)}})
	gotErr := false
	c.primary.ClientWrite("ghost", []byte("v"), func(_ time.Duration, err error) {
		gotErr = err != nil
	})
	c.clk.RunFor(ms(5))
	if !gotErr {
		t.Fatal("write to unregistered object succeeded")
	}
}

func TestUpdatesFollowAdmittedPeriod(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 4, link: netsim.LinkParams{Delay: ms(2)}})
	d := c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))

	var sends []time.Time
	c.primary.OnSend = func(_ uint32, _ string, _ uint64, _ time.Time) {
		sends = append(sends, c.clk.Now())
	}
	stop := c.writeEvery("x", ms(40), func(i int) []byte { return []byte{byte(i)} })
	defer stop.Stop()
	c.clk.RunFor(time.Second)

	if len(sends) < 5 {
		t.Fatalf("only %d update transmissions in 1s", len(sends))
	}
	// Gaps between consecutive sends track the admitted period (the send
	// instant includes the CPU cost, identical each time).
	for i := 1; i < len(sends); i++ {
		gap := sends[i].Sub(sends[i-1])
		if diff := gap - d.UpdatePeriod; diff < -ms(2) || diff > ms(2) {
			t.Fatalf("send gap %v deviates from period %v", gap, d.UpdatePeriod)
		}
	}
}

func TestBackupExternalConsistencyNoLoss(t *testing.T) {
	// With no loss and the Theorem 5-derived update period, the backup's
	// external temporal consistency must hold throughout the run.
	c := newTestCluster(t, clusterOpts{seed: 5, link: netsim.LinkParams{Delay: ms(2), Jitter: ms(1)}})
	s := spec("x", ms(40), ms(50), ms(200))
	c.registerOK(t, s)

	mon := temporal.NewMonitor()
	mon.TrackExternal("backup", "x", s.Constraint.DeltaB)
	mon.TrackExternal("primary", "x", s.Constraint.DeltaP)
	c.backup.OnApply = func(_ uint32, name string, _ uint32, _ uint64, version, at time.Time) {
		mon.RecordUpdate("backup", name, version, at)
	}
	c.primary.OnClientDone = func(name string, _ time.Duration) {
		mon.RecordUpdate("primary", name, c.clk.Now(), c.clk.Now())
	}

	stop := c.writeEvery("x", ms(40), func(i int) []byte { return []byte{byte(i)} })
	c.clk.RunFor(5 * time.Second)
	stop.Stop()
	mon.FinishAt(c.clk.Now())

	for _, site := range []string{"primary", "backup"} {
		r, ok := mon.ExternalReport(site, "x")
		if !ok {
			t.Fatalf("no %s report", site)
		}
		if r.Updates < 10 {
			t.Fatalf("%s saw only %d updates", site, r.Updates)
		}
		if !r.Consistent() {
			t.Fatalf("%s temporal consistency violated: %v", site, r)
		}
	}
}

func TestGapDetectionTriggersRetransmission(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 6, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))

	gaps := 0
	c.backup.OnGap = func(_ uint32, have, got uint64) {
		gaps++
		if got <= have+1 {
			t.Fatalf("gap callback for non-gap: have=%d got=%d", have, got)
		}
	}
	retransmits := 0
	c.primary.OnRetransmitRequest = func(uint32) { retransmits++ }

	stop := c.writeEvery("x", ms(40), func(i int) []byte { return []byte{byte(i)} })
	defer stop.Stop()
	c.clk.RunFor(500 * time.Millisecond) // lossless warmup

	// Now lose everything for a while, then heal: the backup must detect
	// the hole on the next delivery and ask for retransmission.
	c.net.Partition("primary", "backup")
	c.clk.RunFor(500 * time.Millisecond)
	c.net.Heal("primary", "backup")
	c.clk.RunFor(500 * time.Millisecond)

	if gaps == 0 {
		t.Fatal("no gap detected after loss burst")
	}
	if retransmits == 0 {
		t.Fatal("no retransmission request reached the primary")
	}
	got, _, ok := c.backup.Value("x")
	if !ok || len(got) != 1 {
		t.Fatalf("backup value missing after heal: %v", got)
	}
}

func TestDuplicatesAndStaleUpdatesIgnored(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed: 7,
		link: netsim.LinkParams{Delay: ms(2), Jitter: ms(3), DuplicateProb: 0.5},
	})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))

	var versions []time.Time
	c.backup.OnApply = func(_ uint32, _ string, _ uint32, _ uint64, version, _ time.Time) {
		versions = append(versions, version)
	}
	stop := c.writeEvery("x", ms(20), func(i int) []byte { return []byte{byte(i)} })
	defer stop.Stop()
	c.clk.RunFor(2 * time.Second)

	if len(versions) < 10 {
		t.Fatalf("too few applies: %d", len(versions))
	}
	for i := 1; i < len(versions); i++ {
		if versions[i].Before(versions[i-1]) {
			t.Fatalf("applied version went backwards at %d: %v < %v",
				i, versions[i], versions[i-1])
		}
	}
}

func TestRegistrationSurvivesLoss(t *testing.T) {
	// Even at 60% loss the registration retry loop must eventually
	// propagate the object to the backup.
	c := newTestCluster(t, clusterOpts{
		seed: 8,
		link: netsim.LinkParams{Delay: ms(2), LossProb: 0.6},
	})
	d := c.primary.Register(spec("x", ms(40), ms(50), ms(200)))
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	c.clk.RunFor(2 * time.Second)
	if c.backup.Objects() != 1 {
		t.Fatalf("backup knows %d objects, want 1", c.backup.Objects())
	}
	specs := c.backup.Specs()
	if len(specs) != 1 || specs[0].Name != "x" || specs[0].Constraint.DeltaB != ms(200) {
		t.Fatalf("backup specs = %+v", specs)
	}
}

func TestRegistrationArrivingAfterStateFillsSpec(t *testing.T) {
	// If an update or state transfer outruns the registration (possible
	// under loss: the Register was dropped, the Update got through), the
	// backup creates a nameless placeholder. The retried registration
	// must later install the spec so Value-by-name works.
	c := newTestCluster(t, clusterOpts{seed: 61, link: netsim.LinkParams{Delay: ms(2)}})
	// Drop primary→backup traffic during registration only.
	c.net.Partition("primary", "backup")
	d := c.primary.Register(spec("x", ms(40), ms(50), ms(200)))
	if !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	c.primary.ClientWrite("x", []byte("v"), nil)
	c.clk.RunFor(ms(30))
	c.net.Heal("primary", "backup")
	// Updates flow immediately; registration retries land within ~100ms.
	c.clk.RunFor(500 * time.Millisecond)
	v, _, ok := c.backup.Value("x")
	if !ok || string(v) != "v" {
		t.Fatalf("backup Value by name = %q ok=%v after late registration", v, ok)
	}
	specs := c.backup.Specs()
	if len(specs) != 1 || specs[0].Name != "x" {
		t.Fatalf("backup specs = %+v", specs)
	}
}

func TestCompressedSchedulingSendsFasterThanNormal(t *testing.T) {
	count := func(mode SchedulingMode) int {
		c := newTestCluster(t, clusterOpts{
			seed: 9,
			link: netsim.LinkParams{Delay: ms(2)},
			mutateP: func(cfg *Config) {
				cfg.Scheduling = mode
			},
		})
		c.registerOK(t, spec("x", ms(40), ms(50), ms(400)))
		sends := 0
		c.primary.OnSend = func(uint32, string, uint64, time.Time) { sends++ }
		stop := c.writeEvery("x", ms(40), func(i int) []byte { return []byte{byte(i)} })
		defer stop.Stop()
		c.clk.RunFor(2 * time.Second)
		return sends
	}
	normal := count(ScheduleNormal)
	compressed := count(ScheduleCompressed)
	if compressed <= 4*normal {
		t.Fatalf("compressed sends %d not ≫ normal %d", compressed, normal)
	}
}

func TestCompressedSchedulingKeepsClientLatencyBounded(t *testing.T) {
	c := newTestCluster(t, clusterOpts{
		seed: 10,
		link: netsim.LinkParams{Delay: ms(2)},
		mutateP: func(cfg *Config) {
			cfg.Scheduling = ScheduleCompressed
		},
	})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(400)))
	var worst time.Duration
	c.primary.OnClientDone = func(_ string, lat time.Duration) {
		if lat > worst {
			worst = lat
		}
	}
	stop := c.writeEvery("x", ms(40), func(i int) []byte { return []byte{byte(i)} })
	defer stop.Stop()
	c.clk.RunFor(2 * time.Second)
	// A client write can wait behind at most one non-preemptive update
	// transmission plus its own cost.
	bound := DefaultCosts().sendCost(1) + DefaultCosts().clientCost(1) + ms(1)
	if worst > bound {
		t.Fatalf("worst client latency %v exceeds bound %v under compressed scheduling", worst, bound)
	}
}

func TestSetBackupAliveStopsTransmissions(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 11, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))
	sends := 0
	c.primary.OnSend = func(uint32, string, uint64, time.Time) { sends++ }
	stop := c.writeEvery("x", ms(40), func(i int) []byte { return []byte{byte(i)} })
	defer stop.Stop()
	c.clk.RunFor(500 * time.Millisecond)
	base := sends
	if base == 0 {
		t.Fatal("no sends during warmup")
	}
	c.primary.SetBackupAlive(false)
	c.clk.RunFor(500 * time.Millisecond)
	if sends != base {
		t.Fatalf("%d transmissions while backup declared dead", sends-base)
	}
	c.primary.SetBackupAlive(true) // triggers a state transfer + resumes
	c.clk.RunFor(500 * time.Millisecond)
	if sends == base {
		t.Fatal("transmissions did not resume after backup recruitment")
	}
}

func TestStateTransferSeedsBackup(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 12, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))
	c.registerOK(t, spec("y", ms(40), ms(50), ms(200)))
	c.primary.SetBackupAlive(false)
	c.primary.ClientWrite("x", []byte("vx"), nil)
	c.primary.ClientWrite("y", []byte("vy"), nil)
	c.clk.RunFor(ms(100))
	if _, _, ok := c.backup.Value("x"); ok {
		t.Fatal("backup received value while primary considered it dead")
	}
	acked := 0
	c.primary.OnStateTransferAck = func(_ uint32, objects int) { acked = objects }
	c.primary.SetBackupAlive(true)
	c.clk.RunFor(ms(100))
	for _, name := range []string{"x", "y"} {
		if _, _, ok := c.backup.Value(name); !ok {
			t.Fatalf("backup missing %q after state transfer", name)
		}
	}
	if acked != 2 {
		t.Fatalf("state transfer ack reported %d objects, want 2", acked)
	}
}

func TestBackupStateSnapshotForPromotion(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 13, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))
	c.primary.ClientWrite("x", []byte("last"), nil)
	c.clk.RunFor(500 * time.Millisecond)
	st := c.backup.State()
	if len(st) != 1 || string(st[0].Payload) != "last" {
		t.Fatalf("snapshot = %+v", st)
	}
}

func TestPingAckExchange(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 14, link: netsim.LinkParams{Delay: ms(2)}})
	var acks []uint64
	c.primary.OnPingAck = func(seq uint64) { acks = append(acks, seq) }
	seq := c.primary.SendPing()
	c.clk.RunFor(ms(20))
	if len(acks) != 1 || acks[0] != seq {
		t.Fatalf("acks = %v, want [%d]", acks, seq)
	}
	// And the reverse direction.
	var backAcks []uint64
	c.backup.OnPingAck = func(seq uint64) { backAcks = append(backAcks, seq) }
	bseq := c.backup.SendPing()
	c.clk.RunFor(ms(20))
	if len(backAcks) != 1 || backAcks[0] != bseq {
		t.Fatalf("backup acks = %v, want [%d]", backAcks, bseq)
	}
}

func TestStoppedPrimaryRejectsOperations(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 15, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, spec("x", ms(40), ms(50), ms(200)))
	c.primary.Stop()
	if d := c.primary.Register(spec("y", ms(40), ms(50), ms(200))); d.Accepted {
		t.Fatal("stopped primary accepted registration")
	}
	failed := false
	c.primary.ClientWrite("x", []byte("v"), func(_ time.Duration, err error) {
		failed = err != nil
	})
	c.clk.RunFor(ms(10))
	if !failed {
		t.Fatal("stopped primary accepted client write")
	}
	c.primary.Stop() // idempotent
}

func TestManyObjectsReplicateIndependently(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 16, link: netsim.LinkParams{Delay: ms(2), Jitter: ms(1)}})
	const n = 8
	for i := 0; i < n; i++ {
		c.registerOK(t, spec(fmt.Sprintf("obj%d", i), ms(40), ms(50), ms(250)))
	}
	var stops []interface{ Stop() }
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("obj%d", i)
		tag := byte(i)
		stops = append(stops, c.writeEvery(name, ms(40), func(k int) []byte {
			return []byte{tag, byte(k)}
		}))
	}
	c.clk.RunFor(2 * time.Second)
	for _, s := range stops {
		s.Stop()
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("obj%d", i)
		got, _, ok := c.backup.Value(name)
		if !ok {
			t.Fatalf("backup missing %q", name)
		}
		if got[0] != byte(i) {
			t.Fatalf("object %q holds payload of object %d", name, got[0])
		}
	}
}

func TestInterObjectConsistencyEndToEnd(t *testing.T) {
	c := newTestCluster(t, clusterOpts{seed: 17, link: netsim.LinkParams{Delay: ms(2)}})
	c.registerOK(t, spec("accel", ms(20), ms(40), ms(400)))
	c.registerOK(t, spec("lift", ms(20), ms(40), ms(400)))
	d, err := c.primary.RegisterInterObject(temporal.InterObjectConstraint{
		I: "accel", J: "lift", Delta: ms(60),
	})
	if err != nil || !d.Accepted {
		t.Fatalf("inter-object registration failed: %v %s", err, d.Reason)
	}

	mon := temporal.NewMonitor()
	cst := temporal.InterObjectConstraint{I: "accel", J: "lift", Delta: ms(60)}
	mon.TrackInterObject("backup", cst)
	c.backup.OnApply = func(_ uint32, name string, _ uint32, _ uint64, version, at time.Time) {
		mon.RecordUpdate("backup", name, version, at)
	}

	s1 := c.writeEvery("accel", ms(20), func(i int) []byte { return []byte{1, byte(i)} })
	s2 := c.writeEvery("lift", ms(20), func(i int) []byte { return []byte{2, byte(i)} })
	c.clk.RunFor(3 * time.Second)
	s1.Stop()
	s2.Stop()
	mon.FinishAt(c.clk.Now())

	r, ok := mon.InterObjectReport("backup", "accel", "lift")
	if !ok || r.Checks < 10 {
		t.Fatalf("inter-object report missing or thin: %+v ok=%v", r, ok)
	}
	if !r.Consistent() {
		t.Fatalf("inter-object consistency violated at backup: %+v", r)
	}
}
