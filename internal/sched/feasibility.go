package sched

import (
	"math"
	"sort"
	"time"
)

// RMUtilizationBound returns the Liu & Layland rate-monotonic utilization
// bound n(2^{1/n} - 1) for n tasks. For n <= 0 it returns 0. The bound
// converges to ln 2 ≈ 0.693 as n grows.
func RMUtilizationBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// FeasibleRM reports whether the task set passes the Liu & Layland
// sufficient utilization test for rate-monotonic scheduling:
// Σ e_i/p_i ≤ n(2^{1/n} - 1). A task set that fails this test may still be
// schedulable; use FeasibleRMExact for the exact (necessary and
// sufficient) test.
func FeasibleRM(ts TaskSet) bool {
	if len(ts) == 0 {
		return true
	}
	return ts.Utilization() <= RMUtilizationBound(len(ts))+1e-12
}

// FeasibleRMExact reports whether the task set is schedulable under
// preemptive rate-monotonic priorities, using response-time analysis
// (Joseph & Pandya): R_i = e_i + Σ_{j∈hp(i)} ceil(R_i/p_j)·e_j iterated to
// a fixed point, schedulable iff R_i ≤ D_i for every task. This is exact
// for synchronous release (offsets are ignored: the critical instant is
// simultaneous release).
func FeasibleRMExact(ts TaskSet) bool {
	if len(ts) <= 1 {
		return len(ts) == 0 || ts[0].WCET <= ts[0].Deadline()
	}
	sorted := ts.Clone()
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Period < sorted[j].Period })
	for i, t := range sorted {
		r := t.WCET
		for {
			interference := time.Duration(0)
			for j := 0; j < i; j++ {
				hp := sorted[j]
				n := int64(math.Ceil(float64(r) / float64(hp.Period)))
				interference += time.Duration(n) * hp.WCET
			}
			next := t.WCET + interference
			if next > t.Deadline() {
				return false
			}
			if next == r {
				break
			}
			r = next
		}
	}
	return true
}

// FeasibleEDF reports whether the task set is schedulable under preemptive
// earliest-deadline-first scheduling. For implicit deadlines this is the
// exact test U ≤ 1; for constrained deadlines it is the (sufficient)
// density test Σ e_i/min(D_i, p_i) ≤ 1.
func FeasibleEDF(ts TaskSet) bool {
	d := 0.0
	for _, t := range ts {
		den := t.Deadline()
		if t.Period < den {
			den = t.Period
		}
		if den <= 0 {
			return false
		}
		d += float64(t.WCET) / float64(den)
	}
	return d <= 1+1e-12
}

// SpecializeSr transforms the task set's periods into a harmonic set using
// Han & Lin's single-number specialization, the basis of the pinwheel
// scheduler S_r used by the paper's Theorem 3. Each period c_i is replaced
// by c'_i = b·2^⌊lg(c_i/b)⌋ ≤ c_i for the base b ∈ (c_min/2, c_min] that
// minimizes the resulting density Σ e_i/c'_i. The specialized set is
// harmonic (every period divides every longer one), so a rate-monotonic
// schedule of it is cyclic and each task's completions are exactly
// periodic in steady state: phase variance zero.
//
// It returns the specialized set and whether its density is ≤ 1 (i.e.
// whether S_r can schedule it, meeting every original distance constraint).
func SpecializeSr(ts TaskSet) (TaskSet, bool) {
	if len(ts) == 0 {
		return nil, true
	}
	cMin := ts[0].Period
	for _, t := range ts[1:] {
		if t.Period < cMin {
			cMin = t.Period
		}
	}
	// Candidate bases: every value c_i/2^k that lands in (c_min/2, c_min].
	// Density is a step function of b with breakpoints exactly there, and
	// bases b and b/2 yield identical specializations, so this candidate
	// set contains an optimum.
	candidates := []time.Duration{cMin}
	for _, t := range ts {
		b := t.Period
		for b > cMin {
			b /= 2
		}
		if b > cMin/2 && b > 0 {
			candidates = append(candidates, b)
		}
	}
	best := TaskSet(nil)
	bestDensity := math.Inf(1)
	for _, b := range candidates {
		spec := ts.Clone()
		density := 0.0
		ok := true
		for i := range spec {
			p := specializePeriod(spec[i].Period, b)
			if p < spec[i].WCET {
				ok = false
				break
			}
			spec[i].Period = p
			if spec[i].RelativeDeadline > p {
				spec[i].RelativeDeadline = p
			}
			density += float64(spec[i].WCET) / float64(p)
		}
		if ok && density < bestDensity {
			best = spec
			bestDensity = density
		}
	}
	if best == nil {
		return ts.Clone(), false
	}
	return best, bestDensity <= 1+1e-12
}

// SpecializeSa is the simpler member of Han & Lin's scheduler family: it
// specializes with the base fixed at the smallest distance, c'_i =
// c_min·2^⌊lg(c_i/c_min)⌋, without the base search S_r performs. The
// result is harmonic (so completions are exactly periodic, like S_r) but
// its density can be up to 2× worse than S_r's, which is why the paper's
// Theorem 3 condition is stated for S_r.
func SpecializeSa(ts TaskSet) (TaskSet, bool) {
	if len(ts) == 0 {
		return nil, true
	}
	cMin := ts[0].Period
	for _, t := range ts[1:] {
		if t.Period < cMin {
			cMin = t.Period
		}
	}
	spec := ts.Clone()
	density := 0.0
	for i := range spec {
		p := specializePeriod(spec[i].Period, cMin)
		if p < spec[i].WCET {
			return spec, false
		}
		spec[i].Period = p
		if spec[i].RelativeDeadline > p {
			spec[i].RelativeDeadline = p
		}
		density += float64(spec[i].WCET) / float64(p)
	}
	return spec, density <= 1+1e-12
}

// specializePeriod returns b·2^⌊lg(c/b)⌋, the largest power-of-two multiple
// of b that does not exceed c.
func specializePeriod(c, b time.Duration) time.Duration {
	if c < b {
		return c
	}
	p := b
	for p*2 <= c {
		p *= 2
	}
	return p
}

// FeasibleDCS reports whether the task set satisfies the sufficient
// condition of Han & Lin quoted by the paper's Theorem 3:
// Σ e_i/p_i ≤ n(2^{1/n} - 1) guarantees scheduler S_r can run each task at
// an exact period no larger than p_i, making every phase variance zero.
func FeasibleDCS(ts TaskSet) bool {
	if len(ts) == 0 {
		return true
	}
	return ts.Utilization() <= RMUtilizationBound(len(ts))+1e-12
}

// FeasibleDCSExact reports whether S_r specialization actually succeeds
// (density of the specialized set ≤ 1). FeasibleDCS implies
// FeasibleDCSExact but not conversely.
func FeasibleDCSExact(ts TaskSet) bool {
	_, ok := SpecializeSr(ts)
	return ok
}
