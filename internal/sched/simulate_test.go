package sched

import (
	"math/rand"
	"testing"
	"time"
)

func TestSimulateSingleTaskExactPeriods(t *testing.T) {
	ts := TaskSet{{Name: "a", Period: ms(10), WCET: ms(3)}}
	tr, err := Simulate(ts, PolicyRM, ms(100))
	if err != nil {
		t.Fatal(err)
	}
	invs := tr.Invocations[0]
	if len(invs) != 10 {
		t.Fatalf("completed %d invocations, want 10", len(invs))
	}
	for k, iv := range invs {
		if iv.Release != time.Duration(k)*ms(10) {
			t.Fatalf("invocation %d released at %v, want %v", k, iv.Release, time.Duration(k)*ms(10))
		}
		if iv.Finish != iv.Release+ms(3) {
			t.Fatalf("invocation %d finished at %v, want %v", k, iv.Finish, iv.Release+ms(3))
		}
		if iv.Missed {
			t.Fatalf("invocation %d marked missed", k)
		}
	}
	v, ok := tr.PhaseVariance(0, 0)
	if !ok || v != 0 {
		t.Fatalf("phase variance = %v ok=%v, want 0 true", v, ok)
	}
}

func TestSimulateRMPreemption(t *testing.T) {
	// Low-priority b is preempted by a's second release.
	ts := TaskSet{
		{Name: "a", Period: ms(10), WCET: ms(4)},
		{Name: "b", Period: ms(30), WCET: ms(10)},
	}
	tr, err := Simulate(ts, PolicyRM, ms(30))
	if err != nil {
		t.Fatal(err)
	}
	// b runs 4..10 (6ms done), preempted 10..14, resumes, finishes at 18.
	b := tr.Invocations[1]
	if len(b) != 1 {
		t.Fatalf("b completed %d times, want 1", len(b))
	}
	if b[0].Finish != ms(18) {
		t.Fatalf("b finished at %v, want 18ms", b[0].Finish)
	}
}

func TestSimulateEDFBeatsRMAtFullUtilization(t *testing.T) {
	// U = 1: EDF schedules it, RM misses deadlines.
	ts := TaskSet{
		{Name: "a", Period: ms(10), WCET: ms(5)},
		{Name: "b", Period: ms(14), WCET: ms(7)},
	}
	h, _ := ts.Hyperperiod(time.Second)
	edf, err := Simulate(ts, PolicyEDF, 2*h)
	if err != nil {
		t.Fatal(err)
	}
	if edf.Misses != 0 {
		t.Fatalf("EDF missed %d deadlines at U=1", edf.Misses)
	}
	rm, err := Simulate(ts, PolicyRM, 2*h)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Misses == 0 {
		t.Fatal("RM unexpectedly scheduled U=1 non-harmonic set")
	}
}

func TestSimulateOffsets(t *testing.T) {
	ts := TaskSet{{Name: "a", Period: ms(10), WCET: ms(1), Offset: ms(3)}}
	tr, err := Simulate(ts, PolicyRM, ms(25))
	if err != nil {
		t.Fatal(err)
	}
	invs := tr.Invocations[0]
	if len(invs) != 3 {
		t.Fatalf("completed %d invocations, want 3", len(invs))
	}
	for k, want := range []time.Duration{ms(3), ms(13), ms(23)} {
		if invs[k].Release != want {
			t.Fatalf("release %d at %v, want %v", k, invs[k].Release, want)
		}
	}
}

func TestSimulateRejectsInvalidInput(t *testing.T) {
	if _, err := Simulate(TaskSet{}, PolicyRM, ms(10)); err == nil {
		t.Fatal("Simulate accepted empty task set")
	}
	ts := TaskSet{{Name: "a", Period: ms(10), WCET: ms(1)}}
	if _, err := Simulate(ts, PolicyRM, 0); err == nil {
		t.Fatal("Simulate accepted zero horizon")
	}
}

func TestSimulateDCSSpecializesPeriods(t *testing.T) {
	ts := TaskSet{
		{Name: "a", Period: ms(10), WCET: ms(2)},
		{Name: "b", Period: ms(27), WCET: ms(4)},
	}
	tr, err := Simulate(ts, PolicyDCS, ms(200))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tasks[1].Period != ms(20) {
		t.Fatalf("DCS dispatched b with period %v, want specialized 20ms", tr.Tasks[1].Period)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyEDF.String() != "EDF" || PolicyRM.String() != "RM" || PolicyDCS.String() != "DCS" {
		t.Fatal("Policy String() mismatch")
	}
	if Policy(99).String() != "Policy(99)" {
		t.Fatalf("unknown policy String() = %q", Policy(99).String())
	}
}

func TestTheorem3ZeroPhaseVarianceUnderDCS(t *testing.T) {
	// Random task sets under the Theorem 3 bound must show exactly zero
	// phase variance under PolicyDCS (after the start-up transient).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		ts := randomTaskSet(rng, 2+rng.Intn(5), 0.6)
		if !ZeroPhaseVarianceAchievable(ts) {
			continue
		}
		tr, err := Simulate(ts, PolicyDCS, 2*time.Second)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.Misses != 0 {
			t.Fatalf("trial %d: DCS missed %d deadlines under the bound", trial, tr.Misses)
		}
		for i := range ts {
			v, ok := tr.PhaseVariance(i, 2)
			if !ok {
				t.Fatalf("trial %d task %d: too few completions", trial, i)
			}
			if v != 0 {
				t.Fatalf("trial %d task %d: phase variance %v under DCS, want 0 (periods %v)",
					trial, i, v, tr.Tasks)
			}
		}
	}
}

func TestTheorem2PhaseVarianceBoundEDF(t *testing.T) {
	// Measured phase variance under EDF stays within x·p_i − e_i.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		ts := randomTaskSet(rng, 2+rng.Intn(5), 0.95)
		u := ts.Utilization()
		if u > 1 {
			continue
		}
		tr, err := Simulate(ts, PolicyEDF, 2*time.Second)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, task := range ts {
			v, ok := tr.PhaseVariance(i, 0)
			if !ok {
				continue
			}
			bound := PhaseVarianceBoundEDF(task, u)
			if v > bound {
				t.Fatalf("trial %d task %d: measured v=%v exceeds EDF bound %v (u=%.3f, task %+v)",
					trial, i, v, bound, u, task)
			}
		}
	}
}

func TestTheorem2PhaseVarianceBoundRM(t *testing.T) {
	// Measured phase variance under RM stays within (x·p_i)/(n(2^{1/n}−1)) − e_i
	// when the set is under the Liu-Layland bound.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		ts := randomTaskSet(rng, n, RMUtilizationBound(n)*0.95)
		if !FeasibleRM(ts) {
			continue
		}
		u := ts.Utilization()
		tr, err := Simulate(ts, PolicyRM, 2*time.Second)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, task := range ts {
			v, ok := tr.PhaseVariance(i, 0)
			if !ok {
				continue
			}
			bound := PhaseVarianceBoundRM(task, u, len(ts))
			if v > bound {
				t.Fatalf("trial %d task %d: measured v=%v exceeds RM bound %v (u=%.3f)",
					trial, i, v, bound, u)
			}
		}
	}
}

func TestUniversalPhaseVarianceBoundHolds(t *testing.T) {
	// Inequality 2.1: v ≤ p − e in any feasible schedule.
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 60; trial++ {
		ts := randomTaskSet(rng, 2+rng.Intn(4), 0.99)
		if ts.Utilization() > 1 {
			continue
		}
		tr, err := Simulate(ts, PolicyEDF, time.Second)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tr.Misses > 0 {
			continue
		}
		for i, task := range ts {
			if v, ok := tr.PhaseVariance(i, 0); ok && v > UniversalPhaseVarianceBound(task) {
				t.Fatalf("trial %d task %d: v=%v exceeds p−e=%v", trial, i, v, UniversalPhaseVarianceBound(task))
			}
		}
	}
}
