package sched

import (
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestTaskDeadlineDefaultsToPeriod(t *testing.T) {
	task := Task{Period: ms(10), WCET: ms(2)}
	if task.Deadline() != ms(10) {
		t.Fatalf("Deadline() = %v, want %v", task.Deadline(), ms(10))
	}
	task.RelativeDeadline = ms(7)
	if task.Deadline() != ms(7) {
		t.Fatalf("Deadline() = %v, want %v", task.Deadline(), ms(7))
	}
}

func TestTaskUtilization(t *testing.T) {
	task := Task{Period: ms(10), WCET: ms(2)}
	if u := task.Utilization(); u != 0.2 {
		t.Fatalf("Utilization() = %v, want 0.2", u)
	}
}

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		name string
		task Task
		ok   bool
	}{
		{"valid", Task{Name: "a", Period: ms(10), WCET: ms(2)}, true},
		{"zero period", Task{Name: "a", WCET: ms(2)}, false},
		{"zero wcet", Task{Name: "a", Period: ms(10)}, false},
		{"wcet exceeds period", Task{Name: "a", Period: ms(2), WCET: ms(3)}, false},
		{"negative offset", Task{Name: "a", Period: ms(10), WCET: ms(2), Offset: -ms(1)}, false},
		{"wcet exceeds deadline", Task{Name: "a", Period: ms(10), WCET: ms(5), RelativeDeadline: ms(4)}, false},
		{"deadline ok", Task{Name: "a", Period: ms(10), WCET: ms(3), RelativeDeadline: ms(4)}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.task.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestTaskSetValidateEmpty(t *testing.T) {
	if err := (TaskSet{}).Validate(); err != ErrEmptyTaskSet {
		t.Fatalf("Validate(empty) = %v, want ErrEmptyTaskSet", err)
	}
}

func TestTaskSetUtilization(t *testing.T) {
	ts := TaskSet{
		{Name: "a", Period: ms(10), WCET: ms(2)},
		{Name: "b", Period: ms(20), WCET: ms(5)},
	}
	if u := ts.Utilization(); u != 0.45 {
		t.Fatalf("Utilization() = %v, want 0.45", u)
	}
}

func TestHyperperiod(t *testing.T) {
	ts := TaskSet{
		{Name: "a", Period: ms(4), WCET: ms(1)},
		{Name: "b", Period: ms(6), WCET: ms(1)},
	}
	h, ok := ts.Hyperperiod(time.Second)
	if !ok || h != ms(12) {
		t.Fatalf("Hyperperiod = %v ok=%v, want 12ms true", h, ok)
	}
}

func TestHyperperiodCapped(t *testing.T) {
	ts := TaskSet{
		{Name: "a", Period: 7919 * time.Millisecond, WCET: ms(1)},
		{Name: "b", Period: 7907 * time.Millisecond, WCET: ms(1)},
	}
	h, ok := ts.Hyperperiod(time.Second)
	if ok {
		t.Fatal("Hyperperiod reported exact fit for co-prime periods beyond cap")
	}
	if h != time.Second {
		t.Fatalf("capped Hyperperiod = %v, want 1s", h)
	}
}

func TestCloneIsDeep(t *testing.T) {
	ts := TaskSet{{Name: "a", Period: ms(10), WCET: ms(1)}}
	c := ts.Clone()
	c[0].Period = ms(99)
	if ts[0].Period != ms(10) {
		t.Fatal("Clone shares backing array with original")
	}
}
