package sched

import (
	"fmt"
	"time"
)

// Policy selects the scheduling algorithm used by Simulate and by the RTPB
// primary's update scheduler.
type Policy int

const (
	// PolicyEDF is preemptive earliest-deadline-first.
	PolicyEDF Policy = iota + 1
	// PolicyRM is preemptive rate-monotonic (smaller period = higher
	// priority).
	PolicyRM
	// PolicyDCS is distance-constrained scheduling via Han & Lin's
	// pinwheel scheduler S_r: periods are first specialized to a harmonic
	// set (SpecializeSr) and the result is scheduled rate-monotonically,
	// which yields exactly periodic completions (zero phase variance).
	PolicyDCS
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyEDF:
		return "EDF"
	case PolicyRM:
		return "RM"
	case PolicyDCS:
		return "DCS"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Invocation records one completed job of a task in a simulation trace.
type Invocation struct {
	// Index is k: this is the task's k-th invocation (0-based).
	Index int
	// Release is the job's release instant, relative to simulation start.
	Release time.Duration
	// Finish is the completion instant of the job.
	Finish time.Duration
	// Missed reports whether the job finished after its absolute deadline.
	Missed bool
}

// ResponseTime reports the job's response time.
func (iv Invocation) ResponseTime() time.Duration { return iv.Finish - iv.Release }

// Trace is the result of a scheduler simulation.
type Trace struct {
	// Tasks is the task set that was actually dispatched. Under PolicyDCS
	// this is the S_r-specialized set; otherwise it is the input set.
	Tasks TaskSet
	// Policy is the algorithm that produced the trace.
	Policy Policy
	// Invocations holds, per task, every job completed within the horizon.
	Invocations [][]Invocation
	// Misses is the total number of deadline misses.
	Misses int
}

type simJob struct {
	task      int
	index     int
	release   time.Duration
	deadline  time.Duration
	remaining time.Duration
}

// Simulate executes the task set on a preemptive uniprocessor under the
// given policy for the given horizon and returns the completion trace.
// Under PolicyDCS the set is specialized first; Simulate does not require
// the set to be schedulable — overruns simply show up as deadline misses,
// which is exactly what the phase-variance experiments need to observe.
func Simulate(ts TaskSet, policy Policy, horizon time.Duration) (*Trace, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("sched: non-positive horizon %v", horizon)
	}
	dispatch := ts.Clone()
	if policy == PolicyDCS {
		spec, ok := SpecializeSr(ts)
		if !ok {
			return nil, fmt.Errorf("sched: task set with utilization %.3f is not S_r-specializable", ts.Utilization())
		}
		dispatch = spec
	}

	tr := &Trace{
		Tasks:       dispatch,
		Policy:      policy,
		Invocations: make([][]Invocation, len(dispatch)),
	}

	nextRelease := make([]time.Duration, len(dispatch))
	nextIndex := make([]int, len(dispatch))
	for i, t := range dispatch {
		nextRelease[i] = t.Offset
	}
	var ready []*simJob

	higherPriority := func(a, b *simJob) bool {
		switch policy {
		case PolicyEDF:
			if a.deadline != b.deadline {
				return a.deadline < b.deadline
			}
			if a.release != b.release {
				return a.release < b.release
			}
		default: // RM and DCS dispatch rate-monotonically.
			pa, pb := dispatch[a.task].Period, dispatch[b.task].Period
			if pa != pb {
				return pa < pb
			}
		}
		return a.task < b.task
	}

	now := time.Duration(0)
	for now < horizon {
		// Release all jobs due at or before now.
		for i := range dispatch {
			for nextRelease[i] <= now {
				ready = append(ready, &simJob{
					task:      i,
					index:     nextIndex[i],
					release:   nextRelease[i],
					deadline:  nextRelease[i] + dispatch[i].Deadline(),
					remaining: dispatch[i].WCET,
				})
				nextIndex[i]++
				nextRelease[i] += dispatch[i].Period
			}
		}

		// Earliest future release bounds how long the chosen job may run
		// before a preemption decision.
		nextRel := horizon
		for i := range dispatch {
			if nextRelease[i] < nextRel {
				nextRel = nextRelease[i]
			}
		}

		// Pick the highest-priority ready job.
		var run *simJob
		runIdx := -1
		for i, j := range ready {
			if run == nil || higherPriority(j, run) {
				run, runIdx = j, i
			}
		}
		if run == nil {
			now = nextRel
			continue
		}

		end := now + run.remaining
		if nextRel < end {
			run.remaining -= nextRel - now
			now = nextRel
			continue
		}
		now = end
		missed := end > run.deadline
		if missed {
			tr.Misses++
		}
		tr.Invocations[run.task] = append(tr.Invocations[run.task], Invocation{
			Index:   run.index,
			Release: run.release,
			Finish:  end,
			Missed:  missed,
		})
		ready = append(ready[:runIdx], ready[runIdx+1:]...)
	}
	return tr, nil
}

// Finishes returns the completion instants of the given task's jobs.
func (tr *Trace) Finishes(task int) []time.Duration {
	invs := tr.Invocations[task]
	out := make([]time.Duration, len(invs))
	for i, iv := range invs {
		out[i] = iv.Finish
	}
	return out
}

// PhaseVariance reports the measured phase variance of the given task in
// the trace, against the period that was actually dispatched (the
// specialized period under PolicyDCS). The first skip gaps are ignored as
// start-up transient. The second result is false if the trace holds fewer
// than skip+2 completions.
func (tr *Trace) PhaseVariance(task, skip int) (time.Duration, bool) {
	return MeasuredPhaseVariance(tr.Finishes(task), tr.Tasks[task].Period, skip)
}
