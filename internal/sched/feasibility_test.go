package sched

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestRMUtilizationBound(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{1, 1.0},
		{2, 2 * (math.Sqrt2 - 1)},
		{0, 0},
		{-3, 0},
	}
	for _, tc := range cases {
		if got := RMUtilizationBound(tc.n); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("RMUtilizationBound(%d) = %v, want %v", tc.n, got, tc.want)
		}
	}
	// The bound decreases toward ln 2.
	prev := RMUtilizationBound(1)
	for n := 2; n <= 64; n++ {
		cur := RMUtilizationBound(n)
		if cur >= prev {
			t.Fatalf("bound not decreasing at n=%d: %v >= %v", n, cur, prev)
		}
		prev = cur
	}
	if prev < math.Ln2 {
		t.Fatalf("bound fell below ln 2: %v", prev)
	}
}

func TestFeasibleRMClassicExamples(t *testing.T) {
	// Liu & Layland's classic: two tasks at the bound for n=2.
	ts := TaskSet{
		{Name: "a", Period: ms(50), WCET: 20 * time.Millisecond},
		{Name: "b", Period: ms(100), WCET: 33 * time.Millisecond},
	}
	// U = 0.4 + 0.33 = 0.73 < 0.828.
	if !FeasibleRM(ts) {
		t.Fatal("FeasibleRM rejected set below the bound")
	}
	ts[1].WCET = 50 * time.Millisecond // U = 0.9 > bound
	if FeasibleRM(ts) {
		t.Fatal("FeasibleRM accepted set above the bound")
	}
	// ...but the exact test knows U=0.9 with these periods is schedulable:
	// response time of b = 50 + 2*20 = 90 <= 100.
	if !FeasibleRMExact(ts) {
		t.Fatal("FeasibleRMExact rejected a schedulable set")
	}
}

func TestFeasibleRMExactRejectsOverload(t *testing.T) {
	ts := TaskSet{
		{Name: "a", Period: ms(10), WCET: ms(6)},
		{Name: "b", Period: ms(20), WCET: ms(10)},
	}
	// U = 1.1: impossible on one processor.
	if FeasibleRMExact(ts) {
		t.Fatal("FeasibleRMExact accepted U > 1")
	}
}

func TestFeasibleRMExactSingleTask(t *testing.T) {
	if !FeasibleRMExact(TaskSet{{Name: "a", Period: ms(10), WCET: ms(10)}}) {
		t.Fatal("single task with e = p rejected")
	}
	if FeasibleRMExact(TaskSet{{Name: "a", Period: ms(10), WCET: ms(8), RelativeDeadline: ms(5)}}) {
		t.Fatal("single task with e > D accepted")
	}
}

func TestFeasibleEDF(t *testing.T) {
	ts := TaskSet{
		{Name: "a", Period: ms(10), WCET: ms(5)},
		{Name: "b", Period: ms(20), WCET: ms(10)},
	}
	if !FeasibleEDF(ts) {
		t.Fatal("FeasibleEDF rejected U = 1")
	}
	ts[0].WCET = ms(6)
	if FeasibleEDF(ts) {
		t.Fatal("FeasibleEDF accepted U = 1.1")
	}
}

func TestSpecializeSrHarmonic(t *testing.T) {
	ts := TaskSet{
		{Name: "a", Period: ms(10), WCET: ms(2)},
		{Name: "b", Period: ms(27), WCET: ms(4)},
		{Name: "c", Period: ms(90), WCET: ms(9)},
	}
	spec, ok := SpecializeSr(ts)
	if !ok {
		t.Fatalf("SpecializeSr failed for utilization %.3f", ts.Utilization())
	}
	// Specialized periods never exceed the originals (distance constraints
	// must still be met) and form a harmonic chain.
	for i := range ts {
		if spec[i].Period > ts[i].Period {
			t.Fatalf("task %d specialized period %v exceeds original %v", i, spec[i].Period, ts[i].Period)
		}
	}
	for i := range spec {
		for j := range spec {
			a, b := spec[i].Period, spec[j].Period
			if a > b {
				a, b = b, a
			}
			if b%a != 0 {
				t.Fatalf("specialized periods %v and %v are not harmonic", spec[i].Period, spec[j].Period)
			}
		}
	}
}

func TestSpecializeSrDensityWithinOneWhenUnderBound(t *testing.T) {
	// Theorem 3 / Han-Lin: utilization under n(2^{1/n}-1) guarantees S_r
	// succeeds. Check on many random sets.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		ts := randomTaskSet(rng, 2+rng.Intn(6), RMUtilizationBound(8)*0.95)
		if !FeasibleDCS(ts) {
			continue
		}
		if _, ok := SpecializeSr(ts); !ok {
			t.Fatalf("trial %d: S_r failed although utilization %.3f is under the bound: %+v",
				trial, ts.Utilization(), ts)
		}
	}
}

func TestSpecializeSaHarmonicAndNoBetterThanSr(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		ts := randomTaskSet(rng, 2+rng.Intn(6), 0.5)
		sa, okA := SpecializeSa(ts)
		sr, okR := SpecializeSr(ts)
		if okA && !okR {
			t.Fatalf("trial %d: Sa schedulable but Sr (which searches bases) is not", trial)
		}
		if !okA {
			continue
		}
		// Sa output is harmonic and never exceeds original periods.
		for i := range ts {
			if sa[i].Period > ts[i].Period {
				t.Fatalf("trial %d: Sa period %v exceeds original %v", trial, sa[i].Period, ts[i].Period)
			}
		}
		density := func(s TaskSet) float64 {
			d := 0.0
			for _, task := range s {
				d += float64(task.WCET) / float64(task.Period)
			}
			return d
		}
		if density(sr) > density(sa)+1e-9 {
			t.Fatalf("trial %d: Sr density %.4f worse than Sa %.4f", trial, density(sr), density(sa))
		}
	}
}

func TestSpecializeSaRejectsTooTightWCET(t *testing.T) {
	ts := TaskSet{
		{Name: "a", Period: ms(4), WCET: ms(1)},
		{Name: "b", Period: ms(7), WCET: ms(5)}, // specializes to 4ms < WCET
	}
	if _, ok := SpecializeSa(ts); ok {
		t.Fatal("Sa accepted a task whose WCET exceeds its specialized period")
	}
}

func TestFeasibleDCSExactIsWeakerThanSufficient(t *testing.T) {
	// A harmonic set with utilization above the Liu-Layland bound is still
	// specializable (density <= 1) even though FeasibleDCS says no.
	ts := TaskSet{
		{Name: "a", Period: ms(10), WCET: ms(5)},
		{Name: "b", Period: ms(20), WCET: ms(5)},
		{Name: "c", Period: ms(40), WCET: ms(10)},
	}
	if FeasibleDCS(ts) {
		t.Fatalf("utilization %.3f unexpectedly under the n-task bound", ts.Utilization())
	}
	if !FeasibleDCSExact(ts) {
		t.Fatal("harmonic set with density 1 rejected by exact S_r test")
	}
}

// randomTaskSet builds n tasks with total utilization at most maxUtil,
// periods drawn from a divisor-friendly menu so hyperperiods stay small.
func randomTaskSet(rng *rand.Rand, n int, maxUtil float64) TaskSet {
	periods := []time.Duration{ms(4), ms(5), ms(8), ms(10), ms(16), ms(20), ms(25), ms(40), ms(50)}
	ts := make(TaskSet, 0, n)
	remaining := maxUtil
	for i := 0; i < n; i++ {
		share := remaining / float64(n-i) * (0.5 + rng.Float64())
		if share > remaining {
			share = remaining
		}
		p := periods[rng.Intn(len(periods))]
		e := time.Duration(share * float64(p))
		e = e.Truncate(100 * time.Microsecond)
		if e < 100*time.Microsecond {
			e = 100 * time.Microsecond
		}
		if e > p {
			e = p
		}
		remaining -= float64(e) / float64(p)
		if remaining < 0 {
			remaining = 0
		}
		ts = append(ts, Task{Name: string(rune('a' + i)), Period: p, WCET: e})
	}
	return ts
}

func TestFeasibleRMExactAgreesWithSimulation(t *testing.T) {
	// Response-time analysis is exact for synchronous release, so its
	// verdict must match a hyperperiod-long simulation.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		ts := randomTaskSet(rng, 2+rng.Intn(4), 0.6+0.5*rng.Float64())
		if ts.Utilization() > 1 {
			continue // simulation cannot catch up; RTA trivially rejects
		}
		h, ok := ts.Hyperperiod(5 * time.Second)
		if !ok {
			continue
		}
		tr, err := Simulate(ts, PolicyRM, 2*h)
		if err != nil {
			t.Fatalf("trial %d: Simulate: %v", trial, err)
		}
		simOK := tr.Misses == 0
		rtaOK := FeasibleRMExact(ts)
		if simOK != rtaOK {
			t.Fatalf("trial %d: simulation misses=%d but FeasibleRMExact=%v for %+v",
				trial, tr.Misses, rtaOK, ts)
		}
	}
}
