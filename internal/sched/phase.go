package sched

import "time"

// This file implements the paper's central analytical device.
//
// Definition 1: the k-th phase variance of a periodic task is
// v_i^k = |(I_k - I_{k-1}) - p_i|, where I_k is the finish instant of the
// task's k-th invocation.
//
// Definition 2: the phase variance is v_i = max_k v_i^k.
//
// Inequality 2.1 bounds it by p_i - e_i for any feasible schedule;
// Theorem 2 tightens the bound under EDF and RM when the utilization x of
// the task set is known; Theorem 3 shows v_i = 0 is achievable under the
// pinwheel scheduler S_r when Σ e_i/p_i ≤ n(2^{1/n} - 1).

// KthPhaseVariance returns v^k = |(I_k - I_{k-1}) - p| for a pair of
// consecutive invocation finish times.
func KthPhaseVariance(prev, cur time.Duration, period time.Duration) time.Duration {
	v := cur - prev - period
	if v < 0 {
		v = -v
	}
	return v
}

// MeasuredPhaseVariance computes the phase variance of a task from the
// finish times of its consecutive invocations, per Definitions 1-2. The
// first skip gaps are excluded as start-up transient (the paper's S_r
// result allows "some iterations (could be 0)" before completions become
// exactly periodic). The boolean result is false when fewer than two
// finish times remain after skipping.
func MeasuredPhaseVariance(finishes []time.Duration, period time.Duration, skip int) (time.Duration, bool) {
	if skip < 0 {
		skip = 0
	}
	if len(finishes) < skip+2 {
		return 0, false
	}
	maxV := time.Duration(0)
	for k := skip + 1; k < len(finishes); k++ {
		if v := KthPhaseVariance(finishes[k-1], finishes[k], period); v > maxV {
			maxV = v
		}
	}
	return maxV, true
}

// UniversalPhaseVarianceBound returns the bound of Inequality 2.1:
// v_i ≤ p_i - e_i for any schedule in which every job meets its implicit
// deadline.
func UniversalPhaseVarianceBound(t Task) time.Duration {
	return t.Period - t.WCET
}

// PhaseVarianceBoundEDF returns the Theorem 2 bound under EDF,
// v_i ≤ x·p_i - e_i, where x is the utilization of the task set on the
// processor. Negative results are clamped to zero (a bound below zero
// means the task's jobs complete exactly periodically).
func PhaseVarianceBoundEDF(t Task, utilization float64) time.Duration {
	b := time.Duration(utilization*float64(t.Period)) - t.WCET
	if b < 0 {
		b = 0
	}
	return b
}

// PhaseVarianceBoundRM returns the Theorem 2 bound under rate-monotonic
// scheduling, v_i ≤ (x·p_i)/(n(2^{1/n} - 1)) - e_i, where x is the
// utilization and n the number of tasks on the processor.
func PhaseVarianceBoundRM(t Task, utilization float64, n int) time.Duration {
	bound := RMUtilizationBound(n)
	if bound <= 0 {
		return UniversalPhaseVarianceBound(t)
	}
	b := time.Duration(utilization/bound*float64(t.Period)) - t.WCET
	if b < 0 {
		b = 0
	}
	return b
}

// ZeroPhaseVarianceAchievable reports the Theorem 3 condition: scheduler
// S_r achieves v_i = 0 for every task if Σ e_i/p_i ≤ n(2^{1/n} - 1).
func ZeroPhaseVarianceAchievable(ts TaskSet) bool {
	return FeasibleDCS(ts)
}
