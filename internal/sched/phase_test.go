package sched

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKthPhaseVariance(t *testing.T) {
	cases := []struct {
		prev, cur, period, want time.Duration
	}{
		{0, ms(10), ms(10), 0},
		{0, ms(13), ms(10), ms(3)},
		{0, ms(7), ms(10), ms(3)},
		{ms(5), ms(25), ms(10), ms(10)},
	}
	for _, tc := range cases {
		if got := KthPhaseVariance(tc.prev, tc.cur, tc.period); got != tc.want {
			t.Fatalf("KthPhaseVariance(%v,%v,%v) = %v, want %v", tc.prev, tc.cur, tc.period, got, tc.want)
		}
	}
}

func TestKthPhaseVarianceSymmetry(t *testing.T) {
	// |(gap) − p| is symmetric around p: gaps p+d and p−d give equal v.
	f := func(p16, d16 uint16) bool {
		p := time.Duration(p16)*time.Millisecond + time.Millisecond
		d := time.Duration(d16) * time.Microsecond
		if d > p {
			d = p
		}
		early := KthPhaseVariance(0, p-d, p)
		late := KthPhaseVariance(0, p+d, p)
		return early == late && early == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeasuredPhaseVariance(t *testing.T) {
	finishes := []time.Duration{ms(3), ms(13), ms(24), ms(33), ms(46)}
	// gaps: 10, 11, 9, 13 → v^k: 0, 1, 1, 3
	v, ok := MeasuredPhaseVariance(finishes, ms(10), 0)
	if !ok || v != ms(3) {
		t.Fatalf("MeasuredPhaseVariance = %v ok=%v, want 3ms true", v, ok)
	}
	// Skipping the first two gaps drops the transient.
	v, ok = MeasuredPhaseVariance(finishes, ms(10), 2)
	if !ok || v != ms(3) {
		t.Fatalf("MeasuredPhaseVariance(skip=2) = %v ok=%v, want 3ms true", v, ok)
	}
	v, ok = MeasuredPhaseVariance(finishes, ms(10), 3)
	if !ok || v != ms(3) {
		t.Fatalf("MeasuredPhaseVariance(skip=3) = %v ok=%v, want 3ms true", v, ok)
	}
}

func TestMeasuredPhaseVarianceTooFewSamples(t *testing.T) {
	if _, ok := MeasuredPhaseVariance([]time.Duration{ms(1)}, ms(10), 0); ok {
		t.Fatal("ok=true with one sample")
	}
	if _, ok := MeasuredPhaseVariance([]time.Duration{ms(1), ms(11)}, ms(10), 1); ok {
		t.Fatal("ok=true when skip consumes all gaps")
	}
	if _, ok := MeasuredPhaseVariance(nil, ms(10), -1); ok {
		t.Fatal("ok=true on empty input")
	}
}

func TestMeasuredPhaseVarianceExactlyPeriodicIsZero(t *testing.T) {
	f := func(p16 uint16, n8 uint8) bool {
		p := time.Duration(p16)*time.Millisecond + time.Millisecond
		n := int(n8%20) + 2
		finishes := make([]time.Duration, n)
		for i := range finishes {
			finishes[i] = time.Duration(i) * p
		}
		v, ok := MeasuredPhaseVariance(finishes, p, 0)
		return ok && v == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhaseVarianceBoundsDegenerate(t *testing.T) {
	task := Task{Period: ms(10), WCET: ms(4)}
	if b := PhaseVarianceBoundEDF(task, 0.2); b != 0 {
		t.Fatalf("EDF bound clamped = %v, want 0 (x*p < e)", b)
	}
	if b := PhaseVarianceBoundRM(task, 0.0, 3); b != 0 {
		t.Fatalf("RM bound at zero utilization = %v, want 0", b)
	}
	if b := PhaseVarianceBoundRM(task, 0.5, 0); b != UniversalPhaseVarianceBound(task) {
		t.Fatalf("RM bound with n=0 = %v, want universal %v", b, UniversalPhaseVarianceBound(task))
	}
}

func TestPhaseVarianceBoundEDFMatchesUniversalAtFullUtilization(t *testing.T) {
	task := Task{Period: ms(20), WCET: ms(5)}
	if got, want := PhaseVarianceBoundEDF(task, 1.0), UniversalPhaseVarianceBound(task); got != want {
		t.Fatalf("EDF bound at x=1 is %v, want %v", got, want)
	}
}
