// Package sched is the real-time scheduling substrate of the RTPB
// reproduction. It implements the periodic task model, the schedulability
// tests the paper relies on (the Liu/Layland rate-monotonic bound, exact
// rate-monotonic response-time analysis, the EDF utilization test, and the
// distance-constrained/pinwheel specialization of Han & Lin), a preemptive
// uniprocessor scheduler simulator, and the measurement and analytic bounds
// of the paper's central quantity: the phase variance of a periodic task
// (Definitions 1-2, Theorems 2-3).
package sched

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Task is a periodic real-time task: invocation k is released at
// Offset + k*Period and needs WCET units of processor time before its
// deadline (Release + RelativeDeadline).
type Task struct {
	// Name identifies the task in traces and error messages.
	Name string
	// Period is the nominal separation p_i between releases.
	Period time.Duration
	// WCET is the worst-case execution time e_i.
	WCET time.Duration
	// Offset is the release time of the first invocation.
	Offset time.Duration
	// RelativeDeadline is the deadline relative to release; zero means
	// deadline equals period (the implicit-deadline model the paper uses).
	RelativeDeadline time.Duration
}

// Deadline reports the task's effective relative deadline.
func (t Task) Deadline() time.Duration {
	if t.RelativeDeadline > 0 {
		return t.RelativeDeadline
	}
	return t.Period
}

// Utilization reports e_i / p_i.
func (t Task) Utilization() float64 {
	if t.Period <= 0 {
		return math.Inf(1)
	}
	return float64(t.WCET) / float64(t.Period)
}

// Validate checks the task's parameters for internal consistency.
func (t Task) Validate() error {
	switch {
	case t.Period <= 0:
		return fmt.Errorf("task %q: period %v is not positive", t.Name, t.Period)
	case t.WCET <= 0:
		return fmt.Errorf("task %q: WCET %v is not positive", t.Name, t.WCET)
	case t.WCET > t.Period:
		return fmt.Errorf("task %q: WCET %v exceeds period %v", t.Name, t.WCET, t.Period)
	case t.Offset < 0:
		return fmt.Errorf("task %q: negative offset %v", t.Name, t.Offset)
	case t.RelativeDeadline < 0:
		return fmt.Errorf("task %q: negative deadline %v", t.Name, t.RelativeDeadline)
	case t.RelativeDeadline > 0 && t.WCET > t.RelativeDeadline:
		return fmt.Errorf("task %q: WCET %v exceeds deadline %v", t.Name, t.WCET, t.RelativeDeadline)
	}
	return nil
}

// TaskSet is a collection of periodic tasks sharing one processor.
type TaskSet []Task

// ErrEmptyTaskSet is returned by operations that need at least one task.
var ErrEmptyTaskSet = errors.New("sched: empty task set")

// Validate checks every task in the set.
func (ts TaskSet) Validate() error {
	if len(ts) == 0 {
		return ErrEmptyTaskSet
	}
	for _, t := range ts {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Utilization reports the total processor utilization Σ e_i/p_i.
func (ts TaskSet) Utilization() float64 {
	u := 0.0
	for _, t := range ts {
		u += t.Utilization()
	}
	return u
}

// Clone returns a deep copy of the task set.
func (ts TaskSet) Clone() TaskSet {
	out := make(TaskSet, len(ts))
	copy(out, ts)
	return out
}

// Hyperperiod returns the least common multiple of the task periods,
// capped at cap to avoid astronomically long simulation horizons for
// co-prime periods. It reports whether the true LCM fit within cap.
func (ts TaskSet) Hyperperiod(cap time.Duration) (time.Duration, bool) {
	if len(ts) == 0 {
		return 0, false
	}
	l := int64(ts[0].Period)
	for _, t := range ts[1:] {
		l = lcm(l, int64(t.Period))
		if l <= 0 || time.Duration(l) > cap {
			return cap, false
		}
	}
	return time.Duration(l), true
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd(a, b) * b
}
