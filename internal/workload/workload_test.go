package workload

import (
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
	"rtpb/internal/xkernel"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func testPrimary(t *testing.T) (*clock.SimClock, *core.Primary) {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, 1)
	ep, err := net.Endpoint("primary")
	if err != nil {
		t.Fatal(err)
	}
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(ep)},
	})
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := g.Protocol("uport")
	p, err := core.NewPrimary(core.Config{
		Clock: clk,
		Port:  pp.(*xkernel.PortProtocol),
		Ell:   ms(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	return clk, p
}

func TestClientWritesPeriodically(t *testing.T) {
	clk, p := testPrimary(t)
	if d := p.Register(core.ObjectSpec{
		Name: "x", Size: 16, UpdatePeriod: ms(40),
		Constraint: temporal.ExternalConstraint{DeltaP: ms(50), DeltaB: ms(200)},
	}); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	c := NewClient(clk, p, "x", 0, ms(40), 16)
	clk.RunFor(time.Second)
	c.Stop()
	clk.RunFor(ms(50))
	// Writes at 0,40,...,1000 → 26 writes.
	if c.Writes() != 26 {
		t.Fatalf("writes = %d, want 26", c.Writes())
	}
	if c.Responses().Count() != 26 {
		t.Fatalf("responses = %d, want 26", c.Responses().Count())
	}
	if c.Errors() != 0 {
		t.Fatalf("errors = %d", c.Errors())
	}
	if c.Responses().Mean() <= 0 {
		t.Fatal("mean response not positive")
	}
}

func TestClientCountsErrorsForUnknownObject(t *testing.T) {
	clk, p := testPrimary(t)
	c := NewClient(clk, p, "ghost", 0, ms(40), 16)
	clk.RunFor(ms(200))
	c.Stop()
	if c.Errors() == 0 {
		t.Fatal("no errors recorded for unregistered object")
	}
	if c.Responses().Count() != 0 {
		t.Fatal("failed writes produced response samples")
	}
}

func TestClientMinimumPayloadSize(t *testing.T) {
	clk, p := testPrimary(t)
	if d := p.Register(core.ObjectSpec{
		Name: "x", Size: 4, UpdatePeriod: ms(40),
		Constraint: temporal.ExternalConstraint{DeltaP: ms(50), DeltaB: ms(200)},
	}); !d.Accepted {
		t.Fatalf("rejected: %s", d.Reason)
	}
	// A size below the 8-byte counter stamp is padded up, not a panic.
	c := NewClient(clk, p, "x", 0, ms(40), 2)
	clk.RunFor(ms(100))
	c.Stop()
	v, _, ok := p.Value("x")
	if !ok || len(v) != 8 {
		t.Fatalf("value = %v (len %d), want 8-byte payload", v, len(v))
	}
}

func TestSpecsGenerator(t *testing.T) {
	specs := Specs(SpecParams{
		N:            5,
		Size:         64,
		ClientPeriod: ms(25),
		DeltaP:       ms(30),
		Window:       ms(60),
	})
	if len(specs) != 5 {
		t.Fatalf("len = %d", len(specs))
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Fatalf("duplicate name %q", s.Name)
		}
		names[s.Name] = true
		if s.Constraint.DeltaP != ms(30) || s.Constraint.DeltaB != ms(90) {
			t.Fatalf("constraint = %+v", s.Constraint)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("generated invalid spec: %v", err)
		}
	}
}
