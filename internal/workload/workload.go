// Package workload provides the synthetic clients and object-set
// generators used by the evaluation harness. The paper's client is a
// sensing application co-located with the primary that "continuously
// senses the environment and periodically sends updates"; Client
// reproduces it as a periodic writer with a configurable period and
// object size, recording per-write response times.
package workload

import (
	"encoding/binary"
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/temporal"
	"rtpb/internal/trace"
)

// Client periodically writes one object on a primary and records response
// times.
type Client struct {
	task   *clock.Periodic
	stats  trace.DurationStats
	writes int
	errs   int
}

// NewClient starts a periodic writer: every period it writes a size-byte
// payload (stamped with the write counter) to the named object.
func NewClient(clk clock.Clock, p *core.Primary, object string, offset, period time.Duration, size int) *Client {
	c := &Client{}
	if size < 8 {
		size = 8
	}
	payload := make([]byte, size)
	c.task = clock.NewPeriodic(clk, offset, period, func() {
		c.writes++
		binary.BigEndian.PutUint64(payload, uint64(c.writes))
		p.ClientWrite(object, payload, func(lat time.Duration, err error) {
			if err != nil {
				c.errs++
				return
			}
			c.stats.Add(lat)
		})
	})
	return c
}

// Stop halts the writer.
func (c *Client) Stop() { c.task.Stop() }

// Responses exposes the recorded response-time distribution.
func (c *Client) Responses() *trace.DurationStats { return &c.stats }

// Writes reports the number of writes issued.
func (c *Client) Writes() int { return c.writes }

// Errors reports the number of failed writes.
func (c *Client) Errors() int { return c.errs }

// SpecParams parameterizes a generated object set.
type SpecParams struct {
	// N is the number of objects.
	N int
	// Size is each object's size in bytes.
	Size int
	// ClientPeriod is each client's declared write period p_i.
	ClientPeriod time.Duration
	// DeltaP is δ_i^P for every object.
	DeltaP time.Duration
	// Window is δ_i = δ_i^B − δ_i^P, the primary-backup consistency
	// window the evaluation section sweeps.
	Window time.Duration
}

// Specs generates a homogeneous object set: obj0..objN-1 with identical
// size, client period, and constraints — the shape of the paper's
// experiments, which sweep the number of objects for a given window size.
func Specs(p SpecParams) []core.ObjectSpec {
	out := make([]core.ObjectSpec, p.N)
	for i := range out {
		out[i] = core.ObjectSpec{
			Name:         fmt.Sprintf("obj%03d", i),
			Size:         p.Size,
			UpdatePeriod: p.ClientPeriod,
			Constraint: temporal.ExternalConstraint{
				DeltaP: p.DeltaP,
				DeltaB: p.DeltaP + p.Window,
			},
		}
	}
	return out
}
