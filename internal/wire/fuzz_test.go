package wire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzWireRoundTrip throws arbitrary datagrams at Decode. The contract
// under test: Decode never panics on malformed input, and for any input
// it accepts, the wire format is canonical — re-encoding the decoded
// message reproduces the input byte-for-byte, and decoding the
// re-encoding yields the same kind. The seed corpus covers the messages
// the protocol exchanges steady-state (update, heartbeat,
// retransmission request) plus the control-plane messages, so the fuzzer
// starts from every body layout.
func FuzzWireRoundTrip(f *testing.F) {
	seeds := []Message{
		&Update{Epoch: 2, ObjectID: 7, Seq: 41, Version: time.Unix(1, 500).UnixNano(),
			AckRequested: true, Payload: []byte("pressure=17.3")},
		&Update{ObjectID: 1, Seq: 1, Payload: nil},
		&Ping{Seq: 9, From: RoleBackup},
		&PingAck{Seq: 9, From: RolePrimary},
		&RetransmitRequest{ObjectID: 7, LastSeq: 40},
		&Register{Epoch: 1, ObjectID: 3, Name: "altitude", Size: 64,
			Period: 40 * time.Millisecond, DeltaP: 50 * time.Millisecond, DeltaB: 250 * time.Millisecond},
		&RegisterReply{ObjectID: 3, Accepted: false, Reason: "utilization bound",
			SuggestedDeltaB: 400 * time.Millisecond},
		&Takeover{NewPrimary: "backup:7000", Epoch: 2},
		&StateTransfer{Epoch: 2, Entries: []StateEntry{
			{ObjectID: 1, Seq: 12, Version: 99, Payload: []byte{0xde, 0xad}},
			{ObjectID: 2, Seq: 3, Version: 100, Payload: nil},
		}},
		&StateTransferAck{Epoch: 2, Objects: 2},
		&Order{Seq: 5, ObjectID: 1, Version: 77, Payload: []byte("x")},
		&OrderAck{Seq: 5},
		&UpdateAck{ObjectID: 7, Seq: 41},
		&ModeChange{Epoch: 2, ObjectID: 7, Mode: 3, Seq: 5, EffectiveBound: 250 * time.Millisecond},
		&JoinRequest{Epoch: 3, Addr: "standby:7000"},
		&JoinAccept{Epoch: 3, Specs: []SpecEntry{
			{ObjectID: 1, Name: "pressure", Size: 64, Period: 20 * time.Millisecond,
				DeltaP: 25 * time.Millisecond, DeltaB: 200 * time.Millisecond},
		}},
		&StateDigest{Epoch: 3, Entries: []DigestEntry{
			{ObjectID: 1, Epoch: 2, Seq: 40, Version: 99},
		}},
		&StateChunk{Epoch: 3, Xfer: 1, Chunk: 2, Final: true, Entries: []StateEntry{
			{ObjectID: 1, Seq: 41, Version: 100, Name: "pressure", Size: 64,
				Period: 20 * time.Millisecond, Payload: []byte("17.3")},
		}},
		&StateChunkAck{Epoch: 3, Xfer: 1, Chunk: 2, Applied: 1},
		&Unregister{Epoch: 3, ObjectID: 7},
	}
	for _, m := range seeds {
		f.Add(Encode(m))
	}
	// Malformed seeds: truncations, bad magic, bad version, unknown kind,
	// an oversize length prefix, trailing garbage.
	f.Add([]byte{})
	f.Add([]byte{0x52, 0xb0})
	f.Add([]byte{0x52, 0xb0, 1})
	f.Add([]byte{0x00, 0x00, 1, 3, 0, 0, 0, 0})
	f.Add([]byte{0x52, 0xb0, 9, 3})
	f.Add([]byte{0x52, 0xb0, 1, 0xee})
	f.Add([]byte{0x52, 0xb0, 1, 5, 0, 0, 0, 0, 0, 0, 0, 1, 2, 0xff})
	f.Add(append(Encode(&OrderAck{Seq: 1}), 0))
	f.Add([]byte{0x52, 0xb0, 1, 3, 0, 0, 0, 1, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // malformed input is allowed, panicking on it is not
		}
		reencoded := Encode(m)
		if !bytes.Equal(reencoded, data) {
			t.Fatalf("decode/encode of kind %v is not canonical:\n in:  %x\n out: %x",
				m.WireKind(), data, reencoded)
		}
		again, err := Decode(reencoded)
		if err != nil {
			t.Fatalf("re-decoding kind %v failed: %v", m.WireKind(), err)
		}
		if again.WireKind() != m.WireKind() {
			t.Fatalf("kind changed across round-trip: %v != %v", again.WireKind(), m.WireKind())
		}
	})
}
