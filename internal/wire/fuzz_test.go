package wire

import (
	"bytes"
	"testing"
	"time"
)

// FuzzWireRoundTrip throws arbitrary datagrams at Decode. The contract
// under test: Decode never panics on malformed input, and for any input
// it accepts, the wire format is canonical — re-encoding the decoded
// message reproduces the input byte-for-byte, and decoding the
// re-encoding yields the same kind. The seed corpus covers the messages
// the protocol exchanges steady-state (update, heartbeat,
// retransmission request) plus the control-plane messages, so the fuzzer
// starts from every body layout.
func FuzzWireRoundTrip(f *testing.F) {
	seeds := []Message{
		&Update{Epoch: 2, ObjectID: 7, Seq: 41, Version: time.Unix(1, 500).UnixNano(),
			AckRequested: true, Payload: []byte("pressure=17.3")},
		&Update{ObjectID: 1, Seq: 1, Payload: nil},
		&Ping{Seq: 9, From: RoleBackup},
		&PingAck{Seq: 9, From: RolePrimary},
		&RetransmitRequest{ObjectID: 7, LastSeq: 40},
		&Register{Epoch: 1, ObjectID: 3, Name: "altitude", Size: 64,
			Period: 40 * time.Millisecond, DeltaP: 50 * time.Millisecond, DeltaB: 250 * time.Millisecond},
		&RegisterReply{ObjectID: 3, Accepted: false, Reason: "utilization bound",
			SuggestedDeltaB: 400 * time.Millisecond},
		&Takeover{NewPrimary: "backup:7000", Epoch: 2},
		&StateTransfer{Epoch: 2, Entries: []StateEntry{
			{ObjectID: 1, Seq: 12, Version: 99, Payload: []byte{0xde, 0xad}},
			{ObjectID: 2, Seq: 3, Version: 100, Payload: nil},
		}},
		&StateTransferAck{Epoch: 2, Objects: 2},
		&Order{Seq: 5, ObjectID: 1, Version: 77, Payload: []byte("x")},
		&OrderAck{Seq: 5},
		&UpdateAck{ObjectID: 7, Seq: 41},
		&ModeChange{Epoch: 2, ObjectID: 7, Mode: 3, Seq: 5, EffectiveBound: 250 * time.Millisecond},
		&JoinRequest{Epoch: 3, Addr: "standby:7000"},
		&JoinRequest{Epoch: 3, Addr: "observer:7000", Observer: true},
		&ChainStatus{Epoch: 3, Depth: 2, Theta: 3 * time.Millisecond},
		&JoinAccept{Epoch: 3, Specs: []SpecEntry{
			{ObjectID: 1, Name: "pressure", Size: 64, Period: 20 * time.Millisecond,
				DeltaP: 25 * time.Millisecond, DeltaB: 200 * time.Millisecond},
		}},
		&StateDigest{Epoch: 3, Entries: []DigestEntry{
			{ObjectID: 1, Epoch: 2, Seq: 40, Version: 99},
		}},
		&StateChunk{Epoch: 3, Xfer: 1, Chunk: 2, Final: true, Entries: []StateEntry{
			{ObjectID: 1, Seq: 41, Version: 100, Name: "pressure", Size: 64,
				Period: 20 * time.Millisecond, Payload: []byte("17.3")},
		}},
		&StateChunkAck{Epoch: 3, Xfer: 1, Chunk: 2, Applied: 1},
		&Unregister{Epoch: 3, ObjectID: 7},
		&TimeSync{Seq: 9, From: RoleBackup, Originate: 946_684_800_123_000_000},
		&TimeSync{Seq: 9, From: RolePrimary, Originate: 946_684_800_123_000_000,
			Receive: 946_684_800_125_000_000, Transmit: 946_684_800_125_500_000},
		&Frame{Messages: []Message{
			&Update{Epoch: 2, ObjectID: 7, Seq: 41, Version: 99, Payload: []byte("batched")},
			&Update{Epoch: 2, ObjectID: 8, Seq: 12, Version: 100, Payload: []byte{}},
			&Ping{Seq: 3, From: RolePrimary},
		}},
		&Frame{},
	}
	for _, m := range seeds {
		f.Add(Encode(m))
	}
	// Malformed seeds: truncations, bad magic, bad version, unknown kind,
	// an oversize length prefix, trailing garbage.
	f.Add([]byte{})
	f.Add([]byte{0x52, 0xb0})
	f.Add([]byte{0x52, 0xb0, 1})
	f.Add([]byte{0x00, 0x00, 1, 3, 0, 0, 0, 0})
	f.Add([]byte{0x52, 0xb0, 9, 3})
	f.Add([]byte{0x52, 0xb0, 1, 0xee})
	f.Add([]byte{0x52, 0xb0, 1, 5, 0, 0, 0, 0, 0, 0, 0, 1, 2, 0xff})
	f.Add(append(Encode(&OrderAck{Seq: 1}), 0))
	f.Add([]byte{0x52, 0xb0, 1, 3, 0, 0, 0, 1, 0, 0, 0, 1,
		0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // malformed input is allowed, panicking on it is not
		}
		reencoded := Encode(m)
		if !bytes.Equal(reencoded, data) {
			t.Fatalf("decode/encode of kind %v is not canonical:\n in:  %x\n out: %x",
				m.WireKind(), data, reencoded)
		}
		again, err := Decode(reencoded)
		if err != nil {
			t.Fatalf("re-decoding kind %v failed: %v", m.WireKind(), err)
		}
		if again.WireKind() != m.WireKind() {
			t.Fatalf("kind changed across round-trip: %v != %v", again.WireKind(), m.WireKind())
		}
	})
}

// FuzzDecodeFrame targets the batched receive path. The contract: for
// arbitrary input DecodeFrame never panics; when it accepts, the batch it
// returns re-frames to a decodable equivalent (same count, byte-identical
// per-message encodings) and never contains a frame — nesting is a decode
// error, which is what bounds decode depth at two. The checked-in corpus
// (testdata/fuzz/FuzzDecodeFrame) seeds truncated length prefixes,
// zero-length frames, trailing garbage, and a nested frame alongside
// well-formed batches.
func FuzzDecodeFrame(f *testing.F) {
	upd := Encode(&Update{Epoch: 2, ObjectID: 7, Seq: 41, Version: 99, Payload: []byte("pressure=17.3")})
	ping := Encode(&Ping{Seq: 9, From: RoleBackup})

	// Well-formed batches: empty, single, mixed-kind.
	f.Add(AppendFrame(nil))
	f.Add(AppendFrame(nil, &Update{ObjectID: 1, Seq: 1, Payload: []byte("x")}))
	f.Add(AppendFrame(nil,
		&Update{Epoch: 1, ObjectID: 3, Seq: 2, Version: 5, Payload: []byte("abc")},
		&Ping{Seq: 1, From: RolePrimary},
		&UpdateAck{ObjectID: 3, Seq: 2}))
	// A bare (unframed) message: DecodeFrame's compatibility path.
	f.Add(upd)

	// Malformed: truncated count, truncated length prefix, length past
	// the end, zero-length sub-message, trailing garbage, nested frame,
	// count overshooting the messages present, 0xFFFFFFFF length.
	hdr := []byte{0x52, 0xb0, Version, uint8(KindFrame)}
	f.Add(hdr)
	f.Add(append(append([]byte{}, hdr...), 0))
	f.Add(append(append([]byte{}, hdr...), 0, 1, 0, 0))
	f.Add(append(append([]byte{}, hdr...), 0, 1, 0, 0, 0, 200, 1, 2, 3))
	f.Add(append(append([]byte{}, hdr...), 0, 1, 0, 0, 0, 0))
	f.Add(append(AppendFrame(nil, &Ping{Seq: 1}), 0xee))
	f.Add(AppendFrame(nil, &Frame{Messages: []Message{&Ping{Seq: 1}}}))
	f.Add(append(append([]byte{}, hdr...), 0, 2,
		0, 0, 0, byte(len(ping)))) // count says 2, bytes hold part of 1
	f.Add(append(append([]byte{}, hdr...), 0, 1, 0xff, 0xff, 0xff, 0xff))

	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, err := DecodeFrame(data)
		if err != nil {
			return // malformed input is allowed, panicking on it is not
		}
		for _, m := range msgs {
			if m.WireKind() == KindFrame {
				t.Fatal("DecodeFrame returned a nested frame")
			}
		}
		reframed := AppendFrame(nil, msgs...)
		again, err := DecodeFrame(reframed)
		if err != nil {
			t.Fatalf("re-framing %d accepted messages failed to decode: %v", len(msgs), err)
		}
		if len(again) != len(msgs) {
			t.Fatalf("message count changed across re-frame: %d != %d", len(again), len(msgs))
		}
		for i := range msgs {
			if !bytes.Equal(Encode(again[i]), Encode(msgs[i])) {
				t.Fatalf("message %d not preserved across re-frame", i)
			}
		}
	})
}
