package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire-format vectors")

// goldenVectors are the frozen wire encodings. Every release of the
// protocol must reproduce these files byte-for-byte: a diff here is a
// wire-compatibility break and must ship as a Version bump, never
// silently. Regenerate deliberately with
//
//	go test ./internal/wire -run TestGoldenVectors -update
func goldenVectors() []struct {
	name string
	msg  Message
} {
	return []struct {
		name string
		msg  Message
	}{
		{"update", &Update{Epoch: 2, ObjectID: 7, Seq: 41,
			Version: time.Date(2026, 1, 2, 3, 4, 5, 600, time.UTC).UnixNano(),
			Payload: []byte("pressure=17.3")}},
		{"update_ack_requested", &Update{Epoch: 3, ObjectID: 9, Seq: 1,
			Version: 1_700_000_000_000_000_000, AckRequested: true,
			Payload: []byte{0xde, 0xad, 0xbe, 0xef}}},
		{"update_empty_payload", &Update{Epoch: 1, ObjectID: 1, Seq: 1, Version: -5}},
		{"ping", &Ping{Seq: 9, From: RoleBackup}},
		{"register", &Register{Epoch: 1, ObjectID: 3, Name: "altitude", Size: 64,
			Period: 40 * time.Millisecond, DeltaP: 50 * time.Millisecond,
			DeltaB: 250 * time.Millisecond}},
		{"retransmit_request", &RetransmitRequest{ObjectID: 7, LastSeq: 40}},
		{"state_transfer", &StateTransfer{Epoch: 2, Entries: []StateEntry{
			{ObjectID: 1, Seq: 12, Version: 99, Payload: []byte{0xde, 0xad}},
			{ObjectID: 2, Seq: 3, Version: 100, Payload: nil},
		}}},
		{"frame_empty", &Frame{}},
		{"frame_single", &Frame{Messages: []Message{
			&Update{Epoch: 2, ObjectID: 7, Seq: 41, Version: 99, Payload: []byte("one")},
		}}},
		{"time_sync_request", &TimeSync{Seq: 9, From: RoleBackup,
			Originate: 946_684_800_123_000_000}},
		{"time_sync_reply", &TimeSync{Seq: 9, From: RolePrimary,
			Originate: 946_684_800_123_000_000,
			Receive:   946_684_800_125_000_000,
			Transmit:  946_684_800_125_500_000}},
		{"frame_multi", &Frame{Messages: []Message{
			&Update{Epoch: 2, ObjectID: 7, Seq: 41, Version: 99, Payload: []byte("batched")},
			&Update{Epoch: 2, ObjectID: 8, Seq: 12, Version: 100, Payload: []byte{}},
			&Ping{Seq: 3, From: RolePrimary},
			&UpdateAck{ObjectID: 7, Seq: 41},
		}}},
	}
}

func TestGoldenVectors(t *testing.T) {
	for _, tc := range goldenVectors() {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", tc.name+".bin")
			enc := Encode(tc.msg)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, enc, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden vector (run with -update to create): %v", err)
			}
			if !bytes.Equal(enc, want) {
				t.Fatalf("wire format changed for %s:\n got:  %x\n want: %x\n"+
					"this is a wire-compatibility break; if intended, bump Version and regenerate with -update",
					tc.name, enc, want)
			}
			// The frozen bytes must also decode and re-encode to themselves
			// (canonical decoding over cross-version input).
			m, err := Decode(want)
			if err != nil {
				t.Fatalf("golden vector no longer decodes: %v", err)
			}
			if re := Encode(m); !bytes.Equal(re, want) {
				t.Fatalf("golden vector not canonical after decode:\n got:  %x\n want: %x", re, want)
			}
		})
	}
}

// TestGoldenVectorsComplete fails when a vector file exists on disk that
// the table above no longer generates — deleting a message kind is as
// much a compatibility break as changing one.
func TestGoldenVectorsComplete(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Skipf("no golden directory yet: %v", err)
	}
	known := map[string]bool{}
	for _, tc := range goldenVectors() {
		known[tc.name+".bin"] = true
	}
	for _, e := range entries {
		if !known[e.Name()] {
			t.Errorf("golden vector %s has no generating entry in goldenVectors()", e.Name())
		}
	}
}
