package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	in := &Frame{Messages: []Message{
		&Update{Epoch: 1, ObjectID: 3, Seq: 9, Version: 123, Payload: []byte("a")},
		&Ping{Seq: 4, From: RolePrimary},
		&Update{Epoch: 1, ObjectID: 5, Seq: 2, Version: 456, Payload: nil},
	}}
	out := roundTrip(t, in).(*Frame)
	if len(out.Messages) != 3 {
		t.Fatalf("decoded %d messages, want 3", len(out.Messages))
	}
	for i, sub := range in.Messages {
		// Compare canonical encodings: decode may yield an empty payload
		// where the input held nil, which is the same wire message.
		if !bytes.Equal(Encode(sub), Encode(out.Messages[i])) {
			t.Fatalf("message %d mismatch:\n in=%+v\nout=%+v", i, sub, out.Messages[i])
		}
	}
}

func TestFrameRoundTripEmpty(t *testing.T) {
	out := roundTrip(t, &Frame{}).(*Frame)
	if len(out.Messages) != 0 {
		t.Fatalf("decoded %d messages, want 0", len(out.Messages))
	}
}

func TestFrameEncodingIsCanonical(t *testing.T) {
	enc := AppendFrame(nil,
		&Update{ObjectID: 1, Seq: 1, Version: 1, Payload: []byte("x")},
		&UpdateAck{ObjectID: 1, Seq: 1},
	)
	m, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(Encode(m), enc) {
		t.Fatalf("frame re-encoding differs:\n in:  %x\n out: %x", enc, Encode(m))
	}
}

func TestDecodeFrameBareMessage(t *testing.T) {
	// A non-frame datagram decodes as a one-message batch, so receive
	// loops handle framed and legacy unframed traffic identically.
	enc := Encode(&Update{ObjectID: 7, Seq: 1, Version: 1, Payload: []byte("v")})
	msgs, err := DecodeFrame(enc)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(msgs) != 1 {
		t.Fatalf("got %d messages, want 1", len(msgs))
	}
	if u, ok := msgs[0].(*Update); !ok || u.ObjectID != 7 {
		t.Fatalf("decoded %+v, want the update back", msgs[0])
	}
}

func TestDecodeFrameRejectsNesting(t *testing.T) {
	inner := AppendFrame(nil, &Ping{Seq: 1})
	outer := Encode(&Frame{Messages: []Message{mustDecode(t, inner)}})
	if _, err := Decode(outer); !errors.Is(err, ErrNestedFrame) {
		t.Fatalf("nested frame decoded with err=%v, want ErrNestedFrame", err)
	}
}

func mustDecode(t *testing.T, b []byte) Message {
	t.Helper()
	m, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return m
}

func TestDecodeFrameTruncations(t *testing.T) {
	enc := AppendFrame(nil,
		&Update{ObjectID: 1, Seq: 1, Version: 1, Payload: []byte("abcdef")},
		&Ping{Seq: 2},
	)
	// Every proper prefix must fail cleanly, never panic or succeed.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", cut)
		}
	}
	// Trailing garbage is rejected (strict framing).
	if _, err := Decode(append(append([]byte{}, enc...), 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestDecodeFrameForgedLength(t *testing.T) {
	// A length prefix pointing past the datagram must fail as truncated,
	// including the 0xFFFFFFFF value that would wrap a 32-bit int.
	for _, forged := range []uint32{5, 1 << 20, 0xFFFFFFFF} {
		b := []byte{0x52, 0xb0, Version, uint8(KindFrame), 0, 1,
			byte(forged >> 24), byte(forged >> 16), byte(forged >> 8), byte(forged)}
		if _, err := Decode(b); !errors.Is(err, ErrTruncated) {
			t.Fatalf("forged length %d: err=%v, want ErrTruncated", forged, err)
		}
	}
}

func TestFrameBuilderDatagramShapes(t *testing.T) {
	b := NewFrameBuilder()
	if b.Datagram() != nil {
		t.Fatal("empty builder produced a datagram")
	}

	// One message: the bare encoding, byte-identical to the unframed
	// format — single-update slots keep wire compatibility.
	u := &Update{ObjectID: 1, Seq: 1, Version: 1, Payload: []byte("v")}
	b.Append(u)
	if got, want := b.Datagram(), Encode(u); !bytes.Equal(got, want) {
		t.Fatalf("single-message datagram differs from bare encoding:\n got:  %x\n want: %x", got, want)
	}

	// Two messages: a proper frame carrying both.
	b.Reset()
	a := &UpdateAck{ObjectID: 1, Seq: 1}
	b.Append(u)
	b.Append(a)
	if b.Count() != 2 {
		t.Fatalf("count = %d, want 2", b.Count())
	}
	msgs, err := DecodeFrame(b.Datagram())
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(msgs) != 2 || !reflect.DeepEqual(msgs[0], u) || !reflect.DeepEqual(msgs[1], a) {
		t.Fatalf("decoded %+v, want [%+v %+v]", msgs, u, a)
	}
}

func TestFrameBuilderAppendEncoded(t *testing.T) {
	u := &Update{Epoch: 3, ObjectID: 9, Seq: 7, Version: 42, Payload: []byte("pv")}
	enc := Encode(u)
	b := AcquireFrameBuilder()
	defer b.Release()
	b.AppendEncoded(enc)
	b.AppendEncoded(enc)
	msgs, err := DecodeFrame(b.Datagram())
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(msgs) != 2 || !reflect.DeepEqual(msgs[0], u) || !reflect.DeepEqual(msgs[1], u) {
		t.Fatalf("decoded %+v, want the update twice", msgs)
	}
}

// randomUpdate draws an arbitrary update message.
func randomUpdate(rng *rand.Rand) *Update {
	payload := make([]byte, rng.Intn(64))
	rng.Read(payload)
	return &Update{
		Epoch:        uint32(rng.Intn(8)),
		ObjectID:     uint32(rng.Intn(16)),
		Seq:          rng.Uint64() % 1000,
		Version:      rng.Int63(),
		AckRequested: rng.Intn(4) == 0,
		Payload:      payload,
	}
}

// TestFrameBatchRoundTripProperty: for any random batch of updates,
// frame-encode → frame-decode yields the same message sequence, in order.
func TestFrameBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x52b0))
	prop := func() bool {
		n := rng.Intn(40)
		batch := make([]Message, n)
		for i := range batch {
			batch[i] = randomUpdate(rng)
		}
		msgs, err := DecodeFrame(AppendFrame(nil, batch...))
		if err != nil || len(msgs) != n {
			return false
		}
		for i := range batch {
			if !reflect.DeepEqual(msgs[i], batch[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFrameCoalescingProperty mirrors the send path's drop-oldest
// invariant at the wire layer: pushing a random write sequence through a
// coalescing queue (newest state wins per object, FIFO across objects —
// the sendQueue discipline) and framing one batch per drain yields frames
// in which every object appears at most once, carrying exactly the
// freshest payload written before the drain.
func TestFrameCoalescingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func() bool {
		// Random write burst: object id → latest payload, FIFO queue of
		// distinct pending ids.
		latest := map[uint32][]byte{}
		var fifo []uint32
		writes := 1 + rng.Intn(120)
		for i := 0; i < writes; i++ {
			id := uint32(rng.Intn(10))
			payload := make([]byte, 1+rng.Intn(32))
			rng.Read(payload)
			if _, queued := latest[id]; !queued {
				fifo = append(fifo, id)
			}
			latest[id] = payload // coalesce: newest state wins
		}
		// Drain: one frame carries the pending set, freshest state each.
		b := AcquireFrameBuilder()
		defer b.Release()
		var seq uint64
		for _, id := range fifo {
			seq++
			b.Append(&Update{ObjectID: id, Seq: seq, Payload: latest[id]})
		}
		msgs, err := DecodeFrame(b.Datagram())
		if err != nil || len(msgs) != len(fifo) {
			return false
		}
		seen := map[uint32]bool{}
		for i, m := range msgs {
			u, ok := m.(*Update)
			if !ok {
				return false
			}
			if seen[u.ObjectID] {
				return false // an object must not ride one frame twice
			}
			seen[u.ObjectID] = true
			if u.ObjectID != fifo[i] || !bytes.Equal(u.Payload, latest[u.ObjectID]) {
				return false // must be exactly the freshest write, in FIFO order
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameBuilderReleaseDropsOversized(t *testing.T) {
	b := AcquireFrameBuilder()
	big := &Update{ObjectID: 1, Seq: 1, Payload: make([]byte, 1<<20)}
	b.Append(big)
	if b.Size() <= 1<<20 {
		t.Fatalf("builder did not grow: %d", b.Size())
	}
	b.Release() // must drop, not pool, the megabyte buffer
	fresh := AcquireFrameBuilder()
	if cap(fresh.buf) > 1<<20 {
		t.Fatal("oversized buffer returned to the pool")
	}
	fresh.Release()
}

func TestFrameMaxMessages(t *testing.T) {
	b := NewFrameBuilder()
	if b.Full() {
		t.Fatal("fresh builder reports full")
	}
	b.count = MaxFrameMessages
	if !b.Full() {
		t.Fatal("builder at capacity does not report full")
	}
}
