package wire

import (
	"testing"
)

// The allocation wall: the steady-state update path — append-style encode
// and the per-peer frame flush — must not allocate. These assertions are
// what lets CI fail a codec edit that quietly reintroduces a per-message
// allocation, the regression the ROADMAP's throughput ceiling traces to.

// benchUpdate is a representative steady-state update (64-byte payload,
// the EXPERIMENTS.md baseline object size).
func benchUpdate() *Update {
	return &Update{
		Epoch:    2,
		ObjectID: 7,
		Seq:      41,
		Version:  1_700_000_000_000_000_000,
		Payload: []byte("0123456789abcdef0123456789abcdef" +
			"0123456789abcdef0123456789abcdef"),
	}
}

func TestAppendEncodeUpdateZeroAlloc(t *testing.T) {
	u := benchUpdate()
	buf := AppendEncode(nil, u) // warm: grow the buffer once
	allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendEncode(buf[:0], u)
	})
	if allocs != 0 {
		t.Fatalf("AppendEncode allocates %v times per op, want 0", allocs)
	}
}

func TestFrameFlushZeroAlloc(t *testing.T) {
	u := benchUpdate()
	enc := Encode(u)
	b := NewFrameBuilder()
	// Warm: one full flush grows the builder to steady-state capacity.
	for i := 0; i < 16; i++ {
		b.AppendEncoded(enc)
	}
	_ = b.Datagram()
	allocs := testing.AllocsPerRun(1000, func() {
		b.Reset()
		for i := 0; i < 16; i++ {
			b.AppendEncoded(enc)
		}
		if b.Datagram() == nil {
			t.Fatal("flush produced no datagram")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame flush allocates %v times per op, want 0", allocs)
	}
}

func TestFrameBuilderAppendZeroAlloc(t *testing.T) {
	// The message-value path (Append, not AppendEncoded) must also stay
	// allocation-free once the builder has grown: encoding goes straight
	// into the builder's buffer.
	u := benchUpdate()
	b := NewFrameBuilder()
	for i := 0; i < 16; i++ {
		b.Append(u)
	}
	_ = b.Datagram()
	allocs := testing.AllocsPerRun(1000, func() {
		b.Reset()
		for i := 0; i < 16; i++ {
			b.Append(u)
		}
		_ = b.Datagram()
	})
	if allocs != 0 {
		t.Fatalf("builder Append allocates %v times per op, want 0", allocs)
	}
}

// BenchmarkAppendEncodeUpdate is the hot-path benchmark CI pins at
// 0 allocs/op: one steady-state update encoded into a reused buffer.
func BenchmarkAppendEncodeUpdate(b *testing.B) {
	u := benchUpdate()
	buf := AppendEncode(nil, u)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEncode(buf[:0], u)
	}
}

// BenchmarkEncodeUpdate is the allocating baseline AppendEncode replaces;
// it exists so the benchmem diff (1 alloc/op vs 0) stays visible.
func BenchmarkEncodeUpdate(b *testing.B) {
	u := benchUpdate()
	b.SetBytes(int64(len(Encode(u))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Encode(u)
	}
}

// BenchmarkFrameFlush measures one steady-state transmission slot: reset,
// frame 16 pre-encoded updates, finalize the datagram. CI pins it at
// 0 allocs/op.
func BenchmarkFrameFlush(b *testing.B) {
	enc := Encode(benchUpdate())
	fb := NewFrameBuilder()
	for i := 0; i < 16; i++ {
		fb.AppendEncoded(enc)
	}
	b.SetBytes(int64(len(fb.Datagram())))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.Reset()
		for j := 0; j < 16; j++ {
			fb.AppendEncoded(enc)
		}
		_ = fb.Datagram()
	}
}

// BenchmarkDecodeFrame measures the receive side of a 16-update frame.
func BenchmarkDecodeFrame(b *testing.B) {
	enc := Encode(benchUpdate())
	fb := NewFrameBuilder()
	for i := 0; i < 16; i++ {
		fb.AppendEncoded(enc)
	}
	dg := fb.Datagram()
	b.SetBytes(int64(len(dg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeFrame(dg); err != nil {
			b.Fatal(err)
		}
	}
}
