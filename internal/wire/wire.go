// Package wire defines the binary wire format of the RTPB protocol: the
// messages the primary and backup exchange over the (unreliable) datagram
// transport, and the client-facing registration messages. The format is a
// fixed four-byte header (magic, version, kind) followed by a
// message-specific body encoded big-endian with length-prefixed variable
// fields. Every message round-trips through Encode/Decode, and Decode
// never panics on malformed input.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Protocol framing constants.
const (
	// Magic identifies RTPB datagrams.
	Magic uint16 = 0x52B0 // "RTPB"-ish
	// Version is the wire-format version this package speaks.
	Version uint8 = 1
	// headerLen is magic(2) + version(1) + kind(1).
	headerLen = 4
	// MaxPayload bounds object payloads and strings to keep a malformed
	// length prefix from allocating unbounded memory.
	MaxPayload = 1 << 20
)

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds.
const (
	KindRegister Kind = iota + 1
	KindRegisterReply
	KindUpdate
	KindRetransmitRequest
	KindPing
	KindPingAck
	KindTakeover
	KindStateTransfer
	KindStateTransferAck
	// KindOrder and KindOrderAck belong to the active-replication
	// comparison baseline (internal/active), not to RTPB itself: a
	// sequencer totally orders writes and multicasts them; replicas
	// acknowledge each order so the sequencer can reply to the client
	// only after atomic delivery.
	KindOrder
	KindOrderAck
	// KindUpdateAck confirms one specific RTPB update — sent by a backup
	// only when the update carried AckRequested (the hybrid path for
	// critical objects).
	KindUpdateAck
	// KindModeChange announces the primary overload governor's degradation
	// decision for one object so the backup's temporal monitor can track
	// the effective bound while the object is compressed or shed.
	KindModeChange
	// KindJoinRequest is sent by a restarted replica that wants back into
	// the cluster as a backup: it carries the highest epoch the joiner has
	// observed so a fenced old primary demotes itself cleanly.
	KindJoinRequest
	// KindJoinAccept admits a joiner (or a freshly recruited backup): it
	// carries the primary's epoch and the full object-spec table so the
	// joiner can re-admit every object before any state arrives.
	KindJoinAccept
	// KindStateDigest is the joiner's anti-entropy summary: per-object
	// (epoch, seq, version) so the primary streams only missing or stale
	// entries. Re-sending the digest after an interruption resumes the
	// transfer from whatever already landed instead of restarting it.
	KindStateDigest
	// KindStateChunk is one bounded slice of a chunked state transfer,
	// acknowledged per chunk and retransmitted on the adaptive RTO.
	KindStateChunk
	// KindStateChunkAck confirms one chunk of a chunked state transfer.
	KindStateChunkAck
	// KindUnregister revokes one object's registration at the backups:
	// the object was removed (or migrated to another replica group), so
	// the backup must release its reservation and stop reporting the
	// object.
	KindUnregister
	// KindFrame is a length-prefixed batch of complete RTPB messages
	// coalesced into one datagram (frame.go). The transmission window's
	// decoupling makes this semantically free: only the freshest image per
	// object matters per slot, so every pending update to one peer rides
	// one datagram. Frames do not nest.
	KindFrame
	// KindTimeSync is a Cristian-style clock-sync probe piggybacked on
	// the heartbeat exchange: the probing replica sends its origination
	// timestamp, the responder echoes it with receive/transmit stamps
	// from its own clock, and the probe's round trip bounds the offset
	// estimate (internal/clocksync).
	KindTimeSync
	// KindChainStatus advertises a fan-out node's position in an
	// observer chain: its hop depth from the serving primary and the
	// clock uncertainty accumulated along its upstream chain. Sent in
	// reply to an observer's heartbeat so certificates served further
	// downstream compound staleness honestly instead of resetting it
	// per hop.
	KindChainStatus
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindRegister:
		return "Register"
	case KindRegisterReply:
		return "RegisterReply"
	case KindUpdate:
		return "Update"
	case KindRetransmitRequest:
		return "RetransmitRequest"
	case KindPing:
		return "Ping"
	case KindPingAck:
		return "PingAck"
	case KindTakeover:
		return "Takeover"
	case KindStateTransfer:
		return "StateTransfer"
	case KindStateTransferAck:
		return "StateTransferAck"
	case KindOrder:
		return "Order"
	case KindOrderAck:
		return "OrderAck"
	case KindUpdateAck:
		return "UpdateAck"
	case KindModeChange:
		return "ModeChange"
	case KindJoinRequest:
		return "JoinRequest"
	case KindJoinAccept:
		return "JoinAccept"
	case KindStateDigest:
		return "StateDigest"
	case KindStateChunk:
		return "StateChunk"
	case KindStateChunkAck:
		return "StateChunkAck"
	case KindUnregister:
		return "Unregister"
	case KindFrame:
		return "Frame"
	case KindTimeSync:
		return "TimeSync"
	case KindChainStatus:
		return "ChainStatus"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Decoding errors.
var (
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrTruncated   = errors.New("wire: truncated message")
	ErrUnknownKind = errors.New("wire: unknown message kind")
	ErrOversize    = errors.New("wire: length prefix exceeds limit")
	ErrTrailing    = errors.New("wire: trailing bytes after message body")
	ErrBadBool     = errors.New("wire: non-canonical boolean")
)

// Message is any RTPB wire message.
type Message interface {
	// WireKind reports the message's kind discriminator.
	WireKind() Kind

	appendBody(dst []byte) []byte
	decodeBody(r *reader) error
}

// Compile-time interface checks.
var (
	_ Message = (*Register)(nil)
	_ Message = (*RegisterReply)(nil)
	_ Message = (*Update)(nil)
	_ Message = (*RetransmitRequest)(nil)
	_ Message = (*Ping)(nil)
	_ Message = (*PingAck)(nil)
	_ Message = (*Takeover)(nil)
	_ Message = (*StateTransfer)(nil)
	_ Message = (*StateTransferAck)(nil)
	_ Message = (*Order)(nil)
	_ Message = (*OrderAck)(nil)
	_ Message = (*UpdateAck)(nil)
	_ Message = (*ModeChange)(nil)
	_ Message = (*JoinRequest)(nil)
	_ Message = (*JoinAccept)(nil)
	_ Message = (*StateDigest)(nil)
	_ Message = (*StateChunk)(nil)
	_ Message = (*StateChunkAck)(nil)
	_ Message = (*Unregister)(nil)
	_ Message = (*Frame)(nil)
	_ Message = (*TimeSync)(nil)
	_ Message = (*ChainStatus)(nil)
)

// Encode serializes a message with the RTPB header into a fresh buffer.
// Hot paths should prefer AppendEncode with a reused buffer: Encode
// allocates per call, AppendEncode does not.
func Encode(m Message) []byte {
	return AppendEncode(make([]byte, 0, 64), m)
}

// AppendEncode serializes a message with the RTPB header, appending to
// dst and returning the extended slice (the append idiom of
// strconv.AppendInt). It performs no allocation beyond growing dst, so a
// caller that reuses its buffer encodes at zero allocations per message —
// the steady-state update path's discipline.
func AppendEncode(dst []byte, m Message) []byte {
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, uint8(m.WireKind()))
	return m.appendBody(dst)
}

// Decode parses a datagram into a message. It returns an error if the
// datagram is not a complete, well-formed RTPB message.
func Decode(b []byte) (Message, error) {
	if len(b) < headerLen {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(b) != Magic {
		return nil, ErrBadMagic
	}
	if b[2] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, b[2])
	}
	var m Message
	switch Kind(b[3]) {
	case KindRegister:
		m = &Register{}
	case KindRegisterReply:
		m = &RegisterReply{}
	case KindUpdate:
		m = &Update{}
	case KindRetransmitRequest:
		m = &RetransmitRequest{}
	case KindPing:
		m = &Ping{}
	case KindPingAck:
		m = &PingAck{}
	case KindTakeover:
		m = &Takeover{}
	case KindStateTransfer:
		m = &StateTransfer{}
	case KindStateTransferAck:
		m = &StateTransferAck{}
	case KindOrder:
		m = &Order{}
	case KindOrderAck:
		m = &OrderAck{}
	case KindUpdateAck:
		m = &UpdateAck{}
	case KindModeChange:
		m = &ModeChange{}
	case KindJoinRequest:
		m = &JoinRequest{}
	case KindJoinAccept:
		m = &JoinAccept{}
	case KindStateDigest:
		m = &StateDigest{}
	case KindStateChunk:
		m = &StateChunk{}
	case KindStateChunkAck:
		m = &StateChunkAck{}
	case KindUnregister:
		m = &Unregister{}
	case KindFrame:
		m = &Frame{}
	case KindTimeSync:
		m = &TimeSync{}
	case KindChainStatus:
		m = &ChainStatus{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, b[3])
	}
	r := &reader{buf: b[headerLen:]}
	if err := m.decodeBody(r); err != nil {
		return nil, err
	}
	if len(r.buf) != 0 {
		return nil, ErrTrailing
	}
	return m, nil
}

// Register asks a replica to reserve space and admit a new object. The
// primary receives it from clients (via the service API) and forwards an
// equivalent registration to the backup so the backup can reserve space
// too (Section 4.2).
type Register struct {
	// Epoch is the sending primary's epoch; backups ignore registrations
	// from a primary older than one they have heard from (fencing).
	Epoch uint32
	// ObjectID is the service-assigned identifier.
	ObjectID uint32
	// Name is the client-chosen object name.
	Name string
	// Size is the reserved object size in bytes.
	Size uint32
	// Period is the client's declared update period p_i.
	Period time.Duration
	// DeltaP and DeltaB are the external consistency bounds δ_i^P, δ_i^B.
	DeltaP time.Duration
	// DeltaB is the bound at the backup.
	DeltaB time.Duration
}

// WireKind implements Message.
func (*Register) WireKind() Kind { return KindRegister }

func (m *Register) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, m.ObjectID)
	dst = appendString(dst, m.Name)
	dst = binary.BigEndian.AppendUint32(dst, m.Size)
	dst = appendDuration(dst, m.Period)
	dst = appendDuration(dst, m.DeltaP)
	return appendDuration(dst, m.DeltaB)
}

func (m *Register) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	m.ObjectID = r.uint32()
	m.Name = r.string()
	m.Size = r.uint32()
	m.Period = r.duration()
	m.DeltaP = r.duration()
	m.DeltaB = r.duration()
	return r.err
}

// RegisterReply reports an admission decision, with QoS-negotiation
// feedback when the object is rejected.
type RegisterReply struct {
	// ObjectID echoes the registration.
	ObjectID uint32
	// Accepted reports the admission decision.
	Accepted bool
	// Reason explains a rejection.
	Reason string
	// SuggestedDeltaB, when non-zero, is the smallest δ_i^B the service
	// could currently accept (the paper's "negotiate for an alternative
	// quality of service").
	SuggestedDeltaB time.Duration
}

// WireKind implements Message.
func (*RegisterReply) WireKind() Kind { return KindRegisterReply }

func (m *RegisterReply) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.ObjectID)
	dst = appendBool(dst, m.Accepted)
	dst = appendString(dst, m.Reason)
	return appendDuration(dst, m.SuggestedDeltaB)
}

func (m *RegisterReply) decodeBody(r *reader) error {
	m.ObjectID = r.uint32()
	m.Accepted = r.bool()
	m.Reason = r.string()
	m.SuggestedDeltaB = r.duration()
	return r.err
}

// Update carries the current value of one object from primary to backup.
// Updates are not acknowledged (Section 4.3); the Seq lets the backup
// detect gaps and request retransmission.
type Update struct {
	// Epoch is the sending primary's epoch; backups drop updates from a
	// primary older than one they have heard from, fencing a zombie
	// primary after a takeover.
	Epoch uint32
	// ObjectID identifies the object.
	ObjectID uint32
	// Seq is a per-object sequence number, incremented per transmission.
	Seq uint64
	// Version is the primary-side timestamp of the object state this
	// update carries (T_i^P at transmission), in nanoseconds since the
	// Unix epoch.
	Version int64
	// AckRequested asks the backup to confirm this specific update with
	// an UpdateAck — the hybrid active/passive path for critical objects
	// (the client's write response waits for the ack).
	AckRequested bool
	// Payload is the object value.
	Payload []byte
}

// WireKind implements Message.
func (*Update) WireKind() Kind { return KindUpdate }

func (m *Update) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, m.ObjectID)
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Version))
	dst = appendBool(dst, m.AckRequested)
	return appendBytes(dst, m.Payload)
}

func (m *Update) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	m.ObjectID = r.uint32()
	m.Seq = r.uint64()
	m.Version = int64(r.uint64())
	m.AckRequested = r.bool()
	m.Payload = r.bytes()
	return r.err
}

// RetransmitRequest is sent by the backup when it detects a sequence gap,
// asking the primary to resend the object's current value immediately
// ("retransmission is triggered by a request from the backup").
type RetransmitRequest struct {
	// ObjectID identifies the object with the gap.
	ObjectID uint32
	// LastSeq is the highest sequence number the backup has applied.
	LastSeq uint64
}

// WireKind implements Message.
func (*RetransmitRequest) WireKind() Kind { return KindRetransmitRequest }

func (m *RetransmitRequest) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.ObjectID)
	return binary.BigEndian.AppendUint64(dst, m.LastSeq)
}

func (m *RetransmitRequest) decodeBody(r *reader) error {
	m.ObjectID = r.uint32()
	m.LastSeq = r.uint64()
	return r.err
}

// Role identifies which replica sent a heartbeat.
type Role uint8

// Replica roles.
const (
	RolePrimary Role = iota + 1
	RoleBackup
	// RoleObserver marks a read-only replica subscribed for the update
	// stream (directly to a primary or chained under another observer).
	RoleObserver
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleBackup:
		return "backup"
	case RoleObserver:
		return "observer"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Ping is the heartbeat exchanged by both replicas (Section 4.4).
type Ping struct {
	// Seq numbers the heartbeat for ack matching.
	Seq uint64
	// From is the sender's role.
	From Role
}

// WireKind implements Message.
func (*Ping) WireKind() Kind { return KindPing }

func (m *Ping) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	return append(dst, uint8(m.From))
}

func (m *Ping) decodeBody(r *reader) error {
	m.Seq = r.uint64()
	m.From = Role(r.uint8())
	return r.err
}

// PingAck acknowledges a Ping.
type PingAck struct {
	// Seq echoes the ping's sequence number.
	Seq uint64
	// From is the responder's role.
	From Role
}

// WireKind implements Message.
func (*PingAck) WireKind() Kind { return KindPingAck }

func (m *PingAck) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	return append(dst, uint8(m.From))
}

func (m *PingAck) decodeBody(r *reader) error {
	m.Seq = r.uint64()
	m.From = Role(r.uint8())
	return r.err
}

// TimeSync is the Cristian-style clock-sync probe that rides alongside
// the heartbeat exchange (internal/clocksync). A request carries only
// Originate — t1, the probing node's send instant; the responder echoes
// Originate and stamps Receive (t2) and Transmit (t3) from its own
// clock. The probing side timestamps the reply's arrival (t4) locally
// and feeds all four instants into the offset estimator. Timestamps are
// Unix nanoseconds read from each node's own — possibly faulty — clock;
// a zero Receive and Transmit marks a request.
type TimeSync struct {
	// Seq pairs the probe with its echo (the heartbeat sequence number
	// it rides with).
	Seq uint64
	// From is the sender's role.
	From Role
	// Originate is t1: the prober's clock when the request was sent.
	Originate int64
	// Receive is t2: the responder's clock when the request arrived.
	Receive int64
	// Transmit is t3: the responder's clock when the echo was sent.
	Transmit int64
}

// WireKind implements Message.
func (*TimeSync) WireKind() Kind { return KindTimeSync }

func (m *TimeSync) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = append(dst, uint8(m.From))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Originate))
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Receive))
	return binary.BigEndian.AppendUint64(dst, uint64(m.Transmit))
}

func (m *TimeSync) decodeBody(r *reader) error {
	m.Seq = r.uint64()
	m.From = Role(r.uint8())
	m.Originate = int64(r.uint64())
	m.Receive = int64(r.uint64())
	m.Transmit = int64(r.uint64())
	return r.err
}

// ChainStatus advertises a fan-out node's position in an observer
// chain, sent in reply to an observer peer's heartbeat. The primary is
// the chain root (depth 0, no inherited uncertainty); an observer
// re-advertises its upstream's values plus one hop and its own link's
// clocksync θ, so a certificate served anywhere in the tree carries the
// whole chain's accumulated clock uncertainty — staleness compounds
// honestly instead of resetting per hop.
type ChainStatus struct {
	// Epoch is the sender's current epoch (fencing).
	Epoch uint32
	// Depth is the sender's hop count from the serving primary.
	Depth uint32
	// Theta is the clock uncertainty the sender has accumulated along
	// its upstream chain (zero at the primary).
	Theta time.Duration
}

// WireKind implements Message.
func (*ChainStatus) WireKind() Kind { return KindChainStatus }

func (m *ChainStatus) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, m.Depth)
	return appendDuration(dst, m.Theta)
}

func (m *ChainStatus) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	m.Depth = r.uint32()
	m.Theta = r.duration()
	return r.err
}

// Takeover announces that the backup has promoted itself to primary after
// detecting the primary's failure; it updates the name service so clients
// and a recruited backup can find the new primary.
type Takeover struct {
	// NewPrimary is the promoted replica's address.
	NewPrimary string
	// Epoch increments on every takeover, fencing stale primaries.
	Epoch uint32
}

// WireKind implements Message.
func (*Takeover) WireKind() Kind { return KindTakeover }

func (m *Takeover) appendBody(dst []byte) []byte {
	dst = appendString(dst, m.NewPrimary)
	return binary.BigEndian.AppendUint32(dst, m.Epoch)
}

func (m *Takeover) decodeBody(r *reader) error {
	m.NewPrimary = r.string()
	m.Epoch = r.uint32()
	return r.err
}

// StateEntry is one object's state inside a StateTransfer or StateChunk.
// It carries the object's spec alongside its value: a receiver that has
// never seen the object's registration (its Register was lost, or it
// joined after admission) can still admit the object locally, so the
// state survives a later promotion instead of being skipped as a
// spec-less placeholder.
type StateEntry struct {
	// ObjectID identifies the object.
	ObjectID uint32
	// Seq is the primary's current sequence number for the object.
	Seq uint64
	// Version is the object's current version timestamp (Unix nanos).
	Version int64
	// Name is the client-chosen object name.
	Name string
	// Size is the reserved object size in bytes.
	Size uint32
	// Period is the declared update period p_i.
	Period time.Duration
	// DeltaP and DeltaB are the external consistency bounds δ_i^P, δ_i^B.
	DeltaP time.Duration
	// DeltaB is the bound at the backup.
	DeltaB time.Duration
	// Payload is the object value.
	Payload []byte
}

func appendStateEntry(dst []byte, e StateEntry) []byte {
	dst = binary.BigEndian.AppendUint32(dst, e.ObjectID)
	dst = binary.BigEndian.AppendUint64(dst, e.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(e.Version))
	dst = appendString(dst, e.Name)
	dst = binary.BigEndian.AppendUint32(dst, e.Size)
	dst = appendDuration(dst, e.Period)
	dst = appendDuration(dst, e.DeltaP)
	dst = appendDuration(dst, e.DeltaB)
	return appendBytes(dst, e.Payload)
}

func decodeStateEntry(r *reader) StateEntry {
	return StateEntry{
		ObjectID: r.uint32(),
		Seq:      r.uint64(),
		Version:  int64(r.uint64()),
		Name:     r.string(),
		Size:     r.uint32(),
		Period:   r.duration(),
		DeltaP:   r.duration(),
		DeltaB:   r.duration(),
		Payload:  r.bytes(),
	}
}

// StateTransfer brings a newly recruited backup up to the primary's
// current state (Section 4.4: "supports the integration of a new backup").
type StateTransfer struct {
	// Epoch is the sending primary's epoch.
	Epoch uint32
	// Entries is the full object table.
	Entries []StateEntry
}

// WireKind implements Message.
func (*StateTransfer) WireKind() Kind { return KindStateTransfer }

func (m *StateTransfer) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		dst = appendStateEntry(dst, e)
	}
	return dst
}

func (m *StateTransfer) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	n := r.uint32()
	if r.err != nil {
		return r.err
	}
	if n > MaxPayload {
		return ErrOversize
	}
	m.Entries = make([]StateEntry, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		e := decodeStateEntry(r)
		if r.err != nil {
			return r.err
		}
		m.Entries = append(m.Entries, e)
	}
	return r.err
}

// StateTransferAck confirms a state transfer was applied.
type StateTransferAck struct {
	// Epoch echoes the transfer's epoch.
	Epoch uint32
	// Objects is the number of entries applied.
	Objects uint32
}

// WireKind implements Message.
func (*StateTransferAck) WireKind() Kind { return KindStateTransferAck }

func (m *StateTransferAck) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	return binary.BigEndian.AppendUint32(dst, m.Objects)
}

func (m *StateTransferAck) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	m.Objects = r.uint32()
	return r.err
}

// Order is the active-replication baseline's totally ordered write: the
// sequencer assigns Seq and multicasts; replicas apply orders strictly in
// sequence.
type Order struct {
	// Seq is the global total-order position.
	Seq uint64
	// ObjectID identifies the object written.
	ObjectID uint32
	// Version is the write's timestamp (Unix nanos).
	Version int64
	// Payload is the written value.
	Payload []byte
}

// WireKind implements Message.
func (*Order) WireKind() Kind { return KindOrder }

func (m *Order) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	dst = binary.BigEndian.AppendUint32(dst, m.ObjectID)
	dst = binary.BigEndian.AppendUint64(dst, uint64(m.Version))
	return appendBytes(dst, m.Payload)
}

func (m *Order) decodeBody(r *reader) error {
	m.Seq = r.uint64()
	m.ObjectID = r.uint32()
	m.Version = int64(r.uint64())
	m.Payload = r.bytes()
	return r.err
}

// OrderAck acknowledges atomic delivery of one order at one replica.
type OrderAck struct {
	// Seq echoes the order.
	Seq uint64
}

// WireKind implements Message.
func (*OrderAck) WireKind() Kind { return KindOrderAck }

func (m *OrderAck) appendBody(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, m.Seq)
}

func (m *OrderAck) decodeBody(r *reader) error {
	m.Seq = r.uint64()
	return r.err
}

// UpdateAck confirms a backup applied one specific update; sent only for
// updates that carried AckRequested.
type UpdateAck struct {
	// ObjectID identifies the object.
	ObjectID uint32
	// Seq echoes the acknowledged update's sequence number.
	Seq uint64
}

// WireKind implements Message.
func (*UpdateAck) WireKind() Kind { return KindUpdateAck }

func (m *UpdateAck) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.ObjectID)
	return binary.BigEndian.AppendUint64(dst, m.Seq)
}

func (m *UpdateAck) decodeBody(r *reader) error {
	m.ObjectID = r.uint32()
	m.Seq = r.uint64()
	return r.err
}

// ModeChange announces the overload governor's transmission-mode decision
// for one object: normal, compressed (stretched update period), or shed
// (updates suspended). The backup uses EffectiveBound to keep its temporal
// monitor honest about what guarantee the primary is actually maintaining.
type ModeChange struct {
	// Epoch is the announcing primary's epoch (fencing).
	Epoch uint32
	// ObjectID identifies the object.
	ObjectID uint32
	// Mode is the numeric degradation rung (core.ObjectMode).
	Mode uint8
	// Seq is the governor's decision sequence number, monotone per
	// primary epoch; receivers drop stale reorderings and duplicates.
	Seq uint64
	// EffectiveBound is the external staleness bound the primary still
	// maintains for this object in the announced mode; zero means
	// replication of the object is suspended entirely.
	EffectiveBound time.Duration
}

// WireKind implements Message.
func (*ModeChange) WireKind() Kind { return KindModeChange }

func (m *ModeChange) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, m.ObjectID)
	dst = append(dst, m.Mode)
	dst = binary.BigEndian.AppendUint64(dst, m.Seq)
	return appendDuration(dst, m.EffectiveBound)
}

func (m *ModeChange) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	m.ObjectID = r.uint32()
	m.Mode = r.uint8()
	m.Seq = r.uint64()
	m.EffectiveBound = r.duration()
	return r.err
}

// JoinRequest is sent by a restarted replica (including a fenced old
// primary that has demoted itself) asking the current primary to take it
// back as a backup. The primary learns the joiner's address from the
// datagram source; Addr is advisory and lets tooling log the joiner's
// self-reported identity.
type JoinRequest struct {
	// Epoch is the highest primary epoch the joiner has observed; the
	// primary's JoinAccept carries its own (≥) epoch back, fencing the
	// joiner forward.
	Epoch uint32
	// Addr is the joiner's replication address as it knows it.
	Addr string
	// Observer marks a read-only subscriber: the upstream runs the same
	// chunked anti-entropy exchange but never counts the peer toward
	// quorums, the replication degree, or critical-write waits.
	Observer bool
}

// WireKind implements Message.
func (*JoinRequest) WireKind() Kind { return KindJoinRequest }

func (m *JoinRequest) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = appendString(dst, m.Addr)
	return appendBool(dst, m.Observer)
}

func (m *JoinRequest) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	m.Addr = r.string()
	m.Observer = r.bool()
	return r.err
}

// SpecEntry is one object's admission spec inside a JoinAccept.
type SpecEntry struct {
	// ObjectID is the service-assigned identifier.
	ObjectID uint32
	// Name is the client-chosen object name.
	Name string
	// Size is the reserved object size in bytes.
	Size uint32
	// Period is the declared update period p_i.
	Period time.Duration
	// DeltaP and DeltaB are the external consistency bounds δ_i^P, δ_i^B.
	DeltaP time.Duration
	// DeltaB is the bound at the backup.
	DeltaB time.Duration
}

// JoinAccept admits a joining backup: it fences the joiner to the
// primary's epoch and carries the full object-spec table so the joiner
// reserves space for every admitted object before any state arrives. The
// joiner answers with a StateDigest; the primary retries the accept on
// its adaptive RTO until that digest arrives.
type JoinAccept struct {
	// Epoch is the accepting primary's epoch.
	Epoch uint32
	// Specs is the primary's full object-spec table.
	Specs []SpecEntry
}

// WireKind implements Message.
func (*JoinAccept) WireKind() Kind { return KindJoinAccept }

func (m *JoinAccept) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Specs)))
	for _, s := range m.Specs {
		dst = binary.BigEndian.AppendUint32(dst, s.ObjectID)
		dst = appendString(dst, s.Name)
		dst = binary.BigEndian.AppendUint32(dst, s.Size)
		dst = appendDuration(dst, s.Period)
		dst = appendDuration(dst, s.DeltaP)
		dst = appendDuration(dst, s.DeltaB)
	}
	return dst
}

func (m *JoinAccept) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	n := r.uint32()
	if r.err != nil {
		return r.err
	}
	if n > MaxPayload {
		return ErrOversize
	}
	m.Specs = make([]SpecEntry, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		s := SpecEntry{
			ObjectID: r.uint32(),
			Name:     r.string(),
			Size:     r.uint32(),
			Period:   r.duration(),
			DeltaP:   r.duration(),
			DeltaB:   r.duration(),
		}
		if r.err != nil {
			return r.err
		}
		m.Specs = append(m.Specs, s)
	}
	return r.err
}

// DigestEntry summarizes one object the joiner already holds.
type DigestEntry struct {
	// ObjectID identifies the object.
	ObjectID uint32
	// Epoch is the epoch of the newest update applied to the object.
	Epoch uint32
	// Seq is the newest applied sequence number.
	Seq uint64
	// Version is the object's version timestamp (Unix nanos).
	Version int64
}

// StateDigest is the joiner's anti-entropy summary: one entry per object
// it holds data for. The primary diffs the digest against its table and
// streams only missing or stale objects in StateChunks. A joiner that
// re-sends its digest after an interruption (it retries on a capped
// backoff until the transfer completes) implicitly acknowledges
// everything that already landed, so the transfer resumes instead of
// restarting.
type StateDigest struct {
	// Epoch is the joiner's view of the current primary epoch.
	Epoch uint32
	// Entries lists the objects the joiner holds, with their freshness.
	Entries []DigestEntry
}

// WireKind implements Message.
func (*StateDigest) WireKind() Kind { return KindStateDigest }

func (m *StateDigest) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		dst = binary.BigEndian.AppendUint32(dst, e.ObjectID)
		dst = binary.BigEndian.AppendUint32(dst, e.Epoch)
		dst = binary.BigEndian.AppendUint64(dst, e.Seq)
		dst = binary.BigEndian.AppendUint64(dst, uint64(e.Version))
	}
	return dst
}

func (m *StateDigest) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	n := r.uint32()
	if r.err != nil {
		return r.err
	}
	if n > MaxPayload {
		return ErrOversize
	}
	m.Entries = make([]DigestEntry, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		e := DigestEntry{
			ObjectID: r.uint32(),
			Epoch:    r.uint32(),
			Seq:      r.uint64(),
			Version:  int64(r.uint64()),
		}
		if r.err != nil {
			return r.err
		}
		m.Entries = append(m.Entries, e)
	}
	return r.err
}

// StateChunk is one bounded slice of a chunked anti-entropy transfer.
// Chunks are sent stop-and-wait: each is acknowledged with a
// StateChunkAck and retransmitted on the sender's adaptive RTO, so a
// lossy link slows the transfer but cannot wedge it.
type StateChunk struct {
	// Epoch is the sending primary's epoch.
	Epoch uint32
	// Xfer is the transfer generation (bumped per received digest);
	// acks from an abandoned generation are ignored.
	Xfer uint32
	// Chunk numbers the chunk within its generation, from zero.
	Chunk uint32
	// Final marks the last chunk of the generation: applying it completes
	// the exchange on the receiver.
	Final bool
	// Entries is the chunk's slice of the object table.
	Entries []StateEntry
}

// WireKind implements Message.
func (*StateChunk) WireKind() Kind { return KindStateChunk }

func (m *StateChunk) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, m.Xfer)
	dst = binary.BigEndian.AppendUint32(dst, m.Chunk)
	dst = appendBool(dst, m.Final)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Entries)))
	for _, e := range m.Entries {
		dst = appendStateEntry(dst, e)
	}
	return dst
}

func (m *StateChunk) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	m.Xfer = r.uint32()
	m.Chunk = r.uint32()
	m.Final = r.bool()
	n := r.uint32()
	if r.err != nil {
		return r.err
	}
	if n > MaxPayload {
		return ErrOversize
	}
	m.Entries = make([]StateEntry, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		e := decodeStateEntry(r)
		if r.err != nil {
			return r.err
		}
		m.Entries = append(m.Entries, e)
	}
	return r.err
}

// StateChunkAck confirms one chunk of a chunked state transfer. A
// duplicate chunk is re-acknowledged (the first ack may have been lost)
// but applied only once.
type StateChunkAck struct {
	// Epoch echoes the chunk's epoch.
	Epoch uint32
	// Xfer echoes the transfer generation.
	Xfer uint32
	// Chunk echoes the chunk number.
	Chunk uint32
	// Applied is the number of entries the receiver newly applied from
	// this chunk (entries superseded by fresher local state are skipped).
	Applied uint32
}

// WireKind implements Message.
func (*StateChunkAck) WireKind() Kind { return KindStateChunkAck }

func (m *StateChunkAck) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	dst = binary.BigEndian.AppendUint32(dst, m.Xfer)
	dst = binary.BigEndian.AppendUint32(dst, m.Chunk)
	return binary.BigEndian.AppendUint32(dst, m.Applied)
}

func (m *StateChunkAck) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	m.Xfer = r.uint32()
	m.Chunk = r.uint32()
	m.Applied = r.uint32()
	return r.err
}

// Unregister revokes one object's registration: the primary removed the
// object (a client deletion, or a migration to another replica group),
// so the backup releases its reservation. Like Register, it is
// epoch-fenced: a zombie primary cannot delete objects a newer epoch
// still serves.
type Unregister struct {
	// Epoch is the sending primary's epoch (fencing).
	Epoch uint32
	// ObjectID identifies the object to release.
	ObjectID uint32
}

// WireKind implements Message.
func (*Unregister) WireKind() Kind { return KindUnregister }

func (m *Unregister) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Epoch)
	return binary.BigEndian.AppendUint32(dst, m.ObjectID)
}

func (m *Unregister) decodeBody(r *reader) error {
	m.Epoch = r.uint32()
	m.ObjectID = r.uint32()
	return r.err
}

// --- primitive encoding helpers ---

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendDuration(dst []byte, d time.Duration) []byte {
	return binary.BigEndian.AppendUint64(dst, uint64(d.Nanoseconds()))
}

// reader is a bounds-checked big-endian cursor; the first error sticks and
// every subsequent read returns a zero value.
type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *reader) uint8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// bool is strict: only 0 and 1 are valid encodings, keeping the format
// canonical (decode-then-encode of any accepted datagram is the
// identity).
func (r *reader) bool() bool {
	b := r.uint8()
	if r.err == nil && b > 1 {
		r.err = ErrBadBool
	}
	return b == 1
}

func (r *reader) uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) duration() time.Duration {
	v := r.uint64()
	if v > math.MaxInt64 {
		r.err = ErrTruncated
		return 0
	}
	return time.Duration(v)
}

func (r *reader) string() string {
	n := int(r.uint16())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

func (r *reader) bytes() []byte {
	n := r.uint32()
	if n > MaxPayload {
		r.err = ErrOversize
		return nil
	}
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}
