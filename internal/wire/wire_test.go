package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Encode(m)
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%s): %v", m.WireKind(), err)
	}
	if got.WireKind() != m.WireKind() {
		t.Fatalf("kind = %v, want %v", got.WireKind(), m.WireKind())
	}
	return got
}

func TestRoundTripRegister(t *testing.T) {
	in := &Register{
		ObjectID: 7,
		Name:     "altimeter",
		Size:     512,
		Period:   40 * time.Millisecond,
		DeltaP:   50 * time.Millisecond,
		DeltaB:   120 * time.Millisecond,
	}
	out := roundTrip(t, in).(*Register)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestRoundTripRegisterReply(t *testing.T) {
	cases := []*RegisterReply{
		{ObjectID: 1, Accepted: true},
		{ObjectID: 2, Accepted: false, Reason: "p_i exceeds δ_i^P", SuggestedDeltaB: 200 * time.Millisecond},
	}
	for _, in := range cases {
		out := roundTrip(t, in).(*RegisterReply)
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
		}
	}
}

func TestRoundTripUpdate(t *testing.T) {
	in := &Update{ObjectID: 3, Seq: 99, Version: 123456789, Payload: []byte("sensor-value")}
	out := roundTrip(t, in).(*Update)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestRoundTripUpdateEmptyPayload(t *testing.T) {
	in := &Update{ObjectID: 3, Seq: 1, Version: -5}
	out := roundTrip(t, in).(*Update)
	if out.Version != -5 {
		t.Fatalf("negative version did not survive: %d", out.Version)
	}
	if len(out.Payload) != 0 {
		t.Fatalf("payload = %q, want empty", out.Payload)
	}
}

func TestRoundTripRetransmitRequest(t *testing.T) {
	in := &RetransmitRequest{ObjectID: 12, LastSeq: 41}
	out := roundTrip(t, in).(*RetransmitRequest)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestRoundTripPingAndAck(t *testing.T) {
	p := roundTrip(t, &Ping{Seq: 8, From: RoleBackup}).(*Ping)
	if p.Seq != 8 || p.From != RoleBackup {
		t.Fatalf("ping mismatch: %+v", p)
	}
	a := roundTrip(t, &PingAck{Seq: 8, From: RolePrimary}).(*PingAck)
	if a.Seq != 8 || a.From != RolePrimary {
		t.Fatalf("ack mismatch: %+v", a)
	}
}

func TestRoundTripTakeover(t *testing.T) {
	in := &Takeover{NewPrimary: "10.0.0.2:7000", Epoch: 3}
	out := roundTrip(t, in).(*Takeover)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestRoundTripStateTransfer(t *testing.T) {
	in := &StateTransfer{
		Epoch: 2,
		Entries: []StateEntry{
			{ObjectID: 1, Seq: 10, Version: 111, Payload: []byte("a")},
			{ObjectID: 2, Seq: 20, Version: 222, Payload: nil},
			{ObjectID: 3, Seq: 30, Version: -333, Payload: bytes.Repeat([]byte{0xAB}, 300)},
		},
	}
	out := roundTrip(t, in).(*StateTransfer)
	if out.Epoch != in.Epoch || len(out.Entries) != len(in.Entries) {
		t.Fatalf("structure mismatch: %+v", out)
	}
	for i := range in.Entries {
		if in.Entries[i].ObjectID != out.Entries[i].ObjectID ||
			in.Entries[i].Seq != out.Entries[i].Seq ||
			in.Entries[i].Version != out.Entries[i].Version ||
			!bytes.Equal(in.Entries[i].Payload, out.Entries[i].Payload) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, in.Entries[i], out.Entries[i])
		}
	}
}

func TestRoundTripStateTransferEmpty(t *testing.T) {
	out := roundTrip(t, &StateTransfer{Epoch: 1}).(*StateTransfer)
	if len(out.Entries) != 0 {
		t.Fatalf("entries = %v, want none", out.Entries)
	}
}

func TestRoundTripStateTransferAck(t *testing.T) {
	in := &StateTransferAck{Epoch: 9, Objects: 17}
	out := roundTrip(t, in).(*StateTransferAck)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestRoundTripOrderAndAck(t *testing.T) {
	in := &Order{Seq: 42, ObjectID: 7, Version: -12345, Payload: []byte("ordered")}
	out := roundTrip(t, in).(*Order)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
	ack := roundTrip(t, &OrderAck{Seq: 42}).(*OrderAck)
	if ack.Seq != 42 {
		t.Fatalf("ack seq = %d", ack.Seq)
	}
}

func TestRoundTripModeChange(t *testing.T) {
	in := &ModeChange{Epoch: 3, ObjectID: 9, Mode: 2, Seq: 17, EffectiveBound: 375 * time.Millisecond}
	out := roundTrip(t, in).(*ModeChange)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("ModeChange round-trip: got %+v, want %+v", out, in)
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	b := Encode(&Ping{Seq: 1, From: RolePrimary})
	b[0] ^= 0xFF
	if _, err := Decode(b); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	b := Encode(&Ping{Seq: 1, From: RolePrimary})
	b[2] = 99
	if _, err := Decode(b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	b := Encode(&Ping{Seq: 1, From: RolePrimary})
	b[3] = 0xEE
	if _, err := Decode(b); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := Encode(&Update{ObjectID: 3, Seq: 9, Version: 1, Payload: []byte("hello")})
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n]); err == nil {
			t.Fatalf("Decode accepted %d-byte prefix of %d-byte message", n, len(full))
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	b := append(Encode(&Ping{Seq: 1, From: RolePrimary}), 0x00)
	if _, err := Decode(b); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func TestDecodeRejectsOversizePayloadLength(t *testing.T) {
	b := Encode(&Update{ObjectID: 1, Seq: 1, Version: 1, Payload: []byte("x")})
	// The payload length prefix is the 4 bytes before the final payload
	// byte; forge it to a huge value.
	copy(b[len(b)-5:], []byte{0x7F, 0xFF, 0xFF, 0xFF})
	if _, err := Decode(b[:len(b)-1]); !errors.Is(err, ErrOversize) {
		t.Fatalf("err = %v, want ErrOversize", err)
	}
}

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(128))
		rng.Read(b)
		// Half the time, give it a valid header so body parsing runs.
		if i%2 == 0 && len(b) >= 4 {
			b[0], b[1] = 0x52, 0xB0
			b[2] = Version
			b[3] = byte(1 + rng.Intn(12))
		}
		_, _ = Decode(b) // must not panic
	}
}

func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(id uint32, seq uint64, version int64, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		in := &Update{ObjectID: id, Seq: seq, Version: version, Payload: payload}
		out, err := Decode(Encode(in))
		if err != nil {
			return false
		}
		u, ok := out.(*Update)
		return ok && u.ObjectID == id && u.Seq == seq && u.Version == version &&
			bytes.Equal(u.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodedPayloadIsACopy(t *testing.T) {
	b := Encode(&Update{ObjectID: 1, Seq: 1, Version: 1, Payload: []byte("abc")})
	m, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	u := m.(*Update)
	for i := range b {
		b[i] = 0
	}
	if string(u.Payload) != "abc" {
		t.Fatalf("payload aliases the input buffer: %q", u.Payload)
	}
}

func TestKindAndRoleStrings(t *testing.T) {
	if KindUpdate.String() != "Update" || Kind(0).String() != "Kind(0)" {
		t.Fatal("Kind.String mismatch")
	}
	if RolePrimary.String() != "primary" || Role(9).String() != "Role(9)" {
		t.Fatal("Role.String mismatch")
	}
}
