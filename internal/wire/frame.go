package wire

import (
	"encoding/binary"
	"errors"
	"sync"
)

// This file implements multi-message framing: one datagram carrying a
// batch of complete RTPB messages, each length-prefixed (modeled on the
// batched packet composition of nano's codec). The paper's decoupled
// transmission window makes batching semantically free — only the
// freshest image per object matters per slot — so the primary's send
// path coalesces every update pending for one peer into a single framed
// datagram per transmission slot, collapsing the per-update datagram and
// allocator costs that otherwise cap throughput.
//
// Frame layout after the standard RTPB header (magic, version,
// KindFrame):
//
//	count   uint16
//	count × (length uint32, message bytes)
//
// where each message is a complete RTPB encoding including its own
// header. Frames never nest: a frame inside a frame is a decode error,
// which keeps DecodeFrame non-recursive and bounds decode depth at two.

// Frame is a batch of messages traveling in one datagram.
type Frame struct {
	// Messages are the framed messages in transmission order.
	Messages []Message
}

// ErrNestedFrame is returned when a frame contains another frame.
var ErrNestedFrame = errors.New("wire: nested frame")

// MaxFrameMessages is the most messages one frame can carry (the count
// prefix is 16 bits).
const MaxFrameMessages = 1<<16 - 1

// WireKind implements Message.
func (*Frame) WireKind() Kind { return KindFrame }

func (m *Frame) appendBody(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.Messages)))
	for _, sub := range m.Messages {
		dst = appendFramed(dst, sub)
	}
	return dst
}

// appendFramed appends one length-prefixed complete message encoding.
func appendFramed(dst []byte, m Message) []byte {
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = AppendEncode(dst, m)
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

func (m *Frame) decodeBody(r *reader) error {
	n := int(r.uint16())
	if r.err != nil {
		return r.err
	}
	m.Messages = make([]Message, 0, min(n, 64))
	for i := 0; i < n; i++ {
		// A forged length prefix cannot force an allocation: it is checked
		// against the remaining datagram (int64 so a 4 GiB prefix cannot
		// wrap a 32-bit int), and take only slices the input.
		length := r.uint32()
		if r.err == nil && int64(length) > int64(len(r.buf)) {
			r.err = ErrTruncated
		}
		sub := r.take(int(length))
		if r.err != nil {
			return r.err
		}
		if len(sub) >= headerLen && Kind(sub[3]) == KindFrame {
			// Reject before recursing into Decode so a nested-frame chain
			// cannot grow the stack.
			return ErrNestedFrame
		}
		msg, err := Decode(sub)
		if err != nil {
			return err
		}
		m.Messages = append(m.Messages, msg)
	}
	return r.err
}

// AppendFrame appends a framed encoding of msgs to dst and returns the
// extended slice. It always emits the frame wrapper, even for zero or one
// message; the send path's FrameBuilder is the adaptive form that emits a
// bare message when only one is pending.
func AppendFrame(dst []byte, msgs ...Message) []byte {
	f := Frame{Messages: msgs}
	return AppendEncode(dst, &f)
}

// DecodeFrame parses a datagram that may be a frame or a bare message and
// returns the messages it carries, in order: the frame's batch, or the
// single message itself. This is the batch-aware receive entry point —
// a demux loop over its result handles framed and unframed traffic
// identically.
func DecodeFrame(b []byte) ([]Message, error) {
	m, err := Decode(b)
	if err != nil {
		return nil, err
	}
	if f, ok := m.(*Frame); ok {
		return f.Messages, nil
	}
	return []Message{m}, nil
}

// framePrefixLen is the RTPB header plus the 16-bit count.
const framePrefixLen = headerLen + 2

// FrameBuilder composes one outbound datagram incrementally with zero
// allocations in steady state: messages append into one reused buffer,
// and Datagram returns either the framed batch or — when exactly one
// message was appended — that message's bare encoding, so single-update
// slots stay byte-identical to the unbatched wire format.
//
// Builders are not safe for concurrent use. Acquire one from the pool,
// flush it, and release it (or keep a long-lived builder per peer and
// Reset between datagrams).
type FrameBuilder struct {
	buf   []byte
	count int
}

// NewFrameBuilder returns a ready builder with a pre-sized buffer.
func NewFrameBuilder() *FrameBuilder {
	b := &FrameBuilder{buf: make([]byte, 0, 2048)}
	b.Reset()
	return b
}

var builderPool = sync.Pool{New: func() any { return NewFrameBuilder() }}

// AcquireFrameBuilder takes a reset builder from the shared pool.
func AcquireFrameBuilder() *FrameBuilder {
	b := builderPool.Get().(*FrameBuilder)
	b.Reset()
	return b
}

// Release returns the builder to the pool. The builder (and any slice
// Datagram returned) must not be used afterwards. Builders grown past a
// megabyte are dropped instead, so one oversized batch cannot pin its
// buffer in the pool forever.
func (b *FrameBuilder) Release() {
	if cap(b.buf) > 1<<20 {
		return
	}
	builderPool.Put(b)
}

// Reset empties the builder, keeping its buffer.
func (b *FrameBuilder) Reset() {
	b.buf = b.buf[:0]
	b.buf = binary.BigEndian.AppendUint16(b.buf, Magic)
	b.buf = append(b.buf, Version, uint8(KindFrame), 0, 0)
	b.count = 0
}

// Append encodes one message into the builder.
func (b *FrameBuilder) Append(m Message) {
	b.buf = appendFramed(b.buf, m)
	b.count++
}

// AppendEncoded appends one already-encoded message (a complete RTPB
// encoding including its header). The broadcast path uses it to encode an
// update once and frame it for several peers without re-encoding.
func (b *FrameBuilder) AppendEncoded(enc []byte) {
	b.buf = binary.BigEndian.AppendUint32(b.buf, uint32(len(enc)))
	b.buf = append(b.buf, enc...)
	b.count++
}

// Count reports the number of messages appended since the last Reset.
func (b *FrameBuilder) Count() int { return b.count }

// Size reports the bytes the framed datagram would occupy now. The send
// path checks it against its frame byte budget before appending more.
func (b *FrameBuilder) Size() int { return len(b.buf) }

// Full reports whether the frame has reached its message-count capacity.
func (b *FrameBuilder) Full() bool { return b.count >= MaxFrameMessages }

// Datagram finalizes and returns the datagram bytes: nil when nothing was
// appended, the single message's bare encoding when one was (so a lone
// update costs no frame overhead and stays compatible with the unframed
// format), or the frame with its count patched in. The slice aliases the
// builder's buffer and is valid until the next Reset or Release.
func (b *FrameBuilder) Datagram() []byte {
	switch b.count {
	case 0:
		return nil
	case 1:
		return b.buf[framePrefixLen+4:]
	}
	binary.BigEndian.PutUint16(b.buf[headerLen:], uint16(b.count))
	return b.buf
}
