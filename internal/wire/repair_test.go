package wire

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func TestRoundTripJoinRequest(t *testing.T) {
	in := &JoinRequest{Epoch: 4, Addr: "standby:7000"}
	out := roundTrip(t, in).(*JoinRequest)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestRoundTripJoinRequestObserver(t *testing.T) {
	in := &JoinRequest{Epoch: 4, Addr: "obs1:7000", Observer: true}
	out := roundTrip(t, in).(*JoinRequest)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestRoundTripChainStatus(t *testing.T) {
	in := &ChainStatus{Epoch: 7, Depth: 3, Theta: 2500 * time.Microsecond}
	out := roundTrip(t, in).(*ChainStatus)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestRoundTripJoinRequestEmptyAddr(t *testing.T) {
	out := roundTrip(t, &JoinRequest{Epoch: 1}).(*JoinRequest)
	if out.Addr != "" {
		t.Fatalf("addr = %q, want empty", out.Addr)
	}
}

func TestRoundTripJoinAccept(t *testing.T) {
	in := &JoinAccept{
		Epoch: 3,
		Specs: []SpecEntry{
			{ObjectID: 1, Name: "pressure", Size: 64, Period: 20 * time.Millisecond,
				DeltaP: 25 * time.Millisecond, DeltaB: 200 * time.Millisecond},
			{ObjectID: 2, Name: "flow", Size: 32, Period: 40 * time.Millisecond,
				DeltaP: 50 * time.Millisecond, DeltaB: 400 * time.Millisecond},
		},
	}
	out := roundTrip(t, in).(*JoinAccept)
	if out.Epoch != in.Epoch || !reflect.DeepEqual(in.Specs, out.Specs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestRoundTripJoinAcceptEmpty(t *testing.T) {
	out := roundTrip(t, &JoinAccept{Epoch: 9}).(*JoinAccept)
	if len(out.Specs) != 0 {
		t.Fatalf("specs = %v, want none", out.Specs)
	}
}

func TestRoundTripStateDigest(t *testing.T) {
	in := &StateDigest{
		Epoch: 5,
		Entries: []DigestEntry{
			{ObjectID: 1, Epoch: 4, Seq: 100, Version: 123456789},
			{ObjectID: 2, Epoch: 5, Seq: 7, Version: -1},
		},
	}
	out := roundTrip(t, in).(*StateDigest)
	if out.Epoch != in.Epoch || !reflect.DeepEqual(in.Entries, out.Entries) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestRoundTripStateChunk(t *testing.T) {
	in := &StateChunk{
		Epoch: 6, Xfer: 2, Chunk: 3, Final: true,
		Entries: []StateEntry{
			{ObjectID: 1, Seq: 10, Version: 111, Name: "pressure", Size: 64,
				Period: 20 * time.Millisecond, DeltaP: 25 * time.Millisecond,
				DeltaB: 200 * time.Millisecond, Payload: []byte("42psi")},
			{ObjectID: 2, Seq: 20, Version: -222, Payload: nil},
		},
	}
	out := roundTrip(t, in).(*StateChunk)
	if out.Epoch != in.Epoch || out.Xfer != in.Xfer || out.Chunk != in.Chunk || out.Final != in.Final {
		t.Fatalf("header mismatch: %+v", out)
	}
	if len(out.Entries) != len(in.Entries) {
		t.Fatalf("entries = %d, want %d", len(out.Entries), len(in.Entries))
	}
	for i := range in.Entries {
		a, b := in.Entries[i], out.Entries[i]
		if a.ObjectID != b.ObjectID || a.Seq != b.Seq || a.Version != b.Version ||
			a.Name != b.Name || a.Size != b.Size || a.Period != b.Period ||
			a.DeltaP != b.DeltaP || a.DeltaB != b.DeltaB || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

// TestRoundTripStateTransferCarriesSpecs pins the regression that
// motivated extending StateEntry: the legacy full-table transfer must
// also deliver each object's spec, or a recruit that never saw the
// registrations ends up with spec-less placeholders that a later
// promotion silently drops.
func TestRoundTripStateTransferCarriesSpecs(t *testing.T) {
	in := &StateTransfer{
		Epoch: 2,
		Entries: []StateEntry{
			{ObjectID: 9, Seq: 1, Version: 55, Name: "altitude", Size: 128,
				Period: 40 * time.Millisecond, DeltaP: 50 * time.Millisecond,
				DeltaB: 250 * time.Millisecond, Payload: []byte("9km")},
		},
	}
	out := roundTrip(t, in).(*StateTransfer)
	got := out.Entries[0]
	if got.Name != "altitude" || got.Size != 128 || got.Period != 40*time.Millisecond ||
		got.DeltaP != 50*time.Millisecond || got.DeltaB != 250*time.Millisecond {
		t.Fatalf("spec fields lost: %+v", got)
	}
}

func TestRoundTripStateChunkAck(t *testing.T) {
	in := &StateChunkAck{Epoch: 6, Xfer: 2, Chunk: 3, Applied: 5}
	out := roundTrip(t, in).(*StateChunkAck)
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

// TestDecodeRejectsTruncatedRepairBodies truncates every new repair-cycle
// message at each possible length; Decode must reject all of them
// without panicking (the full encoding itself must decode).
func TestDecodeRejectsTruncatedRepairBodies(t *testing.T) {
	msgs := []Message{
		&JoinRequest{Epoch: 4, Addr: "standby:7000"},
		&JoinAccept{Epoch: 3, Specs: []SpecEntry{
			{ObjectID: 1, Name: "pressure", Size: 64, Period: 20 * time.Millisecond,
				DeltaP: 25 * time.Millisecond, DeltaB: 200 * time.Millisecond},
		}},
		&StateDigest{Epoch: 5, Entries: []DigestEntry{
			{ObjectID: 1, Epoch: 4, Seq: 100, Version: 42},
		}},
		&StateChunk{Epoch: 6, Xfer: 1, Chunk: 0, Final: true, Entries: []StateEntry{
			{ObjectID: 1, Seq: 10, Version: 111, Name: "p", Size: 8, Payload: []byte("x")},
		}},
		&StateChunkAck{Epoch: 6, Xfer: 1, Chunk: 0, Applied: 1},
		&ChainStatus{Epoch: 6, Depth: 2, Theta: time.Millisecond},
	}
	for _, m := range msgs {
		full := Encode(m)
		if _, err := Decode(full); err != nil {
			t.Fatalf("full %s does not decode: %v", m.WireKind(), err)
		}
		for cut := 0; cut < len(full); cut++ {
			if _, err := Decode(full[:cut]); err == nil {
				t.Fatalf("%s truncated to %d/%d bytes decoded without error",
					m.WireKind(), cut, len(full))
			}
		}
	}
}
