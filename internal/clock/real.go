package clock

import (
	"container/heap"
	"sync"
	"time"
)

// RealClock runs scheduled callbacks on a dedicated event-loop goroutine in
// wall-clock time. It preserves the serial execution model of SimClock: no
// two callbacks run concurrently, so protocol state needs no locking.
//
// Schedule/ScheduleAt/Cancel must be called from the loop goroutine (from
// inside a callback); external goroutines (e.g. a UDP reader) hand work to
// the loop with Post.
type RealClock struct {
	mu      sync.Mutex
	start   time.Time
	pending eventHeap
	posted  []func()
	seq     uint64
	wake    chan struct{}
	stop    chan struct{}
	done    chan struct{}
}

// NewReal starts a RealClock's event loop. Callers must Stop it when done.
func NewReal() *RealClock {
	r := &RealClock{
		start: time.Now(),
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go r.loop()
	return r
}

var _ Clock = (*RealClock)(nil)
var _ MonotonicClock = (*RealClock)(nil)

// Now reports the current wall-clock time.
func (r *RealClock) Now() time.Time { return time.Now() }

// Monotonic reports time elapsed since the clock was started, measured on
// the host's monotonic timebase (time.Since uses the monotonic reading
// captured at start, so wall-clock steps do not affect it).
func (r *RealClock) Monotonic() time.Duration { return time.Since(r.start) }

// Schedule arranges for fn to run d from now on the loop goroutine.
func (r *RealClock) Schedule(d time.Duration, fn func()) *Event {
	return r.ScheduleAt(time.Now().Add(d), fn)
}

// ScheduleAt arranges for fn to run at wall-clock time t.
func (r *RealClock) ScheduleAt(t time.Time, fn func()) *Event {
	r.mu.Lock()
	r.seq++
	e := &Event{when: t, seq: r.seq, fn: fn}
	heap.Push(&r.pending, e)
	r.mu.Unlock()
	r.kick()
	return e
}

// Post enqueues fn to run as soon as possible on the loop goroutine. It is
// safe to call from any goroutine.
func (r *RealClock) Post(fn func()) {
	r.mu.Lock()
	r.posted = append(r.posted, fn)
	r.mu.Unlock()
	r.kick()
}

// Stop shuts down the event loop and waits for it to exit. Pending events
// are discarded.
func (r *RealClock) Stop() {
	select {
	case <-r.stop:
		// Already stopped.
	default:
		close(r.stop)
	}
	<-r.done
}

func (r *RealClock) kick() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *RealClock) loop() {
	defer close(r.done)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		// Drain posted work first so Post has priority over timers.
		r.mu.Lock()
		posted := r.posted
		r.posted = nil
		r.mu.Unlock()
		for _, fn := range posted {
			fn()
		}

		// Fire every due event.
		for {
			r.mu.Lock()
			var next *Event
			if len(r.pending) > 0 {
				next = r.pending[0]
				if next.cancel || !next.when.After(time.Now()) {
					heap.Pop(&r.pending)
				} else {
					next = nil
				}
			}
			r.mu.Unlock()
			if next == nil {
				break
			}
			if !next.cancel {
				next.fn()
			}
		}

		// Sleep until the next event, a post, or shutdown.
		r.mu.Lock()
		wait := time.Hour
		if len(r.posted) > 0 {
			wait = 0
		} else if len(r.pending) > 0 {
			wait = time.Until(r.pending[0].when)
			if wait < 0 {
				wait = 0
			}
		}
		r.mu.Unlock()
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-r.stop:
			return
		case <-r.wake:
		case <-timer.C:
		}
	}
}
