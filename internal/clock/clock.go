// Package clock provides the time substrate for the RTPB replication
// service. Every component in this repository schedules work against the
// Clock interface rather than the standard library timers, which lets the
// identical protocol code run either in real time (RealClock, used by the
// cmd/ daemons) or in deterministic virtual time (SimClock, used by the
// test suite and the benchmark harness that regenerates the paper's
// figures).
//
// Both implementations execute scheduled callbacks serially on a single
// logical executor, so protocol code never needs internal locking: the
// clock is the event loop.
package clock

import "time"

// Clock schedules callbacks to run at (virtual or real) points in time.
// Callbacks run serially: no two callbacks scheduled on the same Clock ever
// execute concurrently.
type Clock interface {
	// Now reports the clock's current time.
	Now() time.Time

	// Schedule arranges for fn to run d from now. A non-positive d runs fn
	// as soon as possible. The returned event can be cancelled.
	Schedule(d time.Duration, fn func()) *Event

	// ScheduleAt arranges for fn to run at time t. A t in the past runs fn
	// as soon as possible.
	ScheduleAt(t time.Time, fn func()) *Event

	// Post runs fn on the clock's executor as soon as possible. It is the
	// only Clock method that is safe to call from outside the executor
	// (for example from a network receive goroutine).
	Post(fn func())
}

// Event is a handle to a scheduled callback.
type Event struct {
	when    time.Time
	seq     uint64
	fn      func()
	cancel  bool
	index   int // heap index, -1 once popped
	onAbort func(*Event)
}

// When reports the time the event is scheduled to fire.
func (e *Event) When() time.Time { return e.when }

// Cancel prevents the event's callback from running. It reports whether the
// event was still pending. Cancel must be called from the clock's executor
// (i.e. from inside another callback), matching the serial execution model.
func (e *Event) Cancel() bool {
	if e == nil || e.cancel || e.index == -1 {
		return false
	}
	e.cancel = true
	if e.onAbort != nil {
		e.onAbort(e)
	}
	return true
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.cancel }

// eventHeap orders events by (when, seq) so that events scheduled for the
// same instant fire in scheduling order.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
