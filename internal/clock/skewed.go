package clock

import (
	"math"
	"time"
)

// MonotonicClock is implemented by clocks that expose an elapsed-time
// reading in the spirit of CLOCK_MONOTONIC: immune to offset changes and
// step jumps of the wall-clock reading, but still subject to oscillator
// drift. Components that measure elapsed time (failure-detector silence,
// RTO timers) should prefer this reading over differencing Now() values,
// which a wall-clock step can inflate or run backwards.
type MonotonicClock interface {
	// Monotonic reports time elapsed on the clock's monotonic timebase
	// since an arbitrary fixed origin. Successive readings never decrease.
	Monotonic() time.Duration
}

// Monotonic returns clk's monotonic reading when the clock provides one.
// The boolean reports whether it does; callers without one fall back to
// wall-clock differencing.
func Monotonic(clk Clock) (time.Duration, bool) {
	if m, ok := clk.(MonotonicClock); ok {
		return m.Monotonic(), true
	}
	return 0, false
}

// Monotonic reports virtual time elapsed since SimEpoch.
func (s *SimClock) Monotonic() time.Duration { return s.now.Sub(SimEpoch) }

var _ MonotonicClock = (*SimClock)(nil)

// SkewedClock wraps a base Clock with a per-node faulty timebase: a
// runtime-adjustable offset, step jumps, and an oscillator drift rate in
// parts per million. It models how real clock faults present to software:
//
//   - Offset and Step move only the wall-clock reading (Now). Armed
//     timers keep their base-time firing points and the monotonic reading
//     is unaffected, matching CLOCK_REALTIME vs CLOCK_MONOTONIC and timer
//     semantics on a stepped host.
//   - Drift affects everything — Now, Monotonic, and timer durations —
//     because a fast or slow oscillator underlies them all. A node
//     drifting at +10000 ppm sees its 50 ms heartbeat interval elapse in
//     49.5 ms of true time.
//
// Now is latched to be non-decreasing, so a negative step parks the
// reported time until the base clock catches up rather than running it
// backwards. All methods must be called from the base clock's executor;
// the wrapper is deterministic given the base clock and the fault
// sequence, so seeded chaos runs replay byte-identically.
type SkewedClock struct {
	base     Clock
	offset   time.Duration // wall-clock offset, moved by SetOffset/Step
	driftPPM float64       // current oscillator rate error
	driftAt  time.Time     // base instant the current rate took effect
	drift    time.Duration // drift accrued before driftAt under prior rates
	floor    time.Time     // monotone latch for Now
	hasFloor bool
}

// NewSkewed wraps base in an initially fault-free SkewedClock.
func NewSkewed(base Clock) *SkewedClock {
	return &SkewedClock{base: base, driftAt: base.Now()}
}

var _ Clock = (*SkewedClock)(nil)
var _ MonotonicClock = (*SkewedClock)(nil)

// totalDrift reports drift accrued up to base instant t.
func (k *SkewedClock) totalDrift(t time.Time) time.Duration {
	d := k.drift
	if k.driftPPM != 0 {
		d += time.Duration(float64(t.Sub(k.driftAt)) * k.driftPPM * 1e-6)
	}
	return d
}

// Now reports the node's faulty wall-clock reading: base time plus offset
// plus accrued drift, latched to never decrease.
func (k *SkewedClock) Now() time.Time {
	b := k.base.Now()
	t := b.Add(k.offset + k.totalDrift(b))
	if k.hasFloor && t.Before(k.floor) {
		return k.floor
	}
	k.floor = t
	k.hasFloor = true
	return t
}

// Monotonic reports elapsed time on the node's oscillator: immune to
// offset and steps, but carrying drift.
func (k *SkewedClock) Monotonic() time.Duration {
	b := k.base.Now()
	m, ok := Monotonic(k.base)
	if !ok {
		m = b.Sub(SimEpoch)
	}
	return m + k.totalDrift(b)
}

// toBase converts a duration measured on this node's oscillator into base
// time: a fast clock (positive ppm) sees d elapse in less true time.
func (k *SkewedClock) toBase(d time.Duration) time.Duration {
	if k.driftPPM == 0 || d <= 0 {
		return d
	}
	return time.Duration(math.Round(float64(d) / (1 + k.driftPPM*1e-6)))
}

// Schedule arranges for fn to run after d elapses on this node's faulty
// timebase. The firing point is fixed in base time when armed, so a later
// Step does not move pending timers.
func (k *SkewedClock) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.base.Schedule(k.toBase(d), fn)
}

// ScheduleAt arranges for fn to run when this node's wall clock reads t.
func (k *SkewedClock) ScheduleAt(t time.Time, fn func()) *Event {
	return k.Schedule(t.Sub(k.Now()), fn)
}

// Post runs fn on the base clock's executor as soon as possible.
func (k *SkewedClock) Post(fn func()) { k.base.Post(fn) }

// SetOffset sets the absolute wall-clock offset.
func (k *SkewedClock) SetOffset(o time.Duration) { k.offset = o }

// Step jumps the wall clock by d (negative steps it back; the Now latch
// then holds the reading until base time catches up).
func (k *SkewedClock) Step(d time.Duration) { k.offset += d }

// SetDrift changes the oscillator rate error, folding drift accrued under
// the previous rate into the running total so readings stay continuous.
func (k *SkewedClock) SetDrift(ppm float64) {
	b := k.base.Now()
	k.drift = k.totalDrift(b)
	k.driftAt = b
	k.driftPPM = ppm
}

// Offset reports the configured wall-clock offset (steps included, drift
// excluded).
func (k *SkewedClock) Offset() time.Duration { return k.offset }

// DriftPPM reports the current oscillator rate error.
func (k *SkewedClock) DriftPPM() float64 { return k.driftPPM }

// TrueOffset reports the node's total wall-clock error right now — offset
// plus accrued drift — i.e. skewed Now minus base Now. Chaos invariant
// checkers use it as ground truth when judging whether an estimator's
// error bound was honest.
func (k *SkewedClock) TrueOffset() time.Duration {
	b := k.base.Now()
	return k.offset + k.totalDrift(b)
}
