package clock

import (
	"flag"
	"math/rand"
	"testing"
	"time"
)

// seedFlag shifts the property tests' fixed RNG seeds so alternative
// fault sequences can be explored on demand (go test ./internal/clock
// -seed=N); the default 0 keeps runs byte-identical to the committed
// seeds.
var seedFlag = flag.Int64("seed", 0, "offset added to the property tests' fixed RNG seeds")

func propRand(base int64) *rand.Rand { return rand.New(rand.NewSource(base + *seedFlag)) }

func TestSkewedClockNoFaultsIsTransparent(t *testing.T) {
	sim := NewSim()
	k := NewSkewed(sim)
	if !k.Now().Equal(sim.Now()) {
		t.Fatalf("Now() = %v, want base %v", k.Now(), sim.Now())
	}
	fired := false
	k.Schedule(10*time.Millisecond, func() { fired = true })
	sim.RunFor(10 * time.Millisecond)
	if !fired {
		t.Fatal("timer did not fire at base time with zero skew")
	}
	if got := k.Monotonic(); got != 10*time.Millisecond {
		t.Fatalf("Monotonic() = %v, want 10ms", got)
	}
}

func TestSkewedClockOffsetMovesNowNotTimers(t *testing.T) {
	sim := NewSim()
	k := NewSkewed(sim)
	fired := false
	k.Schedule(20*time.Millisecond, func() { fired = true })
	k.Step(1 * time.Second)
	if got := k.Now().Sub(sim.Now()); got != 1*time.Second {
		t.Fatalf("Now skew = %v, want 1s", got)
	}
	// The pending timer keeps its base-time firing point.
	sim.RunFor(19 * time.Millisecond)
	if fired {
		t.Fatal("timer fired early after a forward step")
	}
	sim.RunFor(1 * time.Millisecond)
	if !fired {
		t.Fatal("timer did not fire at its base-time point")
	}
	if got := k.Monotonic(); got != 20*time.Millisecond {
		t.Fatalf("Monotonic() = %v after step, want 20ms (steps must not move it)", got)
	}
}

func TestSkewedClockNegativeStepLatchesNow(t *testing.T) {
	sim := NewSim()
	k := NewSkewed(sim)
	sim.RunFor(100 * time.Millisecond)
	before := k.Now()
	k.Step(-50 * time.Millisecond)
	if got := k.Now(); got.Before(before) {
		t.Fatalf("Now() = %v ran backwards past latch %v", got, before)
	}
	// Base advances 49ms: still parked at the latch.
	sim.RunFor(49 * time.Millisecond)
	if got := k.Now(); !got.Equal(before) {
		t.Fatalf("Now() = %v, want parked at %v", got, before)
	}
	// One more ms and the skewed reading passes the latch.
	sim.RunFor(2 * time.Millisecond)
	if got := k.Now(); !got.After(before) {
		t.Fatalf("Now() = %v, want past latch %v", got, before)
	}
}

func TestSkewedClockDriftAffectsNowMonotonicAndTimers(t *testing.T) {
	sim := NewSim()
	k := NewSkewed(sim)
	k.SetDrift(100_000) // +10%: a very fast oscillator
	fired := sim.Now()
	k.Schedule(110*time.Millisecond, func() { fired = sim.Now() })
	sim.RunFor(1 * time.Second)
	// 110ms of skewed time elapses in 100ms of base time.
	if got := fired.Sub(SimEpoch); got != 100*time.Millisecond {
		t.Fatalf("timer fired at base +%v, want +100ms", got)
	}
	if got := k.Now().Sub(sim.Now()); got != 100*time.Millisecond {
		t.Fatalf("drift accrued on Now = %v, want 100ms after 1s at +10%%", got)
	}
	if got := k.Monotonic(); got != 1100*time.Millisecond {
		t.Fatalf("Monotonic() = %v, want 1.1s (drift applies)", got)
	}
	if got := k.TrueOffset(); got != 100*time.Millisecond {
		t.Fatalf("TrueOffset() = %v, want 100ms", got)
	}
}

func TestSkewedClockSetDriftFoldsAccrual(t *testing.T) {
	sim := NewSim()
	k := NewSkewed(sim)
	k.SetDrift(10_000) // +1%
	sim.RunFor(1 * time.Second)
	k.SetDrift(0)
	acc := k.TrueOffset()
	if acc != 10*time.Millisecond {
		t.Fatalf("accrued drift = %v, want 10ms", acc)
	}
	sim.RunFor(1 * time.Second)
	if got := k.TrueOffset(); got != acc {
		t.Fatalf("TrueOffset() = %v after rate 0, want frozen at %v", got, acc)
	}
}

// TestPeriodicSurvivesWallClockSteps pins the Periodic re-anchoring fix:
// drift-free release instants are stored in wall-clock terms, so without
// re-anchoring a backward step parks the reading and stretches the
// cadence (50ms, 100ms, 150ms, ... between ticks), while a forward step
// fires a catch-up storm of immediate ticks. Either way a heartbeat or
// update task riding the Periodic misbehaves badly. After each step the
// cadence must stay within one tick of nominal.
func TestPeriodicSurvivesWallClockSteps(t *testing.T) {
	sim := NewSim()
	k := NewSkewed(sim)
	ticks := 0
	p := NewPeriodic(k, 0, 50*time.Millisecond, func() { ticks++ })
	defer p.Stop()
	sim.RunFor(time.Second)
	if ticks < 20 || ticks > 21 {
		t.Fatalf("baseline ticks = %d over 1s at 50ms, want 20-21", ticks)
	}

	k.Step(-5 * time.Second)
	before := ticks
	sim.RunFor(time.Second)
	if got := ticks - before; got < 19 || got > 21 {
		t.Fatalf("ticks = %d in the 1s after a backward step, want ~20 (cadence collapse)", got)
	}

	k.Step(10 * time.Second)
	before = ticks
	sim.RunFor(time.Second)
	if got := ticks - before; got < 19 || got > 23 {
		t.Fatalf("ticks = %d in the 1s after a forward step, want ~20 (tick storm)", got)
	}
}

// TestSkewedClockPropertyMonotoneAndOrdered drives a SkewedClock through
// random offset/drift/step sequences and asserts the two invariants every
// consumer relies on: reported time never decreases, and timers fire in
// the order (and at the base instants) they were scheduled for.
func TestSkewedClockPropertyMonotoneAndOrdered(t *testing.T) {
	rng := propRand(8008)
	for trial := 0; trial < 50; trial++ {
		sim := NewSim()
		k := NewSkewed(sim)
		var last time.Time
		var firedSeq []int
		next := 0
		pending := 0
		for step := 0; step < 200; step++ {
			switch rng.Intn(5) {
			case 0:
				k.Step(time.Duration(rng.Intn(200)-100) * time.Millisecond)
			case 1:
				k.SetDrift(float64(rng.Intn(100_000) - 50_000)) // ±5%
			case 2:
				seq := next
				next++
				pending++
				k.Schedule(time.Duration(rng.Intn(50))*time.Millisecond, func() {
					firedSeq = append(firedSeq, seq)
					pending--
				})
			default:
				sim.RunFor(time.Duration(rng.Intn(30)) * time.Millisecond)
			}
			now := k.Now()
			if now.Before(last) {
				t.Fatalf("trial %d step %d: Now() ran backwards: %v < %v", trial, step, now, last)
			}
			last = now
			mono := k.Monotonic()
			sim.RunFor(0)
			if again := k.Monotonic(); again < mono {
				t.Fatalf("trial %d step %d: Monotonic() ran backwards: %v < %v", trial, step, again, mono)
			}
		}
		sim.RunFor(10 * time.Second)
		if pending != 0 {
			t.Fatalf("trial %d: %d timers never fired", trial, pending)
		}
		// Same-delay timers scheduled at different walk points may
		// legitimately interleave; what must hold is that no timer
		// scheduled strictly later for a strictly later base instant fired
		// first. With the conversion fixing base-time firing points at
		// arming, the sim heap's (when, seq) order guarantees it; assert
		// all fired exactly once.
		seen := make(map[int]bool, len(firedSeq))
		for _, s := range firedSeq {
			if seen[s] {
				t.Fatalf("trial %d: timer %d fired twice", trial, s)
			}
			seen[s] = true
		}
		if len(seen) != next {
			t.Fatalf("trial %d: fired %d distinct timers, want %d", trial, len(seen), next)
		}
	}
}

// TestSkewedClockDeterministicUnderSeed replays the same fault sequence
// twice and asserts identical observable traces — the property the chaos
// harness's byte-identical replay rests on.
func TestSkewedClockDeterministicUnderSeed(t *testing.T) {
	run := func() []time.Time {
		rng := rand.New(rand.NewSource(42))
		sim := NewSim()
		k := NewSkewed(sim)
		var trace []time.Time
		for i := 0; i < 100; i++ {
			switch rng.Intn(4) {
			case 0:
				k.Step(time.Duration(rng.Intn(100)-50) * time.Millisecond)
			case 1:
				k.SetDrift(float64(rng.Intn(20_000) - 10_000))
			case 2:
				k.Schedule(time.Duration(rng.Intn(40))*time.Millisecond, func() {
					trace = append(trace, k.Now())
				})
			default:
				sim.RunFor(time.Duration(rng.Intn(20)) * time.Millisecond)
			}
			trace = append(trace, k.Now())
		}
		sim.RunFor(time.Second)
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("trace[%d] differs: %v vs %v", i, a[i], b[i])
		}
	}
}
