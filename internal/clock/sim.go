package clock

import (
	"container/heap"
	"time"
)

// SimClock is a discrete-event virtual-time clock. Time advances only when
// Run, RunFor, RunUntil, or Step is called, jumping directly to the next
// scheduled event. All callbacks run on the caller's goroutine, so a
// simulation driven by a SimClock is fully deterministic.
//
// The zero value is not usable; construct with NewSim.
type SimClock struct {
	now     time.Time
	seq     uint64
	pending eventHeap
	running bool
}

// SimEpoch is the instant at which new SimClocks start. Using a fixed,
// round epoch makes virtual timestamps in traces and test failures easy to
// read.
var SimEpoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// NewSim returns a SimClock positioned at SimEpoch.
func NewSim() *SimClock {
	return &SimClock{now: SimEpoch}
}

var _ Clock = (*SimClock)(nil)

// Now reports the current virtual time.
func (s *SimClock) Now() time.Time { return s.now }

// Schedule arranges for fn to run d from now in virtual time.
func (s *SimClock) Schedule(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt arranges for fn to run at virtual time t.
func (s *SimClock) ScheduleAt(t time.Time, fn func()) *Event {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	e := &Event{when: t, seq: s.seq, fn: fn}
	heap.Push(&s.pending, e)
	return e
}

// Post runs fn at the current virtual time, after already-pending events at
// this instant.
func (s *SimClock) Post(fn func()) { s.Schedule(0, fn) }

// Len reports the number of pending (non-cancelled) events.
func (s *SimClock) Len() int {
	n := 0
	for _, e := range s.pending {
		if !e.cancel {
			n++
		}
	}
	return n
}

// Step runs the single next pending event, advancing virtual time to it.
// It reports whether an event ran.
func (s *SimClock) Step() bool {
	for len(s.pending) > 0 {
		e := heap.Pop(&s.pending).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.when
		e.fn()
		return true
	}
	return false
}

// RunUntil runs all events scheduled at or before t, then advances the
// clock to exactly t. It returns the number of events run.
func (s *SimClock) RunUntil(t time.Time) int {
	n := 0
	for len(s.pending) > 0 {
		next := s.pending[0]
		if next.cancel {
			heap.Pop(&s.pending)
			continue
		}
		if next.when.After(t) {
			break
		}
		s.Step()
		n++
	}
	if s.now.Before(t) {
		s.now = t
	}
	return n
}

// RunFor advances the clock by d, running every event that falls due.
func (s *SimClock) RunFor(d time.Duration) int {
	return s.RunUntil(s.now.Add(d))
}

// Run executes events until none remain or maxEvents have run. A
// maxEvents of 0 means no limit. It returns the number of events run.
// Protocols with self-rescheduling timers never drain, so simulations of
// live systems should prefer RunFor/RunUntil.
func (s *SimClock) Run(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}
