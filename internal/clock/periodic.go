package clock

import "time"

// Periodic runs a callback at a fixed period on a Clock. Firing times are
// drift-free: the k-th invocation is released at start + k*period
// regardless of how long earlier callbacks took, matching the periodic task
// model of the paper (release instants I_k with nominal separation p_i).
type Periodic struct {
	clk     Clock
	period  time.Duration
	fn      func()
	event   *Event
	next    time.Time
	stopped bool
}

// NewPeriodic schedules fn to run every period, with the first invocation
// after offset. It panics if period is not positive, since a zero-period
// task would wedge the event loop; periods are configuration, so this is a
// programming error rather than a runtime condition.
func NewPeriodic(clk Clock, offset, period time.Duration, fn func()) *Periodic {
	if period <= 0 {
		panic("clock: non-positive period for periodic task")
	}
	p := &Periodic{clk: clk, period: period, fn: fn}
	p.next = clk.Now().Add(offset)
	p.event = clk.ScheduleAt(p.next, p.tick)
	return p
}

func (p *Periodic) tick() {
	if p.stopped {
		return
	}
	p.next = p.next.Add(p.period)
	// Re-anchor across wall-clock steps. Drift-free release instants
	// assume the clock's reading advances continuously; on a faulty
	// timebase (SkewedClock) a backward step parks the reading, so the
	// stored next instant runs ever further ahead of it and the cadence
	// collapses toward zero ticks, while a forward step leaves next ever
	// further behind and every tick fires immediately (a tick storm).
	// When next deviates from now by more than one full period in either
	// direction, re-anchor it one period out. On a continuous clock the
	// deviation never exceeds a period (late ticks still catch up
	// drift-free), so releases stay exactly start + k·period.
	if d := p.next.Sub(p.clk.Now()); d > p.period || d <= -p.period {
		p.next = p.clk.Now().Add(p.period)
	}
	p.event = p.clk.ScheduleAt(p.next, p.tick)
	p.fn()
}

// SetPeriod changes the period for subsequent invocations. The currently
// scheduled invocation keeps its release time.
func (p *Periodic) SetPeriod(d time.Duration) {
	if d <= 0 {
		panic("clock: non-positive period for periodic task")
	}
	p.period = d
}

// Period reports the current period.
func (p *Periodic) Period() time.Duration { return p.period }

// Stop cancels all future invocations. Safe to call more than once.
func (p *Periodic) Stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.event.Cancel()
}

// Stopped reports whether Stop has been called.
func (p *Periodic) Stopped() bool { return p.stopped }
