package clock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestRealClockRunsScheduledEvent(t *testing.T) {
	r := NewReal()
	defer r.Stop()
	done := make(chan struct{})
	r.Post(func() {
		r.Schedule(5*time.Millisecond, func() { close(done) })
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("scheduled event did not fire")
	}
}

func TestRealClockPostFromManyGoroutines(t *testing.T) {
	r := NewReal()
	defer r.Stop()
	const n = 100
	var ran atomic.Int32
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go r.Post(func() {
			if ran.Add(1) == n {
				close(done)
			}
		})
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("only %d/%d posted callbacks ran", ran.Load(), n)
	}
}

func TestRealClockSerialExecution(t *testing.T) {
	r := NewReal()
	defer r.Stop()
	// If callbacks overlapped, the unsynchronized counter below would race
	// (and fail under -race) or lose increments.
	counter := 0
	done := make(chan struct{})
	const n = 50
	for i := 0; i < n; i++ {
		go r.Post(func() {
			counter++
			if counter == n {
				close(done)
			}
		})
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("counter = %d, want %d", counter, n)
	}
}

func TestRealClockOrderingOfTimers(t *testing.T) {
	r := NewReal()
	defer r.Stop()
	var got []int
	done := make(chan struct{})
	r.Post(func() {
		r.Schedule(30*time.Millisecond, func() {
			got = append(got, 2)
			close(done)
		})
		r.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timers did not fire")
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("firing order = %v, want [1 2]", got)
	}
}

func TestRealClockCancel(t *testing.T) {
	r := NewReal()
	defer r.Stop()
	fired := make(chan struct{}, 1)
	done := make(chan struct{})
	r.Post(func() {
		e := r.Schedule(50*time.Millisecond, func() { fired <- struct{}{} })
		e.Cancel()
		r.Schedule(100*time.Millisecond, func() { close(done) })
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sentinel event did not fire")
	}
	select {
	case <-fired:
		t.Fatal("cancelled event fired")
	default:
	}
}

func TestRealClockStopIsIdempotent(t *testing.T) {
	r := NewReal()
	r.Stop()
	r.Stop()
}
