package clock

import (
	"testing"
	"time"
)

func TestSimClockStartsAtEpoch(t *testing.T) {
	s := NewSim()
	if !s.Now().Equal(SimEpoch) {
		t.Fatalf("Now() = %v, want %v", s.Now(), SimEpoch)
	}
}

func TestSimClockScheduleOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
}

func TestSimClockSameInstantFIFO(t *testing.T) {
	s := NewSim()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run(0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order = %v, want ascending", got)
		}
	}
}

func TestSimClockTimeAdvancesToEvent(t *testing.T) {
	s := NewSim()
	var at time.Time
	s.Schedule(42*time.Millisecond, func() { at = s.Now() })
	s.Run(0)
	if want := SimEpoch.Add(42 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback saw Now() = %v, want %v", at, want)
	}
}

func TestSimClockRunUntilAdvancesExactly(t *testing.T) {
	s := NewSim()
	fired := false
	s.Schedule(100*time.Millisecond, func() { fired = true })
	s.RunUntil(SimEpoch.Add(50 * time.Millisecond))
	if fired {
		t.Fatal("event at 100ms fired during RunUntil(50ms)")
	}
	if want := SimEpoch.Add(50 * time.Millisecond); !s.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", s.Now(), want)
	}
	s.RunFor(50 * time.Millisecond)
	if !fired {
		t.Fatal("event at 100ms did not fire by 100ms")
	}
}

func TestSimClockCancel(t *testing.T) {
	s := NewSim()
	fired := false
	e := s.Schedule(10*time.Millisecond, func() { fired = true })
	if !e.Cancel() {
		t.Fatal("Cancel() = false for pending event")
	}
	if e.Cancel() {
		t.Fatal("second Cancel() = true, want false")
	}
	s.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSimClockCancelFromCallback(t *testing.T) {
	s := NewSim()
	fired := false
	e := s.Schedule(20*time.Millisecond, func() { fired = true })
	s.Schedule(10*time.Millisecond, func() { e.Cancel() })
	s.Run(0)
	if fired {
		t.Fatal("event cancelled by earlier callback still fired")
	}
}

func TestSimClockScheduleInPastClampsToNow(t *testing.T) {
	s := NewSim()
	s.RunFor(time.Second)
	var at time.Time
	s.ScheduleAt(SimEpoch, func() { at = s.Now() })
	s.Run(0)
	if want := SimEpoch.Add(time.Second); !at.Equal(want) {
		t.Fatalf("past event ran at %v, want clamped to %v", at, want)
	}
}

func TestSimClockNestedScheduling(t *testing.T) {
	s := NewSim()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			s.Schedule(time.Millisecond, recurse)
		}
	}
	s.Schedule(time.Millisecond, recurse)
	s.Run(0)
	if depth != 5 {
		t.Fatalf("nested scheduling depth = %d, want 5", depth)
	}
	if want := SimEpoch.Add(5 * time.Millisecond); !s.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", s.Now(), want)
	}
}

func TestSimClockRunMaxEvents(t *testing.T) {
	s := NewSim()
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	if n := s.Run(3); n != 3 {
		t.Fatalf("Run(3) = %d, want 3", n)
	}
	if count != 3 {
		t.Fatalf("ran %d events, want 3", count)
	}
}

func TestSimClockLenSkipsCancelled(t *testing.T) {
	s := NewSim()
	e := s.Schedule(time.Millisecond, func() {})
	s.Schedule(time.Millisecond, func() {})
	e.Cancel()
	if n := s.Len(); n != 1 {
		t.Fatalf("Len() = %d, want 1", n)
	}
}

func TestSimClockPostRunsAtCurrentInstant(t *testing.T) {
	s := NewSim()
	var at time.Time
	s.RunFor(7 * time.Millisecond)
	s.Post(func() { at = s.Now() })
	s.Run(0)
	if want := SimEpoch.Add(7 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("posted callback ran at %v, want %v", at, want)
	}
}

func TestPeriodicDriftFree(t *testing.T) {
	s := NewSim()
	var fires []time.Duration
	p := NewPeriodic(s, 0, 10*time.Millisecond, func() {
		fires = append(fires, s.Now().Sub(SimEpoch))
	})
	s.RunFor(55 * time.Millisecond)
	p.Stop()
	want := []time.Duration{0, 10, 20, 30, 40, 50}
	if len(fires) != len(want) {
		t.Fatalf("fired %d times, want %d: %v", len(fires), len(want), fires)
	}
	for i, w := range want {
		if fires[i] != w*time.Millisecond {
			t.Fatalf("fire %d at %v, want %v", i, fires[i], w*time.Millisecond)
		}
	}
}

func TestPeriodicOffset(t *testing.T) {
	s := NewSim()
	var first time.Duration = -1
	p := NewPeriodic(s, 5*time.Millisecond, 10*time.Millisecond, func() {
		if first < 0 {
			first = s.Now().Sub(SimEpoch)
		}
	})
	s.RunFor(30 * time.Millisecond)
	p.Stop()
	if first != 5*time.Millisecond {
		t.Fatalf("first fire at %v, want 5ms", first)
	}
}

func TestPeriodicStop(t *testing.T) {
	s := NewSim()
	count := 0
	p := NewPeriodic(s, 0, 10*time.Millisecond, func() { count++ })
	s.RunFor(25 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	at := count
	s.RunFor(100 * time.Millisecond)
	if count != at {
		t.Fatalf("periodic fired %d more times after Stop", count-at)
	}
	if !p.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestPeriodicSetPeriod(t *testing.T) {
	s := NewSim()
	var fires []time.Duration
	p := NewPeriodic(s, 0, 10*time.Millisecond, func() {
		fires = append(fires, s.Now().Sub(SimEpoch))
	})
	s.RunFor(15 * time.Millisecond) // fires at 0, 10
	p.SetPeriod(20 * time.Millisecond)
	s.RunFor(50 * time.Millisecond) // next at 20 (already scheduled), then 40, 60
	p.Stop()
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 60 * time.Millisecond}
	if len(fires) != len(want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
}

func TestPeriodicPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPeriodic(period=0) did not panic")
		}
	}()
	NewPeriodic(NewSim(), 0, 0, func() {})
}
