package durable

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"
)

// TestKillMidWriteRecovery re-executes the test binary as a child that
// appends records as fast as it can, SIGKILLs it mid-write, and then
// recovers the directory. This is the one test that exercises a real
// unclean process death — buffered bytes lost, possibly a partially
// written record at the tail — rather than an injected simulation of
// one. Recovery must not error, and everything it does recover must be
// a consistent prefix of what the child acknowledged writing.
func TestKillMidWriteRecovery(t *testing.T) {
	if dir := os.Getenv("DURABLE_KILL_DIR"); dir != "" {
		killChild(dir)
		return
	}
	if testing.Short() {
		t.Skip("skipping subprocess kill test in -short mode")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "TestKillMidWriteRecovery$", "-test.v")
	cmd.Env = append(os.Environ(), "DURABLE_KILL_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	// Wait until the child reports progress, then kill it mid-stream.
	buf := make([]byte, 64)
	if _, err := stdout.Read(buf); err != nil {
		t.Fatalf("child never reported progress: %v", err)
	}
	time.Sleep(50 * time.Millisecond) // let it get deep into appending
	cmd.Process.Kill()
	cmd.Wait()

	st, rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover after SIGKILL: %v", err)
	}
	if len(st.Objects) != 1 || st.Objects[0].Name != "killme" {
		t.Fatalf("spec not recovered: %+v", st.Objects)
	}
	o := st.Objects[0]
	if !o.HasData {
		t.Fatal("no applied value survived the kill")
	}
	// The recovered value must match its seq: a torn tail may lose the
	// newest records but never mix two of them together.
	want := fmt.Sprintf("value-%d", o.Seq)
	if string(o.Value) != want {
		t.Fatalf("recovered value %q inconsistent with seq %d", o.Value, o.Seq)
	}
	t.Logf("recovered to seq %d after kill (%+v)", o.Seq, rs)
}

// killChild is the re-executed child: it appends forever with
// per-batch fsync until killed. It prints one line immediately so the
// parent knows the spec record is down.
func killChild(dir string) {
	l, err := Open(Config{Dir: dir, SegmentBytes: 16 << 10})
	if err != nil {
		fmt.Println("open failed:", err)
		os.Exit(1)
	}
	l.AppendSpec(ObjectState{ID: 1, Name: "killme", Size: 32, Period: 1e6, DeltaP: 2e6, DeltaB: 3e6})
	if err := l.Sync(); err != nil {
		fmt.Println("sync failed:", err)
		os.Exit(1)
	}
	fmt.Println("appending " + strconv.Itoa(os.Getpid()))
	for seq := uint64(1); ; seq++ {
		l.AppendApply(1, 1, seq, int64(seq), []byte(fmt.Sprintf("value-%d", seq)))
		if seq%64 == 0 {
			l.Sync()
		}
	}
}
