package durable

import (
	"errors"
	"os"
	"sort"
)

// State is the durable image reconstructed by Recover: the newest valid
// snapshot plus every decodable record above it, in order.
type State struct {
	// Objects is the recovered object set, sorted by ID. Objects whose
	// spec never made it to disk are dropped (a value without a spec
	// cannot be re-registered).
	Objects []ObjectState
	// Epoch is the highest epoch witnessed anywhere in the image. A
	// restarting primary must fence above it.
	Epoch uint32
}

// RecoveryStats describes how recovery went, for logging and the ctl
// LOGSTAT recovery-source report.
type RecoveryStats struct {
	// SnapshotUsed reports whether a snapshot seeded the image;
	// SnapshotEpoch is its epoch; SnapshotsTried counts how many
	// snapshot files were examined (>1 means fallback happened).
	SnapshotUsed   bool
	SnapshotEpoch  uint32
	SnapshotsTried int
	// SegmentsReplayed and RecordsReplayed count the tail replay.
	SegmentsReplayed int
	RecordsReplayed  int
	// Stopped names what ended replay early: "" (clean end of log),
	// "torn-tail", "corrupt-record", or "missing-segment".
	Stopped string
}

// Recover rebuilds the durable image from dir. It is the recovery
// state machine:
//
//	scan → pick newest valid snapshot (falling back on torn ones)
//	     → replay segments with index ≥ the snapshot's cover, in order
//	     → stop at the first invalid record or index gap
//	     → drop spec-less objects
//
// Corruption is never an error — it just shortens the replayed tail;
// the worst case (everything torn) recovers an empty image. The only
// errors returned are real I/O failures listing the directory. A
// missing directory recovers an empty image.
func Recover(dir string) (*State, *RecoveryStats, error) {
	st := &State{}
	rs := &RecoveryStats{}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return st, rs, err
	}

	objs := map[uint32]*ObjectState{}
	var cover uint64
	for _, sn := range snaps { // newest first
		rs.SnapshotsTried++
		epoch, cv, list, ok := loadSnapshot(sn.Path)
		if !ok {
			continue
		}
		rs.SnapshotUsed = true
		rs.SnapshotEpoch = epoch
		cover = cv
		if epoch > st.Epoch {
			st.Epoch = epoch
		}
		for i := range list {
			o := list[i]
			objs[o.ID] = &o
		}
		break
	}

	// Replay the tail: segments at or above the snapshot's cover, in
	// index order, stopping at the first gap — a missing segment means
	// everything after it may depend on lost records.
	expect := cover
	if expect == 0 {
		expect = 1 // no snapshot: the log must start at the first segment
	}
replay:
	for _, seg := range segs {
		if seg.Index < cover {
			continue
		}
		if seg.Index != expect {
			rs.Stopped = "missing-segment"
			break
		}
		expect = seg.Index + 1
		data, err := os.ReadFile(seg.Path)
		if err != nil {
			rs.Stopped = "missing-segment"
			break
		}
		rs.SegmentsReplayed++
		for len(data) > 0 {
			rec, n, derr := DecodeRecord(data)
			if derr != nil {
				if errors.Is(derr, ErrShortRecord) {
					rs.Stopped = "torn-tail"
				} else {
					rs.Stopped = "corrupt-record"
				}
				break replay
			}
			data = data[n:]
			rs.RecordsReplayed++
			applyToState(objs, st, &rec)
		}
	}

	for _, o := range objs {
		if o.Name == "" {
			continue // spec never reached disk; value alone is unusable
		}
		if o.Epoch > st.Epoch {
			st.Epoch = o.Epoch
		}
		st.Objects = append(st.Objects, *o)
	}
	sort.Slice(st.Objects, func(i, j int) bool { return st.Objects[i].ID < st.Objects[j].ID })
	return st, rs, nil
}

// applyToState folds one record into the image under the same
// supersession rule the live replica uses: a value applies if its
// (epoch, seq) is not behind the current image.
func applyToState(objs map[uint32]*ObjectState, st *State, rec *Record) {
	switch rec.Kind {
	case KindSpec:
		o := objs[rec.ObjectID]
		if o == nil {
			o = &ObjectState{ID: rec.ObjectID}
			objs[rec.ObjectID] = o
		}
		o.Name = rec.Name
		o.Size = rec.Size
		o.Period, o.DeltaP, o.DeltaB = rec.Period, rec.DeltaP, rec.DeltaB
		o.Critical = rec.Critical
	case KindApply:
		o := objs[rec.ObjectID]
		if o == nil {
			o = &ObjectState{ID: rec.ObjectID}
			objs[rec.ObjectID] = o
		}
		if o.HasData && (rec.Epoch < o.Epoch || (rec.Epoch == o.Epoch && rec.Seq < o.Seq)) {
			return
		}
		o.Epoch, o.Seq, o.Version = rec.Epoch, rec.Seq, rec.Version
		o.Value = append(o.Value[:0], rec.Value...)
		o.HasData = true
		if rec.Epoch > st.Epoch {
			st.Epoch = rec.Epoch
		}
	case KindUnregister:
		delete(objs, rec.ObjectID)
	case KindEpoch:
		if rec.Epoch > st.Epoch {
			st.Epoch = rec.Epoch
		}
	}
}
