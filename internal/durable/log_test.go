package durable

import (
	"bytes"
	"fmt"
	"testing"
)

// fillLog writes nObjects specs and nApplies values per object, then a
// snapshot if asked, and closes the log.
func fillLog(t *testing.T, dir string, cfg Config, nObjects, nApplies int, snapshot bool) {
	t.Helper()
	cfg.Dir = dir
	cfg.NoFsync = true
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var objs []ObjectState
	for id := uint32(1); id <= uint32(nObjects); id++ {
		st := ObjectState{ID: id, Name: fmt.Sprintf("obj-%d", id), Size: 64, Period: 40e6, DeltaP: 50e6, DeltaB: 250e6}
		l.AppendSpec(st)
		objs = append(objs, st)
	}
	for seq := 1; seq <= nApplies; seq++ {
		for id := uint32(1); id <= uint32(nObjects); id++ {
			l.AppendApply(id, 1, uint64(seq), int64(seq)*1e6, []byte(fmt.Sprintf("v%d-%d", id, seq)))
		}
	}
	if snapshot {
		for i := range objs {
			objs[i].Epoch, objs[i].Seq = 1, uint64(nApplies)
			objs[i].Version = int64(nApplies) * 1e6
			objs[i].HasData = true
			objs[i].Value = []byte(fmt.Sprintf("v%d-%d", objs[i].ID, nApplies))
		}
		l.Snapshot(1, objs)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestLogRoundTripSyncAndAsync(t *testing.T) {
	for _, mode := range []struct {
		name string
		sync bool
	}{{"sync", true}, {"async", false}} {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			fillLog(t, dir, Config{Sync: mode.sync}, 4, 10, false)
			st, rs, err := Recover(dir)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if len(st.Objects) != 4 {
				t.Fatalf("recovered %d objects, want 4", len(st.Objects))
			}
			if rs.Stopped != "" {
				t.Fatalf("replay stopped: %s", rs.Stopped)
			}
			for _, o := range st.Objects {
				want := fmt.Sprintf("v%d-10", o.ID)
				if !o.HasData || !bytes.Equal(o.Value, []byte(want)) {
					t.Fatalf("object %d: value %q, want %q", o.ID, o.Value, want)
				}
				if o.Seq != 10 || o.Epoch != 1 {
					t.Fatalf("object %d: epoch/seq %d/%d", o.ID, o.Epoch, o.Seq)
				}
				if o.Name != fmt.Sprintf("obj-%d", o.ID) || o.DeltaB != 250e6 {
					t.Fatalf("object %d: spec not recovered: %+v", o.ID, o)
				}
			}
		})
	}
}

func TestSnapshotFallbackAndPrune(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Sync: true, NoFsync: true, SegmentBytes: 1 << 10}
	l, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	spec := ObjectState{ID: 1, Name: "a", Size: 8, Period: 1e6, DeltaP: 2e6, DeltaB: 3e6}
	l.AppendSpec(spec)
	snap := func(seq uint64) {
		s := spec
		s.Epoch, s.Seq, s.Version, s.HasData = 1, seq, int64(seq), true
		s.Value = []byte(fmt.Sprintf("s%d", seq))
		l.Snapshot(1, []ObjectState{s})
	}
	for seq := uint64(1); seq <= 300; seq++ {
		l.AppendApply(1, 1, seq, int64(seq), bytes.Repeat([]byte("x"), 64))
		if seq%100 == 0 {
			snap(seq)
		}
	}
	st := l.Stats()
	if st.Snapshots != 2 {
		t.Fatalf("retained %d snapshots, want 2", st.Snapshots)
	}
	if st.PrunedSegments == 0 {
		t.Fatalf("nothing pruned: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the newest snapshot: recovery falls back to the previous
	// one and replays the tail between them.
	if _, err := Inject(dir, FaultTornSnapshot); err != nil {
		t.Fatalf("inject: %v", err)
	}
	rec, rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !rs.SnapshotUsed || rs.SnapshotsTried != 2 {
		t.Fatalf("expected fallback to second snapshot: %+v", rs)
	}
	if len(rec.Objects) != 1 || rec.Objects[0].Seq != 300 {
		t.Fatalf("tail replay after fallback: %+v", rec.Objects)
	}
}

func TestEpochRollAndUnregister(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Config{Dir: dir, Sync: true, NoFsync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	l.AppendSpec(ObjectState{ID: 1, Name: "keep", Period: 1e6, DeltaP: 1e6, DeltaB: 1e6})
	l.AppendSpec(ObjectState{ID: 2, Name: "drop", Period: 1e6, DeltaP: 1e6, DeltaB: 1e6})
	l.AppendApply(1, 1, 1, 10, []byte("old"))
	l.AppendApply(2, 1, 1, 10, []byte("bye"))
	l.AppendEpoch(2)
	l.AppendApply(1, 2, 1, 20, []byte("new"))
	l.AppendUnregister(2)
	// A stale record from the old epoch must not supersede.
	l.AppendApply(1, 1, 9, 5, []byte("stale"))
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	st, rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if st.Epoch != 2 {
		t.Fatalf("epoch %d, want 2", st.Epoch)
	}
	if len(st.Objects) != 1 || st.Objects[0].ID != 1 {
		t.Fatalf("objects: %+v", st.Objects)
	}
	if string(st.Objects[0].Value) != "new" {
		t.Fatalf("value %q, want new (stale epoch-1 record applied?)", st.Objects[0].Value)
	}
	if rs.SegmentsReplayed < 2 {
		t.Fatalf("epoch advance did not roll the segment: %+v", rs)
	}
}

func TestOverflowDropsToSnapshot(t *testing.T) {
	dir := t.TempDir()
	// A tiny queue with an async writer: flooding it must drop, flag
	// drop-to-snapshot, and never block the caller.
	l, err := Open(Config{Dir: dir, QueueDepth: 2, NoFsync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 10000; i++ {
		l.AppendApply(1, 1, uint64(i), int64(i), []byte("payload"))
	}
	st := l.Stats()
	if st.Appended+st.Dropped < 10000 {
		t.Fatalf("lost track of appends: %+v", st)
	}
	if st.Dropped > 0 && !l.NeedsSnapshot() {
		t.Fatalf("dropped %d records without flagging drop-to-snapshot", st.Dropped)
	}
	// A snapshot clears the flag and restores a complete image.
	l.Snapshot(1, []ObjectState{{ID: 1, Name: "a", HasData: true, Epoch: 1, Seq: 9999, Version: 9999, Value: []byte("final")}})
	if err := l.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if l.NeedsSnapshot() {
		t.Fatal("drop-to-snapshot flag survived the snapshot")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	rec, _, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(rec.Objects) != 1 || rec.Objects[0].Seq != 9999 {
		t.Fatalf("snapshot did not restore the image: %+v", rec.Objects)
	}
}

func TestReopenContinuesIndexes(t *testing.T) {
	dir := t.TempDir()
	fillLog(t, dir, Config{Sync: true}, 2, 3, false)
	fillLog(t, dir, Config{Sync: true}, 2, 3, false) // second process lifetime
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	seen := map[uint64]bool{}
	for _, s := range segs {
		if seen[s.Index] {
			t.Fatalf("duplicate segment index %d", s.Index)
		}
		seen[s.Index] = true
	}
	st, rs, err := Recover(dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rs.Stopped != "" || len(st.Objects) != 2 {
		t.Fatalf("recover across lifetimes: stopped=%q objects=%d", rs.Stopped, len(st.Objects))
	}
	if st.Objects[0].Seq != 3 {
		t.Fatalf("seq %d, want 3", st.Objects[0].Seq)
	}
}
