package durable

import (
	"fmt"
	"testing"
)

// TestRecoverySurvivesEveryFault is the acceptance matrix: every
// injectable disk fault, with and without a snapshot present, must
// recover without error or panic, and whatever it recovers must be a
// valid prefix image — correct specs, values consistent with some
// applied seq, never garbage.
func TestRecoverySurvivesEveryFault(t *testing.T) {
	faults := []FaultKind{FaultTornTail, FaultShortFsync, FaultCorruptRecord, FaultMissingSegment, FaultTornSnapshot}
	for _, snapshot := range []bool{false, true} {
		for _, fk := range faults {
			t.Run(fmt.Sprintf("%s/snapshot=%v", fk, snapshot), func(t *testing.T) {
				dir := t.TempDir()
				fillLog(t, dir, Config{Sync: true, SegmentBytes: 2 << 10}, 4, 50, snapshot)
				desc, err := Inject(dir, fk)
				if err != nil {
					t.Fatalf("inject: %v", err)
				}
				st, rs, err := Recover(dir)
				if err != nil {
					t.Fatalf("recover after %s (%s): %v", fk, desc, err)
				}
				// With a snapshot present, the image can never fall below
				// it: all 4 objects at seq >= 50 (torn snapshot falls back
				// to... there is only one, so the tail rebuilds them).
				for _, o := range st.Objects {
					if o.Name == "" {
						t.Fatalf("recovered spec-less object %d", o.ID)
					}
					if o.HasData {
						want := fmt.Sprintf("v%d-%d", o.ID, o.Seq)
						if string(o.Value) != want {
							t.Fatalf("object %d: value %q inconsistent with seq %d", o.ID, o.Value, o.Seq)
						}
					}
				}
				if snapshot && fk != FaultTornSnapshot {
					// The snapshot is intact, so nothing above it is lost.
					if len(st.Objects) != 4 {
						t.Fatalf("%s lost snapshotted objects: %d/4 (%s, stats %+v)", fk, len(st.Objects), desc, rs)
					}
					for _, o := range st.Objects {
						if o.Seq < 50 {
							t.Fatalf("object %d regressed below snapshot seq: %d", o.ID, o.Seq)
						}
					}
				}
				t.Logf("%s: %s -> %d objects, %+v", fk, desc, len(st.Objects), rs)
			})
		}
	}
}

// TestRecoverEmptyAndMissingDir pins that recovery of nothing is an
// empty image, not an error.
func TestRecoverEmptyAndMissingDir(t *testing.T) {
	st, rs, err := Recover(t.TempDir() + "/does-not-exist")
	if err != nil || len(st.Objects) != 0 || rs.SnapshotUsed {
		t.Fatalf("missing dir: %v %+v %+v", err, st, rs)
	}
	st, _, err = Recover(t.TempDir())
	if err != nil || len(st.Objects) != 0 {
		t.Fatalf("empty dir: %v %+v", err, st)
	}
}
