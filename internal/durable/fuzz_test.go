package durable

import (
	"bytes"
	"testing"
)

// FuzzDecodeLogRecord is the never-panic wall for the log record
// decoder, mirroring FuzzDecodeFrame on the wire path: arbitrary bytes
// must produce an error or a record that re-encodes and re-decodes
// consistently — never a panic, never a huge allocation from a lying
// length prefix. The checked-in corpus covers the recovery-relevant
// shapes: torn tail, zero-length record, CRC mismatch, truncated
// length prefix, and epoch-boundary garbage.
func FuzzDecodeLogRecord(f *testing.F) {
	// Valid single records of every kind.
	spec := AppendRecord(nil, &Record{Kind: KindSpec, ObjectID: 3, Name: "pressure", Size: 64, Period: 40e6, DeltaP: 50e6, DeltaB: 250e6, Critical: true})
	apply := AppendRecord(nil, &Record{Kind: KindApply, ObjectID: 3, Epoch: 2, Seq: 17, Version: 12345, Value: []byte("payload")})
	unreg := AppendRecord(nil, &Record{Kind: KindUnregister, ObjectID: 3})
	epoch := AppendRecord(nil, &Record{Kind: KindEpoch, Epoch: 7})
	f.Add(spec)
	f.Add(apply)
	f.Add(unreg)
	f.Add(epoch)
	// Torn tail: a record cut mid-body.
	f.Add(apply[:len(apply)-3])
	// Truncated length prefix.
	f.Add(apply[:2])
	// Zero-length record.
	f.Add(make([]byte, recordHeader))
	// CRC mismatch.
	bad := append([]byte(nil), apply...)
	bad[recordHeader+2] ^= 0xff
	f.Add(bad)
	// Epoch-boundary garbage: a valid epoch record followed by junk.
	f.Add(append(append([]byte(nil), epoch...), 0xde, 0xad, 0xbe, 0xef, 0x00, 0x00, 0x00, 0x00))
	// A stream of several records, then a torn one.
	stream := append(append(append([]byte(nil), spec...), apply...), unreg...)
	f.Add(append(stream, epoch[:len(epoch)-1]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk the buffer the way recovery does: decode until error.
		rest := data
		for len(rest) > 0 {
			rec, n, err := DecodeRecord(rest)
			if err != nil {
				if n != 0 {
					t.Fatalf("error %v with nonzero consumed %d", err, n)
				}
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("consumed %d of %d", n, len(rest))
			}
			// Round-trip: re-encoding a decoded record must reproduce
			// the exact bytes (the encoding is canonical).
			re := AppendRecord(nil, &rec)
			if !bytes.Equal(re, rest[:n]) {
				t.Fatalf("re-encode mismatch for kind %d", rec.Kind)
			}
			rest = rest[n:]
		}
	})
}
