package durable

import (
	"bytes"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindSpec, ObjectID: 7, Name: "pressure", Size: 64, Period: 40e6, DeltaP: 50e6, DeltaB: 250e6, Critical: true},
		{Kind: KindSpec, ObjectID: 8, Name: "", Size: 0},
		{Kind: KindApply, ObjectID: 7, Epoch: 3, Seq: 99, Version: 123456789, Value: []byte("hello")},
		{Kind: KindApply, ObjectID: 7, Epoch: 3, Seq: 100, Version: 2, Value: nil},
		{Kind: KindUnregister, ObjectID: 7},
		{Kind: KindEpoch, Epoch: 4},
	}
	var buf []byte
	for i := range recs {
		buf = AppendRecord(buf, &recs[i])
	}
	for i := range recs {
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		buf = buf[n:]
		want := recs[i]
		if got.Kind != want.Kind || got.ObjectID != want.ObjectID || got.Epoch != want.Epoch ||
			got.Seq != want.Seq || got.Version != want.Version || got.Name != want.Name ||
			got.Size != want.Size || got.Period != want.Period || got.DeltaP != want.DeltaP ||
			got.DeltaB != want.DeltaB || got.Critical != want.Critical || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestDecodeRecordTornTail(t *testing.T) {
	r := Record{Kind: KindApply, ObjectID: 1, Epoch: 1, Seq: 1, Version: 1, Value: []byte("0123456789")}
	full := AppendRecord(nil, &r)
	for cut := 0; cut < len(full); cut++ {
		_, n, err := DecodeRecord(full[:cut])
		if err != ErrShortRecord || n != 0 {
			t.Fatalf("cut %d: got n=%d err=%v, want ErrShortRecord", cut, n, err)
		}
	}
}

func TestDecodeRecordCorruption(t *testing.T) {
	r := Record{Kind: KindSpec, ObjectID: 5, Name: "obj", Size: 16, Period: 1e6, DeltaP: 2e6, DeltaB: 3e6}
	full := AppendRecord(nil, &r)
	// Flip every byte position in turn: decode must return an error or
	// a consistent record, never panic. Bytes inside the body are
	// always caught by CRC.
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x01
		_, _, err := DecodeRecord(mut)
		if i >= recordHeader && err == nil {
			t.Fatalf("body flip at %d not detected", i)
		}
	}
	// Zero-length record.
	var zero [recordHeader]byte
	if _, _, err := DecodeRecord(zero[:]); err != ErrCorruptRecord {
		t.Fatalf("zero-length: got %v, want ErrCorruptRecord", err)
	}
	// Absurd length prefix must not attempt a huge read.
	huge := append([]byte(nil), full...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeRecord(huge); err != ErrCorruptRecord {
		t.Fatalf("huge length: got %v, want ErrCorruptRecord", err)
	}
}
