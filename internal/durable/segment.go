package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Segment files are named wal-<epoch>-<index>.log and snapshot files
// snap-<epoch>-<index>.snap. The index is a single monotonic counter
// shared by both: a snapshot at index i covers every segment with
// index < i, so the stable mark is just an index comparison and
// pruning is unlink-below-mark. The epoch in the name is the epoch the
// file was opened under — segments roll on epoch advance, so dropping
// segments below the mark drops whole epochs at a time.

type segmentRef struct {
	Epoch uint32
	Index uint64
	Path  string
	Bytes int64
}

type snapshotRef struct {
	Epoch uint32
	Index uint64 // covers all segments with Index below this
	Path  string
}

func segmentName(epoch uint32, index uint64) string {
	return fmt.Sprintf("wal-%010d-%012d.log", epoch, index)
}

func snapshotName(epoch uint32, index uint64) string {
	return fmt.Sprintf("snap-%010d-%012d.snap", epoch, index)
}

// scanDir lists the segments (sorted by index ascending) and snapshots
// (sorted by index descending, newest first) in dir. Unparseable names
// are ignored; a missing directory yields empty lists.
func scanDir(dir string) (segs []segmentRef, snaps []snapshotRef, err error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var epoch uint32
		var index uint64
		name := e.Name()
		switch {
		case matchName(name, "wal-", ".log", &epoch, &index):
			info, ierr := e.Info()
			if ierr != nil {
				continue
			}
			segs = append(segs, segmentRef{Epoch: epoch, Index: index, Path: filepath.Join(dir, name), Bytes: info.Size()})
		case matchName(name, "snap-", ".snap", &epoch, &index):
			snaps = append(snaps, snapshotRef{Epoch: epoch, Index: index, Path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Index < segs[j].Index })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Index > snaps[j].Index })
	return segs, snaps, nil
}

// matchName parses "<prefix><epoch>-<index><suffix>" with fixed-width
// decimal fields, rejecting anything else.
func matchName(name, prefix, suffix string, epoch *uint32, index *uint64) bool {
	if len(name) != len(prefix)+10+1+12+len(suffix) {
		return false
	}
	if name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	var e uint64
	for i := 0; i < 10; i++ {
		c := mid[i]
		if c < '0' || c > '9' {
			return false
		}
		e = e*10 + uint64(c-'0')
	}
	if mid[10] != '-' {
		return false
	}
	var ix uint64
	for i := 11; i < 23; i++ {
		c := mid[i]
		if c < '0' || c > '9' {
			return false
		}
		ix = ix*10 + uint64(c-'0')
	}
	*epoch = uint32(e)
	*index = ix
	return true
}
