package durable

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Config configures a Log.
type Config struct {
	// Dir is the store directory; it is created if missing.
	Dir string
	// SegmentBytes rolls the current segment once it exceeds this many
	// bytes (default 512 KiB). Segments also roll on epoch advance and
	// before every snapshot.
	SegmentBytes int
	// QueueDepth bounds the async append queue (default 1024). When the
	// queue is full the record is dropped and the log flags that a
	// snapshot is wanted ("drop-to-snapshot"): the next snapshot makes
	// the dropped suffix irrelevant.
	QueueDepth int
	// RetainSnapshots is how many snapshots to keep (default 2). The
	// stable mark is the cover index of the oldest retained snapshot;
	// segments below it are pruned.
	RetainSnapshots int
	// Sync makes every operation apply inline on the caller's
	// goroutine, in call order, with no background writer. File
	// contents become a pure function of the append sequence — the
	// deterministic-simulation harness requires that — at the price of
	// synchronous write syscalls. Even in Sync mode fsync is deferred
	// to Snapshot/Sync/Close, so "synchronous" means ordered, not
	// durable-per-record.
	Sync bool
	// NoFsync suppresses fsync entirely (tests, benchmarks).
	NoFsync bool
}

func (c *Config) normalize() {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 512 << 10
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.RetainSnapshots <= 0 {
		c.RetainSnapshots = 2
	}
}

// Stats is a point-in-time summary of the store, served by the ctl
// LOGSTAT verb.
type Stats struct {
	// Appended counts records accepted onto the queue (or written
	// inline in Sync mode); Dropped counts records shed on overflow.
	Appended uint64
	Dropped  uint64
	// Segments is the number of live segment files; PrunableSegments
	// and PrunableEpochs count the portion already covered by the
	// newest snapshot and retained only as fallback — the next
	// snapshot's prune will drop them.
	Segments         int
	PrunableSegments int
	PrunableEpochs   int
	PrunedSegments   uint64
	// Snapshots is the number of retained snapshot files;
	// LastSnapshotEpoch is the epoch of the newest.
	Snapshots         int
	LastSnapshotEpoch uint32
	// Epoch is the epoch the current segment was opened under.
	Epoch uint32
}

type opKind uint8

const (
	opRecord opKind = iota
	opEpoch
	opSnapshot
	opSync
	opQuit
)

type op struct {
	kind  opKind
	buf   *[]byte // opRecord: pooled framed record
	epoch uint32  // opEpoch
	ack   chan error
}

type pendingSnapshot struct {
	epoch uint32
	objs  []ObjectState
}

// Log is the durable store for one replica: an append-only segmented
// record log plus a snapshot store. Append methods are safe for
// concurrent use and never block on I/O in async mode.
type Log struct {
	cfg    Config
	ch     chan op
	pool   sync.Pool
	closed atomic.Bool
	done   chan struct{}

	appended atomic.Uint64
	dropped  atomic.Uint64
	needSnap atomic.Bool

	// pending holds the latest-wins snapshot request; the writer takes
	// it when it sees an opSnapshot tick.
	pendingMu sync.Mutex
	pending   *pendingSnapshot

	// Writer state: owned by the background goroutine in async mode,
	// guarded by wmu in Sync mode. Stats reads take wmu in both modes;
	// the async writer takes it briefly around mutations.
	wmu       sync.Mutex
	dir       string
	epoch     uint32
	nextIndex uint64
	cur       *os.File
	curBuf    *bufio.Writer
	curRef    segmentRef
	segs      []segmentRef
	snaps     []snapshotRef // newest first
	pruned    uint64
}

// Open opens (or creates) the store in cfg.Dir and starts a fresh
// segment. It never appends to a pre-existing segment — a prior
// process may have torn its tail — so every process lifetime gets its
// own segments; Recover is what reads the old ones.
func Open(cfg Config) (*Log, error) {
	cfg.normalize()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("durable: Config.Dir required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, snaps, err := scanDir(cfg.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		cfg:       cfg,
		ch:        make(chan op, cfg.QueueDepth),
		done:      make(chan struct{}),
		dir:       cfg.Dir,
		segs:      segs,
		snaps:     snaps,
		epoch:     1,
		nextIndex: 1,
	}
	l.pool.New = func() any { b := make([]byte, 0, 256); return &b }
	for _, s := range segs {
		if s.Index >= l.nextIndex {
			l.nextIndex = s.Index + 1
		}
		if s.Epoch > l.epoch {
			l.epoch = s.Epoch
		}
	}
	for _, s := range snaps {
		if s.Index >= l.nextIndex {
			l.nextIndex = s.Index + 1
		}
		if s.Epoch > l.epoch {
			l.epoch = s.Epoch
		}
	}
	if err := l.openSegment(); err != nil {
		return nil, err
	}
	if !cfg.Sync {
		go l.run()
	}
	return l, nil
}

// openSegment opens a new segment at (epoch, nextIndex). Caller holds
// writer ownership.
func (l *Log) openSegment() error {
	ref := segmentRef{Epoch: l.epoch, Index: l.nextIndex, Path: filepath.Join(l.dir, segmentName(l.epoch, l.nextIndex))}
	f, err := os.OpenFile(ref.Path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	l.nextIndex++
	l.cur = f
	l.curBuf = bufio.NewWriterSize(f, 64<<10)
	l.curRef = ref
	l.segs = append(l.segs, ref)
	return nil
}

// closeSegment flushes and closes the current segment, recording its
// final size.
func (l *Log) closeSegment() {
	if l.cur == nil {
		return
	}
	l.curBuf.Flush()
	if !l.cfg.NoFsync {
		l.cur.Sync()
	}
	l.cur.Close()
	for i := range l.segs {
		if l.segs[i].Index == l.curRef.Index {
			l.segs[i].Bytes = l.curRef.Bytes
		}
	}
	l.cur = nil
}

// AppendSpec logs an object registration.
func (l *Log) AppendSpec(st ObjectState) {
	r := Record{Kind: KindSpec, ObjectID: st.ID, Name: st.Name, Size: st.Size,
		Period: st.Period, DeltaP: st.DeltaP, DeltaB: st.DeltaB, Critical: st.Critical}
	l.enqueue(&r)
}

// AppendApply logs an applied value. The payload is copied before the
// call returns; in async mode the copy is into a pooled buffer and the
// only synchronization is one channel send — no file I/O, no fsync.
func (l *Log) AppendApply(id, epoch uint32, seq uint64, version int64, value []byte) {
	r := Record{Kind: KindApply, ObjectID: id, Epoch: epoch, Seq: seq, Version: version, Value: value}
	l.enqueue(&r)
}

// AppendUnregister logs an object removal.
func (l *Log) AppendUnregister(id uint32) {
	r := Record{Kind: KindUnregister, ObjectID: id}
	l.enqueue(&r)
}

// AppendEpoch logs an epoch advance and rolls to a fresh segment, so
// segment files never span epochs and pruning drops whole epochs.
func (l *Log) AppendEpoch(epoch uint32) {
	if l.closed.Load() {
		return
	}
	if l.cfg.Sync {
		l.wmu.Lock()
		l.applyEpoch(epoch)
		l.wmu.Unlock()
		return
	}
	select {
	case l.ch <- op{kind: opEpoch, epoch: epoch}:
	default:
		// An epoch advance that cannot queue still must not block; the
		// snapshot that follows every advance will capture the epoch.
		l.dropped.Add(1)
		l.needSnap.Store(true)
	}
}

func (l *Log) enqueue(r *Record) {
	if l.closed.Load() {
		return
	}
	if l.cfg.Sync {
		l.wmu.Lock()
		bp := l.pool.Get().(*[]byte)
		*bp = AppendRecord((*bp)[:0], r)
		l.applyRecord(bp)
		l.wmu.Unlock()
		l.appended.Add(1)
		return
	}
	bp := l.pool.Get().(*[]byte)
	*bp = AppendRecord((*bp)[:0], r)
	select {
	case l.ch <- op{kind: opRecord, buf: bp}:
		l.appended.Add(1)
	default:
		*bp = (*bp)[:0]
		l.pool.Put(bp)
		l.dropped.Add(1)
		l.needSnap.Store(true)
	}
}

// NeedsSnapshot reports whether appends have been dropped since the
// last snapshot: the caller should capture one soon to restore a
// complete durable image.
func (l *Log) NeedsSnapshot() bool { return l.needSnap.Load() }

// Snapshot requests a snapshot of the given full object image. The
// slice is retained until written; callers must pass a private copy.
// Latest request wins if several queue up before the writer gets to
// them. The snapshot rolls the segment, covers everything before the
// roll, and prunes segments below the stable mark.
func (l *Log) Snapshot(epoch uint32, objs []ObjectState) {
	if l.closed.Load() {
		return
	}
	l.pendingMu.Lock()
	l.pending = &pendingSnapshot{epoch: epoch, objs: objs}
	l.pendingMu.Unlock()
	if l.cfg.Sync {
		l.wmu.Lock()
		l.applySnapshot()
		l.wmu.Unlock()
		return
	}
	select {
	case l.ch <- op{kind: opSnapshot}:
	default:
		// Queue full: the writer will still find the pending snapshot
		// on its next drain because applyRecord checks for it.
	}
}

// Sync flushes the queue and fsyncs the current segment. It blocks; it
// exists for shutdown paths and tests, never the update hot path.
func (l *Log) Sync() error {
	if l.closed.Load() {
		return nil
	}
	if l.cfg.Sync {
		l.wmu.Lock()
		defer l.wmu.Unlock()
		return l.flushCur()
	}
	ack := make(chan error, 1)
	l.ch <- op{kind: opSync, ack: ack}
	return <-ack
}

// Close drains, fsyncs, and closes the store. Appends after Close are
// silently dropped.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	if l.cfg.Sync {
		l.wmu.Lock()
		defer l.wmu.Unlock()
		l.closeSegment()
		return nil
	}
	ack := make(chan error, 1)
	l.ch <- op{kind: opQuit, ack: ack}
	err := <-ack
	<-l.done
	return err
}

// Stats returns a point-in-time summary.
func (l *Log) Stats() Stats {
	l.wmu.Lock()
	defer l.wmu.Unlock()
	st := Stats{
		Appended:       l.appended.Load(),
		Dropped:        l.dropped.Load(),
		Segments:       len(l.segs),
		PrunedSegments: l.pruned,
		Snapshots:      len(l.snaps),
		Epoch:          l.epoch,
	}
	if len(l.snaps) > 0 {
		newest := l.snaps[0]
		st.LastSnapshotEpoch = newest.Epoch
		epochs := map[uint32]bool{}
		for _, s := range l.segs {
			if s.Index < newest.Index {
				st.PrunableSegments++
				epochs[s.Epoch] = true
			}
		}
		st.PrunableEpochs = len(epochs)
	}
	return st
}

// run is the background writer: group-commit batches off the bounded
// queue, with snapshot and prune work interleaved between batches.
func (l *Log) run() {
	defer close(l.done)
	for {
		o, ok := <-l.ch
		if !ok {
			return
		}
		if l.apply(o) {
			return
		}
		// Drain whatever else is queued, then flush once: group commit.
	drain:
		for i := 0; i < cap(l.ch); i++ {
			select {
			case o2 := <-l.ch:
				if l.apply(o2) {
					return
				}
			default:
				break drain
			}
		}
		l.wmu.Lock()
		// A Snapshot call that found the queue full left its request in
		// the pending slot; pick it up here so it is never deferred past
		// one drain cycle.
		l.applySnapshot()
		if l.curBuf != nil {
			l.curBuf.Flush()
			if !l.cfg.NoFsync && l.cur != nil {
				l.cur.Sync()
			}
		}
		l.wmu.Unlock()
	}
}

// apply executes one queued op; returns true on quit.
func (l *Log) apply(o op) bool {
	switch o.kind {
	case opRecord:
		l.wmu.Lock()
		l.applyRecord(o.buf)
		l.wmu.Unlock()
	case opEpoch:
		l.wmu.Lock()
		l.applyEpoch(o.epoch)
		l.wmu.Unlock()
	case opSnapshot:
		l.wmu.Lock()
		l.applySnapshot()
		l.wmu.Unlock()
	case opSync:
		l.wmu.Lock()
		l.applySnapshot() // opportunistic: a pending snapshot rides along
		err := l.flushCur()
		l.wmu.Unlock()
		o.ack <- err
	case opQuit:
		l.wmu.Lock()
		l.applySnapshot()
		l.closeSegment()
		l.wmu.Unlock()
		o.ack <- nil
		return true
	}
	return false
}

func (l *Log) flushCur() error {
	if l.curBuf == nil {
		return nil
	}
	if err := l.curBuf.Flush(); err != nil {
		return err
	}
	if l.cfg.NoFsync || l.cur == nil {
		return nil
	}
	return l.cur.Sync()
}

// applyRecord writes one framed record, rolling the segment on size.
// Caller holds wmu.
func (l *Log) applyRecord(bp *[]byte) {
	if l.cur == nil {
		return
	}
	l.curBuf.Write(*bp)
	l.curRef.Bytes += int64(len(*bp))
	*bp = (*bp)[:0]
	l.pool.Put(bp)
	if l.curRef.Bytes >= int64(l.cfg.SegmentBytes) {
		l.roll()
	}
}

// applyEpoch rolls to a fresh segment under the new epoch and opens it
// with the epoch record. Caller holds wmu.
func (l *Log) applyEpoch(epoch uint32) {
	if epoch > l.epoch {
		l.epoch = epoch
		l.roll()
	}
	r := Record{Kind: KindEpoch, Epoch: epoch}
	bp := l.pool.Get().(*[]byte)
	*bp = AppendRecord((*bp)[:0], &r)
	l.applyRecord(bp)
	l.appended.Add(1)
}

// roll closes the current segment and opens the next. Caller holds wmu.
func (l *Log) roll() {
	l.closeSegment()
	l.openSegment()
}

// applySnapshot writes the pending snapshot, if any: roll the segment
// so the snapshot's cover index is the new segment's index (everything
// below is closed and covered), write + fsync the snapshot file, then
// prune below the stable mark. Caller holds wmu.
func (l *Log) applySnapshot() {
	l.pendingMu.Lock()
	p := l.pending
	l.pending = nil
	l.pendingMu.Unlock()
	if p == nil {
		return
	}
	if p.epoch > l.epoch {
		l.epoch = p.epoch
	}
	l.roll()
	cover := l.curRef.Index // everything below this index is covered
	ref := snapshotRef{Epoch: p.epoch, Index: cover, Path: filepath.Join(l.dir, snapshotName(p.epoch, cover))}
	data := encodeSnapshot(p.epoch, cover, p.objs)
	tmp := ref.Path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if !l.cfg.NoFsync {
		if f, err := os.Open(tmp); err == nil {
			f.Sync()
			f.Close()
		}
	}
	if err := os.Rename(tmp, ref.Path); err != nil {
		os.Remove(tmp)
		return
	}
	l.snaps = append([]snapshotRef{ref}, l.snaps...)
	l.needSnap.Store(false)
	l.prune()
}

// prune enforces snapshot retention and drops whole segments below the
// stable mark — the cover index of the oldest retained snapshot.
// Caller holds wmu.
func (l *Log) prune() {
	if len(l.snaps) > l.cfg.RetainSnapshots {
		for _, s := range l.snaps[l.cfg.RetainSnapshots:] {
			os.Remove(s.Path)
		}
		l.snaps = l.snaps[:l.cfg.RetainSnapshots]
	}
	if len(l.snaps) < l.cfg.RetainSnapshots {
		// Until a full complement of snapshots exists, every segment is
		// somebody's only fallback: if the lone snapshot tears, the
		// whole log from the start rebuilds the image.
		return
	}
	stable := l.snaps[len(l.snaps)-1].Index
	keep := l.segs[:0]
	for _, s := range l.segs {
		if s.Index < stable {
			os.Remove(s.Path)
			l.pruned++
		} else {
			keep = append(keep, s)
		}
	}
	l.segs = keep
	sort.Slice(l.segs, func(i, j int) bool { return l.segs[i].Index < l.segs[j].Index })
}
