package durable

import (
	"testing"
	"time"
)

// TestAppendEnqueueLatencyWall pins the tentpole's hot-path promise:
// an async append is an encode into a pooled buffer plus one channel
// send — never a write syscall, never an fsync. The wall is set orders
// of magnitude below fsync cost (~ms) but far above the observed
// enqueue cost (~100ns), so it trips on a blocking regression, not on
// a noisy CI machine.
func TestAppendEnqueueLatencyWall(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), QueueDepth: 1 << 16})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	const n = 50000
	start := time.Now()
	for i := 0; i < n; i++ {
		l.AppendApply(1, 1, uint64(i), int64(i), payload)
	}
	mean := time.Since(start) / n
	t.Logf("append-enqueue mean %v over %d appends", mean, n)
	if mean > 20*time.Microsecond {
		t.Fatalf("append enqueue mean %v exceeds 20µs wall: the hot path is blocking on I/O", mean)
	}
}

// TestAppendEnqueueZeroAlloc is the allocation wall: steady-state
// async appends reuse pooled buffers and allocate nothing (the same
// contract as the wire hot path's ZeroAlloc wall). Drops on a full
// queue are fine here — dropping is also allocation-free.
func TestAppendEnqueueZeroAlloc(t *testing.T) {
	l, err := Open(Config{Dir: t.TempDir(), QueueDepth: 64, NoFsync: true})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	payload := make([]byte, 64)
	// Warm the pool.
	for i := 0; i < 1000; i++ {
		l.AppendApply(1, 1, uint64(i), int64(i), payload)
	}
	allocs := testing.AllocsPerRun(5000, func() {
		l.AppendApply(1, 1, 1, 1, payload)
	})
	// The background writer allocates occasionally (segment rolls, pool
	// refills after GC), so the wall is amortized-below-one rather than
	// exactly zero like the single-goroutine wire wall.
	if allocs >= 1 {
		t.Fatalf("append enqueue allocates %.2f allocs/op, want amortized 0", allocs)
	}
}
