package durable

import (
	"fmt"
	"os"
)

// FaultKind names an injectable disk fault. The injector mutates the
// store's files the way real failures do — a power cut mid-append, an
// fsync that never finished, silent media corruption, an unlinked file
// — so the chaos harness can assert recovery survives each of them.
type FaultKind int

const (
	// FaultTornTail truncates the newest non-empty segment mid-record:
	// a torn write at the moment of power loss.
	FaultTornTail FaultKind = iota
	// FaultShortFsync truncates the newest non-empty segment to half
	// its length: a write acknowledged but never fully flushed.
	FaultShortFsync
	// FaultCorruptRecord flips one bit inside a record body in the
	// newest non-empty segment: silent media corruption caught by CRC.
	FaultCorruptRecord
	// FaultMissingSegment deletes the newest segment file outright.
	FaultMissingSegment
	// FaultTornSnapshot truncates the newest snapshot file, forcing
	// recovery to fall back to the previous snapshot.
	FaultTornSnapshot
)

func (k FaultKind) String() string {
	switch k {
	case FaultTornTail:
		return "torn-tail"
	case FaultShortFsync:
		return "short-fsync"
	case FaultCorruptRecord:
		return "corrupt-record"
	case FaultMissingSegment:
		return "missing-segment"
	case FaultTornSnapshot:
		return "torn-snapshot"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Inject applies the fault to the store directory and returns a short
// deterministic description of what it did (file names and offsets,
// never absolute paths, so chaos event logs stay replay-identical).
// Injecting into an empty or absent store is a no-op, not an error.
func Inject(dir string, kind FaultKind) (string, error) {
	segs, snaps, err := scanDir(dir)
	if err != nil {
		return "", err
	}
	newest := func() *segmentRef {
		for i := len(segs) - 1; i >= 0; i-- {
			if segs[i].Bytes > 0 {
				return &segs[i]
			}
		}
		return nil
	}
	switch kind {
	case FaultTornTail:
		s := newest()
		if s == nil {
			return "no segment to tear", nil
		}
		// Cut inside the last record: keep everything up to the last
		// record's start plus half of its frame.
		data, err := os.ReadFile(s.Path)
		if err != nil {
			return "", err
		}
		lastStart := 0
		for off := 0; off < len(data); {
			_, n, derr := DecodeRecord(data[off:])
			if derr != nil || n == 0 {
				break
			}
			lastStart = off
			off += n
		}
		rem := len(data) - lastStart
		cut := lastStart + rem/2
		if cut >= len(data) {
			cut = len(data) - 1
		}
		if err := os.Truncate(s.Path, int64(cut)); err != nil {
			return "", err
		}
		return fmt.Sprintf("tore %s at byte %d of %d", segmentName(s.Epoch, s.Index), cut, len(data)), nil
	case FaultShortFsync:
		s := newest()
		if s == nil {
			return "no segment to truncate", nil
		}
		cut := s.Bytes / 2
		if err := os.Truncate(s.Path, cut); err != nil {
			return "", err
		}
		return fmt.Sprintf("truncated %s to %d of %d bytes", segmentName(s.Epoch, s.Index), cut, s.Bytes), nil
	case FaultCorruptRecord:
		s := newest()
		if s == nil {
			return "no segment to corrupt", nil
		}
		f, err := os.OpenFile(s.Path, os.O_RDWR, 0)
		if err != nil {
			return "", err
		}
		defer f.Close()
		// Flip a bit in the middle of the file: with high probability
		// inside some record's checksummed body.
		off := s.Bytes / 2
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			return "", err
		}
		b[0] ^= 0x40
		if _, err := f.WriteAt(b[:], off); err != nil {
			return "", err
		}
		return fmt.Sprintf("flipped bit at byte %d of %s", off, segmentName(s.Epoch, s.Index)), nil
	case FaultMissingSegment:
		if len(segs) == 0 {
			return "no segment to delete", nil
		}
		s := segs[len(segs)-1]
		if err := os.Remove(s.Path); err != nil {
			return "", err
		}
		return fmt.Sprintf("deleted %s", segmentName(s.Epoch, s.Index)), nil
	case FaultTornSnapshot:
		if len(snaps) == 0 {
			return "no snapshot to tear", nil
		}
		s := snaps[0]
		info, err := os.Stat(s.Path)
		if err != nil {
			return "", err
		}
		cut := info.Size() * 3 / 4
		if err := os.Truncate(s.Path, cut); err != nil {
			return "", err
		}
		return fmt.Sprintf("tore %s to %d of %d bytes", snapshotName(s.Epoch, s.Index), cut, info.Size()), nil
	}
	return "", fmt.Errorf("durable: unknown fault kind %d", int(kind))
}
