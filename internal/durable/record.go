// Package durable is the write-ahead object log and snapshot store that
// gives a replica a disk image to restart from. It sits deliberately off
// the paper-critical update path: the temporal guarantees of RTPB are
// about image staleness, not durability, so appends are asynchronous
// (bounded channel + background writer, drop-to-snapshot on overflow)
// and the update hot path never waits on a write or fsync.
//
// The store is organized by epoch so pruning is trivial: the log is a
// sequence of segment files named by (epoch, index), rolled on every
// epoch advance and on a size threshold, and a snapshot covers every
// segment below its index. Pruning drops whole segments below the
// stable mark (the cover of the oldest retained snapshot) — no
// record-level surgery, just unlink.
//
// Records are CRC-framed and length-prefixed. Recovery replays the
// newest valid snapshot plus the ordered segment tail above it, and
// stops at the first invalid record — a torn tail, a truncated segment,
// a bit flip, or a missing segment ends replay rather than corrupting
// state. The disk fault injector in inject.go manufactures exactly
// those failures for internal/chaos.
package durable

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Kind discriminates log record types.
type Kind uint8

const (
	// KindSpec records an object registration: identity, name, and the
	// admitted temporal constraint. Logged when a spec is admitted or
	// installed, before any value for the object.
	KindSpec Kind = 1
	// KindApply records an applied object value: the (epoch, seq)
	// supersession coordinates, the version timestamp, and the payload.
	KindApply Kind = 2
	// KindUnregister records an object removal so recovery does not
	// resurrect deleted objects.
	KindUnregister Kind = 3
	// KindEpoch marks an epoch advance (promotion, demotion, adoption).
	// The writer rolls to a fresh segment on epoch advance, so these
	// normally open a segment.
	KindEpoch Kind = 4
)

// Record is one log entry. Which fields are meaningful depends on Kind:
// every record carries ObjectID except KindEpoch; KindSpec carries the
// spec fields; KindApply carries Epoch/Seq/Version/Value.
type Record struct {
	Kind     Kind
	ObjectID uint32

	// Apply coordinates (KindApply; Epoch also on KindEpoch).
	Epoch   uint32
	Seq     uint64
	Version int64 // UnixNano of the value's version timestamp

	// Spec fields (KindSpec). Durations are nanoseconds.
	Name     string
	Size     uint32
	Period   int64
	DeltaP   int64
	DeltaB   int64
	Critical bool

	// Value payload (KindApply).
	Value []byte
}

// Framing: u32 little-endian body length, u32 little-endian CRC-32
// (IEEE) of the body, then the body. The body starts with the Kind
// byte. A record is self-delimiting, so a segment is just concatenated
// records and decode can stop cleanly at the first frame that does not
// check out.
const (
	recordHeader = 8
	// MaxRecordBytes bounds a single record (framing included). A
	// length prefix beyond this is corruption, not a large record —
	// it stops replay instead of attempting a huge allocation.
	MaxRecordBytes = 1 << 20
)

var (
	// ErrShortRecord means the buffer ends mid-record: a torn tail.
	// Every byte so far may be valid; there just aren't enough of them.
	ErrShortRecord = errors.New("durable: short record (torn tail)")
	// ErrCorruptRecord means the frame is structurally invalid: CRC
	// mismatch, impossible length, unknown kind, or truncated fields
	// inside a checksummed body.
	ErrCorruptRecord = errors.New("durable: corrupt record")
)

var crcTable = crc32.MakeTable(crc32.IEEE)

// AppendRecord appends the framed encoding of r to dst and returns the
// extended slice. It copies Name and Value, so the caller's buffers are
// not retained. The hot path calls this with a pooled dst, so it must
// not allocate beyond growing dst.
func AppendRecord(dst []byte, r *Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholder
	body := len(dst)
	dst = append(dst, byte(r.Kind))
	switch r.Kind {
	case KindSpec:
		dst = binary.LittleEndian.AppendUint32(dst, r.ObjectID)
		dst = binary.LittleEndian.AppendUint32(dst, r.Size)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Period))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.DeltaP))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.DeltaB))
		if r.Critical {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Name)))
		dst = append(dst, r.Name...)
	case KindApply:
		dst = binary.LittleEndian.AppendUint32(dst, r.ObjectID)
		dst = binary.LittleEndian.AppendUint32(dst, r.Epoch)
		dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Version))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Value)))
		dst = append(dst, r.Value...)
	case KindUnregister:
		dst = binary.LittleEndian.AppendUint32(dst, r.ObjectID)
	case KindEpoch:
		dst = binary.LittleEndian.AppendUint32(dst, r.Epoch)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-body))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(dst[body:], crcTable))
	return dst
}

// DecodeRecord decodes the first record in b. It returns the record,
// the number of bytes consumed, and an error: ErrShortRecord when b
// ends mid-record (consumed is 0), ErrCorruptRecord when the frame is
// invalid. It never panics on arbitrary input — this is the contract
// FuzzDecodeLogRecord enforces — and the returned record aliases b's
// Name/Value bytes (callers that retain them must copy).
func DecodeRecord(b []byte) (Record, int, error) {
	var r Record
	if len(b) < recordHeader {
		return r, 0, ErrShortRecord
	}
	n := binary.LittleEndian.Uint32(b)
	crc := binary.LittleEndian.Uint32(b[4:])
	if n == 0 || n > MaxRecordBytes-recordHeader {
		return r, 0, ErrCorruptRecord
	}
	if uint32(len(b)-recordHeader) < n {
		return r, 0, ErrShortRecord
	}
	body := b[recordHeader : recordHeader+int(n)]
	if crc32.Checksum(body, crcTable) != crc {
		return r, 0, ErrCorruptRecord
	}
	consumed := recordHeader + int(n)
	r.Kind = Kind(body[0])
	p := body[1:]
	u32 := func() (uint32, bool) {
		if len(p) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(p) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, true
	}
	switch r.Kind {
	case KindSpec:
		id, ok1 := u32()
		size, ok2 := u32()
		period, ok3 := u64()
		deltaP, ok4 := u64()
		deltaB, ok5 := u64()
		if !(ok1 && ok2 && ok3 && ok4 && ok5) || len(p) < 3 || p[0] > 1 {
			return r, 0, ErrCorruptRecord
		}
		r.ObjectID, r.Size = id, size
		r.Period, r.DeltaP, r.DeltaB = int64(period), int64(deltaP), int64(deltaB)
		r.Critical = p[0] == 1
		nameLen := int(binary.LittleEndian.Uint16(p[1:]))
		p = p[3:]
		if len(p) != nameLen {
			return r, 0, ErrCorruptRecord
		}
		r.Name = string(p)
	case KindApply:
		id, ok1 := u32()
		epoch, ok2 := u32()
		seq, ok3 := u64()
		version, ok4 := u64()
		valLen, ok5 := u32()
		if !(ok1 && ok2 && ok3 && ok4 && ok5) || len(p) != int(valLen) {
			return r, 0, ErrCorruptRecord
		}
		r.ObjectID, r.Epoch, r.Seq, r.Version = id, epoch, seq, int64(version)
		r.Value = p
	case KindUnregister:
		id, ok := u32()
		if !ok || len(p) != 0 {
			return r, 0, ErrCorruptRecord
		}
		r.ObjectID = id
	case KindEpoch:
		epoch, ok := u32()
		if !ok || len(p) != 0 {
			return r, 0, ErrCorruptRecord
		}
		r.Epoch = epoch
	default:
		return r, 0, ErrCorruptRecord
	}
	return r, consumed, nil
}
