package durable

import (
	"encoding/binary"
	"hash/crc32"
	"os"
)

// ObjectState is one object's full durable image: the admitted spec
// plus the last applied value and its supersession coordinates. It is
// the unit of both snapshots and recovery output, and deliberately uses
// only primitive fields so core can depend on durable without a cycle.
type ObjectState struct {
	ID       uint32
	Name     string
	Size     uint32
	Period   int64 // nanoseconds
	DeltaP   int64
	DeltaB   int64
	Critical bool

	Epoch   uint32
	Seq     uint64
	Version int64 // UnixNano
	HasData bool
	Value   []byte
}

// Snapshot file layout: u32 magic, u32 body length, u32 CRC-32 (IEEE)
// of the body, then the body — epoch, cover index, object count, and
// each object encoded with the same field order as ObjectState. The
// whole-body CRC means a torn or short-fsynced snapshot is detected as
// a unit and recovery falls back to the previous one.
const snapMagic = 0x52545053 // "RTPS"

func encodeSnapshot(epoch uint32, cover uint64, objs []ObjectState) []byte {
	body := make([]byte, 0, 64+len(objs)*64)
	body = binary.LittleEndian.AppendUint32(body, epoch)
	body = binary.LittleEndian.AppendUint64(body, cover)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(objs)))
	for i := range objs {
		o := &objs[i]
		body = binary.LittleEndian.AppendUint32(body, o.ID)
		body = binary.LittleEndian.AppendUint16(body, uint16(len(o.Name)))
		body = append(body, o.Name...)
		body = binary.LittleEndian.AppendUint32(body, o.Size)
		body = binary.LittleEndian.AppendUint64(body, uint64(o.Period))
		body = binary.LittleEndian.AppendUint64(body, uint64(o.DeltaP))
		body = binary.LittleEndian.AppendUint64(body, uint64(o.DeltaB))
		flags := byte(0)
		if o.Critical {
			flags |= 1
		}
		if o.HasData {
			flags |= 2
		}
		body = append(body, flags)
		body = binary.LittleEndian.AppendUint32(body, o.Epoch)
		body = binary.LittleEndian.AppendUint64(body, o.Seq)
		body = binary.LittleEndian.AppendUint64(body, uint64(o.Version))
		body = binary.LittleEndian.AppendUint32(body, uint32(len(o.Value)))
		body = append(body, o.Value...)
	}
	out := make([]byte, 0, 12+len(body))
	out = binary.LittleEndian.AppendUint32(out, snapMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, crcTable))
	return append(out, body...)
}

// decodeSnapshot validates and decodes a snapshot file's contents.
// Any structural problem — bad magic, short body, CRC mismatch,
// truncated object — invalidates the whole snapshot.
func decodeSnapshot(data []byte) (epoch uint32, cover uint64, objs []ObjectState, ok bool) {
	if len(data) < 12 || binary.LittleEndian.Uint32(data) != snapMagic {
		return 0, 0, nil, false
	}
	n := binary.LittleEndian.Uint32(data[4:])
	crc := binary.LittleEndian.Uint32(data[8:])
	if uint32(len(data)-12) != n {
		return 0, 0, nil, false
	}
	body := data[12:]
	if crc32.Checksum(body, crcTable) != crc {
		return 0, 0, nil, false
	}
	p := body
	u16 := func() (uint16, bool) {
		if len(p) < 2 {
			return 0, false
		}
		v := binary.LittleEndian.Uint16(p)
		p = p[2:]
		return v, true
	}
	u32 := func() (uint32, bool) {
		if len(p) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(p)
		p = p[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(p) < 8 {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, true
	}
	var ok1, ok2, ok3 bool
	epoch, ok1 = u32()
	cover, ok2 = u64()
	count, ok3 := u32()
	if !(ok1 && ok2 && ok3) {
		return 0, 0, nil, false
	}
	objs = make([]ObjectState, 0, count)
	for i := uint32(0); i < count; i++ {
		var o ObjectState
		var okf bool
		if o.ID, okf = u32(); !okf {
			return 0, 0, nil, false
		}
		nameLen, okf := u16()
		if !okf || len(p) < int(nameLen) {
			return 0, 0, nil, false
		}
		o.Name = string(p[:nameLen])
		p = p[nameLen:]
		var period, dp, db, seq, version uint64
		if o.Size, okf = u32(); !okf {
			return 0, 0, nil, false
		}
		if period, okf = u64(); !okf {
			return 0, 0, nil, false
		}
		if dp, okf = u64(); !okf {
			return 0, 0, nil, false
		}
		if db, okf = u64(); !okf {
			return 0, 0, nil, false
		}
		if len(p) < 1 {
			return 0, 0, nil, false
		}
		flags := p[0]
		p = p[1:]
		o.Period, o.DeltaP, o.DeltaB = int64(period), int64(dp), int64(db)
		o.Critical, o.HasData = flags&1 != 0, flags&2 != 0
		if o.Epoch, okf = u32(); !okf {
			return 0, 0, nil, false
		}
		if seq, okf = u64(); !okf {
			return 0, 0, nil, false
		}
		if version, okf = u64(); !okf {
			return 0, 0, nil, false
		}
		o.Seq, o.Version = seq, int64(version)
		valLen, okf := u32()
		if !okf || len(p) < int(valLen) {
			return 0, 0, nil, false
		}
		if valLen > 0 {
			o.Value = append([]byte(nil), p[:valLen]...)
		}
		p = p[valLen:]
		objs = append(objs, o)
	}
	if len(p) != 0 {
		return 0, 0, nil, false
	}
	return epoch, cover, objs, true
}

// loadSnapshot reads and validates one snapshot file.
func loadSnapshot(path string) (epoch uint32, cover uint64, objs []ObjectState, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, false
	}
	return decodeSnapshot(data)
}
