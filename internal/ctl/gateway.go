package ctl

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/gateway"
	"rtpb/internal/temporal"
)

// GatewayServer exposes a gateway on the shared line protocol — the
// third consumer of the lineServer transport. Each TCP connection is
// (lazily, on first SUB) one gateway session; broadcast frames arrive as
// asynchronous EVENT lines on the same connection:
//
//	SUB <group>
//	  → OK <group> members=<n> | ERR shedding... (admission-aware: a
//	    shedding backend refuses the session)
//	UNSUB <group>
//	  → OK <group>
//	BIND <group> <object> [<object>...]
//	  → OK <group> objects=<n>   (declares the group's broadcast set)
//	GROUPS
//	  → OK groups=<n> [| <name> members=<m> objects=<o> frames=<f>]...
//	SESSIONS
//	  → OK sessions=<n> peak=<p> connects=<c> rejected=<r> closed=<d>
//	    mode=<normal|slow-path|shed> delivered=<n> coalesced=<n>
//	    droppedShed=<n> broadcasts=<b>
//	PLACE <name> <size> <period> <deltaP> <deltaB>
//	  → OK shard <i> <id> <updatePeriod> | REJECT <reason...> (a
//	    rejection arms the gateway's placement shed hold)
//	WRITE <name> <base64-value>
//	  → OK <latency> | ERR ...   (never shed by the gateway)
//	READ <name>
//	  → OK <base64-value> <version-rfc3339nano> age=<dur> delta=<dur>
//	    mode=<m> | ERR not found
//
// Push frames (no reply expected; one per bound object per broadcast
// tick to each subscribed connection):
//
//	EVENT <group> <object> <seq> <base64-value> <version-rfc3339nano>
//	  age=<dur> delta=<dur> mode=<m>
//
// A connection whose TCP send path backlogs sheds EVENT lines at the
// push bound; the gateway's freshest-wins coalescing then re-delivers
// only the newest image once the connection drains.
type GatewayServer struct {
	*lineServer
	clk clock.Clock
	gw  *gateway.Gateway

	// sessions maps connections to their gateway sessions; touched only
	// on the clock executor.
	sessions map[*lineConn]*gateway.Session
}

// NewGatewayServer starts a gateway control listener on addr. The
// gateway must share the given clock (its pump).
func NewGatewayServer(clk clock.Clock, gw *gateway.Gateway, addr string) (*GatewayServer, error) {
	s := &GatewayServer{clk: clk, gw: gw, sessions: make(map[*lineConn]*gateway.Session)}
	ls, err := newLineConnServer(clk, addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.lineServer = ls
	return s, nil
}

func (s *GatewayServer) handle(c *lineConn, line string, reply func(string)) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "SUB":
		reply(s.sub(c, fields[1:]))
	case "UNSUB":
		reply(s.unsub(c, fields[1:]))
	case "BIND":
		reply(s.bind(fields[1:]))
	case "GROUPS":
		reply(s.groups())
	case "SESSIONS":
		reply(s.sessionsStatus())
	case "PLACE", "REGISTER":
		reply(s.place(fields[1:]))
	case "WRITE":
		s.write(fields[1:], reply)
	case "READ":
		reply(s.read(fields[1:]))
	default:
		reply("ERR unknown command " + cmd)
	}
}

// session returns the connection's gateway session, admitting one on
// first use. Admission can be refused: that is the gateway shedding.
func (s *GatewayServer) session(c *lineConn) (*gateway.Session, error) {
	if sess, ok := s.sessions[c]; ok {
		return sess, nil
	}
	sess, err := s.gw.Connect(&connSink{conn: c})
	if err != nil {
		return nil, err
	}
	s.sessions[c] = sess
	c.SetOnClose(func() {
		s.clk.Post(func() {
			if cur, ok := s.sessions[c]; ok && cur == sess {
				delete(s.sessions, c)
				sess.Close()
			}
		})
	})
	return sess, nil
}

func (s *GatewayServer) sub(c *lineConn, args []string) string {
	if len(args) != 1 {
		return "ERR usage: SUB <group>"
	}
	sess, err := s.session(c)
	if err != nil {
		return "ERR " + err.Error()
	}
	if err := s.gw.Subscribe(sess, args[0]); err != nil {
		return "ERR " + err.Error()
	}
	grp := s.gw.Bind(args[0])
	return fmt.Sprintf("OK %s members=%d", args[0], grp.Members())
}

func (s *GatewayServer) unsub(c *lineConn, args []string) string {
	if len(args) != 1 {
		return "ERR usage: UNSUB <group>"
	}
	sess, ok := s.sessions[c]
	if !ok {
		return "ERR no session"
	}
	s.gw.Unsubscribe(sess, args[0])
	return "OK " + args[0]
}

func (s *GatewayServer) bind(args []string) string {
	if len(args) < 2 {
		return "ERR usage: BIND <group> <object> [<object>...]"
	}
	grp := s.gw.Bind(args[0], args[1:]...)
	return fmt.Sprintf("OK %s objects=%d", args[0], len(grp.Objects()))
}

func (s *GatewayServer) groups() string {
	groups := s.gw.Groups()
	var b strings.Builder
	fmt.Fprintf(&b, "OK groups=%d", len(groups))
	for _, grp := range groups {
		st := grp.Stats()
		fmt.Fprintf(&b, " | %s members=%d objects=%d frames=%d",
			grp.Name(), grp.Members(), len(grp.Objects()), st.Frames)
	}
	return b.String()
}

func (s *GatewayServer) sessionsStatus() string {
	st := s.gw.Stats()
	return fmt.Sprintf("OK sessions=%d peak=%d connects=%d rejected=%d closed=%d mode=%s delivered=%d coalesced=%d droppedShed=%d broadcasts=%d",
		st.Sessions, st.PeakSessions, st.Connects, st.Rejected, st.Closed,
		s.gw.Mode(), st.Delivered, st.Coalesced, st.DroppedShed, st.Broadcasts)
}

func (s *GatewayServer) place(args []string) string {
	if len(args) != 5 {
		return "ERR usage: PLACE <name> <size> <period> <deltaP> <deltaB>"
	}
	size, err := strconv.Atoi(args[1])
	if err != nil {
		return "ERR bad size: " + err.Error()
	}
	var durs [3]time.Duration
	for i, a := range args[2:] {
		d, err := time.ParseDuration(a)
		if err != nil {
			return "ERR bad duration: " + err.Error()
		}
		durs[i] = d
	}
	idx, d, err := s.gw.Place(core.ObjectSpec{
		Name:         args[0],
		Size:         size,
		UpdatePeriod: durs[0],
		Constraint:   temporal.ExternalConstraint{DeltaP: durs[1], DeltaB: durs[2]},
	})
	if err != nil {
		reason := d.Reason
		if reason == "" {
			reason = err.Error()
		}
		if d.SuggestedDeltaB > 0 {
			return fmt.Sprintf("REJECT %s | suggest %v", reason, d.SuggestedDeltaB)
		}
		return "REJECT " + reason
	}
	return fmt.Sprintf("OK shard %d %d %v", idx, d.ObjectID, d.UpdatePeriod)
}

func (s *GatewayServer) write(args []string, reply func(string)) {
	if len(args) != 2 {
		reply("ERR usage: WRITE <name> <base64-value>")
		return
	}
	value, err := base64.StdEncoding.DecodeString(args[1])
	if err != nil {
		reply("ERR bad base64: " + err.Error())
		return
	}
	err = s.gw.Write(args[0], value, func(lat time.Duration, err error) {
		if err != nil {
			reply("ERR " + err.Error())
			return
		}
		reply(fmt.Sprintf("OK %v", lat))
	})
	if err != nil {
		reply("ERR " + err.Error())
	}
}

func (s *GatewayServer) read(args []string) string {
	if len(args) != 1 {
		return "ERR usage: READ <name>"
	}
	cert, ok := s.gw.Read(args[0])
	if !ok {
		return "ERR not found"
	}
	return fmt.Sprintf("OK %s %s %s", base64.StdEncoding.EncodeToString(cert.Value),
		cert.Version.Format(time.RFC3339Nano), certFields(cert))
}

// connSink adapts a lineConn to the gateway Sink: frames become EVENT
// lines on the connection's bounded push queue. A full queue returns the
// error that flips the session onto the freshest-wins slow path.
type connSink struct {
	conn *lineConn
}

func (k *connSink) Deliver(f Frame) error {
	return k.conn.Push(fmt.Sprintf("EVENT %s %s %d %s %s %s",
		f.Group, f.Object, f.Seq,
		base64.StdEncoding.EncodeToString(f.Cert.Value),
		f.Cert.Version.Format(time.RFC3339Nano), certFields(f.Cert)))
}

func (k *connSink) Close() {}

// Frame re-exports the gateway frame type for sink implementations.
type Frame = gateway.Frame
