package ctl

import (
	"encoding/base64"
	"strconv"
	"strings"
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/gateway"
	"rtpb/internal/netsim"
	"rtpb/internal/xkernel"
)

// startGateway brings up a real-clock primary fronted by a gateway and
// its control server, returning a connected client.
func startGateway(t *testing.T) (*Client, func()) {
	t.Helper()
	clk := clock.NewReal()
	tr, err := netsim.NewUDP(clk, "127.0.0.1:0")
	if err != nil {
		clk.Stop()
		t.Skipf("UDP unavailable: %v", err)
	}
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(tr)},
	})
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := g.Protocol("uport")

	var gw *gateway.Gateway
	errCh := make(chan error, 1)
	clk.Post(func() {
		primary, err := core.NewPrimary(core.Config{
			Clock: clk,
			Port:  pp.(*xkernel.PortProtocol),
			Ell:   5 * time.Millisecond,
		})
		if err != nil {
			errCh <- err
			return
		}
		gw, err = gateway.New(gateway.Config{
			Clock:           clk,
			Backend:         gateway.ReplicaBackend{Primary: primary},
			BroadcastPeriod: 25 * time.Millisecond,
		})
		errCh <- err
	})
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	srv, err := NewGatewayServer(clk, gw, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return cl, func() {
		cl.Close()
		srv.Close()
		tr.Close()
		clk.Stop()
	}
}

// TestGatewayControlSubscribeStream drives the full gateway surface over
// TCP: placement, write, certificate read, group bind, subscription,
// and the asynchronous EVENT stream with its staleness certificates.
func TestGatewayControlSubscribeStream(t *testing.T) {
	cl, shutdown := startGateway(t)
	defer shutdown()

	reply, err := cl.Do("PLACE alt 64 40ms 50ms 200ms")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "OK shard 0 ") {
		t.Fatalf("PLACE reply = %q", reply)
	}

	if reply, err = cl.Write("alt", []byte("9000 ft")); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("WRITE reply = %q", reply)
	}

	if reply, err = cl.Do("READ alt"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OK ", "age=", "delta=200ms", "mode=normal"} {
		if !strings.Contains(reply, want) {
			t.Fatalf("READ reply = %q, missing %q", reply, want)
		}
	}

	if reply, err = cl.Do("BIND cockpit alt"); err != nil {
		t.Fatal(err)
	}
	if reply != "OK cockpit objects=1" {
		t.Fatalf("BIND reply = %q", reply)
	}

	if reply, err = cl.Do("SUB cockpit"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "OK cockpit members=1") {
		t.Fatalf("SUB reply = %q", reply)
	}

	// The broadcast tick must now stream EVENT frames with monotone
	// sequence numbers and certificate fields.
	var lastSeq uint64
	for i := 0; i < 3; i++ {
		line, err := cl.ReadLine()
		if err != nil {
			t.Fatalf("EVENT read %d: %v", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) < 6 || fields[0] != "EVENT" || fields[1] != "cockpit" || fields[2] != "alt" {
			t.Fatalf("EVENT line = %q", line)
		}
		seq, err := strconv.ParseUint(fields[3], 10, 64)
		if err != nil || seq <= lastSeq {
			t.Fatalf("EVENT seq %q after %d (err=%v)", fields[3], lastSeq, err)
		}
		lastSeq = seq
		if value, err := base64.StdEncoding.DecodeString(fields[4]); err != nil || string(value) != "9000 ft" {
			t.Fatalf("EVENT value = %q err=%v", value, err)
		}
		for _, want := range []string{"age=", "delta=200ms", "mode=normal"} {
			if !strings.Contains(line, want) {
				t.Fatalf("EVENT line = %q, missing %q", line, want)
			}
		}
	}

	// A second connection sees the session and group tables; the
	// streaming connection's session counts as one member.
	cl2, err := Dial(cl.conn.RemoteAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if reply, err = cl2.Do("SESSIONS"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OK sessions=1", "mode=normal", "connects=1"} {
		if !strings.Contains(reply, want) {
			t.Fatalf("SESSIONS reply = %q, missing %q", reply, want)
		}
	}
	if reply, err = cl2.Do("GROUPS"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OK groups=1", "cockpit members=1 objects=1"} {
		if !strings.Contains(reply, want) {
			t.Fatalf("GROUPS reply = %q, missing %q", reply, want)
		}
	}
}

// TestGatewayControlSessionTeardown pins the OnClose path: a dropped
// subscriber connection unbinds its session from the gateway.
func TestGatewayControlSessionTeardown(t *testing.T) {
	cl, shutdown := startGateway(t)
	defer shutdown()

	if _, err := cl.Do("PLACE alt 64 40ms 50ms 200ms"); err != nil {
		t.Fatal(err)
	}
	addr := cl.conn.RemoteAddr().String()
	sub, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if reply, err := sub.Do("SUB cockpit"); err != nil || !strings.HasPrefix(reply, "OK") {
		t.Fatalf("SUB reply = %q err=%v", reply, err)
	}
	if reply, err := cl.Do("SESSIONS"); err != nil || !strings.Contains(reply, "sessions=1") {
		t.Fatalf("SESSIONS before teardown = %q err=%v", reply, err)
	}
	sub.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		reply, err := cl.Do("SESSIONS")
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(reply, "sessions=0") && strings.Contains(reply, "closed=1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never torn down: %q", reply)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
