package ctl

import (
	"encoding/base64"
	"strings"
	"testing"
	"time"

	"rtpb/internal/shard"
)

// startShardCluster builds a simulated 2-shard cluster and its control
// server. The cluster runs on a virtual clock, which is single-threaded
// by design, so the tests drive the verb handler directly (the TCP
// transport is the same lineServer the single-pair Server tests cover)
// and advance virtual time in between.
func startShardCluster(t *testing.T) (*shard.Cluster, *ShardServer) {
	t.Helper()
	cluster, err := shard.NewCluster(shard.Config{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewShardServer(cluster.Clock(), cluster, "127.0.0.1:0")
	if err != nil {
		cluster.Stop()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		cluster.Stop()
	})
	return cluster, srv
}

// do runs one command synchronously on the handler.
func do(t *testing.T, srv *ShardServer, line string) string {
	t.Helper()
	var out string
	called := false
	srv.handle(line, func(r string) { out, called = r, true })
	if !called {
		t.Fatalf("%q: no synchronous reply", line)
	}
	return out
}

func TestShardServerPlaceRouteShards(t *testing.T) {
	cluster, srv := startShardCluster(t)

	reply := do(t, srv, "PLACE counter 64 20ms 20ms 120ms")
	if !strings.HasPrefix(reply, "OK shard 0 ") {
		t.Fatalf("PLACE: %q", reply)
	}
	// REGISTER against the cluster is placement.
	reply = do(t, srv, "REGISTER gauge 64 20ms 20ms 120ms")
	if !strings.HasPrefix(reply, "OK shard ") {
		t.Fatalf("REGISTER: %q", reply)
	}

	reply = do(t, srv, "ROUTE counter")
	if !strings.HasPrefix(reply, "OK shard 0 primary shard0-p:") || !strings.Contains(reply, "epoch 1") {
		t.Fatalf("ROUTE: %q", reply)
	}
	if reply = do(t, srv, "ROUTE ghost"); reply != "ERR not placed" {
		t.Fatalf("ROUTE ghost: %q", reply)
	}

	reply = do(t, srv, "SHARDS")
	if !strings.HasPrefix(reply, "OK shards=2 | 0 primary=shard0-p:") {
		t.Fatalf("SHARDS: %q", reply)
	}
	if !strings.Contains(reply, "| 1 primary=shard1-p:") {
		t.Fatalf("SHARDS missing shard 1: %q", reply)
	}

	// A write forwards to the owning shard's primary; the reply lands
	// once virtual time covers the round trip.
	payload := base64.StdEncoding.EncodeToString([]byte("v1"))
	var writeReply string
	srv.handle("WRITE counter "+payload, func(r string) { writeReply = r })
	cluster.RunFor(100 * time.Millisecond)
	if !strings.HasPrefix(writeReply, "OK ") {
		t.Fatalf("WRITE: %q", writeReply)
	}

	reply = do(t, srv, "READ counter")
	want := "OK " + payload + " "
	if !strings.HasPrefix(reply, want) {
		t.Fatalf("READ: %q, want prefix %q", reply, want)
	}
}

func TestShardServerMigrate(t *testing.T) {
	cluster, srv := startShardCluster(t)

	do(t, srv, "PLACE mig 64 20ms 20ms 120ms")
	payload := base64.StdEncoding.EncodeToString([]byte("before"))
	srv.handle("WRITE mig "+payload, func(string) {})
	cluster.RunFor(100 * time.Millisecond)

	if reply := do(t, srv, "MIGRATE mig 1"); reply != "OK mig shard 1" {
		t.Fatalf("MIGRATE: %q", reply)
	}
	if reply := do(t, srv, "ROUTE mig"); !strings.HasPrefix(reply, "OK shard 1 primary shard1-p:") {
		t.Fatalf("ROUTE after migrate: %q", reply)
	}
	// The value moved with the object.
	if reply := do(t, srv, "READ mig"); !strings.HasPrefix(reply, "OK "+payload+" ") {
		t.Fatalf("READ after migrate: %q", reply)
	}
	if reply := do(t, srv, "MIGRATE ghost 1"); !strings.HasPrefix(reply, "ERR ") {
		t.Fatalf("MIGRATE ghost: %q", reply)
	}
	if reply := do(t, srv, "MIGRATE mig 9"); !strings.HasPrefix(reply, "ERR ") {
		t.Fatalf("MIGRATE out of range: %q", reply)
	}
}

func TestShardServerRejectsAndErrors(t *testing.T) {
	_, srv := startShardCluster(t)

	// An impossible constraint is rejected with a reason, like REGISTER
	// against a single pair.
	reply := do(t, srv, "PLACE hot 64 1ms 1ms 2ms")
	if !strings.HasPrefix(reply, "REJECT ") {
		t.Fatalf("PLACE impossible: %q", reply)
	}
	if reply := do(t, srv, "WRITE ghost "+base64.StdEncoding.EncodeToString([]byte("x"))); !strings.HasPrefix(reply, "ERR ") {
		t.Fatalf("WRITE unplaced: %q", reply)
	}
	if reply := do(t, srv, "READ ghost"); reply != "ERR not found" {
		t.Fatalf("READ unplaced: %q", reply)
	}
	if reply := do(t, srv, "BOGUS"); !strings.HasPrefix(reply, "ERR unknown command") {
		t.Fatalf("BOGUS: %q", reply)
	}
	if reply := do(t, srv, "PLACE short 64"); !strings.HasPrefix(reply, "ERR usage") {
		t.Fatalf("PLACE short: %q", reply)
	}
}

func TestShardServerDuplicatePlace(t *testing.T) {
	_, srv := startShardCluster(t)
	do(t, srv, "PLACE dup 64 20ms 20ms 120ms")
	reply := do(t, srv, "PLACE dup 64 20ms 20ms 120ms")
	if !strings.HasPrefix(reply, "REJECT ") {
		t.Fatalf("duplicate PLACE: %q", reply)
	}
	if !strings.Contains(reply, "already placed") {
		t.Fatalf("duplicate PLACE reason: %q", reply)
	}
}
