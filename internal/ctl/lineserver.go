package ctl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rtpb/internal/clock"
)

// This file is the shared control-socket transport extracted from the
// Server/ShardServer pair: a line-oriented TCP listener that posts each
// command onto a clock executor and writes the reply back. Three
// consumers ride on it — Server (one primary), ShardServer (a sharded
// cluster), and GatewayServer (the session/group front tier) — differing
// only in the handler they install. The gateway consumer needed two
// things the original transport lacked, so they live here for everyone:
// a per-connection context (lineConn) commands can bind state to, and an
// asynchronous push channel for server-initiated EVENT lines that must
// never block the executor (a slow consumer sheds pushes, it does not
// stall the pump).

// ErrPushBacklog reports a push dropped because the connection's
// outbound buffer is full — the signal a gateway session uses to enter
// its freshest-wins slow path.
var ErrPushBacklog = errors.New("ctl: push backlog full")

// pushBacklog is the per-connection bound on queued EVENT lines.
const pushBacklog = 64

// lineConn is one client connection's server-side context. Handlers
// (which run on the clock executor) may bind per-connection state via
// SetOnClose and stream EVENT lines with Push; both are safe against the
// reply path because all writes share one mutex.
type lineConn struct {
	conn net.Conn

	wmu sync.Mutex // serializes reply and push writes

	push     chan string
	dropped  atomic.Uint64
	closed   chan struct{}
	closeOne sync.Once

	onClose func() // set by a handler on the executor; run once at teardown
}

func newLineConn(conn net.Conn) *lineConn {
	c := &lineConn{
		conn:   conn,
		push:   make(chan string, pushBacklog),
		closed: make(chan struct{}),
	}
	go c.pushLoop()
	return c
}

// Push enqueues one asynchronous line (the caller includes any EVENT
// framing). It never blocks: a full backlog returns ErrPushBacklog and
// counts a drop, so the executor-side caller can coalesce instead.
func (c *lineConn) Push(line string) error {
	select {
	case <-c.closed:
		return net.ErrClosed
	default:
	}
	select {
	case c.push <- line:
		return nil
	default:
		c.dropped.Add(1)
		return ErrPushBacklog
	}
}

// PushDropped counts pushes shed by the backlog bound.
func (c *lineConn) PushDropped() uint64 { return c.dropped.Load() }

// SetOnClose registers a teardown hook, called exactly once after the
// connection's read loop exits (from the connection's goroutine; post to
// an executor if needed).
func (c *lineConn) SetOnClose(fn func()) { c.onClose = fn }

// RemoteAddr names the peer.
func (c *lineConn) RemoteAddr() string { return c.conn.RemoteAddr().String() }

func (c *lineConn) writeLine(line string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	_, err := fmt.Fprintln(c.conn, line)
	return err
}

// pushLoop drains queued EVENT lines to the socket.
func (c *lineConn) pushLoop() {
	for {
		select {
		case line := <-c.push:
			if c.writeLine(line) != nil {
				c.conn.Close() // wake the read loop; teardown happens there
				return
			}
		case <-c.closed:
			return
		}
	}
}

func (c *lineConn) teardown() {
	c.closeOne.Do(func() {
		close(c.closed)
		c.conn.Close()
		if c.onClose != nil {
			c.onClose()
		}
	})
}

// lineServer is the shared listener: accepts connections, reads one
// command line at a time, dispatches it onto the clock executor, and
// writes the reply.
type lineServer struct {
	clk     clock.Clock
	ln      net.Listener
	handler func(c *lineConn, line string, reply func(string))

	mu    sync.Mutex
	conns map[*lineConn]struct{}
	done  chan struct{}
}

// newLineServer starts the control listener on addr ("host:port", ":0"
// for ephemeral) with a connection-blind handler (Server, ShardServer).
func newLineServer(clk clock.Clock, addr string, handler func(string, func(string))) (*lineServer, error) {
	return newLineConnServer(clk, addr, func(_ *lineConn, line string, reply func(string)) {
		handler(line, reply)
	})
}

// newLineConnServer starts the listener with a connection-aware handler
// (GatewayServer binds sessions to connections).
func newLineConnServer(clk clock.Clock, addr string, handler func(*lineConn, string, func(string))) (*lineServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ctl: listen %q: %w", addr, err)
	}
	s := &lineServer{
		clk:     clk,
		ln:      ln,
		handler: handler,
		conns:   make(map[*lineConn]struct{}),
		done:    make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listener's address.
func (s *lineServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and all client connections.
func (s *lineServer) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.conn.Close()
	}
	s.mu.Unlock()
	<-s.done
	return err
}

func (s *lineServer) acceptLoop() {
	defer close(s.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		c := newLineConn(conn)
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serve(c)
		}()
	}
}

func (s *lineServer) serve(c *lineConn) {
	defer func() {
		c.teardown()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 64*1024), 2*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		reply := s.dispatch(c, line)
		if c.writeLine(reply) != nil {
			return
		}
	}
}

// dispatch runs one command on the clock executor and waits for its
// reply.
func (s *lineServer) dispatch(c *lineConn, line string) string {
	replyCh := make(chan string, 1)
	s.clk.Post(func() {
		s.handler(c, line, func(reply string) { replyCh <- reply })
	})
	select {
	case r := <-replyCh:
		return r
	case <-time.After(10 * time.Second):
		return "ERR control command timed out"
	}
}
