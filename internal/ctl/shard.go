package ctl

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/shard"
	"rtpb/internal/temporal"
)

// ShardServer exposes a sharded cluster on the same line protocol the
// single-pair Server speaks, with the routing surface on top:
//
//	PLACE <name> <size> <period> <deltaP> <deltaB>
//	  → OK shard <i> <id> <updatePeriod>   on admission somewhere
//	  → REJECT <reason...> [| suggest <deltaB>]
//	REGISTER <name> <size> <period> <deltaP> <deltaB>
//	  → alias for PLACE: registration against the cluster is placement
//	ROUTE <name>
//	  → OK shard <i> primary <addr> epoch <e> | ERR not placed
//	SHARDS
//	  → OK shards=<k> [| <i> primary=<addr> epoch=<e> objects=<n>
//	    utilization=<u> backupAlive=<bool> promotions=<p> degraded=<d>
//	    shed=<s>]...  (degraded/shed count objects the shard's overload
//	    governor currently holds below normal mode)
//	MIGRATE <name> <shard>
//	  → OK <name> shard <i> | ERR <reason...>
//	WRITE <name> <base64-value>
//	  → OK <latency>, forwarded to the owning shard's current primary
//	READ <name>
//	  → OK <base64-value> <version-rfc3339nano> age=<dur> delta=<dur>
//	    mode=<m> | ERR not found
//
// WRITE and READ re-resolve the owning shard on every call, so clients
// keep a single control connection across per-shard failovers.
type ShardServer struct {
	*lineServer
	cluster *shard.Cluster
}

// NewShardServer starts the cluster control listener on addr.
func NewShardServer(clk clock.Clock, cluster *shard.Cluster, addr string) (*ShardServer, error) {
	s := &ShardServer{cluster: cluster}
	ls, err := newLineServer(clk, addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.lineServer = ls
	return s, nil
}

// handle executes a command on the executor; reply must be called
// exactly once (possibly later, for WRITE).
func (s *ShardServer) handle(line string, reply func(string)) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "PLACE", "REGISTER":
		reply(s.place(fields[1:]))
	case "ROUTE":
		reply(s.route(fields[1:]))
	case "SHARDS":
		reply(s.shards())
	case "MIGRATE":
		reply(s.migrate(fields[1:]))
	case "WRITE":
		s.write(fields[1:], reply)
	case "READ":
		reply(s.read(fields[1:]))
	default:
		reply("ERR unknown command " + cmd)
	}
}

func (s *ShardServer) place(args []string) string {
	if len(args) != 5 {
		return "ERR usage: PLACE <name> <size> <period> <deltaP> <deltaB>"
	}
	size, err := strconv.Atoi(args[1])
	if err != nil {
		return "ERR bad size: " + err.Error()
	}
	var durs [3]time.Duration
	for i, a := range args[2:] {
		d, err := time.ParseDuration(a)
		if err != nil {
			return "ERR bad duration: " + err.Error()
		}
		durs[i] = d
	}
	idx, d, err := s.cluster.Place(core.ObjectSpec{
		Name:         args[0],
		Size:         size,
		UpdatePeriod: durs[0],
		Constraint:   temporal.ExternalConstraint{DeltaP: durs[1], DeltaB: durs[2]},
	})
	if err != nil {
		reason := d.Reason
		if reason == "" {
			reason = err.Error()
		}
		if d.SuggestedDeltaB > 0 {
			return fmt.Sprintf("REJECT %s | suggest %v", reason, d.SuggestedDeltaB)
		}
		return "REJECT " + reason
	}
	return fmt.Sprintf("OK shard %d %d %v", idx, d.ObjectID, d.UpdatePeriod)
}

func (s *ShardServer) route(args []string) string {
	if len(args) != 1 {
		return "ERR usage: ROUTE <name>"
	}
	idx, ok := s.cluster.Route(args[0])
	if !ok {
		return "ERR not placed"
	}
	st := s.cluster.Statuses()[idx]
	return fmt.Sprintf("OK shard %d primary %s epoch %d", idx, st.PrimaryAddr, st.Epoch)
}

func (s *ShardServer) shards() string {
	var b strings.Builder
	statuses := s.cluster.Statuses()
	fmt.Fprintf(&b, "OK shards=%d", len(statuses))
	for _, st := range statuses {
		fmt.Fprintf(&b, " | %d primary=%s epoch=%d objects=%d utilization=%.4f backupAlive=%v promotions=%d degraded=%d shed=%d",
			st.Index, st.PrimaryAddr, st.Epoch, st.Objects, st.Utilization, st.BackupAlive, st.Promotions,
			st.Degraded, st.Shed)
	}
	return b.String()
}

func (s *ShardServer) migrate(args []string) string {
	if len(args) != 2 {
		return "ERR usage: MIGRATE <name> <shard>"
	}
	dst, err := strconv.Atoi(args[1])
	if err != nil {
		return "ERR bad shard index: " + err.Error()
	}
	if err := s.cluster.Migrate(args[0], dst); err != nil {
		return "ERR " + err.Error()
	}
	return fmt.Sprintf("OK %s shard %d", args[0], dst)
}

func (s *ShardServer) write(args []string, reply func(string)) {
	if len(args) != 2 {
		reply("ERR usage: WRITE <name> <base64-value>")
		return
	}
	value, err := base64.StdEncoding.DecodeString(args[1])
	if err != nil {
		reply("ERR bad base64: " + err.Error())
		return
	}
	err = s.cluster.Write(args[0], value, func(lat time.Duration, err error) {
		if err != nil {
			reply("ERR " + err.Error())
			return
		}
		reply(fmt.Sprintf("OK %v", lat))
	})
	if err != nil {
		reply("ERR " + err.Error())
	}
}

func (s *ShardServer) read(args []string) string {
	if len(args) != 1 {
		return "ERR usage: READ <name>"
	}
	cert, ok := s.cluster.Certificate(args[0])
	if !ok {
		return "ERR not found"
	}
	return fmt.Sprintf("OK %s %s %s", base64.StdEncoding.EncodeToString(cert.Value),
		cert.Version.Format(time.RFC3339Nano), certFields(cert))
}
