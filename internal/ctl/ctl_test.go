package ctl

import (
	"encoding/base64"
	"strings"
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/durable"
	"rtpb/internal/netsim"
	"rtpb/internal/xkernel"
)

// startPrimary brings up a real-clock primary over real UDP plus its
// control server, returning a connected client.
func startPrimary(t *testing.T) (*Client, func()) {
	return startPrimaryDurable(t, nil)
}

// startPrimaryDurable is startPrimary with an optional durable store
// attached to the primary (nil runs without persistence).
func startPrimaryDurable(t *testing.T, dlog *durable.Log) (*Client, func()) {
	t.Helper()
	return startPrimaryWith(t, func(cfg *core.Config) { cfg.Durable = dlog })
}

// startPrimaryWith is startPrimary with a config mutator applied before
// the replica starts.
func startPrimaryWith(t *testing.T, mutate func(*core.Config)) (*Client, func()) {
	t.Helper()
	clk := clock.NewReal()
	tr, err := netsim.NewUDP(clk, "127.0.0.1:0")
	if err != nil {
		clk.Stop()
		t.Skipf("UDP unavailable: %v", err)
	}
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(tr)},
	})
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := g.Protocol("uport")

	var primary *core.Primary
	errCh := make(chan error, 1)
	clk.Post(func() {
		cfg := core.Config{
			Clock: clk,
			Port:  pp.(*xkernel.PortProtocol),
			// No peer: the control interface works standalone.
			Ell: 5 * time.Millisecond,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		p, err := core.NewPrimary(cfg)
		primary = p
		errCh <- err
	})
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(clk, primary, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	return cl, func() {
		cl.Close()
		srv.Close()
		tr.Close()
		clk.Stop()
	}
}

func TestControlRegisterWriteReadStatus(t *testing.T) {
	cl, shutdown := startPrimary(t)
	defer shutdown()

	reply, err := cl.Do("REGISTER alt 64 40ms 50ms 200ms")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("REGISTER reply = %q", reply)
	}

	reply, err = cl.Write("alt", []byte("9000 ft"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "OK ") {
		t.Fatalf("WRITE reply = %q", reply)
	}

	reply, err = cl.Do("READ alt")
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(reply)
	if len(fields) < 3 || fields[0] != "OK" {
		t.Fatalf("READ reply = %q", reply)
	}
	value, err := base64.StdEncoding.DecodeString(fields[1])
	if err != nil || string(value) != "9000 ft" {
		t.Fatalf("READ value = %q err=%v", value, err)
	}
	// The reply carries a staleness certificate: age at the read and the
	// mode-effective admitted bound it is certified against.
	for _, want := range []string{"age=", "delta=", "mode=normal"} {
		if !strings.Contains(reply, want) {
			t.Fatalf("READ reply = %q, missing certificate field %q", reply, want)
		}
	}

	reply, err = cl.Do("STATUS")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"role=primary", "objects=1", "transitions=0"} {
		if !strings.Contains(reply, want) {
			t.Fatalf("STATUS reply = %q, missing %q", reply, want)
		}
	}
}

func TestControlRejectionAndErrors(t *testing.T) {
	cl, shutdown := startPrimary(t)
	defer shutdown()

	cases := []struct {
		cmd  string
		want string
	}{
		{"REGISTER bad 64 60ms 50ms 200ms", "REJECT"}, // p > δP
		{"REGISTER x 64 40ms", "ERR usage"},
		{"REGISTER x notanum 40ms 50ms 200ms", "ERR bad size"},
		{"REGISTER x 64 40ms 50ms bogus", "ERR bad duration"},
		{"WRITE ghost aGk=", "ERR"},
		{"WRITE ghost not-base64!", "ERR bad base64"},
		{"READ ghost", "ERR not found"},
		{"RELATE a b 10ms", "REJECT"},
		{"FROB x", "ERR unknown command"},
	}
	for _, tc := range cases {
		reply, err := cl.Do(tc.cmd)
		if err != nil {
			t.Fatalf("%q: %v", tc.cmd, err)
		}
		if !strings.HasPrefix(reply, tc.want) {
			t.Fatalf("%q reply = %q, want prefix %q", tc.cmd, reply, tc.want)
		}
	}
}

func TestControlRelate(t *testing.T) {
	cl, shutdown := startPrimary(t)
	defer shutdown()
	for _, name := range []string{"a", "b"} {
		if reply, _ := cl.Do("REGISTER " + name + " 8 20ms 40ms 400ms"); !strings.HasPrefix(reply, "OK") {
			t.Fatalf("register %s: %q", name, reply)
		}
	}
	reply, err := cl.Do("RELATE a b 60ms")
	if err != nil || reply != "OK" {
		t.Fatalf("RELATE reply = %q err=%v", reply, err)
	}
}

func TestControlMultipleClients(t *testing.T) {
	cl1, shutdown := startPrimary(t)
	defer shutdown()
	if reply, _ := cl1.Do("REGISTER shared 8 40ms 50ms 200ms"); !strings.HasPrefix(reply, "OK") {
		t.Fatalf("register: %q", reply)
	}
	// A second client sees the same object table.
	cl2, err := Dial(strings.TrimPrefix(cl1.conn.RemoteAddr().String(), ""))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	reply, err := cl2.Do("STATUS")
	if err != nil || !strings.Contains(reply, "objects=1") {
		t.Fatalf("second client STATUS = %q err=%v", reply, err)
	}
}

// TestControlLogstatSnapshot covers the durable-store verbs: without
// persistence both report a clean error; with a store attached LOGSTAT
// reports the segment/snapshot inventory and recovery source, and
// SNAPSHOT forces a snapshot the next LOGSTAT reflects.
func TestControlLogstatSnapshot(t *testing.T) {
	cl, shutdown := startPrimary(t)
	for _, cmd := range []string{"LOGSTAT", "SNAPSHOT"} {
		reply, err := cl.Do(cmd)
		if err != nil || reply != "ERR durable persistence not enabled" {
			t.Fatalf("%s without a store = %q err=%v", cmd, reply, err)
		}
	}
	shutdown()

	dlog, err := durable.Open(durable.Config{Dir: t.TempDir(), Sync: true, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dlog.Close()
	cl, shutdown = startPrimaryDurable(t, dlog)
	defer shutdown()
	if reply, _ := cl.Do("REGISTER alt 64 40ms 50ms 200ms"); !strings.HasPrefix(reply, "OK") {
		t.Fatalf("register: %q", reply)
	}
	if reply, _ := cl.Write("alt", []byte("9000 ft")); !strings.HasPrefix(reply, "OK") {
		t.Fatalf("write: %q", reply)
	}
	reply, err := cl.Do("LOGSTAT")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OK segments=", "source=network", "restored=0", "dropped=0"} {
		if !strings.Contains(reply, want) {
			t.Fatalf("LOGSTAT reply = %q, missing %q", reply, want)
		}
	}
	reply, err = cl.Do("SNAPSHOT")
	if err != nil || !strings.HasPrefix(reply, "OK snapshots=") {
		t.Fatalf("SNAPSHOT reply = %q err=%v", reply, err)
	}
	reply, err = cl.Do("LOGSTAT")
	if err != nil || strings.Contains(reply, "snapshots=0") {
		t.Fatalf("LOGSTAT after SNAPSHOT = %q err=%v", reply, err)
	}
}

// TestControlClock covers the CLOCK verb: with probing disabled it
// reports sync=off; with probing enabled but no completed probe it
// reports an invalid estimate — never a fake zero offset.
func TestControlClock(t *testing.T) {
	cl, shutdown := startPrimary(t)
	reply, err := cl.Do("CLOCK")
	if err != nil || reply != "OK sync=off" {
		t.Fatalf("CLOCK with sync disabled = %q err=%v", reply, err)
	}
	shutdown()

	cl, shutdown = startPrimaryWith(t, func(cfg *core.Config) { cfg.ClockSync = true })
	defer shutdown()
	reply, err = cl.Do("CLOCK")
	if err != nil || reply != "OK sync=on valid=false accepted=0 rejected=0" {
		t.Fatalf("CLOCK with sync enabled but unprobed = %q err=%v", reply, err)
	}
}

func TestControlRepairAndRecruit(t *testing.T) {
	cl, shutdown := startPrimary(t)
	defer shutdown()

	// No peers attached yet: the repair view is empty.
	reply, err := cl.Do("REPAIR")
	if err != nil || reply != "OK synced=0 peers=0" {
		t.Fatalf("REPAIR reply = %q err=%v", reply, err)
	}

	// Recruiting a peer attaches it immediately; with nothing listening at
	// the address the exchange stays pending, which REPAIR reports.
	reply, err = cl.Do("RECRUIT 127.0.0.1:65000")
	if err != nil || reply != "OK 127.0.0.1:65000" {
		t.Fatalf("RECRUIT reply = %q err=%v", reply, err)
	}
	reply, err = cl.Do("REPAIR")
	if err != nil || !strings.Contains(reply, "peers=1") ||
		!strings.Contains(reply, "127.0.0.1:65000") ||
		!strings.Contains(reply, "syncing=true") {
		t.Fatalf("REPAIR after recruit = %q err=%v", reply, err)
	}

	// Recruiting the same address twice is an error, not a reset.
	reply, err = cl.Do("RECRUIT 127.0.0.1:65000")
	if err != nil || !strings.HasPrefix(reply, "ERR") {
		t.Fatalf("duplicate RECRUIT reply = %q err=%v", reply, err)
	}

	if reply, _ = cl.Do("RECRUIT"); !strings.HasPrefix(reply, "ERR usage") {
		t.Fatalf("RECRUIT arity reply = %q", reply)
	}
}
