// Package ctl is the client-facing control interface of the rtpbd daemon:
// a line-oriented TCP protocol playing the role the Mach IPC-based RTPB
// API plays in the paper (the client application is co-located with the
// primary and talks to the server through a local endpoint).
//
// Protocol (one request line, one response line, UTF-8):
//
//	REGISTER <name> <size> <period> <deltaP> <deltaB>
//	  → OK <id> <updatePeriod>       on admission
//	  → REJECT <reason...> [| suggest <deltaB>]
//	RELATE <nameI> <nameJ> <deltaIJ>
//	  → OK | REJECT <reason...>
//	WRITE <name> <base64-value>
//	  → OK <latency> | ERR <reason...>
//	READ <name>
//	  → OK <base64-value> <version-rfc3339nano> age=<dur> delta=<dur>
//	    mode=<normal|compressed|shed> theta=<dur> depth=<n> | ERR not found
//	  (age is the image's staleness at the read; delta the mode-effective
//	  admitted δ_B it is certified against; theta the clock uncertainty
//	  accumulated from the serving primary; depth the issuing replica's
//	  hop count from it)
//	STATUS
//	  → OK role=<primary|backup> objects=<n> utilization=<u> epoch=<e>
//	    backupAlive=<bool> transitions=<n>
//	REPAIR
//	  → OK synced=<n> peers=<m> [| <addr> alive=<bool> syncing=<bool>
//	    observer=<bool> sent=<entries> skipped=<entries> retx=<chunks>
//	    completions=<c>]...
//	OBSERVERS
//	  → OK observers=<n> depth=<d> theta=<dur>
//	    [| <addr> alive=<bool> syncing=<bool>]...
//	  (n counts attached read-only subscribers; depth/theta are this
//	  replica's own chain position — 0/0s on a serving primary)
//	RECRUIT <addr>
//	  → OK <addr> | ERR <reason...>
//	LOGSTAT
//	  → OK segments=<n> prunable_segments=<n> prunable_epochs=<n>
//	    pruned=<n> snapshots=<n> last_snapshot_epoch=<e> epoch=<e>
//	    appended=<n> dropped=<n> source=<disk|network|none> restored=<n>
//	  → ERR durable persistence not enabled
//	SNAPSHOT
//	  → OK snapshots=<n> last_snapshot_epoch=<e> segments=<n> pruned=<n>
//	  → ERR durable persistence not enabled
//	CLOCK
//	  → OK sync=off
//	  → OK sync=on valid=false accepted=<n> rejected=<n>
//	  → OK sync=on valid=true offset=<d> theta=<d> rtt=<d> age=<d>
//	    accepted=<n> rejected=<n>
//
// Durations use Go syntax (40ms, 1s).
//
// ShardServer speaks the same line protocol for a sharded cluster,
// adding PLACE/ROUTE/SHARDS/MIGRATE and routing WRITE/READ to the
// owning shard's current primary (see shard.go).
package ctl

import (
	"bufio"
	"encoding/base64"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/temporal"
	"rtpb/internal/xkernel"
)

// Server exposes a Primary on a TCP control socket. Commands are posted
// onto the replica's clock executor, preserving the protocol's serial
// execution model.
type Server struct {
	*lineServer
	primary *core.Primary
}

// NewServer starts the control listener on addr ("host:port", ":0" for
// ephemeral).
func NewServer(clk clock.Clock, primary *core.Primary, addr string) (*Server, error) {
	s := &Server{primary: primary}
	ls, err := newLineServer(clk, addr, s.handle)
	if err != nil {
		return nil, err
	}
	s.lineServer = ls
	return s, nil
}

// handle executes a command on the executor; reply must be called exactly
// once (possibly later, for WRITE).
func (s *Server) handle(line string, reply func(string)) {
	fields := strings.Fields(line)
	cmd := strings.ToUpper(fields[0])
	switch cmd {
	case "REGISTER":
		reply(s.register(fields[1:]))
	case "RELATE":
		reply(s.relate(fields[1:]))
	case "WRITE":
		s.write(fields[1:], reply)
	case "READ":
		reply(s.read(fields[1:]))
	case "STATUS":
		reply(fmt.Sprintf("OK role=%s objects=%d utilization=%.4f epoch=%d backupAlive=%v transitions=%d",
			s.primary.Role(), s.primary.Objects(), s.primary.Utilization(), s.primary.Epoch(),
			s.primary.BackupAlive(), s.primary.Transitions()))
	case "REPAIR":
		reply(s.repair())
	case "OBSERVERS":
		reply(s.observers())
	case "RECRUIT":
		reply(s.recruit(fields[1:]))
	case "LOGSTAT":
		reply(s.logstat())
	case "SNAPSHOT":
		reply(s.snapshot())
	case "CLOCK":
		reply(s.clockStatus())
	default:
		reply("ERR unknown command " + cmd)
	}
}

func (s *Server) register(args []string) string {
	if len(args) != 5 {
		return "ERR usage: REGISTER <name> <size> <period> <deltaP> <deltaB>"
	}
	size, err := strconv.Atoi(args[1])
	if err != nil {
		return "ERR bad size: " + err.Error()
	}
	var durs [3]time.Duration
	for i, a := range args[2:] {
		d, err := time.ParseDuration(a)
		if err != nil {
			return "ERR bad duration: " + err.Error()
		}
		durs[i] = d
	}
	d := s.primary.Register(core.ObjectSpec{
		Name:         args[0],
		Size:         size,
		UpdatePeriod: durs[0],
		Constraint:   temporal.ExternalConstraint{DeltaP: durs[1], DeltaB: durs[2]},
	})
	if !d.Accepted {
		if d.SuggestedDeltaB > 0 {
			return fmt.Sprintf("REJECT %s | suggest %v", d.Reason, d.SuggestedDeltaB)
		}
		return "REJECT " + d.Reason
	}
	return fmt.Sprintf("OK %d %v", d.ObjectID, d.UpdatePeriod)
}

func (s *Server) relate(args []string) string {
	if len(args) != 3 {
		return "ERR usage: RELATE <nameI> <nameJ> <deltaIJ>"
	}
	delta, err := time.ParseDuration(args[2])
	if err != nil {
		return "ERR bad duration: " + err.Error()
	}
	d, err := s.primary.RegisterInterObject(temporal.InterObjectConstraint{
		I: args[0], J: args[1], Delta: delta,
	})
	if err != nil {
		return "REJECT " + d.Reason
	}
	return "OK"
}

// repair reports the primary's view of the repair cycle: the effective
// replication degree and each attached peer's anti-entropy progress.
func (s *Server) repair() string {
	states := s.primary.PeerStates()
	var b strings.Builder
	fmt.Fprintf(&b, "OK synced=%d peers=%d", s.primary.SyncedPeers(), len(states))
	for _, st := range states {
		fmt.Fprintf(&b, " | %s alive=%v syncing=%v observer=%v sent=%d skipped=%d retx=%d completions=%d",
			st.Addr, st.Alive, st.Syncing, st.Observer,
			st.Transfer.EntriesSent, st.Transfer.EntriesSkipped,
			st.Transfer.ChunkRetransmits, st.Transfer.Completions)
	}
	return b.String()
}

// observers reports the read-only subscriber tier attached to this
// replica, plus the replica's own chain position (hop distance from the
// serving primary and the accumulated clock uncertainty it stamps on
// certificates — 0 and 0s on a serving primary).
func (s *Server) observers() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OK observers=%d depth=%d theta=%v",
		s.primary.ObserverPeers(), s.primary.ChainDepth(), s.primary.ChainTheta())
	for _, st := range s.primary.PeerStates() {
		if !st.Observer {
			continue
		}
		fmt.Fprintf(&b, " | %s alive=%v syncing=%v", st.Addr, st.Alive, st.Syncing)
	}
	return b.String()
}

// logstat reports the durable store's inventory — segment and snapshot
// counts, the portion pruning will reclaim, writer throughput — plus
// where this replica's state came from on its last start (disk-fast
// rejoin versus a full network transfer).
func (s *Server) logstat() string {
	st, ok := s.primary.DurableStats()
	if !ok {
		return "ERR durable persistence not enabled"
	}
	return fmt.Sprintf("OK segments=%d prunable_segments=%d prunable_epochs=%d pruned=%d snapshots=%d last_snapshot_epoch=%d epoch=%d appended=%d dropped=%d source=%s restored=%d",
		st.Segments, st.PrunableSegments, st.PrunableEpochs, st.PrunedSegments,
		st.Snapshots, st.LastSnapshotEpoch, st.Epoch, st.Appended, st.Dropped,
		s.primary.RecoverySource(), s.primary.RestoredObjects())
}

// snapshot forces a durable snapshot now, waits for the writer to
// commit it, and reports the resulting inventory (including the prune
// the snapshot unlocked).
func (s *Server) snapshot() string {
	st, ok := s.primary.ForceDurableSnapshot()
	if !ok {
		return "ERR durable persistence not enabled"
	}
	return fmt.Sprintf("OK snapshots=%d last_snapshot_epoch=%d segments=%d pruned=%d",
		st.Snapshots, st.LastSnapshotEpoch, st.Segments, st.PrunedSegments)
}

// clockStatus reports the replica's upstream clock-sync estimator:
// whether probing is enabled, and the current offset estimate with its
// explicit error bound θ. A primary that never probed (clock sync rides
// the backup-side heartbeat exchange) reports sync=on valid=false until
// it has been a backup with a completed probe.
func (s *Server) clockStatus() string {
	rep, ok := s.primary.ClockSyncReport()
	if !ok {
		return "OK sync=off"
	}
	if !rep.Valid {
		return fmt.Sprintf("OK sync=on valid=false accepted=%d rejected=%d", rep.Accepted, rep.Rejected)
	}
	return fmt.Sprintf("OK sync=on valid=true offset=%v theta=%v rtt=%v age=%v accepted=%d rejected=%d",
		rep.Offset, rep.Theta, rep.RTT, rep.Age, rep.Accepted, rep.Rejected)
}

// recruit attaches a new backup peer; the join exchange (spec replay,
// digest, chunked state) runs asynchronously and REPAIR reports its
// progress.
func (s *Server) recruit(args []string) string {
	if len(args) != 1 {
		return "ERR usage: RECRUIT <addr>"
	}
	if err := s.primary.AddPeer(xkernel.Addr(args[0])); err != nil {
		return "ERR " + err.Error()
	}
	return "OK " + args[0]
}

func (s *Server) write(args []string, reply func(string)) {
	if len(args) != 2 {
		reply("ERR usage: WRITE <name> <base64-value>")
		return
	}
	value, err := base64.StdEncoding.DecodeString(args[1])
	if err != nil {
		reply("ERR bad base64: " + err.Error())
		return
	}
	s.primary.ClientWrite(args[0], value, func(lat time.Duration, err error) {
		if err != nil {
			reply("ERR " + err.Error())
			return
		}
		reply(fmt.Sprintf("OK %v", lat))
	})
}

func (s *Server) read(args []string) string {
	if len(args) != 1 {
		return "ERR usage: READ <name>"
	}
	cert, ok := s.primary.Certificate(args[0])
	if !ok {
		return "ERR not found"
	}
	return fmt.Sprintf("OK %s %s %s", base64.StdEncoding.EncodeToString(cert.Value),
		cert.Version.Format(time.RFC3339Nano), certFields(cert))
}

// certFields renders the staleness-certificate suffix shared by READ
// replies and gateway EVENT frames. The rendering itself lives on
// core.Certificate so every serving surface — replica reads, gateway
// frames, ctl verbs — reports the same age/δ_B/mode/θ/depth fields and
// cannot drift.
func certFields(cert core.Certificate) string {
	return cert.Fields()
}

// Client is a minimal control-protocol client used by cmd/rtpbctl and the
// tests.
type Client struct {
	conn net.Conn
	rd   *bufio.Reader
}

// Dial connects to a control server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("ctl: dial %q: %w", addr, err)
	}
	return &Client{conn: conn, rd: bufio.NewReader(conn)}, nil
}

// Do sends one command line and returns the reply line.
func (c *Client) Do(line string) (string, error) {
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		return "", err
	}
	reply, err := c.rd.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(reply), nil
}

// ReadLine reads one server line — used after SUB to stream the
// gateway's asynchronous EVENT frames.
func (c *Client) ReadLine() (string, error) {
	line, err := c.rd.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(line), nil
}

// Write is a convenience wrapper for the WRITE command.
func (c *Client) Write(name string, value []byte) (string, error) {
	return c.Do("WRITE " + name + " " + base64.StdEncoding.EncodeToString(value))
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
