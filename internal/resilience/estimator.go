// Package resilience holds the adaptive-timer machinery of the RTPB
// resilience layer: a Jacobson/Karn link estimator (EWMA RTT + loss rate)
// that turns observed ack behaviour into retransmission timeouts, a capped
// exponential backoff with deterministic jitter, and a phi-accrual-style
// suspicion scorer for the failure detector.
//
// Everything here is driven by the deterministic simulation clock and a
// seeded xorshift generator, so replays of the same scenario and seed stay
// byte-identical.
package resilience

import "time"

// EstimatorConfig tunes a per-peer link Estimator.
type EstimatorConfig struct {
	// InitialRTO is the retransmission timeout reported before any RTT
	// sample has been observed. It should match the protocol's static
	// timeout so adaptivity only changes behaviour once evidence exists.
	InitialRTO time.Duration
	// MinRTO and MaxRTO clamp the computed timeout.
	MinRTO time.Duration
	MaxRTO time.Duration
	// LossGain is the EWMA gain applied per ack/loss observation.
	// Zero means 1/8.
	LossGain float64
}

func (c *EstimatorConfig) normalize() {
	if c.InitialRTO <= 0 {
		c.InitialRTO = 20 * time.Millisecond
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 2 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = time.Second
	}
	if c.MaxRTO < c.MinRTO {
		c.MaxRTO = c.MinRTO
	}
	if c.LossGain <= 0 || c.LossGain > 1 {
		c.LossGain = 1.0 / 8
	}
}

// Estimator tracks one peer link's round-trip time and loss rate from ack
// observations, in the style of Jacobson's TCP estimator with Karn's rule
// applied by the caller (only sample RTT from exchanges that were never
// retransmitted).
type Estimator struct {
	cfg    EstimatorConfig
	srtt   time.Duration
	rttvar time.Duration
	hasRTT bool
	loss   float64
	acks   uint64
	losses uint64
}

// NewEstimator returns an estimator with the config's defaults filled in.
func NewEstimator(cfg EstimatorConfig) *Estimator {
	cfg.normalize()
	return &Estimator{cfg: cfg}
}

// SampleRTT folds one round-trip measurement into the smoothed estimate and
// counts the exchange as delivered. Per Karn's rule, callers must not pass
// RTTs measured across a retransmission (use SampleAck for those acks).
func (e *Estimator) SampleRTT(rtt time.Duration) {
	if rtt < 0 {
		rtt = 0
	}
	if !e.hasRTT {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.hasRTT = true
	} else {
		err := rtt - e.srtt
		if err < 0 {
			e.rttvar += (-err - e.rttvar) / 4
		} else {
			e.rttvar += (err - e.rttvar) / 4
		}
		e.srtt += err / 8
	}
	e.sampleDelivered()
}

// SampleAck records a delivered exchange with no usable RTT (for example an
// ack that arrived after a retransmission, which Karn's rule excludes from
// RTT sampling). It decays the loss estimate only.
func (e *Estimator) SampleAck() { e.sampleDelivered() }

func (e *Estimator) sampleDelivered() {
	e.acks++
	e.loss += e.cfg.LossGain * (0 - e.loss)
}

// SampleLoss records a presumed-lost exchange (a retry timer fired with the
// ack still outstanding).
func (e *Estimator) SampleLoss() {
	e.losses++
	e.loss += e.cfg.LossGain * (1 - e.loss)
}

// RTO returns the current retransmission timeout: srtt + 4·rttvar clamped
// to [MinRTO, MaxRTO], or InitialRTO before the first RTT sample.
func (e *Estimator) RTO() time.Duration {
	if !e.hasRTT {
		return e.cfg.InitialRTO
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.cfg.MinRTO {
		rto = e.cfg.MinRTO
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	return rto
}

// SRTT returns the smoothed round-trip time (zero before any sample).
func (e *Estimator) SRTT() time.Duration { return e.srtt }

// RTTVar returns the smoothed round-trip deviation.
func (e *Estimator) RTTVar() time.Duration { return e.rttvar }

// LossRate returns the EWMA loss estimate in [0, 1].
func (e *Estimator) LossRate() float64 { return e.loss }

// Samples returns the raw delivered/lost observation counts.
func (e *Estimator) Samples() (acks, losses uint64) { return e.acks, e.losses }
