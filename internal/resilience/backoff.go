package resilience

import "time"

// Backoff computes capped exponential retransmission delays with
// deterministic jitter. The jitter source is a seeded xorshift64* stream,
// never the wall clock, so simulation replays stay byte-identical.
type Backoff struct {
	// Factor is the per-attempt growth multiplier. Zero means 2.
	Factor float64
	// Cap bounds the delay after growth and jitter. Zero means 1s.
	Cap time.Duration
	// Jitter is the fraction of the delay added as uniform random slack
	// in [0, Jitter·delay). Zero means 0.25; negative disables jitter.
	Jitter float64
	rng    uint64
}

// NewBackoff returns a backoff whose jitter stream is seeded by seed.
// The zero seed is remapped so the generator never degenerates.
func NewBackoff(seed uint64) *Backoff {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Backoff{rng: seed}
}

// next returns a uniform value in [0, 1) from the xorshift64* stream.
func (b *Backoff) next() float64 {
	b.rng ^= b.rng >> 12
	b.rng ^= b.rng << 25
	b.rng ^= b.rng >> 27
	x := b.rng * 0x2545F4914F6CDD1D
	return float64(x>>11) / float64(1<<53)
}

// DelayFrom returns the delay for the given zero-based attempt starting
// from base: base·Factor^attempt plus jitter, capped at Cap.
func (b *Backoff) DelayFrom(base time.Duration, attempt int) time.Duration {
	factor := b.Factor
	if factor <= 1 {
		factor = 2
	}
	cap := b.Cap
	if cap <= 0 {
		cap = time.Second
	}
	if base <= 0 {
		base = time.Millisecond
	}
	d := float64(base)
	for i := 0; i < attempt && time.Duration(d) < cap; i++ {
		d *= factor
	}
	if time.Duration(d) > cap {
		d = float64(cap)
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.25
	}
	if jitter > 0 {
		d += d * jitter * b.next()
	}
	if time.Duration(d) > cap {
		d = float64(cap)
	}
	return time.Duration(d)
}
