package resilience

import (
	"math"
	"time"
)

// suspicionMinSamples is how many inter-arrival gaps must be observed
// before Level is considered meaningful; below this, callers should fall
// back to their fixed threshold.
const suspicionMinSamples = 8

// Suspicion is a phi-accrual-style failure suspicion scorer: it maintains
// an EWMA mean and variance of the inter-arrival gaps of heartbeat acks
// and scores the current silence as a normalized deviation from that
// history. Unlike a fixed miss threshold, a link with naturally jittery
// acks earns a wide distribution and therefore tolerates long silences,
// while a historically crisp link converts the same silence into high
// suspicion quickly.
type Suspicion struct {
	gain    float64
	mean    float64 // EWMA of gap, in seconds
	varSec  float64 // EWMA of squared deviation, in seconds²
	samples int
	last    time.Time
	hasLast bool
}

// NewSuspicion returns a scorer with EWMA gain 1/8.
func NewSuspicion() *Suspicion { return &Suspicion{gain: 1.0 / 8} }

// Observe records one ack arrival at the given instant.
func (s *Suspicion) Observe(at time.Time) {
	if s.hasLast {
		gap := at.Sub(s.last).Seconds()
		if gap < 0 {
			gap = 0
		}
		if s.samples == 0 {
			s.mean = gap
			s.varSec = gap * gap / 4
		} else {
			dev := gap - s.mean
			s.mean += s.gain * dev
			s.varSec += s.gain * (dev*dev - s.varSec)
		}
		s.samples++
	}
	s.last = at
	s.hasLast = true
}

// Ready reports whether enough gap history exists for Level to be
// trusted over a fixed threshold.
func (s *Suspicion) Ready() bool { return s.samples >= suspicionMinSamples }

// Level scores the silence since the last observed ack as a number of
// standard deviations above the historical mean gap (floored at zero).
// Callers compare it against a threshold on the order of 3–5.
func (s *Suspicion) Level(now time.Time) float64 {
	if !s.hasLast || s.samples == 0 {
		return 0
	}
	elapsed := now.Sub(s.last).Seconds()
	if elapsed <= s.mean {
		return 0
	}
	// Floor the deviation so a near-zero-variance history cannot turn
	// microscopic jitter into unbounded suspicion.
	std := math.Sqrt(s.varSec)
	if floor := s.mean/4 + 1e-3; std < floor {
		std = floor
	}
	return (elapsed - s.mean) / std
}

// MeanGap returns the EWMA inter-ack gap.
func (s *Suspicion) MeanGap() time.Duration {
	return time.Duration(s.mean * float64(time.Second))
}

// Reset clears all history (used when the monitored peer changes).
func (s *Suspicion) Reset() { *s = Suspicion{gain: s.gain} }
