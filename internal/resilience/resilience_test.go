package resilience

import (
	"testing"
	"time"
)

func TestEstimatorInitialRTO(t *testing.T) {
	e := NewEstimator(EstimatorConfig{InitialRTO: 40 * time.Millisecond})
	if got := e.RTO(); got != 40*time.Millisecond {
		t.Fatalf("RTO before samples = %v, want InitialRTO 40ms", got)
	}
}

func TestEstimatorConvergesToRTT(t *testing.T) {
	e := NewEstimator(EstimatorConfig{InitialRTO: 100 * time.Millisecond})
	for i := 0; i < 64; i++ {
		e.SampleRTT(4 * time.Millisecond)
	}
	if srtt := e.SRTT(); srtt != 4*time.Millisecond {
		t.Fatalf("srtt = %v, want 4ms after steady samples", srtt)
	}
	// With zero variance the RTO collapses to the MinRTO clamp.
	if rto := e.RTO(); rto > 10*time.Millisecond {
		t.Fatalf("RTO = %v, want well under the 100ms initial on a crisp 4ms link", rto)
	}
	if rto := e.RTO(); rto < 2*time.Millisecond {
		t.Fatalf("RTO = %v fell under MinRTO", rto)
	}
}

func TestEstimatorVarianceWidensRTO(t *testing.T) {
	crisp := NewEstimator(EstimatorConfig{})
	noisy := NewEstimator(EstimatorConfig{})
	for i := 0; i < 32; i++ {
		crisp.SampleRTT(10 * time.Millisecond)
		if i%2 == 0 {
			noisy.SampleRTT(2 * time.Millisecond)
		} else {
			noisy.SampleRTT(18 * time.Millisecond)
		}
	}
	if crisp.RTO() >= noisy.RTO() {
		t.Fatalf("crisp RTO %v should be below noisy RTO %v at equal mean", crisp.RTO(), noisy.RTO())
	}
}

func TestEstimatorLossRate(t *testing.T) {
	e := NewEstimator(EstimatorConfig{})
	if e.LossRate() != 0 {
		t.Fatalf("initial loss rate = %v, want 0", e.LossRate())
	}
	for i := 0; i < 50; i++ {
		e.SampleLoss()
	}
	if e.LossRate() < 0.9 {
		t.Fatalf("loss rate after persistent loss = %v, want near 1", e.LossRate())
	}
	for i := 0; i < 50; i++ {
		e.SampleAck()
	}
	if e.LossRate() > 0.1 {
		t.Fatalf("loss rate after recovery = %v, want near 0", e.LossRate())
	}
	acks, losses := e.Samples()
	if acks != 50 || losses != 50 {
		t.Fatalf("samples = %d acks %d losses, want 50/50", acks, losses)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := NewBackoff(7)
	b.Jitter = -1 // deterministic delays for exact assertions
	b.Cap = 100 * time.Millisecond
	if d := b.DelayFrom(10*time.Millisecond, 0); d != 10*time.Millisecond {
		t.Fatalf("attempt 0 delay = %v, want base 10ms", d)
	}
	if d := b.DelayFrom(10*time.Millisecond, 2); d != 40*time.Millisecond {
		t.Fatalf("attempt 2 delay = %v, want 40ms", d)
	}
	if d := b.DelayFrom(10*time.Millisecond, 20); d != 100*time.Millisecond {
		t.Fatalf("attempt 20 delay = %v, want the 100ms cap", d)
	}
	// Huge attempt counts must not overflow into negative delays.
	if d := b.DelayFrom(10*time.Millisecond, 1<<30); d != 100*time.Millisecond {
		t.Fatalf("huge attempt delay = %v, want the cap", d)
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	a := NewBackoff(42)
	b := NewBackoff(42)
	for i := 0; i < 16; i++ {
		da := a.DelayFrom(10*time.Millisecond, i%4)
		db := b.DelayFrom(10*time.Millisecond, i%4)
		if da != db {
			t.Fatalf("attempt %d: same-seed backoffs diverged (%v vs %v)", i, da, db)
		}
	}
	c := NewBackoff(43)
	diverged := false
	a2 := NewBackoff(42)
	for i := 0; i < 16; i++ {
		if a2.DelayFrom(10*time.Millisecond, 1) != c.DelayFrom(10*time.Millisecond, 1) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	b := NewBackoff(9)
	b.Jitter = 0.25
	base := 10 * time.Millisecond
	for i := 0; i < 100; i++ {
		d := b.DelayFrom(base, 1)
		if d < 20*time.Millisecond || d >= 25*time.Millisecond {
			t.Fatalf("jittered delay %v outside [20ms, 25ms)", d)
		}
	}
}

func TestSuspicionTracksGapDistribution(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewSuspicion()
	at := start
	for i := 0; i < 20; i++ {
		s.Observe(at)
		at = at.Add(50 * time.Millisecond)
	}
	if !s.Ready() {
		t.Fatal("suspicion not ready after 20 observations")
	}
	// A silence comparable to the usual gap is unremarkable...
	if lvl := s.Level(at.Add(10 * time.Millisecond)); lvl > 3 {
		t.Fatalf("level after a normal gap = %v, want low", lvl)
	}
	// ...while a silence many times the historical gap is damning.
	if lvl := s.Level(at.Add(500 * time.Millisecond)); lvl < 5 {
		t.Fatalf("level after 10x silence = %v, want high", lvl)
	}
}

func TestSuspicionJitteryHistoryTolerant(t *testing.T) {
	start := time.Unix(0, 0)
	crisp := NewSuspicion()
	jittery := NewSuspicion()
	at, jat := start, start
	gaps := []time.Duration{20, 180, 30, 160, 25, 170, 40, 150, 20, 190, 35, 145}
	for i := 0; i < len(gaps); i++ {
		crisp.Observe(at)
		at = at.Add(50 * time.Millisecond)
		jittery.Observe(jat)
		jat = jat.Add(gaps[i] * time.Millisecond)
	}
	silence := 220 * time.Millisecond
	if c, j := crisp.Level(at.Add(silence)), jittery.Level(jat.Add(silence)); c <= j {
		t.Fatalf("crisp link should be more suspicious of a %v silence (crisp %v <= jittery %v)", silence, c, j)
	}
}

func TestSuspicionReset(t *testing.T) {
	s := NewSuspicion()
	at := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		s.Observe(at)
		at = at.Add(10 * time.Millisecond)
	}
	s.Reset()
	if s.Ready() {
		t.Fatal("ready after reset")
	}
	if lvl := s.Level(at.Add(time.Hour)); lvl != 0 {
		t.Fatalf("level after reset = %v, want 0", lvl)
	}
}
