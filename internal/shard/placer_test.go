package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/temporal"
)

// fakeTarget is an in-memory bin with additive utilization: a spec
// costs demand and fits while util+demand stays at or below cap.
type fakeTarget struct {
	util, cap, demand float64
}

func (f *fakeTarget) Utilization() float64 { return f.util }
func (f *fakeTarget) UtilizationWith(core.ObjectSpec) (float64, bool) {
	return f.util + f.demand, true
}
func (f *fakeTarget) Admit(spec core.ObjectSpec) core.Decision {
	if f.util+f.demand > f.cap {
		return core.Decision{Reason: "fake bin full"}
	}
	f.util += f.demand
	return core.Decision{Accepted: true}
}

func spec(name string) core.ObjectSpec {
	return core.ObjectSpec{
		Name:         name,
		Size:         32,
		UpdatePeriod: 20 * time.Millisecond,
		Constraint:   temporal.ExternalConstraint{DeltaP: 20 * time.Millisecond, DeltaB: 120 * time.Millisecond},
	}
}

// TestPlacePrefersFullestFit checks the decreasing-utilization order:
// the fullest bin that still fits wins.
func TestPlacePrefersFullestFit(t *testing.T) {
	targets := []Target{
		&fakeTarget{util: 0.2, cap: 1, demand: 0.2},
		&fakeTarget{util: 0.5, cap: 1, demand: 0.2},
		&fakeTarget{util: 0.1, cap: 1, demand: 0.2},
	}
	pl := &Placer{}
	idx, d, err := pl.Place(spec("x"), targets)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || !d.Accepted {
		t.Fatalf("placed on %d, want the fullest bin 1", idx)
	}
}

// TestPlaceHeadroomSkipsNearFullShards checks the reserve: a bin whose
// post-admission estimate crosses 1−Headroom is never offered the spec,
// even though its own admission would accept.
func TestPlaceHeadroomSkipsNearFullShards(t *testing.T) {
	targets := []Target{
		&fakeTarget{util: 0.85, cap: 1, demand: 0.1},
		&fakeTarget{util: 0.3, cap: 1, demand: 0.1},
	}
	pl := &Placer{Headroom: 0.1}
	idx, _, err := pl.Place(spec("x"), targets)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		// 0.85+0.1 = 0.95 > 0.9: shard 0 is filtered, the spec lands on 1.
		t.Fatalf("placed on %d despite headroom filter", idx)
	}
}

func TestPlaceHeadroomFilter(t *testing.T) {
	targets := []Target{
		&fakeTarget{util: 0.85, cap: 1, demand: 0.1},
		&fakeTarget{util: 0.88, cap: 1, demand: 0.1},
	}
	pl := &Placer{Headroom: 0.1}
	if idx, _, err := pl.Place(spec("x"), targets); err == nil {
		t.Fatalf("placed on %d, want ErrClusterFull from headroom filter", idx)
	} else if !errors.Is(err, ErrClusterFull) {
		t.Fatalf("error is not ErrClusterFull: %v", err)
	}
}

// TestPlaceClusterFull checks a real admission rejection surfaces the
// last decision and wraps ErrClusterFull.
func TestPlaceClusterFull(t *testing.T) {
	targets := []Target{
		&fakeTarget{util: 0.9, cap: 0.95, demand: 0.2},
		&fakeTarget{util: 0.8, cap: 0.95, demand: 0.2},
	}
	pl := &Placer{}
	idx, d, err := pl.Place(spec("x"), targets)
	if !errors.Is(err, ErrClusterFull) {
		t.Fatalf("want ErrClusterFull, got %v", err)
	}
	if idx != -1 || d.Accepted {
		t.Fatalf("rejection returned index %d, decision %+v", idx, d)
	}
	if d.Reason != "fake bin full" {
		t.Fatalf("decision reason %q not propagated", d.Reason)
	}
}

// TestPlaceAllDecreasing checks the batch path sorts by estimated
// demand before first-fit, and reports per-spec indices aligned with
// the input order.
func TestPlaceAllDecreasing(t *testing.T) {
	// Two bins of capacity 1. Demands {0.6, 0.6, 0.4, 0.4} only pack as
	// 2 bins if the heavy specs go first (0.6+0.4 twice); increasing
	// order would open with 0.4+0.4 and strand a 0.6.
	bins := []*fakeTarget{{cap: 1}, {cap: 1}}
	targets := []Target{bins[0], bins[1]}
	demands := []float64{0.4, 0.6, 0.4, 0.6}
	specs := make([]core.ObjectSpec, len(demands))
	for i := range demands {
		specs[i] = spec(fmt.Sprintf("s%d", i))
	}
	// fakeTarget charges a fixed demand per bin, not per spec, so model
	// per-spec demand with a wrapper.
	wrapped := make([]Target, len(targets))
	for i := range targets {
		wrapped[i] = &perSpecTarget{bin: bins[i], demands: demands, specs: specs}
	}
	pl := &Placer{}
	indices, placed := pl.PlaceAll(specs, wrapped)
	if placed != len(specs) {
		t.Fatalf("placed %d of %d: %v", placed, len(specs), indices)
	}
	for i, idx := range indices {
		if idx < 0 {
			t.Fatalf("spec %d unplaced: %v", i, indices)
		}
	}
}

// perSpecTarget adapts fakeTarget to per-spec demands keyed by name.
type perSpecTarget struct {
	bin     *fakeTarget
	demands []float64
	specs   []core.ObjectSpec
}

func (p *perSpecTarget) demandOf(s core.ObjectSpec) float64 {
	for i := range p.specs {
		if p.specs[i].Name == s.Name {
			return p.demands[i]
		}
	}
	return 0
}

func (p *perSpecTarget) Utilization() float64 { return p.bin.util }
func (p *perSpecTarget) UtilizationWith(s core.ObjectSpec) (float64, bool) {
	return p.bin.util + p.demandOf(s), true
}
func (p *perSpecTarget) Admit(s core.ObjectSpec) core.Decision {
	d := p.demandOf(s)
	if p.bin.util+d > p.bin.cap {
		return core.Decision{Reason: "fake bin full"}
	}
	p.bin.util += d
	return core.Decision{Accepted: true}
}

// TestRouter exercises the routing table.
func TestRouter(t *testing.T) {
	r := NewRouter()
	r.Assign("a", 0)
	r.Assign("b", 1)
	r.Assign("c", 1)
	if i, ok := r.Lookup("b"); !ok || i != 1 {
		t.Fatalf("Lookup(b) = %d, %v", i, ok)
	}
	if got := r.Count(1); got != 2 {
		t.Fatalf("Count(1) = %d", got)
	}
	if got := r.ObjectsOn(1); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("ObjectsOn(1) = %v", got)
	}
	r.Assign("a", 1) // migration rebinds
	if i, _ := r.Lookup("a"); i != 1 {
		t.Fatal("rebind lost")
	}
	r.Forget("a")
	if _, ok := r.Lookup("a"); ok {
		t.Fatal("forgotten route still resolves")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
}

// TestPlacementSequenceKeepsShardsFeasible is the satellite property
// test: after any accepted sequence of placements and removals, every
// shard's resident task set still passes its schedulability test.
func TestPlacementSequenceKeepsShardsFeasible(t *testing.T) {
	periods := []time.Duration{5, 10, 20, 40}
	deltaPs := []time.Duration{10, 20, 50}
	windows := []time.Duration{10, 30, 100, 200}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c, err := NewCluster(Config{Shards: 3, Seed: seed, Headroom: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			next := 0
			for op := 0; op < 120; op++ {
				if placed := c.router.Objects(); len(placed) > 0 && rng.Float64() < 0.3 {
					name := placed[rng.Intn(len(placed))]
					if err := c.Remove(name); err != nil {
						t.Fatalf("op %d: remove %q: %v", op, name, err)
					}
				} else {
					dp := deltaPs[rng.Intn(len(deltaPs))] * time.Millisecond
					s := core.ObjectSpec{
						Name:         fmt.Sprintf("p%d", next),
						Size:         1 + rng.Intn(512),
						UpdatePeriod: periods[rng.Intn(len(periods))] * time.Millisecond,
						Constraint: temporal.ExternalConstraint{
							DeltaP: dp,
							DeltaB: dp + windows[rng.Intn(len(windows))]*time.Millisecond,
						},
					}
					next++
					if _, _, err := c.Place(s); err != nil && !errors.Is(err, ErrClusterFull) {
						t.Fatalf("op %d: place %q: %v", op, s.Name, err)
					}
				}
				for i := 0; i < c.Shards(); i++ {
					if !c.Shard(i).Primary().Feasible() {
						t.Fatalf("op %d: shard %d resident set became infeasible", op, i)
					}
				}
			}
		})
	}
}
