package shard

import (
	"errors"
	"fmt"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/core"
	"rtpb/internal/failover"
	"rtpb/internal/netsim"
	"rtpb/internal/temporal"
	"rtpb/internal/xkernel"
)

// Config describes a simulated sharded cluster.
type Config struct {
	// Shards is K, the number of primary-backup groups; defaults to 2.
	Shards int
	// Seed drives the fabric's loss/jitter/duplication draws.
	Seed int64
	// Link is the default link quality; zero value means 2ms delay + 1ms
	// jitter, the EXPERIMENTS.md baseline.
	Link netsim.LinkParams
	// Ell is ℓ, the admission controllers' delay bound; defaults to 5ms.
	Ell time.Duration
	// Detector tunes the backup-side failure detectors; zero value means
	// failover.DefaultDetectorConfig.
	Detector failover.DetectorConfig
	// Headroom is the placer's per-shard utilization reserve; defaults to
	// DefaultHeadroom. Negative means zero (no reserve).
	Headroom float64
	// Scheduling, Costs, SchedTest and SlackFactor configure every
	// shard's primary identically (see core.Config).
	Scheduling  core.SchedulingMode
	Costs       core.CostModel
	SchedTest   core.SchedTest
	SlackFactor float64
	// Governor configures every shard primary's overload governor; the
	// zero value leaves the shards ungoverned. The per-shard ladder state
	// is exported through Status.Degraded/Status.Shed and Health — the
	// signal the gateway tier's admission-aware backpressure keys on.
	Governor core.GovernorConfig
	// DisableAdmissionControl turns off every shard's admission test
	// (overload experiments only: it lets a workload that provably cannot
	// be scheduled through, so the governor has something real to shed).
	DisableAdmissionControl bool
	// Observers attaches this many read-only observer replicas to each
	// shard; defaults to 0 (no observer tier). Observers serve
	// certificate reads (Cluster.Certificate prefers the least-stale
	// fresh one) but never count toward quorums or failover.
	Observers int
	// ObserverChainDepth arranges each shard's observers into fan-out
	// chains of this length: 1 (the default) subscribes every observer
	// directly to the primary; 2 chains them pairwise
	// (primary→obs→obs), and so on. Deeper chains offload the primary's
	// fan-out at the price of compounded certificate staleness.
	ObserverChainDepth int
}

func (cfg *Config) normalize() {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Link == (netsim.LinkParams{}) {
		cfg.Link = netsim.LinkParams{Delay: 2 * time.Millisecond, Jitter: time.Millisecond}
	}
	if cfg.Ell == 0 {
		cfg.Ell = 5 * time.Millisecond
	}
	if cfg.Detector == (failover.DetectorConfig{}) {
		cfg.Detector = failover.DefaultDetectorConfig()
	}
	switch {
	case cfg.Headroom == 0:
		cfg.Headroom = DefaultHeadroom
	case cfg.Headroom < 0:
		cfg.Headroom = 0
	}
	if cfg.Observers < 0 {
		cfg.Observers = 0
	}
	if cfg.ObserverChainDepth <= 0 {
		cfg.ObserverChainDepth = 1
	}
}

// node is one simulated machine: a fabric endpoint with an x-kernel
// stack on top.
type node struct {
	name string
	ep   *netsim.Endpoint
	port *xkernel.PortProtocol
}

func (n *node) addr() xkernel.Addr {
	return xkernel.Addr(n.name + ":" + fmt.Sprint(core.RTPBPort))
}

// Shard is one primary-backup group. Each shard runs the full
// two-replica protocol — its own admission controller, update pump,
// failure detector and promotion path — independently of its siblings:
// a failover in one group never touches another group's schedule.
type Shard struct {
	c       *Cluster
	index   int
	service string

	pHost *node // host of the current primary
	bHost *node // host of the backup (site name for the monitor)

	primary    *core.Primary
	backup     *core.Backup
	det        *failover.Detector
	peer       xkernel.Addr // primary address the backup replicates from
	promotions int

	// The shard's observer tier: read-only replicas subscribed to the
	// primary (or chained off each other), chain-ordered. obsTasks holds
	// the periodics that drive each observer's join exchange and
	// chain-position heartbeats.
	oHosts    []*node
	observers []*core.Observer
	obsTasks  []*clock.Periodic
}

// Utilization implements Target with the shard primary's resident
// utilization.
func (sh *Shard) Utilization() float64 { return sh.primary.Utilization() }

// UtilizationWith implements Target with the primary's what-if estimate.
// A shard whose primary is not serving reports no fit.
func (sh *Shard) UtilizationWith(spec core.ObjectSpec) (float64, bool) {
	if sh.primary == nil || !sh.primary.Running() {
		return 0, false
	}
	return sh.primary.UtilizationWith(spec)
}

// Admit implements Target by running the shard's real admission
// pipeline.
func (sh *Shard) Admit(spec core.ObjectSpec) core.Decision {
	if sh.primary == nil || !sh.primary.Running() {
		return core.Decision{Reason: "shard primary not running"}
	}
	return sh.primary.Register(spec)
}

// Primary exposes the shard's currently serving primary (nil after an
// unrecovered crash).
func (sh *Shard) Primary() *core.Primary { return sh.primary }

// Backup exposes the shard's backup replica (nil after it promoted).
func (sh *Shard) Backup() *core.Backup { return sh.backup }

// Cluster is K primary-backup groups behind one client-facing surface:
// the Placer spreads registrations across the groups, the Router owns
// the object→shard map, and writes and reads forward to the owning
// group's current primary. All groups share one simulated fabric, one
// virtual clock, one name service and one temporal-consistency monitor
// (tracking each group's backup site independently).
type Cluster struct {
	cfg    Config
	clk    *clock.SimClock
	net    *netsim.Network
	ns     *failover.NameService
	mon    *temporal.Monitor
	placer Placer
	router *Router
	shards []*Shard

	start       time.Time
	log         []string
	writers     []*clock.Periodic
	writeCounts map[string]int
	lastWritten map[string][]byte
}

// NewCluster builds and starts a sharded cluster: K groups of two nodes
// each ("shardI-p", "shardI-b") on one fabric, each group's backup
// watching its own primary through a failure detector.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg.normalize()
	c := &Cluster{
		cfg:         cfg,
		clk:         clock.NewSim(),
		ns:          failover.NewNameService(),
		mon:         temporal.NewMonitor(),
		placer:      Placer{Headroom: cfg.Headroom},
		router:      NewRouter(),
		writeCounts: make(map[string]int),
		lastWritten: make(map[string][]byte),
	}
	c.start = c.clk.Now()
	c.net = netsim.New(c.clk, cfg.Seed)
	if err := c.net.SetDefaultLink(cfg.Link); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := c.buildShard(i)
		if err != nil {
			return nil, err
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

func (c *Cluster) buildNode(name string) (*node, error) {
	ep, err := c.net.Endpoint(name)
	if err != nil {
		return nil, err
	}
	g, err := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(ep)},
	})
	if err != nil {
		return nil, err
	}
	proto, _ := g.Protocol("uport")
	return &node{name: name, ep: ep, port: proto.(*xkernel.PortProtocol)}, nil
}

func (c *Cluster) primaryConfig(port *xkernel.PortProtocol, peers []xkernel.Addr) core.Config {
	return core.Config{
		Clock:                   c.clk,
		Port:                    port,
		Peers:                   peers,
		Ell:                     c.cfg.Ell,
		Scheduling:              c.cfg.Scheduling,
		Costs:                   c.cfg.Costs,
		SchedTest:               c.cfg.SchedTest,
		SlackFactor:             c.cfg.SlackFactor,
		Governor:                c.cfg.Governor,
		DisableAdmissionControl: c.cfg.DisableAdmissionControl,
	}
}

func (c *Cluster) buildShard(i int) (*Shard, error) {
	sh := &Shard{c: c, index: i, service: fmt.Sprintf("shard%d", i)}
	var err error
	if sh.pHost, err = c.buildNode(fmt.Sprintf("shard%d-p", i)); err != nil {
		return nil, err
	}
	if sh.bHost, err = c.buildNode(fmt.Sprintf("shard%d-b", i)); err != nil {
		return nil, err
	}
	sh.primary, err = core.NewPrimary(c.primaryConfig(sh.pHost.port, []xkernel.Addr{sh.bHost.addr()}))
	if err != nil {
		return nil, err
	}
	if err := c.ns.Set(sh.service, sh.pHost.addr(), 1); err != nil {
		return nil, err
	}
	// The backup carries the full scheduling/cost configuration: promotion
	// is in-place, so whatever this replica was built with is what it will
	// serve with as a primary.
	bcfg := c.primaryConfig(sh.bHost.port, nil)
	bcfg.Peer = sh.pHost.addr()
	sh.backup, err = core.NewBackup(bcfg)
	if err != nil {
		return nil, err
	}
	sh.peer = sh.pHost.addr()
	if err := c.wireBackup(sh); err != nil {
		return nil, err
	}
	for j := 0; j < c.cfg.Observers; j++ {
		if err := c.attachObserver(sh, j); err != nil {
			return nil, err
		}
	}
	return sh, nil
}

// attachObserver builds observer j of a shard's tier on its own node
// ("shardI-oJ") and starts the loops that keep it attached: a join
// driver that re-sends the JoinRequest until the chunked anti-entropy
// exchange completes, and a heartbeat that solicits the upstream's
// chain-position advertisement (depth, accumulated θ) so the observer's
// certificates compound staleness honestly. Chain placement follows
// ObserverChainDepth: the first observer of each chain subscribes to
// the primary, the rest to the observer before them.
func (c *Cluster) attachObserver(sh *Shard, j int) error {
	host, err := c.buildNode(fmt.Sprintf("shard%d-o%d", sh.index, j))
	if err != nil {
		return err
	}
	upstream := sh.pHost.addr()
	if j%c.cfg.ObserverChainDepth != 0 {
		upstream = sh.oHosts[j-1].addr()
	}
	ocfg := c.primaryConfig(host.port, nil)
	ocfg.Peer = upstream
	obs, err := core.NewObserver(ocfg)
	if err != nil {
		return err
	}
	sh.oHosts = append(sh.oHosts, host)
	sh.observers = append(sh.observers, obs)
	join := clock.NewPeriodic(c.clk, 0, 100*time.Millisecond, func() {
		if !obs.Joined() {
			obs.Join()
		}
	})
	ping := clock.NewPeriodic(c.clk, 50*time.Millisecond, 100*time.Millisecond, func() { obs.SendPing() })
	sh.obsTasks = append(sh.obsTasks, join, ping)
	c.logf("shard %d: observer %s subscribes to %v", sh.index, host.name, upstream)
	return nil
}

// wireBackup attaches the monitor hooks and a fresh failure detector to
// the shard's backup replica.
func (c *Cluster) wireBackup(sh *Shard) error {
	b, site := sh.backup, sh.bHost.name
	b.OnApply = func(_ uint32, name string, _ uint32, _ uint64, version, at time.Time) {
		c.mon.RecordUpdate(site, name, version, at)
	}
	// A JoinAccept (migration resync, or recruitment) marks every listed
	// object catching-up on the backup: mirror that into the monitor so a
	// not-yet-guaranteed image is never reported consistent. Each object
	// resumes when the backup declares it inside δ_i^B again.
	b.OnJoinAccept = func(epoch uint32, specs int) {
		c.logf("shard %d: %s join accepted at epoch %d (%d specs); catch-up begins",
			sh.index, site, epoch, specs)
		for _, spec := range b.Specs() {
			if !b.CatchingUp(spec.Name) {
				continue
			}
			if _, ok := c.mon.ExternalReport(site, spec.Name); !ok {
				c.mon.TrackExternal(site, spec.Name, spec.Constraint.DeltaB)
			}
			c.mon.BeginCatchUp(site, spec.Name, c.clk.Now())
		}
	}
	b.OnCatchUp = func(_ uint32, object string, staleness time.Duration) {
		c.mon.EndCatchUp(site, object)
		c.logf("shard %d: %s %q caught up (staleness %v)", sh.index, site, object,
			staleness.Round(100*time.Microsecond))
	}
	// Mirror the primary governor's announced rung into the monitor, as
	// the chaos harness does for a single pair: a shed object's image
	// carries no temporal guarantee, and a compressed (or restored) one
	// is judged against the announced effective bound. Without this a
	// governed shard under overload would book δ_B violations for load
	// it deliberately — and honestly — shed.
	b.OnModeChange = func(_ uint32, name string, mode core.ObjectMode, bound time.Duration) {
		c.logf("shard %d: %s %q now %s (effective bound %v)", sh.index, site, name, mode, bound)
		if mode == core.ModeShed {
			c.mon.Suspend(site, name, c.clk.Now())
			return
		}
		c.mon.Resume(site, name)
		c.mon.SetBound(site, name, c.clk.Now(), bound)
	}
	det, err := failover.NewDetector(c.clk, c.cfg.Detector, b.SendPing, func() {
		c.onPrimaryDead(sh)
	})
	if err != nil {
		return err
	}
	b.OnPingAck = det.OnAck
	sh.det = det
	det.Start()
	return nil
}

// onPrimaryDead is the shard's backup detector verdict: promote the
// backup in place (Section 4.4), fencing the dead primary's epoch. The
// name-service arbitration mirrors the chaos harness — if the directory
// already records a successor, this replica yields instead of promoting.
// Other shards are untouched: their detectors, schedules and temporal
// accounting never observe the failure.
func (c *Cluster) onPrimaryDead(sh *Shard) {
	c.logf("shard %d: detector declares primary dead", sh.index)
	if addr, epoch, ok := c.ns.Lookup(sh.service); ok && addr != sh.peer {
		c.logf("shard %d: %v already superseded by %v (epoch %d); yielding",
			sh.index, sh.peer, addr, epoch)
		sh.backup.Stop()
		sh.backup = nil
		sh.det = nil
		return
	}
	// The promoted replica stops being a backup site: capture its image
	// list before promotion so the monitor stops charging staleness to a
	// site that no longer hosts an image.
	specs := sh.backup.Specs()
	p, err := failover.Promote(sh.backup, failover.PromoteOptions{
		Service:  sh.service,
		SelfAddr: sh.bHost.addr(),
		Names:    c.ns,
		OnPlaceholderDrop: func(ids []uint32) {
			c.logf("shard %d: promotion dropped %d spec-less placeholder object(s) %v",
				sh.index, len(ids), ids)
		},
		ActivateClient: func(p *core.Primary) {
			sh.primary = p
			sh.pHost = sh.bHost
		},
	})
	if err != nil {
		c.logf("shard %d: promotion failed: %v", sh.index, err)
		return
	}
	now := c.clk.Now()
	for _, spec := range specs {
		c.mon.Suspend(sh.bHost.name, spec.Name, now)
	}
	sh.backup = nil
	sh.det = nil
	sh.promotions++
	c.logf("shard %d: %s promoted to primary, epoch %d", sh.index, sh.pHost.name, p.Epoch())
}

// targets returns the shards as a placement slice (index-aligned).
func (c *Cluster) targets() []Target {
	out := make([]Target, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh
	}
	return out
}

// Place admits one object somewhere in the cluster: the placer picks a
// shard, the shard's admission controller has the final word, and the
// router binds the object to the accepting group. The returned index is
// the owning shard; on rejection it is -1 and the error wraps
// ErrClusterFull (the decision carries the last shard's reason and
// suggested δ_B, so renegotiation works exactly as against one pair).
func (c *Cluster) Place(spec core.ObjectSpec) (int, core.Decision, error) {
	if _, ok := c.router.Lookup(spec.Name); ok {
		return -1, core.Decision{}, fmt.Errorf("shard: object %q already placed", spec.Name)
	}
	idx, d, err := c.placer.Place(spec, c.targets())
	if err != nil {
		c.logf("place %q rejected: %v", spec.Name, err)
		return -1, d, err
	}
	sh := c.shards[idx]
	c.router.Assign(spec.Name, idx)
	if sh.backup != nil {
		if _, ok := c.mon.ExternalReport(sh.bHost.name, spec.Name); !ok {
			c.mon.TrackExternal(sh.bHost.name, spec.Name, spec.Constraint.DeltaB)
		}
	}
	c.logf("place %q -> shard %d (r=%v, util %.3f)", spec.Name, idx, d.UpdatePeriod, sh.Utilization())
	return idx, d, nil
}

// ErrNotPlaced reports a read, write or migration of an object the
// router does not know.
var ErrNotPlaced = errors.New("shard: object not placed")

func (c *Cluster) owner(name string) (*Shard, error) {
	idx, ok := c.router.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotPlaced, name)
	}
	return c.shards[idx], nil
}

// Write forwards a client write to the owning shard's current primary —
// the route is re-resolved on every call, so writes keep flowing to a
// shard's promoted replica after failover.
func (c *Cluster) Write(name string, data []byte, done func(time.Duration, error)) error {
	sh, err := c.owner(name)
	if err != nil {
		return err
	}
	if sh.primary == nil || !sh.primary.Running() {
		return fmt.Errorf("shard: shard %d has no serving primary for %q", sh.index, name)
	}
	sh.primary.ClientWrite(name, data, done)
	return nil
}

// Read returns the owning shard primary's current value.
func (c *Cluster) Read(name string) (data []byte, version time.Time, ok bool) {
	sh, err := c.owner(name)
	if err != nil || sh.primary == nil || !sh.primary.Running() {
		return nil, time.Time{}, false
	}
	return sh.primary.Value(name)
}

// Certificate returns the owning shard's current image with its
// staleness certificate (value, version, age, mode-effective δ_B, chain
// θ and depth) — the unit the gateway tier broadcasts to subscribed
// sessions. With an observer tier attached, the read is served by the
// least-stale observer that can still prove its bound, offloading the
// primary; it falls back to the primary when no observer certificate is
// fresh (attach-time catch-up, a partitioned chain, or unconverged
// clock sync — the honest cases).
func (c *Cluster) Certificate(name string) (core.Certificate, bool) {
	sh, err := c.owner(name)
	if err != nil {
		return core.Certificate{}, false
	}
	if cert, ok := sh.ObserverCertificate(name); ok {
		return cert, true
	}
	if sh.primary == nil || !sh.primary.Running() {
		return core.Certificate{}, false
	}
	return sh.primary.Certificate(name)
}

// ObserverCertificate serves a read from the shard's observer tier: the
// fresh certificate with the smallest age+θ wins. ok=false when no
// observer currently holds a provably in-bound image — the caller must
// fall back to the primary rather than serve a stale read.
func (sh *Shard) ObserverCertificate(name string) (core.Certificate, bool) {
	var best core.Certificate
	found := false
	for _, obs := range sh.observers {
		if obs == nil || !obs.Running() {
			continue
		}
		cert, ok := obs.Certificate(name)
		if !ok || !cert.Fresh() {
			continue
		}
		if !found || cert.Age+cert.Theta < best.Age+best.Theta {
			best, found = cert, true
		}
	}
	return best, found
}

// Observers exposes the shard's observer replicas, chain-ordered.
func (sh *Shard) Observers() []*core.Observer { return sh.observers }

// Health is one shard's overload-governor ladder state, the
// admission-aware backpressure signal a front tier sheds on.
type Health struct {
	// Degraded and Shed count objects below ModeNormal and at ModeShed.
	Degraded int
	Shed     int
}

// Overloaded reports whether any object sits below the normal rung.
func (h Health) Overloaded() bool { return h.Degraded > 0 }

// Shedding reports whether the governor has suspended any object's
// update transmissions — the strongest backpressure signal.
func (h Health) Shedding() bool { return h.Shed > 0 }

// Health reports shard i's governor ladder state. A shard without a
// serving primary reports shedding (one degraded, one shed object): a
// front tier must not direct broadcast load at it.
func (c *Cluster) Health(i int) Health {
	if i < 0 || i >= len(c.shards) {
		return Health{}
	}
	sh := c.shards[i]
	if sh.primary == nil || !sh.primary.Running() {
		return Health{Degraded: 1, Shed: 1}
	}
	gs := sh.primary.GovernorStats()
	return Health{Degraded: gs.Degraded, Shed: gs.Shed}
}

// Route resolves an object's owning shard.
func (c *Cluster) Route(name string) (int, bool) { return c.router.Lookup(name) }

// Remove drops an object from the cluster: the owning primary revokes
// it everywhere (freeing its schedule slots), the monitor stops
// charging its backup image, and the route is forgotten.
func (c *Cluster) Remove(name string) error {
	sh, err := c.owner(name)
	if err != nil {
		return err
	}
	if err := sh.primary.RemoveObject(name); err != nil {
		return err
	}
	if sh.backup != nil {
		c.mon.Suspend(sh.bHost.name, name, c.clk.Now())
	}
	c.router.Forget(name)
	c.logf("remove %q from shard %d", name, sh.index)
	return nil
}

// Migrate moves one object to another shard. The destination's
// admission controller is authoritative (the placer's headroom reserve
// is deliberately not enforced for an explicit migration); current
// state is seeded at the destination primary, whose backup re-syncs
// over the chunked anti-entropy transfer — the object is marked
// catching-up at the destination site until an update lands within
// δ_i^B there. Only then is the source's registration revoked, so the
// object is never without an admitted home.
func (c *Cluster) Migrate(name string, dst int) error {
	sh, err := c.owner(name)
	if err != nil {
		return err
	}
	if dst < 0 || dst >= len(c.shards) {
		return fmt.Errorf("shard: no shard %d", dst)
	}
	if dst == sh.index {
		return nil
	}
	dh := c.shards[dst]
	spec, ok := sh.primary.Spec(name)
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotPlaced, name)
	}
	value, version, hasData := sh.primary.Value(name)
	if d := dh.Admit(spec); !d.Accepted {
		return fmt.Errorf("shard: destination %d rejected %q: %s", dst, name, d.Reason)
	}
	if hasData {
		if err := dh.primary.SeedObject(name, value, version); err != nil {
			return fmt.Errorf("shard: seed %q on shard %d: %w", name, dst, err)
		}
	}
	if dh.backup != nil {
		if _, ok := c.mon.ExternalReport(dh.bHost.name, spec.Name); !ok {
			c.mon.TrackExternal(dh.bHost.name, spec.Name, spec.Constraint.DeltaB)
		}
		// Push registrations and state to the destination backup through
		// the join exchange; its OnJoinAccept hook marks the image
		// catching-up until an update lands within δ_i^B.
		dh.primary.ResyncPeers()
	}
	if err := sh.primary.RemoveObject(name); err != nil {
		return fmt.Errorf("shard: revoke %q on shard %d: %w", name, sh.index, err)
	}
	if sh.backup != nil {
		c.mon.Suspend(sh.bHost.name, name, c.clk.Now())
	}
	c.router.Assign(name, dst)
	c.logf("migrate %q: shard %d -> shard %d", name, sh.index, dst)
	return nil
}

// CrashPrimary kills shard i's primary host; the shard's own detector
// notices and drives the promotion.
func (c *Cluster) CrashPrimary(i int) {
	sh := c.shards[i]
	if sh.primary != nil {
		sh.primary.Stop()
	}
	sh.pHost.ep.SetDown(true)
	c.logf("shard %d: %s is down", i, sh.pHost.name)
}

// WriteEvery starts a periodic client writer for one object; each fire
// re-resolves the route, so the writer follows failovers and
// migrations. Payloads embed a sequence number and virtual timestamp,
// making convergence checks exact.
func (c *Cluster) WriteEvery(name string, period time.Duration) {
	w := clock.NewPeriodic(c.clk, 0, period, func() {
		idx, ok := c.router.Lookup(name)
		if !ok {
			return
		}
		p := c.shards[idx].primary
		if p == nil || !p.Running() {
			return
		}
		c.writeCounts[name]++
		val := fmt.Sprintf("%s#%d@%v", name, c.writeCounts[name],
			c.clk.Now().Sub(c.start).Round(time.Millisecond))
		c.lastWritten[name] = []byte(val)
		p.ClientWrite(name, []byte(val), nil)
	})
	c.writers = append(c.writers, w)
}

// StopWriters stops every periodic writer.
func (c *Cluster) StopWriters() {
	for _, w := range c.writers {
		w.Stop()
	}
	c.writers = nil
}

// LastWritten returns the payload of the most recent accepted writer
// fire for an object (nil if WriteEvery never wrote it).
func (c *Cluster) LastWritten(name string) []byte { return c.lastWritten[name] }

// TotalWrites counts every write the periodic writers actually issued
// (fires that found no serving primary are not counted) — the
// capacity sweep's aggregate-throughput numerator.
func (c *Cluster) TotalWrites() int {
	n := 0
	for _, count := range c.writeCounts {
		n += count
	}
	return n
}

// Status is one shard's externally visible state.
type Status struct {
	// Index and Service identify the shard.
	Index   int
	Service string
	// PrimaryHost and PrimaryAddr locate the currently serving primary.
	PrimaryHost string
	PrimaryAddr xkernel.Addr
	// Epoch is the serving primary's epoch (0 if none is running).
	Epoch uint32
	// Objects and Utilization describe the resident load.
	Objects     int
	Utilization float64
	// BackupAlive reports whether the primary believes a synced backup
	// is attached.
	BackupAlive bool
	// Promotions counts backup-to-primary takeovers on this shard.
	Promotions int
	// Degraded and Shed are the primary overload governor's ladder state:
	// objects currently below ModeNormal, and of those, objects whose
	// update transmissions are suspended entirely. Both are zero on an
	// ungoverned shard. A front tier treats Degraded > 0 as "slow-path
	// this shard" and Shed > 0 as "stop admitting new load".
	Degraded int
	Shed     int
	// Observers counts the shard's attached read-only observer replicas.
	Observers int
}

// Statuses reports every shard's state, index-ordered.
func (c *Cluster) Statuses() []Status {
	out := make([]Status, len(c.shards))
	for i, sh := range c.shards {
		s := Status{
			Index:       i,
			Service:     sh.service,
			PrimaryHost: sh.pHost.name,
			PrimaryAddr: sh.pHost.addr(),
			Promotions:  sh.promotions,
			Observers:   len(sh.observers),
		}
		if sh.primary != nil && sh.primary.Running() {
			s.Epoch = sh.primary.Epoch()
			s.Objects = sh.primary.Objects()
			s.Utilization = sh.primary.Utilization()
			s.BackupAlive = sh.primary.BackupAlive()
			gs := sh.primary.GovernorStats()
			s.Degraded, s.Shed = gs.Degraded, gs.Shed
		}
		out[i] = s
	}
	return out
}

// Shards reports K.
func (c *Cluster) Shards() int { return len(c.shards) }

// Shard exposes one group for tests and invariant checks.
func (c *Cluster) Shard(i int) *Shard { return c.shards[i] }

// Clock exposes the cluster's virtual clock.
func (c *Cluster) Clock() *clock.SimClock { return c.clk }

// Network exposes the simulated fabric.
func (c *Cluster) Network() *netsim.Network { return c.net }

// Monitor exposes the temporal-consistency monitor; backup sites are
// named "shardI-b".
func (c *Cluster) Monitor() *temporal.Monitor { return c.mon }

// BackupSite returns shard i's monitor site name.
func (c *Cluster) BackupSite(i int) string { return c.shards[i].bHost.name }

// RunFor advances virtual time.
func (c *Cluster) RunFor(d time.Duration) { c.clk.RunFor(d) }

// Schedule runs fn after d of virtual time.
func (c *Cluster) Schedule(d time.Duration, fn func()) { c.clk.Schedule(d, fn) }

// Log returns the virtual-timestamped event log; identical across runs
// with the same configuration and seed.
func (c *Cluster) Log() []string { return append([]string(nil), c.log...) }

// Logf appends one caller-supplied event to the cluster's deterministic
// virtual-timestamped log — the seam the chaos gateway scenario uses to
// interleave front-tier events with the cluster's own, so one replayable
// log covers the whole stack.
func (c *Cluster) Logf(format string, args ...any) { c.logf(format, args...) }

func (c *Cluster) logf(format string, args ...any) {
	offset := c.clk.Now().Sub(c.start).Round(100 * time.Microsecond)
	c.log = append(c.log, fmt.Sprintf("+%-9v %s", offset, fmt.Sprintf(format, args...)))
}

// Stop shuts the whole cluster down.
func (c *Cluster) Stop() {
	c.StopWriters()
	for _, sh := range c.shards {
		if sh.det != nil {
			sh.det.Stop()
			sh.det = nil
		}
		for _, task := range sh.obsTasks {
			task.Stop()
		}
		sh.obsTasks = nil
		for _, obs := range sh.observers {
			obs.Stop()
		}
		if sh.backup != nil {
			sh.backup.Stop()
			sh.backup = nil
		}
		if sh.primary != nil {
			sh.primary.Stop()
		}
	}
}
