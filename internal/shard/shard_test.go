package shard

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"rtpb/internal/core"
	"rtpb/internal/temporal"
)

func ms(d int) time.Duration { return time.Duration(d) * time.Millisecond }

// tightSpec is deliberately expensive: δ−ℓ is small, so the derived
// update period is ~1ms and each object costs ~0.4 CPU utilization. A
// single pair saturates after a couple of them.
func tightSpec(name string) core.ObjectSpec {
	return core.ObjectSpec{
		Name:         name,
		Size:         64,
		UpdatePeriod: ms(5),
		Constraint:   temporal.ExternalConstraint{DeltaP: ms(5), DeltaB: ms(12)},
	}
}

// midSpec costs ~0.24 utilization: a single pair fits three, so a
// placer headroom of 0.4 packs exactly two per shard.
func midSpec(name string) core.ObjectSpec {
	return core.ObjectSpec{
		Name:         name,
		Size:         64,
		UpdatePeriod: ms(5),
		Constraint:   temporal.ExternalConstraint{DeltaP: ms(5), DeltaB: ms(14)},
	}
}

// easySpec is cheap enough that placement decisions, not capacity,
// dominate the test.
func easySpec(name string) core.ObjectSpec {
	return core.ObjectSpec{
		Name:         name,
		Size:         64,
		UpdatePeriod: ms(20),
		Constraint:   temporal.ExternalConstraint{DeltaP: ms(20), DeltaB: ms(120)},
	}
}

// TestClusterAdmitsWhatSinglePairRejects is the tentpole acceptance
// test: grow an object set until one primary-backup pair provably
// rejects it, then show a 4-shard cluster admits the entire set.
func TestClusterAdmitsWhatSinglePairRejects(t *testing.T) {
	single, err := NewCluster(Config{Shards: 1, Seed: 7, Headroom: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Stop()

	var specs []core.ObjectSpec
	rejected := false
	for i := 0; i < 64 && !rejected; i++ {
		spec := tightSpec(fmt.Sprintf("obj%d", i))
		specs = append(specs, spec)
		if _, d, err := single.Place(spec); err != nil {
			if !errors.Is(err, ErrClusterFull) {
				t.Fatalf("rejection is not ErrClusterFull: %v", err)
			}
			if d.Reason == "" {
				t.Fatalf("single-pair rejection carries no admission reason")
			}
			t.Logf("single pair rejects %q after %d admits: %s", spec.Name, i, d.Reason)
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("single pair admitted all 64 tight objects; test spec not tight enough")
	}

	multi, err := NewCluster(Config{Shards: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Stop()
	used := map[int]bool{}
	for _, spec := range specs {
		idx, _, err := multi.Place(spec)
		if err != nil {
			t.Fatalf("4-shard cluster rejected %q: %v", spec.Name, err)
		}
		used[idx] = true
	}
	if len(used) < 2 {
		t.Fatalf("placement used only %d shard(s) for %d objects", len(used), len(specs))
	}

	// The routed surface behaves like one service: every object is
	// writable and readable through the cluster.
	for _, spec := range specs {
		multi.WriteEvery(spec.Name, ms(5))
	}
	multi.RunFor(300 * time.Millisecond)
	multi.StopWriters()
	multi.Monitor().FinishAt(multi.Clock().Now())
	multi.RunFor(100 * time.Millisecond)
	for _, spec := range specs {
		got, _, ok := multi.Read(spec.Name)
		if !ok || !bytes.Equal(got, multi.LastWritten(spec.Name)) {
			t.Errorf("%q did not converge: got %q want %q", spec.Name, got, multi.LastWritten(spec.Name))
		}
		idx, _ := multi.Route(spec.Name)
		site := multi.BackupSite(idx)
		if rep, ok := multi.Monitor().ExternalReport(site, spec.Name); ok && !rep.Consistent() {
			t.Errorf("%s/%s violated its bound at %v", site, spec.Name, rep.ViolationTime)
		}
	}
}

// TestFailoverReroutesWrites crashes one shard's primary and checks the
// shard promotes its backup, routed writes converge on the new primary,
// and the other shard's temporal accounting never notices.
func TestFailoverReroutesWrites(t *testing.T) {
	c, err := NewCluster(Config{Shards: 2, Seed: 11, Headroom: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	names := []string{"a0", "a1", "b0", "b1"}
	shardOf := map[string]int{}
	for _, name := range names {
		idx, _, err := c.Place(midSpec(name))
		if err != nil {
			t.Fatalf("place %q: %v", name, err)
		}
		shardOf[name] = idx
	}
	if shardOf["a0"] != shardOf["a1"] || shardOf["a0"] == shardOf["b0"] {
		t.Fatalf("unexpected packing: %v", shardOf)
	}
	crashed := shardOf["a0"]
	survivor := shardOf["b0"]

	for _, name := range names {
		c.WriteEvery(name, ms(5))
	}
	c.RunFor(200 * time.Millisecond)
	c.Schedule(0, func() { c.CrashPrimary(crashed) })
	c.RunFor(time.Second)
	c.StopWriters()
	c.Monitor().FinishAt(c.Clock().Now())
	c.RunFor(100 * time.Millisecond)

	st := c.Statuses()[crashed]
	if st.Promotions != 1 {
		t.Fatalf("crashed shard saw %d promotions, want 1\n%v", st.Promotions, c.Log())
	}
	if st.Epoch < 2 {
		t.Fatalf("promoted primary has epoch %d, want >= 2", st.Epoch)
	}
	for _, name := range names {
		idx, ok := c.Route(name)
		if !ok || idx != shardOf[name] {
			t.Fatalf("route for %q moved: %d -> %d", name, shardOf[name], idx)
		}
		got, _, ok := c.Read(name)
		if !ok || !bytes.Equal(got, c.LastWritten(name)) {
			t.Errorf("%q did not converge after failover: got %q want %q", name, got, c.LastWritten(name))
		}
	}
	// The surviving shard's backup images stayed within their bounds and
	// were never suspended: its group did not feel the other's failover.
	site := c.BackupSite(survivor)
	for _, name := range []string{"b0", "b1"} {
		rep, ok := c.Monitor().ExternalReport(site, name)
		if !ok {
			t.Fatalf("no external report for %s/%s", site, name)
		}
		if !rep.Consistent() {
			t.Errorf("surviving shard's %q violated its bound at %v", name, rep.ViolationTime)
		}
		if c.Monitor().Suspended(site, name) {
			t.Errorf("surviving shard's %q was suspended", name)
		}
	}
}

// TestMigrateMarksCatchUp moves a live object between shards and checks
// the route rebinds, the destination image goes through a catch-up
// cycle before being counted again, and the source drops the object.
func TestMigrateMarksCatchUp(t *testing.T) {
	c, err := NewCluster(Config{Shards: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	idx, _, err := c.Place(easySpec("mig"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("expected first placement on shard 0, got %d", idx)
	}
	c.WriteEvery("mig", ms(20))
	c.RunFor(200 * time.Millisecond)

	if err := c.Migrate("mig", 1); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if got, _ := c.Route("mig"); got != 1 {
		t.Fatalf("route after migrate = %d, want 1", got)
	}
	if _, ok := c.Shard(0).Primary().Spec("mig"); ok {
		t.Fatal("source shard still holds the migrated object")
	}
	c.RunFor(500 * time.Millisecond)
	c.StopWriters()
	c.Monitor().FinishAt(c.Clock().Now())
	c.RunFor(100 * time.Millisecond)

	dstSite := c.BackupSite(1)
	if n := c.Monitor().CatchUps(dstSite, "mig"); n < 1 {
		t.Errorf("destination image went through %d catch-up cycles, want >= 1\n%v", n, c.Log())
	}
	if c.Monitor().CatchingUp(dstSite, "mig") {
		t.Error("destination image still marked catching up")
	}
	rep, ok := c.Monitor().ExternalReport(dstSite, "mig")
	if !ok {
		t.Fatal("no external report at destination")
	}
	if !rep.Consistent() {
		t.Errorf("destination image violated its bound at %v", rep.ViolationTime)
	}
	got, _, ok := c.Read("mig")
	if !ok || !bytes.Equal(got, c.LastWritten("mig")) {
		t.Errorf("writes did not follow the migration: got %q want %q", got, c.LastWritten("mig"))
	}
	// The source site stopped being charged for the image it no longer
	// hosts.
	if !c.Monitor().Suspended(c.BackupSite(0), "mig") {
		t.Error("source site still accounted for the migrated object")
	}
}

// TestPlaceRejectsDuplicate ensures a routed name cannot be admitted
// twice anywhere in the cluster.
func TestPlaceRejectsDuplicate(t *testing.T) {
	c, err := NewCluster(Config{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, _, err := c.Place(easySpec("dup")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Place(easySpec("dup")); err == nil {
		t.Fatal("duplicate placement accepted")
	}
}

// TestClusterLogDeterministic replays the same seed twice and requires
// byte-identical event logs.
func TestClusterLogDeterministic(t *testing.T) {
	run := func() []string {
		c, err := NewCluster(Config{Shards: 2, Seed: 42, Headroom: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		for i := 0; i < 3; i++ {
			if _, _, err := c.Place(midSpec(fmt.Sprintf("o%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			c.WriteEvery(fmt.Sprintf("o%d", i), ms(5))
		}
		c.RunFor(150 * time.Millisecond)
		c.Schedule(0, func() { c.CrashPrimary(0) })
		c.RunFor(600 * time.Millisecond)
		c.StopWriters()
		return c.Log()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("log lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("log line %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
}
