// Package shard runs K independent RTPB primary-backup groups behind one
// client-facing surface: a Placer bin-packs registrations across the
// groups using the paper's own admission tests as the fit function, a
// Router maintains the object→shard map and forwards writes and reads to
// the owning group's current primary (re-resolving after a per-shard
// failover), and Migrate moves an object between groups over the chunked
// anti-entropy transfer. The paper's guarantees are per-group: every
// shard is exactly the two-replica protocol of Sections 3–4, so the
// cluster's capacity scales with K while each object's temporal
// constraints are enforced by the shard that admitted it.
package shard

import (
	"errors"
	"fmt"
	"sort"

	"rtpb/internal/core"
)

// ErrClusterFull reports that no shard could schedule an object: every
// group either failed the headroom reserve or rejected the registration
// outright.
var ErrClusterFull = errors.New("shard: no shard can schedule the object")

// Target is one shard as the placer sees it: an admission surface with a
// utilization estimate. *Shard implements it; the placement property
// tests drive the placer through lightweight in-memory targets too.
type Target interface {
	// Utilization is the resident task set's planned CPU utilization.
	Utilization() float64
	// UtilizationWith estimates the utilization were spec admitted; ok is
	// false when the spec cannot yield a positive update period.
	UtilizationWith(spec core.ObjectSpec) (float64, bool)
	// Admit runs the real admission pipeline, admitting on acceptance.
	Admit(spec core.ObjectSpec) core.Decision
}

// Placer bin-packs objects across shards. For one incoming spec the
// shards are tried in decreasing-utilization order (ties broken by
// index) and the first fit wins: packing the fullest feasible shard
// keeps the lightly loaded ones free for objects with tight constraints,
// the classic decreasing-order discipline applied to the bins. The fit
// function is the shard's own admission test — a shard fits iff the
// registration is accepted — pre-filtered by the headroom reserve.
type Placer struct {
	// Headroom is the per-shard CPU utilization reserve in [0, 1): a spec
	// is only offered to a shard when the estimated post-admission
	// utilization stays at or below 1−Headroom. The reserve is what keeps
	// failover re-admission and migration feasible — a shard packed to
	// the admission boundary has no room to take anything in. Zero means
	// no reserve.
	Headroom float64
}

// DefaultHeadroom is the per-shard reserve used when none is configured.
const DefaultHeadroom = 0.10

// Place picks a shard for one spec and admits it there. It returns the
// chosen target's index and the accepting decision; on failure the index
// is -1, the decision is the last real rejection (zero if no shard got
// past the headroom filter), and the error wraps ErrClusterFull.
func (pl *Placer) Place(spec core.ObjectSpec, targets []Target) (int, core.Decision, error) {
	if len(targets) == 0 {
		return -1, core.Decision{}, fmt.Errorf("%w: no shards", ErrClusterFull)
	}
	order := make([]int, len(targets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return targets[order[a]].Utilization() > targets[order[b]].Utilization()
	})
	limit := 1 - pl.Headroom
	var last core.Decision
	reason := "over headroom reserve on every shard"
	for _, i := range order {
		t := targets[i]
		est, ok := t.UtilizationWith(spec)
		if !ok || est > limit {
			continue
		}
		d := t.Admit(spec)
		if d.Accepted {
			return i, d, nil
		}
		last = d
		reason = d.Reason
	}
	return -1, last, fmt.Errorf("%w: %s", ErrClusterFull, reason)
}

// PlaceAll admits a batch of specs first-fit-decreasing: the specs are
// sorted by decreasing estimated utilization demand (the heavy objects
// place first, while every bin still has room) and then placed one by
// one. It returns the chosen shard index per spec, -1 for specs no shard
// could schedule, along with the count placed.
func (pl *Placer) PlaceAll(specs []core.ObjectSpec, targets []Target) (indices []int, placed int) {
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	demand := make([]float64, len(specs))
	if len(targets) > 0 {
		base := targets[0].Utilization()
		for i, spec := range specs {
			if est, ok := targets[0].UtilizationWith(spec); ok {
				demand[i] = est - base
			}
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return demand[order[a]] > demand[order[b]] })
	indices = make([]int, len(specs))
	for i := range indices {
		indices[i] = -1
	}
	for _, i := range order {
		if idx, _, err := pl.Place(specs[i], targets); err == nil {
			indices[i] = idx
			placed++
		}
	}
	return indices, placed
}
