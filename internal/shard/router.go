package shard

import "sort"

// Router maintains the object→shard map: the single mutable source of
// truth for which group owns each object. Routes survive per-shard
// failovers untouched — a takeover changes which replica serves the
// shard, not which shard owns the object — and are rebound only by
// migration or removal.
type Router struct {
	byObject map[string]int
}

// NewRouter builds an empty routing table.
func NewRouter() *Router {
	return &Router{byObject: make(map[string]int)}
}

// Assign binds (or rebinds, after a migration) an object to a shard.
func (r *Router) Assign(name string, shard int) { r.byObject[name] = shard }

// Lookup resolves an object's owning shard.
func (r *Router) Lookup(name string) (int, bool) {
	i, ok := r.byObject[name]
	return i, ok
}

// Forget drops a removed object's route.
func (r *Router) Forget(name string) { delete(r.byObject, name) }

// Objects returns every routed object name in sorted order.
func (r *Router) Objects() []string {
	out := make([]string, 0, len(r.byObject))
	for name := range r.byObject {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ObjectsOn returns the names routed to one shard, sorted.
func (r *Router) ObjectsOn(shard int) []string {
	var out []string
	for name, s := range r.byObject {
		if s == shard {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Count reports how many objects a shard owns.
func (r *Router) Count(shard int) int {
	n := 0
	for _, s := range r.byObject {
		if s == shard {
			n++
		}
	}
	return n
}

// Len reports the total number of routed objects.
func (r *Router) Len() int { return len(r.byObject) }
