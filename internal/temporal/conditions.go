// Package temporal implements the paper's temporal-consistency models:
// external temporal consistency (Section 2) relating a real-world object to
// its images on the primary and backup servers, and inter-object temporal
// consistency (Section 3) bounding the relative staleness of two related
// objects. It provides the sufficient conditions (Lemmas 1-3) and the
// necessary-and-sufficient conditions built on phase variance (Theorems 1,
// 4, 5, 6) as checkable predicates and as period-derivation formulas used
// by the RTPB admission controller, plus a runtime monitor that verifies
// the guarantees against observed update-timestamp streams.
package temporal

import (
	"fmt"
	"time"
)

// ExternalConstraint is the external temporal-consistency requirement for
// one object: at every instant t the primary's image may lag the real
// world by at most DeltaP, and the backup's image by at most DeltaB.
// The paper requires DeltaB > DeltaP (the backup tolerance subsumes the
// primary's, leaving the window Delta() for replication).
type ExternalConstraint struct {
	// DeltaP is δ_i^P, the bound on t − T_i^P(t).
	DeltaP time.Duration
	// DeltaB is δ_i^B, the bound on t − T_i^B(t).
	DeltaB time.Duration
}

// Delta returns δ_i = δ_i^B − δ_i^P, the consistency window between the
// primary and the backup (the "window of inconsistency" of the
// window-consistent protocol the paper generalizes).
func (c ExternalConstraint) Delta() time.Duration { return c.DeltaB - c.DeltaP }

// Validate checks that the constraint is internally consistent.
func (c ExternalConstraint) Validate() error {
	switch {
	case c.DeltaP <= 0:
		return fmt.Errorf("temporal: δP = %v is not positive", c.DeltaP)
	case c.DeltaB <= c.DeltaP:
		return fmt.Errorf("temporal: δB = %v does not exceed δP = %v", c.DeltaB, c.DeltaP)
	}
	return nil
}

// InterObjectConstraint is the inter-object temporal-consistency
// requirement between two objects i and j:
// |T_j(t) − T_i(t)| ≤ Delta must hold at both the primary and the backup.
type InterObjectConstraint struct {
	// I and J name the related objects.
	I, J string
	// Delta is δ_ij.
	Delta time.Duration
}

// Validate checks the constraint.
func (c InterObjectConstraint) Validate() error {
	if c.Delta <= 0 {
		return fmt.Errorf("temporal: δ_ij = %v is not positive", c.Delta)
	}
	if c.I == c.J {
		return fmt.Errorf("temporal: inter-object constraint relates %q to itself", c.I)
	}
	return nil
}

// Lemma1Sufficient reports the sufficient condition of Lemma 1 for
// external consistency at the primary: p_i ≤ (δ_i^P + e_i)/2.
func Lemma1Sufficient(period, wcet, deltaP time.Duration) bool {
	return 2*period <= deltaP+wcet
}

// Theorem1 reports the necessary-and-sufficient condition for external
// consistency at the primary: p_i ≤ δ_i^P − v_i, where v_i is the phase
// variance of the task updating the object.
func Theorem1(period, phaseVariance, deltaP time.Duration) bool {
	return period <= deltaP-phaseVariance
}

// MaxPrimaryPeriod returns the largest update period that satisfies
// Theorem 1 at the primary: p_i = δ_i^P − v_i. A non-positive result means
// the constraint is unsatisfiable for this phase variance.
func MaxPrimaryPeriod(deltaP, phaseVariance time.Duration) time.Duration {
	return deltaP - phaseVariance
}

// Lemma2Sufficient reports the sufficient condition of Lemma 2 for
// external consistency at the backup:
// r_i ≤ (δ_i^B + e_i + e'_i − ℓ)/2 − p_i.
func Lemma2Sufficient(r, p, wcetPrimary, wcetBackup, ell, deltaB time.Duration) bool {
	return 2*(r+p) <= deltaB+wcetPrimary+wcetBackup-ell
}

// Theorem4 reports the necessary-and-sufficient condition for external
// consistency at the backup:
// r_i ≤ δ_i^B − v'_i − p_i − v_i − ℓ,
// where v_i and v'_i are the phase variances of the primary-update and
// backup-update tasks and ℓ is the bound on primary→backup delay.
func Theorem4(r, p, v, vPrime, ell, deltaB time.Duration) bool {
	return r <= deltaB-vPrime-p-v-ell
}

// MaxBackupPeriod returns the largest backup-update period permitted by
// Theorem 4. A non-positive result means the backup constraint cannot be
// met with these parameters.
func MaxBackupPeriod(deltaB, p, v, vPrime, ell time.Duration) time.Duration {
	return deltaB - vPrime - p - v - ell
}

// Theorem5 reports the simplified condition when the backup-update task
// has zero phase variance and the primary-update period is maximal
// (p_i = δ_i^P − v_i): r_i ≤ (δ_i^B − δ_i^P) − ℓ. This is exactly the
// window-consistent protocol's transmission rule with window δ = δB − δP.
func Theorem5(r, ell time.Duration, c ExternalConstraint) bool {
	return r <= c.Delta()-ell
}

// MaxBackupPeriodTheorem5 returns the largest backup-update period under
// the Theorem 5 simplification: (δ_i^B − δ_i^P) − ℓ.
func MaxBackupPeriodTheorem5(c ExternalConstraint, ell time.Duration) time.Duration {
	return c.Delta() - ell
}

// Theorem6Primary reports the necessary-and-sufficient inter-object
// condition at the primary: p_i ≤ δ_ij − v_i and p_j ≤ δ_ij − v_j.
func Theorem6Primary(pi, vi, pj, vj, deltaIJ time.Duration) bool {
	return pi <= deltaIJ-vi && pj <= deltaIJ-vj
}

// Theorem6Backup reports the necessary-and-sufficient inter-object
// condition at the backup: r_i ≤ δ_ij − v'_i and r_j ≤ δ_ij − v'_j.
// Note (Section 3): inter-object consistency at the backup is independent
// of the primary's update periods.
func Theorem6Backup(ri, vi, rj, vj, deltaIJ time.Duration) bool {
	return ri <= deltaIJ-vi && rj <= deltaIJ-vj
}

// Lemma3SufficientPrimary reports Lemma 3's sufficient inter-object
// condition at the primary: p ≤ (δ_ij + e)/2 for the given task.
func Lemma3SufficientPrimary(p, wcet, deltaIJ time.Duration) bool {
	return 2*p <= deltaIJ+wcet
}

// ConvertInterObject converts an inter-object constraint into the pair of
// per-object external-style period bounds used by the RTPB admission
// controller (Section 4.2): with zero phase variance, the constraint is
// met at a site as long as both update tasks run with period ≤ δ_ij.
func ConvertInterObject(c InterObjectConstraint) (boundI, boundJ time.Duration) {
	return c.Delta, c.Delta
}
