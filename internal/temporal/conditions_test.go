package temporal

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestExternalConstraintValidate(t *testing.T) {
	cases := []struct {
		name string
		c    ExternalConstraint
		ok   bool
	}{
		{"valid", ExternalConstraint{DeltaP: ms(50), DeltaB: ms(120)}, true},
		{"zero deltaP", ExternalConstraint{DeltaB: ms(120)}, false},
		{"deltaB equals deltaP", ExternalConstraint{DeltaP: ms(50), DeltaB: ms(50)}, false},
		{"deltaB below deltaP", ExternalConstraint{DeltaP: ms(50), DeltaB: ms(40)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.c.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestExternalConstraintDelta(t *testing.T) {
	c := ExternalConstraint{DeltaP: ms(50), DeltaB: ms(120)}
	if c.Delta() != ms(70) {
		t.Fatalf("Delta() = %v, want 70ms", c.Delta())
	}
}

func TestInterObjectConstraintValidate(t *testing.T) {
	if err := (InterObjectConstraint{I: "a", J: "b", Delta: ms(10)}).Validate(); err != nil {
		t.Fatalf("valid constraint rejected: %v", err)
	}
	if err := (InterObjectConstraint{I: "a", J: "a", Delta: ms(10)}).Validate(); err == nil {
		t.Fatal("self-constraint accepted")
	}
	if err := (InterObjectConstraint{I: "a", J: "b"}).Validate(); err == nil {
		t.Fatal("zero delta accepted")
	}
}

func TestLemma1ImpliesTheorem1(t *testing.T) {
	// Lemma 1's sufficient condition (p ≤ (δ+e)/2) implies Theorem 1's
	// condition with the universal phase-variance bound v = p − e.
	f := func(p16, e16, d16 uint16) bool {
		p := time.Duration(p16)*time.Millisecond + time.Millisecond
		e := time.Duration(e16) % p
		if e <= 0 {
			e = time.Millisecond
		}
		d := time.Duration(d16) * time.Millisecond
		if !Lemma1Sufficient(p, e, d) {
			return true // vacuous
		}
		v := p - e // Inequality 2.1
		return Theorem1(p, v, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem1Boundary(t *testing.T) {
	if !Theorem1(ms(40), ms(10), ms(50)) {
		t.Fatal("p = δ − v rejected (condition is ≤)")
	}
	if Theorem1(ms(41), ms(10), ms(50)) {
		t.Fatal("p > δ − v accepted")
	}
}

func TestMaxPrimaryPeriod(t *testing.T) {
	if got := MaxPrimaryPeriod(ms(50), ms(10)); got != ms(40) {
		t.Fatalf("MaxPrimaryPeriod = %v, want 40ms", got)
	}
	if got := MaxPrimaryPeriod(ms(10), ms(20)); got >= 0 {
		t.Fatalf("unsatisfiable constraint returned non-negative period %v", got)
	}
}

func TestTheorem4Boundary(t *testing.T) {
	// r ≤ δB − v' − p − v − ℓ
	deltaB, p, v, vp, ell := ms(200), ms(50), ms(5), ms(3), ms(10)
	max := MaxBackupPeriod(deltaB, p, v, vp, ell)
	if max != ms(132) {
		t.Fatalf("MaxBackupPeriod = %v, want 132ms", max)
	}
	if !Theorem4(max, p, v, vp, ell, deltaB) {
		t.Fatal("boundary r rejected")
	}
	if Theorem4(max+1, p, v, vp, ell, deltaB) {
		t.Fatal("r beyond boundary accepted")
	}
}

func TestTheorem5MatchesTheorem4WithMaxPrimaryPeriod(t *testing.T) {
	// With v' = 0 and p = δP − v, Theorem 4 reduces to Theorem 5.
	f := func(dp16, db16, v16, l16 uint16) bool {
		dp := time.Duration(dp16)*time.Millisecond + time.Millisecond
		db := dp + time.Duration(db16)*time.Millisecond + time.Millisecond
		v := time.Duration(v16) % dp
		ell := time.Duration(l16) * time.Microsecond
		c := ExternalConstraint{DeltaP: dp, DeltaB: db}
		p := MaxPrimaryPeriod(dp, v)
		t4 := MaxBackupPeriod(db, p, v, 0, ell)
		t5 := MaxBackupPeriodTheorem5(c, ell)
		return t4 == t5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTheorem5(t *testing.T) {
	c := ExternalConstraint{DeltaP: ms(50), DeltaB: ms(120)}
	if !Theorem5(ms(60), ms(10), c) {
		t.Fatal("r = δ − ℓ rejected")
	}
	if Theorem5(ms(61), ms(10), c) {
		t.Fatal("r > δ − ℓ accepted")
	}
}

func TestTheorem6(t *testing.T) {
	if !Theorem6Primary(ms(40), ms(10), ms(45), ms(5), ms(50)) {
		t.Fatal("Theorem6Primary rejected boundary periods")
	}
	if Theorem6Primary(ms(41), ms(10), ms(45), ms(5), ms(50)) {
		t.Fatal("Theorem6Primary accepted p_i over bound")
	}
	if Theorem6Primary(ms(40), ms(10), ms(46), ms(5), ms(50)) {
		t.Fatal("Theorem6Primary accepted p_j over bound")
	}
	if !Theorem6Backup(ms(50), 0, ms(50), 0, ms(50)) {
		t.Fatal("Theorem6Backup rejected boundary periods with zero variance")
	}
}

func TestLemma3ImpliesTheorem6WithUniversalBound(t *testing.T) {
	f := func(p16, e16, d16 uint16) bool {
		p := time.Duration(p16)*time.Millisecond + time.Millisecond
		e := time.Duration(e16) % p
		if e <= 0 {
			e = time.Millisecond
		}
		d := time.Duration(d16) * time.Millisecond
		if !Lemma3SufficientPrimary(p, e, d) {
			return true
		}
		return p <= d-(p-e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvertInterObject(t *testing.T) {
	bi, bj := ConvertInterObject(InterObjectConstraint{I: "a", J: "b", Delta: ms(30)})
	if bi != ms(30) || bj != ms(30) {
		t.Fatalf("ConvertInterObject = (%v, %v), want (30ms, 30ms)", bi, bj)
	}
}
