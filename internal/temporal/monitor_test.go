package temporal

import (
	"testing"
	"time"
)

var t0 = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return t0.Add(d) }

func TestMonitorExternalNoViolation(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("primary", "x", ms(50))
	// Updates every 30ms with zero version lag: staleness peaks at 30ms.
	for k := 0; k <= 5; k++ {
		m.RecordUpdate("primary", "x", at(time.Duration(k)*ms(30)), at(time.Duration(k)*ms(30)))
	}
	m.FinishAt(at(ms(150)))
	r, ok := m.ExternalReport("primary", "x")
	if !ok {
		t.Fatal("report missing")
	}
	if !r.Consistent() {
		t.Fatalf("unexpected violation: %v", r)
	}
	if r.MaxStaleness != ms(30) {
		t.Fatalf("MaxStaleness = %v, want 30ms", r.MaxStaleness)
	}
	if r.Updates != 6 {
		t.Fatalf("Updates = %d, want 6", r.Updates)
	}
}

func TestMonitorExternalViolationAmount(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(50))
	m.RecordUpdate("backup", "x", at(0), at(0))
	// Next update arrives at 80ms: image exceeded the 50ms bound for 30ms.
	m.RecordUpdate("backup", "x", at(ms(80)), at(ms(80)))
	m.FinishAt(at(ms(80)))
	r, _ := m.ExternalReport("backup", "x")
	if r.ViolationTime != ms(30) {
		t.Fatalf("ViolationTime = %v, want 30ms", r.ViolationTime)
	}
	if r.Excursions != 1 {
		t.Fatalf("Excursions = %d, want 1", r.Excursions)
	}
	if r.MaxStaleness != ms(80) {
		t.Fatalf("MaxStaleness = %v, want 80ms", r.MaxStaleness)
	}
}

func TestMonitorExternalVersionLag(t *testing.T) {
	// The image applied at 20ms reflects the world as of 0ms: staleness at
	// apply instant of the *next* update includes that version lag.
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(50))
	m.RecordUpdate("backup", "x", at(0), at(ms(20)))
	m.RecordUpdate("backup", "x", at(ms(40)), at(ms(60)))
	m.FinishAt(at(ms(60)))
	r, _ := m.ExternalReport("backup", "x")
	// Staleness just before second apply: 60 − 0 = 60ms; violation from
	// t = 50ms to t = 60ms.
	if r.MaxStaleness != ms(60) {
		t.Fatalf("MaxStaleness = %v, want 60ms", r.MaxStaleness)
	}
	if r.ViolationTime != ms(10) {
		t.Fatalf("ViolationTime = %v, want 10ms", r.ViolationTime)
	}
}

func TestMonitorFinishAccountsTail(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("primary", "x", ms(50))
	m.RecordUpdate("primary", "x", at(0), at(0))
	m.FinishAt(at(ms(200)))
	r, _ := m.ExternalReport("primary", "x")
	if r.ViolationTime != ms(150) {
		t.Fatalf("tail ViolationTime = %v, want 150ms", r.ViolationTime)
	}
	if r.MaxStaleness != ms(200) {
		t.Fatalf("tail MaxStaleness = %v, want 200ms", r.MaxStaleness)
	}
}

func TestMonitorFinishIsIdempotent(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("primary", "x", ms(50))
	m.RecordUpdate("primary", "x", at(0), at(0))
	m.FinishAt(at(ms(100)))
	m.FinishAt(at(ms(300)))
	r, _ := m.ExternalReport("primary", "x")
	if r.ViolationTime != ms(50) {
		t.Fatalf("ViolationTime after double Finish = %v, want 50ms", r.ViolationTime)
	}
}

func TestMonitorUntrackedObjectIgnored(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("primary", "x", ms(50))
	m.RecordUpdate("primary", "y", at(0), at(0)) // not tracked: no panic
	if _, ok := m.ExternalReport("primary", "y"); ok {
		t.Fatal("report exists for untracked object")
	}
}

func TestMonitorInterObjectWithinBound(t *testing.T) {
	m := NewMonitor()
	m.TrackInterObject("primary", InterObjectConstraint{I: "accel", J: "lift", Delta: ms(40)})
	m.RecordUpdate("primary", "accel", at(0), at(0))
	m.RecordUpdate("primary", "lift", at(ms(30)), at(ms(30)))
	m.RecordUpdate("primary", "accel", at(ms(50)), at(ms(50)))
	m.FinishAt(at(ms(60)))
	r, ok := m.InterObjectReport("primary", "accel", "lift")
	if !ok {
		t.Fatal("report missing")
	}
	if !r.Consistent() {
		t.Fatalf("unexpected violation: %+v", r)
	}
	if r.MaxDistance != ms(30) {
		t.Fatalf("MaxDistance = %v, want 30ms", r.MaxDistance)
	}
	if r.Checks != 2 {
		t.Fatalf("Checks = %d, want 2 (pair complete from second update)", r.Checks)
	}
}

func TestMonitorInterObjectViolation(t *testing.T) {
	m := NewMonitor()
	m.TrackInterObject("backup", InterObjectConstraint{I: "a", J: "b", Delta: ms(20)})
	m.RecordUpdate("backup", "a", at(0), at(0))
	m.RecordUpdate("backup", "b", at(ms(50)), at(ms(50)))
	r, _ := m.InterObjectReport("backup", "a", "b")
	if r.Violations != 1 {
		t.Fatalf("Violations = %d, want 1", r.Violations)
	}
	if r.MaxDistance != ms(50) {
		t.Fatalf("MaxDistance = %v, want 50ms", r.MaxDistance)
	}
}

func TestMonitorInterObjectIncompletePairNotChecked(t *testing.T) {
	m := NewMonitor()
	m.TrackInterObject("primary", InterObjectConstraint{I: "a", J: "b", Delta: ms(20)})
	m.RecordUpdate("primary", "a", at(0), at(0))
	m.RecordUpdate("primary", "a", at(ms(10)), at(ms(10)))
	r, _ := m.InterObjectReport("primary", "a", "b")
	if r.Checks != 0 {
		t.Fatalf("Checks = %d before both objects seen, want 0", r.Checks)
	}
}

func TestMonitorSitesAreIndependent(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("primary", "x", ms(50))
	m.TrackExternal("backup", "x", ms(120))
	m.RecordUpdate("primary", "x", at(0), at(0))
	m.RecordUpdate("primary", "x", at(ms(40)), at(ms(40)))
	m.RecordUpdate("backup", "x", at(0), at(ms(10)))
	m.FinishAt(at(ms(60)))
	p, _ := m.ExternalReport("primary", "x")
	b, _ := m.ExternalReport("backup", "x")
	if !p.Consistent() {
		t.Fatalf("primary violated: %v", p)
	}
	if !b.Consistent() {
		t.Fatalf("backup violated: %v", b)
	}
	if b.Updates != 1 || p.Updates != 2 {
		t.Fatalf("update counts p=%d b=%d, want 2 and 1", p.Updates, b.Updates)
	}
}

func TestMonitorSuspendWaivesBound(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(50))
	m.RecordUpdate("backup", "x", at(0), at(0))
	// Shed at 40ms: 0ms of violation so far. The image then rots for
	// 500ms with no updates — none of it counts while suspended.
	m.Suspend("backup", "x", at(ms(40)))
	if !m.Suspended("backup", "x") {
		t.Fatal("not suspended after Suspend")
	}
	// An update racing the mode change carries no obligation.
	m.RecordUpdate("backup", "x", at(ms(200)), at(ms(200)))
	// Promoted at 540ms; the refresh lands at 545ms and accounting
	// restarts there.
	m.Resume("backup", "x")
	m.RecordUpdate("backup", "x", at(ms(545)), at(ms(545)))
	m.RecordUpdate("backup", "x", at(ms(575)), at(ms(575)))
	m.FinishAt(at(ms(580)))
	r, _ := m.ExternalReport("backup", "x")
	if !r.Consistent() {
		t.Fatalf("suspension did not waive the bound: %v", r)
	}
	if m.Suspended("backup", "x") {
		t.Fatal("still suspended after Resume")
	}
}

func TestMonitorSuspendAccountsPrefix(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(50))
	m.RecordUpdate("backup", "x", at(0), at(0))
	// Suspended only at 80ms: the bound was already blown for 30ms.
	m.Suspend("backup", "x", at(ms(80)))
	m.FinishAt(at(ms(500)))
	r, _ := m.ExternalReport("backup", "x")
	if r.ViolationTime != ms(30) {
		t.Fatalf("prefix violation = %v, want 30ms", r.ViolationTime)
	}
}

func TestMonitorSetBoundLoosens(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(50))
	m.RecordUpdate("backup", "x", at(0), at(0))
	// Bound loosened to 120ms at 20ms (compressed mode announced); the
	// next update at 100ms would have violated the 50ms bound but stays
	// inside the effective one.
	m.SetBound("backup", "x", at(ms(20)), ms(120))
	m.RecordUpdate("backup", "x", at(ms(100)), at(ms(100)))
	m.FinishAt(at(ms(100)))
	r, _ := m.ExternalReport("backup", "x")
	if !r.Consistent() {
		t.Fatalf("loosened bound still violated: %v", r)
	}
	if r.Delta != ms(120) {
		t.Fatalf("Delta = %v, want 120ms", r.Delta)
	}
}

func TestMonitorSetBoundAccountsPrefixUnderOldBound(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(50))
	m.RecordUpdate("backup", "x", at(0), at(0))
	// The 50ms bound is blown from 50ms to 80ms (30ms of violation);
	// only then is the bound loosened.
	m.SetBound("backup", "x", at(ms(80)), ms(300))
	m.RecordUpdate("backup", "x", at(ms(200)), at(ms(200)))
	m.FinishAt(at(ms(200)))
	r, _ := m.ExternalReport("backup", "x")
	if r.ViolationTime != ms(30) {
		t.Fatalf("prefix violation = %v, want 30ms under the old bound", r.ViolationTime)
	}
}
