package temporal

import (
	"flag"
	"math/rand"
	"testing"
	"time"
)

// seedFlag shifts every property test's fixed RNG seed so alternative
// schedules can be explored on demand (go test ./internal/temporal
// -seed=N); the default 0 keeps runs byte-identical to the committed
// seeds.
var seedFlag = flag.Int64("seed", 0, "offset added to the property tests' fixed RNG seeds")

func propRand(base int64) *rand.Rand { return rand.New(rand.NewSource(base + *seedFlag)) }

// TestMonitorMatchesDiscretizedReference cross-checks the monitor's
// closed-form violation accounting against a brute-force reference that
// samples the staleness trajectory on a fine grid. For random update
// streams the two must agree to within one grid step per excursion.
func TestMonitorMatchesDiscretizedReference(t *testing.T) {
	rng := propRand(2024)
	const step = time.Millisecond
	for trial := 0; trial < 100; trial++ {
		delta := time.Duration(20+rng.Intn(200)) * time.Millisecond
		m := NewMonitor()
		m.TrackExternal("site", "obj", delta)

		type upd struct{ version, applied time.Time }
		var updates []upd
		now := t0
		for k := 0; k < 3+rng.Intn(30); k++ {
			now = now.Add(time.Duration(1+rng.Intn(150)) * time.Millisecond)
			lag := time.Duration(rng.Intn(40)) * time.Millisecond
			updates = append(updates, upd{version: now.Add(-lag), applied: now})
		}
		end := now.Add(time.Duration(rng.Intn(300)) * time.Millisecond)
		for _, u := range updates {
			m.RecordUpdate("site", "obj", u.version, u.applied)
		}
		m.FinishAt(end)
		r, _ := m.ExternalReport("site", "obj")

		// Brute force: walk the grid from the first apply to the end,
		// tracking the version of the last applied update.
		var ref time.Duration
		var refMax time.Duration
		idx := 0
		version := updates[0].version
		for tm := updates[0].applied; tm.Before(end); tm = tm.Add(step) {
			for idx+1 < len(updates) && !updates[idx+1].applied.After(tm) {
				idx++
				version = updates[idx].version
			}
			stale := tm.Sub(version)
			if stale > refMax {
				refMax = stale
			}
			if stale > delta {
				ref += step
			}
		}

		tol := step * time.Duration(r.Excursions+2)
		diff := r.ViolationTime - ref
		if diff < 0 {
			diff = -diff
		}
		if diff > tol {
			t.Fatalf("trial %d: monitor violation %v vs reference %v (tol %v, δ=%v, %d updates)",
				trial, r.ViolationTime, ref, tol, delta, len(updates))
		}
		// Max staleness agrees to within one step plus the final-interval
		// endpoint effect.
		maxDiff := r.MaxStaleness - refMax
		if maxDiff < 0 {
			maxDiff = -maxDiff
		}
		if maxDiff > 2*step {
			t.Fatalf("trial %d: max staleness %v vs reference %v", trial, r.MaxStaleness, refMax)
		}
	}
}

// TestMonitorViolationNeverExceedsObservationWindow is a safety property:
// accumulated violation time cannot exceed the observed interval.
func TestMonitorViolationNeverExceedsObservationWindow(t *testing.T) {
	rng := propRand(7)
	for trial := 0; trial < 200; trial++ {
		delta := time.Duration(1+rng.Intn(100)) * time.Millisecond
		m := NewMonitor()
		m.TrackExternal("s", "o", delta)
		now := t0
		first := time.Time{}
		for k := 0; k < 1+rng.Intn(20); k++ {
			now = now.Add(time.Duration(rng.Intn(100)) * time.Millisecond)
			if first.IsZero() {
				first = now
			}
			m.RecordUpdate("s", "o", now.Add(-time.Duration(rng.Intn(50))*time.Millisecond), now)
		}
		end := now.Add(time.Duration(rng.Intn(500)) * time.Millisecond)
		m.FinishAt(end)
		r, _ := m.ExternalReport("s", "o")
		if window := end.Sub(first); r.ViolationTime > window {
			t.Fatalf("trial %d: violation %v exceeds window %v", trial, r.ViolationTime, window)
		}
	}
}
