package temporal

import (
	"fmt"
	"time"
)

// Monitor verifies temporal-consistency guarantees against observed update
// streams. The protocol under test reports every applied update as
// (site, object, version, applied): version is the timestamp of the
// real-world state the new image reflects (T_i after the update) and
// applied is the instant the image changed. Between updates the image's
// version is constant, so staleness t − T_i(t) grows linearly and every
// excursion beyond the bound can be computed exactly — the monitor checks
// the continuous-time property, not samples of it.
type Monitor struct {
	external map[extKey]*extState
	inter    map[interKey]*interState
}

type extKey struct{ site, object string }

type interKey struct{ site, i, j string }

type extState struct {
	delta        time.Duration
	hasUpdate    bool
	lastVersion  time.Time
	lastApplied  time.Time
	updates      int
	maxStaleness time.Duration
	violation    time.Duration
	excursions   int
	finished     bool
	suspended    bool
	catchingUp   bool
	catchUps     int
	// theta is the current clock-uncertainty bound attached by
	// SetUncertainty: the stamps being verified may err from true time by
	// up to theta, so staleness is only provably beyond the bound past
	// delta+theta and provably within it under delta−theta; the band
	// between accrues in unverifiableTime. unverifiable marks spells
	// where theta consumed the whole bound (delta − theta ≤ 0), counted
	// in unverifiableSpells.
	theta              time.Duration
	unverifiable       bool
	unverifiableTime   time.Duration
	unverifiableSpells int
}

type interState struct {
	delta       time.Duration
	hasI, hasJ  bool
	ti, tj      time.Time
	maxDistance time.Duration
	violations  int
	checks      int
}

// NewMonitor returns an empty monitor; register constraints with
// TrackExternal and TrackInterObject before recording updates.
func NewMonitor() *Monitor {
	return &Monitor{
		external: make(map[extKey]*extState),
		inter:    make(map[interKey]*interState),
	}
}

// TrackExternal registers an external temporal-consistency bound delta for
// the object's image at the given site ("primary", "backup", ...).
func (m *Monitor) TrackExternal(site, object string, delta time.Duration) {
	m.external[extKey{site, object}] = &extState{delta: delta}
}

// TrackInterObject registers an inter-object bound between two objects at
// the given site.
func (m *Monitor) TrackInterObject(site string, c InterObjectConstraint) {
	m.inter[interKey{site, c.I, c.J}] = &interState{delta: c.Delta}
}

// RecordUpdate reports that at instant applied, the image of object at
// site advanced to reflect real-world state of instant version. Updates
// must be recorded in non-decreasing applied order per (site, object).
func (m *Monitor) RecordUpdate(site, object string, version, applied time.Time) {
	if st, ok := m.external[extKey{site, object}]; ok {
		st.record(version, applied)
	}
	for key, st := range m.inter {
		if key.site != site {
			continue
		}
		switch object {
		case key.i:
			st.hasI = true
			st.ti = version
		case key.j:
			st.hasJ = true
			st.tj = version
		default:
			continue
		}
		st.check()
	}
}

func (s *extState) record(version, applied time.Time) {
	if s.finished {
		// The interval was closed by FinishAt; stragglers that land after
		// the end of the measured run (e.g. in-flight updates draining
		// during a harness's settle phase) are not part of it.
		return
	}
	if s.suspended {
		// The guarantee is waived (the primary shed the object); updates
		// that race the mode change carry no obligation.
		return
	}
	if s.hasUpdate {
		s.accountUpTo(applied)
	}
	s.hasUpdate = true
	s.updates++
	s.lastVersion = version
	s.lastApplied = applied
}

// accountUpTo folds the staleness trajectory on [lastApplied, t) into the
// running statistics: staleness at the end of the interval is
// t − lastVersion, and the image was out of bound on the suffix of the
// interval past lastVersion+delta. With a clock uncertainty theta
// attached, the verdict is three-way: staleness past delta+theta is a
// provable violation no uncertainty can excuse, staleness under
// delta−theta is provably within bound, and the band between — where the
// stamps' error could swing the verdict either way — accrues as
// unverifiable time. At theta zero the band is empty and the split
// reduces exactly to the classic two-way accounting.
func (s *extState) accountUpTo(t time.Time) {
	if !s.hasUpdate || t.Before(s.lastApplied) {
		return
	}
	if stale := t.Sub(s.lastVersion); stale > s.maxStaleness {
		s.maxStaleness = stale
	}
	violFrom := s.lastVersion.Add(s.delta + s.theta)
	if violFrom.Before(s.lastApplied) {
		violFrom = s.lastApplied
	}
	if t.After(violFrom) {
		s.violation += t.Sub(violFrom)
		s.excursions++
	}
	if s.theta == 0 {
		return
	}
	grayFrom := s.lastVersion.Add(s.delta - s.theta)
	if grayFrom.Before(s.lastApplied) {
		grayFrom = s.lastApplied
	}
	grayTo := t
	if grayTo.After(violFrom) {
		grayTo = violFrom
	}
	if grayTo.After(grayFrom) {
		s.unverifiableTime += grayTo.Sub(grayFrom)
	}
}

func (s *interState) check() {
	if !s.hasI || !s.hasJ {
		return
	}
	s.checks++
	d := s.tj.Sub(s.ti)
	if d < 0 {
		d = -d
	}
	if d > s.maxDistance {
		s.maxDistance = d
	}
	if d > s.delta {
		s.violations++
	}
}

// FinishAt closes every external-consistency interval at instant t,
// accounting for staleness accrued since each object's final update.
// Call once at the end of a run, before reading reports.
func (m *Monitor) FinishAt(t time.Time) {
	for _, st := range m.external {
		if st.finished {
			continue
		}
		st.accountUpTo(t)
		st.finished = true
	}
}

// SetUncertainty attaches a clock-uncertainty bound theta to the external
// constraint for (site, object) from instant t onward: the stamps the
// monitor verifies may err from true time by up to theta, so from t each
// interval is judged three ways — staleness provably beyond the bound
// (past delta+theta) is charged as violation, staleness provably within
// it (under delta−theta) passes, and time in the band between accrues in
// the report's UnverifiableTime: the monitor suspends judgement there
// rather than lie in either direction. When theta consumes the whole
// bound (delta − theta ≤ 0) the pair is additionally flagged
// unverifiable for the spell (nothing can be affirmed at all, though a
// gross enough staleness is still a provable violation); a later call
// with smaller theta ends the spell. Zero theta (the default) leaves
// every code path byte-identical to the uncertainty-free monitor.
func (m *Monitor) SetUncertainty(site, object string, t time.Time, theta time.Duration) {
	st, ok := m.external[extKey{site, object}]
	if !ok || st.finished {
		return
	}
	if theta < 0 {
		theta = 0
	}
	if st.theta == theta {
		return
	}
	if !st.suspended {
		// Judge the trajectory up to t under the old uncertainty, then
		// restart the open interval so the suffix is judged under the new
		// one (same split SetBound performs).
		st.accountUpTo(t)
		if st.hasUpdate && t.After(st.lastApplied) {
			st.lastApplied = t
		}
	}
	wasUnverifiable := st.unverifiable
	st.theta = theta
	st.unverifiable = theta >= st.delta
	if st.unverifiable && !wasUnverifiable {
		st.unverifiableSpells++
	}
}

// Unverifiable reports whether clock uncertainty currently exceeds the
// external bound for (site, object).
func (m *Monitor) Unverifiable(site, object string) bool {
	st, ok := m.external[extKey{site, object}]
	return ok && st.unverifiable
}

// Suspend waives the external bound for (site, object) from instant t:
// staleness accrued up to t is folded into the statistics, then the
// monitor stops accounting until Resume. Harnesses call it when the
// primary's overload governor announces an object as shed — a shed image
// carries no temporal guarantee, so its growing staleness is not a
// violation. Suspending an untracked or already-suspended pair is a
// no-op.
func (m *Monitor) Suspend(site, object string, t time.Time) {
	st, ok := m.external[extKey{site, object}]
	if !ok || st.finished || st.suspended {
		return
	}
	st.accountUpTo(t)
	st.suspended = true
	st.hasUpdate = false
}

// Resume re-attaches the external bound for (site, object): accounting
// restarts at the first update recorded after the call (the primary
// refreshes a promoted object's image immediately, so the gap is one
// transmission). Resuming a pair that is not suspended is a no-op.
func (m *Monitor) Resume(site, object string) {
	st, ok := m.external[extKey{site, object}]
	if !ok || !st.suspended {
		return
	}
	st.suspended = false
	st.hasUpdate = false
}

// Suspended reports whether the external bound for (site, object) is
// currently waived.
func (m *Monitor) Suspended(site, object string) bool {
	st, ok := m.external[extKey{site, object}]
	return ok && st.suspended
}

// BeginCatchUp marks (site, object) as catching up from instant t: a
// replica that joined (or rejoined) the cluster holds an image with no
// temporal guarantee until an update lands inside the bound, so the
// external constraint is suspended and the pair flagged. Harnesses call
// it when the joiner accepts a JoinAccept; the repair protocol's
// invariant — no object may be reported consistent while catching up —
// is checked against CatchingUp.
func (m *Monitor) BeginCatchUp(site, object string, t time.Time) {
	st, ok := m.external[extKey{site, object}]
	if !ok || st.finished || st.catchingUp {
		return
	}
	st.catchingUp = true
	m.Suspend(site, object, t)
}

// EndCatchUp clears the catch-up flag and re-attaches the bound; call it
// when the replica reports the object consistent again (an update landed
// within δ_i^B). Ending a catch-up that never began is a no-op.
func (m *Monitor) EndCatchUp(site, object string) {
	st, ok := m.external[extKey{site, object}]
	if !ok || !st.catchingUp {
		return
	}
	st.catchingUp = false
	st.catchUps++
	m.Resume(site, object)
}

// CatchingUp reports whether (site, object) is between BeginCatchUp and
// EndCatchUp.
func (m *Monitor) CatchingUp(site, object string) bool {
	st, ok := m.external[extKey{site, object}]
	return ok && st.catchingUp
}

// CatchUps reports how many completed catch-up cycles (site, object) went
// through.
func (m *Monitor) CatchUps(site, object string) int {
	st, ok := m.external[extKey{site, object}]
	if !ok {
		return 0
	}
	return st.catchUps
}

// SetBound rebinds the external constraint for (site, object) to delta
// from instant t onward: the trajectory up to t is accounted under the
// old bound, the remainder under the new one. Harnesses call it when the
// governor announces a compressed object's loosened effective bound.
func (m *Monitor) SetBound(site, object string, t time.Time, delta time.Duration) {
	st, ok := m.external[extKey{site, object}]
	if !ok || st.finished || st.delta == delta {
		return
	}
	if !st.suspended {
		st.accountUpTo(t)
		if st.hasUpdate && t.After(st.lastApplied) {
			// Restart the open interval at t so the suffix is judged
			// against the new bound only.
			st.lastApplied = t
		}
	}
	st.delta = delta
}

// ExternalReport summarizes the observed external consistency of one
// object image.
type ExternalReport struct {
	// Delta is the registered bound.
	Delta time.Duration
	// Updates is the number of recorded updates.
	Updates int
	// MaxStaleness is the largest observed t − T_i(t).
	MaxStaleness time.Duration
	// ViolationTime is the total time the image provably spent beyond
	// the bound (staleness past Delta + Theta while an uncertainty was
	// attached — an excess no stamp error can excuse).
	ViolationTime time.Duration
	// Excursions is the number of maximal intervals charged as violation.
	Excursions int
	// Theta is the clock-uncertainty bound in force at the end of the
	// run (zero unless SetUncertainty was used).
	Theta time.Duration
	// Unverifiable reports whether the run ended with uncertainty
	// consuming the whole bound (Delta − Theta ≤ 0); UnverifiableSpells
	// counts such spells over the run. UnverifiableTime totals the time
	// spent in the gray band — staleness between Delta − Theta and
	// Delta + Theta — where the verdict could swing either way, which
	// includes (but is not limited to) the unverifiable spells.
	Unverifiable       bool
	UnverifiableTime   time.Duration
	UnverifiableSpells int
}

// Consistent reports whether no violation of the verifiable bound was
// observed. It says nothing about unverifiable spells — a run can be
// Consistent yet have spent time where the bound could not be checked;
// Verified is the stronger claim.
func (r ExternalReport) Consistent() bool { return r.ViolationTime == 0 }

// Verified reports that the bound was affirmatively checked and held for
// the entire run: no violations and no unverifiable time.
func (r ExternalReport) Verified() bool {
	return r.ViolationTime == 0 && r.UnverifiableTime == 0 && !r.Unverifiable
}

// ExternalReport returns the report for (site, object); ok is false if the
// pair was never tracked.
func (m *Monitor) ExternalReport(site, object string) (ExternalReport, bool) {
	st, ok := m.external[extKey{site, object}]
	if !ok {
		return ExternalReport{}, false
	}
	return st.report(), true
}

func (s *extState) report() ExternalReport {
	return ExternalReport{
		Delta:              s.delta,
		Updates:            s.updates,
		MaxStaleness:       s.maxStaleness,
		ViolationTime:      s.violation,
		Excursions:         s.excursions,
		Theta:              s.theta,
		Unverifiable:       s.unverifiable,
		UnverifiableTime:   s.unverifiableTime,
		UnverifiableSpells: s.unverifiableSpells,
	}
}

// SnapshotExternal reports the external-consistency statistics for
// (site, object) as they would stand if the run ended at instant t,
// without closing the interval: the monitor keeps accumulating updates
// afterwards, and a later FinishAt is unaffected. Fault-injection
// harnesses use it to assert that a bound held up to a fault boundary
// while the run continues past it.
func (m *Monitor) SnapshotExternal(site, object string, t time.Time) (ExternalReport, bool) {
	st, ok := m.external[extKey{site, object}]
	if !ok {
		return ExternalReport{}, false
	}
	cp := *st
	if !cp.finished {
		cp.accountUpTo(t)
	}
	return cp.report(), true
}

// InterObjectReport summarizes the observed inter-object consistency of a
// tracked pair at one site.
type InterObjectReport struct {
	// Delta is δ_ij.
	Delta time.Duration
	// Checks is the number of update instants at which the pair was
	// evaluated (the distance only changes at updates).
	Checks int
	// MaxDistance is the largest observed |T_j(t) − T_i(t)|.
	MaxDistance time.Duration
	// Violations counts evaluations that exceeded Delta.
	Violations int
}

// Consistent reports whether the pair stayed within bound.
func (r InterObjectReport) Consistent() bool { return r.Violations == 0 }

// InterObjectReport returns the report for the pair (i, j) at site; ok is
// false if the pair was never tracked.
func (m *Monitor) InterObjectReport(site, i, j string) (InterObjectReport, bool) {
	st, ok := m.inter[interKey{site, i, j}]
	if !ok {
		return InterObjectReport{}, false
	}
	return InterObjectReport{
		Delta:       st.delta,
		Checks:      st.checks,
		MaxDistance: st.maxDistance,
		Violations:  st.violations,
	}, true
}

// String renders a one-line summary, useful in example programs.
func (r ExternalReport) String() string {
	return fmt.Sprintf("updates=%d maxStaleness=%v bound=%v violations=%v/%d",
		r.Updates, r.MaxStaleness, r.Delta, r.ViolationTime, r.Excursions)
}
