package temporal

import "testing"

// TestSetUncertaintyGrayBand: with theta attached, staleness between
// delta−theta and delta+theta is provable in neither direction — the
// trajectory that would have been a small violation under exact stamps
// accrues as unverifiable time instead of a verdict the monitor cannot
// back.
func TestSetUncertaintyGrayBand(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(100))
	m.RecordUpdate("backup", "x", at(0), at(0))
	m.SetUncertainty("backup", "x", at(0), ms(30))
	// Next update at 120ms: staleness peaks at 120ms, inside the
	// 70ms..130ms gray band — 50ms of the interval (70ms→120ms) is
	// undecidable, none of it provably violating.
	m.RecordUpdate("backup", "x", at(ms(120)), at(ms(120)))
	m.FinishAt(at(ms(120)))
	r, ok := m.ExternalReport("backup", "x")
	if !ok {
		t.Fatal("report missing")
	}
	if r.ViolationTime != 0 {
		t.Fatalf("ViolationTime = %v, want 0 (staleness 120ms is not provable beyond 100ms±30ms)", r.ViolationTime)
	}
	if r.UnverifiableTime != ms(50) {
		t.Fatalf("UnverifiableTime = %v, want 50ms in the gray band", r.UnverifiableTime)
	}
	if r.Theta != ms(30) {
		t.Fatalf("Theta = %v, want 30ms", r.Theta)
	}
	if r.Unverifiable {
		t.Fatalf("uncertainty below the bound must not flag the pair unverifiable: %+v", r)
	}
	if !r.Consistent() || r.Verified() {
		t.Fatalf("gray time must keep Consistent() but break Verified(): %+v", r)
	}
}

// TestSetUncertaintyProvableViolationCharged: staleness beyond
// delta+theta cannot be excused by any stamp error, so it is charged as
// violation even with uncertainty attached.
func TestSetUncertaintyProvableViolationCharged(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(100))
	m.RecordUpdate("backup", "x", at(0), at(0))
	m.SetUncertainty("backup", "x", at(0), ms(30))
	// The image goes 250ms stale before the next apply: 130ms→250ms is a
	// provable violation (120ms), 70ms→130ms the gray band (60ms).
	m.RecordUpdate("backup", "x", at(0), at(ms(250)))
	m.FinishAt(at(ms(250)))
	r, _ := m.ExternalReport("backup", "x")
	if r.ViolationTime != ms(120) {
		t.Fatalf("ViolationTime = %v, want 120ms beyond delta+theta", r.ViolationTime)
	}
	if r.Excursions != 1 {
		t.Fatalf("Excursions = %d, want 1", r.Excursions)
	}
	if r.UnverifiableTime != ms(60) {
		t.Fatalf("UnverifiableTime = %v, want 60ms gray band", r.UnverifiableTime)
	}
	if r.Consistent() {
		t.Fatal("a provable violation must break Consistent()")
	}
}

// TestSetUncertaintySplitsTrajectoryAtCall: staleness accrued before the
// call is judged under the old uncertainty, the suffix under the new one.
func TestSetUncertaintySplitsTrajectoryAtCall(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(100))
	m.RecordUpdate("backup", "x", at(0), at(0))
	// At 90ms the image is still inside the exact bound; theta=30ms
	// arrives then. The pre-call prefix is judged exact and clean; on the
	// suffix the staleness (90ms→120ms) sits in the gray band, so 30ms of
	// unverifiable time accrues and nothing is charged.
	m.SetUncertainty("backup", "x", at(ms(90)), ms(30))
	m.RecordUpdate("backup", "x", at(ms(120)), at(ms(120)))
	m.FinishAt(at(ms(120)))
	r, _ := m.ExternalReport("backup", "x")
	if r.ViolationTime != 0 {
		t.Fatalf("ViolationTime = %v, want 0", r.ViolationTime)
	}
	if r.UnverifiableTime != ms(30) {
		t.Fatalf("UnverifiableTime = %v, want 30ms (90ms→120ms suffix only)", r.UnverifiableTime)
	}
}

// TestUncertaintyBeyondBoundSuspendsNotLies: when theta consumes the
// whole bound the monitor must neither charge violations it cannot prove
// nor claim consistency it cannot prove — the whole spell accrues as
// unverifiable time and is flagged, while updates keep being recorded.
func TestUncertaintyBeyondBoundSuspendsNotLies(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(100))
	m.RecordUpdate("backup", "x", at(0), at(0))
	m.SetUncertainty("backup", "x", at(ms(50)), ms(150))
	if !m.Unverifiable("backup", "x") {
		t.Fatal("theta ≥ delta did not mark the pair unverifiable")
	}
	// Updates keep flowing with ≤100ms staleness — fine under exact
	// stamps, undecidable under ±150ms ones.
	for _, tk := range []int{100, 200, 300, 400, 500} {
		m.RecordUpdate("backup", "x", at(ms(tk)), at(ms(tk)))
	}
	// Uncertainty heals at 500ms.
	m.SetUncertainty("backup", "x", at(ms(500)), ms(10))
	if m.Unverifiable("backup", "x") {
		t.Fatal("pair still unverifiable after theta dropped below delta")
	}
	m.RecordUpdate("backup", "x", at(ms(520)), at(ms(520)))
	m.FinishAt(at(ms(560)))
	r, _ := m.ExternalReport("backup", "x")
	if r.ViolationTime != 0 {
		t.Fatalf("ViolationTime = %v, want 0 (nothing provable during the spell)", r.ViolationTime)
	}
	if r.UnverifiableTime != ms(450) {
		t.Fatalf("UnverifiableTime = %v, want 450ms (50ms→500ms)", r.UnverifiableTime)
	}
	if r.UnverifiableSpells != 1 {
		t.Fatalf("UnverifiableSpells = %d, want 1", r.UnverifiableSpells)
	}
	if r.Verified() {
		t.Fatal("a run with unverifiable time must not claim Verified()")
	}
	if !r.Consistent() {
		t.Fatal("no provable violation occurred; Consistent() should hold")
	}
}

// TestUncertaintySpellCannotHideGrossViolation: even with theta beyond
// the bound, staleness past delta+theta is a violation no stamp error can
// explain away — the unverifiable state is a suspension of judgement, not
// an amnesty.
func TestUncertaintySpellCannotHideGrossViolation(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(100))
	m.RecordUpdate("backup", "x", at(0), at(0))
	m.SetUncertainty("backup", "x", at(0), ms(150))
	if !m.Unverifiable("backup", "x") {
		t.Fatal("theta ≥ delta did not mark the pair unverifiable")
	}
	// 400ms stale: even stamps wrong by 150ms leave ≥250ms of true
	// staleness against a 100ms bound.
	m.RecordUpdate("backup", "x", at(0), at(ms(400)))
	m.FinishAt(at(ms(400)))
	r, _ := m.ExternalReport("backup", "x")
	if r.ViolationTime != ms(150) {
		t.Fatalf("ViolationTime = %v, want 150ms beyond delta+theta", r.ViolationTime)
	}
	if r.UnverifiableTime != ms(250) {
		t.Fatalf("UnverifiableTime = %v, want 250ms", r.UnverifiableTime)
	}
	if r.Consistent() {
		t.Fatal("a provable violation must break Consistent()")
	}
}

// TestUnverifiableSpellOpenAtFinish: an open spell keeps accruing through
// snapshots and FinishAt, and the report keeps the Unverifiable flag.
func TestUnverifiableSpellOpenAtFinish(t *testing.T) {
	m := NewMonitor()
	m.TrackExternal("backup", "x", ms(100))
	m.RecordUpdate("backup", "x", at(0), at(0))
	m.SetUncertainty("backup", "x", at(ms(50)), ms(300))
	// Snapshot mid-spell sees the partial accrual without closing it.
	snap, _ := m.SnapshotExternal("backup", "x", at(ms(300)))
	if snap.UnverifiableTime != ms(250) || !snap.Unverifiable {
		t.Fatalf("snapshot = %+v, want 250ms unverifiable and flagged", snap)
	}
	m.FinishAt(at(ms(350)))
	r, _ := m.ExternalReport("backup", "x")
	if r.UnverifiableTime != ms(300) || !r.Unverifiable {
		t.Fatalf("report = %+v, want 300ms unverifiable, flag held", r)
	}
	if r.Verified() {
		t.Fatal("run ending unverifiable must not claim Verified()")
	}
}

// TestZeroUncertaintyIsByteIdentical: attaching theta=0 (or never calling
// SetUncertainty) leaves every statistic exactly as the uncertainty-free
// monitor produces it.
func TestZeroUncertaintyIsByteIdentical(t *testing.T) {
	run := func(withCall bool) ExternalReport {
		m := NewMonitor()
		m.TrackExternal("backup", "x", ms(50))
		m.RecordUpdate("backup", "x", at(0), at(0))
		if withCall {
			m.SetUncertainty("backup", "x", at(ms(10)), 0)
		}
		m.RecordUpdate("backup", "x", at(ms(80)), at(ms(80)))
		m.FinishAt(at(ms(100)))
		r, _ := m.ExternalReport("backup", "x")
		return r
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("theta=0 changed the report: %+v vs %+v", a, b)
	}
}
