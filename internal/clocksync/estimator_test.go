package clocksync

import (
	"flag"
	"math/rand"
	"testing"
	"time"

	"rtpb/internal/resilience"
)

// seedFlag shifts the property test's fixed RNG seed (go test
// ./internal/clocksync -seed=N); 0 keeps the committed seed.
var seedFlag = flag.Int64("seed", 0, "offset added to the property tests' fixed RNG seeds")

var t0 = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// probe synthesizes the four timestamps of one exchange: the peer's
// clock runs `skew` ahead of ours, one-way delays are out/back, and the
// responder holds the echo for `hold`.
func probe(at time.Time, skew, out, back, hold time.Duration) (t1, t2, t3, t4 time.Time) {
	t1 = at
	t2 = at.Add(out).Add(skew)
	t3 = t2.Add(hold)
	t4 = at.Add(out).Add(hold).Add(back)
	return
}

func TestEstimatorRecoversSymmetricOffset(t *testing.T) {
	e := New(Config{})
	t1, t2, t3, t4 := probe(t0, 25*time.Millisecond, 2*time.Millisecond, 2*time.Millisecond, time.Millisecond)
	s, ok := e.AddSample(t1, t2, t3, t4)
	if !ok {
		t.Fatal("sample rejected")
	}
	if s.Offset != 25*time.Millisecond {
		t.Fatalf("Offset = %v, want 25ms (symmetric delays recover exactly)", s.Offset)
	}
	if s.RTT != 4*time.Millisecond {
		t.Fatalf("RTT = %v, want 4ms (hold time excluded)", s.RTT)
	}
	th, ok := e.Theta(t4)
	if !ok || th != 2*time.Millisecond {
		t.Fatalf("Theta = %v,%v, want 2ms (half RTT)", th, ok)
	}
}

func TestEstimatorThetaContainsTrueOffsetUnderAsymmetry(t *testing.T) {
	// Worst-case asymmetry: all delay on one leg. The estimate is wrong
	// by rtt/2, which is exactly what θ admits.
	const skew = 10 * time.Millisecond
	e := New(Config{})
	t1, t2, t3, t4 := probe(t0, skew, 6*time.Millisecond, 0, 0)
	s, _ := e.AddSample(t1, t2, t3, t4)
	th, _ := e.Theta(t4)
	if err := (s.Offset - skew).Abs(); err > th {
		t.Fatalf("estimate error %v exceeds θ %v", err, th)
	}
}

func TestEstimatorNoSampleMeansNoBound(t *testing.T) {
	e := New(Config{})
	if _, ok := e.Theta(t0); ok {
		t.Fatal("Theta reported a bound with no samples")
	}
	if r := e.Report(t0); r.Valid {
		t.Fatal("Report valid with no samples")
	}
}

func TestEstimatorRejectsNegativeRTT(t *testing.T) {
	e := New(Config{})
	// A backward step on the prober between send and receive makes the
	// apparent round trip negative.
	t1 := t0
	t2 := t0.Add(time.Millisecond)
	t3 := t2
	t4 := t0.Add(-time.Second)
	if _, ok := e.AddSample(t1, t2, t3, t4); ok {
		t.Fatal("negative-RTT sample accepted")
	}
	if acc, rej := e.Samples(); acc != 0 || rej != 1 {
		t.Fatalf("Samples = %d,%d, want 0,1", acc, rej)
	}
	if _, ok := e.Theta(t4); ok {
		t.Fatal("rejected sample produced a bound")
	}
}

func TestEstimatorPrefersTighterSamplesAndAges(t *testing.T) {
	e := New(Config{MaxDriftPPM: 1000})
	// A sloppy 20ms-RTT sample first.
	t1, t2, t3, t4 := probe(t0, 5*time.Millisecond, 10*time.Millisecond, 10*time.Millisecond, 0)
	e.AddSample(t1, t2, t3, t4)
	th0, _ := e.Theta(t4)
	if th0 != 10*time.Millisecond {
		t.Fatalf("θ = %v, want 10ms", th0)
	}
	// A tight 2ms-RTT sample 1s later replaces it.
	at := t0.Add(time.Second)
	t1, t2, t3, t4 = probe(at, 5*time.Millisecond, time.Millisecond, time.Millisecond, 0)
	e.AddSample(t1, t2, t3, t4)
	th1, _ := e.Theta(t4)
	if th1 != time.Millisecond {
		t.Fatalf("θ = %v, want 1ms after tighter sample", th1)
	}
	// With no further samples θ widens by the drift bound: 1000 ppm ⇒
	// 1ms per second of age.
	th2, _ := e.Theta(t4.Add(2 * time.Second))
	if want := 3 * time.Millisecond; th2 != want {
		t.Fatalf("θ = %v after 2s of aging, want %v", th2, want)
	}
	// A fresh loose sample does not replace a still-tighter aged one...
	t1, t2, t3, t4 = probe(t4.Add(time.Millisecond), 5*time.Millisecond, 8*time.Millisecond, 8*time.Millisecond, 0)
	e.AddSample(t1, t2, t3, t4)
	if th, _ := e.Theta(t4); th >= 8*time.Millisecond {
		t.Fatalf("loose fresh sample adopted over tight aged one (θ = %v)", th)
	}
}

func TestEstimatorFeedsLinkEstimator(t *testing.T) {
	link := resilience.NewEstimator(resilience.EstimatorConfig{})
	e := New(Config{Link: link})
	t1, t2, t3, t4 := probe(t0, 0, 3*time.Millisecond, 3*time.Millisecond, 0)
	e.AddSample(t1, t2, t3, t4)
	if link.SRTT() != 6*time.Millisecond {
		t.Fatalf("link SRTT = %v, want 6ms", link.SRTT())
	}
}

// TestEstimatorPropertyHonestBound fuzzes random skews, delays, and probe
// cadences and asserts the estimator's defining contract: whenever it
// reports a bound, the true offset lies within θ of the estimate.
func TestEstimatorPropertyHonestBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4242 + *seedFlag))
	for trial := 0; trial < 200; trial++ {
		skew := time.Duration(rng.Intn(100_000)-50_000) * time.Microsecond
		e := New(Config{MaxDriftPPM: 500})
		now := t0
		for p := 0; p < 20; p++ {
			now = now.Add(time.Duration(1+rng.Intn(500)) * time.Millisecond)
			out := time.Duration(rng.Intn(10_000)) * time.Microsecond
			back := time.Duration(rng.Intn(10_000)) * time.Microsecond
			hold := time.Duration(rng.Intn(1_000)) * time.Microsecond
			t1, t2, t3, t4 := probe(now, skew, out, back, hold)
			e.AddSample(t1, t2, t3, t4)
			th, ok := e.Theta(t4)
			if !ok {
				t.Fatalf("trial %d: no bound after an accepted sample", trial)
			}
			if err := (e.Offset() - skew).Abs(); err > th {
				t.Fatalf("trial %d probe %d: |estimate−truth| = %v exceeds θ = %v",
					trial, p, err, th)
			}
		}
	}
}
