// Package clocksync estimates the clock offset between a replica and its
// peer from timestamps piggybacked on the detector heartbeat exchange
// (wire.TimeSync), in the style of Cristian's algorithm and NTP's on-wire
// protocol.
//
// Each probe yields four instants: t1 (request sent, prober's clock), t2
// (request received, responder's clock), t3 (echo sent, responder's
// clock), t4 (echo received, prober's clock). From these,
//
//	offset = ((t2−t1) + (t3−t4)) / 2
//	rtt    = (t4−t1) − (t3−t2)
//
// and the true offset provably lies within ±rtt/2 of the estimate
// (assuming only that neither one-way delay is negative). That half-RTT,
// widened by an assumed oscillator-drift bound as the sample ages, is the
// explicit error bound θ the temporal layer consumes: a monitor that
// tightens a consistency bound by θ — or declares it unverifiable when θ
// exceeds the slack — never claims more than the synchronization quality
// can support.
//
// The estimator is deterministic: given the same probe sequence it
// produces the same estimates, so seeded chaos replays stay
// byte-identical.
package clocksync

import (
	"time"

	"rtpb/internal/resilience"
)

// Config tunes an Estimator.
type Config struct {
	// MaxDriftPPM bounds the assumed relative oscillator drift between
	// the two clocks, in parts per million; θ widens at this rate as the
	// retained sample ages. Zero means 200 ppm (a generous bound for
	// unconditioned crystal oscillators).
	MaxDriftPPM float64
	// Link, when non-nil, receives one RTT sample per accepted probe —
	// the per-peer link estimator whose RTO machinery the resilience
	// layer already runs; clock-sync probes ride the same heartbeats, so
	// their round trips are link observations too.
	Link *resilience.Estimator
}

func (c *Config) normalize() {
	if c.MaxDriftPPM <= 0 {
		c.MaxDriftPPM = 200
	}
}

// Sample is one accepted probe's derived measurement.
type Sample struct {
	// Offset is the peer-minus-local clock offset estimate.
	Offset time.Duration
	// RTT is the probe's round-trip time net of responder hold time.
	RTT time.Duration
	// At is the local arrival instant (t4) the sample is anchored to.
	At time.Time
}

// Estimator maintains a per-peer clock-offset estimate with an explicit
// error bound. It retains the sample that currently yields the tightest
// bound: a fresh probe replaces the retained one as soon as its half-RTT
// is tighter than the old sample's drift-aged bound, so low-RTT probes
// are preferred and stale estimates honestly widen.
type Estimator struct {
	cfg      Config
	best     Sample
	hasBest  bool
	accepted uint64
	rejected uint64
}

// New returns an Estimator with the config's defaults filled in.
func New(cfg Config) *Estimator {
	cfg.normalize()
	return &Estimator{cfg: cfg}
}

// AddSample folds one completed probe into the estimate and reports the
// derived measurement. A probe whose net round trip is negative — a clock
// stepped mid-probe — is rejected (ok false) rather than poisoning the
// estimate.
func (e *Estimator) AddSample(t1, t2, t3, t4 time.Time) (Sample, bool) {
	rtt := t4.Sub(t1) - t3.Sub(t2)
	if rtt < 0 {
		e.rejected++
		return Sample{}, false
	}
	s := Sample{
		Offset: (t2.Sub(t1) + t3.Sub(t4)) / 2,
		RTT:    rtt,
		At:     t4,
	}
	e.accepted++
	if e.cfg.Link != nil {
		e.cfg.Link.SampleRTT(rtt)
	}
	if !e.hasBest || s.RTT/2 <= e.boundAt(t4) {
		e.best = s
		e.hasBest = true
	}
	return s, true
}

// boundAt reports the retained sample's error bound aged to now:
// half-RTT plus assumed drift accrued since the sample.
func (e *Estimator) boundAt(now time.Time) time.Duration {
	age := now.Sub(e.best.At)
	if age < 0 {
		age = 0
	}
	return e.best.RTT/2 + time.Duration(float64(age)*e.cfg.MaxDriftPPM*1e-6)
}

// Offset reports the current peer-minus-local offset estimate (zero
// before any probe completes).
func (e *Estimator) Offset() time.Duration { return e.best.Offset }

// Theta reports the error bound θ on the offset estimate as of now. The
// boolean is false before any probe completes — with no sample there is
// no bound, and callers must treat the offset as unknown, not as zero.
func (e *Estimator) Theta(now time.Time) (time.Duration, bool) {
	if !e.hasBest {
		return 0, false
	}
	return e.boundAt(now), true
}

// Samples reports accepted and rejected probe counts.
func (e *Estimator) Samples() (accepted, rejected uint64) {
	return e.accepted, e.rejected
}

// Report is a point-in-time summary of the estimator for status surfaces
// (the ctl CLOCK verb).
type Report struct {
	// Valid is false before any probe completes; the other fields are
	// meaningless then.
	Valid bool
	// Offset is the peer-minus-local offset estimate.
	Offset time.Duration
	// Theta is the error bound on Offset as of the report instant.
	Theta time.Duration
	// RTT is the retained sample's round-trip time.
	RTT time.Duration
	// Age is how long ago the retained sample was taken.
	Age time.Duration
	// Accepted and Rejected count probes.
	Accepted uint64
	Rejected uint64
}

// Report summarizes the estimator as of now.
func (e *Estimator) Report(now time.Time) Report {
	r := Report{Valid: e.hasBest, Accepted: e.accepted, Rejected: e.rejected}
	if !e.hasBest {
		return r
	}
	r.Offset = e.best.Offset
	r.Theta = e.boundAt(now)
	r.RTT = e.best.RTT
	if r.Age = now.Sub(e.best.At); r.Age < 0 {
		r.Age = 0
	}
	return r
}
