package active

import (
	"fmt"
	"testing"
	"time"

	"rtpb/internal/clock"
	"rtpb/internal/netsim"
	"rtpb/internal/xkernel"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

type activeCluster struct {
	clk       *clock.SimClock
	net       *netsim.Network
	sequencer *Sequencer
	members   []*Member
}

func newActiveCluster(t *testing.T, nMembers int, link netsim.LinkParams, seed int64) *activeCluster {
	t.Helper()
	clk := clock.NewSim()
	net := netsim.New(clk, seed)
	if err := net.SetDefaultLink(link); err != nil {
		t.Fatal(err)
	}
	stack := func(host string) *xkernel.PortProtocol {
		ep, err := net.Endpoint(host)
		if err != nil {
			t.Fatal(err)
		}
		g, err := xkernel.BuildGraph([]xkernel.Spec{
			{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
			{Name: "driver", Build: xkernel.DriverFactory(ep)},
		})
		if err != nil {
			t.Fatal(err)
		}
		p, _ := g.Protocol("uport")
		return p.(*xkernel.PortProtocol)
	}
	seqPort := stack("seq")
	var memberAddrs []xkernel.Addr
	var memberPorts []*xkernel.PortProtocol
	for i := 0; i < nMembers; i++ {
		host := fmt.Sprintf("m%d", i)
		memberPorts = append(memberPorts, stack(host))
		memberAddrs = append(memberAddrs, xkernel.Addr(host+":7100"))
	}
	seq, err := NewSequencer(Config{Clock: clk, Port: seqPort, Members: memberAddrs})
	if err != nil {
		t.Fatal(err)
	}
	ac := &activeCluster{clk: clk, net: net, sequencer: seq}
	for i := 0; i < nMembers; i++ {
		m, err := NewMember(Config{Clock: clk, Port: memberPorts[i], Sequencer: "seq:7100"})
		if err != nil {
			t.Fatal(err)
		}
		ac.members = append(ac.members, m)
	}
	return ac
}

func TestAtomicOrderedDelivery(t *testing.T) {
	ac := newActiveCluster(t, 3, netsim.LinkParams{Delay: ms(2)}, 1)
	id, err := ac.sequencer.Register("x")
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	ac.sequencer.ClientWrite("x", []byte("v1"), func(_ time.Duration, err error) {
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		committed++
	})
	ac.clk.RunFor(ms(50))
	if committed != 1 {
		t.Fatalf("committed = %d, want 1", committed)
	}
	for i, m := range ac.members {
		v, _, ok := m.Value(id)
		if !ok || string(v) != "v1" {
			t.Fatalf("member %d value = %q ok=%v", i, v, ok)
		}
		if m.Applied() != 1 {
			t.Fatalf("member %d applied = %d", i, m.Applied())
		}
	}
	if ac.sequencer.Pending() != 0 {
		t.Fatalf("pending = %d after commit", ac.sequencer.Pending())
	}
}

func TestCommitWaitsForAllMembers(t *testing.T) {
	ac := newActiveCluster(t, 2, netsim.LinkParams{Delay: ms(2)}, 2)
	ac.sequencer.Register("x")
	// Partition one member: the write must NOT commit.
	ac.net.Partition("seq", "m1")
	done := false
	ac.sequencer.ClientWrite("x", []byte("v"), func(time.Duration, error) { done = true })
	ac.clk.RunFor(500 * time.Millisecond)
	if done {
		t.Fatal("write committed without all member acks")
	}
	if ac.sequencer.Pending() != 1 {
		t.Fatalf("pending = %d", ac.sequencer.Pending())
	}
	// Heal: retransmission drives it to commit.
	ac.net.Heal("seq", "m1")
	ac.clk.RunFor(500 * time.Millisecond)
	if !done {
		t.Fatal("write never committed after heal")
	}
}

func TestTotalOrderUnderJitter(t *testing.T) {
	// Heavy jitter reorders datagrams; members must still apply in
	// sequence order.
	ac := newActiveCluster(t, 2, netsim.LinkParams{Delay: ms(1), Jitter: ms(8)}, 3)
	id, _ := ac.sequencer.Register("x")
	var lastApplied uint64
	ordered := true
	ac.members[0].OnApply = func(seq uint64, _ uint32, _, _ time.Time) {
		if seq != lastApplied+1 {
			ordered = false
		}
		lastApplied = seq
	}
	for i := 0; i < 30; i++ {
		payload := []byte{byte(i)}
		ac.sequencer.ClientWrite("x", payload, nil)
		ac.clk.RunFor(ms(5))
	}
	ac.clk.RunFor(time.Second)
	if !ordered {
		t.Fatal("member applied orders out of sequence")
	}
	if lastApplied != 30 {
		t.Fatalf("applied %d orders, want 30", lastApplied)
	}
	v, _, _ := ac.members[1].Value(id)
	if len(v) != 1 || v[0] != 29 {
		t.Fatalf("final value = %v", v)
	}
}

func TestLossInflatesActiveResponseTime(t *testing.T) {
	// The motivating contrast with RTPB: under loss, atomic delivery
	// turns drops into client latency.
	measure := func(loss float64) time.Duration {
		ac := newActiveCluster(t, 2, netsim.LinkParams{Delay: ms(2), LossProb: loss}, 4)
		ac.sequencer.Register("x")
		var worst time.Duration
		for i := 0; i < 50; i++ {
			ac.sequencer.ClientWrite("x", []byte{byte(i)}, func(lat time.Duration, err error) {
				if err == nil && lat > worst {
					worst = lat
				}
			})
			ac.clk.RunFor(ms(40))
		}
		ac.clk.RunFor(time.Second)
		return worst
	}
	clean := measure(0)
	lossy := measure(0.3)
	if lossy <= clean {
		t.Fatalf("worst latency under loss (%v) not above lossless (%v)", lossy, clean)
	}
	// Lossless atomic delivery still pays a full round trip ≥ 2·delay.
	if clean < 4*time.Millisecond {
		t.Fatalf("lossless commit latency %v below one round trip", clean)
	}
}

func TestDuplicateOrdersAckedAndIgnored(t *testing.T) {
	ac := newActiveCluster(t, 1, netsim.LinkParams{Delay: ms(2), DuplicateProb: 1}, 5)
	id, _ := ac.sequencer.Register("x")
	applies := 0
	ac.members[0].OnApply = func(uint64, uint32, time.Time, time.Time) { applies++ }
	done := false
	ac.sequencer.ClientWrite("x", []byte("v"), func(time.Duration, error) { done = true })
	ac.clk.RunFor(200 * time.Millisecond)
	if !done {
		t.Fatal("write did not commit under duplication")
	}
	if applies != 1 {
		t.Fatalf("applies = %d, want 1 (duplicates ignored)", applies)
	}
	if v, _, _ := ac.members[0].Value(id); string(v) != "v" {
		t.Fatalf("value = %q", v)
	}
}

func TestSequencerErrors(t *testing.T) {
	ac := newActiveCluster(t, 1, netsim.LinkParams{Delay: ms(2)}, 6)
	gotErr := false
	ac.sequencer.ClientWrite("ghost", []byte("v"), func(_ time.Duration, err error) {
		gotErr = err != nil
	})
	ac.clk.RunFor(ms(10))
	if !gotErr {
		t.Fatal("write to unregistered object succeeded")
	}
	// Registering twice returns the same id.
	id1, _ := ac.sequencer.Register("x")
	id2, _ := ac.sequencer.Register("x")
	if id1 != id2 {
		t.Fatalf("duplicate registration ids %d vs %d", id1, id2)
	}
	ac.sequencer.Stop()
	ac.sequencer.Stop() // idempotent
	if _, err := ac.sequencer.Register("y"); err == nil {
		t.Fatal("stopped sequencer accepted registration")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSequencer(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	clk := clock.NewSim()
	net := netsim.New(clk, 9)
	ep, _ := net.Endpoint("solo")
	g, _ := xkernel.BuildGraph([]xkernel.Spec{
		{Name: "uport", Below: "driver", Build: xkernel.PortFactory()},
		{Name: "driver", Build: xkernel.DriverFactory(ep)},
	})
	pp, _ := g.Protocol("uport")
	port := pp.(*xkernel.PortProtocol)
	if _, err := NewSequencer(Config{Clock: clk, Port: port}); err == nil {
		t.Fatal("sequencer without members accepted")
	}
	if _, err := NewMember(Config{Clock: clk, Port: port}); err == nil {
		t.Fatal("member without sequencer address accepted")
	}
}
